(* Tests for the PR-5 observability additions: the call-tree profiler
   (structure, self/total attribution, folded stacks, JSON shape), the
   conservation cross-check against the runner's day metrics, the alert
   engine (debounce, resolution, rule parsing), the runner's alert
   integration, and the bench regression gate. *)

open Wave_obs
open Wave_core

let exact = Alcotest.(check (float 0.0))
let close = Alcotest.(check (float 1e-9))

let with_clean_tracer f =
  Trace.disable ();
  Trace.reset ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Profile: hand-built span trees                                     *)
(* ------------------------------------------------------------------ *)

let mk ~id ~parent ~name ?(m = 0.0) ?(seeks = 0) ?(br = 0) ?(bw = 0) () =
  {
    Trace.id;
    parent;
    name;
    tags = [];
    start_model = 0.0;
    start_wall = 0.0;
    end_model = m;
    end_wall = 0.0;
    seeks;
    blocks_read = br;
    blocks_written = bw;
    bytes_read = br * 100;
    bytes_written = bw * 100;
  }

(* Two invocations of "root": the first with children a (4s) and b
   (3s), the second with another a (1s).  Same-path spans aggregate
   into one node. *)
let sample_spans =
  [
    mk ~id:1 ~parent:0 ~name:"root" ~m:10.0 ~seeks:5 ~br:10 ();
    mk ~id:2 ~parent:1 ~name:"a" ~m:4.0 ~seeks:2 ~br:6 ();
    mk ~id:3 ~parent:1 ~name:"b" ~m:3.0 ~seeks:1 ~br:2 ();
    mk ~id:4 ~parent:0 ~name:"root" ~m:2.0 ~seeks:1 ();
    mk ~id:5 ~parent:4 ~name:"a" ~m:1.0 ~seeks:1 ();
  ]

let test_profile_tree () =
  let prof = Profile.of_spans sample_spans in
  Alcotest.(check int) "span count" 5 (Profile.span_count prof);
  Alcotest.(check int) "one root node" 1 (List.length (Profile.roots prof));
  exact "total model" 12.0 (Profile.total_model prof);
  let root =
    match Profile.find prof [ "root" ] with
    | Some n -> n
    | None -> Alcotest.fail "no root node"
  in
  Alcotest.(check int) "root calls" 2 root.Profile.calls;
  exact "root total" 12.0 root.Profile.total_model;
  (* self = (10 - 7) + (2 - 1) *)
  exact "root self" 4.0 root.Profile.self_model;
  Alcotest.(check int) "root seeks" 6 root.Profile.seeks;
  Alcotest.(check int) "root self seeks" 2 root.Profile.self_seeks;
  let a =
    match Profile.find prof [ "root"; "a" ] with
    | Some n -> n
    | None -> Alcotest.fail "no root/a node"
  in
  Alcotest.(check int) "a calls" 2 a.Profile.calls;
  exact "a total" 5.0 a.Profile.total_model;
  exact "a self (leaf)" 5.0 a.Profile.self_model;
  Alcotest.(check string) "a path" "root/a" (Profile.path_string a);
  (* Children sorted by inclusive total, largest first: a (5) > b (3). *)
  (match root.Profile.children with
  | [ c1; c2 ] ->
    Alcotest.(check string) "first child" "a" c1.Profile.name;
    Alcotest.(check string) "second child" "b" c2.Profile.name
  | l -> Alcotest.failf "expected 2 children, got %d" (List.length l));
  Alcotest.(check int) "preorder node count" 3
    (List.length (Profile.nodes prof));
  Alcotest.(check bool) "find misses politely" true
    (Profile.find prof [ "root"; "zzz" ] = None)

let test_profile_orphans_are_roots () =
  (* A span whose parent never finished (or predates the collection)
     becomes a root rather than being dropped. *)
  let prof =
    Profile.of_spans [ mk ~id:7 ~parent:99 ~name:"stray" ~m:2.5 ~seeks:1 () ]
  in
  match Profile.roots prof with
  | [ n ] ->
    Alcotest.(check string) "orphan is a root" "stray" n.Profile.name;
    exact "orphan total" 2.5 n.Profile.total_model;
    exact "orphan self" 2.5 n.Profile.self_model
  | l -> Alcotest.failf "expected 1 root, got %d" (List.length l)

let test_profile_top_self () =
  let prof = Profile.of_spans sample_spans in
  (match Profile.top_self ~k:1 prof with
  | [ n ] -> Alcotest.(check string) "hottest self node" "a" n.Profile.name
  | l -> Alcotest.failf "expected 1 node, got %d" (List.length l));
  (match Profile.top_self ~k:10 ~under:[ "root"; "b" ] prof with
  | [ n ] -> Alcotest.(check string) "subtree restriction" "b" n.Profile.name
  | l -> Alcotest.failf "expected 1 node under root/b, got %d" (List.length l));
  Alcotest.(check bool) "unknown subtree -> empty" true
    (Profile.top_self ~under:[ "nope" ] prof = [])

let parse_folded text =
  List.filter_map
    (fun line ->
      if String.trim line = "" then None
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "folded line without value: %S" line
        | Some i ->
          let path = String.sub line 0 i in
          let v =
            float_of_string (String.sub line (i + 1) (String.length line - i - 1))
          in
          Some (path, v))
    (String.split_on_char '\n' text)

let test_profile_folded () =
  let prof = Profile.of_spans sample_spans in
  let lines = parse_folded (Profile.folded prof) in
  List.iter
    (fun (path, v) ->
      Alcotest.(check bool)
        (Printf.sprintf "non-negative value for %s" path)
        true (v >= 0.0);
      Alcotest.(check bool)
        (Printf.sprintf "semicolon-joined path %S" path)
        true
        (String.split_on_char ';' path <> []))
    lines;
  let sum = List.fold_left (fun a (_, v) -> a +. v) 0.0 lines in
  close "folded values sum to total model" (Profile.total_model prof) sum;
  Alcotest.(check bool) "root self line present" true
    (List.mem_assoc "root" lines);
  close "leaf line value" 3.0 (List.assoc "root;b" lines)

let test_profile_json_validates () =
  let prof = Profile.of_spans sample_spans in
  let j = Profile.to_json prof in
  (match Sink.validate_profile j with
  | Ok nodes -> Alcotest.(check int) "validated node count" 3 nodes
  | Error e -> Alcotest.failf "profile json invalid: %s" e);
  (* And survives serialization. *)
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' -> (
    match Sink.validate_profile j' with
    | Ok nodes -> Alcotest.(check int) "reparsed node count" 3 nodes
    | Error e -> Alcotest.failf "reparsed invalid: %s" e)

let test_profile_json_rejects_malformed () =
  let bad =
    Json.Obj
      [
        ("schema", Json.Str Sink.profile_schema);
        ("unit", Json.Str "model-seconds");
        ("total_model_s", Json.Num 1.0);
        ( "roots",
          Json.Arr
            [
              Json.Obj
                [
                  ("name", Json.Str "x");
                  ("calls", Json.int 1);
                  ("total_model_s", Json.Num (-1.0));
                ];
            ] );
      ]
  in
  match Sink.validate_profile bad with
  | Ok _ -> Alcotest.fail "validator accepted a negative total"
  | Error e ->
    Alcotest.(check bool)
      "error names the node" true
      (contains e "/x")

(* ------------------------------------------------------------------ *)
(* Conservation: profile totals == runner day metrics                 *)
(* ------------------------------------------------------------------ *)

let small_store =
  Wave_workload.Netnews.store
    {
      Wave_workload.Netnews.default_config with
      Wave_workload.Netnews.mean_postings = 80;
    }

let small_queries =
  {
    Wave_workload.Query_gen.seed = 5;
    probes_per_day = 6;
    probe_range = Wave_workload.Query_gen.Whole_window;
    scans_per_day = 1;
    scan_range = Wave_workload.Query_gen.Whole_window;
    value_dist = Wave_workload.Query_gen.Zipfian { vocab = 2_000; s = 1.0 };
  }

let traced_run ?(alerts = []) scheme technique =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  let r =
    Wave_sim.Runner.run
      {
        (Wave_sim.Runner.default_config ~scheme ~store:small_store ~w:5 ~n:3) with
        Wave_sim.Runner.technique;
        run_days = 8;
        queries = Some small_queries;
        alerts;
      }
  in
  (r, Trace.spans ())

let check_conservation scheme technique =
  let r, spans = traced_run scheme technique in
  let prof = Profile.of_spans spans in
  let expected =
    r.Wave_sim.Runner.total_maintenance_seconds
    +. r.Wave_sim.Runner.total_query_seconds
  in
  let day =
    match Profile.find prof [ "day" ] with
    | Some n -> n
    | None -> Alcotest.fail "no day node"
  in
  let ctx s =
    Printf.sprintf "%s/%s %s" (Scheme.name scheme)
      (Env.technique_name technique) s
  in
  Alcotest.(check (float 1e-6))
    (ctx "day tree total == day_metrics total")
    expected day.Profile.total_model;
  (* The folded rendering preserves it: self values under "day" sum
     back to the day node's inclusive total. *)
  let folded_day =
    List.fold_left
      (fun acc (path, v) ->
        if path = "day" || String.starts_with ~prefix:"day;" path
        then acc +. v
        else acc)
      0.0
      (parse_folded (Profile.folded prof))
  in
  Alcotest.(check (float 1e-6)) (ctx "folded day lines sum") expected folded_day;
  (* Integer counters are exactly inclusive, so self >= 0 everywhere
     and the day subtree's seeks match the metrics' per-day deltas. *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (ctx (Printf.sprintf "self seeks >= 0 at %s" (Profile.path_string n)))
        true
        (n.Profile.self_seeks >= 0))
    (Profile.nodes prof);
  let metric_seeks =
    List.fold_left
      (fun a d -> a + d.Wave_sim.Runner.seeks)
      0 r.Wave_sim.Runner.days
  in
  Alcotest.(check int) (ctx "day tree seeks") metric_seeks day.Profile.seeks

let test_conservation_del_inplace () =
  check_conservation Scheme.Del Env.In_place

let test_conservation_wata_packed () =
  check_conservation Scheme.Wata_star Env.Packed_shadow

(* ------------------------------------------------------------------ *)
(* Alert engine                                                       *)
(* ------------------------------------------------------------------ *)

let test_alert_immediate_fire () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.level" in
  let eng =
    Alert.create
      [ Alert.rule ~name:"high" ~metric:"m.level" Alert.Gt 10.0 ]
  in
  Metrics.set g 5.0;
  Alcotest.(check int) "below threshold: nothing" 0
    (List.length (Alert.eval ~registry:reg eng ~day:1));
  Metrics.set g 11.0;
  (match Alert.eval ~registry:reg eng ~day:2 with
  | [ (r, v) ] ->
    Alcotest.(check string) "fired rule" "high" r.Alert.name;
    exact "fired value" 11.0 v
  | l -> Alcotest.failf "expected 1 active, got %d" (List.length l));
  (match Alert.active eng with
  | [ e ] ->
    Alcotest.(check int) "fired day" 2 e.Alert.fired_day;
    Alcotest.(check bool) "unresolved" true (e.Alert.resolved_day = None)
  | l -> Alcotest.failf "expected 1 active event, got %d" (List.length l));
  Metrics.set g 3.0;
  Alcotest.(check int) "recovery: nothing active" 0
    (List.length (Alert.eval ~registry:reg eng ~day:3));
  match Alert.events eng with
  | [ e ] ->
    Alcotest.(check (option int)) "resolved day" (Some 3) e.Alert.resolved_day;
    Alcotest.(check int) "last satisfied day" 2 e.Alert.last_day
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_alert_debounce () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.level" in
  let eng =
    Alert.create
      [ Alert.rule ~for_days:3 ~name:"sustained" ~metric:"m.level" Alert.Ge 1.0 ]
  in
  Metrics.set g 2.0;
  Alcotest.(check int) "day 1: debouncing" 0
    (List.length (Alert.eval ~registry:reg eng ~day:1));
  Alcotest.(check int) "day 2: debouncing" 0
    (List.length (Alert.eval ~registry:reg eng ~day:2));
  Alcotest.(check int) "day 3: fires" 1
    (List.length (Alert.eval ~registry:reg eng ~day:3));
  (* A single quiet day re-arms the debounce entirely. *)
  Metrics.set g 0.0;
  ignore (Alert.eval ~registry:reg eng ~day:4);
  Metrics.set g 2.0;
  Alcotest.(check int) "day 5: debounce restarted" 0
    (List.length (Alert.eval ~registry:reg eng ~day:5));
  ignore (Alert.eval ~registry:reg eng ~day:6);
  Alcotest.(check int) "day 7: second event" 1
    (List.length (Alert.eval ~registry:reg eng ~day:7));
  Alcotest.(check int) "two events total" 2 (List.length (Alert.events eng));
  match Alert.events eng with
  | [ e1; e2 ] ->
    Alcotest.(check int) "first fired day" 3 e1.Alert.fired_day;
    Alcotest.(check (option int)) "first resolved" (Some 4) e1.Alert.resolved_day;
    Alcotest.(check int) "second fired day" 7 e2.Alert.fired_day;
    Alcotest.(check bool) "second active" true (e2.Alert.resolved_day = None)
  | _ -> Alcotest.fail "event history shape"

let test_alert_histogram_stats () =
  let reg = Metrics.create () in
  let h = Metrics.histogram ~registry:reg "m.lat" in
  Array.iter (Metrics.observe h) (Array.init 100 (fun i -> float_of_int (i + 1)));
  let eval rule =
    let eng = Alert.create [ rule ] in
    Alert.eval ~registry:reg eng ~day:1
  in
  Alcotest.(check int) "p95 above 90 fires" 1
    (List.length (eval (Alert.rule ~stat:Alert.P95 ~name:"p95" ~metric:"m.lat" Alert.Gt 90.0)));
  Alcotest.(check int) "p50 above 90 does not" 0
    (List.length (eval (Alert.rule ~stat:Alert.P50 ~name:"p50" ~metric:"m.lat" Alert.Gt 90.0)));
  Alcotest.(check int) "count >= 100 fires" 1
    (List.length (eval (Alert.rule ~stat:Alert.Count ~name:"n" ~metric:"m.lat" Alert.Ge 100.0)));
  Alcotest.(check int) "max" 1
    (List.length (eval (Alert.rule ~stat:Alert.Max ~name:"max" ~metric:"m.lat" Alert.Ge 100.0)));
  (* Value on a histogram reads the exact mean. *)
  Alcotest.(check int) "value = mean (50.5)" 1
    (List.length (eval (Alert.rule ~name:"mean" ~metric:"m.lat" Alert.Gt 50.0)))

let test_alert_unresolvable_never_fires () =
  let reg = Metrics.create () in
  let c = Metrics.counter ~registry:reg "m.count" in
  Metrics.inc ~by:5.0 c;
  let eng =
    Alert.create
      [
        (* metric never registered *)
        Alert.rule ~name:"ghost" ~metric:"m.ghost" Alert.Gt 0.0;
        (* percentile stat on a counter is unresolvable *)
        Alert.rule ~stat:Alert.P95 ~name:"badstat" ~metric:"m.count" Alert.Gt 0.0;
        (* empty histogram *)
        Alert.rule ~name:"empty" ~metric:"m.empty" Alert.Gt 0.0;
      ]
  in
  ignore (Metrics.histogram ~registry:reg "m.empty");
  for day = 1 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "day %d: nothing fires" day)
      0
      (List.length (Alert.eval ~registry:reg eng ~day))
  done;
  Alcotest.(check int) "no events" 0 (List.length (Alert.events eng))

let test_alert_trace_instant_on_fire () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.level" in
  Metrics.set g 9.0;
  let eng = Alert.create [ Alert.rule ~name:"hot" ~metric:"m.level" Alert.Gt 1.0 ] in
  ignore (Alert.eval ~registry:reg eng ~day:4);
  ignore (Alert.eval ~registry:reg eng ~day:5);
  (* one instant per firing, not per continuing day *)
  match Trace.instants () with
  | [ i ] ->
    Alcotest.(check string) "instant name" "alert" i.Trace.i_name;
    Alcotest.(check (option string))
      "rule tag" (Some "hot")
      (List.assoc_opt "rule" i.Trace.i_tags);
    Alcotest.(check (option string))
      "day tag" (Some "4")
      (List.assoc_opt "day" i.Trace.i_tags)
  | l -> Alcotest.failf "expected 1 instant, got %d" (List.length l)

let test_alert_rules_json_roundtrip () =
  let text =
    {|{"rules": [
        {"name": "p95-ceiling", "metric": "runner.query_seconds",
         "stat": "p95", "op": ">", "threshold": 0.25, "for_days": 2},
        {"name": "hit-floor", "metric": "cache.hit_ratio",
         "op": "<", "threshold": 0.9}
      ]}|}
  in
  let rules =
    match Result.bind (Json.parse text) Alert.rules_of_json with
    | Ok rules -> rules
    | Error e -> Alcotest.failf "rules parse failed: %s" e
  in
  (match rules with
  | [ r1; r2 ] ->
    Alcotest.(check string) "rule 1 name" "p95-ceiling" r1.Alert.name;
    Alcotest.(check bool) "rule 1 stat" true (r1.Alert.stat = Alert.P95);
    Alcotest.(check bool) "rule 1 op" true (r1.Alert.comparator = Alert.Gt);
    Alcotest.(check int) "rule 1 for_days" 2 r1.Alert.for_days;
    Alcotest.(check bool) "rule 2 defaults stat" true (r2.Alert.stat = Alert.Value);
    Alcotest.(check int) "rule 2 defaults for_days" 1 r2.Alert.for_days
  | l -> Alcotest.failf "expected 2 rules, got %d" (List.length l));
  (* A bare top-level array parses too. *)
  match
    Result.bind
      (Json.parse
         {|[{"name": "x", "metric": "m", "op": ">=", "threshold": 1}]|})
      Alert.rules_of_json
  with
  | Ok [ r ] -> Alcotest.(check string) "bare array rule" "x" r.Alert.name
  | Ok l -> Alcotest.failf "expected 1 rule, got %d" (List.length l)
  | Error e -> Alcotest.failf "bare array failed: %s" e

let test_alert_rules_json_errors () =
  let expect_err ~needle text =
    match Result.bind (Json.parse text) Alert.rules_of_json with
    | Ok _ -> Alcotest.failf "accepted bad rules: %s" text
    | Error e ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S mentions %S" e needle)
        true
        (contains e needle)
  in
  expect_err ~needle:"\"bad-op\"" {|[{"name": "bad-op", "metric": "m", "op": "!=", "threshold": 1}]|};
  expect_err ~needle:"metric" {|[{"name": "no-metric", "op": ">", "threshold": 1}]|};
  expect_err ~needle:"threshold" {|[{"name": "no-thresh", "metric": "m", "op": ">"}]|};
  expect_err ~needle:"for_days" {|[{"name": "bad-days", "metric": "m", "op": ">", "threshold": 1, "for_days": 0}]|};
  expect_err ~needle:"stat" {|[{"name": "bad-stat", "metric": "m", "op": ">", "threshold": 1, "stat": "p42"}]|};
  expect_err ~needle:"rule 1" {|[{"name": "ok", "metric": "m", "op": ">", "threshold": 1}, 42]|};
  expect_err ~needle:"no rules" {|{"rules": []}|};
  expect_err ~needle:"rules" {|{"other": 1}|}

let test_alert_events_json () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.level" in
  Metrics.set g 2.0;
  let eng = Alert.create [ Alert.rule ~name:"r" ~metric:"m.level" Alert.Gt 1.0 ] in
  ignore (Alert.eval ~registry:reg eng ~day:1);
  Metrics.set g 0.0;
  ignore (Alert.eval ~registry:reg eng ~day:2);
  let j = Alert.events_json (Alert.events eng) in
  (match Json.member "count" j with
  | Some (Json.Num n) -> exact "count" 1.0 n
  | _ -> Alcotest.fail "count shape");
  match Option.bind (Json.member "alerts" j) Json.to_list with
  | Some [ a ] ->
    Alcotest.(check (option string))
      "rule name"
      (Some "r")
      (Option.bind (Json.member "rule" a) Json.to_str);
    (match Json.member "resolved_day" a with
    | Some (Json.Num d) -> exact "resolved day" 2.0 d
    | _ -> Alcotest.fail "resolved_day shape");
    (* The whole document survives serialization. *)
    (match Json.parse (Json.to_string j) with
    | Ok j' -> Alcotest.(check bool) "roundtrip" true (Json.equal j j')
    | Error e -> Alcotest.failf "reparse: %s" e)
  | _ -> Alcotest.fail "alerts shape"

(* ------------------------------------------------------------------ *)
(* Alert engine driven by the runner                                  *)
(* ------------------------------------------------------------------ *)

let test_runner_alerts () =
  let rules =
    [
      (* Always true once a wave exists: fires on the second day. *)
      Alert.rule ~for_days:2 ~name:"wave-exists"
        ~metric:"runner.day.wave_length" Alert.Ge 1.0;
      (* Impossible: query seconds are never negative. *)
      Alert.rule ~name:"impossible" ~metric:"runner.day.query_seconds"
        Alert.Lt (-1.0);
    ]
  in
  let r, _ = traced_run ~alerts:rules Scheme.Del Env.In_place in
  (match r.Wave_sim.Runner.alerts with
  | [ e ] ->
    Alcotest.(check string) "rule fired" "wave-exists" e.Alert.e_rule.Alert.name;
    (* First simulated day is w+1 = 6; for_days 2 -> fires day 7. *)
    Alcotest.(check int) "fired on second day" 7 e.Alert.fired_day;
    Alcotest.(check int) "held through the run" 13 e.Alert.last_day;
    Alcotest.(check bool) "still active at end" true (e.Alert.resolved_day = None)
  | l -> Alcotest.failf "expected 1 alert event, got %d" (List.length l));
  (* An unconfigured run reports no alerts. *)
  let r2, _ = traced_run Scheme.Del Env.In_place in
  Alcotest.(check int) "no rules -> no events" 0
    (List.length r2.Wave_sim.Runner.alerts)

(* ------------------------------------------------------------------ *)
(* Bench regression gate                                              *)
(* ------------------------------------------------------------------ *)

let series name p50 p95 =
  { Sink.series_name = name; series_p50 = p50; series_p95 = p95 }

let test_gate_passes_within_threshold () =
  let baseline = [ series "probe/DEL" 1.0 2.0; series "scan/DEL" 3.0 4.0 ] in
  let current = [ series "probe/DEL" 1.05 2.0; series "scan/DEL" 2.9 4.3 ] in
  let cmp = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "within threshold passes" true (Sink.bench_ok cmp);
  Alcotest.(check int) "compared both" 2 cmp.Sink.compared;
  Alcotest.(check int) "no regressions" 0 (List.length cmp.Sink.regressions)

let test_gate_fails_on_regression () =
  let baseline = [ series "probe/DEL" 1.0 2.0 ] in
  let current = [ series "probe/DEL" 1.12 2.0 ] in
  let cmp = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "12% p50 growth fails at 10%" false (Sink.bench_ok cmp);
  (match cmp.Sink.regressions with
  | [ d ] ->
    Alcotest.(check string) "series" "probe/DEL" d.Sink.delta_name;
    Alcotest.(check string) "field" "p50" d.Sink.delta_field;
    Alcotest.(check (float 1e-9)) "delta pct" 12.0 d.Sink.delta_pct
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* The same drift passes a looser gate. *)
  Alcotest.(check bool) "passes at 15%" true
    (Sink.bench_ok (Sink.compare_bench ~threshold_pct:15.0 ~baseline ~current));
  let report = Sink.comparison_report cmp in
  Alcotest.(check bool) "report flags the series" true
    (contains report "REGRESSION probe/DEL")

let test_gate_fails_on_vanished_series () =
  let baseline = [ series "probe/DEL" 1.0 2.0; series "gone/X" 1.0 1.0 ] in
  let current = [ series "probe/DEL" 1.0 2.0; series "brand/new" 1.0 1.0 ] in
  let cmp = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "vanished series fails" false (Sink.bench_ok cmp);
  Alcotest.(check (list string)) "missing names" [ "gone/X" ] cmp.Sink.missing;
  Alcotest.(check (list string)) "added names" [ "brand/new" ] cmp.Sink.added

let test_gate_reports_improvements () =
  let baseline = [ series "probe/DEL" 2.0 4.0 ] in
  let current = [ series "probe/DEL" 1.0 4.0 ] in
  let cmp = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "improvement still passes" true (Sink.bench_ok cmp);
  match cmp.Sink.improvements with
  | [ d ] ->
    Alcotest.(check string) "field" "p50" d.Sink.delta_field;
    Alcotest.(check (float 1e-9)) "delta pct" (-50.0) d.Sink.delta_pct
  | l -> Alcotest.failf "expected 1 improvement, got %d" (List.length l)

let test_gate_exempts_wallclock_series () =
  (* transition+file/ series are real wall-seconds: machine-dependent
     jitter is reported but never a regression — while vanishing
     entirely still fails the gate. *)
  Alcotest.(check bool) "prefix recognized" true
    (Sink.wallclock_series "transition+file/DEL/in-place");
  Alcotest.(check bool) "model series not exempt" false
    (Sink.wallclock_series "transition/DEL/in-place");
  let baseline = [ series "transition+file/DEL/in-place" 0.002 0.003 ] in
  let current = [ series "transition+file/DEL/in-place" 0.004 0.009 ] in
  let cmp = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "2x wall drift passes" true (Sink.bench_ok cmp);
  Alcotest.(check int) "still compared" 1 cmp.Sink.compared;
  Alcotest.(check int) "no improvement classification either" 0
    (List.length
       (Sink.compare_bench ~threshold_pct:10.0 ~baseline:current
          ~current:baseline)
         .Sink.improvements);
  let vanished = Sink.compare_bench ~threshold_pct:10.0 ~baseline ~current:[] in
  Alcotest.(check bool) "vanished wall series still fails" false
    (Sink.bench_ok vanished)

let test_gate_exact_rerun_is_clean () =
  (* Bit-identical model-second reruns must never trip the gate, even
     at threshold 0. *)
  let xs = [ series "a" 0.1 0.2; series "b" 0.0 0.0 ] in
  let cmp = Sink.compare_bench ~threshold_pct:0.0 ~baseline:xs ~current:xs in
  Alcotest.(check bool) "identical passes at 0%" true (Sink.bench_ok cmp);
  Alcotest.(check int) "no improvements either" 0
    (List.length cmp.Sink.improvements)

let test_gate_series_extraction () =
  let j =
    Json.Obj
      [
        ("schema", Json.Str "waveidx-bench/1");
        ( "benchmarks",
          Json.Arr
            [
              Json.Obj
                [
                  ("name", Json.Str "probe/DEL");
                  ("p50", Json.Num 0.5);
                  ("p95", Json.Num 0.7);
                  ("runs", Json.int 10);
                ];
            ] );
      ]
  in
  (match Sink.bench_series j with
  | Ok [ s ] ->
    Alcotest.(check string) "name" "probe/DEL" s.Sink.series_name;
    exact "p50" 0.5 s.Sink.series_p50
  | Ok l -> Alcotest.failf "expected 1 series, got %d" (List.length l)
  | Error e -> Alcotest.failf "extraction failed: %s" e);
  match
    Sink.bench_series
      (Json.Obj
         [
           ( "benchmarks",
             Json.Arr [ Json.Obj [ ("name", Json.Str "half/series"); ("p50", Json.Num 1.0) ] ]
           );
         ])
  with
  | Ok _ -> Alcotest.fail "accepted a series without p95"
  | Error e ->
    Alcotest.(check bool)
      "error names the series" true
      (contains e "half/series")

(* ------------------------------------------------------------------ *)
(* Differential profiles                                              *)
(* ------------------------------------------------------------------ *)

let test_diff_identical_exact_zero () =
  let prof = Profile.of_spans sample_spans in
  let d = Profile.diff ~baseline:prof ~current:(Profile.of_spans sample_spans) in
  exact "base total" 12.0 d.Profile.base_total;
  exact "cur total" 12.0 d.Profile.cur_total;
  Alcotest.(check int) "one entry per node" 3 (List.length d.Profile.entries);
  List.iter
    (fun (e : Profile.diff_entry) ->
      let p = String.concat "/" e.Profile.d_path in
      Alcotest.(check bool) (p ^ " common") true
        (e.Profile.d_status = Profile.Common);
      (* Identical trees come from identical float arithmetic: the
         deltas are bitwise zero, not epsilon-close. *)
      exact (p ^ " dself") 0.0 e.Profile.d_self;
      exact (p ^ " dtotal") 0.0 e.Profile.d_total;
      Alcotest.(check int) (p ^ " dcalls") 0 e.Profile.d_calls;
      Alcotest.(check int) (p ^ " dseeks") 0 e.Profile.d_seeks;
      Alcotest.(check int) (p ^ " dblocks") 0 e.Profile.d_blocks;
      Alcotest.(check int) (p ^ " dbytes") 0 e.Profile.d_bytes)
    d.Profile.entries

let diff_find d path =
  match List.find_opt (fun e -> e.Profile.d_path = path) d.Profile.entries with
  | Some e -> e
  | None -> Alcotest.failf "no diff entry for %s" (String.concat "/" path)

let diff_baseline_spans =
  [
    mk ~id:1 ~parent:0 ~name:"root" ~m:10.0 ();
    mk ~id:2 ~parent:1 ~name:"a" ~m:4.0 ~seeks:2 ();
    mk ~id:3 ~parent:1 ~name:"b" ~m:3.0 ();
  ]

(* Sibling order flipped and span ids shifted relative to the baseline:
   alignment is by span-stack path, nothing else. *)
let diff_current_spans =
  [
    mk ~id:5 ~parent:4 ~name:"c" ~m:1.0 ();
    mk ~id:6 ~parent:4 ~name:"b" ~m:6.0 ~seeks:1 ();
    mk ~id:4 ~parent:0 ~name:"root" ~m:12.0 ();
  ]

let test_diff_added_removed_reordered () =
  let baseline = Profile.of_spans diff_baseline_spans in
  let current = Profile.of_spans diff_current_spans in
  let d = Profile.diff ~baseline ~current in
  exact "base total" 10.0 d.Profile.base_total;
  exact "cur total" 12.0 d.Profile.cur_total;
  Alcotest.(check int) "union of both trees" 4 (List.length d.Profile.entries);
  let a = diff_find d [ "root"; "a" ] in
  Alcotest.(check bool) "a removed" true (a.Profile.d_status = Profile.Removed);
  Alcotest.(check bool) "a has no current side" true (a.Profile.d_cur = None);
  exact "a dself" (-4.0) a.Profile.d_self;
  Alcotest.(check int) "a dcalls" (-1) a.Profile.d_calls;
  Alcotest.(check int) "a dseeks" (-2) a.Profile.d_seeks;
  let c = diff_find d [ "root"; "c" ] in
  Alcotest.(check bool) "c added" true (c.Profile.d_status = Profile.Added);
  Alcotest.(check bool) "c has no baseline side" true (c.Profile.d_base = None);
  exact "c dself" 1.0 c.Profile.d_self;
  Alcotest.(check int) "c dcalls" 1 c.Profile.d_calls;
  let b = diff_find d [ "root"; "b" ] in
  Alcotest.(check bool) "b common despite reorder" true
    (b.Profile.d_status = Profile.Common);
  exact "b dself" 3.0 b.Profile.d_self;
  Alcotest.(check int) "b dseeks" 1 b.Profile.d_seeks;
  let root = diff_find d [ "root" ] in
  (* baseline self 10 - 7 = 3, current self 12 - 7 = 5 *)
  exact "root dself" 2.0 root.Profile.d_self;
  exact "root dtotal" 2.0 root.Profile.d_total;
  (* Entries sorted by |self delta|, largest first. *)
  (match d.Profile.entries with
  | e :: _ ->
    Alcotest.(check (list string))
      "largest |dself| first" [ "root"; "a" ] e.Profile.d_path
  | [] -> Alcotest.fail "empty diff");
  Alcotest.(check int) "diff_top truncates" 2
    (List.length (Profile.diff_top ~k:2 d))

let test_diff_of_json_roundtrip () =
  let prof = Profile.of_spans sample_spans in
  match Profile.of_json (Profile.to_json prof) with
  | Error e -> Alcotest.failf "of_json failed: %s" e
  | Ok reparsed ->
    let d = Profile.diff ~baseline:reparsed ~current:prof in
    exact "totals agree" d.Profile.base_total d.Profile.cur_total;
    List.iter
      (fun (e : Profile.diff_entry) ->
        Alcotest.(check bool) "all common" true
          (e.Profile.d_status = Profile.Common);
        exact "dself zero" 0.0 e.Profile.d_self;
        exact "dtotal zero" 0.0 e.Profile.d_total)
      d.Profile.entries

let test_diff_report_and_json () =
  let d =
    Profile.diff
      ~baseline:(Profile.of_spans diff_baseline_spans)
      ~current:(Profile.of_spans diff_current_spans)
  in
  let rep = Profile.diff_report ~k:10 d in
  Alcotest.(check bool) "header present" true (contains rep "profile diff:");
  Alcotest.(check bool) "removed node listed" true (contains rep "root/a");
  Alcotest.(check bool) "removed flagged" true (contains rep "removed");
  Alcotest.(check bool) "added flagged" true (contains rep "added");
  let j = Profile.diff_json d in
  Alcotest.(check (option string))
    "schema" (Some "waveidx-profile-diff/1")
    (Option.bind (Json.member "schema" j) Json.to_str);
  (match Option.bind (Json.member "entries" j) Json.to_list with
  | Some es -> Alcotest.(check int) "entry per union node" 4 (List.length es)
  | None -> Alcotest.fail "entries shape");
  (* The whole document survives serialization. *)
  match Json.parse (Json.to_string j) with
  | Ok j' -> Alcotest.(check bool) "roundtrip" true (Json.equal j j')
  | Error e -> Alcotest.failf "reparse: %s" e

(* ------------------------------------------------------------------ *)
(* Profile-node gate                                                  *)
(* ------------------------------------------------------------------ *)

let topn path calls self total =
  { Sink.top_path = path; top_calls = calls; top_self = self; top_total = total }

let test_profile_gate_passes () =
  let current = Profile.of_spans sample_spans in
  (* Exactly the current tree's own numbers: a bit-identical rerun must
     pass even at threshold 0. *)
  let baseline = [ topn "root" 2 4.0 12.0; topn "root/a" 2 5.0 5.0 ] in
  let g = Sink.compare_profile_top ~threshold_pct:0.0 ~baseline ~current in
  Alcotest.(check bool) "identical passes at 0%" true (Sink.profile_gate_ok g);
  Alcotest.(check int) "compared both" 2 g.Sink.pg_compared;
  Alcotest.(check int) "no regressions" 0 (List.length g.Sink.pg_regressions);
  Alcotest.(check int) "no improvements" 0 (List.length g.Sink.pg_improvements)

let test_profile_gate_regression () =
  let current = Profile.of_spans sample_spans in
  (* root/a's self is 5.0; a baseline of 4.0 makes this a +25% cost
     migration into the node. *)
  let baseline = [ topn "root/a" 2 4.0 4.0 ] in
  let g = Sink.compare_profile_top ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "25% self growth fails at 10%" false
    (Sink.profile_gate_ok g);
  Alcotest.(check bool) "self field reported" true
    (List.exists
       (fun r ->
         r.Sink.delta_name = "root/a" && r.Sink.delta_field = "self_model_s")
       g.Sink.pg_regressions);
  let report = Sink.profile_gate_report g in
  Alcotest.(check bool) "report flags it" true (contains report "REGRESSION");
  Alcotest.(check bool) "report names the node" true (contains report "root/a");
  (* The same drift passes a looser gate. *)
  Alcotest.(check bool) "passes at 30%" true
    (Sink.profile_gate_ok
       (Sink.compare_profile_top ~threshold_pct:30.0 ~baseline ~current))

let test_profile_gate_missing_node () =
  let current = Profile.of_spans sample_spans in
  let baseline = [ topn "root" 2 4.0 12.0; topn "root/zzz" 1 1.0 1.0 ] in
  let g = Sink.compare_profile_top ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "vanished hot node fails" false
    (Sink.profile_gate_ok g);
  Alcotest.(check (list string)) "missing names" [ "root/zzz" ] g.Sink.pg_missing;
  Alcotest.(check int) "the resolvable node still compared" 1 g.Sink.pg_compared;
  Alcotest.(check bool) "report flags it" true
    (contains (Sink.profile_gate_report g) "MISSING")

let test_profile_gate_epsilon_absorbs_noise () =
  (* Self = total - children carries float-subtraction dust, so the
     gate uses an absolute 1e-6 epsilon on top of the percentage
     threshold.  Sub-epsilon drift must not trip even a 0% gate... *)
  let current = Profile.of_spans sample_spans in
  let baseline = [ topn "root" 2 (4.0 -. 1e-8) (12.0 -. 1e-8) ] in
  let g = Sink.compare_profile_top ~threshold_pct:0.0 ~baseline ~current in
  Alcotest.(check bool) "sub-epsilon drift passes at 0%" true
    (Sink.profile_gate_ok g);
  (* ...and in particular a baseline node with self 0.0, where any
     percentage threshold is vacuous, must tolerate rounding dust in
     the fresh run's subtraction. *)
  let dusty =
    Profile.of_spans
      [
        mk ~id:1 ~parent:0 ~name:"r" ~m:5.0 ();
        mk ~id:2 ~parent:1 ~name:"k" ~m:(5.0 -. 1e-9) ();
      ]
  in
  let g2 =
    Sink.compare_profile_top ~threshold_pct:0.0
      ~baseline:[ topn "r" 1 0.0 5.0 ]
      ~current:dusty
  in
  Alcotest.(check bool) "zero-self baseline ignores dust" true
    (Sink.profile_gate_ok g2)

let test_profile_gate_reports_improvements () =
  let current = Profile.of_spans sample_spans in
  let baseline = [ topn "root/a" 2 8.0 8.0 ] in
  let g = Sink.compare_profile_top ~threshold_pct:10.0 ~baseline ~current in
  Alcotest.(check bool) "improvement still passes" true
    (Sink.profile_gate_ok g);
  Alcotest.(check bool) "self improvement reported" true
    (List.exists
       (fun r -> r.Sink.delta_field = "self_model_s")
       g.Sink.pg_improvements)

let test_profile_gate_extraction () =
  let node path calls self total =
    Json.Obj
      [
        ("path", Json.Str path);
        ("calls", Json.int calls);
        ("self_model_s", Json.Num self);
        ("total_model_s", Json.Num total);
      ]
  in
  let j =
    Json.Obj
      [
        ("schema", Json.Str "waveidx-bench/1");
        ( "profile",
          Json.Obj [ ("top", Json.Arr [ node "day/phase.query" 8 1.5 2.0 ]) ] );
      ]
  in
  (match Sink.bench_profile_top j with
  | Ok [ n ] ->
    Alcotest.(check string) "path" "day/phase.query" n.Sink.top_path;
    Alcotest.(check int) "calls" 8 n.Sink.top_calls;
    exact "self" 1.5 n.Sink.top_self;
    exact "total" 2.0 n.Sink.top_total
  | Ok l -> Alcotest.failf "expected 1 node, got %d" (List.length l)
  | Error e -> Alcotest.failf "extraction failed: %s" e);
  (* A baseline without a profile block is an error the caller turns
     into a gate skip, not a crash. *)
  (match Sink.bench_profile_top (Json.Obj [ ("schema", Json.Str "x") ]) with
  | Ok _ -> Alcotest.fail "accepted a baseline without profile"
  | Error e ->
    Alcotest.(check bool) "error names the block" true (contains e "profile"));
  (* A half-written node errors with its index and path. *)
  match
    Sink.bench_profile_top
      (Json.Obj
         [
           ( "profile",
             Json.Obj
               [
                 ( "top",
                   Json.Arr
                     [
                       Json.Obj
                         [ ("path", Json.Str "day"); ("calls", Json.int 1) ];
                     ] );
               ] );
         ])
  with
  | Ok _ -> Alcotest.fail "accepted a node without self/total"
  | Error e ->
    Alcotest.(check bool) "error names the node" true (contains e "\"day\"")

(* ------------------------------------------------------------------ *)
(* Alert scopes                                                       *)
(* ------------------------------------------------------------------ *)

let test_alert_scope_filtering () =
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "t.step_cost" in
  let eng =
    Alert.create
      [
        Alert.rule ~scope:Alert.Transition ~for_days:2 ~name:"step-spike"
          ~metric:"t.step_cost" Alert.Gt 1.0;
        Alert.rule ~name:"daily" ~metric:"t.step_cost" Alert.Gt 1.0;
      ]
  in
  Metrics.set g 5.0;
  (* First transition-scoped eval: streak 1/2, nothing fires, and the
     day rule is not even looked at. *)
  Alcotest.(check int) "transition eval sees only its rule" 0
    (List.length (Alert.eval ~registry:reg ~scope:Alert.Transition eng ~day:6));
  (* A day-scoped eval in between fires the day rule without advancing
     (or resetting) the transition rule's streak. *)
  (match Alert.eval ~registry:reg ~scope:Alert.Day eng ~day:6 with
  | [ (r, v) ] ->
    Alcotest.(check string) "day rule fired" "daily" r.Alert.name;
    exact "observed value" 5.0 v
  | l -> Alcotest.failf "expected 1 active day rule, got %d" (List.length l));
  (* Second transition eval, on the next day: the streak spans the day
     boundary and crosses the debounce. *)
  (match Alert.eval ~registry:reg ~scope:Alert.Transition eng ~day:7 with
  | [ (r, _) ] ->
    Alcotest.(check string) "transition rule fired" "step-spike" r.Alert.name
  | l ->
    Alcotest.failf "expected 1 active transition rule, got %d" (List.length l));
  Alcotest.(check int) "two firings total" 2 (List.length (Alert.events eng));
  (match
     List.find_opt
       (fun e -> e.Alert.e_rule.Alert.name = "step-spike")
       (Alert.events eng)
   with
  | Some e ->
    Alcotest.(check int) "fired when the streak crossed" 7 e.Alert.fired_day
  | None -> Alcotest.fail "no step-spike event");
  (* Recovery seen by a day-scoped eval resolves only the day episode;
     the transition episode stays open until its own scope looks. *)
  Metrics.set g 0.0;
  Alcotest.(check int) "day eval resolves the day rule" 0
    (List.length (Alert.eval ~registry:reg ~scope:Alert.Day eng ~day:8));
  (match Alert.active eng with
  | [ e ] ->
    Alcotest.(check string) "transition episode still open" "step-spike"
      e.Alert.e_rule.Alert.name
  | l -> Alcotest.failf "expected 1 open episode, got %d" (List.length l));
  ignore (Alert.eval ~registry:reg ~scope:Alert.Transition eng ~day:8);
  Alcotest.(check int) "transition eval closes it" 0
    (List.length (Alert.active eng))

let test_alert_scope_json () =
  (match
     Result.bind
       (Json.parse
          {|[{"name": "step", "metric": "m.step", "op": ">", "threshold": 1,
              "scope": "transition"},
             {"name": "daily", "metric": "m.day", "op": ">", "threshold": 1}]|})
       Alert.rules_of_json
   with
  | Ok [ r1; r2 ] ->
    Alcotest.(check bool) "explicit scope" true
      (r1.Alert.scope = Alert.Transition);
    Alcotest.(check bool) "default scope is day" true (r2.Alert.scope = Alert.Day)
  | Ok l -> Alcotest.failf "expected 2 rules, got %d" (List.length l)
  | Error e -> Alcotest.failf "scope parse failed: %s" e);
  (match
     Result.bind
       (Json.parse
          {|[{"name": "x", "metric": "m", "op": ">", "threshold": 1,
              "scope": "hourly"}]|})
       Alert.rules_of_json
   with
  | Ok _ -> Alcotest.fail "accepted a bogus scope"
  | Error e ->
    Alcotest.(check bool) "error mentions scope" true (contains e "scope"));
  (* event_json carries the firing rule's scope. *)
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.step" in
  Metrics.set g 5.0;
  let eng =
    Alert.create
      [
        Alert.rule ~scope:Alert.Transition ~name:"step" ~metric:"m.step"
          Alert.Gt 1.0;
      ]
  in
  ignore (Alert.eval ~registry:reg ~scope:Alert.Transition eng ~day:3);
  match Alert.events eng with
  | [ e ] ->
    Alcotest.(check (option string))
      "scope in json" (Some "transition")
      (Option.bind (Json.member "scope" (Alert.event_json e)) Json.to_str)
  | l -> Alcotest.failf "expected 1 event, got %d" (List.length l)

let test_runner_transition_alerts () =
  let rules =
    [
      (* Every DEL maintenance step does real work: fires from inside
         the first simulated day. *)
      Alert.rule ~scope:Alert.Transition ~name:"step-work"
        ~metric:"runner.transition.seconds" Alert.Gt 0.0;
      (* The same condition at day scope, debounced past the run's
         length: the day-level rule stays silent while the
         transition-scoped one fires. *)
      Alert.rule ~for_days:100 ~name:"day-sustained"
        ~metric:"runner.day.transition_seconds" Alert.Gt 0.0;
    ]
  in
  let r, _ = traced_run ~alerts:rules Scheme.Del Env.In_place in
  (match r.Wave_sim.Runner.alerts with
  | [ e ] ->
    Alcotest.(check string) "transition rule fired" "step-work"
      e.Alert.e_rule.Alert.name;
    Alcotest.(check bool) "scope" true
      (e.Alert.e_rule.Alert.scope = Alert.Transition);
    (* First simulated day is w+1 = 6; the step rule fires inside it,
       before the first day boundary. *)
    Alcotest.(check int) "fired on the first step" 6 e.Alert.fired_day;
    Alcotest.(check bool) "still active at end" true
      (e.Alert.resolved_day = None)
  | l -> Alcotest.failf "expected 1 alert event, got %d" (List.length l));
  (* The per-transition gauges are published to the default registry
     with the last step's values. *)
  match Metrics.lookup "runner.transition.seconds" with
  | Some (`Gauge v) ->
    Alcotest.(check bool) "last step cost published" true (v > 0.0)
  | _ -> Alcotest.fail "runner.transition.seconds gauge missing"

let suites =
  [
    ( "profile.tree",
      [
        Alcotest.test_case "aggregation and self/total" `Quick test_profile_tree;
        Alcotest.test_case "orphans become roots" `Quick
          test_profile_orphans_are_roots;
        Alcotest.test_case "top_self" `Quick test_profile_top_self;
      ] );
    ( "profile.render",
      [
        Alcotest.test_case "folded stacks" `Quick test_profile_folded;
        Alcotest.test_case "json validates" `Quick test_profile_json_validates;
        Alcotest.test_case "json rejects malformed" `Quick
          test_profile_json_rejects_malformed;
      ] );
    ( "profile.conservation",
      [
        Alcotest.test_case "DEL/in-place" `Quick test_conservation_del_inplace;
        Alcotest.test_case "WATA*/packed-shadow" `Quick
          test_conservation_wata_packed;
      ] );
    ( "profile.alert",
      [
        Alcotest.test_case "immediate fire and resolve" `Quick
          test_alert_immediate_fire;
        Alcotest.test_case "for_days debounce" `Quick test_alert_debounce;
        Alcotest.test_case "histogram stats" `Quick test_alert_histogram_stats;
        Alcotest.test_case "unresolvable never fires" `Quick
          test_alert_unresolvable_never_fires;
        Alcotest.test_case "trace instant on fire" `Quick
          test_alert_trace_instant_on_fire;
        Alcotest.test_case "rules json roundtrip" `Quick
          test_alert_rules_json_roundtrip;
        Alcotest.test_case "rules json errors" `Quick
          test_alert_rules_json_errors;
        Alcotest.test_case "events json" `Quick test_alert_events_json;
      ] );
    ( "profile.alert_runner",
      [
        Alcotest.test_case "rules over a run" `Quick test_runner_alerts;
        Alcotest.test_case "transition scope over a run" `Quick
          test_runner_transition_alerts;
      ] );
    ( "profile.alert_scope",
      [
        Alcotest.test_case "scoped eval and debounce" `Quick
          test_alert_scope_filtering;
        Alcotest.test_case "scope json" `Quick test_alert_scope_json;
      ] );
    ( "profile.diff",
      [
        Alcotest.test_case "identical trees diff to zero" `Quick
          test_diff_identical_exact_zero;
        Alcotest.test_case "added/removed/reordered" `Quick
          test_diff_added_removed_reordered;
        Alcotest.test_case "of_json roundtrip" `Quick test_diff_of_json_roundtrip;
        Alcotest.test_case "report and json" `Quick test_diff_report_and_json;
      ] );
    ( "profile.node_gate",
      [
        Alcotest.test_case "passes on identical tree" `Quick
          test_profile_gate_passes;
        Alcotest.test_case "fails on self regression" `Quick
          test_profile_gate_regression;
        Alcotest.test_case "fails on missing node" `Quick
          test_profile_gate_missing_node;
        Alcotest.test_case "epsilon absorbs noise" `Quick
          test_profile_gate_epsilon_absorbs_noise;
        Alcotest.test_case "reports improvements" `Quick
          test_profile_gate_reports_improvements;
        Alcotest.test_case "baseline extraction" `Quick
          test_profile_gate_extraction;
      ] );
    ( "profile.gate",
      [
        Alcotest.test_case "passes within threshold" `Quick
          test_gate_passes_within_threshold;
        Alcotest.test_case "fails on regression" `Quick
          test_gate_fails_on_regression;
        Alcotest.test_case "fails on vanished series" `Quick
          test_gate_fails_on_vanished_series;
        Alcotest.test_case "reports improvements" `Quick
          test_gate_reports_improvements;
        Alcotest.test_case "wall-clock series exempt from drift" `Quick
          test_gate_exempts_wallclock_series;
        Alcotest.test_case "exact rerun is clean" `Quick
          test_gate_exact_rerun_is_clean;
        Alcotest.test_case "series extraction" `Quick
          test_gate_series_extraction;
      ] );
  ]
