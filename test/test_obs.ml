(* Tests for the Wave_obs observability layer: the JSON printer/parser,
   the ambient-span tracer and its disk-cost attribution, the metrics
   registry, the trace sinks, and — the load-bearing one — the
   cross-check that span-attributed disk totals for a full simulated
   day equal the runner's day_metrics fields exactly. *)

open Wave_obs
open Wave_core

let exact = Alcotest.(check (float 0.0))

(* Every test leaves the global tracer quiescent so suites can run in
   any order. *)
let with_clean_tracer f =
  Trace.disable ();
  Trace.reset ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json                                                               *)
(* ------------------------------------------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.int 42);
      ("neg", Json.Num (-17.5));
      ("text", Json.Str "hello \"quoted\" back\\slash\n\ttab");
      ("arr", Json.Arr [ Json.int 1; Json.Str "two"; Json.Bool false ]);
      ("nested", Json.Obj [ ("k", Json.Arr []) ]);
    ]

let test_json_roundtrip () =
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty sample_json) with
      | Ok parsed ->
        Alcotest.(check bool)
          (Printf.sprintf "roundtrip pretty=%b" pretty)
          true
          (Json.equal sample_json parsed)
      | Error e -> Alcotest.failf "parse failed: %s" e)
    [ false; true ]

let test_json_escaping () =
  let s = Json.to_string (Json.Str "a\"b\\c\nd\x01e") in
  Alcotest.(check string) "escaped" {|"a\"b\\c\nd\u0001e"|} s;
  (match Json.parse {|"Aé😀"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "unicode decode" "A\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error e -> Alcotest.failf "unicode parse failed: %s" e);
  (* Non-finite floats cannot be represented; they degrade to null. *)
  Alcotest.(check string) "nan -> null" "null" (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string)
    "inf -> null" "null"
    (Json.to_string (Json.Num Float.infinity))

let test_json_integers_compact () =
  Alcotest.(check string) "integer without decimals" "3" (Json.to_string (Json.int 3));
  Alcotest.(check string)
    "float keeps precision" "0.5"
    (Json.to_string (Json.Num 0.5))

let test_json_parse_errors () =
  let bad input =
    match Json.parse input with
    | Ok _ -> Alcotest.failf "expected parse error for %S" input
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1, 2,]";
  bad "{\"a\": }";
  bad "tru";
  bad "1 2" (* trailing garbage *);
  bad "\"unterminated"

let test_json_accessors () =
  let j = Json.Obj [ ("x", Json.Num 1.5); ("s", Json.Str "v") ] in
  (match Json.member "x" j with
  | Some (Json.Num f) -> exact "member x" 1.5 f
  | _ -> Alcotest.fail "missing member x");
  Alcotest.(check bool) "absent member" true (Json.member "zzz" j = None)

let test_json_surrogate_pairs () =
  (* 😀 is U+1F600 (grinning face) encoded as a UTF-16
     surrogate pair; the parser must combine it into 4 UTF-8 bytes. *)
  (match Json.parse {|"😀"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "surrogate pair combined" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error e -> Alcotest.failf "surrogate parse failed: %s" e);
  (* The combined scalar survives a print -> parse round trip. *)
  (match
     Json.parse (Json.to_string (Json.Str "\xf0\x9f\x98\x80"))
   with
  | Ok (Json.Str s) -> Alcotest.(check string) "roundtrip" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected string"
  | Error e -> Alcotest.failf "roundtrip failed: %s" e);
  (* Unpaired or malformed surrogates are parse errors, not mojibake. *)
  List.iter
    (fun input ->
      match Json.parse input with
      | Ok _ -> Alcotest.failf "accepted lone surrogate %S" input
      | Error _ -> ())
    [ {|"\ud83d"|}; {|"\ud83dA"|}; {|"\ude00"|} ]

let test_json_non_finite () =
  (* Non-finite floats degrade to null everywhere they can appear, so
     emitted documents always re-parse. *)
  let j =
    Json.Arr [ Json.Num Float.nan; Json.Num Float.neg_infinity; Json.Num 1.0 ]
  in
  let s = Json.to_string j in
  Alcotest.(check string) "non-finite -> null" "[null,null,1]" s;
  match Json.parse s with
  | Ok (Json.Arr [ Json.Null; Json.Null; Json.Num v ]) -> exact "finite kept" 1.0 v
  | Ok _ -> Alcotest.fail "reparse shape"
  | Error e -> Alcotest.failf "reparse failed: %s" e

let test_json_deep_nesting () =
  let depth = 500 in
  let rec build n = if n = 0 then Json.int 7 else Json.Arr [ build (n - 1) ] in
  let deep = build depth in
  match Json.parse (Json.to_string deep) with
  | Ok parsed ->
    Alcotest.(check bool) "deep document round-trips" true (Json.equal deep parsed)
  | Error e -> Alcotest.failf "deep parse failed: %s" e

(* parse (to_string j) = j over random finite documents. *)
let json_roundtrip_prop =
  let open QCheck2.Gen in
  let scalar =
    oneof
      [
        pure Json.Null;
        map (fun b -> Json.Bool b) bool;
        (* eighths are exact in binary, so equality is not confounded
           by decimal printing *)
        map (fun i -> Json.Num (float_of_int i /. 8.0)) (int_range (-8000) 8000);
        map (fun s -> Json.Str s) (string_size ~gen:printable (int_range 0 12));
      ]
  in
  let gen =
    sized @@ fix (fun self n ->
        if n = 0 then scalar
        else
          oneof
            [
              scalar;
              map (fun xs -> Json.Arr xs) (list_size (int_range 0 4) (self (n / 2)));
              map
                (fun kvs -> Json.Obj kvs)
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 0 8)) (self (n / 2))));
            ])
  in
  QCheck2.Test.make ~name:"parse (to_string j) = j" ~count:300 gen (fun j ->
      match Json.parse (Json.to_string j) with
      | Ok j' -> Json.equal j j'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Trace                                                              *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_is_passthrough () =
  with_clean_tracer @@ fun () ->
  Alcotest.(check bool) "disabled" false (Trace.is_enabled ());
  let r = Trace.with_span "nope" (fun () -> 7) in
  Alcotest.(check int) "body result" 7 r;
  Trace.on_seek ();
  Trace.on_read ~blocks:3 ~bytes:300;
  Trace.instant "nope";
  Alcotest.(check int) "no spans recorded" 0 (List.length (Trace.spans ()));
  Alcotest.(check int) "no instants recorded" 0 (List.length (Trace.instants ()));
  Alcotest.(check int) "nothing open" 0 (Trace.open_depth ())

let test_trace_nesting_and_attribution () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  let r =
    Trace.with_span "parent" ~tags:[ ("k", "v") ] (fun () ->
        Trace.on_seek ();
        Trace.on_read ~blocks:2 ~bytes:200;
        let inner =
          Trace.with_span "child" (fun () ->
              Trace.on_write ~blocks:5 ~bytes:500;
              Trace.on_model_seconds 0.25;
              41)
        in
        Trace.on_seek ();
        inner + 1)
  in
  Alcotest.(check int) "result" 42 r;
  let parent =
    match Trace.find_spans "parent" with [ s ] -> s | _ -> Alcotest.fail "parent"
  in
  let child =
    match Trace.find_spans "child" with [ s ] -> s | _ -> Alcotest.fail "child"
  in
  Alcotest.(check int) "child nests under parent" parent.Trace.id
    child.Trace.parent;
  Alcotest.(check int) "parent at top level" 0 parent.Trace.parent;
  (* Attribution is inclusive: the child's writes also land on the
     parent; the parent's seeks/reads do not land on the child. *)
  Alcotest.(check int) "parent seeks" 2 parent.Trace.seeks;
  Alcotest.(check int) "parent blocks read" 2 parent.Trace.blocks_read;
  Alcotest.(check int) "parent blocks written" 5 parent.Trace.blocks_written;
  Alcotest.(check int) "parent bytes written" 500 parent.Trace.bytes_written;
  Alcotest.(check int) "child seeks" 0 child.Trace.seeks;
  Alcotest.(check int) "child blocks written" 5 child.Trace.blocks_written;
  exact "child model seconds" 0.25 (Trace.model_seconds child);
  exact "parent model seconds" 0.25 (Trace.model_seconds parent);
  Alcotest.(check bool)
    "tag filter hits" true
    (List.length (Trace.find_spans ~tags:[ ("k", "v") ] "parent") = 1);
  Alcotest.(check bool)
    "tag filter misses" true
    (Trace.find_spans ~tags:[ ("k", "other") ] "parent" = [])

let test_trace_exception_safety () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  (try
     Trace.with_span "boom" (fun () ->
         Trace.on_seek ();
         failwith "kapow")
   with Failure _ -> ());
  (match Trace.find_spans "boom" with
  | [ s ] ->
    Alcotest.(check int) "attribution survives raise" 1 s.Trace.seeks;
    Alcotest.(check bool) "span was closed" true
      (s.Trace.end_wall >= s.Trace.start_wall)
  | _ -> Alcotest.fail "span not recorded on raise");
  Alcotest.(check int) "stack unwound" 0 (Trace.open_depth ())

let test_trace_model_clock () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  let fake = ref 100.0 in
  Trace.set_model_clock (fun () -> !fake);
  Trace.with_span "clocked" (fun () -> fake := 103.5);
  (match Trace.find_spans "clocked" with
  | [ s ] ->
    exact "start from registered clock" 100.0 s.Trace.start_model;
    exact "end from registered clock" 103.5 s.Trace.end_model;
    exact "duration" 3.5 (Trace.model_seconds s)
  | _ -> Alcotest.fail "span not recorded");
  (* disable unregisters the clock; the default accumulator resumes. *)
  Trace.disable ();
  Trace.reset ();
  Trace.enable ();
  Trace.with_span "default-clock" (fun () -> Trace.on_model_seconds 2.0);
  match Trace.find_spans "default-clock" with
  | [ s ] ->
    exact "default accumulator start" 0.0 s.Trace.start_model;
    exact "default accumulator duration" 2.0 (Trace.model_seconds s)
  | _ -> Alcotest.fail "span not recorded"

let test_trace_instants () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  Trace.on_model_seconds 1.5;
  Trace.instant "mark" ~tags:[ ("slot", "2") ];
  match Trace.instants () with
  | [ i ] ->
    Alcotest.(check string) "name" "mark" i.Trace.i_name;
    exact "model timestamp" 1.5 i.Trace.at_model;
    Alcotest.(check (list (pair string string)))
      "tags"
      [ ("slot", "2") ]
      i.Trace.i_tags
  | l -> Alcotest.failf "expected one instant, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_counter () =
  let r = Metrics.create () in
  let c = Metrics.counter ~registry:r "test.hits" in
  Metrics.inc c;
  Metrics.inc ~by:2.5 c;
  exact "counter accumulates" 3.5 (Metrics.counter_value c);
  let c' = Metrics.counter ~registry:r "test.hits" in
  Metrics.inc c';
  exact "interned by name" 4.5 (Metrics.counter_value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.inc: negative increment") (fun () ->
      Metrics.inc ~by:(-1.0) c)

let test_metrics_gauge_and_kinds () =
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "test.level" in
  Metrics.set g 7.0;
  Metrics.set g 3.0;
  exact "gauge keeps last" 3.0 (Metrics.gauge_value g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Metrics: \"test.level\" is already a gauge")
    (fun () -> ignore (Metrics.counter ~registry:r "test.level"))

let test_metrics_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r "test.latency" in
  Alcotest.(check bool) "empty -> None" true (Metrics.hist_summary h = None);
  Array.iter (Metrics.observe h) (Array.init 100 (fun i -> float_of_int (i + 1)));
  Alcotest.(check int) "count" 100 (Metrics.hist_count h);
  (match Metrics.hist_summary h with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    Alcotest.(check int) "summary count" 100 s.Metrics.count;
    exact "min" 1.0 s.Metrics.min;
    exact "max" 100.0 s.Metrics.max;
    exact "p50" 50.5 s.Metrics.p50;
    exact "mean" 50.5 s.Metrics.mean);
  Metrics.reset r;
  Alcotest.(check int) "reset clears" 0 (Metrics.hist_count h)

let test_metrics_json () =
  let r = Metrics.create () in
  Metrics.inc (Metrics.counter ~registry:r "c1");
  Metrics.set (Metrics.gauge ~registry:r "g1") 9.0;
  Metrics.observe (Metrics.histogram ~registry:r "h1") 4.0;
  let j = Metrics.to_json r in
  (match Json.member "counters" j with
  | Some (Json.Obj [ ("c1", Json.Num v) ]) -> exact "counter in json" 1.0 v
  | _ -> Alcotest.fail "counters shape");
  match Json.member "histograms" j with
  | Some (Json.Obj [ ("h1", h) ]) -> (
    match Json.member "count" h with
    | Some (Json.Num n) -> exact "hist count in json" 1.0 n
    | _ -> Alcotest.fail "histogram count")
  | _ -> Alcotest.fail "histograms shape"

let test_btree_counters_flow () =
  (* The substrate counters are always on; nodes split during plain
     index use must show up in the default registry.  [reset_all]
     gives this run a clean slate, so the value below is this run's
     own count rather than a delta against whatever earlier tests left
     behind in the process-global registry. *)
  Metrics.reset_all ();
  let t = Wave_storage.Btree.create ~order:8 () in
  for k = 1 to 500 do
    Wave_storage.Btree.insert t k k
  done;
  exact "insert counter" 500.0
    (Metrics.counter_value (Metrics.counter "btree.inserts"));
  (* The snapshot sees the same value without touching handles. *)
  match List.assoc_opt "btree.inserts" (Metrics.snapshot ()) with
  | Some (`Counter v) -> exact "snapshot agrees" 500.0 v
  | _ -> Alcotest.fail "snapshot missing btree.inserts"

let test_metrics_snapshot_and_reset () =
  let r = Metrics.create () in
  Metrics.inc ~by:2.0 (Metrics.counter ~registry:r "c");
  Metrics.set (Metrics.gauge ~registry:r "g") 9.0;
  Metrics.observe (Metrics.histogram ~registry:r "h") 4.0;
  let snap = Metrics.snapshot ~registry:r () in
  (match snap with
  | [ ("c", `Counter c); ("g", `Gauge g); ("h", `Histogram (Some s)) ] ->
    exact "counter" 2.0 c;
    exact "gauge" 9.0 g;
    Alcotest.(check int) "hist count" 1 s.Metrics.count;
    exact "hist mean" 4.0 s.Metrics.mean
  | l -> Alcotest.failf "unexpected snapshot shape (%d entries)" (List.length l));
  Metrics.reset r;
  (* The earlier snapshot is a copy, unchanged by the reset... *)
  (match List.assoc_opt "c" snap with
  | Some (`Counter c) -> exact "snapshot immutable" 2.0 c
  | _ -> Alcotest.fail "counter vanished from snapshot");
  (* ...while a fresh one sees the zeroed registry, handles intact. *)
  match Metrics.snapshot ~registry:r () with
  | [ ("c", `Counter c); ("g", `Gauge g); ("h", `Histogram None) ] ->
    exact "counter zeroed" 0.0 c;
    exact "gauge zeroed" 0.0 g
  | _ -> Alcotest.fail "post-reset snapshot shape"

let test_metrics_reset_all_default () =
  let c = Metrics.counter "obs.test.reset_all" in
  Metrics.inc c;
  Alcotest.(check bool) "advanced" true (Metrics.counter_value c >= 1.0);
  Metrics.reset_all ();
  exact "default registry zeroed" 0.0 (Metrics.counter_value c)

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

let collect_small_trace () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  Trace.with_span "outer" ~tags:[ ("scheme", "DEL") ] (fun () ->
      Trace.on_seek ();
      Trace.on_model_seconds 0.125;
      Trace.with_span "inner" (fun () -> Trace.on_write ~blocks:1 ~bytes:100);
      Trace.instant "tick");
  (Trace.spans (), Trace.instants ())

let test_sink_chrome_valid () =
  let spans, instants = collect_small_trace () in
  let doc = Sink.chrome_json ~spans ~instants () in
  (match Sink.validate_chrome doc with
  | Ok n -> Alcotest.(check int) "all events present" 3 n
  | Error e -> Alcotest.failf "invalid chrome trace: %s" e);
  (* The serialized document survives a parse -> validate round trip. *)
  match Json.parse (Json.to_string doc) with
  | Error e -> Alcotest.failf "chrome json reparse: %s" e
  | Ok doc' -> (
    match Sink.validate_chrome doc' with
    | Ok n -> Alcotest.(check int) "reparsed events" 3 n
    | Error e -> Alcotest.failf "reparsed invalid: %s" e)

let test_sink_chrome_file () =
  let spans, instants = collect_small_trace () in
  let path = Filename.temp_file "wave_obs_test" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Sink.write_chrome ~path ~spans ~instants ();
  match Sink.validate_chrome_file path with
  | Ok n -> Alcotest.(check int) "file validates" 3 n
  | Error e -> Alcotest.failf "chrome file invalid: %s" e

let test_sink_chrome_rejects_malformed () =
  let bad =
    Json.Obj
      [
        ( "traceEvents",
          Json.Arr [ Json.Obj [ ("name", Json.Str "x"); ("ph", Json.Str "X") ] ]
        );
      ]
  in
  match Sink.validate_chrome bad with
  | Ok _ -> Alcotest.fail "validator accepted an event without ts"
  | Error _ -> ()

let test_sink_jsonl () =
  let spans, instants = collect_small_trace () in
  let text = Sink.jsonl ~spans ~instants in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "one line per event" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "jsonl line is not an object"
      | Error e -> Alcotest.failf "jsonl line unparseable: %s" e)
    lines

(* ------------------------------------------------------------------ *)
(* Runner cross-check: span attribution == day_metrics, exactly       *)
(* ------------------------------------------------------------------ *)

let small_store =
  Wave_workload.Netnews.store
    {
      Wave_workload.Netnews.default_config with
      Wave_workload.Netnews.mean_postings = 80;
    }

let small_queries =
  {
    Wave_workload.Query_gen.seed = 5;
    probes_per_day = 6;
    probe_range = Wave_workload.Query_gen.Whole_window;
    scans_per_day = 1;
    scan_range = Wave_workload.Query_gen.Whole_window;
    value_dist = Wave_workload.Query_gen.Zipfian { vocab = 2_000; s = 1.0 };
  }

let traced_run scheme technique =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  let r =
    Wave_sim.Runner.run
      {
        (Wave_sim.Runner.default_config ~scheme ~store:small_store ~w:5 ~n:3) with
        Wave_sim.Runner.technique;
        run_days = 8;
        queries = Some small_queries;
      }
  in
  (r, Trace.spans ())

let check_day_attribution scheme technique =
  let r, spans = traced_run scheme technique in
  (* make_disk sets the disk's block size to entry_bytes. *)
  let block_size =
    Wave_storage.Index.default_config.Wave_storage.Index.entry_bytes
  in
  let ctx fmt =
    Printf.ksprintf
      (fun s ->
        Printf.sprintf "%s/%s %s" (Scheme.name scheme)
          (Env.technique_name technique) s)
      fmt
  in
  Alcotest.(check int) (ctx "ran 8 days") 8 (List.length r.Wave_sim.Runner.days);
  List.iter
    (fun (d : Wave_sim.Runner.day_metrics) ->
      let day_tag = [ ("day", string_of_int d.Wave_sim.Runner.day) ] in
      let the name =
        match
          List.filter
            (fun (sp : Trace.span) ->
              sp.Trace.name = name
              && List.for_all
                   (fun kv -> List.mem kv sp.Trace.tags)
                   day_tag)
            spans
        with
        | [ s ] -> s
        | l ->
          Alcotest.failf "%s: expected 1 %s span for day %d, got %d"
            (ctx "spans") name d.Wave_sim.Runner.day (List.length l)
      in
      let day_span = the "day" in
      let maint = the "phase.maintenance" in
      let query = the "phase.query" in
      (* Model seconds: bit-identical because the runner registers the
         simulation disk's elapsed clock as the tracer's model clock. *)
      exact
        (ctx "maintenance seconds day %d" d.Wave_sim.Runner.day)
        d.Wave_sim.Runner.maintenance_seconds
        (Trace.model_seconds maint);
      exact
        (ctx "query seconds day %d" d.Wave_sim.Runner.day)
        d.Wave_sim.Runner.query_seconds
        (Trace.model_seconds query);
      (* Disk counters: the day span's attributed totals are the same
         increments the runner differences out of Disk.counters. *)
      Alcotest.(check int)
        (ctx "seeks day %d" d.Wave_sim.Runner.day)
        d.Wave_sim.Runner.seeks day_span.Trace.seeks;
      Alcotest.(check int)
        (ctx "blocks read day %d" d.Wave_sim.Runner.day)
        d.Wave_sim.Runner.blocks_read day_span.Trace.blocks_read;
      Alcotest.(check int)
        (ctx "blocks written day %d" d.Wave_sim.Runner.day)
        d.Wave_sim.Runner.blocks_written day_span.Trace.blocks_written;
      (* Bytes: reads always arrive in whole blocks; writes may add
         streamed (sub-block) transfer bytes under packed shadowing. *)
      Alcotest.(check int)
        (ctx "bytes read day %d" d.Wave_sim.Runner.day)
        (d.Wave_sim.Runner.blocks_read * block_size)
        day_span.Trace.bytes_read;
      if technique = Env.In_place then
        Alcotest.(check int)
          (ctx "bytes written day %d" d.Wave_sim.Runner.day)
          (d.Wave_sim.Runner.blocks_written * block_size)
          day_span.Trace.bytes_written
      else
        Alcotest.(check bool)
          (ctx "bytes written cover blocks day %d" d.Wave_sim.Runner.day)
          true
          (day_span.Trace.bytes_written
          >= d.Wave_sim.Runner.blocks_written * block_size);
      (* Phases tile the day: their attributed model time can't exceed
         the whole day span's. *)
      Alcotest.(check bool)
        (ctx "phases within day %d" d.Wave_sim.Runner.day)
        true
        (Trace.model_seconds maint +. Trace.model_seconds query
        <= Trace.model_seconds day_span +. 1e-12))
    r.Wave_sim.Runner.days

let test_runner_attribution_del_inplace () =
  check_day_attribution Scheme.Del Env.In_place

let test_runner_attribution_del_packed () =
  check_day_attribution Scheme.Del Env.Packed_shadow

let test_runner_attribution_wata_inplace () =
  check_day_attribution Scheme.Wata_star Env.In_place

let test_runner_attribution_wata_packed () =
  check_day_attribution Scheme.Wata_star Env.Packed_shadow

let test_runner_span_inventory () =
  let r, spans = traced_run Scheme.Del Env.Simple_shadow in
  ignore r;
  let count name =
    List.length (List.filter (fun s -> s.Trace.name = name) spans)
  in
  Alcotest.(check int) "one start phase" 1 (count "phase.start");
  Alcotest.(check int) "day spans" 8 (count "day");
  Alcotest.(check int) "maintenance spans" 8 (count "phase.maintenance");
  Alcotest.(check int) "query spans" 8 (count "phase.query");
  Alcotest.(check int) "transition spans" 8 (count "transition");
  Alcotest.(check bool) "adds traced" true (count "AddToIndex" > 0);
  Alcotest.(check bool) "deletes traced" true (count "DeleteFromIndex" > 0);
  (* Every span's parent is either 0 or a recorded span id. *)
  let ids = List.map (fun s -> s.Trace.id) spans in
  List.iter
    (fun s ->
      if s.Trace.parent <> 0 then
        Alcotest.(check bool)
          (Printf.sprintf "parent of %s known" s.Trace.name)
          true
          (List.mem s.Trace.parent ids))
    spans

let test_runner_percentiles () =
  let r, _ = traced_run Scheme.Del Env.In_place in
  let series f =
    Array.of_list (List.map f r.Wave_sim.Runner.days)
  in
  let expect =
    Wave_util.Stats.percentile
      (series (fun d -> d.Wave_sim.Runner.transition_seconds))
      50.0
  in
  exact "transition p50 matches Stats" expect
    r.Wave_sim.Runner.transition_percentiles.Wave_sim.Runner.p50;
  let q95 =
    Wave_util.Stats.percentile
      (series (fun d -> d.Wave_sim.Runner.query_seconds))
      95.0
  in
  exact "query p95 matches Stats" q95
    r.Wave_sim.Runner.query_percentiles.Wave_sim.Runner.p95;
  let p = r.Wave_sim.Runner.transition_percentiles in
  Alcotest.(check bool)
    "percentiles ordered" true
    (p.Wave_sim.Runner.p50 <= p.Wave_sim.Runner.p95
    && p.Wave_sim.Runner.p95 <= p.Wave_sim.Runner.p99)

let test_runner_untraced_has_no_spans () =
  with_clean_tracer @@ fun () ->
  let r =
    Wave_sim.Runner.run
      {
        (Wave_sim.Runner.default_config ~scheme:Scheme.Del ~store:small_store
           ~w:5 ~n:2)
        with
        Wave_sim.Runner.run_days = 3;
      }
  in
  Alcotest.(check int) "days simulated" 3 (List.length r.Wave_sim.Runner.days);
  Alcotest.(check int) "no spans collected" 0 (List.length (Trace.spans ()))

(* ------------------------------------------------------------------ *)
(* Bounded histograms (reservoir sampling)                            *)
(* ------------------------------------------------------------------ *)

let test_metrics_reservoir_bounded () =
  let r = Metrics.create () in
  let cap = 2048 in
  let n = 50_000 in
  let h = Metrics.histogram ~registry:r ~cap "test.reservoir" in
  for i = 1 to n do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int) "count stays exact past the cap" n (Metrics.hist_count h);
  Alcotest.(check int) "reservoir bounded" cap (Metrics.hist_sample_size h);
  Alcotest.(check int)
    "hist_values bounded" cap
    (Array.length (Metrics.hist_values h));
  match Metrics.hist_summary h with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    (* Running aggregates are exact even while sampling. *)
    Alcotest.(check int) "summary count exact" n s.Metrics.count;
    exact "min exact" 1.0 s.Metrics.min;
    exact "max exact" (float_of_int n) s.Metrics.max;
    exact "mean exact" (float_of_int (n + 1) /. 2.0) s.Metrics.mean;
    (* Percentiles come from the reservoir: for a uniform stream the
       p-th percentile of a cap-sized uniform sample is within a few
       percent with overwhelming probability; 10% is a loose bound that
       never flakes with the deterministic per-name PRNG. *)
    let within name expected got tol =
      let rel = Float.abs (got -. expected) /. expected in
      if rel > tol then
        Alcotest.failf "%s: expected ~%g, got %g (rel err %.3f > %.2f)" name
          expected got rel tol
    in
    within "p50" (float_of_int n /. 2.0) s.Metrics.p50 0.10;
    within "p95" (float_of_int n *. 0.95) s.Metrics.p95 0.10

let test_metrics_reservoir_exact_below_cap () =
  let r = Metrics.create () in
  let h = Metrics.histogram ~registry:r ~cap:1000 "test.small" in
  for i = 1 to 200 do
    Metrics.observe h (float_of_int i)
  done;
  Alcotest.(check int)
    "everything retained below cap" 200
    (Metrics.hist_sample_size h);
  (* Recording order is preserved while under the cap. *)
  let vs = Metrics.hist_values h in
  exact "first retained" 1.0 vs.(0);
  exact "last retained" 200.0 vs.(199);
  match Metrics.hist_summary h with
  | None -> Alcotest.fail "summary missing"
  | Some s ->
    exact "p50 exact below cap" 100.5 s.Metrics.p50;
    (* linear interpolation at rank 0.95 * 199 = 189.05 *)
    Alcotest.(check bool)
      "p95 exact below cap" true
      (Float.abs (s.Metrics.p95 -. 190.05) < 1e-9)

let test_metrics_reservoir_deterministic () =
  (* Same name and stream => same reservoir, byte for byte: the PRNG
     is seeded from the histogram name. *)
  let run () =
    let r = Metrics.create () in
    let h = Metrics.histogram ~registry:r ~cap:64 "test.seeded" in
    for i = 1 to 5_000 do
      Metrics.observe h (float_of_int i)
    done;
    Metrics.hist_values h
  in
  Alcotest.(check bool) "reservoir reproducible" true (run () = run ())

let test_metrics_default_cap () =
  let original = Metrics.default_histogram_cap () in
  Alcotest.(check int) "initial default" 8192 original;
  Fun.protect
    ~finally:(fun () -> Metrics.set_default_histogram_cap original)
    (fun () ->
      Metrics.set_default_histogram_cap 16;
      let r = Metrics.create () in
      let h = Metrics.histogram ~registry:r "test.defaulted" in
      for i = 1 to 100 do
        Metrics.observe h (float_of_int i)
      done;
      Alcotest.(check int) "new default applies" 16 (Metrics.hist_sample_size h);
      Alcotest.check_raises "cap below 1 rejected"
        (Invalid_argument "Metrics.set_default_histogram_cap: cap < 1")
        (fun () -> Metrics.set_default_histogram_cap 0))

(* ------------------------------------------------------------------ *)
(* Bench snapshot validation corpus                                   *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* A minimal document that satisfies every waveidx-bench/7 rule; the
   corpus below perturbs it one field at a time.  [shard_series] lists
   the required scaling-curve series appended after the perturbable
   benchmark (drop one and validation must name it). *)
let valid_bench_doc ?(schema = Sink.bench_schema) ?(unit_ = "model-seconds")
    ?(p50 = 0.5) ?(runs = 5.0) ?(hit_ratio = 0.9) ?(flushes = 3.0)
    ?(name = Some "probe/DEL") ?(benchmarks = None) ?(profile = None)
    ?(series_block = None) ?(shard_series = Sink.required_bench_series) () =
  let bench =
    Json.Obj
      ((match name with Some n -> [ ("name", Json.Str n) ] | None -> [])
      @ [
          ("p50", Json.Num p50);
          ("p95", Json.Num 0.9);
          ("runs", Json.Num runs);
          ( "cache",
            Json.Obj
              [
                ("hit_ratio", Json.Num hit_ratio);
                ("hits", Json.Num 10.0);
                ("misses", Json.Num 2.0);
                ("frames", Json.Num 64.0);
              ] );
          ( "writeback",
            Json.Obj
              [
                ("writes_coalesced", Json.Num 4.0);
                ("flushes", Json.Num flushes);
                ("flushed_blocks", Json.Num 9.0);
              ] );
        ])
  in
  let default_profile =
    Json.Obj
      [
        ("scheme", Json.Str "DEL");
        ("technique", Json.Str "in-place");
        ("days", Json.Num 6.0);
        ("total_model_s", Json.Num 37.0);
        ( "top",
          Json.Arr
            [
              Json.Obj
                [
                  ("path", Json.Str "day;maintenance");
                  ("calls", Json.Num 6.0);
                  ("self_model_s", Json.Num 20.0);
                  ("total_model_s", Json.Num 30.0);
                  ("seeks", Json.Num 120.0);
                ];
            ] );
      ]
  in
  let shard_bench s =
    Json.Obj
      [
        ("name", Json.Str s);
        ("p50", Json.Num 0.1);
        ("p95", Json.Num 0.2);
        ("runs", Json.Num 5.0);
      ]
  in
  let default_series =
    Json.Obj
      [
        ("schema", Json.Str Sink.series_schema);
        ("ticks", Json.Num 12.0);
        ( "tracked",
          Json.Arr
            [
              Json.Obj
                [
                  ("name", Json.Str "runner.day.query_seconds");
                  ("points", Json.Num 12.0);
                  ("last", Json.Num 1.5);
                  ("mean", Json.Num 1.4);
                  ("p95", Json.Num 1.6);
                  ("trend", Json.Num 0.01);
                ];
            ] );
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("unit", Json.Str unit_);
      ( "benchmarks",
        match benchmarks with
        | Some bs -> bs
        | None -> Json.Arr (bench :: List.map shard_bench shard_series) );
      ( "profile",
        match profile with Some p -> p | None -> default_profile );
      ( "series",
        match series_block with Some s -> s | None -> default_series );
    ]

let test_sink_validate_bench_accepts_valid () =
  match Sink.validate_bench (valid_bench_doc ()) with
  | Ok n ->
    Alcotest.(check int) "benchmark count"
      (1 + List.length Sink.required_bench_series)
      n
  | Error e -> Alcotest.failf "valid /7 document rejected: %s" e

let expect_error name doc frags =
  match Sink.validate_bench doc with
  | Ok _ -> Alcotest.failf "%s: accepted" name
  | Error e ->
    List.iter
      (fun frag ->
        if not (contains ~sub:frag e) then
          Alcotest.failf "%s: error %S does not mention %S" name e frag)
      frags

let test_sink_validate_bench_bad_corpus () =
  (* One case per validation class; every error must name the series
     (or the profile path) and the offending field. *)
  expect_error "wrong schema"
    (valid_bench_doc ~schema:"waveidx-bench/3" ())
    [ "schema"; Sink.bench_schema ];
  expect_error "wrong unit"
    (valid_bench_doc ~unit_:"wall-seconds" ())
    [ "unit"; "model-seconds" ];
  expect_error "empty benchmarks"
    (valid_bench_doc ~benchmarks:(Some (Json.Arr [])) ())
    [ "empty \"benchmarks\"" ];
  expect_error "missing series name"
    (valid_bench_doc ~name:None ())
    [ "benchmark 0"; "\"name\"" ];
  expect_error "vanished shard series"
    (valid_bench_doc
       ~shard_series:
         (List.filter
            (fun s -> s <> "throughput+shards/4")
            Sink.required_bench_series)
       ())
    [ "required series"; "throughput+shards/4" ];
  expect_error "negative p50"
    (valid_bench_doc ~p50:(-0.1) ())
    [ "probe/DEL"; "p50" ];
  expect_error "runs below 1"
    (valid_bench_doc ~runs:0.0 ())
    [ "probe/DEL"; "runs" ];
  expect_error "hit_ratio above 1"
    (valid_bench_doc ~hit_ratio:1.5 ())
    [ "probe/DEL"; "hit_ratio" ];
  expect_error "negative writeback field"
    (valid_bench_doc ~flushes:(-1.0) ())
    [ "probe/DEL"; "flushes" ];
  expect_error "missing profile block"
    (match valid_bench_doc () with
    | Json.Obj kvs -> Json.Obj (List.remove_assoc "profile" kvs)
    | _ -> assert false)
    [ "profile" ];
  expect_error "profile missing total"
    (valid_bench_doc
       ~profile:
         (Some
            (Json.Obj
               [
                 ("scheme", Json.Str "DEL");
                 ("technique", Json.Str "in-place");
                 ("days", Json.Num 6.0);
                 ("top", Json.Arr []);
               ]))
       ())
    [ "profile"; "total_model_s" ];
  expect_error "bad profile.top entry"
    (valid_bench_doc
       ~profile:
         (Some
            (Json.Obj
               [
                 ("scheme", Json.Str "DEL");
                 ("technique", Json.Str "in-place");
                 ("days", Json.Num 6.0);
                 ("total_model_s", Json.Num 37.0);
                 ( "top",
                   Json.Arr
                     [
                       Json.Obj
                         [
                           ("path", Json.Str "day");
                           ("calls", Json.Num 0.0);
                           ("self_model_s", Json.Num 1.0);
                           ("total_model_s", Json.Num 1.0);
                           ("seeks", Json.Num 0.0);
                         ];
                     ] );
               ]))
       ())
    [ "profile.top[0]"; "calls" ];
  expect_error "missing series block"
    (match valid_bench_doc () with
    | Json.Obj kvs -> Json.Obj (List.remove_assoc "series" kvs)
    | _ -> assert false)
    [ "series" ];
  expect_error "series block wrong schema"
    (valid_bench_doc
       ~series_block:
         (Some
            (Json.Obj
               [
                 ("schema", Json.Str "waveidx-series/0");
                 ("ticks", Json.Num 12.0);
                 ( "tracked",
                   Json.Arr
                     [
                       Json.Obj
                         [
                           ("name", Json.Str "runner.day.query_seconds");
                           ("points", Json.Num 12.0);
                           ("last", Json.Num 1.5);
                           ("mean", Json.Num 1.4);
                           ("p95", Json.Num 1.6);
                           ("trend", Json.Null);
                         ];
                     ] );
               ]))
       ())
    [ "series"; "schema" ];
  expect_error "series block empty tracked"
    (valid_bench_doc
       ~series_block:
         (Some
            (Json.Obj
               [
                 ("schema", Json.Str Sink.series_schema);
                 ("ticks", Json.Num 12.0);
                 ("tracked", Json.Arr []);
               ]))
       ())
    [ "series"; "tracked" ];
  expect_error "series entry non-finite p95"
    (valid_bench_doc
       ~series_block:
         (Some
            (Json.Obj
               [
                 ("schema", Json.Str Sink.series_schema);
                 ("ticks", Json.Num 12.0);
                 ( "tracked",
                   Json.Arr
                     [
                       Json.Obj
                         [
                           ("name", Json.Str "runner.day.query_seconds");
                           ("points", Json.Num 12.0);
                           ("last", Json.Num 1.5);
                           ("mean", Json.Num 1.4);
                           ("p95", Json.Num nan);
                           ("trend", Json.Num 0.01);
                         ];
                     ] );
               ]))
       ())
    [ "series.tracked[0]"; "p95" ]

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let test_recorder_ring_bounds () =
  Recorder.clear ();
  let cap = Recorder.capacity () in
  for i = 1 to cap + 10 do
    Recorder.record_metric ~name:"m" ~value:(float_of_int i) ~delta:1.0
  done;
  Alcotest.(check int) "count capped at capacity" cap (Recorder.count ());
  Alcotest.(check int) "total keeps counting" (cap + 10) (Recorder.total ());
  Alcotest.(check int) "dropped = overflow" 10 (Recorder.dropped ());
  let evs = Recorder.events () in
  Alcotest.(check int) "events = count" cap (List.length evs);
  (* Oldest-first with the 10 oldest overwritten: sequence numbers
     start at 0, so the window opens at seq 10. *)
  (match evs with
  | first :: _ ->
    Alcotest.(check int) "oldest surviving seq" 10 first.Recorder.seq
  | [] -> Alcotest.fail "empty ring");
  let rec mono = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "seq strictly increasing" true
        (b.Recorder.seq > a.Recorder.seq);
      mono rest
    | _ -> ()
  in
  mono evs;
  Recorder.clear ();
  Alcotest.(check int) "clear empties the ring" 0 (Recorder.count ());
  Alcotest.(check int) "clear resets total" 0 (Recorder.total ())

let test_recorder_capacity_and_enable () =
  let cap0 = Recorder.capacity () in
  Fun.protect ~finally:(fun () ->
      Recorder.set_enabled true;
      Recorder.set_capacity cap0)
  @@ fun () ->
  Recorder.set_capacity 4;
  for i = 1 to 6 do
    Recorder.record_io ~syscall:"pwrite" ~outcome:"ok" ~bytes:i
  done;
  Alcotest.(check int) "resized ring holds 4" 4 (Recorder.count ());
  Alcotest.(check int) "dropped 2" 2 (Recorder.dropped ());
  Alcotest.(check bool) "capacity below 1 rejected" true
    (try
       Recorder.set_capacity 0;
       false
     with Invalid_argument _ -> true);
  Recorder.set_capacity 4;
  Recorder.set_enabled false;
  Recorder.record_metric ~name:"x" ~value:1.0 ~delta:1.0;
  Alcotest.(check int) "disabled records nothing" 0 (Recorder.total ())

let test_recorder_metric_hook () =
  Recorder.clear ();
  let r = Metrics.create () in
  let g = Metrics.gauge ~registry:r "t.gauge" in
  Metrics.set g 5.0;
  Metrics.set g 3.0;
  match Recorder.events () with
  | [ e1; e2 ] -> (
    match (e1.Recorder.kind, e2.Recorder.kind) with
    | ( Recorder.Metric { m_name; m_value = v1; m_delta = d1 },
        Recorder.Metric { m_value = v2; m_delta = d2; _ } ) ->
      Alcotest.(check string) "gauge name" "t.gauge" m_name;
      exact "first value" 5.0 v1;
      exact "first delta (from 0)" 5.0 d1;
      exact "second value" 3.0 v2;
      exact "second delta" (-2.0) d2
    | _ -> Alcotest.fail "expected two metric events")
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l)

let test_recorder_flight_roundtrip () =
  Recorder.clear ();
  Recorder.record_span ~name:"s" ~model_s:1.5 ~seeks:2 ~blocks_read:1
    ~blocks_written:0 ~bytes_read:100 ~bytes_written:0;
  Recorder.record_metric ~name:"m" ~value:1.0 ~delta:1.0;
  Recorder.record_alert ~rule:"r" ~metric:"m" ~value:1.0 ~day:3
    ~scope:"transition";
  Recorder.record_io ~syscall:"pwrite" ~outcome:"ok" ~bytes:4096;
  let text = Recorder.to_jsonl ~reason:"unit-test" () in
  (match Sink.validate_flight text with
  | Ok n -> Alcotest.(check int) "all four kinds validate" 4 n
  | Error e -> Alcotest.failf "flight invalid: %s" e);
  (match String.index_opt text '\n' with
  | Some i -> (
    match Json.parse (String.sub text 0 i) with
    | Ok h ->
      Alcotest.(check (option string))
        "schema" (Some "waveidx-flight/1")
        (Option.bind (Json.member "schema" h) Json.to_str);
      Alcotest.(check (option string))
        "reason" (Some "unit-test")
        (Option.bind (Json.member "reason" h) Json.to_str)
    | Error e -> Alcotest.failf "header unparseable: %s" e)
  | None -> Alcotest.fail "single-line dump");
  let path = Filename.temp_file "wave_flight" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Recorder.dump_to ~reason:"unit-test" path;
  match Sink.validate_flight_file path with
  | Ok n -> Alcotest.(check int) "file validates" 4 n
  | Error e -> Alcotest.failf "file invalid: %s" e

let test_flight_validator_rejects () =
  let reject label text =
    match Sink.validate_flight text with
    | Ok _ -> Alcotest.failf "accepted %s" label
    | Error _ -> ()
  in
  reject "empty input" "";
  reject "wrong schema"
    {|{"schema": "waveidx-flight/9", "reason": "x", "events": 0, "dropped": 0}|};
  let header n =
    Printf.sprintf
      {|{"schema": "waveidx-flight/1", "reason": "x", "events": %d, "dropped": 0}|}
      n
  in
  let metric seq =
    Printf.sprintf
      {|{"type": "metric", "seq": %d, "model_s": 0, "wall_s": 0, "name": "m", "value": 1, "delta": 1}|}
      seq
  in
  reject "header count above line count" (header 2 ^ "\n" ^ metric 0);
  reject "header count below line count"
    (header 1 ^ "\n" ^ metric 0 ^ "\n" ^ metric 1);
  reject "non-increasing seq" (header 2 ^ "\n" ^ metric 1 ^ "\n" ^ metric 1);
  reject "unknown event type"
    (header 1
    ^ "\n" ^ {|{"type": "bogus", "seq": 0, "model_s": 0, "wall_s": 0}|});
  reject "metric without delta"
    (header 1
    ^ "\n"
    ^ {|{"type": "metric", "seq": 0, "model_s": 0, "wall_s": 0, "name": "m", "value": 1}|}
    );
  (* The well-formed equivalent passes. *)
  match Sink.validate_flight (header 2 ^ "\n" ^ metric 0 ^ "\n" ^ metric 7) with
  | Ok n -> Alcotest.(check int) "sparse seq ok, count 2" 2 n
  | Error e -> Alcotest.failf "rejected a valid dump: %s" e

let test_alert_fire_records_and_dumps () =
  Recorder.clear ();
  let dump = Filename.temp_file "wave_flight_dump" ".jsonl" in
  Fun.protect ~finally:(fun () ->
      Recorder.set_dump_path None;
      try Sys.remove dump with Sys_error _ -> ())
  @@ fun () ->
  Recorder.set_dump_path (Some dump);
  let reg = Metrics.create () in
  let g = Metrics.gauge ~registry:reg "m.hot" in
  let eng =
    Alert.create [ Alert.rule ~name:"hot" ~metric:"m.hot" Alert.Gt 1.0 ]
  in
  Metrics.set g 5.0;
  ignore (Alert.eval ~registry:reg eng ~day:2);
  let is_alert e =
    match e.Recorder.kind with
    | Recorder.Alert_fire { a_rule; a_scope; a_day; _ } ->
      a_rule = "hot" && a_scope = "day" && a_day = 2
    | _ -> false
  in
  Alcotest.(check bool) "firing landed in the ring" true
    (List.exists is_alert (Recorder.events ()));
  (* The firing also dumped the ring to the armed path. *)
  match Sink.validate_flight_file dump with
  | Ok n -> Alcotest.(check bool) "dump holds the lead-up" true (n >= 2)
  | Error e -> Alcotest.failf "alert dump invalid: %s" e

let test_sink_flush_traces () =
  with_clean_tracer @@ fun () ->
  Trace.enable ();
  Trace.with_span "outer" (fun () -> Trace.instant "tick");
  (* Disarmed: a no-op, never an error. *)
  Sink.set_flush_path None;
  Sink.flush_traces ~reason:"ignored";
  let path = Filename.temp_file "wave_flush" ".jsonl" in
  Fun.protect ~finally:(fun () ->
      Sink.set_flush_path None;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Sink.set_flush_path (Some path);
  Alcotest.(check (option string)) "armed" (Some path) (Sink.flush_path ());
  Sink.flush_traces ~reason:"unit-test";
  let text = In_channel.with_open_text path In_channel.input_all in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  match lines with
  | header :: rest ->
    (match Json.parse header with
    | Ok h ->
      Alcotest.(check (option string))
        "flush header" (Some "flush")
        (Option.bind (Json.member "type" h) Json.to_str);
      Alcotest.(check (option string))
        "reason" (Some "unit-test")
        (Option.bind (Json.member "reason" h) Json.to_str)
    | Error e -> Alcotest.failf "flush header unparseable: %s" e);
    Alcotest.(check int) "span + instant flushed" 2 (List.length rest)
  | [] -> Alcotest.fail "empty flush file"

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
        Alcotest.test_case "escaping" `Quick test_json_escaping;
        Alcotest.test_case "integers compact" `Quick test_json_integers_compact;
        Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
        Alcotest.test_case "surrogate pairs" `Quick test_json_surrogate_pairs;
        Alcotest.test_case "non-finite floats" `Quick test_json_non_finite;
        Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
      ]
      @ qcheck [ json_roundtrip_prop ] );
    ( "obs.trace",
      [
        Alcotest.test_case "disabled passthrough" `Quick
          test_trace_disabled_is_passthrough;
        Alcotest.test_case "nesting and attribution" `Quick
          test_trace_nesting_and_attribution;
        Alcotest.test_case "exception safety" `Quick test_trace_exception_safety;
        Alcotest.test_case "model clock" `Quick test_trace_model_clock;
        Alcotest.test_case "instants" `Quick test_trace_instants;
      ] );
    ( "obs.metrics",
      [
        Alcotest.test_case "counter" `Quick test_metrics_counter;
        Alcotest.test_case "gauge and kind clash" `Quick
          test_metrics_gauge_and_kinds;
        Alcotest.test_case "histogram" `Quick test_metrics_histogram;
        Alcotest.test_case "to_json" `Quick test_metrics_json;
        Alcotest.test_case "btree counters flow" `Quick test_btree_counters_flow;
        Alcotest.test_case "reservoir bounded" `Quick
          test_metrics_reservoir_bounded;
        Alcotest.test_case "reservoir exact below cap" `Quick
          test_metrics_reservoir_exact_below_cap;
        Alcotest.test_case "reservoir deterministic" `Quick
          test_metrics_reservoir_deterministic;
        Alcotest.test_case "default cap" `Quick test_metrics_default_cap;
        Alcotest.test_case "snapshot and reset" `Quick
          test_metrics_snapshot_and_reset;
        Alcotest.test_case "reset_all on default" `Quick
          test_metrics_reset_all_default;
      ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "ring bounds" `Quick test_recorder_ring_bounds;
        Alcotest.test_case "capacity and enable" `Quick
          test_recorder_capacity_and_enable;
        Alcotest.test_case "gauge hook" `Quick test_recorder_metric_hook;
        Alcotest.test_case "flight roundtrip" `Quick
          test_recorder_flight_roundtrip;
        Alcotest.test_case "flight validator rejects" `Quick
          test_flight_validator_rejects;
        Alcotest.test_case "alert fire records and dumps" `Quick
          test_alert_fire_records_and_dumps;
      ] );
    ( "obs.sink",
      [
        Alcotest.test_case "chrome valid" `Quick test_sink_chrome_valid;
        Alcotest.test_case "chrome file" `Quick test_sink_chrome_file;
        Alcotest.test_case "chrome rejects malformed" `Quick
          test_sink_chrome_rejects_malformed;
        Alcotest.test_case "jsonl" `Quick test_sink_jsonl;
        Alcotest.test_case "validate_bench accepts valid /5" `Quick
          test_sink_validate_bench_accepts_valid;
        Alcotest.test_case "validate_bench bad corpus" `Quick
          test_sink_validate_bench_bad_corpus;
        Alcotest.test_case "flush traces" `Quick test_sink_flush_traces;
      ] );
    ( "obs.runner",
      [
        Alcotest.test_case "attribution DEL/in-place" `Quick
          test_runner_attribution_del_inplace;
        Alcotest.test_case "attribution DEL/packed-shadow" `Quick
          test_runner_attribution_del_packed;
        Alcotest.test_case "attribution WATA*/in-place" `Quick
          test_runner_attribution_wata_inplace;
        Alcotest.test_case "attribution WATA*/packed-shadow" `Quick
          test_runner_attribution_wata_packed;
        Alcotest.test_case "span inventory" `Quick test_runner_span_inventory;
        Alcotest.test_case "percentiles" `Quick test_runner_percentiles;
        Alcotest.test_case "untraced run stays clean" `Quick
          test_runner_untraced_has_no_spans;
      ] );
  ]
