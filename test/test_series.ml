(* Tests for metric time-series (ring-buffer histories, window stats,
   trends, sparklines), SLO multi-window burn-rate alerting (unit and
   end-to-end through the runner and flight recorder), the OpenMetrics
   exposition and its validator, the waveidx-series/1 dump validator,
   and the Metrics snapshot/reservoir guarantees they build on. *)

open Wave_obs

(* --- Series ring buffers ------------------------------------------- *)

let test_ring_basics () =
  let st = Series.create () in
  Alcotest.(check int) "default cap" 2048 (Series.cap st);
  Alcotest.(check int) "no ticks yet" 0 (Series.tick st);
  Series.record st ~name:"a" ~day:1 1.0;
  Series.record st ~name:"a" ~day:1 2.0;
  Series.record st ~name:"b" ~day:2 5.0;
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (Series.names st);
  Alcotest.(check int) "a holds 2" 2 (Series.length st "a");
  Alcotest.(check int) "unknown holds 0" 0 (Series.length st "nope");
  (match Series.points st "a" with
  | [ p1; p2 ] ->
    Alcotest.(check (float 0.0)) "oldest first" 1.0 p1.Series.value;
    Alcotest.(check (float 0.0)) "newest last" 2.0 p2.Series.value;
    Alcotest.(check int) "day stamped" 1 p2.Series.day
  | ps -> Alcotest.failf "expected 2 points, got %d" (List.length ps));
  (* Non-finite samples are dropped, never stored. *)
  Series.record st ~name:"a" ~day:1 Float.nan;
  Series.record st ~name:"a" ~day:1 Float.infinity;
  Alcotest.(check int) "non-finite dropped" 2 (Series.length st "a")

let test_ring_cap_evicts_oldest () =
  let st = Series.create ~cap:4 () in
  for i = 1 to 7 do
    Series.record st ~name:"x" ~day:i (float_of_int i)
  done;
  Alcotest.(check int) "bounded at cap" 4 (Series.length st "x");
  Alcotest.(check (list (float 0.0)))
    "oldest three evicted" [ 4.0; 5.0; 6.0; 7.0 ]
    (List.map (fun p -> p.Series.value) (Series.points st "x"));
  Alcotest.check_raises "cap < 1 rejected"
    (Invalid_argument "Series.create: cap < 1") (fun () ->
      ignore (Series.create ~cap:0 ()))

let test_ring_sample_registry () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "jobs" in
  let g = Metrics.gauge ~registry "depth" in
  let h = Metrics.histogram ~registry "lat" in
  Metrics.inc ~by:3.0 c;
  Metrics.set g 7.0;
  List.iter (Metrics.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  let st = Series.create () in
  Series.sample ~registry st ~day:1;
  Alcotest.(check int) "tick advanced" 1 (Series.tick st);
  (* Histograms expand into summary sub-series. *)
  Alcotest.(check (list string))
    "expanded names"
    [ "depth"; "jobs"; "lat.mean"; "lat.p50"; "lat.p95"; "lat.p99" ]
    (Series.names st);
  (match Series.points st "jobs" with
  | [ p ] -> Alcotest.(check (float 0.0)) "counter value" 3.0 p.Series.value
  | _ -> Alcotest.fail "one point expected");
  Metrics.inc ~by:1.0 c;
  Series.sample ~registry st ~day:2;
  Alcotest.(check int) "second tick" 2 (Series.tick st);
  Alcotest.(check int) "two points" 2 (Series.length st "jobs")

let test_last_n_and_daily () =
  let st = Series.create () in
  (* Two ticks per day, like a transition sample plus a day-boundary
     sample: daily must keep only the last of each day. *)
  List.iter
    (fun (day, v) -> Series.record st ~name:"m" ~day v)
    [ (1, 10.0); (1, 11.0); (2, 20.0); (2, 21.0); (3, 30.0) ];
  Alcotest.(check (list (float 0.0)))
    "last_n tail" [ 21.0; 30.0 ]
    (List.map (fun p -> p.Series.value) (Series.last_n st "m" 2));
  Alcotest.(check (list (float 0.0)))
    "daily keeps last per day" [ 11.0; 21.0; 30.0 ]
    (List.map (fun p -> p.Series.value) (Series.daily st "m"));
  Alcotest.(check (list int))
    "daily days" [ 1; 2; 3 ]
    (List.map (fun p -> p.Series.day) (Series.daily st "m"))

(* --- window stats, trend, sparkline -------------------------------- *)

let test_window_stats () =
  let st = Series.create () in
  for i = 1 to 10 do
    Series.record st ~name:"w" ~day:i (float_of_int i)
  done;
  (match Series.window_stats st "w" ~n:4 with
  | None -> Alcotest.fail "stats expected"
  | Some ws ->
    Alcotest.(check int) "count" 4 ws.Series.w_count;
    Alcotest.(check (float 1e-9)) "mean" 8.5 ws.Series.w_mean;
    Alcotest.(check (float 1e-9)) "min" 7.0 ws.Series.w_min;
    Alcotest.(check (float 1e-9)) "max" 10.0 ws.Series.w_max;
    Alcotest.(check (float 1e-9))
      "p50 matches Stats.percentile"
      (Wave_util.Stats.percentile [| 7.0; 8.0; 9.0; 10.0 |] 50.0)
      ws.Series.w_p50);
  Alcotest.(check bool)
    "empty name yields None" true
    (Series.window_stats st "nope" ~n:4 = None)

let test_trend () =
  let st = Series.create () in
  for i = 0 to 9 do
    Series.record st ~name:"up" ~day:i (3.0 +. (2.0 *. float_of_int i));
    Series.record st ~name:"flat" ~day:i 5.0
  done;
  (match Series.trend st "up" ~n:10 with
  | Some slope -> Alcotest.(check (float 1e-9)) "slope 2/sample" 2.0 slope
  | None -> Alcotest.fail "slope expected");
  (match Series.trend st "flat" ~n:10 with
  | Some slope -> Alcotest.(check (float 1e-9)) "flat slope" 0.0 slope
  | None -> Alcotest.fail "slope expected");
  Series.record st ~name:"one" ~day:1 1.0;
  Alcotest.(check bool)
    "single point has no trend" true
    (Series.trend st "one" ~n:10 = None)

let test_sparkline () =
  let st = Series.create () in
  for i = 1 to 8 do
    Series.record st ~name:"s" ~day:i (float_of_int i)
  done;
  let sp = Series.sparkline st "s" in
  Alcotest.(check bool) "non-empty" true (String.length sp > 0);
  (* 8 samples, each one UTF-8 block glyph (3 bytes). *)
  Alcotest.(check int) "one glyph per point" (8 * 3) (String.length sp);
  let sp2 = Series.sparkline ~width:4 st "s" in
  Alcotest.(check int) "width truncates to tail" (4 * 3) (String.length sp2);
  Alcotest.(check string) "empty series renders empty" ""
    (Series.sparkline st "nope")

(* --- waveidx-series/1 dumps ---------------------------------------- *)

let test_series_json_validates () =
  let st = Series.create ~cap:8 () in
  for i = 1 to 5 do
    Series.record st ~name:"a" ~day:i (float_of_int i);
    Series.record st ~name:"b" ~day:i (10.0 *. float_of_int i)
  done;
  let j = Series.to_json st in
  (match Sink.validate_series j with
  | Ok points -> Alcotest.(check int) "10 points counted" 10 points
  | Error e -> Alcotest.failf "dump failed validation: %s" e);
  (* Roundtrip through text stays valid. *)
  match Json.parse (Json.to_string ~pretty:true j) with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok j' -> (
    match Sink.validate_series j' with
    | Ok points -> Alcotest.(check int) "roundtrip points" 10 points
    | Error e -> Alcotest.failf "roundtrip validation: %s" e)

let test_series_validator_rejects () =
  let open Json in
  let point tick day value =
    Obj [ ("tick", int tick); ("day", int day); ("value", Num value) ]
  in
  let doc ?(schema = Sink.series_schema) ?(cap = 8) points =
    Obj
      [
        ("schema", Str schema);
        ("cap", int cap);
        ("ticks", int 3);
        ( "series",
          Arr [ Obj [ ("name", Str "m"); ("points", Arr points) ] ] );
      ]
  in
  let expect_err label j =
    match Sink.validate_series j with
    | Ok _ -> Alcotest.failf "%s: validator accepted a bad document" label
    | Error _ -> ()
  in
  (match Sink.validate_series (doc [ point 1 1 1.0 ]) with
  | Ok n -> Alcotest.(check int) "baseline good" 1 n
  | Error e -> Alcotest.failf "baseline: %s" e);
  expect_err "wrong schema" (doc ~schema:"waveidx-series/0" [ point 1 1 1.0 ]);
  expect_err "cap below 1" (doc ~cap:0 [ point 1 1 1.0 ]);
  expect_err "decreasing tick" (doc [ point 2 1 1.0; point 1 1 2.0 ]);
  expect_err "negative tick" (doc [ point (-1) 1 1.0 ]);
  expect_err "non-finite value" (doc [ point 1 1 Float.nan ]);
  expect_err "points exceed cap"
    (doc ~cap:1 [ point 1 1 1.0; point 2 1 2.0 ]);
  expect_err "missing series array"
    (Obj [ ("schema", Str Sink.series_schema); ("cap", int 8); ("ticks", int 0) ])

(* --- SLO burn rates and episodes ------------------------------------ *)

let slo_spec ?goal ?fast_days ?slow_days ?burn_threshold ?(threshold = 0.5)
    ~window_days () =
  Slo.spec ?goal ?fast_days ?slow_days ?burn_threshold ~name:"t"
    ~objective:"m" ~window_days Alert.Gt threshold

let test_slo_spec_validation () =
  let s = slo_spec ~window_days:28 () in
  Alcotest.(check int) "default fast w/8" 3 s.Slo.fast_days;
  Alcotest.(check int) "default slow w/2" 14 s.Slo.slow_days;
  Alcotest.(check (float 0.0)) "default goal" 0.99 s.Slo.goal;
  Alcotest.(check (float 0.0)) "default burn threshold" 1.0 s.Slo.burn_threshold;
  let expect_invalid label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  expect_invalid "window < 1" (fun () -> slo_spec ~window_days:0 ());
  expect_invalid "goal 1.0" (fun () -> slo_spec ~goal:1.0 ~window_days:7 ());
  expect_invalid "fast > slow" (fun () ->
      slo_spec ~fast_days:5 ~slow_days:2 ~window_days:7 ());
  expect_invalid "slow > window" (fun () ->
      slo_spec ~slow_days:9 ~window_days:7 ());
  expect_invalid "burn_threshold 0" (fun () ->
      slo_spec ~burn_threshold:0.0 ~window_days:7 ());
  let rl = Slo.rule_of_spec s in
  Alcotest.(check string) "rule carries the objective" "m"
    rl.Alert.metric;
  Alcotest.(check bool) "rule is day-scoped" true (rl.Alert.scope = Alert.Day)

let test_slo_burn_rate () =
  let st = Series.create () in
  let s = slo_spec ~goal:0.5 ~fast_days:2 ~slow_days:4 ~window_days:4 () in
  (* Days 1-2 bad (1.0 > 0.5), days 3-4 good. *)
  List.iter
    (fun (d, v) -> Series.record st ~name:"m" ~day:d v)
    [ (1, 1.0); (2, 1.0) ];
  Alcotest.(check bool)
    "insufficient history" true
    (Slo.burn_rate st s ~window:4 = None);
  List.iter
    (fun (d, v) -> Series.record st ~name:"m" ~day:d v)
    [ (3, 0.0); (4, 0.0) ];
  (match Slo.burn_rate st s ~window:4 with
  | Some b ->
    (* 2 bad of 4 days = 0.5 bad fraction / 0.5 budget = 1.0. *)
    Alcotest.(check (float 1e-9)) "burn over 4 days" 1.0 b
  | None -> Alcotest.fail "burn expected");
  match Slo.burn_rate st s ~window:2 with
  | Some b -> Alcotest.(check (float 1e-9)) "recent window all good" 0.0 b
  | None -> Alcotest.fail "burn expected"

let test_slo_episode_lifecycle () =
  let st = Series.create () in
  let s =
    slo_spec ~goal:0.5 ~fast_days:1 ~slow_days:2 ~window_days:4
      ~burn_threshold:2.0 ()
  in
  let eng = Slo.create [ s ] in
  (* Bad days 1-4, good 5-8, bad 9-12: exactly two breach episodes. *)
  for day = 1 to 12 do
    let v = if day <= 4 || day >= 9 then 1.0 else 0.0 in
    Series.record st ~name:"m" ~day v;
    ignore (Slo.eval eng ~series:st ~day)
  done;
  match Slo.events eng with
  | [ e1; e2 ] ->
    Alcotest.(check int) "episode 1 fires when slow window fills" 2
      e1.Alert.fired_day;
    Alcotest.(check int) "episode 1 burns through day 4" 4 e1.Alert.last_day;
    Alcotest.(check (option int))
      "episode 1 resolves on the first quiet day" (Some 5)
      e1.Alert.resolved_day;
    Alcotest.(check int) "episode 2 re-fires after re-arm" 10
      e2.Alert.fired_day;
    Alcotest.(check (option int)) "episode 2 still active" None
      e2.Alert.resolved_day;
    Alcotest.(check (float 1e-9)) "event carries fast burn" 2.0 e2.Alert.value;
    Alcotest.(check int) "one active episode" 1 (List.length (Slo.active eng))
  | evs -> Alcotest.failf "expected exactly 2 episodes, got %d" (List.length evs)

let test_slo_specs_of_json () =
  let parse s =
    match Json.parse s with
    | Ok j -> Slo.specs_of_json j
    | Error e -> Error e
  in
  (match
     parse
       {|{"slos": [{"name": "q", "metric": "runner.day.query_p95",
          "op": ">", "threshold": 0.25, "goal": 0.9, "window_days": 8,
          "fast_days": 1, "slow_days": 4, "burn_threshold": 2.0}]}|}
  with
  | Ok [ s ] ->
    Alcotest.(check string) "objective" "runner.day.query_p95" s.Slo.objective;
    Alcotest.(check int) "slow days" 4 s.Slo.slow_days;
    Alcotest.(check (float 0.0)) "burn threshold" 2.0 s.Slo.burn_threshold
  | Ok l -> Alcotest.failf "expected 1 spec, got %d" (List.length l)
  | Error e -> Alcotest.failf "parse: %s" e);
  (* Bare top-level arrays parse; defaults fill in. *)
  (match
     parse
       {|[{"name": "q", "metric": "m", "op": "<=", "threshold": 3,
           "window_days": 16}]|}
  with
  | Ok [ s ] ->
    Alcotest.(check bool) "comparator le" true (s.Slo.comparator = Alert.Le);
    Alcotest.(check int) "default fast" 2 s.Slo.fast_days
  | Ok _ | Error _ -> Alcotest.fail "bare array should parse");
  let expect_err label s =
    match parse s with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  expect_err "empty list" {|{"slos": []}|};
  expect_err "bad op"
    {|[{"name": "q", "metric": "m", "op": "!!", "threshold": 1, "window_days": 4}]|};
  expect_err "missing threshold"
    {|[{"name": "q", "metric": "m", "op": ">", "window_days": 4}]|};
  expect_err "windows inverted"
    {|[{"name": "q", "metric": "m", "op": ">", "threshold": 1,
        "window_days": 4, "fast_days": 3, "slow_days": 2}]|}

(* --- SLO end-to-end through the runner ------------------------------ *)

let e2e_store =
  Wave_workload.Netnews.store
    {
      Wave_workload.Netnews.default_config with
      Wave_workload.Netnews.mean_postings = 120;
    }

let e2e_queries =
  {
    Wave_workload.Query_gen.scam_spec with
    Wave_workload.Query_gen.probes_per_day = 10;
  }

let run_with_slo ~threshold =
  let spec =
    Slo.spec ~goal:0.5 ~fast_days:2 ~slow_days:3 ~burn_threshold:1.0
      ~name:"query-p95" ~objective:"runner.day.query_p95" ~window_days:6
      Alert.Gt threshold
  in
  Metrics.reset_all ();
  Recorder.set_enabled true;
  Recorder.clear ();
  Wave_sim.Runner.run
    {
      (Wave_sim.Runner.default_config ~scheme:Wave_core.Scheme.Del
         ~store:e2e_store ~w:5 ~n:2)
      with
      Wave_sim.Runner.run_days = 12;
      queries = Some e2e_queries;
      slos = [ spec ];
    }

let test_slo_e2e_hostile_fires_once () =
  (* Hostile: the day query p95 is always above a zero threshold, so
     the burn is continuous — exactly one episode for the whole run,
     opening as soon as the slow window has history. *)
  let r = run_with_slo ~threshold:0.0 in
  (match r.Wave_sim.Runner.alerts with
  | [ e ] ->
    Alcotest.(check string) "slo episode in result.alerts" "query-p95"
      e.Alert.e_rule.Alert.name;
    (* Measured days run w+1 .. w+run_days = 6..17; the slow window
       (3 days) fills on the third measured day. *)
    Alcotest.(check int) "fires when the slow window fills" 8
      e.Alert.fired_day;
    Alcotest.(check int) "burns to the end of the run" 17 e.Alert.last_day;
    Alcotest.(check (option int)) "never resolves" None e.Alert.resolved_day;
    Alcotest.(check (float 1e-9)) "burn = 1 / (1 - goal)" 2.0 e.Alert.value
  | evs ->
    Alcotest.failf "expected exactly 1 slo episode, got %d" (List.length evs));
  (* The firing also landed in the flight recorder, scope "slo". *)
  let slo_fires =
    List.filter
      (fun (ev : Recorder.event) ->
        match ev.Recorder.kind with
        | Recorder.Alert_fire { a_scope = "slo"; a_rule = "query-p95"; _ } ->
          true
        | _ -> false)
      (Recorder.events ())
  in
  Alcotest.(check int) "one flight-recorder firing" 1 (List.length slo_fires)

let test_slo_e2e_control_is_silent () =
  let r = run_with_slo ~threshold:1e9 in
  Alcotest.(check int) "no episodes on the control run" 0
    (List.length r.Wave_sim.Runner.alerts);
  let slo_fires =
    List.filter
      (fun (ev : Recorder.event) ->
        match ev.Recorder.kind with
        | Recorder.Alert_fire { a_scope = "slo"; _ } -> true
        | _ -> false)
      (Recorder.events ())
  in
  Alcotest.(check int) "flight recorder silent" 0 (List.length slo_fires)

(* Sampling must be invisible to the simulation: the same seeded run
   with series + SLOs enabled yields bit-identical day_metrics. *)
let test_series_sampling_zero_cost () =
  let base () =
    Metrics.reset_all ();
    {
      (Wave_sim.Runner.default_config ~scheme:Wave_core.Scheme.Del
         ~store:e2e_store ~w:5 ~n:2)
      with
      Wave_sim.Runner.run_days = 8;
      queries = Some e2e_queries;
    }
  in
  let plain = Wave_sim.Runner.run (base ()) in
  let spec =
    Slo.spec ~goal:0.5 ~name:"q" ~objective:"runner.day.query_p95"
      ~window_days:4 Alert.Gt 0.0
  in
  let observed =
    Wave_sim.Runner.run
      {
        (base ()) with
        Wave_sim.Runner.series = Some (Series.create ());
        slos = [ spec ];
      }
  in
  Alcotest.(check bool)
    "day_metrics bit-identical" true
    (plain.Wave_sim.Runner.days = observed.Wave_sim.Runner.days)

(* --- OpenMetrics exposition ----------------------------------------- *)

let test_openmetrics_renders_valid () =
  let registry = Metrics.create () in
  Metrics.inc ~by:42.0 (Metrics.counter ~registry "reqs.total_served");
  Metrics.set (Metrics.gauge ~registry "depth") 7.5;
  let h = Metrics.histogram ~registry "lat" in
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i)
  done;
  let st = Series.create () in
  for d = 1 to 5 do
    Series.record st ~name:"runner.day.query_p95" ~day:d (float_of_int d)
  done;
  let text = Sink.openmetrics ~registry ~series:st () in
  (match Sink.validate_openmetrics text with
  | Ok samples -> Alcotest.(check bool) "samples rendered" true (samples > 5)
  | Error e -> Alcotest.failf "self-render invalid: %s" e);
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i =
      i + nl <= tl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "counter gets _total" true
    (has "reqs_total_served_total 42");
  Alcotest.(check bool) "gauge sample" true (has "\ndepth 7.5");
  Alcotest.(check bool) "summary quantile" true (has "lat{quantile=\"0.95\"}");
  Alcotest.(check bool) "series quantile family" true
    (has "waveidx_series_quantile{series=\"runner.day.query_p95\"");
  Alcotest.(check bool) "series trend family" true
    (has "waveidx_series_trend{series=\"runner.day.query_p95\"} 1");
  Alcotest.(check bool) "EOF terminator" true (has "# EOF\n")

let test_openmetrics_bad_corpus () =
  let expect_err label text =
    match Sink.validate_openmetrics text with
    | Ok _ -> Alcotest.failf "%s: validator accepted bad exposition" label
    | Error _ -> ()
  in
  (match
     Sink.validate_openmetrics
       "# TYPE a counter\n# HELP a Something.\na_total 1\n# EOF\n"
   with
  | Ok n -> Alcotest.(check int) "baseline good" 1 n
  | Error e -> Alcotest.failf "baseline: %s" e);
  expect_err "sample before any TYPE" "a_total 1\n# EOF\n";
  expect_err "counter without _total" "# TYPE a counter\na 1\n# EOF\n";
  expect_err "NaN value" "# TYPE g gauge\ng NaN\n# EOF\n";
  expect_err "Inf value" "# TYPE g gauge\ng +Inf\n# EOF\n";
  expect_err "duplicate family"
    "# TYPE a counter\na_total 1\n# TYPE a counter\na_total 2\n# EOF\n";
  expect_err "interleaved sample"
    "# TYPE a counter\n# TYPE b gauge\na_total 1\n# EOF\n";
  expect_err "missing EOF" "# TYPE g gauge\ng 1\n";
  expect_err "content after EOF" "# TYPE g gauge\ng 1\n# EOF\ng 2\n";
  expect_err "blank line" "# TYPE g gauge\n\ng 1\n# EOF\n";
  expect_err "bad metric name" "# TYPE 9bad gauge\n9bad 1\n# EOF\n";
  expect_err "unknown type" "# TYPE g sparkline\ng 1\n# EOF\n";
  expect_err "quantile out of range"
    "# TYPE s summary\ns{quantile=\"1.5\"} 1\n# EOF\n";
  expect_err "unterminated label"
    "# TYPE g gauge\ng{a=\"x 1\n# EOF\n";
  expect_err "bad sample value" "# TYPE g gauge\ng pancake\n# EOF\n"

(* --- Metrics: snapshots, reservoirs, removal ------------------------ *)

let test_metrics_snapshot_immutable () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "c" in
  let h = Metrics.histogram ~registry "h" in
  Metrics.inc ~by:5.0 c;
  Metrics.observe h 1.0;
  let snap = Metrics.snapshot ~registry () in
  Metrics.inc ~by:100.0 c;
  Metrics.observe h 99.0;
  (match List.assoc "c" snap with
  | `Counter v -> Alcotest.(check (float 0.0)) "counter frozen" 5.0 v
  | _ -> Alcotest.fail "counter expected");
  (match List.assoc "h" snap with
  | `Histogram (Some s) ->
    Alcotest.(check int) "histogram summary frozen" 1 s.Metrics.count;
    Alcotest.(check (float 0.0)) "max frozen" 1.0 s.Metrics.max
  | _ -> Alcotest.fail "histogram summary expected");
  Alcotest.(check bool)
    "registry moved on" true
    (match Metrics.lookup ~registry "c" with
    | Some (`Counter v) -> v = 105.0
    | _ -> false)

let test_metrics_reservoir_vs_series () =
  let registry = Metrics.create () in
  let h = Metrics.histogram ~registry ~cap:4096 "h" in
  let xs = Array.init 1000 (fun i -> float_of_int (i + 1)) in
  Array.iter (Metrics.observe h) xs;
  (* Under the cap the reservoir holds every observation, so summary
     quantiles equal exact percentiles, and a series sample of the
     registry reproduces them bit-for-bit. *)
  let st = Series.create () in
  Series.sample ~registry st ~day:1;
  (match (Metrics.hist_summary h, Series.points st "h.p95") with
  | Some s, [ p ] ->
    Alcotest.(check (float 0.0))
      "summary p95 is exact"
      (Wave_util.Stats.percentile xs 95.0)
      s.Metrics.p95;
    Alcotest.(check (float 0.0)) "series sample matches summary" s.Metrics.p95
      p.Series.value
  | _ -> Alcotest.fail "summary and sample expected");
  (* Over the cap the reservoir approximates: quantiles stay within a
     tolerance band of the exact value (cap 256 over uniform 1..4096
     keeps p50 well inside +/- 20%). *)
  let h2 = Metrics.histogram ~registry ~cap:256 "h2" in
  for i = 1 to 4096 do
    Metrics.observe h2 (float_of_int i)
  done;
  match Metrics.hist_summary h2 with
  | Some s ->
    Alcotest.(check int) "count exact beyond cap" 4096 s.Metrics.count;
    Alcotest.(check bool)
      (Printf.sprintf "reservoir p50 %.0f within band" s.Metrics.p50)
      true
      (s.Metrics.p50 > 2048.0 *. 0.8 && s.Metrics.p50 < 2048.0 *. 1.2)
  | None -> Alcotest.fail "summary expected"

let test_metrics_reset_and_remove () =
  let registry = Metrics.create () in
  let c = Metrics.counter ~registry "c" in
  let h = Metrics.histogram ~registry "h" in
  Metrics.inc ~by:9.0 c;
  Metrics.observe h 3.0;
  Metrics.reset registry;
  Alcotest.(check (float 0.0)) "counter zeroed" 0.0 (Metrics.counter_value c);
  Alcotest.(check bool)
    "histogram emptied" true
    (Metrics.hist_summary h = None);
  Alcotest.(check bool) "remove reports existence" true
    (Metrics.remove ~registry "c");
  Alcotest.(check bool) "second remove is false" false
    (Metrics.remove ~registry "c");
  Alcotest.(check bool)
    "removed name gone from lookup" true
    (Metrics.lookup ~registry "c" = None);
  (* The detached handle keeps working; re-registration is fresh. *)
  Metrics.inc ~by:2.0 c;
  Alcotest.(check (float 0.0)) "detached handle live" 2.0
    (Metrics.counter_value c);
  let c2 = Metrics.counter ~registry "c" in
  Alcotest.(check (float 0.0)) "re-registration fresh" 0.0
    (Metrics.counter_value c2)

let suites =
  [
    ( "series.ring",
      [
        Alcotest.test_case "record and read back" `Quick test_ring_basics;
        Alcotest.test_case "cap evicts oldest" `Quick test_ring_cap_evicts_oldest;
        Alcotest.test_case "sample expands a registry" `Quick
          test_ring_sample_registry;
        Alcotest.test_case "last_n and daily collapse" `Quick
          test_last_n_and_daily;
      ] );
    ( "series.windows",
      [
        Alcotest.test_case "window stats" `Quick test_window_stats;
        Alcotest.test_case "trend slope" `Quick test_trend;
        Alcotest.test_case "sparkline" `Quick test_sparkline;
      ] );
    ( "series.dump",
      [
        Alcotest.test_case "to_json self-validates" `Quick
          test_series_json_validates;
        Alcotest.test_case "validator rejects bad documents" `Quick
          test_series_validator_rejects;
      ] );
    ( "series.slo",
      [
        Alcotest.test_case "spec defaults and validation" `Quick
          test_slo_spec_validation;
        Alcotest.test_case "burn rate arithmetic" `Quick test_slo_burn_rate;
        Alcotest.test_case "one event per breach episode" `Quick
          test_slo_episode_lifecycle;
        Alcotest.test_case "specs_of_json" `Quick test_slo_specs_of_json;
      ] );
    ( "series.slo_e2e",
      [
        Alcotest.test_case "hostile run fires exactly once" `Quick
          test_slo_e2e_hostile_fires_once;
        Alcotest.test_case "control run stays silent" `Quick
          test_slo_e2e_control_is_silent;
        Alcotest.test_case "sampling is zero-cost" `Quick
          test_series_sampling_zero_cost;
      ] );
    ( "series.openmetrics",
      [
        Alcotest.test_case "render passes own validator" `Quick
          test_openmetrics_renders_valid;
        Alcotest.test_case "validator rejects bad corpus" `Quick
          test_openmetrics_bad_corpus;
      ] );
    ( "series.metrics",
      [
        Alcotest.test_case "snapshot immutability" `Quick
          test_metrics_snapshot_immutable;
        Alcotest.test_case "reservoir quantiles vs series sample" `Quick
          test_metrics_reservoir_vs_series;
        Alcotest.test_case "reset and remove" `Quick
          test_metrics_reset_and_remove;
      ] );
  ]
