(* Tests for crash consistency: the transition journal, checkpointed
   recovery, and the systematic fault-injection sweep. *)

open Wave_core
open Wave_disk
open Wave_storage
open Wave_sim

let store = Crash_harness.default_store

(* --- Journal -------------------------------------------------------- *)

let intent =
  {
    Journal.scheme = Scheme.Del;
    technique = Env.Packed_shadow;
    day_from = 8;
    day_to = 9;
    changes =
      [
        {
          Journal.slot = 2;
          old_days = Dayset.of_list [ 3; 4; 5 ];
          new_days = Dayset.of_list [ 4; 5; 9 ];
          old_extents = [ (0, 4, 7); (12, 2, 9) ];
        };
      ];
  }

let test_journal_roundtrip () =
  let j = Journal.create () in
  Journal.append j (Journal.Intent intent);
  Journal.append j (Journal.Commit { day_to = 9 });
  match Journal.of_string (Journal.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' -> (
    match Journal.entries j' with
    | [ Journal.Intent i; Journal.Commit { day_to } ] ->
      Alcotest.(check bool) "scheme" true (i.Journal.scheme = Scheme.Del);
      Alcotest.(check bool) "technique" true
        (i.Journal.technique = Env.Packed_shadow);
      Alcotest.(check int) "day_from" 8 i.Journal.day_from;
      Alcotest.(check int) "day_to" 9 i.Journal.day_to;
      Alcotest.(check int) "commit day" 9 day_to;
      (match i.Journal.changes with
      | [ c ] ->
        Alcotest.(check int) "slot" 2 c.Journal.slot;
        Alcotest.(check bool) "old days" true
          (Dayset.equal c.Journal.old_days (Dayset.of_list [ 3; 4; 5 ]));
        Alcotest.(check bool) "new days" true
          (Dayset.equal c.Journal.new_days (Dayset.of_list [ 4; 5; 9 ]));
        Alcotest.(check (list (triple int int int))) "extents"
          [ (0, 4, 7); (12, 2, 9) ]
          c.Journal.old_extents
      | cs -> Alcotest.failf "expected 1 change, got %d" (List.length cs));
      Alcotest.(check bool) "nothing pending" true (Journal.pending j' = None)
    | _ -> Alcotest.fail "wrong entries")

let test_journal_pending () =
  let j = Journal.create () in
  Alcotest.(check bool) "empty journal: none" true (Journal.pending j = None);
  Journal.append j (Journal.Intent intent);
  (match Journal.pending j with
  | Some i -> Alcotest.(check int) "uncommitted intent pending" 9 i.Journal.day_to
  | None -> Alcotest.fail "expected a pending intent");
  Journal.append j (Journal.Commit { day_to = 9 });
  Alcotest.(check bool) "committed: none" true (Journal.pending j = None);
  Journal.truncate j;
  Alcotest.(check bool) "truncated: empty" true (Journal.is_empty j)

let test_journal_bad_corpus () =
  let check_err name s =
    match Journal.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  check_err "empty" "";
  check_err "bad header" "wave-journal v9\n";
  check_err "unknown scheme" "wave-journal v1\nintent BTREE in-place 8 9\n";
  check_err "unknown technique" "wave-journal v1\nintent DEL mmap 8 9\n";
  check_err "bad day" "wave-journal v1\nintent DEL in-place eight 9\n";
  check_err "orphan change" "wave-journal v1\nchange 1 1,2 2,3 0:4:1\n";
  check_err "garbled days"
    "wave-journal v1\nintent DEL in-place 8 9\nchange 1 1,,2 2,3 0:4:1\n";
  check_err "garbled extents"
    "wave-journal v1\nintent DEL in-place 8 9\nchange 1 1,2 2,3 0:4\n";
  check_err "bad slot"
    "wave-journal v1\nintent DEL in-place 8 9\nchange 0 1,2 2,3 -\n";
  check_err "unknown record" "wave-journal v1\nvacuum now\n";
  (* happy paths the corpus is near to *)
  (match Journal.of_string "wave-journal v1\n" with
  | Ok j -> Alcotest.(check bool) "empty journal parses" true (Journal.is_empty j)
  | Error e -> Alcotest.failf "empty journal rejected: %s" e);
  match
    Journal.of_string
      "wave-journal v1\nintent DEL in-place 8 9\nchange 1 1,2 2,3 0:4:1\ncommit 9\n"
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline rejected: %s" e

(* --- Checkpoint: normal operation ----------------------------------- *)

let test_checkpoint_journalled_run () =
  let env = Env.create ~technique:Env.Packed_shadow ~store ~w:6 ~n:3 () in
  let cp = Checkpoint.start Scheme.Del env in
  Checkpoint.advance_to cp 10;
  Alcotest.(check int) "day" 10 (Checkpoint.current_day cp);
  Alcotest.(check bool) "not crashed" false (Checkpoint.crashed cp);
  (* after a committed transition the journal is truncated and the
     manifest matches the live frame *)
  Alcotest.(check bool) "journal truncated" true
    (Journal.is_empty (Checkpoint.journal cp));
  let m = Checkpoint.manifest cp in
  Alcotest.(check int) "manifest day" 10 m.Manifest.day;
  Alcotest.(check bool) "manifest slots current" true
    (List.for_all2 Dayset.equal m.Manifest.slots
       (List.init 3 (fun i ->
            Frame.slot_days (Checkpoint.frame cp) (i + 1))))

let test_recover_without_crash_rejected () =
  let env = Env.create ~store ~w:4 ~n:2 () in
  let cp = Checkpoint.start Scheme.Reindex env in
  Alcotest.(check bool) "recover on a live instance rejected" true
    (try
       ignore (Checkpoint.recover cp);
       false
     with Invalid_argument _ -> true)

(* --- Checkpoint: crash and recovery --------------------------------- *)

let sorted_scan frame = List.sort Entry.compare (Frame.segment_scan frame)

(* Crash DEL x packed-shadow late in the transition (after the journal
   intent; during index work), then recover and check the bounded-work
   guarantee: only the slot named in the intent is rebuilt. *)
let test_recovery_rebuilds_only_journalled_slot () =
  let env = Env.create ~technique:Env.Packed_shadow ~store ~w:6 ~n:3 () in
  let cp = Checkpoint.start Scheme.Del env in
  Checkpoint.advance_to cp 9;
  let disk = env.Env.disk in
  (* crash on the last write of day 10's transition, so the old slot is
     already gone and recovery must roll forward *)
  let twin_env = Env.create ~technique:Env.Packed_shadow ~store ~w:6 ~n:3 () in
  let twin = Checkpoint.start Scheme.Del twin_env in
  Checkpoint.advance_to twin 9;
  let before = Disk.counters twin_env.Env.disk in
  Checkpoint.transition twin;
  let after = Disk.counters twin_env.Env.disk in
  let seeks = after.Disk.seeks - before.Disk.seeks in
  Alcotest.(check bool) "transition performs several seeks" true (seeks > 2);
  (* the transition's second-to-last seek is the manifest checkpoint
     write: by then the old constituent has been dropped (packed
     shadowing drops it when the smart copy finishes), so recovery
     cannot roll back and must complete the transition *)
  Disk.arm_fault disk { Disk.target = Disk.On_seek; at = seeks - 1 };
  (try Checkpoint.transition cp with Disk.Disk_error _ -> ());
  Alcotest.(check bool) "crashed" true (Checkpoint.crashed cp);
  Disk.clear_fault disk;
  let c0 = Disk.counters disk in
  let r = Checkpoint.recover cp in
  let c1 = Disk.counters disk in
  (* the interrupted transition touched exactly one slot (DEL), and
     recovery rebuilt only that slot *)
  Alcotest.(check bool) "rolled forward" true r.Checkpoint.rolled_forward;
  Alcotest.(check int) "recovered at the interrupted day" 10
    r.Checkpoint.recovered_day;
  Alcotest.(check bool) "journal truncated after recovery" true
    (Journal.is_empty (Checkpoint.journal cp));
  Alcotest.(check int) "one slot rebuilt" 1
    (List.length r.Checkpoint.rebuilt_slots);
  (* bounded work, asserted via disk counters: recovery wrote no more
     blocks than the single rebuilt constituent occupies — never a full
     BuildIndex of every slot *)
  let rebuilt_blocks =
    List.fold_left
      (fun a j ->
        a + Index.allocated_blocks (Frame.slot_index (Checkpoint.frame cp) j))
      0 r.Checkpoint.rebuilt_slots
  in
  let recovery_writes = c1.Disk.blocks_written - c0.Disk.blocks_written in
  let full_rebuild_blocks =
    List.fold_left
      (fun a j ->
        a + Index.allocated_blocks (Frame.slot_index (Checkpoint.frame cp) j))
      0 [ 1; 2; 3 ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "recovery wrote %d blocks <= rebuilt slot's %d"
       recovery_writes rebuilt_blocks)
    true
    (recovery_writes <= rebuilt_blocks);
  Alcotest.(check bool) "strictly less than a full rebuild" true
    (recovery_writes < full_rebuild_blocks);
  (* and the recovered wave answers like the twin *)
  Alcotest.(check bool) "query-identical to uncrashed twin" true
    (sorted_scan (Checkpoint.frame cp) = sorted_scan (Checkpoint.frame twin))

(* Crash a shadow transition on its very first metadata seek: nothing
   durable changed, so recovery rolls back to the previous day without
   rebuilding anything. *)
let test_recovery_rolls_back_when_old_wave_intact () =
  let env = Env.create ~technique:Env.Simple_shadow ~store ~w:6 ~n:3 () in
  let cp = Checkpoint.start Scheme.Reindex env in
  Checkpoint.advance_to cp 9;
  let reference = sorted_scan (Checkpoint.frame cp) in
  let disk = env.Env.disk in
  Disk.set_fault disk ~after_seeks:2;
  (try Checkpoint.transition cp with Disk.Disk_error _ -> ());
  Alcotest.(check bool) "crashed" true (Checkpoint.crashed cp);
  Disk.clear_fault disk;
  let c0 = Disk.counters disk in
  let r = Checkpoint.recover cp in
  let c1 = Disk.counters disk in
  Alcotest.(check bool) "rolled back" false r.Checkpoint.rolled_forward;
  Alcotest.(check int) "previous day" 9 r.Checkpoint.recovered_day;
  Alcotest.(check (list int)) "nothing rebuilt" [] r.Checkpoint.rebuilt_slots;
  Alcotest.(check int) "roll-back reads no data blocks" 0
    (c1.Disk.blocks_read - c0.Disk.blocks_read);
  Alcotest.(check bool) "wave unchanged" true
    (sorted_scan (Checkpoint.frame cp) = reference)

(* In-place updating mutates live extents, so even an early crash must
   roll forward — the old contents cannot be trusted. *)
let test_in_place_always_rolls_forward () =
  let env = Env.create ~technique:Env.In_place ~store ~w:6 ~n:3 () in
  let cp = Checkpoint.start Scheme.Del env in
  Checkpoint.advance_to cp 9;
  let disk = env.Env.disk in
  Disk.arm_fault disk { Disk.target = Disk.On_write; at = 1 };
  (try Checkpoint.transition cp with Disk.Disk_error _ -> ());
  Disk.clear_fault disk;
  let r = Checkpoint.recover cp in
  Alcotest.(check bool) "rolled forward" true r.Checkpoint.rolled_forward;
  Alcotest.(check int) "at the interrupted day" 10 r.Checkpoint.recovered_day

(* After any recovery the allocator owes nothing: live space is exactly
   the surviving constituents'. *)
let assert_no_leaks cp =
  let disk = (Checkpoint.env cp).Env.disk in
  let frame = Checkpoint.frame cp in
  let claimed = ref 0 in
  for j = 1 to Frame.n frame do
    claimed := !claimed + Index.allocated_blocks (Frame.slot_index frame j)
  done;
  Alcotest.(check int) "live blocks = constituents' blocks" !claimed
    (Disk.live_blocks disk);
  Alcotest.(check int) "no torn extents" 0 (Disk.torn_count disk)

let test_torn_write_swept_on_recovery () =
  let env = Env.create ~technique:Env.Packed_shadow ~store ~w:6 ~n:3 () in
  let cp = Checkpoint.start Scheme.Del env in
  Checkpoint.advance_to cp 9;
  let disk = env.Env.disk in
  Disk.arm_fault disk ~mode:Disk.Torn { Disk.target = Disk.On_write; at = 1 };
  (try Checkpoint.transition cp with Disk.Disk_error _ -> ());
  Disk.clear_fault disk;
  Alcotest.(check bool) "extent torn at crash" true (Disk.torn_count disk > 0);
  let r = Checkpoint.recover cp in
  Alcotest.(check bool) "torn debris swept" true (r.Checkpoint.freed_blocks > 0);
  assert_no_leaks cp

(* --- Harness sweeps (bounded samples of the full crashtest matrix) --- *)

let sweep_case scheme technique () =
  let r = Crash_harness.sweep ~scheme ~technique ~w:6 ~n:3 ~day:9 () in
  Alcotest.(check bool)
    (Format.asprintf "%a" Crash_harness.pp_report r)
    true r.Crash_harness.passed;
  Alcotest.(check bool) "sweep exercised several points" true
    (List.length r.Crash_harness.points >= 3)

(* PR 1's guarantee must survive PR 3's buffer pool: sweep every fault
   point of every scheme x technique with a pool attached.  Write-through
   keeps the write fault points identical; the capture replay keeps the
   seek schedule exact (see Crash_harness.run_point). *)
let test_sweep_cache_enabled_all () =
  let icfg =
    {
      Index.default_config with
      Index.cache_blocks = Some 64;
      cache_readahead = 2;
    }
  in
  List.iter
    (fun scheme ->
      List.iter
        (fun technique ->
          let r =
            Crash_harness.sweep ~icfg ~scheme ~technique ~w:6 ~n:3 ~day:8 ()
          in
          Alcotest.(check bool)
            (Format.asprintf "cached %a" Crash_harness.pp_report r)
            true r.Crash_harness.passed)
        [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
    Scheme.all

(* PR 4: write-back defers writes to flush drains at the durability
   barriers, adding On_flush points (crash with a fully dirty pool)
   and turning each drain's run writes into On_write points of their
   own.  Every scheme x technique must recover from every point with
   write-back enabled. *)
let wb_icfg =
  {
    Index.default_config with
    Index.cache_blocks = Some 64;
    cache_readahead = 2;
    cache_write_back = true;
  }

let test_sweep_write_back_all () =
  List.iter
    (fun scheme ->
      List.iter
        (fun technique ->
          let r =
            Crash_harness.sweep ~icfg:wb_icfg ~scheme ~technique ~w:6 ~n:3
              ~day:8 ()
          in
          Alcotest.(check bool)
            (Format.asprintf "write-back %a" Crash_harness.pp_report r)
            true r.Crash_harness.passed)
        [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
    Scheme.all

let test_sweep_write_back_has_flush_points () =
  let r =
    Crash_harness.sweep ~icfg:wb_icfg ~scheme:Scheme.Del
      ~technique:Env.Packed_shadow ~w:6 ~n:3 ~day:8 ()
  in
  Alcotest.(check bool) "sweep has On_flush points" true
    (List.exists
       (fun p -> p.Crash_harness.point.Disk.target = Disk.On_flush)
       r.Crash_harness.points);
  Alcotest.(check bool) "and passes them" true r.Crash_harness.passed

let test_sweep_counts_both_targets () =
  let r =
    Crash_harness.sweep ~scheme:Scheme.Reindex ~technique:Env.Packed_shadow
      ~w:6 ~n:3 ~day:9 ()
  in
  let seeks, writes =
    List.partition
      (fun p -> p.Crash_harness.point.Disk.target = Disk.On_seek)
      r.Crash_harness.points
  in
  Alcotest.(check bool) "has seek points" true (seeks <> []);
  Alcotest.(check bool) "has write points" true (writes <> []);
  (* every write point is swept in both modes *)
  Alcotest.(check bool) "torn mode swept" true
    (List.exists (fun p -> p.Crash_harness.mode = Disk.Torn) writes)

(* --- Flight-recorder artifacts on sweep failure ---------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

(* A store that poisons [poison_day]'s batch for every instantiation
   after the first: the uncrashed twin sees the canonical data, every
   crashed replay sees an extra posting, so roll-forward recovery
   disagrees with the twin and the point fails — on purpose, to
   exercise the failure-artifact path. *)
let divergent_store ~poison_day =
  let instances = ref 0 in
  fun day ->
    if day = 1 then incr instances;
    if day = poison_day && !instances > 1 then
      Entry.batch_create ~day
        (Array.init 9 (fun i ->
             {
               Entry.value = 1 + ((day + i) mod 6);
               entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
             }))
    else Crash_harness.default_store day

let point_failed (p : Crash_harness.point_result) =
  not (p.Crash_harness.fired && p.Crash_harness.consistent
      && p.Crash_harness.space_ok)

let test_sweep_failure_writes_flight_artifacts () =
  let adir = "crash_sweep_artifacts" in
  rm_rf adir;
  Fun.protect ~finally:(fun () -> rm_rf adir) @@ fun () ->
  (* In-place always rolls forward, so every point replays the poisoned
     day 7 batch into the recovered wave and fails consistency. *)
  let r =
    Crash_harness.sweep
      ~store:(divergent_store ~poison_day:7)
      ~artifact_dir:adir ~scheme:Scheme.Del ~technique:Env.In_place ~w:6 ~n:3
      ~day:7 ()
  in
  Alcotest.(check bool) "sweep fails by construction" false
    r.Crash_harness.passed;
  let failing = List.filter point_failed r.Crash_harness.points in
  Alcotest.(check bool) "has failing points" true (failing <> []);
  let dumps = Array.to_list (Sys.readdir adir) in
  Alcotest.(check int) "one dump per failing point" (List.length failing)
    (List.length dumps);
  List.iter
    (fun f ->
      Alcotest.(check bool) (f ^ " named *.flight.jsonl") true
        (Filename.check_suffix f ".flight.jsonl");
      match Wave_obs.Sink.validate_flight_file (Filename.concat adir f) with
      | Ok n ->
        (* The per-point ring was cleared at replay start, so the dump
           is that point's own tail — at minimum the injected fault. *)
        Alcotest.(check bool) (f ^ " holds the fatal event") true (n > 0)
      | Error e -> Alcotest.failf "%s invalid: %s" f e)
    dumps;
  (* A passing sweep with an artifact dir armed writes nothing — the
     directory is not even created. *)
  let clean = Filename.concat adir "clean" in
  let r2 =
    Crash_harness.sweep ~artifact_dir:clean ~scheme:Scheme.Del
      ~technique:Env.In_place ~w:6 ~n:3 ~day:7 ()
  in
  Alcotest.(check bool) "clean sweep passes" true r2.Crash_harness.passed;
  Alcotest.(check bool) "no artifacts from a clean sweep" true
    (not (Sys.file_exists clean))

let suites =
  [
    ( "core.journal",
      [
        Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
        Alcotest.test_case "pending" `Quick test_journal_pending;
        Alcotest.test_case "bad corpus" `Quick test_journal_bad_corpus;
      ] );
    ( "core.checkpoint",
      [
        Alcotest.test_case "journalled run" `Quick test_checkpoint_journalled_run;
        Alcotest.test_case "recover needs a crash" `Quick
          test_recover_without_crash_rejected;
        Alcotest.test_case "rebuilds only journalled slot" `Quick
          test_recovery_rebuilds_only_journalled_slot;
        Alcotest.test_case "rolls back intact shadow" `Quick
          test_recovery_rolls_back_when_old_wave_intact;
        Alcotest.test_case "in-place rolls forward" `Quick
          test_in_place_always_rolls_forward;
        Alcotest.test_case "torn write swept" `Quick
          test_torn_write_swept_on_recovery;
      ] );
    ( "sim.crash_harness",
      [
        Alcotest.test_case "DEL x packed sweep" `Quick
          (sweep_case Scheme.Del Env.Packed_shadow);
        Alcotest.test_case "RATA* x simple sweep" `Quick
          (sweep_case Scheme.Rata_star Env.Simple_shadow);
        Alcotest.test_case "WATA* x in-place sweep" `Quick
          (sweep_case Scheme.Wata_star Env.In_place);
        Alcotest.test_case "both fault targets swept" `Quick
          test_sweep_counts_both_targets;
        Alcotest.test_case "cache-enabled sweep, all combinations" `Quick
          test_sweep_cache_enabled_all;
        Alcotest.test_case "write-back sweep, all combinations" `Quick
          test_sweep_write_back_all;
        Alcotest.test_case "write-back sweep has flush points" `Quick
          test_sweep_write_back_has_flush_points;
        Alcotest.test_case "failing sweep writes flight artifacts" `Quick
          test_sweep_failure_writes_flight_artifacts;
      ] );
  ]
