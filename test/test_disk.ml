(* Tests for the simulated-disk substrate: allocator invariants, cost
   accounting against the seek/transfer model, and error protocol. *)

open Wave_disk

let params = { Disk.seek_time = 0.01; transfer_rate = 1e6; block_size = 1000 }
(* With these numbers one block transfers in exactly 1 ms, so expected
   elapsed times are easy to state in tests. *)

let fresh () = Disk.create ~params ()
let check_float = Alcotest.(check (float 1e-9))

let test_alloc_basic () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Alcotest.(check int) "live" 10 (Disk.live_blocks d);
  Alcotest.(check bool) "is live" true (Disk.is_live d e);
  Disk.free d e;
  Alcotest.(check int) "live after free" 0 (Disk.live_blocks d);
  Alcotest.(check bool) "not live" false (Disk.is_live d e)

let test_alloc_non_positive () =
  let d = fresh () in
  Alcotest.check_raises "zero" (Disk.Disk_error "alloc: non-positive size")
    (fun () -> ignore (Disk.alloc d ~blocks:0))

let test_double_free () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:4 in
  Disk.free d e;
  Alcotest.check_raises "double free" (Disk.Disk_error "extent is not live")
    (fun () -> Disk.free d e)

let test_extents_disjoint () =
  let d = fresh () in
  let es = List.init 50 (fun i -> Disk.alloc d ~blocks:(1 + (i mod 7))) in
  let ranges =
    List.map (fun (e : Disk.extent) -> (e.start, e.start + e.length)) es
  in
  let sorted = List.sort compare ranges in
  let rec disjoint = function
    | (_, hi) :: ((lo, _) :: _ as rest) -> hi <= lo && disjoint rest
    | _ -> true
  in
  Alcotest.(check bool) "no overlap" true (disjoint sorted)

let test_free_reuses_space () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:8 in
  let hw1 = Disk.high_water d in
  Disk.free d e1;
  let e2 = Disk.alloc d ~blocks:8 in
  Alcotest.(check int) "frontier unchanged" hw1 (Disk.high_water d);
  Alcotest.(check int) "same start reused" e1.Disk.start e2.Disk.start

let test_coalescing () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:5 in
  let e2 = Disk.alloc d ~blocks:5 in
  let e3 = Disk.alloc d ~blocks:5 in
  (* Free in an order that requires both-side merging for the middle. *)
  Disk.free d e1;
  Disk.free d e3;
  Disk.free d e2;
  let big = Disk.alloc d ~blocks:15 in
  Alcotest.(check int) "coalesced hole fits 15" 0 big.Disk.start;
  Alcotest.(check int) "frontier unchanged" 15 (Disk.high_water d)

let test_first_fit_skips_small_holes () =
  let d = fresh () in
  let small = Disk.alloc d ~blocks:2 in
  let _keep = Disk.alloc d ~blocks:10 in
  Disk.free d small;
  let e = Disk.alloc d ~blocks:5 in
  (* The 2-block hole cannot hold 5 blocks, so we extend the frontier. *)
  Alcotest.(check int) "allocated past frontier" 12 e.Disk.start

let test_peak_tracking () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:10 in
  let e2 = Disk.alloc d ~blocks:20 in
  Disk.free d e1;
  Disk.free d e2;
  Alcotest.(check int) "peak is 30" 30 (Disk.peak_blocks d);
  Alcotest.(check int) "live is 0" 0 (Disk.live_blocks d);
  Disk.reset_peak d;
  Alcotest.(check int) "peak reset" 0 (Disk.peak_blocks d)

let test_read_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Disk.read d e;
  (* one seek (10 ms) + 10 blocks x 1 ms *)
  check_float "elapsed" 0.02 (Disk.elapsed d);
  let c = Disk.counters d in
  Alcotest.(check int) "seeks" 1 c.Disk.seeks;
  Alcotest.(check int) "blocks read" 10 c.Disk.blocks_read

let test_partial_read_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Disk.read_blocks d e ~blocks:3;
  check_float "elapsed" 0.013 (Disk.elapsed d)

let test_partial_read_bounds () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:10 in
  Alcotest.check_raises "over-read"
    (Disk.Disk_error "read_blocks: out of extent bounds") (fun () ->
      Disk.read_blocks d e ~blocks:11)

let test_write_costs () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:5 in
  Disk.write d e;
  check_float "elapsed" 0.015 (Disk.elapsed d);
  Alcotest.(check int) "blocks written" 5 (Disk.counters d).Disk.blocks_written

let test_sequential_scan_single_seek () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:4 in
  let e2 = Disk.alloc d ~blocks:6 in
  Disk.sequential_read d [ e1; e2 ];
  let c = Disk.counters d in
  Alcotest.(check int) "one seek" 1 c.Disk.seeks;
  check_float "elapsed" 0.02 (Disk.elapsed d)

let test_read_dead_extent () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:3 in
  Disk.free d e;
  Alcotest.check_raises "read freed" (Disk.Disk_error "extent is not live")
    (fun () -> Disk.read d e)

let test_reset_counters_keeps_allocation () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:6 in
  Disk.read d e;
  Disk.reset_counters d;
  check_float "elapsed zero" 0.0 (Disk.elapsed d);
  Alcotest.(check int) "still live" 6 (Disk.live_blocks d);
  Disk.read d e (* still readable *)

let test_fragmentation () =
  let d = fresh () in
  let e1 = Disk.alloc d ~blocks:10 in
  let _e2 = Disk.alloc d ~blocks:10 in
  Disk.free d e1;
  check_float "half free" 0.5 (Disk.fragmentation d)

(* Property: a random interleaving of allocs and frees never violates
   disjointness, never loses blocks, and live accounting matches the sum
   of live extent sizes. *)
let prop_allocator_consistent =
  QCheck2.Test.make ~name:"allocator random workout" ~count:200
    QCheck2.Gen.(pair small_int (list_size (int_range 1 120) (int_range 1 16)))
    (fun (seed, sizes) ->
      let prng = Wave_util.Prng.create seed in
      let d = fresh () in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun size ->
          (* Randomly free one live extent before (maybe) allocating. *)
          (match !live with
          | [] -> ()
          | es when Wave_util.Prng.bool prng ->
            let i = Wave_util.Prng.int prng (List.length es) in
            let e = List.nth es i in
            Disk.free d e;
            live := List.filteri (fun j _ -> j <> i) es
          | _ -> ());
          let e = Disk.alloc d ~blocks:size in
          live := e :: !live;
          (* Accounting check. *)
          let sum =
            List.fold_left (fun acc (e : Disk.extent) -> acc + e.length) 0 !live
          in
          if sum <> Disk.live_blocks d then ok := false;
          (* Disjointness check. *)
          let ranges =
            List.sort compare
              (List.map
                 (fun (e : Disk.extent) -> (e.Disk.start, e.Disk.start + e.Disk.length))
                 !live)
          in
          let rec disjoint = function
            | (_, hi) :: ((lo, _) :: _ as rest) -> hi <= lo && disjoint rest
            | _ -> true
          in
          if not (disjoint ranges) then ok := false)
        sizes;
      !ok)

let prop_free_all_returns_to_empty =
  QCheck2.Test.make ~name:"free all -> one coalesced hole" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) (int_range 1 12))
    (fun sizes ->
      let d = fresh () in
      let es = List.map (fun b -> Disk.alloc d ~blocks:b) sizes in
      List.iter (Disk.free d) es;
      (* After freeing everything, an allocation the size of the whole
         high-water region must fit at offset 0: the free list coalesced. *)
      let hw = Disk.high_water d in
      let e = Disk.alloc d ~blocks:hw in
      e.Disk.start = 0 && Disk.high_water d = hw)

(* --- Fault injection ------------------------------------------------ *)

let injected = Disk.Disk_error "injected fault"

let test_set_fault_counts_down () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:2 in
  Disk.set_fault d ~after_seeks:3;
  Disk.read d e;
  Disk.read d e;
  Alcotest.(check bool) "still armed" true (Disk.fault_armed d);
  Alcotest.check_raises "third seek fails" injected (fun () -> Disk.read d e);
  Alcotest.(check bool) "disarmed after firing" false (Disk.fault_armed d);
  (* the failing operation charged nothing *)
  Alcotest.(check int) "two successful seeks" 2 (Disk.counters d).Disk.seeks;
  Disk.read d e (* healthy again *)

let test_fault_survives_reset_counters () =
  (* The plan is injected-failure state, not observability state: a
     counter reset must not silently disarm it. *)
  let d = fresh () in
  let e = Disk.alloc d ~blocks:1 in
  Disk.set_fault d ~after_seeks:2;
  Disk.read d e;
  Disk.reset_counters d;
  Alcotest.(check bool) "armed across reset" true (Disk.fault_armed d);
  Alcotest.check_raises "second seek still fails" injected (fun () ->
      Disk.read d e)

let test_clear_fault_idempotent () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:1 in
  Disk.clear_fault d;
  (* clearing an unarmed disk is a no-op *)
  Disk.set_fault d ~after_seeks:1;
  Disk.clear_fault d;
  Disk.clear_fault d;
  Alcotest.(check bool) "disarmed" false (Disk.fault_armed d);
  Disk.read d e (* does not fire *)

let test_double_arm_last_wins () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:1 in
  Disk.set_fault d ~after_seeks:1;
  (* re-arming replaces the imminent plan with a later one *)
  Disk.set_fault d ~after_seeks:3;
  Disk.read d e;
  Disk.read d e;
  (match Disk.armed_fault d with
  | Some ({ Disk.target = Disk.On_seek; at = 1 }, Disk.Fail_stop) -> ()
  | _ -> Alcotest.fail "expected one remaining seek on the second plan");
  Alcotest.check_raises "fires on the second plan's schedule" injected
    (fun () -> Disk.read d e)

let test_arm_validation () =
  let d = fresh () in
  Alcotest.check_raises "at < 1" (Disk.Disk_error "arm_fault: need at >= 1")
    (fun () -> Disk.arm_fault d { Disk.target = Disk.On_seek; at = 0 });
  Alcotest.check_raises "torn seeks"
    (Disk.Disk_error "arm_fault: torn mode applies to writes only") (fun () ->
      Disk.arm_fault d ~mode:Disk.Torn { Disk.target = Disk.On_seek; at = 1 })

let test_write_fault_fail_stop () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:4 in
  Disk.arm_fault d { Disk.target = Disk.On_write; at = 2 };
  Disk.read d e;
  (* reads don't consume write-targeted countdowns *)
  Disk.write d e;
  Alcotest.check_raises "second write fails" injected (fun () -> Disk.write d e);
  let c = Disk.counters d in
  Alcotest.(check int) "one write op succeeded" 1 c.Disk.write_ops;
  Alcotest.(check int) "failed write moved no blocks" 4 c.Disk.blocks_written

let test_torn_write_semantics () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:4 in
  Disk.write d e;
  Disk.arm_fault d ~mode:Disk.Torn { Disk.target = Disk.On_write; at = 1 };
  Alcotest.check_raises "torn write raises"
    (Disk.Disk_error "injected fault: torn write") (fun () -> Disk.write d e);
  (* space still allocated, but contents unreadable *)
  Alcotest.(check bool) "still live" true (Disk.is_live d e);
  Alcotest.(check int) "one torn extent" 1 (Disk.torn_count d);
  Alcotest.check_raises "read of torn contents"
    (Disk.Disk_error "torn extent: contents invalid after interrupted write")
    (fun () -> Disk.read d e);
  (* a partial rewrite does not heal it *)
  Disk.write_blocks d e ~blocks:2;
  Alcotest.(check bool) "partial rewrite leaves it torn" true (Disk.is_torn d e);
  (* a full rewrite does *)
  Disk.write d e;
  Alcotest.(check bool) "full rewrite heals" false (Disk.is_torn d e);
  Disk.read d e

let test_torn_cleared_by_free () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:3 in
  Disk.arm_fault d ~mode:Disk.Torn { Disk.target = Disk.On_write; at = 1 };
  (try Disk.write d e with Disk.Disk_error _ -> ());
  Disk.free d e;
  Alcotest.(check int) "no torn extents after free" 0 (Disk.torn_count d);
  (* reallocating the same region starts clean *)
  let e' = Disk.alloc d ~blocks:3 in
  Alcotest.(check int) "same region" e.Disk.start e'.Disk.start;
  Disk.write d e';
  Disk.read d e'

let test_fault_schedule_enumerates () =
  let d = fresh () in
  let e = Disk.alloc d ~blocks:2 in
  let before = Disk.counters d in
  Disk.read d e;
  Disk.write d e;
  Disk.write d e;
  let after = Disk.counters d in
  let sched = Disk.fault_schedule ~before ~after in
  (* 3 seeks (one per operation) + 2 write ops *)
  Alcotest.(check int) "five points" 5 (List.length sched);
  let seeks =
    List.filter (fun p -> p.Disk.target = Disk.On_seek) sched
  and writes =
    List.filter (fun p -> p.Disk.target = Disk.On_write) sched
  in
  Alcotest.(check (list int)) "seek points" [ 1; 2; 3 ]
    (List.map (fun p -> p.Disk.at) seeks);
  Alcotest.(check (list int)) "write points" [ 1; 2 ]
    (List.map (fun p -> p.Disk.at) writes)

let test_generation_distinguishes_reuse () =
  (* Same address, same shape, different life: the generation is what a
     recovery log uses to tell them apart. *)
  let d = fresh () in
  let e = Disk.alloc d ~blocks:5 in
  let g1 = Disk.generation_at d ~start:e.Disk.start in
  Alcotest.(check bool) "live extent has a generation" true (g1 <> None);
  Disk.free d e;
  Alcotest.(check bool) "freed extent has none" true
    (Disk.generation_at d ~start:e.Disk.start = None);
  let e' = Disk.alloc d ~blocks:5 in
  Alcotest.(check int) "reallocated at the same start" e.Disk.start e'.Disk.start;
  let g2 = Disk.generation_at d ~start:e'.Disk.start in
  Alcotest.(check bool) "new generation" true (g2 <> None && g2 <> g1)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "disk.allocator",
      [
        Alcotest.test_case "alloc/free basic" `Quick test_alloc_basic;
        Alcotest.test_case "non-positive alloc" `Quick test_alloc_non_positive;
        Alcotest.test_case "double free" `Quick test_double_free;
        Alcotest.test_case "extents disjoint" `Quick test_extents_disjoint;
        Alcotest.test_case "free reuses space" `Quick test_free_reuses_space;
        Alcotest.test_case "coalescing" `Quick test_coalescing;
        Alcotest.test_case "first fit skips small holes" `Quick
          test_first_fit_skips_small_holes;
        Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
        Alcotest.test_case "fragmentation" `Quick test_fragmentation;
      ]
      @ qcheck [ prop_allocator_consistent; prop_free_all_returns_to_empty ] );
    ( "disk.costs",
      [
        Alcotest.test_case "read costs" `Quick test_read_costs;
        Alcotest.test_case "partial read costs" `Quick test_partial_read_costs;
        Alcotest.test_case "partial read bounds" `Quick test_partial_read_bounds;
        Alcotest.test_case "write costs" `Quick test_write_costs;
        Alcotest.test_case "sequential scan single seek" `Quick
          test_sequential_scan_single_seek;
        Alcotest.test_case "read dead extent" `Quick test_read_dead_extent;
        Alcotest.test_case "reset keeps allocation" `Quick
          test_reset_counters_keeps_allocation;
      ] );
    ( "disk.faults",
      [
        Alcotest.test_case "set_fault counts down" `Quick
          test_set_fault_counts_down;
        Alcotest.test_case "survives reset_counters" `Quick
          test_fault_survives_reset_counters;
        Alcotest.test_case "clear_fault idempotent" `Quick
          test_clear_fault_idempotent;
        Alcotest.test_case "double arm: last wins" `Quick
          test_double_arm_last_wins;
        Alcotest.test_case "arm validation" `Quick test_arm_validation;
        Alcotest.test_case "write fail-stop" `Quick test_write_fault_fail_stop;
        Alcotest.test_case "torn write semantics" `Quick
          test_torn_write_semantics;
        Alcotest.test_case "torn cleared by free" `Quick
          test_torn_cleared_by_free;
        Alcotest.test_case "fault_schedule enumerates" `Quick
          test_fault_schedule_enumerates;
        Alcotest.test_case "generation distinguishes reuse" `Quick
          test_generation_distinguishes_reuse;
      ] );
  ]
