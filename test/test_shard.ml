(* Tests for the sharded wave index: key-space partitioning, the
   router's transparency against a single-disk run, parallel cost
   semantics, the snapshot-isolated shard split with its crash sweep,
   and the throughput scaling the bench series gates. *)

open Wave_core
open Wave_shard
module Parallel = Wave_model.Parallel

let store ?(vocab = 6) ?(postings = 8) day =
  Wave_storage.Entry.batch_create ~day
    (Array.init postings (fun i ->
         {
           Wave_storage.Entry.value = 1 + (((day * 37) + (i * 13)) mod vocab);
           entry = { Wave_storage.Entry.rid = (day * 1000) + i; day; info = i };
         }))

(* --- Partition ----------------------------------------------------- *)

let test_partition_total_and_deterministic () =
  List.iter
    (fun kind ->
      let p = Partition.create kind ~arms:4 ~vocab:500 in
      for v = 1 to 500 do
        let a = Partition.arm_of_value p v in
        Alcotest.(check bool)
          (Printf.sprintf "%s: value %d in range" (Partition.kind_name kind) v)
          true
          (a >= 0 && a < 4);
        Alcotest.(check int) "deterministic" a (Partition.arm_of_value p v)
      done)
    [ Partition.Hash; Partition.Range ]

let test_partition_range_contiguous () =
  let p = Partition.create Partition.Range ~arms:3 ~vocab:30 in
  (* Arm of a range partition never decreases... it is contiguous: the
     set of values owned by each arm forms one run. *)
  let owners = List.init 30 (fun i -> Partition.arm_of_value p (i + 1)) in
  let runs =
    List.fold_left
      (fun acc o -> match acc with x :: _ when x = o -> acc | _ -> o :: acc)
      [] owners
  in
  Alcotest.(check int) "three contiguous runs" 3 (List.length runs);
  (* Out-of-domain values clamp to the edge arms. *)
  Alcotest.(check int) "clamp low" (Partition.arm_of_value p 1)
    (Partition.arm_of_value p (-5));
  Alcotest.(check int) "clamp high" (Partition.arm_of_value p 30)
    (Partition.arm_of_value p 99)

let test_partition_split_moves_only_victim_keys () =
  List.iter
    (fun kind ->
      let p = Partition.create kind ~arms:3 ~vocab:300 in
      let q = Partition.split p ~arm:1 in
      Alcotest.(check int) "one more arm" 4 (Partition.arms q);
      Alcotest.(check int) "generation bumped" 2 (Partition.generation q);
      let moved = ref 0 in
      for v = 1 to 300 do
        let before = Partition.arm_of_value p v in
        let after = Partition.arm_of_value q v in
        if before <> 1 then
          Alcotest.(check int)
            (Printf.sprintf "%s: untouched arm keeps value %d"
               (Partition.kind_name kind) v)
            before after
        else begin
          Alcotest.(check bool) "victim value stays or moves to the new arm"
            true
            (after = 1 || after = 3);
          if after = 3 then incr moved
        end
      done;
      Alcotest.(check bool) "some keys moved" true (!moved > 0))
    [ Partition.Hash; Partition.Range ]

let test_partition_can_split_exhausted () =
  (* 64 hash arms own one bucket each: no arm is divisible. *)
  let p = Partition.create Partition.Hash ~arms:Partition.buckets ~vocab:100 in
  for a = 0 to Partition.buckets - 1 do
    Alcotest.(check bool) "singleton bucket" false (Partition.can_split p ~arm:a)
  done;
  let r = Partition.create Partition.Range ~arms:5 ~vocab:5 in
  Alcotest.(check bool) "singleton slice" false (Partition.can_split r ~arm:0)

let test_partition_place_lpt () =
  (* Split.contiguous over W=7, n=3 gives day counts [3; 2; 2]: round
     robin onto 2 disks piled 3+2 days on disk 0 (2.5x skew); LPT lands
     3 vs 2+2. *)
  let placement = Partition.place ~weights:[| 3.0; 2.0; 2.0 |] ~arms:2 in
  Alcotest.(check (array int)) "heaviest alone" [| 0; 1; 1 |] placement;
  let loads = Array.make 2 0.0 in
  Array.iteri
    (fun i a -> loads.(a) <- loads.(a) +. [| 3.0; 2.0; 2.0 |].(i))
    placement;
  Alcotest.(check bool) "within 2x" true
    (Array.fold_left Float.max 0.0 loads
    <= 2.0 *. Array.fold_left Float.min infinity loads)

(* --- Parallel cost clock ------------------------------------------- *)

let test_parallel_max_not_sum () =
  let c = Parallel.create ~arms:3 in
  let mk = Parallel.record c [ (0, 2.0); (1, 5.0); (2, 1.0) ] in
  Alcotest.(check (float 1e-9)) "makespan is the max" 5.0 mk;
  Alcotest.(check (float 1e-9)) "elapsed advances by the max" 5.0
    (Parallel.elapsed c);
  Alcotest.(check (float 1e-9)) "serial is the sum" 8.0 (Parallel.serial c);
  ignore (Parallel.record c [ (0, 3.0) ]);
  Alcotest.(check (float 1e-9)) "busy per arm" 5.0 (Parallel.busy_arm c 0);
  Alcotest.(check (float 1e-9)) "speedup = serial/elapsed" (11.0 /. 8.0)
    (Parallel.speedup c);
  Alcotest.(check (float 1e-9)) "skew = max/mean" (5.0 /. (11.0 /. 3.0))
    (Parallel.skew_ratio c);
  Parallel.grow c ~arms:5;
  Alcotest.(check int) "grown" 5 (Parallel.arms c);
  Alcotest.(check (float 1e-9)) "new arms idle" 0.0 (Parallel.busy_arm c 4);
  Alcotest.check_raises "negative delta"
    (Invalid_argument "Parallel.record: negative delta") (fun () ->
      ignore (Parallel.record c [ (0, -1.0) ]));
  Alcotest.(check (float 1e-9)) "empty fan-out costs nothing" 0.0
    (Parallel.record c [])

(* --- Entry.batch_filter / Query_gen.scale -------------------------- *)

let test_batch_filter () =
  let b = store 3 in
  let f = Wave_storage.Entry.batch_filter b ~keep:(fun v -> v mod 2 = 0) in
  Alcotest.(check bool) "only kept values" true
    (Array.for_all
       (fun p -> p.Wave_storage.Entry.value mod 2 = 0)
       f.Wave_storage.Entry.postings);
  let total =
    Wave_storage.Entry.batch_size f
    + Array.length
        (Wave_storage.Entry.batch_filter b ~keep:(fun v -> v mod 2 = 1))
          .Wave_storage.Entry.postings
  in
  Alcotest.(check int) "partition covers the batch"
    (Wave_storage.Entry.batch_size b)
    total

let test_query_gen_scale () =
  let spec = Wave_workload.Query_gen.scam_spec in
  let big = Wave_workload.Query_gen.scale spec ~factor:1000 in
  Alcotest.(check int) "probes x1000"
    (spec.Wave_workload.Query_gen.probes_per_day * 1000)
    big.Wave_workload.Query_gen.probes_per_day;
  Alcotest.(check int) "scans x1000"
    (spec.Wave_workload.Query_gen.scans_per_day * 1000)
    big.Wave_workload.Query_gen.scans_per_day;
  Alcotest.(check int) "seed kept" spec.Wave_workload.Query_gen.seed
    big.Wave_workload.Query_gen.seed;
  Alcotest.check_raises "factor 0 rejected"
    (Invalid_argument "Query_gen.scale: factor must be >= 1") (fun () ->
      ignore (Wave_workload.Query_gen.scale spec ~factor:0))

(* --- Router transparency ------------------------------------------- *)

let vocab = 24

let single_ref ~kind ~technique ~w ~n ~day =
  let env =
    Env.create ~technique ~store:(store ~vocab ~postings:12) ~w ~n ()
  in
  let s = Scheme.start kind env in
  Scheme.advance_to s day;
  Scheme.frame s

let router_for ~kind ~technique ~partition ~shards ~w ~n ~day =
  let r =
    Router.create ~technique ~kind ~partition ~shards ~vocab
      ~store:(store ~vocab ~postings:12) ~w ~n ()
  in
  while Router.current_day r < day do
    ignore (Router.advance r)
  done;
  r

(* PRNG property: hash- (and range-) partitioned probe results are
   bit-identical to the single-disk run, over random arm counts,
   schemes and probe ranges — the router is invisible to queries. *)
let prop_router_transparent =
  QCheck2.Test.make ~name:"sharded probe/scan equal single-disk run" ~count:12
    QCheck2.Gen.(
      quad (int_range 1 6) bool (int_range 0 5) (int_range 0 3))
    (fun (shards, hash, scheme_i, extra_days) ->
      let kind = List.nth Scheme.all scheme_i in
      let technique =
        if scheme_i mod 2 = 0 then Env.Packed_shadow else Env.Simple_shadow
      in
      let partition = if hash then Partition.Hash else Partition.Range in
      let w = 6 and n = 3 in
      let day = w + extra_days in
      let frame = single_ref ~kind ~technique ~w ~n ~day in
      let r = router_for ~kind ~technique ~partition ~shards ~w ~n ~day in
      let t1 = day - w + 1 and t2 = day in
      let probes_equal =
        List.for_all
          (fun v ->
            fst (Router.probe r ~value:v ~t1 ~t2)
            = Frame.timed_index_probe frame ~t1 ~t2 ~value:v)
          (List.init vocab (fun i -> i + 1))
      in
      let scans_equal =
        fst (Router.scan r ~t1 ~t2)
        = List.sort Wave_storage.Entry.compare
            (Frame.timed_segment_scan frame ~t1 ~t2)
      in
      probes_equal && scans_equal)

let test_router_fanout_costs () =
  let r =
    router_for ~kind:Scheme.Del ~technique:Env.In_place ~partition:Partition.Hash
      ~shards:4 ~w:6 ~n:3 ~day:8
  in
  let clock = Router.clock r in
  let e0 = Parallel.elapsed clock in
  let s0 = Parallel.serial clock in
  let _, mk = Router.scan r ~t1:3 ~t2:8 in
  Alcotest.(check (float 1e-9)) "scan charged its makespan"
    (Parallel.elapsed clock -. e0)
    mk;
  Alcotest.(check bool) "fan-out makespan below the serial sum" true
    (mk < Parallel.serial clock -. s0);
  let pmk =
    List.fold_left
      (fun acc v -> acc +. snd (Router.probe r ~value:v ~t1:3 ~t2:8))
      0.0
      (List.init vocab (fun i -> i + 1))
  in
  Alcotest.(check bool) "probes cost model time" true (pmk > 0.0)

(* --- Multi_disk placement regression ------------------------------- *)

let test_multidisk_balanced_arms () =
  (* W=7 days over n=3 constituents on 2 disks: contiguous slot sizes
     are [3; 2; 2], so the old round-robin put 5 of 7 days on disk 0
     (2.5x skew).  With LPT placement each disk's scan work stays
     within 2x of the other's.  Per-disk load is read off the scan
     timing: parallel = busiest disk, serial - parallel = the other. *)
  let m =
    Wave_sim.Multi_disk.create ~store:(store ~vocab:6 ~postings:8) ~w:7 ~n:3
      ~disks:2 ()
  in
  let _, t = Wave_sim.Multi_disk.scan m in
  let busy = t.Wave_sim.Multi_disk.parallel in
  let other = t.Wave_sim.Multi_disk.serial -. busy in
  Alcotest.(check bool)
    (Printf.sprintf "disk loads %.4f vs %.4f within 2x" busy other)
    true
    (busy <= 2.0 *. other)

(* --- Shard split --------------------------------------------------- *)

let split_probes r ~w =
  let day = Router.current_day r in
  List.init vocab (fun i ->
      fst (Router.probe r ~value:(i + 1) ~t1:(day - w + 1) ~t2:day))

let test_split_preserves_answers () =
  let w = 5 and n = 2 in
  let r =
    router_for ~kind:Scheme.Rata_star ~technique:Env.Packed_shadow
      ~partition:Partition.Hash ~shards:2 ~w ~n ~day:(w + 1)
  in
  let before = split_probes r ~w in
  let day = Router.current_day r in
  let serve = [ (1, day - w + 1, day); (2, day - w + 1, day) ] in
  let mk = Router.split r ~arm:0 ~serve in
  Alcotest.(check bool) "split charged the clock" true (mk > 0.0);
  Alcotest.(check int) "one more arm" 3 (Router.arms r);
  Alcotest.(check int) "generation bumped" 2
    (Partition.generation (Router.partition r));
  Alcotest.(check int) "split counted" 1 (Router.splits r);
  Alcotest.(check bool) "answers unchanged" true (split_probes r ~w = before);
  (* Probes served mid-split resolved against the pre-split snapshot:
     for a value the victim owned that is its full answer, for any
     other value the victim's slice is empty. *)
  List.iteri
    (fun i got ->
      let v, _, _ = List.nth serve i in
      let expected =
        if Partition.arm_of_value (Router.partition r) v = 0 then
          List.nth before (v - 1)
        else []
      in
      ignore expected;
      (* The pre-split partition owned both served values on some arm;
         mid-split answers must be a subset of the full answer. *)
      List.iter
        (fun e ->
          Alcotest.(check bool) "served entry is real" true
            (List.mem e (List.nth before (v - 1))))
        got)
    (Router.last_served r);
  Router.check_no_leaks r;
  (* Splitting again on the new partition keeps working. *)
  ignore (Router.split r ~arm:1);
  Alcotest.(check int) "four arms" 4 (Router.arms r);
  Alcotest.(check bool) "still transparent" true (split_probes r ~w = before)

let test_recover_without_split_is_noop () =
  let r =
    router_for ~kind:Scheme.Del ~technique:Env.In_place
      ~partition:Partition.Range ~shards:2 ~w:4 ~n:2 ~day:5
  in
  let before = split_probes r ~w:4 in
  Router.recover r;
  Router.recover r;
  Alcotest.(check int) "arms unchanged" 2 (Router.arms r);
  Alcotest.(check bool) "answers unchanged" true (split_probes r ~w:4 = before)

(* One cell of the rebalance-under-fault sweep per partition kind (the
   full 6x3 matrix runs under @shard via `waveidx shardtest`): the
   split killed at every fault point — victim and sibling disks — must
   recover to exactly one committed shard map. *)
let test_split_fault_sweep_hash () =
  let r =
    Sweep.sweep ~scheme:Scheme.Del ~technique:Env.Simple_shadow
      ~partition:Partition.Hash ~w:4 ~n:2 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d points all recover" (List.length r.Sweep.points))
    true (Sweep.result_passed r)

let test_split_fault_sweep_range () =
  let r =
    Sweep.sweep ~scheme:Scheme.Rata_star ~technique:Env.Packed_shadow
      ~partition:Partition.Range ~w:4 ~n:2 ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "%d points all recover" (List.length r.Sweep.points))
    true (Sweep.result_passed r)

(* --- Throughput scaling -------------------------------------------- *)

let scaling_store day =
  Wave_storage.Entry.batch_create ~day
    (Array.init 100 (fun i ->
         {
           Wave_storage.Entry.value = 1 + (((day * 131) + (i * 17)) mod 5_000);
           entry = { Wave_storage.Entry.rid = (day * 1000) + i; day; info = i };
         }))

let chunk_latency ~shards =
  let w = 7 and n = 3 in
  let r =
    Router.create ~kind:Scheme.Del ~partition:Partition.Hash ~shards
      ~vocab:5_000 ~store:scaling_store ~w ~n ()
  in
  while Router.current_day r < 2 * w do
    ignore (Router.advance r)
  done;
  let d = Router.current_day r in
  let prng = Wave_util.Prng.create 17 in
  let zipf = Wave_util.Zipf.create ~n:5_000 ~s:1.0 in
  let chunk = 32 and runs = 6 in
  let samples =
    Array.init runs (fun _ ->
        let before =
          Array.init (Router.arms r) (fun i ->
              Wave_disk.Disk.elapsed (Router.arm_disk r i))
        in
        for _ = 1 to chunk do
          let value = Wave_util.Zipf.sample zipf prng in
          ignore (Router.probe r ~value ~t1:(d - w + 1) ~t2:d)
        done;
        Array.fold_left Float.max 0.0
          (Array.mapi
             (fun i b -> Wave_disk.Disk.elapsed (Router.arm_disk r i) -. b)
             before)
        /. float_of_int chunk)
  in
  Wave_util.Stats.percentile samples 50.0

(* The bench acceptance bar: the Zipf probe stream's effective
   per-probe latency falls monotonically with the arm count, and four
   arms at least double the single-arm throughput. *)
let test_throughput_scaling () =
  let l1 = chunk_latency ~shards:1 in
  let l2 = chunk_latency ~shards:2 in
  let l4 = chunk_latency ~shards:4 in
  let l8 = chunk_latency ~shards:8 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.5f >= %.5f >= %.5f >= %.5f" l1 l2 l4 l8)
    true
    (l1 >= l2 *. 0.999 && l2 >= l4 *. 0.999 && l4 >= l8 *. 0.999);
  Alcotest.(check bool)
    (Printf.sprintf "4 arms >= 2x 1 arm (%.2fx)" (l1 /. l4))
    true
    (l1 >= 2.0 *. l4)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

(* The metrics registry is process-global: a router with fewer arms
   than a predecessor must retire the predecessor's per-arm gauges, or
   every snapshot/export mixes live arms with fossils. *)
let test_stale_arm_gauges_retired () =
  let gauge_names snapshot =
    List.filter
      (fun (name, _) ->
        String.length name > 6 && String.sub name 0 6 = "shard.")
      snapshot
    |> List.map fst
  in
  let has name = List.mem_assoc name (Wave_obs.Metrics.snapshot ()) in
  (* A 2-arm router that splits publishes shard.2.* gauges... *)
  let r =
    Router.create ~kind:Scheme.Del ~partition:Partition.Hash ~shards:2 ~vocab
      ~store:(store ~vocab ~postings:12) ~w:6 ~n:3 ()
  in
  ignore (Router.advance r);
  ignore (Router.split r ~arm:0);
  Alcotest.(check bool) "post-split arm gauge live" true
    (has "shard.2.busy_seconds");
  (* ...which a fresh, narrower router must retire on creation. *)
  let r2 =
    Router.create ~kind:Scheme.Del ~partition:Partition.Hash ~shards:2 ~vocab
      ~store:(store ~vocab ~postings:12) ~w:6 ~n:3 ()
  in
  Alcotest.(check int) "narrow router has 2 arms" 2 (Router.arms r2);
  List.iter
    (fun stale ->
      Alcotest.(check bool) (stale ^ " retired") false (has stale))
    [
      "shard.2.busy_seconds"; "shard.2.space_bytes"; "shard.2.wave_length";
    ];
  List.iter
    (fun live -> Alcotest.(check bool) (live ^ " still live") true (has live))
    [
      "shard.0.busy_seconds"; "shard.1.busy_seconds"; "shard.arms";
      "shard.skew_ratio";
    ];
  (* No per-arm gauge index at or past the live arm count survives. *)
  List.iter
    (fun name ->
      match String.split_on_char '.' name with
      | [ "shard"; i; _ ] -> (
        match int_of_string_opt i with
        | Some i ->
          Alcotest.(check bool)
            (Printf.sprintf "%s within %d arms" name (Router.arms r2))
            true (i < Router.arms r2)
        | None -> ())
      | _ -> ())
    (gauge_names (Wave_obs.Metrics.snapshot ()))

let suites =
  [
    ( "shard.partition",
      [
        Alcotest.test_case "total and deterministic" `Quick
          test_partition_total_and_deterministic;
        Alcotest.test_case "range slices contiguous, edges clamp" `Quick
          test_partition_range_contiguous;
        Alcotest.test_case "split moves only the victim's keys" `Quick
          test_partition_split_moves_only_victim_keys;
        Alcotest.test_case "exhausted arms refuse to split" `Quick
          test_partition_can_split_exhausted;
        Alcotest.test_case "LPT placement balances W=7 n=3 on 2 disks" `Quick
          test_partition_place_lpt;
      ] );
    ( "shard.router",
      [
        Alcotest.test_case "parallel clock: max not sum" `Quick
          test_parallel_max_not_sum;
        Alcotest.test_case "batch_filter partitions a day" `Quick
          test_batch_filter;
        Alcotest.test_case "query_gen scale multiplies rates" `Quick
          test_query_gen_scale;
        Alcotest.test_case "fan-out cost semantics" `Quick
          test_router_fanout_costs;
        Alcotest.test_case "multi-disk arms balanced (LPT regression)" `Quick
          test_multidisk_balanced_arms;
        Alcotest.test_case "stale per-arm gauges retired" `Quick
          test_stale_arm_gauges_retired;
      ]
      @ qcheck [ prop_router_transparent ] );
    ( "shard.split",
      [
        Alcotest.test_case "split preserves answers and serves mid-split"
          `Quick test_split_preserves_answers;
        Alcotest.test_case "recover without a split is a no-op" `Quick
          test_recover_without_split_is_noop;
        Alcotest.test_case "fault sweep: hash, DEL x simple-shadow" `Slow
          test_split_fault_sweep_hash;
        Alcotest.test_case "fault sweep: range, RATA* x packed-shadow" `Slow
          test_split_fault_sweep_range;
      ] );
    ( "shard.scaling",
      [ Alcotest.test_case "4 arms >= 2x 1 arm on Zipf probes" `Slow
          test_throughput_scaling ] );
  ]
