let () =
  Alcotest.run "wave_indices"
    (Test_util.suites @ Test_disk.suites @ Test_btree.suites
   @ Test_storage.suites @ Test_core.suites @ Test_model.suites
   @ Test_workload.suites @ Test_sim.suites @ Test_obs.suites @ Test_extensions.suites @ Test_features.suites @ Test_text_query.suites @ Test_persistence.suites @ Test_crash.suites @ Test_cache.suites @ Test_misc.suites @ Test_update.suites
   @ Test_profile.suites @ Test_realdisk.suites @ Test_epoch.suites
   @ Test_shard.suites @ Test_series.suites)
