(* Tests for Wave_epoch: epoch lifecycle, the two reclamation gates
   (disk free gate, index drop gate), cache pinning of a retired
   epoch's working set, flight-recorder epoch events, the interleaved
   execution hook — and the two system-level guarantees: no
   interleaving of open/probe/swap/drain frees an extent visible to a
   live snapshot (QCheck), and with [concurrent = false] the runner's
   day_metrics stay bit-identical to the pre-epoch build (golden
   digests shared with test_cache). *)

open Wave_disk
open Wave_storage
open Wave_core
module Epoch = Wave_epoch.Epoch
module Cache = Wave_cache.Cache
module Crash_harness = Wave_sim.Crash_harness

let icfg = Index.default_config
let fresh_disk () = Index.make_disk icfg

let batch ~day ~values ~per_value =
  let postings =
    List.concat_map
      (fun v ->
        List.init per_value (fun i ->
            {
              Entry.value = v;
              entry =
                { Entry.rid = (day * 1_000_000) + (v * 100) + i; day; info = 0 };
            }))
      values
    |> Array.of_list
  in
  Entry.batch_create ~day postings

(* A one-index snapshot slot: the index plus the range predicate the
   core layer would build from its Dayset. *)
let slot_of idx =
  let days = Index.days idx in
  (idx, fun ~t1 ~t2 -> List.exists (fun d -> d >= t1 && d <= t2) days)

let build_idx ?(cfg = icfg) disk days =
  Index.build disk cfg
    (List.map (fun d -> batch ~day:d ~values:[ 1; 2; 3 ] ~per_value:4) days)

(* Every test attaches; make sure no state leaks between tests even on
   failure. *)
let with_epochs disk f =
  Epoch.attach disk;
  Fun.protect ~finally:(fun () -> Epoch.on_crash disk) f

let sorted es = List.sort Entry.compare es

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                          *)
(* ------------------------------------------------------------------ *)

let test_lifecycle () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1; 2 ] in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Alcotest.(check int) "gen starts at 1" 1 (Epoch.gen e);
  Alcotest.(check int) "opener lease" 1 (Epoch.refcount e);
  Alcotest.(check bool) "not retired" false (Epoch.is_retired e);
  Alcotest.(check int) "one live epoch" 1 (Epoch.live_epochs disk);
  Alcotest.(check bool) "current" true
    (match Epoch.current disk with Some x -> x == e | None -> false);
  Epoch.commit disk;
  Alcotest.(check bool) "retired after commit" true (Epoch.is_retired e);
  Alcotest.(check bool) "no longer current" true (Epoch.current disk = None);
  Alcotest.(check int) "retired-undrained" 1 (Epoch.retired_undrained disk);
  Epoch.release e;
  Alcotest.(check bool) "drained" true (Epoch.is_drained e);
  Alcotest.(check int) "no live epochs" 0 (Epoch.live_epochs disk);
  let e2 = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Alcotest.(check int) "gen monotone" 2 (Epoch.gen e2);
  Epoch.commit disk;
  Epoch.release e2;
  Epoch.detach disk;
  Alcotest.(check bool) "detached" false (Epoch.attached disk)

let test_open_requires_attach () =
  let disk = fresh_disk () in
  let idx = build_idx disk [ 1 ] in
  match Epoch.open_ disk ~slots:[ slot_of idx ] with
  | _ -> Alcotest.fail "open_ without attach must fail"
  | exception Failure _ -> ()

let test_single_current_epoch () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1 ] in
  let _e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  (match Epoch.open_ disk ~slots:[ slot_of idx ] with
  | _ -> Alcotest.fail "second open_ must fail"
  | exception Failure _ -> ());
  Epoch.commit disk

let test_acquire_release_errors () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1 ] in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Epoch.commit disk;
  Epoch.acquire e;
  (* retired but referenced: still readable *)
  Alcotest.(check bool) "probe on retired ok" true
    (Epoch.probe e ~value:1 ~t1:1 ~t2:1 <> []);
  Epoch.release e;
  Epoch.release e;
  Alcotest.(check bool) "drained after last release" true (Epoch.is_drained e);
  (match Epoch.acquire e with
  | () -> Alcotest.fail "acquire on drained must fail"
  | exception Failure _ -> ());
  (match Epoch.probe e ~value:1 ~t1:1 ~t2:1 with
  | _ -> Alcotest.fail "probe on drained must fail"
  | exception Failure _ -> ());
  match Epoch.release e with
  | () -> Alcotest.fail "release underflow must fail"
  | exception Failure _ -> ()

let test_detach_live_fails () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1 ] in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  (match Epoch.detach disk with
  | () -> Alcotest.fail "detach with a live epoch must fail"
  | exception Failure _ -> ());
  Epoch.commit disk;
  Epoch.release e;
  Epoch.detach disk

(* ------------------------------------------------------------------ *)
(* Gates: deferred reclamation                                        *)
(* ------------------------------------------------------------------ *)

let test_drop_gate_defers_index () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1; 2; 3 ] in
  let owned = Index.extents idx in
  let before = Disk.live_blocks disk in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  let reference = sorted (Epoch.probe e ~value:2 ~t1:1 ~t2:3) in
  (* The transition tears the old constituent down; the gate must keep
     both the extents and the in-memory directory serviceable. *)
  Index.drop idx;
  Alcotest.(check bool) "extents survive the drop" true
    (List.for_all (Disk.is_live disk) owned);
  Alcotest.(check int) "nothing reclaimed yet" before (Disk.live_blocks disk);
  Alcotest.(check bool) "deferral visible" true (Epoch.deferred_blocks disk > 0);
  Alcotest.(check bool) "snapshot probe still answers" true
    (sorted (Epoch.probe e ~value:2 ~t1:1 ~t2:3) = reference);
  Epoch.commit disk;
  Alcotest.(check bool) "retired epoch still answers" true
    (sorted (Epoch.probe e ~value:2 ~t1:1 ~t2:3) = reference);
  Epoch.release e;
  (* Drain re-issues the drop: space really reclaimed now. *)
  Alcotest.(check bool) "extents freed at drain" true
    (not (List.exists (Disk.is_live disk) owned));
  Alcotest.(check int) "all blocks reclaimed" 0 (Disk.live_blocks disk);
  Alcotest.(check int) "no deferral left" 0 (Epoch.deferred_blocks disk)

let test_free_gate_defers_extent () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1 ] in
  let victim = List.hd (Index.extents idx) in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Disk.free disk victim;
  Alcotest.(check bool) "gated free leaves the extent live" true
    (Disk.is_live disk victim);
  Epoch.commit disk;
  Epoch.release e;
  Alcotest.(check bool) "freed at drain" false (Disk.is_live disk victim)

let test_redeferral_to_later_epoch () =
  (* Two epochs snapshot the same index; the drop defers while either
     lives, and only the LAST drain reclaims. *)
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx disk [ 1; 2 ] in
  let owned = Index.extents idx in
  let e1 = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Epoch.commit disk;
  let e2 = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Index.drop idx;
  Epoch.commit disk;
  Epoch.release e2;
  (* e2 drained, but e1 still references the index: the re-issued drop
     must have re-deferred rather than executed. *)
  Alcotest.(check bool) "still live while e1 lives" true
    (List.for_all (Disk.is_live disk) owned);
  Epoch.release e1;
  Alcotest.(check bool) "reclaimed after the last drain" true
    (not (List.exists (Disk.is_live disk) owned));
  Alcotest.(check int) "space fully reclaimed" 0 (Disk.live_blocks disk)

let test_on_crash_discards_deferred () =
  let disk = fresh_disk () in
  Epoch.attach disk;
  let idx = build_idx disk [ 1; 2 ] in
  let owned = Index.extents idx in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Index.drop idx;
  Epoch.commit disk;
  Epoch.on_crash disk;
  (* Deferred work discarded WITHOUT executing: the extents stay
     allocated (recovery's sweep frees them as leaks; executing here
     would double-free after the allocator is rebuilt). *)
  Alcotest.(check bool) "deferred frees not executed" true
    (List.for_all (Disk.is_live disk) owned);
  Alcotest.(check int) "no live epochs" 0 (Epoch.live_epochs disk);
  Alcotest.(check bool) "registry gone" false (Epoch.attached disk);
  Alcotest.(check bool) "epoch drained" true (Epoch.is_drained e);
  (* Idempotent. *)
  Epoch.on_crash disk

(* ------------------------------------------------------------------ *)
(* Cache pinning                                                      *)
(* ------------------------------------------------------------------ *)

let test_retired_epoch_pins_survive_eviction () =
  let cfg = { icfg with Index.cache_blocks = Some 8; cache_readahead = 0 } in
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  let idx = build_idx ~cfg disk [ 1; 2 ] in
  let pool = Option.get (Cache.find disk) in
  (* Warm the snapshot's working set, then open: open_ pins what is
     resident, bounded to half the pool. *)
  ignore (Index.probe_timed idx 1 ~t1:1 ~t2:2);
  ignore (Index.probe_timed idx 2 ~t1:1 ~t2:2);
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  let pinned = Epoch.pinned_blocks disk in
  Alcotest.(check bool) "open pinned resident blocks" true (pinned > 0);
  Alcotest.(check bool) "budget: at most half the pool" true
    (pinned <= Cache.capacity pool / 2);
  Alcotest.(check int) "pool agrees" pinned (Cache.pinned_frames pool);
  Epoch.commit disk;
  (* Retired but undrained: thrash the pool well past capacity; CLOCK
     must never select a pinned frame. *)
  let scratch =
    List.init (2 * Cache.capacity pool) (fun _ ->
        let x = Disk.alloc disk ~blocks:1 in
        Disk.write disk x;
        x)
  in
  List.iter (fun x -> Cache.read pool x) scratch;
  Alcotest.(check int) "pins survive cache pressure" pinned
    (Cache.pinned_frames pool);
  Epoch.release e;
  Alcotest.(check int) "drain unpins" 0 (Cache.pinned_frames pool);
  List.iter (fun x -> Disk.free disk x) scratch

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                    *)
(* ------------------------------------------------------------------ *)

let test_flight_records_epoch_events () =
  let disk = fresh_disk () in
  with_epochs disk @@ fun () ->
  Wave_obs.Recorder.clear ();
  let idx = build_idx disk [ 1 ] in
  let e = Epoch.open_ disk ~slots:[ slot_of idx ] in
  Epoch.commit disk ~swap_seconds:0.01;
  Epoch.acquire e;
  Epoch.release e;
  Epoch.release e;
  let events =
    List.filter_map
      (fun (ev : Wave_obs.Recorder.event) ->
        match ev.Wave_obs.Recorder.kind with
        | Wave_obs.Recorder.Epoch { e_event; e_gen; _ } -> Some (e_event, e_gen)
        | _ -> None)
      (Wave_obs.Recorder.events ())
  in
  List.iter
    (fun step ->
      Alcotest.(check bool) ("recorded " ^ step) true
        (List.mem (step, Epoch.gen e) events))
    [ "open"; "swap"; "retire"; "drain" ];
  (* The dump stays a valid waveidx-flight/1 document with epoch lines. *)
  match Wave_obs.Sink.validate_flight (Wave_obs.Recorder.to_jsonl ()) with
  | Ok n -> Alcotest.(check bool) "flight has events" true (n > 0)
  | Error err -> Alcotest.failf "flight dump invalid: %s" err

(* ------------------------------------------------------------------ *)
(* Interleave                                                         *)
(* ------------------------------------------------------------------ *)

let test_interleave_ticks_per_op () =
  let disk = fresh_disk () in
  let e = Disk.alloc disk ~blocks:2 in
  Disk.write disk e;
  let ticks = ref 0 in
  Epoch.Interleave.run disk
    ~on_op:(fun () ->
      incr ticks;
      (* A probe served from a tick charges the same disk; delivery
         must not recurse. *)
      let before = !ticks in
      Disk.read disk e;
      Alcotest.(check int) "no reentrant tick" before !ticks)
    (fun () -> Disk.read disk e);
  Alcotest.(check bool) "ticked on charged ops" true (!ticks > 0);
  let after = !ticks in
  Disk.read disk e;
  Alcotest.(check int) "observer removed on exit" after !ticks

let test_interleave_removed_on_raise () =
  let disk = fresh_disk () in
  let e = Disk.alloc disk ~blocks:1 in
  Disk.write disk e;
  let ticks = ref 0 in
  (try
     Epoch.Interleave.run disk
       ~on_op:(fun () -> incr ticks)
       (fun () ->
         Disk.read disk e;
         failwith "boom")
   with Failure _ -> ());
  let after = !ticks in
  Disk.read disk e;
  Alcotest.(check int) "observer removed after raise" after !ticks

(* ------------------------------------------------------------------ *)
(* QCheck: no interleaving frees a snapshot-visible extent            *)
(* ------------------------------------------------------------------ *)

(* Interpret a random command list over a live system: open epochs over
   the current constituent, run transitions that drop the old index,
   acquire/release/probe random epochs, commit.  After every step, no
   extent visible to any live (undrained) snapshot may be free; at the
   end, after all epochs drain, the allocator must hold exactly the
   surviving index's blocks (nothing leaked, nothing double-freed). *)
let epoch_interleaving_prop cmds =
  let disk = fresh_disk () in
  Epoch.attach disk;
  Fun.protect ~finally:(fun () -> Epoch.on_crash disk) @@ fun () ->
  let day = ref 1 in
  let next_idx () =
    incr day;
    build_idx disk [ !day ]
  in
  let live_idx = ref (build_idx disk [ 1 ]) in
  (* Epochs we still hold leases on (lease count > 0). *)
  let held : (Epoch.t * int ref) list ref = ref [] in
  let pick lst n = List.nth lst (n mod List.length lst) in
  let invariant () =
    List.iter
      (fun (e, _) ->
        if not (Epoch.is_drained e) then
          List.iter
            (fun ext ->
              if not (Disk.is_live disk ext) then
                Alcotest.failf
                  "extent %d+%d of live epoch %d was freed" ext.Disk.start
                  ext.Disk.length (Epoch.gen e))
            (Epoch.snapshot_extents e))
      !held
  in
  List.iter
    (fun cmd ->
      (match (cmd mod 6, !held) with
      | 0, _ ->
        if Epoch.current disk = None then begin
          let e = Epoch.open_ disk ~slots:[ slot_of !live_idx ] in
          held := (e, ref 1) :: !held
        end
      | 1, _ -> Epoch.commit disk
      | 2, (_ :: _ as hs) ->
        let e, leases = pick hs (cmd / 6) in
        if not (Epoch.is_drained e) then begin
          Epoch.acquire e;
          incr leases
        end
      | 3, (_ :: _ as hs) ->
        (* Keep the opener's lease on the CURRENT epoch (released only
           after its commit, as the runner does); extra leases and
           retired epochs release freely. *)
        let e, leases = pick hs (cmd / 6) in
        if !leases > 1 || (Epoch.is_retired e && !leases > 0) then begin
          Epoch.release e;
          decr leases
        end
      | 4, _ ->
        (* The transition: a new constituent replaces the old one,
           which is torn down immediately — the gates decide whether
           that reclamation really happens now. *)
        let old = !live_idx in
        live_idx := next_idx ();
        Index.drop old
      | 5, (_ :: _ as hs) ->
        let e, leases = pick hs (cmd / 6) in
        if !leases > 0 && not (Epoch.is_drained e) then
          ignore (Epoch.probe e ~value:1 ~t1:0 ~t2:max_int)
      | _ -> ());
      invariant ())
    cmds;
  (* Drain everything: commit the open epoch, drop remaining leases. *)
  Epoch.commit disk;
  List.iter
    (fun (e, leases) ->
      while !leases > 0 do
        Epoch.release e;
        decr leases
      done)
    !held;
  List.iter
    (fun (e, _) ->
      if not (Epoch.is_drained e) then
        Alcotest.failf "epoch %d not drained after release" (Epoch.gen e))
    !held;
  if Epoch.live_epochs disk <> 0 then Alcotest.fail "live epochs after drain";
  (* Space conservation: only the surviving index's blocks remain. *)
  let expect = Index.allocated_blocks !live_idx in
  if Disk.live_blocks disk <> expect then
    Alcotest.failf "space leak: %d live blocks, survivor owns %d"
      (Disk.live_blocks disk) expect;
  Epoch.detach disk;
  true

let qcheck_interleaving =
  QCheck2.Test.make
    ~name:"no interleaving frees a snapshot-visible extent" ~count:120
    QCheck2.Gen.(list_size (int_range 1 40) (int_bound 10_000))
    epoch_interleaving_prop

(* ------------------------------------------------------------------ *)
(* Runner: concurrent serving                                         *)
(* ------------------------------------------------------------------ *)

let store day =
  Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Entry.value = 1 + ((day + i) mod 6);
           entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
         }))

let queries =
  {
    Wave_workload.Query_gen.seed = 7;
    probes_per_day = 12;
    probe_range = Wave_workload.Query_gen.Whole_window;
    scans_per_day = 1;
    scan_range = Wave_workload.Query_gen.Whole_window;
    value_dist = Wave_workload.Query_gen.Uniform 6;
  }

let run_sim ?(concurrent = false) ?(query_rate = 50.0) ~scheme ~technique () =
  Wave_sim.Runner.run
    {
      (Wave_sim.Runner.default_config ~scheme ~store ~w:6 ~n:3) with
      Wave_sim.Runner.technique;
      run_days = 8;
      queries = Some queries;
      concurrent;
      query_rate;
    }

(* Golden digests shared with test_cache: the exact MD5s pinned on the
   pre-pool build.  A concurrent run on the same process must not
   perturb a later stop-the-world run (global gates detach cleanly). *)
let digest_of (r : Wave_sim.Runner.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : Wave_sim.Runner.day_metrics) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%.17g|%.17g|%.17g|%.17g|%d|%d|%d|%d|%d|%d|%d;"
           d.day d.precompute_seconds d.transition_seconds
           d.maintenance_seconds d.query_seconds d.probe_entries d.scan_entries
           d.space_bytes d.wave_length d.seeks d.blocks_read d.blocks_written))
    r.Wave_sim.Runner.days;
  Buffer.add_string buf
    (Printf.sprintf "max=%d avg=%.17g m=%.17g q=%.17g" r.max_space_bytes
       r.avg_space_bytes r.total_maintenance_seconds r.total_query_seconds);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_concurrent_off_bit_identical () =
  (* Run WITH concurrency first so any leaked global state would show. *)
  ignore (run_sim ~concurrent:true ~scheme:Scheme.Del
            ~technique:Env.Simple_shadow ());
  List.iter
    (fun (scheme, technique, golden) ->
      let r = run_sim ~scheme ~technique () in
      Alcotest.(check string)
        (Scheme.name scheme ^ "/" ^ Env.technique_name technique)
        golden (digest_of r);
      Alcotest.(check bool) "no concurrent stats when off" true
        (r.Wave_sim.Runner.concurrent = None))
    [
      (Scheme.Del, Env.Simple_shadow, "57ae513533419766e72d54015d150bd9");
      (Scheme.Reindex_plus, Env.Packed_shadow, "b6e934135b219dedd7e08c595ee0c623");
      (Scheme.Rata_star, Env.In_place, "122cb2d2deb4d5db9e7c8a32a6fb51f4");
    ]

let test_concurrent_shadow_beats_stopworld () =
  let r = run_sim ~concurrent:true ~scheme:Scheme.Del
            ~technique:Env.Simple_shadow () in
  match r.Wave_sim.Runner.concurrent with
  | None -> Alcotest.fail "concurrent run lost its stats"
  | Some c ->
    Alcotest.(check bool) "mid-transition arrivals happened" true
      (c.Wave_sim.Runner.mid_queries > 0);
    Alcotest.(check bool) "some served against the live snapshot" true
      (c.Wave_sim.Runner.snapshot_served > 0);
    Alcotest.(check int) "every arrival accounted"
      c.Wave_sim.Runner.mid_queries
      (c.Wave_sim.Runner.snapshot_served + c.Wave_sim.Runner.drained_served
      + c.Wave_sim.Runner.queued_served);
    Alcotest.(check int) "one sample per mid query"
      c.Wave_sim.Runner.mid_queries
      (Array.length c.Wave_sim.Runner.concurrent_samples);
    Alcotest.(check int) "counterfactual same schedule"
      c.Wave_sim.Runner.mid_queries
      (Array.length c.Wave_sim.Runner.stopworld_samples);
    Alcotest.(check bool)
      (Printf.sprintf "snapshot serving beats stop-the-world (%.4f < %.4f)"
         c.Wave_sim.Runner.concurrent_latency.Wave_sim.Runner.p95
         c.Wave_sim.Runner.stopworld_latency.Wave_sim.Runner.p95)
      true
      (c.Wave_sim.Runner.concurrent_latency.Wave_sim.Runner.p95
      < c.Wave_sim.Runner.stopworld_latency.Wave_sim.Runner.p95);
    Alcotest.(check int) "all epochs drained" 0
      (int_of_float
         (Wave_obs.Metrics.gauge_value (Wave_obs.Metrics.gauge "epoch.active")))

let test_concurrent_in_place_equals_stopworld () =
  (* In-place mutation cannot isolate readers: every mid arrival queues
     until the commit, so the measured latencies ARE the stop-the-world
     counterfactual.  Honest result, asserted exactly. *)
  let r = run_sim ~concurrent:true ~scheme:Scheme.Del ~technique:Env.In_place () in
  match r.Wave_sim.Runner.concurrent with
  | None -> Alcotest.fail "concurrent run lost its stats"
  | Some c ->
    Alcotest.(check bool) "arrivals queued" true
      (c.Wave_sim.Runner.queued_served > 0);
    Alcotest.(check int) "nothing snapshot-served" 0
      (c.Wave_sim.Runner.snapshot_served + c.Wave_sim.Runner.drained_served);
    let conc = c.Wave_sim.Runner.concurrent_samples
    and stw = c.Wave_sim.Runner.stopworld_samples in
    Alcotest.(check int) "same schedule" (Array.length conc)
      (Array.length stw);
    (* Equal up to the counterfactual's re-accumulated rounding: the
       measured latency telescopes the same sums the counterfactual
       re-adds term by term. *)
    Array.iteri
      (fun i m ->
        Alcotest.(check bool)
          (Printf.sprintf "sample %d: %.17g vs %.17g" i m stw.(i))
          true
          (Float.abs (m -. stw.(i)) <= 1e-9 *. Float.max 1.0 (Float.abs m)))
      conc

(* ------------------------------------------------------------------ *)
(* Crash sweep under concurrent probes                                *)
(* ------------------------------------------------------------------ *)

let test_concurrent_crash_sweep () =
  List.iter
    (fun (scheme, technique) ->
      let r =
        Crash_harness.sweep ~concurrent:true ~scheme ~technique ~w:6 ~n:3
          ~day:7 ()
      in
      if not r.Crash_harness.passed then
        Alcotest.failf "%s/%s failed:\n%s" (Scheme.name scheme)
          (Env.technique_name technique)
          (Format.asprintf "%a" Crash_harness.pp_report r))
    [
      (Scheme.Del, Env.Simple_shadow);
      (Scheme.Reindex_pp, Env.Packed_shadow);
      (Scheme.Wata_star, Env.In_place);
    ]

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "epoch.lifecycle",
      [
        Alcotest.test_case "open/commit/drain" `Quick test_lifecycle;
        Alcotest.test_case "open requires attach" `Quick
          test_open_requires_attach;
        Alcotest.test_case "single current epoch" `Quick
          test_single_current_epoch;
        Alcotest.test_case "acquire/release errors" `Quick
          test_acquire_release_errors;
        Alcotest.test_case "detach with live epoch fails" `Quick
          test_detach_live_fails;
      ] );
    ( "epoch.gates",
      [
        Alcotest.test_case "drop gate defers index teardown" `Quick
          test_drop_gate_defers_index;
        Alcotest.test_case "free gate defers extent free" `Quick
          test_free_gate_defers_extent;
        Alcotest.test_case "re-deferral to later epoch" `Quick
          test_redeferral_to_later_epoch;
        Alcotest.test_case "on_crash discards without executing" `Quick
          test_on_crash_discards_deferred;
      ] );
    ( "epoch.cache",
      [
        Alcotest.test_case "retired epoch pins survive eviction" `Quick
          test_retired_epoch_pins_survive_eviction;
      ] );
    ( "epoch.obs",
      [
        Alcotest.test_case "flight records epoch events" `Quick
          test_flight_records_epoch_events;
        Alcotest.test_case "interleave ticks per op" `Quick
          test_interleave_ticks_per_op;
        Alcotest.test_case "interleave observer removed on raise" `Quick
          test_interleave_removed_on_raise;
      ] );
    ("epoch.prop", qcheck [ qcheck_interleaving ]);
    ( "epoch.concurrent",
      [
        Alcotest.test_case "off: day_metrics bit-identical" `Quick
          test_concurrent_off_bit_identical;
        Alcotest.test_case "shadow beats stop-the-world" `Quick
          test_concurrent_shadow_beats_stopworld;
        Alcotest.test_case "in-place equals stop-the-world" `Quick
          test_concurrent_in_place_equals_stopworld;
        Alcotest.test_case "crash sweep with probes in flight" `Slow
          test_concurrent_crash_sweep;
      ] );
  ]
