(* Tests for the Wave_cache buffer pool: CLOCK eviction, pinning,
   generation invalidation, write-through, readahead, cost accounting —
   and the two system-level guarantees: cache-off runs are bit-identical
   to the pre-pool build (golden digests), and cache-on runs return the
   same query answers for less model time. *)

open Wave_core
open Wave_disk
open Wave_storage
open Wave_cache

let icfg = Index.default_config
let mk_disk () = Index.make_disk icfg
let seek = 0.014

(* One-block-granular pool over a raw disk (no index on top). *)
let mk_pool ?(frames = 3) ?(readahead = 0) () =
  let disk = mk_disk () in
  (disk, Cache.create disk ~frames ~readahead ())

let check_stat name expect actual = Alcotest.(check int) name expect actual

(* --- hit / miss cost accounting -------------------------------------- *)

let test_miss_then_hit () =
  let disk, pool = mk_pool ~frames:8 () in
  let e = Disk.alloc disk ~blocks:4 in
  Disk.write disk e;
  let t0 = Disk.elapsed disk in
  Cache.read pool e;
  let cold = Disk.elapsed disk -. t0 in
  Alcotest.(check bool) "cold read charged" true (cold > 0.0);
  let t1 = Disk.elapsed disk in
  Cache.read pool e;
  Alcotest.(check (float 0.0)) "warm read free" 0.0 (Disk.elapsed disk -. t1);
  let s = Cache.stats pool in
  check_stat "hits" 4 s.Cache.hits;
  check_stat "misses" 4 s.Cache.misses;
  Alcotest.(check bool) "saved the warm read" true
    (s.Cache.saved_seconds > 0.0);
  Alcotest.(check bool) "contains" true (Cache.contains pool e)

let test_miss_charges_like_uncached () =
  (* A fully-cold read must charge exactly what Disk.read would. *)
  let disk, pool = mk_pool ~frames:8 () in
  let twin = mk_disk () in
  let e = Disk.alloc disk ~blocks:5 in
  Disk.write disk e;
  let e' = Disk.alloc twin ~blocks:5 in
  Disk.write twin e';
  let t0 = Disk.elapsed disk and u0 = Disk.elapsed twin in
  Cache.read pool e;
  Disk.read twin e';
  Alcotest.(check (float 1e-12))
    "cold pool read = uncached read"
    (Disk.elapsed twin -. u0)
    (Disk.elapsed disk -. t0)

(* --- CLOCK (second chance) ------------------------------------------- *)

let test_clock_second_chance () =
  let disk, pool = mk_pool ~frames:3 () in
  let block () =
    let e = Disk.alloc disk ~blocks:1 in
    Disk.write disk e;
    e
  in
  let a = block () and b = block () and c = block () in
  Cache.read pool a;
  Cache.read pool b;
  Cache.read pool c;
  (* All referenced; the hand sweeps clearing bits and comes back to the
     oldest frame: d evicts a. *)
  let d = block () in
  Cache.read pool d;
  Alcotest.(check bool) "a evicted" false (Cache.contains pool a);
  Alcotest.(check bool) "b survives" true (Cache.contains pool b);
  Alcotest.(check bool) "c survives" true (Cache.contains pool c);
  (* Re-reference b; the next victim is then c (b gets its second
     chance, c's bit was cleared by the previous sweep). *)
  Cache.read pool b;
  let f = block () in
  Cache.read pool f;
  Alcotest.(check bool) "b kept its second chance" true
    (Cache.contains pool b);
  Alcotest.(check bool) "c evicted" false (Cache.contains pool c);
  Alcotest.(check bool) "d survives" true (Cache.contains pool d);
  let s = Cache.stats pool in
  check_stat "two evictions" 2 s.Cache.evictions

(* --- pinning ---------------------------------------------------------- *)

let test_pinned_never_evicted () =
  let disk, pool = mk_pool ~frames:3 () in
  let p = Disk.alloc disk ~blocks:1 in
  Disk.write disk p;
  Cache.pin_extent pool p;
  Alcotest.(check int) "one pinned frame" 1 (Cache.pinned_frames pool);
  for _ = 1 to 10 do
    let e = Disk.alloc disk ~blocks:1 in
    Disk.write disk e;
    Cache.read pool e
  done;
  Alcotest.(check bool) "pinned frame still resident" true
    (Cache.contains pool p);
  Cache.unpin_extent pool p;
  Alcotest.(check int) "unpinned" 0 (Cache.pinned_frames pool)

let test_all_pinned_raises () =
  let disk, pool = mk_pool ~frames:2 () in
  let a = Disk.alloc disk ~blocks:1 and b = Disk.alloc disk ~blocks:1 in
  Disk.write disk a;
  Disk.write disk b;
  Cache.pin_extent pool a;
  Cache.pin_extent pool b;
  let c = Disk.alloc disk ~blocks:1 in
  Disk.write disk c;
  Alcotest.check_raises "no evictable frame"
    (Cache.Cache_error "no evictable frame: all 2 frames pinned") (fun () ->
      Cache.read pool c)

let test_oversized_pin_raises () =
  let disk, pool = mk_pool ~frames:2 () in
  let e = Disk.alloc disk ~blocks:3 in
  Disk.write disk e;
  Alcotest.(check bool) "pin larger than pool raises" true
    (match Cache.pin_extent pool e with
    | () -> false
    | exception Cache.Cache_error _ -> true);
  Alcotest.(check int) "no pins leaked" 0 (Cache.pinned_frames pool)

let test_unpin_below_zero_raises () =
  let disk, pool = mk_pool ~frames:4 () in
  let e = Disk.alloc disk ~blocks:2 in
  Disk.write disk e;
  Cache.pin_extent pool e;
  Cache.unpin_extent pool e;
  Alcotest.(check bool) "second unpin raises" true
    (match Cache.unpin_extent pool e with
    | () -> false
    | exception Cache.Cache_error _ -> true)

let test_resident_pins_survive_pressure () =
  (* The epoch-snapshot pin: pin_resident_blocks pins what is already
     resident (no I/O), and eviction must never select those frames —
     a retired-but-undrained epoch's working set survives any cache
     pressure until the epoch drains and unpins. *)
  let disk, pool = mk_pool ~frames:4 () in
  let snap = Disk.alloc disk ~blocks:2 in
  Disk.write disk snap;
  Cache.read pool snap;
  let t0 = Disk.elapsed disk in
  let addrs = Cache.pin_resident_blocks pool snap ~budget:2 in
  Alcotest.(check (float 0.0)) "pinning charges no I/O" 0.0
    (Disk.elapsed disk -. t0);
  Alcotest.(check int) "both resident blocks pinned" 2 (List.length addrs);
  Alcotest.(check int) "pinned frames" 2 (Cache.pinned_frames pool);
  (* Budget respected: a second caller gets only what remains. *)
  let cold = Disk.alloc disk ~blocks:3 in
  Disk.write disk cold;
  Alcotest.(check int) "absent blocks skipped" 0
    (List.length (Cache.pin_resident_blocks pool cold ~budget:8));
  for _ = 1 to 12 do
    let e = Disk.alloc disk ~blocks:1 in
    Disk.write disk e;
    Cache.read pool e
  done;
  Alcotest.(check bool) "pinned snapshot blocks still resident" true
    (Cache.contains pool snap);
  Alcotest.(check int) "pins intact under pressure" 2
    (Cache.pinned_frames pool);
  Cache.unpin_blocks pool addrs;
  Alcotest.(check int) "drain unpins" 0 (Cache.pinned_frames pool);
  for _ = 1 to 12 do
    let e = Disk.alloc disk ~blocks:1 in
    Disk.write disk e;
    Cache.read pool e
  done;
  Alcotest.(check bool) "unpinned frames evict normally" false
    (Cache.contains pool snap)

(* --- invalidation on free / realloc ---------------------------------- *)

let test_generation_invalidation () =
  let disk, pool = mk_pool ~frames:8 () in
  let e = Disk.alloc disk ~blocks:2 in
  Disk.write disk e;
  Cache.read pool e;
  Alcotest.(check bool) "resident before free" true (Cache.contains pool e);
  Disk.free disk e;
  let e' = Disk.alloc disk ~blocks:2 in
  Alcotest.(check int) "allocator reused the address" e.Disk.start
    e'.Disk.start;
  Disk.write disk e';
  Alcotest.(check bool) "stale frames do not satisfy the new extent" false
    (Cache.contains pool e');
  let t0 = Disk.elapsed disk in
  Cache.read pool e';
  Alcotest.(check bool) "stale read recharged" true (Disk.elapsed disk > t0);
  let s = Cache.stats pool in
  check_stat "stale drops" 2 s.Cache.stale_drops;
  Alcotest.(check bool) "now resident under new generation" true
    (Cache.contains pool e')

let test_read_dead_extent_raises () =
  let disk, pool = mk_pool ~frames:8 () in
  let e = Disk.alloc disk ~blocks:2 in
  Disk.write disk e;
  Cache.read pool e;
  Disk.free disk e;
  Alcotest.(check bool) "reading a freed extent raises even when resident"
    true
    (match Cache.read pool e with
    | () -> false
    | exception Disk.Disk_error _ -> true
    | exception Cache.Cache_error _ -> true)

(* --- write-through ---------------------------------------------------- *)

let test_write_through_no_allocate () =
  let disk, pool = mk_pool ~frames:8 () in
  let twin = mk_disk () in
  let e = Disk.alloc disk ~blocks:3 in
  let e' = Disk.alloc twin ~blocks:3 in
  let t0 = Disk.elapsed disk and u0 = Disk.elapsed twin in
  Cache.write pool e;
  Disk.write twin e';
  Alcotest.(check (float 1e-12))
    "write-through charged exactly like uncached"
    (Disk.elapsed twin -. u0)
    (Disk.elapsed disk -. t0);
  Alcotest.(check int) "blocks_written counted" 3
    (Disk.counters disk).Disk.blocks_written;
  Alcotest.(check int) "no write allocation" 0 (Cache.resident pool);
  (* But a resident frame is refreshed, not invalidated, by a write. *)
  Cache.read pool e;
  Cache.write pool e;
  Alcotest.(check bool) "still resident after write" true
    (Cache.contains pool e);
  let t1 = Disk.elapsed disk in
  Cache.read pool e;
  Alcotest.(check (float 0.0)) "re-read after write is warm" 0.0
    (Disk.elapsed disk -. t1)

(* --- write-back -------------------------------------------------------- *)

let mk_wb_pool ?(frames = 8) () =
  let disk = mk_disk () in
  (disk, Cache.create disk ~frames ~write_back:true ())

let test_wb_defer_flush_coalesce () =
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:4 in
  let t0 = Disk.elapsed disk in
  Cache.write pool e;
  Alcotest.(check (float 0.0)) "deferred write charges nothing" 0.0
    (Disk.elapsed disk -. t0);
  check_stat "four dirty frames" 4 (Cache.dirty_frames pool);
  (* Rewrites are absorbed by the already-dirty frames. *)
  Cache.write pool e;
  check_stat "coalesced" 4 (Cache.stats pool).Cache.writes_coalesced;
  check_stat "nothing written yet" 0 (Disk.counters disk).Disk.blocks_written;
  (* The flush drains the whole extent as one physical write, at exactly
     the cost of one uncached write. *)
  let twin = mk_disk () in
  let e' = Disk.alloc twin ~blocks:4 in
  let u0 = Disk.elapsed twin in
  Disk.write twin e';
  let t1 = Disk.elapsed disk in
  Cache.flush pool;
  Alcotest.(check (float 1e-12)) "flush = one uncached write"
    (Disk.elapsed twin -. u0)
    (Disk.elapsed disk -. t1);
  let c = Disk.counters disk in
  check_stat "one write op" 1 c.Disk.write_ops;
  check_stat "four blocks" 4 c.Disk.blocks_written;
  check_stat "one flush noted" 1 c.Disk.flushes;
  let s = Cache.stats pool in
  check_stat "one drain" 1 s.Cache.flushes;
  check_stat "one run" 1 s.Cache.flush_writes;
  check_stat "four blocks flushed" 4 s.Cache.flushed_blocks;
  check_stat "clean after flush" 0 (Cache.dirty_frames pool);
  (* Flushing a clean pool is a complete no-op... *)
  Cache.flush pool;
  check_stat "no second drain" 1 (Cache.stats pool).Cache.flushes;
  check_stat "no second note" 1 (Disk.counters disk).Disk.flushes;
  (* ...and the flushed frames stay resident and warm. *)
  let t2 = Disk.elapsed disk in
  Cache.read pool e;
  Alcotest.(check (float 0.0)) "flushed frames still warm" 0.0
    (Disk.elapsed disk -. t2)

let test_wb_flush_splits_runs () =
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:3 in
  Cache.write_range pool e ~off:0 ~blocks:1;
  Cache.write_range pool e ~off:2 ~blocks:1;
  Cache.flush pool;
  let s = Cache.stats pool in
  check_stat "two runs (hole at block 1)" 2 s.Cache.flush_writes;
  check_stat "two blocks" 2 s.Cache.flushed_blocks;
  check_stat "two write ops" 2 (Disk.counters disk).Disk.write_ops

let test_wb_eviction_writes_only_victim () =
  let disk, pool = mk_wb_pool ~frames:2 () in
  let a = Disk.alloc disk ~blocks:1 and b = Disk.alloc disk ~blocks:1 in
  let c = Disk.alloc disk ~blocks:1 in
  Cache.write pool a;
  Cache.write pool b;
  (* Reading c needs a frame: the CLOCK hand evicts a, performing its
     deferred write — alone.  b stays dirty: no cascading drain. *)
  Cache.read pool c;
  let s = Cache.stats pool in
  check_stat "one dirty eviction" 1 s.Cache.dirty_evictions;
  check_stat "only the victim written" 1
    (Disk.counters disk).Disk.blocks_written;
  check_stat "b still dirty" 1 (Cache.dirty_frames pool);
  check_stat "no flush drain" 0 s.Cache.flushes;
  Alcotest.(check bool) "a evicted" false (Cache.contains pool a);
  Alcotest.(check bool) "b resident" true (Cache.contains pool b)

let test_wb_pinned_dirty_flushable () =
  let disk, pool = mk_wb_pool ~frames:3 () in
  let p = Disk.alloc disk ~blocks:1 in
  Cache.pin_extent pool p;
  Cache.write pool p;
  check_stat "dirty" 1 (Cache.dirty_frames pool);
  (* Eviction pressure cannot claim the pinned dirty frame... *)
  for _ = 1 to 8 do
    let e = Disk.alloc disk ~blocks:1 in
    Cache.read pool e
  done;
  Alcotest.(check bool) "pinned dirty frame survives" true
    (Cache.contains pool p);
  check_stat "still dirty" 1 (Cache.dirty_frames pool);
  check_stat "never written at eviction" 0
    (Cache.stats pool).Cache.dirty_evictions;
  (* ...but a flush cleans it in place: pinning defers eviction, not
     durability. *)
  Cache.flush pool;
  check_stat "clean after flush" 0 (Cache.dirty_frames pool);
  check_stat "flushed one block" 1 (Cache.stats pool).Cache.flushed_blocks;
  Alcotest.(check int) "still pinned" 1 (Cache.pinned_frames pool);
  Alcotest.(check bool) "still resident" true (Cache.contains pool p);
  Cache.unpin_extent pool p

let test_wb_dirty_discarded_on_free () =
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:2 in
  Cache.write pool e;
  Disk.free disk e;
  Cache.flush pool;
  check_stat "both frames discarded" 2 (Cache.stats pool).Cache.dirty_discards;
  check_stat "nothing written" 0 (Disk.counters disk).Disk.blocks_written;
  check_stat "clean" 0 (Cache.dirty_frames pool)

let test_wb_dirty_discarded_on_realloc () =
  (* Same address, new allocation generation: the deferred contents
     belong to the dead extent and must never clobber the new one. *)
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:2 in
  Cache.write pool e;
  Disk.free disk e;
  let e' = Disk.alloc disk ~blocks:2 in
  Alcotest.(check int) "allocator reused the address" e.Disk.start
    e'.Disk.start;
  Disk.write disk e';
  let w0 = (Disk.counters disk).Disk.blocks_written in
  Cache.flush pool;
  check_stat "stale deferred writes discarded" 2
    (Cache.stats pool).Cache.dirty_discards;
  check_stat "flush wrote nothing" w0 (Disk.counters disk).Disk.blocks_written

let test_wb_oversized_write_falls_through () =
  let disk, pool = mk_wb_pool ~frames:2 () in
  let e = Disk.alloc disk ~blocks:3 in
  Cache.write pool e;
  check_stat "written through" 3 (Disk.counters disk).Disk.blocks_written;
  check_stat "no dirty frames" 0 (Cache.dirty_frames pool)

let test_wb_flush_resumes_after_fault () =
  let disk, pool = mk_wb_pool () in
  let e1 = Disk.alloc disk ~blocks:2 in
  let e2 = Disk.alloc disk ~blocks:2 in
  Cache.write pool e1;
  Cache.write pool e2;
  (* Fail the drain's second run: e1's frames are already clean, e2's
     stay dirty. *)
  Disk.arm_fault disk { Disk.target = Disk.On_write; at = 2 };
  Alcotest.(check bool) "drain faulted" true
    (match Cache.flush pool with
    | () -> false
    | exception Disk.Disk_error _ -> true);
  Disk.clear_fault disk;
  check_stat "first run landed" 2 (Disk.counters disk).Disk.blocks_written;
  check_stat "second run still dirty" 2 (Cache.dirty_frames pool);
  (* A later flush resumes with exactly the remaining frames. *)
  Cache.flush pool;
  check_stat "all blocks on disk" 4 (Disk.counters disk).Disk.blocks_written;
  check_stat "clean" 0 (Cache.dirty_frames pool);
  let s = Cache.stats pool in
  check_stat "two drains" 2 s.Cache.flushes;
  check_stat "two runs landed" 2 s.Cache.flush_writes

let test_wb_flush_fault_point_precedes_drain () =
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:3 in
  Cache.write pool e;
  Disk.arm_fault disk { Disk.target = Disk.On_flush; at = 1 };
  Alcotest.(check bool) "flush point fired" true
    (match Cache.flush pool with
    | () -> false
    | exception Disk.Disk_error _ -> true);
  Disk.clear_fault disk;
  (* The crash hit before any deferred write reached the disk: the pool
     is still fully dirty and nothing was written or counted. *)
  check_stat "nothing written" 0 (Disk.counters disk).Disk.blocks_written;
  check_stat "no flush recorded" 0 (Disk.counters disk).Disk.flushes;
  check_stat "still fully dirty" 3 (Cache.dirty_frames pool);
  (* What a crash does next: recovery throws the deferred writes away;
     the frames stay resident but clean.  Idempotent. *)
  check_stat "three discards" 3 (Cache.discard_dirty pool);
  check_stat "clean" 0 (Cache.dirty_frames pool);
  check_stat "idempotent" 0 (Cache.discard_dirty pool)

let test_wb_torn_flush_heals_on_rewrite () =
  let disk, pool = mk_wb_pool () in
  let e = Disk.alloc disk ~blocks:2 in
  Cache.write pool e;
  Disk.arm_fault disk ~mode:Disk.Torn { Disk.target = Disk.On_write; at = 1 };
  Alcotest.(check bool) "torn drain raises" true
    (match Cache.flush pool with
    | () -> false
    | exception Disk.Disk_error _ -> true);
  Disk.clear_fault disk;
  Alcotest.(check bool) "extent torn" true (Disk.is_torn disk e);
  check_stat "frames stay dirty" 2 (Cache.dirty_frames pool);
  (* The retry rewrites the whole extent in one run, clearing the tear
     exactly as an uncached full rewrite would. *)
  Cache.flush pool;
  Alcotest.(check bool) "tear healed by full rewrite" false
    (Disk.is_torn disk e);
  check_stat "clean" 0 (Cache.dirty_frames pool)

let test_shared_pool_cross_arm_eviction () =
  let da = mk_disk () and db = mk_disk () in
  let va, vb =
    match Cache.attach_shared [ da; db ] ~frames:2 () with
    | [ va; vb ] -> (va, vb)
    | _ -> Alcotest.fail "expected two views"
  in
  Fun.protect
    ~finally:(fun () ->
      Cache.detach da;
      Cache.detach db)
    (fun () ->
      let a = Disk.alloc da ~blocks:1 in
      let b = Disk.alloc db ~blocks:2 in
      Cache.read va a;
      Alcotest.(check bool) "a resident" true (Cache.contains va a);
      (* Arm B's working set squeezes arm A out of the shared frames. *)
      Cache.read vb b;
      Alcotest.(check bool) "cross-arm eviction" false (Cache.contains va a);
      (* Per-arm slices versus pool-wide totals. *)
      let sa = Cache.local_stats va and sb = Cache.local_stats vb in
      check_stat "arm A slice" 1 sa.Cache.misses;
      check_stat "arm B slice" 2 sb.Cache.misses;
      check_stat "pool total" 3 (Cache.stats va).Cache.misses;
      check_stat "B's install evicted" 1 sb.Cache.evictions)

(* --- readahead -------------------------------------------------------- *)

let test_demand_readahead () =
  let disk, pool = mk_pool ~frames:16 ~readahead:4 () in
  let e = Disk.alloc disk ~blocks:6 in
  Disk.write disk e;
  Cache.read_range pool e ~off:0 ~blocks:1;
  let s = Cache.stats pool in
  check_stat "one demand miss" 1 s.Cache.misses;
  check_stat "four blocks prefetched" 4 s.Cache.readaheads;
  (* The prefetched blocks are warm... *)
  let t0 = Disk.elapsed disk in
  Cache.read_range pool e ~off:1 ~blocks:4;
  Alcotest.(check (float 0.0)) "prefetched blocks are free" 0.0
    (Disk.elapsed disk -. t0);
  (* ...but the sixth block was beyond the prefetch window. *)
  Cache.read_range pool e ~off:5 ~blocks:1;
  check_stat "sixth block missed" 2 (Cache.stats pool).Cache.misses

let test_scan_batches_runs () =
  let disk, pool = mk_pool ~frames:32 () in
  let e1 = Disk.alloc disk ~blocks:4 in
  let e2 = Disk.alloc disk ~blocks:4 in
  Disk.write disk e1;
  Disk.write disk e2;
  let s0 = (Disk.counters disk).Disk.seeks in
  let t0 = Disk.elapsed disk in
  Cache.sequential_read pool [ e1; e2 ];
  let cold = Disk.elapsed disk -. t0 in
  (* One seek for the whole scan, like Disk.sequential_read. *)
  Alcotest.(check int) "one seek" 1 ((Disk.counters disk).Disk.seeks - s0);
  Alcotest.(check bool) "cold scan charged" true (cold > 0.0);
  check_stat "blocks beyond first-of-run count as readahead" 7
    (Cache.stats pool).Cache.readaheads;
  let t1 = Disk.elapsed disk in
  Cache.sequential_read pool [ e1; e2 ];
  Alcotest.(check (float 0.0)) "warm scan free" 0.0 (Disk.elapsed disk -. t1)

(* --- metadata (directory) caching ------------------------------------- *)

let test_meta_read () =
  let disk, pool = mk_pool ~frames:16 () in
  let t0 = Disk.elapsed disk in
  Cache.meta_read pool ~dir:1 ~nodes:[ 10; 11; 12 ];
  let cold = Disk.elapsed disk -. t0 in
  Alcotest.(check (float 1e-12)) "each cold node pays seek + block"
    (3.0 *. (seek +. (100.0 /. 10e6)))
    cold;
  let t1 = Disk.elapsed disk in
  Cache.meta_read pool ~dir:1 ~nodes:[ 10; 11; 12 ];
  Alcotest.(check (float 0.0)) "warm walk free" 0.0 (Disk.elapsed disk -. t1);
  (* Same node ids in a different namespace are distinct blocks. *)
  Cache.meta_read pool ~dir:2 ~nodes:[ 10 ];
  let s = Cache.stats pool in
  check_stat "meta hits" 3 s.Cache.meta_hits;
  check_stat "meta misses" 4 s.Cache.meta_misses;
  Alcotest.(check bool) "meta seconds accounted" true
    (s.Cache.meta_seconds > 0.0)

(* --- index integration ------------------------------------------------ *)

let store day =
  Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Entry.value = 1 + ((day + i) mod 6);
           entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
         }))

let cached_icfg ?(frames = 256) ?(readahead = 4) () =
  { icfg with Index.cache_blocks = Some frames; cache_readahead = readahead }

let test_warm_probe_speedup () =
  (* Acceptance: warm cached probes at least 2x faster than uncached. *)
  let cold_env = Env.create ~store ~w:6 ~n:3 () in
  let cold = Scheme.start Scheme.Del cold_env in
  Scheme.advance_to cold 12;
  let warm_env = Env.create ~icfg:(cached_icfg ()) ~store ~w:6 ~n:3 () in
  let warm = Scheme.start Scheme.Del warm_env in
  Scheme.advance_to warm 12;
  let time env f =
    let d = env.Env.disk in
    let t0 = Disk.elapsed d in
    ignore (f ());
    Disk.elapsed d -. t0
  in
  let probe_all frame =
    List.init 6 (fun v ->
        Frame.timed_index_probe frame ~t1:7 ~t2:12 ~value:(v + 1))
  in
  let uncached = time cold_env (fun () -> probe_all (Scheme.frame cold)) in
  (* Warm-up pass, then the measured pass. *)
  ignore (probe_all (Scheme.frame warm));
  let cached = time warm_env (fun () -> probe_all (Scheme.frame warm)) in
  Alcotest.(check bool)
    (Printf.sprintf "warm probes >= 2x faster (%.4f vs %.4f)" cached uncached)
    true
    (cached *. 2.0 <= uncached);
  let pool = Option.get (Index.cache (Frame.slot_index (Scheme.frame warm) 1)) in
  Alcotest.(check bool) "pool saw hits" true ((Cache.stats pool).Cache.hits > 0)

let queries =
  {
    Wave_workload.Query_gen.seed = 7;
    probes_per_day = 12;
    probe_range = Wave_workload.Query_gen.Whole_window;
    scans_per_day = 1;
    scan_range = Wave_workload.Query_gen.Whole_window;
    value_dist = Wave_workload.Query_gen.Uniform 6;
  }

let run_sim ?icfg:(cfg = icfg) ~scheme ~technique ~queries () =
  Wave_sim.Runner.run
    {
      (Wave_sim.Runner.default_config ~scheme ~store ~w:6 ~n:3) with
      Wave_sim.Runner.technique;
      run_days = 8;
      queries = Some queries;
      icfg = cfg;
    }

(* Golden digests of full-precision day_metrics captured on the pre-pool
   build (PR 2 head): the default cache-off configuration must keep
   every scheme x technique simulation bit-identical.  Zero tolerance —
   any drift in charging order or float arithmetic fails here. *)
let golden =
  [
    ("DEL/in-place", "c194da751668c6dd35f7989fdf7a2e66");
    ("DEL/simple-shadow", "57ae513533419766e72d54015d150bd9");
    ("DEL/packed-shadow", "383ef529dd7f92d5f9bd38249d809e55");
    ("REINDEX/in-place", "685b723819649c8b5d2cb9fa92c85e31");
    ("REINDEX/simple-shadow", "685b723819649c8b5d2cb9fa92c85e31");
    ("REINDEX/packed-shadow", "685b723819649c8b5d2cb9fa92c85e31");
    ("REINDEX+/in-place", "daa2ba199dd5bd4f7a507edab4ed8d0b");
    ("REINDEX+/simple-shadow", "daa2ba199dd5bd4f7a507edab4ed8d0b");
    ("REINDEX+/packed-shadow", "b6e934135b219dedd7e08c595ee0c623");
    ("REINDEX++/in-place", "6281b4c1b53ab78460669ef6f5070e8a");
    ("REINDEX++/simple-shadow", "6281b4c1b53ab78460669ef6f5070e8a");
    ("REINDEX++/packed-shadow", "a0f02ce1a66e6df7da6ead7c861d75a7");
    ("WATA*/in-place", "c13e9b61d80da9dff9aeb16c3f120727");
    ("WATA*/simple-shadow", "0dac12b437f26886c49ee3b80df45b61");
    ("WATA*/packed-shadow", "79bd5a2140f75706a935182808ebb755");
    ("RATA*/in-place", "122cb2d2deb4d5db9e7c8a32a6fb51f4");
    ("RATA*/simple-shadow", "bc1c01fc5d3bbb2da925f320a8bbc43e");
    ("RATA*/packed-shadow", "546da938cd2b8ea04696aaa076951659");
  ]

let digest_of (r : Wave_sim.Runner.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (d : Wave_sim.Runner.day_metrics) ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%.17g|%.17g|%.17g|%.17g|%d|%d|%d|%d|%d|%d|%d;"
           d.day d.precompute_seconds d.transition_seconds
           d.maintenance_seconds d.query_seconds d.probe_entries d.scan_entries
           d.space_bytes d.wave_length d.seeks d.blocks_read d.blocks_written))
    r.Wave_sim.Runner.days;
  Buffer.add_string buf
    (Printf.sprintf "max=%d avg=%.17g m=%.17g q=%.17g" r.max_space_bytes
       r.avg_space_bytes r.total_maintenance_seconds r.total_query_seconds);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let test_cache_off_bit_identical () =
  List.iter
    (fun scheme ->
      List.iter
        (fun technique ->
          let r = run_sim ~scheme ~technique ~queries () in
          let name =
            Printf.sprintf "%s/%s" (Scheme.name scheme)
              (Env.technique_name technique)
          in
          Alcotest.(check string) name (List.assoc name golden) (digest_of r))
        [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
    Scheme.all

let test_cache_on_same_answers_cheaper () =
  List.iter
    (fun scheme ->
      let off = run_sim ~scheme ~technique:Env.Packed_shadow ~queries () in
      let on =
        run_sim
          ~icfg:(cached_icfg ~frames:512 ())
          ~scheme ~technique:Env.Packed_shadow ~queries ()
      in
      let entries (r : Wave_sim.Runner.result) =
        List.map
          (fun (d : Wave_sim.Runner.day_metrics) ->
            (d.day, d.probe_entries, d.scan_entries))
          r.Wave_sim.Runner.days
      in
      Alcotest.(check bool)
        (Scheme.name scheme ^ ": identical entries")
        true
        (entries off = entries on);
      Alcotest.(check bool)
        (Scheme.name scheme ^ ": cheaper queries")
        true
        (on.Wave_sim.Runner.total_query_seconds
        < off.Wave_sim.Runner.total_query_seconds);
      match on.Wave_sim.Runner.cache_stats with
      | None -> Alcotest.fail "cached run lost its pool stats"
      | Some s ->
        Alcotest.(check bool)
          (Scheme.name scheme ^ ": pool hit")
          true
          (s.Cache.hits > 0))
    Scheme.all

let wb_icfg ?(frames = 256) ?(readahead = 4) () =
  { (cached_icfg ~frames ~readahead ()) with Index.cache_write_back = true }

let entries_and_space (r : Wave_sim.Runner.result) =
  List.map
    (fun (d : Wave_sim.Runner.day_metrics) ->
      (d.day, d.probe_entries, d.scan_entries, d.space_bytes))
    r.Wave_sim.Runner.days

let test_wb_sim_transparent_and_fewer_writes () =
  List.iter
    (fun scheme ->
      let wt =
        run_sim
          ~icfg:(cached_icfg ~frames:512 ())
          ~scheme ~technique:Env.Packed_shadow ~queries ()
      in
      let wb =
        run_sim
          ~icfg:(wb_icfg ~frames:512 ())
          ~scheme ~technique:Env.Packed_shadow ~queries ()
      in
      Alcotest.(check bool)
        (Scheme.name scheme ^ ": same answers, same space")
        true
        (entries_and_space wt = entries_and_space wb);
      let writes (r : Wave_sim.Runner.result) =
        List.fold_left
          (fun acc (d : Wave_sim.Runner.day_metrics) -> acc + d.blocks_written)
          0 r.Wave_sim.Runner.days
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: write-back wrote %d <= write-through %d"
           (Scheme.name scheme) (writes wb) (writes wt))
        true
        (writes wb <= writes wt);
      match wb.Wave_sim.Runner.cache_stats with
      | None -> Alcotest.fail "write-back run lost its pool stats"
      | Some s ->
        Alcotest.(check bool)
          (Scheme.name scheme ^ ": flush drains happened")
          true (s.Cache.flushes > 0))
    Scheme.all

(* PRNG property: deferring writes through the pool and flushing at the
   technique barriers leaves the simulation's observable state — every
   day's query answers and the allocator image (space) — identical to
   the write-through run, over random pool geometries. *)
let prop_write_back_transparent =
  QCheck2.Test.make ~name:"write-back on/off disk image agrees" ~count:10
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 1 128) (int_range 0 6))
    (fun (seed, frames, readahead) ->
      let q = { queries with Wave_workload.Query_gen.seed } in
      let off =
        run_sim ~scheme:Scheme.Rata_star ~technique:Env.Packed_shadow
          ~queries:q ()
      in
      let on =
        run_sim
          ~icfg:(wb_icfg ~frames ~readahead ())
          ~scheme:Scheme.Rata_star ~technique:Env.Packed_shadow ~queries:q ()
      in
      entries_and_space off = entries_and_space on)

(* PRNG property: over random query mixes and pool geometries, cache-on
   and cache-off runs return identical per-day probe and scan entries. *)
let prop_cache_transparent =
  QCheck2.Test.make ~name:"cache on/off answers agree" ~count:12
    QCheck2.Gen.(
      triple (int_range 1 10_000) (int_range 1 128) (int_range 0 6))
    (fun (seed, frames, readahead) ->
      let q = { queries with Wave_workload.Query_gen.seed } in
      let off =
        run_sim ~scheme:Scheme.Rata_star ~technique:Env.In_place ~queries:q ()
      in
      let on =
        run_sim
          ~icfg:(cached_icfg ~frames ~readahead ())
          ~scheme:Scheme.Rata_star ~technique:Env.In_place ~queries:q ()
      in
      let entries (r : Wave_sim.Runner.result) =
        List.map
          (fun (d : Wave_sim.Runner.day_metrics) ->
            (d.day, d.probe_entries, d.scan_entries))
          r.Wave_sim.Runner.days
      in
      entries off = entries on)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "cache.pool",
      [
        Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
        Alcotest.test_case "miss charges like uncached" `Quick
          test_miss_charges_like_uncached;
        Alcotest.test_case "CLOCK second chance" `Quick
          test_clock_second_chance;
        Alcotest.test_case "pinned never evicted" `Quick
          test_pinned_never_evicted;
        Alcotest.test_case "all pinned raises" `Quick test_all_pinned_raises;
        Alcotest.test_case "oversized pin raises" `Quick
          test_oversized_pin_raises;
        Alcotest.test_case "unpin below zero raises" `Quick
          test_unpin_below_zero_raises;
        Alcotest.test_case "resident pins survive pressure" `Quick
          test_resident_pins_survive_pressure;
        Alcotest.test_case "generation invalidation" `Quick
          test_generation_invalidation;
        Alcotest.test_case "dead extent raises" `Quick
          test_read_dead_extent_raises;
        Alcotest.test_case "write-through no allocate" `Quick
          test_write_through_no_allocate;
        Alcotest.test_case "demand readahead" `Quick test_demand_readahead;
        Alcotest.test_case "scan batches runs" `Quick test_scan_batches_runs;
        Alcotest.test_case "metadata caching" `Quick test_meta_read;
      ] );
    ( "cache.write_back",
      [
        Alcotest.test_case "defer, coalesce, flush" `Quick
          test_wb_defer_flush_coalesce;
        Alcotest.test_case "flush splits runs" `Quick test_wb_flush_splits_runs;
        Alcotest.test_case "eviction writes only the victim" `Quick
          test_wb_eviction_writes_only_victim;
        Alcotest.test_case "pinned dirty frame flushable" `Quick
          test_wb_pinned_dirty_flushable;
        Alcotest.test_case "discard on free" `Quick
          test_wb_dirty_discarded_on_free;
        Alcotest.test_case "discard on realloc" `Quick
          test_wb_dirty_discarded_on_realloc;
        Alcotest.test_case "oversized write falls through" `Quick
          test_wb_oversized_write_falls_through;
        Alcotest.test_case "flush resumes after fault" `Quick
          test_wb_flush_resumes_after_fault;
        Alcotest.test_case "flush fault precedes drain" `Quick
          test_wb_flush_fault_point_precedes_drain;
        Alcotest.test_case "torn flush heals on rewrite" `Quick
          test_wb_torn_flush_heals_on_rewrite;
        Alcotest.test_case "shared pool cross-arm eviction" `Quick
          test_shared_pool_cross_arm_eviction;
      ] );
    ( "cache.integration",
      [
        Alcotest.test_case "warm probe speedup" `Quick test_warm_probe_speedup;
        Alcotest.test_case "cache-off bit-identical (golden)" `Quick
          test_cache_off_bit_identical;
        Alcotest.test_case "cache-on same answers cheaper" `Quick
          test_cache_on_same_answers_cheaper;
        Alcotest.test_case "write-back transparent, fewer writes" `Quick
          test_wb_sim_transparent_and_fewer_writes;
      ] );
    ( "cache.property",
      qcheck [ prop_cache_transparent; prop_write_back_transparent ] );
  ]
