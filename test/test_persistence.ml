(* Tests for the batch codec and the wave manifest (checkpoint /
   restart). *)

open Wave_core
open Wave_storage

let batch ~day postings = Entry.batch_create ~day (Array.of_list postings)

let posting value rid info day = { Entry.value; entry = { Entry.rid; day; info } }

(* --- Codec --------------------------------------------------------- *)

let test_codec_roundtrip () =
  let b =
    batch ~day:7
      [ posting 5 100 3 7; posting 2 101 0 7; posting 9999 102 (-4) 7 ]
  in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok b' ->
    Alcotest.(check int) "day" 7 b'.Entry.day;
    Alcotest.(check int) "count" 3 (Entry.batch_size b');
    Array.iteri
      (fun i (p : Entry.posting) ->
        let q = b.Entry.postings.(i) in
        if p.Entry.value <> q.Entry.value
           || not (Entry.equal p.Entry.entry q.Entry.entry)
        then Alcotest.failf "posting %d differs" i)
      b'.Entry.postings

let test_codec_empty () =
  let b = batch ~day:1 [] in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Ok b' -> Alcotest.(check int) "empty" 0 (Entry.batch_size b')
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_negative_day () =
  (* ZigZag handles negative fields (e.g. epoch-relative days). *)
  let b = batch ~day:(-3) [ posting 1 1 1 (-3) ] in
  match Codec.decode_batch (Codec.encode_batch b) with
  | Ok b' -> Alcotest.(check int) "day -3" (-3) b'.Entry.day
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_rejects_garbage () =
  let check_err name s =
    match Codec.decode_batch s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  check_err "empty" "";
  check_err "bad magic" "XXXX\x00\x00\x00";
  check_err "truncated" (String.sub (Codec.encode_batch (batch ~day:1 [ posting 1 1 1 1 ])) 0 6);
  let good = Codec.encode_batch (batch ~day:1 [ posting 1 1 1 1 ]) in
  check_err "trailing" (good ^ "z");
  (* flip a payload byte: checksum must catch it *)
  let corrupted = Bytes.of_string good in
  Bytes.set corrupted 5 (Char.chr ((Char.code (Bytes.get corrupted 5) + 1) land 0xff));
  check_err "bitflip" (Bytes.to_string corrupted)

let test_codec_batches () =
  let bs = [ batch ~day:1 [ posting 1 1 0 1 ]; batch ~day:2 [ posting 2 2 0 2 ] ] in
  match Codec.decode_batches (Codec.encode_batches bs) with
  | Ok [ b1; b2 ] ->
    Alcotest.(check int) "day1" 1 b1.Entry.day;
    Alcotest.(check int) "day2" 2 b2.Entry.day
  | Ok _ -> Alcotest.fail "wrong count"
  | Error e -> Alcotest.failf "decode failed: %s" e

let test_codec_diagnostics () =
  (* Each corruption class gets its own diagnostic, so an operator can
     tell a chopped file from silent bit rot. *)
  let diag name expect s =
    match Codec.decode_batch s with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e -> Alcotest.(check string) name expect e
  in
  let good = Codec.encode_batch (batch ~day:3 [ posting 7 70 1 3; posting 2 71 0 3 ]) in
  diag "empty input" "missing magic" "";
  diag "foreign magic" "bad magic" "XXXX\x00\x00\x00\x00";
  diag "old format version" "bad magic" ("WVB1" ^ String.sub good 4 (String.length good - 4));
  diag "truncated payload" "truncated varint" (String.sub good 0 6);
  diag "trailing bytes" "trailing bytes" (good ^ "z");
  (* flip a value bit inside the first posting: the varint structure is
     unchanged, so only the CRC can notice *)
  let flipped = Bytes.of_string good in
  Bytes.set flipped 6 (Char.chr (Char.code (Bytes.get flipped 6) lxor 0x01));
  diag "single bit flip" "checksum mismatch" (Bytes.to_string flipped)

let test_codec_crc_catches_transposition () =
  (* The old additive checksum was order-blind: swapping two payload
     bytes left the sum unchanged.  CRC-32 must reject it. *)
  let good = Codec.encode_batch (batch ~day:9 [ posting 3 5 1 9; posting 8 6 2 9 ]) in
  (* find two adjacent differing payload bytes (after the 4-byte magic,
     before the 4ish-byte checksum tail) *)
  let b = Bytes.of_string good in
  let swapped = ref false in
  let i = ref 4 in
  while (not !swapped) && !i < Bytes.length b - 6 do
    if Bytes.get b !i <> Bytes.get b (!i + 1) then begin
      let tmp = Bytes.get b !i in
      Bytes.set b !i (Bytes.get b (!i + 1));
      Bytes.set b (!i + 1) tmp;
      swapped := true
    end;
    incr i
  done;
  Alcotest.(check bool) "found bytes to swap" true !swapped;
  match Codec.decode_batch (Bytes.to_string b) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "transposed payload accepted"

let prop_codec_roundtrip =
  QCheck2.Test.make ~name:"codec roundtrips random batches" ~count:200
    QCheck2.Gen.(
      pair (int_range 1 60)
        (list_size (int_range 0 40)
           (triple (int_range 1 10_000) nat (int_range (-1000) 1000))))
    (fun (day, triples) ->
      let b =
        batch ~day (List.map (fun (v, rid, info) -> posting v rid info day) triples)
      in
      match Codec.decode_batch (Codec.encode_batch b) with
      | Ok b' ->
        Entry.batch_size b = Entry.batch_size b'
        && Array.for_all2
             (fun (p : Entry.posting) (q : Entry.posting) ->
               p.Entry.value = q.Entry.value && Entry.equal p.Entry.entry q.Entry.entry)
             b.Entry.postings b'.Entry.postings
      | Error _ -> false)

let prop_codec_never_crashes_on_garbage =
  QCheck2.Test.make ~name:"codec rejects random garbage safely" ~count:300
    QCheck2.Gen.(string_size (int_range 0 64))
    (fun s ->
      match Codec.decode_batch s with
      | Ok _ | Error _ -> true)

(* --- Manifest ------------------------------------------------------- *)

let store day =
  Entry.batch_create ~day
    (Array.init 5 (fun i ->
         posting (1 + ((day + i) mod 4)) ((day * 10) + i) i day))

let test_manifest_roundtrip () =
  let env = Env.create ~store ~technique:Env.Packed_shadow ~w:8 ~n:3 () in
  let s = Scheme.start Scheme.Wata_star env in
  Scheme.advance_to s 15;
  let m = Manifest.capture s in
  match Manifest.of_string (Manifest.to_string m) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok m' ->
    Alcotest.(check bool) "scheme" true (m'.Manifest.scheme = Scheme.Wata_star);
    Alcotest.(check int) "day" 15 m'.Manifest.day;
    Alcotest.(check int) "w" 8 m'.Manifest.w;
    Alcotest.(check int) "n" 3 m'.Manifest.n;
    Alcotest.(check bool) "slots equal" true
      (List.for_all2 Dayset.equal m.Manifest.slots m'.Manifest.slots)

let test_manifest_bad_inputs () =
  let check_err name s =
    match Manifest.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  check_err "empty" "";
  check_err "bad header" "something else\n";
  check_err "unknown scheme" "wave-manifest v1\nscheme NOPE\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n";
  check_err "slot mismatch" "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\n";
  check_err "bad int" "wave-manifest v1\nscheme DEL\ntechnique in-place\nw five\nn 2\nday 5\nslot 1 1\nslot 2 2\n"

let sorted_scan frame = List.sort Entry.compare (Frame.segment_scan frame)

let test_manifest_restore_frame () =
  let env = Env.create ~store ~w:8 ~n:3 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 20;
  let m = Manifest.capture s in
  (* restore on a fresh disk/env *)
  let env' = Env.create ~store ~w:8 ~n:3 () in
  let frame = Manifest.restore_frame m env' in
  Frame.validate frame;
  Alcotest.(check bool) "same contents" true
    (sorted_scan frame = sorted_scan (Scheme.frame s))

let test_manifest_restart () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Reindex_pp env in
  Scheme.advance_to s 17;
  let m = Manifest.capture s in
  let env' = Env.create ~store ~w:6 ~n:2 () in
  let s' = Manifest.restart m env' in
  Alcotest.(check int) "same day" 17 (Scheme.current_day s');
  Scheme.check_window_invariant s';
  (* hard window: identical query results *)
  Alcotest.(check bool) "query equivalent" true
    (sorted_scan (Scheme.frame s') = sorted_scan (Scheme.frame s));
  (* and the restarted scheme keeps running *)
  Scheme.transition s';
  Scheme.check_window_invariant s'

let test_manifest_geometry_mismatch () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  let m = Manifest.capture s in
  let env' = Env.create ~store ~w:7 ~n:2 () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Manifest.restore_frame: geometry mismatch") (fun () ->
      ignore (Manifest.restore_frame m env'))

let prop_manifest_restart_equivalence =
  QCheck2.Test.make ~name:"manifest restart is query-equivalent" ~count:30
    QCheck2.Gen.(triple (int_range 0 5) (int_range 3 9) (int_range 2 4))
    (fun (kind_i, w, n) ->
      let kind = List.nth Scheme.all kind_i in
      let n = max (Scheme.min_indexes kind) (min n w) in
      QCheck2.assume (n <= w);
      let env = Env.create ~store ~w ~n () in
      let s = Scheme.start kind env in
      Scheme.advance_to s (w + 9);
      let m = Manifest.capture s in
      match Manifest.of_string (Manifest.to_string m) with
      | Error _ -> false
      | Ok m' ->
        let env' = Env.create ~store ~w ~n () in
        let frame = Manifest.restore_frame m' env' in
        Frame.validate frame;
        sorted_scan frame = sorted_scan (Scheme.frame s))

(* Random *valid* manifests built directly from the record type (not
   via a running scheme), so the parser is exercised over the whole
   value space: empty slots, unordered day lists, large days. *)
let manifest_gen =
  QCheck2.Gen.(
    let* kind_i = int_range 0 5 in
    let kind = List.nth Scheme.all kind_i in
    let* tech_i = int_range 0 2 in
    let technique =
      List.nth [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ] tech_i
    in
    let* w = int_range 2 20 in
    let* n = int_range (Scheme.min_indexes kind) (max (Scheme.min_indexes kind) w) in
    let* day = int_range w 10_000 in
    let* slots =
      list_repeat n
        (let* days = list_size (int_range 0 6) (int_range 1 10_000) in
         return (List.fold_left (fun a d -> Dayset.add d a) Dayset.empty days))
    in
    let* epoch = int_range 0 50 in
    return { Manifest.scheme = kind; technique; w; n; day; epoch; slots })

let prop_manifest_roundtrip_random =
  QCheck2.Test.make ~name:"manifest serialisation roundtrips random manifests"
    ~count:300 manifest_gen (fun m ->
      match Manifest.of_string (Manifest.to_string m) with
      | Error _ -> false
      | Ok m' ->
        m'.Manifest.scheme = m.Manifest.scheme
        && m'.Manifest.technique = m.Manifest.technique
        && m'.Manifest.w = m.Manifest.w
        && m'.Manifest.n = m.Manifest.n
        && m'.Manifest.day = m.Manifest.day
        && m'.Manifest.epoch = m.Manifest.epoch
        && List.length m'.Manifest.slots = List.length m.Manifest.slots
        && List.for_all2 Dayset.equal m'.Manifest.slots m.Manifest.slots)

let test_manifest_bad_corpus () =
  (* A corpus of near-miss manifests: each must be rejected with a
     diagnostic, never an exception or a silent partial parse. *)
  let base tech =
    Printf.sprintf
      "wave-manifest v1\nscheme DEL\ntechnique %s\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n"
      tech
  in
  let corpus =
    [
      ("future version", "wave-manifest v2\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n");
      ("case-mangled header", "Wave-Manifest V1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n");
      ("unknown scheme", String.concat "\n" [ "wave-manifest v1"; "scheme BTREE"; "technique in-place"; "w 5"; "n 2"; "day 5"; "slot 1 1,2"; "slot 2 3,4,5"; "" ]);
      ("unknown technique", base "copy-on-write");
      ("garbled day set: letters", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,x\nslot 2 3,4,5\n");
      ("garbled day set: empty element", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,,2\nslot 2 3,4,5\n");
      ("slot line with extra tokens", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2 junk\nslot 2 3,4,5\n");
      ("too many slots", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4\nslot 3 5\n");
      ("missing day", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5\nn 2\nslot 1 1,2\nslot 2 3,4,5\n");
      ("float geometry", "wave-manifest v1\nscheme DEL\ntechnique in-place\nw 5.5\nn 2\nday 5\nslot 1 1,2\nslot 2 3,4,5\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      match Manifest.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: accepted" name)
    corpus;
  (* and the happy path still parses, so the corpus is near-miss *)
  match Manifest.of_string (base "in-place") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "baseline rejected: %s" e

let prop_manifest_parser_total =
  QCheck2.Test.make ~name:"manifest parser never raises on garbage" ~count:300
    QCheck2.Gen.(string_size (int_range 0 200))
    (fun s ->
      match Manifest.of_string s with Ok _ | Error _ -> true)

(* --- File store ------------------------------------------------------ *)

let test_file_store_roundtrip () =
  let dir = Filename.temp_file "wave" "" in
  Sys.remove dir;
  Wave_workload.File_store.export ~dir ~store ~days:[ 1; 2; 3; 5 ];
  Alcotest.(check (list int)) "available" [ 1; 2; 3; 5 ]
    (Wave_workload.File_store.available_days ~dir);
  let fs = Wave_workload.File_store.store ~dir () in
  for d = 1 to 3 do
    let a = store d and b = fs d in
    Alcotest.(check int)
      (Printf.sprintf "day %d size" d)
      (Entry.batch_size a) (Entry.batch_size b)
  done;
  (* a wave can run directly off the files *)
  Wave_workload.File_store.export ~dir ~store ~days:(List.init 20 (fun i -> i + 1));
  let env = Env.create ~store:(Wave_workload.File_store.store ~dir ()) ~w:5 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 15;
  Scheme.check_window_invariant s;
  (* missing day raises *)
  let fs = Wave_workload.File_store.store ~dir () in
  Alcotest.(check bool) "missing day raises" true
    (try
       ignore (fs 99);
       false
     with Failure _ -> true)

let test_file_store_rejects_corruption () =
  let dir = Filename.temp_file "wave" "" in
  Sys.remove dir;
  Wave_workload.File_store.export ~dir ~store ~days:[ 4 ];
  let path = Filename.concat dir (Wave_workload.File_store.day_filename 4) in
  let oc = open_out_bin path in
  output_string oc "WVB1 garbage";
  close_out oc;
  let fs = Wave_workload.File_store.store ~dir () in
  Alcotest.(check bool) "corrupt file rejected" true
    (try
       ignore (fs 4);
       false
     with Failure _ -> true)

let test_file_store_bounded_cache () =
  let dir = Filename.temp_file "wave" "" in
  Sys.remove dir;
  Wave_workload.File_store.export ~dir ~store ~days:[ 1; 2; 3 ];
  Alcotest.(check bool) "cache_days must be positive" true
    (try
       let (_ : Wave_core.Env.day_store) =
         Wave_workload.File_store.store ~cache_days:0 ~dir ()
       in
       false
     with Invalid_argument _ -> true);
  let fs = Wave_workload.File_store.store ~cache_days:2 ~dir () in
  ignore (fs 1);
  ignore (fs 2);
  ignore (fs 3);
  (* Capacity 2, LRU: day 1 was evicted; 2 and 3 are cached.  Deleting
     the backing files makes residency observable — cached days still
     answer, the evicted one must re-read and fails. *)
  List.iter
    (fun d ->
      Sys.remove (Filename.concat dir (Wave_workload.File_store.day_filename d)))
    [ 1; 2; 3 ];
  Alcotest.(check int) "day 3 served from cache" (Entry.batch_size (store 3))
    (Entry.batch_size (fs 3));
  Alcotest.(check int) "day 2 served from cache" (Entry.batch_size (store 2))
    (Entry.batch_size (fs 2));
  Alcotest.(check bool) "day 1 was evicted" true
    (try
       ignore (fs 1);
       false
     with Failure _ -> true);
  (* Day 2 was touched last, so filling the cache now evicts day 3. *)
  Wave_workload.File_store.export ~dir ~store ~days:[ 4 ];
  ignore (fs 4);
  Sys.remove (Filename.concat dir (Wave_workload.File_store.day_filename 4));
  Alcotest.(check int) "day 2 still cached (recency)"
    (Entry.batch_size (store 2))
    (Entry.batch_size (fs 2));
  Alcotest.(check bool) "day 3 evicted as LRU victim" true
    (try
       ignore (fs 3);
       false
     with Failure _ -> true)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "storage.codec",
      [
        Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "empty" `Quick test_codec_empty;
        Alcotest.test_case "negative day" `Quick test_codec_negative_day;
        Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
        Alcotest.test_case "corruption diagnostics" `Quick test_codec_diagnostics;
        Alcotest.test_case "crc catches transposition" `Quick
          test_codec_crc_catches_transposition;
        Alcotest.test_case "batch list" `Quick test_codec_batches;
      ]
      @ qcheck [ prop_codec_roundtrip; prop_codec_never_crashes_on_garbage ] );
    ( "core.manifest",
      [
        Alcotest.test_case "roundtrip" `Quick test_manifest_roundtrip;
        Alcotest.test_case "bad inputs" `Quick test_manifest_bad_inputs;
        Alcotest.test_case "restore frame" `Quick test_manifest_restore_frame;
        Alcotest.test_case "restart" `Quick test_manifest_restart;
        Alcotest.test_case "geometry mismatch" `Quick test_manifest_geometry_mismatch;
        Alcotest.test_case "bad corpus" `Quick test_manifest_bad_corpus;
      ]
      @ qcheck
          [
            prop_manifest_restart_equivalence;
            prop_manifest_roundtrip_random;
            prop_manifest_parser_total;
          ] );
    ( "workload.file_store",
      [
        Alcotest.test_case "roundtrip" `Quick test_file_store_roundtrip;
        Alcotest.test_case "rejects corruption" `Quick
          test_file_store_rejects_corruption;
        Alcotest.test_case "bounded LRU day cache" `Quick
          test_file_store_bounded_cache;
      ] );
  ]


