(* Tests for the real file-backed disk: the Io syscall shim (fault
   injection, retry/backoff), the block-file stamp verification on
   reopen, checkpoint directory atomicity, and the kill-and-recover
   crash sweeps. *)

open Wave_core
open Wave_disk
open Wave_storage
open Wave_sim
module Metrics = Wave_obs.Metrics
module Alert = Wave_obs.Alert
module Cache = Wave_cache.Cache

let store = Crash_harness.default_store

(* Every test gets its own directory under the dune sandbox cwd. *)
let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_dir name f =
  rm_rf name;
  Unix.mkdir name 0o755;
  Fun.protect ~finally:(fun () -> rm_rf name) (fun () -> f name)

(* Install a sleep recorder so retry/stall schedules are asserted
   without real delays, and guarantee the global shim state (plan,
   sleeper, policy) is restored whatever the test does. *)
let with_recorded_sleeps f =
  let sleeps = ref [] in
  Io.set_sleeper (fun s -> sleeps := s :: !sleeps);
  Fun.protect
    ~finally:(fun () ->
      Io.clear ();
      Io.set_sleeper Io.default_sleeper;
      Io.set_retry_policy Io.default_retry_policy)
    (fun () -> f (fun () -> List.rev !sleeps))

let counter_delta name f =
  let c = Metrics.counter name in
  let before = Metrics.counter_value c in
  let r = f () in
  (r, Metrics.counter_value c -. before)

let small_params =
  { Disk.default_params with Disk.block_size = 64; transfer_rate = 1e9 }

(* --- Io shim --------------------------------------------------------- *)

let with_scratch_fd f =
  let path = "rd_scratch.bin" in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close fd;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f fd)

let test_io_transient_retries () =
  with_recorded_sleeps @@ fun sleeps ->
  with_scratch_fd @@ fun fd ->
  let payload = Bytes.make 64 'x' in
  Io.arm Io.Pwrite (Io.Transient (Io.Eintr, 2));
  let (), retries =
    counter_delta "disk.file.retries" (fun () -> Io.pwrite fd payload ~off:0)
  in
  Alcotest.(check (list (float 1e-9)))
    "exponential backoff" [ 0.001; 0.002 ] (sleeps ());
  Alcotest.(check (float 0.)) "two retries" 2.0 retries;
  let back = Bytes.create 64 in
  Io.pread fd back ~off:0;
  Alcotest.(check bool) "payload round-trips" true (Bytes.equal payload back)

let test_io_transient_giveup () =
  with_recorded_sleeps @@ fun sleeps ->
  with_scratch_fd @@ fun fd ->
  Io.arm Io.Pwrite (Io.Transient (Io.Eio, 99));
  let caught, giveups =
    counter_delta "disk.file.giveups" (fun () ->
        (* the shim's failure must be catchable as Disk_error: the
           rebinding is what lets every existing handler see real I/O
           faults *)
        try
          Io.pwrite fd (Bytes.make 32 'y') ~off:0;
          false
        with Disk.Disk_error msg ->
          let contains s sub =
            let n = String.length s and m = String.length sub in
            let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool)
            "message names the giveup" true
            (contains msg "giving up");
          true)
  in
  Alcotest.(check bool) "raised" true caught;
  Alcotest.(check (float 0.)) "one giveup" 1.0 giveups;
  Alcotest.(check int) "budget exhausted"
    Io.default_retry_policy.Io.max_retries
    (List.length (sleeps ()))

let test_io_short_write_progress () =
  with_recorded_sleeps @@ fun sleeps ->
  with_scratch_fd @@ fun fd ->
  let payload = Bytes.init 64 (fun i -> Char.chr (i land 0xff)) in
  Io.arm Io.Pwrite (Io.Transient (Io.Short, 1));
  Io.pwrite fd payload ~off:0;
  (* a short transfer that makes progress continues without backoff *)
  Alcotest.(check (list (float 0.))) "no backoff" [] (sleeps ());
  let back = Bytes.create 64 in
  Io.pread fd back ~off:0;
  Alcotest.(check bool) "whole payload landed" true (Bytes.equal payload back)

let test_io_stall () =
  with_recorded_sleeps @@ fun sleeps ->
  with_scratch_fd @@ fun fd ->
  Io.arm Io.Fsync (Io.Stall 0.25);
  let (), stalls = counter_delta "disk.file.stalls" (fun () -> Io.fsync fd) in
  Alcotest.(check (list (float 1e-9))) "slept the stall" [ 0.25 ] (sleeps ());
  Alcotest.(check (float 0.)) "counted" 1.0 stalls;
  Alcotest.(check bool) "plan consumed" true (Io.armed () = None)

let test_io_torn_write_visible () =
  with_recorded_sleeps @@ fun _ ->
  with_scratch_fd @@ fun fd ->
  ignore (Unix.write fd (Bytes.make 64 '\000') 0 64);
  Io.arm Io.Pwrite (Io.Torn_write 0.5);
  (try
     Io.pwrite fd (Bytes.make 64 'z') ~off:0;
     Alcotest.fail "torn write did not raise"
   with Io.Io_error _ -> ());
  let back = Bytes.create 64 in
  Io.pread fd back ~off:0;
  let wrote = ref 0 in
  Bytes.iter (fun c -> if c = 'z' then incr wrote) back;
  Alcotest.(check int) "exactly the torn prefix landed" 32 !wrote

let test_io_arm_validation () =
  Alcotest.check_raises "at < 1" (Invalid_argument "Io.arm: need at >= 1")
    (fun () -> Io.arm ~at:0 Io.Pread Io.Fail_stop);
  Alcotest.check_raises "torn targets pwrite"
    (Invalid_argument "Io.arm: torn fault targets pwrite") (fun () ->
      Io.arm Io.Fsync (Io.Torn_write 0.5))

(* --- file-backed disk: persistence and verification ------------------ *)

let test_file_disk_roundtrip () =
  with_dir "rd_roundtrip" @@ fun dir ->
  let path = Filename.concat dir "BLOCKS" in
  let d = Disk.create_file ~params:small_params ~path () in
  let e = Disk.alloc d ~blocks:3 in
  Disk.write d e;
  Disk.read d e;
  let gen = Disk.generation_at d ~start:e.Disk.start in
  Disk.checkpoint_alloc d;
  Disk.close d;
  let d2 = Disk.open_file ~params:small_params ~path () in
  Alcotest.(check int) "one live extent" 1 (List.length (Disk.live_extents d2));
  Alcotest.(check bool) "same shape" true
    (Disk.live_at d2 ~start:e.Disk.start ~length:3);
  Alcotest.(check bool) "generation survives" true
    (Disk.generation_at d2 ~start:e.Disk.start = gen);
  Alcotest.(check int) "nothing torn" 0 (Disk.torn_count d2);
  (* reads on the reopened disk verify the stamps for real *)
  List.iter (Disk.read d2) (Disk.live_extents d2);
  Disk.close d2

let test_file_disk_unwritten_extent_intact () =
  with_dir "rd_zero" @@ fun dir ->
  let path = Filename.concat dir "BLOCKS" in
  let d = Disk.create_file ~params:small_params ~path () in
  let e = Disk.alloc d ~blocks:2 in
  Disk.checkpoint_alloc d;
  Disk.close d;
  ignore e;
  (* never written: all-zero blocks satisfy valid-stamp-or-zero *)
  let d2 = Disk.open_file ~params:small_params ~path () in
  Alcotest.(check int) "live" 1 (List.length (Disk.live_extents d2));
  Alcotest.(check int) "not torn" 0 (Disk.torn_count d2);
  Disk.close d2

let test_file_disk_stale_generation_detected () =
  with_dir "rd_gen" @@ fun dir ->
  let path = Filename.concat dir "BLOCKS" in
  let d = Disk.create_file ~params:small_params ~path () in
  let a = Disk.alloc d ~blocks:3 in
  Disk.write d a;
  Disk.checkpoint_alloc d;
  (* after the snapshot: free and reallocate the same space, write the
     new generation's stamps, then die without a new snapshot *)
  Disk.free d a;
  let b = Disk.alloc d ~blocks:3 in
  Alcotest.(check int) "first-fit reused the space" a.Disk.start b.Disk.start;
  Disk.write d b;
  Disk.close d;
  let d2 = Disk.open_file ~params:small_params ~path () in
  Alcotest.(check bool) "snapshot's extent is back" true
    (Disk.live_at d2 ~start:a.Disk.start ~length:3);
  Alcotest.(check bool) "but marked torn (stale generation)" true
    (Disk.torn_at d2 ~start:a.Disk.start);
  Disk.close d2

let test_file_disk_truncated_tail_detected () =
  with_dir "rd_trunc" @@ fun dir ->
  let path = Filename.concat dir "BLOCKS" in
  let d = Disk.create_file ~params:small_params ~path () in
  let e = Disk.alloc d ~blocks:4 in
  Disk.write d e;
  Disk.checkpoint_alloc d;
  Disk.close d;
  Unix.truncate path (2 * small_params.Disk.block_size);
  let d2 = Disk.open_file ~params:small_params ~path () in
  Alcotest.(check bool) "truncated extent torn" true
    (Disk.torn_at d2 ~start:e.Disk.start);
  Disk.close d2

let test_file_disk_missing_sidecar () =
  with_dir "rd_nosidecar" @@ fun dir ->
  let path = Filename.concat dir "BLOCKS" in
  let d = Disk.create_file ~params:small_params ~path () in
  Disk.close d;
  Alcotest.(check bool) "open without snapshot refused" true
    (try
       ignore (Disk.open_file ~params:small_params ~path ());
       false
     with Disk.Disk_error _ -> true)

(* --- simulated disk: fault queue and stalls -------------------------- *)

let test_sim_fault_queue () =
  let d = Disk.create () in
  let e = Disk.alloc d ~blocks:1 in
  Disk.write d e;
  Disk.arm_faults d
    [
      ({ Disk.target = Disk.On_seek; at = 2 }, Disk.Fail_stop);
      ({ Disk.target = Disk.On_seek; at = 1 }, Disk.Fail_stop);
    ];
  Disk.read d e;
  (* first plan fires on the second seek after arming *)
  Alcotest.check_raises "head fires" (Disk.Disk_error "injected fault")
    (fun () -> Disk.read d e);
  Alcotest.(check int) "queue popped" 1 (List.length (Disk.armed_faults d));
  (* the popped queue's head counts from here: the very next seek *)
  Alcotest.check_raises "second fires" (Disk.Disk_error "injected fault")
    (fun () -> Disk.read d e);
  Alcotest.(check bool) "queue drained" true (Disk.armed_faults d = []);
  Disk.read d e

let test_sim_stall () =
  let d = Disk.create () in
  let e = Disk.alloc d ~blocks:1 in
  Disk.write d e;
  Disk.arm_fault d ~mode:(Disk.Stall 5.0) { Disk.target = Disk.On_seek; at = 1 };
  let t0 = Disk.elapsed d in
  let (), stalled =
    counter_delta "disk.stalls" (fun () -> Disk.read d e)
  in
  Alcotest.(check bool) "operation completed and charged the stall" true
    (Disk.elapsed d -. t0 >= 5.0);
  Alcotest.(check int) "stall_count" 1 (Disk.stall_count d);
  Alcotest.(check (float 0.)) "disk.stalls metric" 1.0 stalled;
  Alcotest.(check bool) "plan consumed" true (not (Disk.fault_armed d))

let test_sim_stall_validation () =
  let d = Disk.create () in
  Alcotest.(check bool) "negative stall rejected" true
    (try
       Disk.arm_fault d ~mode:(Disk.Stall (-1.0))
         { Disk.target = Disk.On_seek; at = 1 };
       false
     with Disk.Disk_error _ -> true)

(* --- runner: backend equivalence and the stall alert ----------------- *)

let test_runner_file_backend_equivalence () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_eqv" @@ fun dir ->
  let base = Runner.default_config ~scheme:Scheme.Del ~store ~w:6 ~n:3 in
  let base = { base with Runner.run_days = 6 } in
  let r_sim = Runner.run base in
  let icfg =
    {
      Index.default_config with
      Index.disk_backend = Disk.File (Filename.concat dir "BLOCKS");
    }
  in
  (* a transient fault mid-run is absorbed by the retry loop: the run
     completes and stays bit-identical to the simulator *)
  Io.arm ~at:40 Io.Pwrite (Io.Transient (Io.Eio, 2));
  let r_file, retries =
    counter_delta "disk.file.retries" (fun () ->
        Runner.run { base with Runner.icfg })
  in
  Alcotest.(check bool) "model metrics bit-identical to simulator" true
    (r_sim.Runner.days = r_file.Runner.days);
  Alcotest.(check bool) "retries happened and were counted" true
    (retries >= 2.0);
  Alcotest.(check bool) "real writes happened" true
    (Metrics.counter_value (Metrics.counter "disk.file.pwrites") > 0.0)

let test_runner_stall_alert () =
  let rule =
    Alert.rule ~name:"stalled-disk" ~metric:"runner.day.transition_seconds"
      Alert.Gt 10.0
  in
  let base = Runner.default_config ~scheme:Scheme.Del ~store ~w:6 ~n:3 in
  let stall_everything env =
    Disk.arm_faults env.Env.disk
      (List.init 1000 (fun _ ->
           ({ Disk.target = Disk.On_write; at = 1 }, Disk.Stall 30.0)))
  in
  let cfg =
    {
      base with
      Runner.run_days = 4;
      alerts = [ rule ];
      on_env = Some stall_everything;
    }
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "alert fired on the stalled transitions" true
    (List.exists
       (fun e -> e.Alert.e_rule.Alert.name = "stalled-disk")
       r.Runner.alerts);
  (* the same run without the stalls stays quiet *)
  let quiet = Runner.run { cfg with Runner.on_env = None } in
  Alcotest.(check (list reject)) "no alerts unstalled" [] quiet.Runner.alerts

(* --- checkpoint directory: atomicity under syscall faults ------------ *)

let dir_instance dir =
  Store_dir.init dir;
  let icfg =
    {
      Index.default_config with
      Index.disk_backend = Disk.File (Store_dir.blocks_path dir);
    }
  in
  let disk = Index.make_disk icfg in
  let env =
    Env.create ~disk ~icfg ~technique:Env.Packed_shadow ~store ~w:6 ~n:3 ()
  in
  Checkpoint.start ~dir Scheme.Del env

let kill cp =
  let disk = (Checkpoint.env cp).Env.disk in
  Cache.detach disk;
  Disk.close disk

let reopened_consistent dir ~day =
  let cp2, rcv = Checkpoint.reopen ~dir ~store () in
  let ok =
    (rcv.Checkpoint.recovered_day = day - 1
    || rcv.Checkpoint.recovered_day = day)
    && Checkpoint.current_day cp2 = rcv.Checkpoint.recovered_day
    && Disk.torn_count (Checkpoint.env cp2).Env.disk = 0
    && Disk.live_blocks (Checkpoint.env cp2).Env.disk > 0
  in
  kill cp2;
  ok

(* Kill the transition at every fsync and every rename it performs —
   counted on a clean twin — and prove a committed manifest plus a
   consistent wave always survives.  This is the behavioral check that
   each rename really is preceded by its fsync: killing at any fsync
   leaves the pre-commit files, killing at any rename leaves either the
   old or the new commit, never a half-written one. *)
let test_checkpoint_syscall_kill_matrix () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_sys" @@ fun root ->
  let day = 9 in
  let twin_dir = Filename.concat root "twin" in
  let twin = dir_instance twin_dir in
  Checkpoint.advance_to twin (day - 1);
  let count name f =
    let c = Metrics.counter name in
    let before = Metrics.counter_value c in
    f ();
    int_of_float (Metrics.counter_value c -. before)
  in
  let fsyncs = ref 0 and renames = ref 0 in
  let c_ren = Metrics.counter "disk.file.renames" in
  let before_ren = Metrics.counter_value c_ren in
  fsyncs := count "disk.file.fsyncs" (fun () -> Checkpoint.transition twin);
  renames := int_of_float (Metrics.counter_value c_ren -. before_ren);
  kill twin;
  Alcotest.(check bool) "transition fsyncs" true (!fsyncs >= 3);
  Alcotest.(check bool) "transition renames" true (!renames >= 3);
  let run_point syscall at label =
    let dir = Filename.concat root label in
    let cp = dir_instance dir in
    Checkpoint.advance_to cp (day - 1);
    Io.arm ~at syscall Io.Fail_stop;
    let fired =
      match Checkpoint.transition cp with
      | () -> false
      | exception Disk.Disk_error _ -> true
    in
    Io.clear ();
    kill cp;
    Alcotest.(check bool) (label ^ " fired") true fired;
    Alcotest.(check bool) (label ^ " recovers") true
      (reopened_consistent dir ~day)
  in
  for at = 1 to !fsyncs do
    run_point Io.Fsync at (Printf.sprintf "fsync%d" at)
  done;
  for at = 1 to !renames do
    run_point Io.Rename at (Printf.sprintf "rename%d" at)
  done

let test_checkpoint_stale_tmp_cleanup () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_tmp" @@ fun dir ->
  let cp = dir_instance dir in
  Checkpoint.advance_to cp 8;
  kill cp;
  let stale = Store_dir.manifest_path dir ^ ".tmp" in
  let oc = open_out stale in
  output_string oc "half a manifest";
  close_out oc;
  Alcotest.(check bool) "reopen consistent" true
    (reopened_consistent dir ~day:9);
  Alcotest.(check bool) "stale tmp removed" false (Sys.file_exists stale)

let test_checkpoint_corrupt_manifest_falls_back () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_corrupt" @@ fun dir ->
  let cp = dir_instance dir in
  Checkpoint.advance_to cp 9;
  kill cp;
  (* smash the newest commit; the rotated previous checkpoint (day 8)
     must take over *)
  let oc = open_out (Store_dir.manifest_path dir) in
  output_string oc "{ not a manifest";
  close_out oc;
  let cp2, rcv = Checkpoint.reopen ~dir ~store () in
  Alcotest.(check int) "previous checkpoint's day" 8
    rcv.Checkpoint.recovered_day;
  Alcotest.(check int) "frame serves it" 8 (Checkpoint.current_day cp2);
  kill cp2

(* --- kill-and-recover sweeps ----------------------------------------- *)

let check_kill_report (r : Crash_harness.report) =
  if not r.Crash_harness.passed then
    Alcotest.failf "kill sweep failed:@\n%a" Crash_harness.pp_report r;
  Alcotest.(check bool) "has points" true (r.Crash_harness.points <> []);
  Alcotest.(check bool) "torn-tail variant ran" true
    (List.exists (fun p -> p.Crash_harness.torn_tail) r.Crash_harness.points)

let test_kill_sweep_packed_shadow () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_kill" @@ fun dir ->
  check_kill_report
    (Crash_harness.kill_sweep ~scheme:Scheme.Del ~technique:Env.Packed_shadow
       ~w:6 ~n:3 ~day:9 ~dir ())

let test_kill_sweep_write_back () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_kill_wb" @@ fun dir ->
  let icfg =
    {
      Index.default_config with
      Index.cache_blocks = Some 64;
      cache_write_back = true;
    }
  in
  check_kill_report
    (Crash_harness.kill_sweep ~icfg ~scheme:Scheme.Del
       ~technique:Env.Packed_shadow ~w:6 ~n:3 ~day:9 ~dir ())

(* A store that poisons [poison_day]'s batch for every instantiation
   after the first: the twin sees canonical data, every kill replay an
   extra posting, so roll-forward recovery disagrees with the twin and
   the point fails — on purpose, to exercise the failure artifacts. *)
let divergent_store ~poison_day =
  let instances = ref 0 in
  fun day ->
    if day = 1 then incr instances;
    if day = poison_day && !instances > 1 then
      Entry.batch_create ~day
        (Array.init 9 (fun i ->
             {
               Entry.value = 1 + ((day + i) mod 6);
               entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
             }))
    else Crash_harness.default_store day

let test_kill_sweep_failure_keeps_flight () =
  with_recorded_sleeps @@ fun _ ->
  with_dir "rd_kill_fail" @@ fun dir ->
  let r =
    Crash_harness.kill_sweep
      ~store:(divergent_store ~poison_day:7)
      ~scheme:Scheme.Del ~technique:Env.In_place ~w:6 ~n:3 ~day:7 ~dir ()
  in
  Alcotest.(check bool) "sweep fails by construction" false
    r.Crash_harness.passed;
  (* Failing points keep their directories; each must contain a
     validated flight dump of the killed run's last events. *)
  let kept =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> Sys.is_directory (Filename.concat dir n))
  in
  Alcotest.(check bool) "kept artifact dirs" true (kept <> []);
  List.iter
    (fun sub ->
      let f = Filename.concat (Filename.concat dir sub) "flight.jsonl" in
      Alcotest.(check bool) (sub ^ " has flight.jsonl") true
        (Sys.file_exists f);
      match Wave_obs.Sink.validate_flight_file f with
      | Ok n ->
        (* The ring was cleared at the point's start: the dump is the
           killed run's own syscall tail, ending in the injected
           fault. *)
        Alcotest.(check bool) (sub ^ " flight non-empty") true (n > 0)
      | Error e -> Alcotest.failf "%s flight invalid: %s" sub e)
    kept

let test_double_fault_sweep () =
  (* In-place updating always rolls forward, so recovery charges real
     I/O and the second fault has somewhere to land. *)
  let r =
    Crash_harness.sweep_double ~scheme:Scheme.Del ~technique:Env.In_place ~w:6
      ~n:3 ~day:9 ()
  in
  if not r.Crash_harness.dr_passed then
    Alcotest.failf "double-fault sweep failed:@\n%a" Crash_harness.pp_double_report
      r;
  Alcotest.(check bool) "has double points" true
    (r.Crash_harness.dr_points <> [])

let test_double_fault_rollback_vacuous () =
  (* Packed shadow's recovery is a pure roll-back: every pair is
     skipped and the sweep passes vacuously with zero points. *)
  let r =
    Crash_harness.sweep_double ~scheme:Scheme.Del ~technique:Env.Packed_shadow
      ~w:6 ~n:3 ~day:9 ()
  in
  Alcotest.(check bool) "passes" true r.Crash_harness.dr_passed;
  Alcotest.(check bool) "all pairs skipped" true
    (r.Crash_harness.dr_points = [])

let suites =
  [
    ( "disk.io",
      [
        Alcotest.test_case "transient retries with backoff" `Quick
          test_io_transient_retries;
        Alcotest.test_case "giveup after budget" `Quick test_io_transient_giveup;
        Alcotest.test_case "short write makes progress" `Quick
          test_io_short_write_progress;
        Alcotest.test_case "stall" `Quick test_io_stall;
        Alcotest.test_case "torn write visible in file" `Quick
          test_io_torn_write_visible;
        Alcotest.test_case "arm validation" `Quick test_io_arm_validation;
      ] );
    ( "disk.file_backend",
      [
        Alcotest.test_case "roundtrip through reopen" `Quick
          test_file_disk_roundtrip;
        Alcotest.test_case "unwritten extent intact" `Quick
          test_file_disk_unwritten_extent_intact;
        Alcotest.test_case "stale generation detected" `Quick
          test_file_disk_stale_generation_detected;
        Alcotest.test_case "truncated tail detected" `Quick
          test_file_disk_truncated_tail_detected;
        Alcotest.test_case "missing sidecar refused" `Quick
          test_file_disk_missing_sidecar;
      ] );
    ( "disk.fault_queue",
      [
        Alcotest.test_case "fault queue ordering" `Quick test_sim_fault_queue;
        Alcotest.test_case "stall charges and continues" `Quick test_sim_stall;
        Alcotest.test_case "stall validation" `Quick test_sim_stall_validation;
      ] );
    ( "sim.realdisk",
      [
        Alcotest.test_case "file backend bit-identical + transient" `Quick
          test_runner_file_backend_equivalence;
        Alcotest.test_case "stall alert fires" `Quick test_runner_stall_alert;
      ] );
    ( "core.store_dir",
      [
        Alcotest.test_case "syscall kill matrix" `Quick
          test_checkpoint_syscall_kill_matrix;
        Alcotest.test_case "stale tmp cleanup" `Quick
          test_checkpoint_stale_tmp_cleanup;
        Alcotest.test_case "corrupt manifest falls back" `Quick
          test_checkpoint_corrupt_manifest_falls_back;
      ] );
    ( "sim.kill_recover",
      [
        Alcotest.test_case "kill sweep packed shadow" `Quick
          test_kill_sweep_packed_shadow;
        Alcotest.test_case "kill sweep write-back pool" `Quick
          test_kill_sweep_write_back;
        Alcotest.test_case "failing kill sweep keeps flight dumps" `Quick
          test_kill_sweep_failure_keeps_flight;
        Alcotest.test_case "double-fault sweep" `Quick test_double_fault_sweep;
        Alcotest.test_case "double-fault rollback vacuous" `Quick
          test_double_fault_rollback_vacuous;
      ] );
  ]
