(* Tests for the feature extensions: multi-disk parallelism (Section 8
   future work), the legacy no-delete constraint, aggregate scans. *)

open Wave_core
open Wave_sim

let store day =
  Wave_storage.Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Wave_storage.Entry.value = 1 + ((day + i) mod 6);
           entry =
             { Wave_storage.Entry.rid = (day * 100) + i; day; info = i + 1 };
         }))

(* --- Multi-disk ---------------------------------------------------- *)

let test_multidisk_basic () =
  let m = Multi_disk.create ~store ~w:8 ~n:4 ~disks:4 () in
  Alcotest.(check int) "disks" 4 (Multi_disk.n_disks m);
  Alcotest.(check int) "constituents" 4 (Multi_disk.n_constituents m);
  let entries, _ = Multi_disk.scan m in
  Alcotest.(check int) "all window entries" (8 * 8) (List.length entries)

let test_multidisk_parallel_speedup () =
  let m = Multi_disk.create ~store ~w:8 ~n:4 ~disks:4 () in
  let _, t = Multi_disk.scan m in
  Alcotest.(check bool)
    (Printf.sprintf "scan speedup %.2f > 2" (t.Multi_disk.serial /. t.Multi_disk.parallel))
    true
    (t.Multi_disk.serial > 2.0 *. t.Multi_disk.parallel);
  (* With a single disk, serial = parallel. *)
  let m1 = Multi_disk.create ~store ~w:8 ~n:4 ~disks:1 () in
  let _, t1 = Multi_disk.scan m1 in
  Alcotest.(check (float 1e-9)) "one disk: no speedup" t1.Multi_disk.serial
    t1.Multi_disk.parallel

let test_multidisk_advance_isolated () =
  let m = Multi_disk.create ~store ~w:8 ~n:4 ~disks:4 () in
  let t = Multi_disk.advance m in
  (* Daily maintenance touches one constituent, hence one disk: the
     parallel elapsed equals the serial. *)
  Alcotest.(check (float 1e-9)) "maintenance on one disk" t.Multi_disk.serial
    t.Multi_disk.parallel;
  Alcotest.(check int) "day advanced" 9 (Multi_disk.current_day m)

let test_multidisk_window_maintained () =
  let m = Multi_disk.create ~store ~w:6 ~n:3 ~disks:2 () in
  for _ = 1 to 12 do
    ignore (Multi_disk.advance m)
  done;
  let entries, _ = Multi_disk.scan m in
  let days =
    List.sort_uniq compare
      (List.map (fun (e : Wave_storage.Entry.t) -> e.Wave_storage.Entry.day) entries)
  in
  Alcotest.(check (list int)) "last 6 days" [ 13; 14; 15; 16; 17; 18 ] days

let test_multidisk_validation () =
  Alcotest.check_raises "zero disks"
    (Invalid_argument "Multi_disk.create: need at least one disk") (fun () ->
      ignore (Multi_disk.create ~store ~w:4 ~n:2 ~disks:0 ()))

let test_multidisk_speedup_table () =
  let out = Multi_disk.speedup_table ~store ~w:8 ~n:4 ~disks:[ 1; 2; 4 ] in
  Alcotest.(check bool) "has rows" true (String.length out > 100)

let test_multidisk_shared_pool () =
  let icfg =
    {
      Wave_storage.Index.default_config with
      Wave_storage.Index.cache_blocks = Some 4;
      cache_readahead = 0;
    }
  in
  let m =
    Multi_disk.create ~icfg ~shared_pool:true ~store ~w:8 ~n:4 ~disks:4 ()
  in
  Alcotest.(check int) "one stats slice per arm" 4
    (List.length (Multi_disk.pool_stats m));
  let misses () =
    List.fold_left
      (fun acc (_, s) -> acc + s.Wave_cache.Cache.misses)
      0 (Multi_disk.pool_stats m)
  in
  ignore (Multi_disk.scan m);
  let m1 = misses () in
  (* Four arms' working sets cannot share four frames: each arm's scan
     evicts the previous arms' blocks, so a re-scan misses again —
     the cross-arm eviction pressure a global buffer manager trades
     for its single allocation knob. *)
  ignore (Multi_disk.scan m);
  let m2 = misses () in
  Alcotest.(check bool)
    (Printf.sprintf "re-scan still misses under pressure (%d -> %d)" m1 m2)
    true (m2 > m1);
  List.iter
    (fun (arm, s) ->
      Alcotest.(check bool)
        (Printf.sprintf "arm %d slice saw its own traffic" arm)
        true
        (s.Wave_cache.Cache.hits + s.Wave_cache.Cache.misses > 0))
    (Multi_disk.pool_stats m)

let test_multidisk_shared_pool_needs_frames () =
  Alcotest.check_raises "shared pool without cache_blocks"
    (Invalid_argument "Multi_disk.create: shared_pool needs cache_blocks")
    (fun () ->
      ignore (Multi_disk.create ~shared_pool:true ~store ~w:4 ~n:2 ~disks:2 ()))

(* --- Legacy no-delete constraint ----------------------------------- *)

let legacy_env technique =
  Env.create ~store ~technique ~allow_deletes:false ~w:6 ~n:2 ()

let test_legacy_del_rejected () =
  List.iter
    (fun technique ->
      let s = Scheme.start Scheme.Del (legacy_env technique) in
      Alcotest.(check bool)
        (Printf.sprintf "DEL %s raises" (Env.technique_name technique))
        true
        (try
           Scheme.transition s;
           false
         with Update.Deletes_not_supported _ -> true))
    [ Env.In_place; Env.Simple_shadow ]

let test_legacy_del_packed_ok () =
  (* Packed shadowing expires entries inside the smart copy: no
     deletion code needed, so DEL is legal. *)
  let s = Scheme.start Scheme.Del (legacy_env Env.Packed_shadow) in
  for _ = 1 to 8 do
    Scheme.transition s;
    Scheme.check_window_invariant s
  done

let test_legacy_other_schemes_ok () =
  (* REINDEX/REINDEX+/REINDEX++/WATA*/RATA* never call DeleteFromIndex:
     they rebuild or throw away. *)
  List.iter
    (fun kind ->
      List.iter
        (fun technique ->
          let s = Scheme.start kind (legacy_env technique) in
          for _ = 1 to 8 do
            Scheme.transition s;
            Scheme.check_window_invariant s
          done)
        [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
    [ Scheme.Reindex; Scheme.Reindex_plus; Scheme.Reindex_pp; Scheme.Wata_star;
      Scheme.Rata_star ]

(* --- Aggregates ----------------------------------------------------- *)

let test_aggregates () =
  let env = Env.create ~store ~w:6 ~n:2 () in
  let s = Scheme.start Scheme.Del env in
  Scheme.advance_to s 10;
  let frame = Scheme.frame s in
  (* each day contributes infos 1..8 (sum 36, min 1, max 8) *)
  Alcotest.(check (option int)) "count" (Some 48)
    (Frame.timed_aggregate frame ~t1:5 ~t2:10 ~op:Frame.Count);
  Alcotest.(check (option int)) "sum" (Some (36 * 6))
    (Frame.timed_aggregate frame ~t1:5 ~t2:10 ~op:Frame.Sum_info);
  Alcotest.(check (option int)) "min" (Some 1)
    (Frame.timed_aggregate frame ~t1:5 ~t2:10 ~op:Frame.Min_info);
  Alcotest.(check (option int)) "max" (Some 8)
    (Frame.timed_aggregate frame ~t1:5 ~t2:10 ~op:Frame.Max_info);
  (* empty range *)
  Alcotest.(check (option int)) "empty count" (Some 0)
    (Frame.timed_aggregate frame ~t1:100 ~t2:200 ~op:Frame.Count);
  Alcotest.(check (option int)) "empty min" None
    (Frame.timed_aggregate frame ~t1:100 ~t2:200 ~op:Frame.Min_info)

let test_aggregate_matches_scan () =
  let env = Env.create ~store ~w:6 ~n:3 () in
  let s = Scheme.start Scheme.Wata_star env in
  Scheme.advance_to s 12;
  let frame = Scheme.frame s in
  let entries = Frame.timed_segment_scan frame ~t1:7 ~t2:12 in
  let sum =
    List.fold_left
      (fun acc (e : Wave_storage.Entry.t) -> acc + e.Wave_storage.Entry.info)
      0 entries
  in
  Alcotest.(check (option int)) "sum consistent" (Some sum)
    (Frame.timed_aggregate frame ~t1:7 ~t2:12 ~op:Frame.Sum_info)

(* --- Crash consistency (failure injection) ------------------------- *)

(* A mid-transition disk fault under shadow techniques must leave the
   visible wave untouched (queries keep answering the old window) and a
   retry after recovery must succeed — the swap is atomic.  This is the
   paper's argument for shadowing made executable. *)
let sorted_scan frame =
  List.sort Wave_storage.Entry.compare (Frame.segment_scan frame)

let crash_consistency scheme technique () =
  let env = Env.create ~store ~technique ~w:6 ~n:2 () in
  let s = Scheme.start scheme env in
  for _ = 1 to 4 do
    Scheme.transition s
  done;
  let before_scan = sorted_scan (Scheme.frame s) in
  let before_day = Scheme.current_day s in
  (* Fault on the first seek of the next maintenance step. *)
  Wave_disk.Disk.set_fault env.Env.disk ~after_seeks:1;
  (try
     Scheme.transition s;
     Alcotest.fail "expected injected fault"
   with Wave_disk.Disk.Disk_error "injected fault" -> ());
  Wave_disk.Disk.clear_fault env.Env.disk;
  (* Old window still served, structures intact. *)
  Alcotest.(check int) "day unchanged" before_day (Scheme.current_day s);
  Frame.validate (Scheme.frame s);
  Scheme.check_window_invariant s;
  Alcotest.(check bool) "old window still answers" true
    (sorted_scan (Scheme.frame s) = before_scan);
  (* Recovery: the retry completes and advances the window. *)
  Scheme.transition s;
  Alcotest.(check int) "day advanced on retry" (before_day + 1)
    (Scheme.current_day s);
  Scheme.check_window_invariant s;
  Frame.validate (Scheme.frame s)

let crash_cases =
  [
    Alcotest.test_case "DEL / simple shadow" `Quick
      (crash_consistency Scheme.Del Env.Simple_shadow);
    Alcotest.test_case "DEL / packed shadow" `Quick
      (crash_consistency Scheme.Del Env.Packed_shadow);
    Alcotest.test_case "REINDEX (rebuild is naturally atomic)" `Quick
      (crash_consistency Scheme.Reindex Env.In_place);
    Alcotest.test_case "WATA* / simple shadow" `Quick
      (crash_consistency Scheme.Wata_star Env.Simple_shadow);
  ]

let test_fault_arming () =
  let d = Wave_disk.Disk.create () in
  Alcotest.(check bool) "disarmed" false (Wave_disk.Disk.fault_armed d);
  Wave_disk.Disk.set_fault d ~after_seeks:3;
  Alcotest.(check bool) "armed" true (Wave_disk.Disk.fault_armed d);
  Wave_disk.Disk.clear_fault d;
  Alcotest.(check bool) "cleared" false (Wave_disk.Disk.fault_armed d)

let suites =
  [
    ( "ext.multidisk",
      [
        Alcotest.test_case "basic" `Quick test_multidisk_basic;
        Alcotest.test_case "parallel speedup" `Quick test_multidisk_parallel_speedup;
        Alcotest.test_case "advance isolated" `Quick test_multidisk_advance_isolated;
        Alcotest.test_case "window maintained" `Quick test_multidisk_window_maintained;
        Alcotest.test_case "validation" `Quick test_multidisk_validation;
        Alcotest.test_case "speedup table" `Quick test_multidisk_speedup_table;
        Alcotest.test_case "shared pool" `Quick test_multidisk_shared_pool;
        Alcotest.test_case "shared pool needs frames" `Quick
          test_multidisk_shared_pool_needs_frames;
      ] );
    ( "ext.legacy",
      [
        Alcotest.test_case "DEL rejected" `Quick test_legacy_del_rejected;
        Alcotest.test_case "DEL packed shadow ok" `Quick test_legacy_del_packed_ok;
        Alcotest.test_case "other schemes ok" `Quick test_legacy_other_schemes_ok;
      ] );
    ( "ext.aggregates",
      [
        Alcotest.test_case "aggregates" `Quick test_aggregates;
        Alcotest.test_case "matches scan" `Quick test_aggregate_matches_scan;
      ] );
    ( "ext.crash",
      crash_cases
      @ [ Alcotest.test_case "fault arming" `Quick test_fault_arming ] );
  ]

