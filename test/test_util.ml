(* Tests for the wave_util substrate: PRNG determinism and uniformity,
   Zipf sampler correctness, statistics helpers, table rendering. *)

open Wave_util

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng                                                               *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.int64 a) (Prng.int64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if not (Int64.equal (Prng.int64 a) (Prng.int64 b)) then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_prng_copy_replays () =
  let a = Prng.create 7 in
  ignore (Prng.int64 a);
  let b = Prng.copy a in
  let xs = List.init 20 (fun _ -> Prng.int64 a) in
  let ys = List.init 20 (fun _ -> Prng.int64 b) in
  Alcotest.(check (list int64)) "copy replays" xs ys

let test_prng_split_independent () =
  let a = Prng.create 9 in
  let b = Prng.split a in
  let xs = Array.init 64 (fun _ -> Prng.int64 a) in
  let ys = Array.init 64 (fun _ -> Prng.int64 b) in
  let equal = Array.for_all2 Int64.equal xs ys in
  Alcotest.(check bool) "split stream differs" false equal

let test_prng_int_bounds () =
  let t = Prng.create 3 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Prng.int out of bounds"
  done

let test_prng_int_in_bounds () =
  let t = Prng.create 4 in
  for _ = 1 to 10_000 do
    let v = Prng.int_in t (-5) 5 in
    if v < -5 || v > 5 then Alcotest.fail "Prng.int_in out of bounds"
  done

let test_prng_float_bounds () =
  let t = Prng.create 5 in
  for _ = 1 to 10_000 do
    let v = Prng.float t 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.fail "Prng.float out of bounds"
  done

let test_prng_uniformity () =
  (* Chi-square over 16 cells, 160k draws: expect statistic well below the
     critical value ~37 (p=0.001, 15 dof) for a healthy generator. *)
  let t = Prng.create 123 in
  let counts = Array.make 16 0 in
  for _ = 1 to 160_000 do
    let v = Prng.int t 16 in
    counts.(v) <- counts.(v) + 1
  done;
  let chi = Stats.chi_square_uniform ~observed:counts in
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f < 37" chi)
    true (chi < 37.0)

let test_prng_shuffle_permutation () =
  let t = Prng.create 11 in
  let a = Array.init 50 (fun i -> i) in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_prng_gaussian_moments () =
  let t = Prng.create 13 in
  let xs = Array.init 50_000 (fun _ -> Prng.gaussian t ~mean:3.0 ~stddev:2.0) in
  let s = Stats.summarize xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (s.Stats.mean -. 3.0) < 0.05);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (s.Stats.stddev -. 2.0) < 0.05)

let test_prng_exponential_mean () =
  let t = Prng.create 17 in
  let xs = Array.init 50_000 (fun _ -> Prng.exponential t ~rate:0.5) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 2" true (Float.abs (m -. 2.0) < 0.1)

(* ------------------------------------------------------------------ *)
(* Zipf                                                               *)
(* ------------------------------------------------------------------ *)

let test_zipf_pmf_sums_to_one () =
  let z = Zipf.create ~n:1000 ~s:1.1 in
  let total = ref 0.0 in
  for k = 1 to 1000 do
    total := !total +. Zipf.pmf z k
  done;
  check_float "pmf sums to 1" 1.0 !total

let test_zipf_sample_in_range () =
  let z = Zipf.create ~n:100 ~s:1.0 in
  let t = Prng.create 21 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z t in
    if k < 1 || k > 100 then Alcotest.fail "Zipf sample out of range"
  done

let test_zipf_rank_ordering () =
  (* Empirical frequency of rank 1 should exceed rank 10 which should
     exceed rank 100 under s = 1. *)
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let t = Prng.create 23 in
  let counts = Array.make 1001 0 in
  for _ = 1 to 200_000 do
    let k = Zipf.sample z t in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank1 > rank10" true (counts.(1) > counts.(10));
  Alcotest.(check bool) "rank10 > rank100" true (counts.(10) > counts.(100))

let test_zipf_matches_pmf () =
  let z = Zipf.create ~n:50 ~s:1.2 in
  let t = Prng.create 29 in
  let draws = 500_000 in
  let counts = Array.make 51 0 in
  for _ = 1 to draws do
    let k = Zipf.sample z t in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 1 to 10 do
    let expected = Zipf.pmf z k in
    let got = float_of_int counts.(k) /. float_of_int draws in
    if Float.abs (got -. expected) > 0.01 then
      Alcotest.failf "rank %d: empirical %.4f vs pmf %.4f" k got expected
  done

let test_zipf_uniform_degenerate () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for k = 1 to 10 do
    check_float "uniform pmf" 0.1 (Zipf.pmf z k)
  done

let test_zipf_expected_distinct_monotone () =
  let z = Zipf.create ~n:1000 ~s:1.0 in
  let d1 = Zipf.expected_distinct z 100 in
  let d2 = Zipf.expected_distinct z 1000 in
  let d3 = Zipf.expected_distinct z 10_000 in
  Alcotest.(check bool) "monotone in draws" true (d1 < d2 && d2 < d3);
  Alcotest.(check bool) "bounded by n" true (d3 <= 1000.0)

(* ------------------------------------------------------------------ *)
(* Stats                                                              *)
(* ------------------------------------------------------------------ *)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 s.Stats.mean;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "total" 10.0 s.Stats.total;
  check_float "stddev" (sqrt 1.25) s.Stats.stddev;
  Alcotest.(check int) "count" 4 s.Stats.count

let test_stats_empty_raises () =
  Alcotest.check_raises "empty summarize"
    (Invalid_argument "Stats.summarize: empty array") (fun () ->
      ignore (Stats.summarize [||]))

let test_stats_percentile () =
  let xs = [| 10.0; 20.0; 30.0; 40.0; 50.0 |] in
  check_float "p0" 10.0 (Stats.percentile xs 0.0);
  check_float "p50" 30.0 (Stats.percentile xs 50.0);
  check_float "p100" 50.0 (Stats.percentile xs 100.0);
  check_float "p25" 20.0 (Stats.percentile xs 25.0);
  check_float "median" 30.0 (Stats.median xs)

let test_stats_percentile_interpolates () =
  let xs = [| 0.0; 10.0 |] in
  check_float "p50 interpolated" 5.0 (Stats.percentile xs 50.0)

let test_stats_histogram () =
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0; 5.0; 6.0; 7.0; 8.0; 9.0 |] in
  let h = Stats.histogram ~bins:5 xs in
  Alcotest.(check int) "bins" 5 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all samples binned" 10 total

let test_stats_histogram_degenerate () =
  (* Empty input: no bins rather than a confusing summarize error. *)
  Alcotest.(check int) "empty input -> no bins" 0
    (Array.length (Stats.histogram ~bins:4 [||]));
  (* Single element: range collapses; everything lands in the first bin. *)
  let h = Stats.histogram ~bins:3 [| 42.0 |] in
  Alcotest.(check int) "single: bins" 3 (Array.length h);
  let _, _, c0 = h.(0) in
  Alcotest.(check int) "single: first bin holds it" 1 c0;
  (* All-equal input: same collapse, all samples in the first bin. *)
  let h = Stats.histogram ~bins:4 [| 7.0; 7.0; 7.0; 7.0; 7.0 |] in
  let _, _, c0 = h.(0) in
  Alcotest.(check int) "all-equal: first bin holds all" 5 c0;
  Array.iteri
    (fun i (_, _, c) -> if i > 0 then Alcotest.(check int) "other bins empty" 0 c)
    h;
  Alcotest.check_raises "bins must be positive"
    (Invalid_argument "Stats.histogram: bins must be positive") (fun () ->
      ignore (Stats.histogram ~bins:0 [| 1.0 |]))

let test_stats_percentile_degenerate () =
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.percentile: empty array") (fun () ->
      ignore (Stats.percentile [||] 50.0));
  (* Single element: every percentile is that element. *)
  check_float "single p0" 3.5 (Stats.percentile [| 3.5 |] 0.0);
  check_float "single p50" 3.5 (Stats.percentile [| 3.5 |] 50.0);
  check_float "single p100" 3.5 (Stats.percentile [| 3.5 |] 100.0);
  (* All-equal: interpolation between equal ranks stays put. *)
  let xs = [| 2.0; 2.0; 2.0; 2.0 |] in
  check_float "all-equal p37" 2.0 (Stats.percentile xs 37.0);
  check_float "all-equal p99" 2.0 (Stats.percentile xs 99.0);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile xs 101.0))

let test_stats_ratio () =
  check_float "ratio" 0.75 (Stats.ratio 3.0 4.0);
  check_float "zero denominator -> 0" 0.0 (Stats.ratio 5.0 0.0);
  check_float "zero over zero -> 0" 0.0 (Stats.ratio 0.0 0.0);
  check_float "negative numerator passes through" (-2.0) (Stats.ratio (-4.0) 2.0);
  check_float "safe_div is ratio" (Stats.ratio 9.0 2.0) (Stats.safe_div 9.0 2.0)

let test_stats_regression () =
  let pts = Array.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let slope, intercept = Stats.linear_regression pts in
  check_float "slope" 3.0 slope;
  check_float "intercept" 1.0 intercept

let test_stats_ratio_series () =
  let r = Stats.ratio_series [| 2.0; 9.0 |] [| 1.0; 3.0 |] in
  Alcotest.(check (array (float 1e-9))) "ratios" [| 2.0; 3.0 |] r

(* ------------------------------------------------------------------ *)
(* Table_print                                                        *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let out =
    Table_print.render ~header:[ "a"; "b" ]
      ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length out > 0 && String.sub out 0 1 = "a");
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + rule + 2 rows (+ trailing)" 5 (List.length lines)

let test_table_arity_mismatch () =
  Alcotest.check_raises "row arity"
    (Invalid_argument "Table_print.render: row arity mismatch") (fun () ->
      ignore (Table_print.render ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let test_series_render () =
  let out =
    Table_print.render_series ~title:"fig" ~x_label:"n"
      ~series:
        [ ("s1", [ (1.0, 2.0); (2.0, 4.0) ]); ("s2", [ (1.0, 3.0); (2.0, 6.0) ]) ]
  in
  Alcotest.(check bool) "has title" true
    (String.length out > 5 && String.sub out 0 5 = "# fig")

let test_series_grid_mismatch () =
  Alcotest.check_raises "grid mismatch"
    (Invalid_argument
       "Table_print.render_series: series \"s2\" has a different x grid")
    (fun () ->
      ignore
        (Table_print.render_series ~title:"t" ~x_label:"x"
           ~series:[ ("s1", [ (1.0, 2.0) ]); ("s2", [ (3.0, 4.0) ]) ]))

let test_float_cell () =
  Alcotest.(check string) "integer" "3" (Table_print.float_cell 3.0);
  Alcotest.(check string) "fraction" "3.25" (Table_print.float_cell 3.25)

(* ------------------------------------------------------------------ *)
(* Property tests                                                     *)
(* ------------------------------------------------------------------ *)

let prop_prng_int_in_range =
  QCheck2.Test.make ~name:"prng int always in [0, bound)" ~count:500
    QCheck2.Gen.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let t = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Prng.int t bound in
        if v < 0 || v >= bound then ok := false
      done;
      !ok)

let prop_zipf_sample_in_range =
  QCheck2.Test.make ~name:"zipf sample in [1, n]" ~count:200
    QCheck2.Gen.(triple small_int (int_range 1 500) (float_range 0.0 2.5))
    (fun (seed, n, s) ->
      let z = Zipf.create ~n ~s in
      let t = Prng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let k = Zipf.sample z t in
        if k < 1 || k > n then ok := false
      done;
      !ok)

let prop_percentile_bounded =
  QCheck2.Test.make ~name:"percentile within [min, max]" ~count:300
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 50) (float_range (-1000.0) 1000.0))
        (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile xs p in
      let s = Stats.summarize xs in
      v >= s.Stats.min -. 1e-9 && v <= s.Stats.max +. 1e-9)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let suites =
  [
    ( "util.prng",
      [
        Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
        Alcotest.test_case "copy replays" `Quick test_prng_copy_replays;
        Alcotest.test_case "split independent" `Quick test_prng_split_independent;
        Alcotest.test_case "int bounds" `Quick test_prng_int_bounds;
        Alcotest.test_case "int_in bounds" `Quick test_prng_int_in_bounds;
        Alcotest.test_case "float bounds" `Quick test_prng_float_bounds;
        Alcotest.test_case "uniformity" `Quick test_prng_uniformity;
        Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
        Alcotest.test_case "gaussian moments" `Slow test_prng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
      ]
      @ qcheck [ prop_prng_int_in_range ] );
    ( "util.zipf",
      [
        Alcotest.test_case "pmf sums to one" `Quick test_zipf_pmf_sums_to_one;
        Alcotest.test_case "sample in range" `Quick test_zipf_sample_in_range;
        Alcotest.test_case "rank ordering" `Slow test_zipf_rank_ordering;
        Alcotest.test_case "matches pmf" `Slow test_zipf_matches_pmf;
        Alcotest.test_case "uniform degenerate" `Quick test_zipf_uniform_degenerate;
        Alcotest.test_case "expected distinct monotone" `Quick
          test_zipf_expected_distinct_monotone;
      ]
      @ qcheck [ prop_zipf_sample_in_range ] );
    ( "util.stats",
      [
        Alcotest.test_case "summary" `Quick test_stats_summary;
        Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "percentile interpolates" `Quick
          test_stats_percentile_interpolates;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "histogram degenerate" `Quick
          test_stats_histogram_degenerate;
        Alcotest.test_case "ratio / safe_div" `Quick test_stats_ratio;
        Alcotest.test_case "percentile degenerate" `Quick
          test_stats_percentile_degenerate;
        Alcotest.test_case "regression" `Quick test_stats_regression;
        Alcotest.test_case "ratio series" `Quick test_stats_ratio_series;
      ]
      @ qcheck [ prop_percentile_bounded ] );
    ( "util.table_print",
      [
        Alcotest.test_case "render" `Quick test_table_render;
        Alcotest.test_case "arity mismatch" `Quick test_table_arity_mismatch;
        Alcotest.test_case "series render" `Quick test_series_render;
        Alcotest.test_case "series grid mismatch" `Quick test_series_grid_mismatch;
        Alcotest.test_case "float cell" `Quick test_float_cell;
      ] );
  ]
