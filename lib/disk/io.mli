(** Syscall shim for the real-file disk backend.

    Every syscall the file backend performs — positioned reads and
    writes of the block file, [fsync], and the atomic-rename commit of
    sidecar metadata — goes through this module, which wraps it in:

    - {e fault injection}: an armed plan makes the k-th next call of a
      class fail-stop, tear (write only a prefix of the payload before
      dying), return transient errors ([EINTR]-class, short transfers,
      transient [EIO]), or stall for a wall-clock delay;
    - {e bounded retry with backoff}: transient failures are retried up
      to {!retry_policy}[.max_retries] times with exponentially growing
      sleeps, after which the shim gives up and raises {!Io_error};
    - {e metrics}: every call, byte, retry, giveup and stall is counted
      in {!Wave_obs.Metrics} under the [disk.file.*] names below, and
      per-call wall seconds land in the [disk.file.io_wall_s]
      histogram, so real I/O time is visible next to the model clock;
    - {e flight recording}: every outcome also lands in
      {!Wave_obs.Recorder} as an [io] event — ["ok"] on a completed
      call (with the bytes transferred), ["retry"]/["giveup"] from the
      retry loop, and ["fault"]/["stall"]/["torn"] when an armed plan
      fires — so a crash dump shows the exact syscall tail that led to
      the failure.

    Like the tracer, the shim is process-global: exactly one fault plan
    is armed at a time and one retry policy is active.  This mirrors
    {!Disk.arm_fault} (last arm wins) and keeps the crash harness
    simple.

    Metric names: [disk.file.preads], [disk.file.pwrites],
    [disk.file.fsyncs], [disk.file.renames], [disk.file.bytes_read],
    [disk.file.bytes_written], [disk.file.retries],
    [disk.file.giveups], [disk.file.stalls], histogram
    [disk.file.io_wall_s]. *)

exception Io_error of string
(** Raised on injected fail-stop/torn faults, on transient errors that
    exhausted their retry budget, and on real permanent syscall
    failures.  {!Disk.Disk_error} is a rebinding of this exception, so
    code that catches one catches the other. *)

type syscall = Pread | Pwrite | Fsync | Rename

val syscall_name : syscall -> string

type transient =
  | Eintr  (** the call fails with [EINTR] (interrupted, no progress) *)
  | Eio  (** the call fails with a {e transient} [EIO] *)
  | Short  (** the call transfers only half of the requested bytes *)

type fault =
  | Fail_stop  (** the call raises; never retried (permanent) *)
  | Torn_write of float
      (** [Pwrite] only: physically write this fraction of the payload
          (rounded down to whole bytes), then raise — the classic torn
          write, visible in the file after the crash *)
  | Transient of transient * int
      (** the next [k] attempts of the targeted call fail transiently;
          the retry loop then succeeds (or gives up if [k] exceeds the
          budget) *)
  | Stall of float  (** sleep this many wall seconds, then succeed *)

(** {1 Retry policy} *)

type retry_policy = {
  max_retries : int;  (** retries after the first attempt, >= 0 *)
  backoff_s : float;  (** sleep before the first retry, seconds *)
  backoff_mult : float;  (** growth factor per retry, >= 1.0 *)
  max_backoff_s : float;  (** ceiling on a single sleep *)
}

val default_retry_policy : retry_policy
(** 4 retries, 1 ms first backoff, doubling, capped at 50 ms. *)

val set_retry_policy : retry_policy -> unit
(** Raises [Invalid_argument] on a negative budget, non-positive
    backoff, or multiplier below 1. *)

val retry_policy : unit -> retry_policy

val set_sleeper : (float -> unit) -> unit
(** Replace the backoff/stall sleep function (default
    [Unix.sleepf]).  Tests install a recorder so retry schedules are
    asserted without real delays. *)

val default_sleeper : float -> unit

(** {1 Fault arming} *)

val arm : ?at:int -> syscall -> fault -> unit
(** Arm a plan: the [at]-th next call (1-based, default 1) of the class
    is hit by the fault.  Last arm wins.  Raises [Invalid_argument]
    when [at < 1], when [Torn_write] targets anything but [Pwrite], on
    a fraction outside [0, 1], or on a negative stall/transient
    count. *)

val clear : unit -> unit
(** Disarm.  Idempotent. *)

val armed : unit -> (syscall * fault * int) option
(** The armed plan with calls remaining before it fires. *)

(** {1 Wrapped syscalls}

    Reads and writes are {e exact}: they loop until the whole buffer is
    transferred, retrying transient errors under the policy, and raise
    {!Io_error} otherwise.  A read that hits end-of-file before filling
    the buffer raises immediately (truncation is permanent, not
    transient). *)

val pread : Unix.file_descr -> bytes -> off:int -> unit
val pwrite : Unix.file_descr -> bytes -> off:int -> unit
val fsync : Unix.file_descr -> unit
val rename : string -> string -> unit
