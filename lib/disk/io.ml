exception Io_error of string

type syscall = Pread | Pwrite | Fsync | Rename

let syscall_name = function
  | Pread -> "pread"
  | Pwrite -> "pwrite"
  | Fsync -> "fsync"
  | Rename -> "rename"

type transient = Eintr | Eio | Short

type fault =
  | Fail_stop
  | Torn_write of float
  | Transient of transient * int
  | Stall of float

type retry_policy = {
  max_retries : int;
  backoff_s : float;
  backoff_mult : float;
  max_backoff_s : float;
}

let default_retry_policy =
  { max_retries = 4; backoff_s = 1e-3; backoff_mult = 2.0; max_backoff_s = 5e-2 }

let policy = ref default_retry_policy

let set_retry_policy p =
  if p.max_retries < 0 then invalid_arg "Io.set_retry_policy: max_retries < 0";
  if p.backoff_s <= 0.0 then invalid_arg "Io.set_retry_policy: backoff_s <= 0";
  if p.backoff_mult < 1.0 then invalid_arg "Io.set_retry_policy: backoff_mult < 1";
  if p.max_backoff_s < p.backoff_s then
    invalid_arg "Io.set_retry_policy: max_backoff_s < backoff_s";
  policy := p

let retry_policy () = !policy

let default_sleeper = Unix.sleepf
let sleeper = ref default_sleeper
let set_sleeper f = sleeper := f

(* --- metrics --------------------------------------------------------- *)

module M = Wave_obs.Metrics
module R = Wave_obs.Recorder

let m_preads = M.counter "disk.file.preads"
let m_pwrites = M.counter "disk.file.pwrites"
let m_fsyncs = M.counter "disk.file.fsyncs"
let m_renames = M.counter "disk.file.renames"
let m_bytes_read = M.counter "disk.file.bytes_read"
let m_bytes_written = M.counter "disk.file.bytes_written"
let m_retries = M.counter "disk.file.retries"
let m_giveups = M.counter "disk.file.giveups"
let m_stalls = M.counter "disk.file.stalls"
let m_wall = M.histogram "disk.file.io_wall_s"

(* --- fault plan ------------------------------------------------------ *)

type plan = { target : syscall; fault : fault; mutable countdown : int }

let armed_plan : plan option ref = ref None

let arm ?(at = 1) target fault =
  if at < 1 then invalid_arg "Io.arm: need at >= 1";
  (match fault with
  | Torn_write f ->
    if target <> Pwrite then invalid_arg "Io.arm: torn fault targets pwrite";
    if f < 0.0 || f > 1.0 then invalid_arg "Io.arm: torn fraction outside [0,1]"
  | Transient (_, k) -> if k < 0 then invalid_arg "Io.arm: negative transient count"
  | Stall s -> if s < 0.0 then invalid_arg "Io.arm: negative stall"
  | Fail_stop -> ());
  armed_plan := Some { target; fault; countdown = at }

let clear () = armed_plan := None

let armed () =
  match !armed_plan with
  | None -> None
  | Some p -> Some (p.target, p.fault, p.countdown)

(* An injected condition for the duration of one wrapped call: the plan
   fired on call entry and is consumed (disarmed); [injected] then
   feeds the call's attempt loop. *)
type injection = No_injection | Inject_transient of transient * int ref

let fire_plan target =
  match !armed_plan with
  | Some p when p.target = target ->
    p.countdown <- p.countdown - 1;
    if p.countdown > 0 then No_injection
    else begin
      armed_plan := None;
      match p.fault with
      | Fail_stop ->
        R.record_io ~syscall:(syscall_name target) ~outcome:"fault" ~bytes:0;
        raise (Io_error (Printf.sprintf "injected I/O fault: %s" (syscall_name target)))
      | Stall s ->
        M.inc m_stalls;
        R.record_io ~syscall:(syscall_name target) ~outcome:"stall" ~bytes:0;
        !sleeper s;
        No_injection
      | Transient (kind, k) -> Inject_transient (kind, ref k)
      | Torn_write _ ->
        (* handled by the pwrite path, which needs the payload *)
        armed_plan := Some p;
        No_injection
    end
  | _ -> No_injection

(* The torn-write plan is consumed by pwrite itself (it must write a
   prefix of this very payload before dying). *)
let fire_torn_write () =
  match !armed_plan with
  | Some { target = Pwrite; fault = Torn_write frac; countdown } ->
    if countdown > 1 then begin
      (match !armed_plan with Some p -> p.countdown <- countdown - 1 | None -> ());
      None
    end
    else begin
      armed_plan := None;
      Some frac
    end
  | _ -> None

(* --- retry loop ------------------------------------------------------ *)

type attempt = Done of int | Again of string  (* bytes moved | transient *)

let with_wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  M.observe m_wall (Unix.gettimeofday () -. t0);
  r

(* Run [attempt] until the whole [len] is transferred, retrying
   transient conditions (injected or real EINTR/EAGAIN/EIO) under the
   policy.  [attempt done_so_far] moves some bytes and returns how
   many, or signals a transient failure. *)
let retry_exact ~what ~len attempt =
  let p = !policy in
  let rec go moved retries backoff =
    let outcome =
      match attempt moved with
      | a -> a
      | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) ->
        Again "EINTR"
      | exception Unix.Unix_error (Unix.EIO, _, _) -> Again "EIO"
      | exception Unix.Unix_error (e, _, _) ->
        raise (Io_error (Printf.sprintf "%s: %s" what (Unix.error_message e)))
    in
    match outcome with
    | Done n when moved + n >= len -> ()
    | Done n when n > 0 ->
      (* short transfer with progress: keep going, no backoff *)
      go (moved + n) retries backoff
    | Done _ | Again _ ->
      let reason = match outcome with Again r -> r | Done _ -> "short transfer" in
      if retries >= p.max_retries then begin
        M.inc m_giveups;
        R.record_io ~syscall:what ~outcome:"giveup" ~bytes:moved;
        raise
          (Io_error
             (Printf.sprintf "%s: giving up after %d retries (%s)" what retries
                reason))
      end
      else begin
        M.inc m_retries;
        R.record_io ~syscall:what ~outcome:"retry" ~bytes:moved;
        !sleeper backoff;
        go moved (retries + 1) (Float.min (backoff *. p.backoff_mult) p.max_backoff_s)
      end
  in
  go 0 0 p.backoff_s

(* --- wrapped syscalls ------------------------------------------------ *)

let pread fd buf ~off =
  let len = Bytes.length buf in
  let injection = fire_plan Pread in
  M.inc m_preads;
  with_wall @@ fun () ->
  retry_exact ~what:"pread" ~len (fun moved ->
      match injection with
      | Inject_transient (Eintr, k) when !k > 0 ->
        decr k;
        Again "injected EINTR"
      | Inject_transient (Eio, k) when !k > 0 ->
        decr k;
        Again "injected EIO"
      | Inject_transient (Short, k) when !k > 0 ->
        decr k;
        let want = (len - moved + 1) / 2 in
        ignore (Unix.lseek fd (off + moved) Unix.SEEK_SET);
        let n = Unix.read fd buf moved want in
        if n = 0 then raise (Io_error "pread: unexpected end of file");
        M.inc ~by:(float_of_int n) m_bytes_read;
        (* report no progress so the short transfer is retried/backed off *)
        Again "injected short read"
      | _ ->
        ignore (Unix.lseek fd (off + moved) Unix.SEEK_SET);
        let n = Unix.read fd buf moved (len - moved) in
        if n = 0 then raise (Io_error "pread: unexpected end of file");
        M.inc ~by:(float_of_int n) m_bytes_read;
        Done n);
  R.record_io ~syscall:"pread" ~outcome:"ok" ~bytes:len

let pwrite fd buf ~off =
  let len = Bytes.length buf in
  (match fire_torn_write () with
  | Some frac ->
    let torn = int_of_float (frac *. float_of_int len) in
    M.inc m_pwrites;
    if torn > 0 then begin
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let n = Unix.write fd buf 0 torn in
      M.inc ~by:(float_of_int n) m_bytes_written
    end;
    R.record_io ~syscall:"pwrite" ~outcome:"torn" ~bytes:torn;
    raise (Io_error "injected torn write")
  | None -> ());
  let injection = fire_plan Pwrite in
  M.inc m_pwrites;
  with_wall @@ fun () ->
  retry_exact ~what:"pwrite" ~len (fun moved ->
      match injection with
      | Inject_transient (Eintr, k) when !k > 0 ->
        decr k;
        Again "injected EINTR"
      | Inject_transient (Eio, k) when !k > 0 ->
        decr k;
        Again "injected EIO"
      | Inject_transient (Short, k) when !k > 0 ->
        decr k;
        let want = (len - moved + 1) / 2 in
        ignore (Unix.lseek fd (off + moved) Unix.SEEK_SET);
        let n = Unix.write fd buf moved want in
        M.inc ~by:(float_of_int n) m_bytes_written;
        Done n
      | _ ->
        ignore (Unix.lseek fd (off + moved) Unix.SEEK_SET);
        let n = Unix.write fd buf moved (len - moved) in
        M.inc ~by:(float_of_int n) m_bytes_written;
        Done n);
  R.record_io ~syscall:"pwrite" ~outcome:"ok" ~bytes:len

let fsync fd =
  let injection = fire_plan Fsync in
  M.inc m_fsyncs;
  with_wall @@ fun () ->
  retry_exact ~what:"fsync" ~len:1 (fun _ ->
      match injection with
      | Inject_transient ((Eintr | Eio | Short), k) when !k > 0 ->
        decr k;
        Again "injected transient"
      | _ ->
        Unix.fsync fd;
        Done 1);
  R.record_io ~syscall:"fsync" ~outcome:"ok" ~bytes:0

let rename src dst =
  let injection = fire_plan Rename in
  M.inc m_renames;
  with_wall @@ fun () ->
  retry_exact ~what:"rename" ~len:1 (fun _ ->
      match injection with
      | Inject_transient ((Eintr | Eio | Short), k) when !k > 0 ->
        decr k;
        Again "injected transient"
      | _ ->
        (try Sys.rename src dst
         with Sys_error e -> raise (Io_error (Printf.sprintf "rename: %s" e)));
        Done 1);
  R.record_io ~syscall:"rename" ~outcome:"ok" ~bytes:0
