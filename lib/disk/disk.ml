type params = {
  seek_time : float;
  transfer_rate : float;
  block_size : int;
}

let default_params =
  { seek_time = 0.014; transfer_rate = 10e6; block_size = 4096 }

type extent = { start : int; length : int }

type counters = {
  seeks : int;
  blocks_read : int;
  blocks_written : int;
  write_ops : int;
  flushes : int;
  elapsed : float;
}

exception Disk_error of string

(* --- fault plans ---------------------------------------------------- *)

type fault_target = On_seek | On_write | On_flush

type fault_mode = Fail_stop | Torn

type fault_point = { target : fault_target; at : int }

let pp_fault_point ppf p =
  Format.fprintf ppf "%s#%d"
    (match p.target with
    | On_seek -> "seek"
    | On_write -> "write"
    | On_flush -> "flush")
    p.at

module Extent_key = struct
  type t = int (* start block; extents never overlap, so start is a key *)

  let compare = Int.compare
end

module Live = Map.Make (Extent_key)

type t = {
  uid : int; (* process-unique disk identity, for client-side attachments *)
  params : params;
  mutable free_list : (int * int) list; (* (start, length), address-sorted *)
  mutable live : int Live.t; (* start -> length *)
  mutable frontier : int;
  mutable live_blocks : int;
  mutable peak_blocks : int;
  mutable seeks : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable write_ops : int;
  mutable flushes : int;
  mutable elapsed : float;
  mutable fault_in : int; (* 0 = disarmed; k = fail on the k-th matching op *)
  mutable fault_target : fault_target;
  mutable fault_mode : fault_mode;
  torn : (int, unit) Hashtbl.t; (* start block -> extent contents invalid *)
  mutable alloc_seq : int; (* allocations ever made; generation source *)
  gen : (int, int) Hashtbl.t; (* start block -> allocation generation *)
}

let next_uid = ref 0

let create ?(params = default_params) () =
  if params.seek_time < 0.0 || params.transfer_rate <= 0.0 || params.block_size <= 0
  then raise (Disk_error "invalid parameters");
  incr next_uid;
  {
    uid = !next_uid;
    params;
    free_list = [];
    live = Live.empty;
    frontier = 0;
    live_blocks = 0;
    peak_blocks = 0;
    seeks = 0;
    blocks_read = 0;
    blocks_written = 0;
    write_ops = 0;
    flushes = 0;
    elapsed = 0.0;
    fault_in = 0;
    fault_target = On_seek;
    fault_mode = Fail_stop;
    torn = Hashtbl.create 8;
    alloc_seq = 0;
    gen = Hashtbl.create 64;
  }

let params t = t.params
let id t = t.uid

let block_seconds t blocks =
  float_of_int (blocks * t.params.block_size) /. t.params.transfer_rate

(* Every counter/elapsed mutation below is mirrored into the ambient
   trace context (Wave_obs.Trace hooks), so open spans attribute the
   exact same increments the disk's own counters see.  The hooks are
   single-flag no-ops when tracing is disabled. *)

let charge_seek t =
  if t.fault_in > 0 && t.fault_target = On_seek then begin
    t.fault_in <- t.fault_in - 1;
    if t.fault_in = 0 then raise (Disk_error "injected fault")
  end;
  t.seeks <- t.seeks + 1;
  t.elapsed <- t.elapsed +. t.params.seek_time;
  Wave_obs.Trace.on_seek ();
  Wave_obs.Trace.on_model_seconds t.params.seek_time

(* Countdown for write-targeted faults; called with the destination
   extent before any cost is charged.  In [Torn] mode the extent's
   contents are marked invalid before the crash is raised: the space
   stays allocated but reads of it fail until it is freed or fully
   rewritten — the classic torn write. *)
let write_fault_check t ext =
  if t.fault_in > 0 && t.fault_target = On_write then begin
    t.fault_in <- t.fault_in - 1;
    if t.fault_in = 0 then
      match t.fault_mode with
      | Fail_stop -> raise (Disk_error "injected fault")
      | Torn ->
        Hashtbl.replace t.torn ext.start ();
        raise (Disk_error "injected fault: torn write")
  end

let charge_delay t seconds =
  if seconds < 0.0 then raise (Disk_error "negative delay");
  t.elapsed <- t.elapsed +. seconds;
  Wave_obs.Trace.on_model_seconds seconds

(* Raw streamed transfers (shadow-copy flushes) move bytes without a
   block-granular write, so the trace sees bytes but zero blocks. *)
let charge_transfer_bytes t bytes =
  if bytes < 0 then raise (Disk_error "negative transfer");
  t.elapsed <- t.elapsed +. (float_of_int bytes /. t.params.transfer_rate);
  Wave_obs.Trace.on_write ~blocks:0 ~bytes;
  Wave_obs.Trace.on_model_seconds (float_of_int bytes /. t.params.transfer_rate)

let note_alloc t blocks =
  t.live_blocks <- t.live_blocks + blocks;
  if t.live_blocks > t.peak_blocks then t.peak_blocks <- t.live_blocks

let alloc t ~blocks =
  if blocks <= 0 then raise (Disk_error "alloc: non-positive size");
  (* First fit over the address-sorted free list. *)
  let rec fit acc = function
    | [] -> None
    | (start, len) :: rest when len >= blocks ->
      let remainder =
        if len = blocks then [] else [ (start + blocks, len - blocks) ]
      in
      Some (start, List.rev_append acc (remainder @ rest))
    | hole :: rest -> fit (hole :: acc) rest
  in
  let start =
    match fit [] t.free_list with
    | Some (start, free_list) ->
      t.free_list <- free_list;
      start
    | None ->
      let start = t.frontier in
      t.frontier <- t.frontier + blocks;
      start
  in
  t.live <- Live.add start blocks t.live;
  t.alloc_seq <- t.alloc_seq + 1;
  Hashtbl.replace t.gen start t.alloc_seq;
  note_alloc t blocks;
  { start; length = blocks }

let lookup_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len when len = ext.length -> ()
  | Some _ -> raise (Disk_error "extent shape mismatch (stale handle?)")
  | None -> raise (Disk_error "extent is not live")

let is_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len -> len = ext.length
  | None -> false

let live_at t ~start ~length =
  match Live.find_opt start t.live with
  | Some len -> len = length
  | None -> false

let generation_at t ~start =
  if Live.mem start t.live then Hashtbl.find_opt t.gen start else None

let extent_covering t ~addr =
  match Live.find_last_opt (fun s -> s <= addr) t.live with
  | Some (start, length) when addr < start + length -> Some { start; length }
  | _ -> None

let live_extents t =
  Live.fold (fun start length acc -> { start; length } :: acc) t.live []
  |> List.rev

(* Insert (start, len) into the address-sorted free list, merging with
   adjacent holes so repeated alloc/free cycles do not fragment forever. *)
let insert_free free_list (start, len) =
  let rec go = function
    | [] -> [ (start, len) ]
    | (s, l) :: rest when s + l = start -> go_merge (s, l + len) rest
    | (s, l) :: rest when start + len = s -> (start, len + l) :: rest
    | (s, l) :: rest when s > start -> (start, len) :: (s, l) :: rest
    | hole :: rest -> hole :: go rest
  and go_merge (s, l) = function
    | (s2, l2) :: rest when s + l = s2 -> (s, l + l2) :: rest
    | rest -> (s, l) :: rest
  in
  go free_list

let free t ext =
  lookup_live t ext;
  t.live <- Live.remove ext.start t.live;
  Hashtbl.remove t.torn ext.start;
  Hashtbl.remove t.gen ext.start;
  t.live_blocks <- t.live_blocks - ext.length;
  t.free_list <- insert_free t.free_list (ext.start, ext.length)

let check_readable t ext =
  if Hashtbl.mem t.torn ext.start then
    raise (Disk_error "torn extent: contents invalid after interrupted write")

let assert_readable t ext =
  lookup_live t ext;
  check_readable t ext

let charge_read_transfer t ~blocks =
  if blocks < 0 then raise (Disk_error "negative transfer");
  t.blocks_read <- t.blocks_read + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_read ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks)

let read_blocks t ext ~blocks =
  lookup_live t ext;
  check_readable t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "read_blocks: out of extent bounds");
  charge_seek t;
  t.blocks_read <- t.blocks_read + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_read ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks)

let read t ext = read_blocks t ext ~blocks:ext.length

let write_blocks t ext ~blocks =
  lookup_live t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "write_blocks: out of extent bounds");
  write_fault_check t ext;
  charge_seek t;
  t.write_ops <- t.write_ops + 1;
  t.blocks_written <- t.blocks_written + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_write ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  (* A complete rewrite of the extent replaces any torn contents. *)
  if blocks = ext.length then Hashtbl.remove t.torn ext.start

let write t ext = write_blocks t ext ~blocks:ext.length

(* Deferred (write-back) flush of a sub-range: like [write_blocks] but
   the written run may start at any offset inside the extent, as a
   coalesced drain of dirty buffer frames does.  Same cost (one seek,
   one write op, the run's transfer) and the same fault point; a torn
   fault marks the whole destination extent, and only a complete
   rewrite clears an existing tear. *)
let write_run t ext ~off ~blocks =
  lookup_live t ext;
  if off < 0 || blocks < 0 || off + blocks > ext.length then
    raise (Disk_error "write_run: out of extent bounds");
  write_fault_check t ext;
  charge_seek t;
  t.write_ops <- t.write_ops + 1;
  t.blocks_written <- t.blocks_written + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_write ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  if off = 0 && blocks = ext.length then Hashtbl.remove t.torn ext.start

(* One buffer-pool flush drain.  The drain itself moves no bytes (its
   runs charge their own seeks and transfers through [write_run]); it
   exists as an operation so crash plans can name "the k-th flush" and
   the sweep can crash with a dirty pool before any deferred write of
   the drain has happened. *)
let note_flush t =
  if t.fault_in > 0 && t.fault_target = On_flush then begin
    t.fault_in <- t.fault_in - 1;
    if t.fault_in = 0 then raise (Disk_error "injected fault: flush")
  end;
  t.flushes <- t.flushes + 1

let sequential_read t exts =
  List.iter
    (fun ext ->
      lookup_live t ext;
      check_readable t ext)
    exts;
  charge_seek t;
  List.iter
    (fun ext ->
      t.blocks_read <- t.blocks_read + ext.length;
      t.elapsed <- t.elapsed +. block_seconds t ext.length;
      Wave_obs.Trace.on_read ~blocks:ext.length
        ~bytes:(ext.length * t.params.block_size);
      Wave_obs.Trace.on_model_seconds (block_seconds t ext.length))
    exts

let counters t =
  {
    seeks = t.seeks;
    blocks_read = t.blocks_read;
    blocks_written = t.blocks_written;
    write_ops = t.write_ops;
    flushes = t.flushes;
    elapsed = t.elapsed;
  }

let elapsed t = t.elapsed

let reset_counters t =
  t.seeks <- 0;
  t.blocks_read <- 0;
  t.blocks_written <- 0;
  t.write_ops <- 0;
  t.flushes <- 0;
  t.elapsed <- 0.0

let live_blocks t = t.live_blocks
let peak_blocks t = t.peak_blocks
let reset_peak t = t.peak_blocks <- t.live_blocks
let high_water t = t.frontier

let fragmentation t =
  if t.frontier = 0 then 0.0
  else 1.0 -. (float_of_int t.live_blocks /. float_of_int t.frontier)

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "seeks=%d read=%d blocks written=%d blocks (%d ops, %d flushes) \
     elapsed=%.4fs"
    c.seeks c.blocks_read c.blocks_written c.write_ops c.flushes c.elapsed

(* --- fault arming --------------------------------------------------- *)

let arm_fault t ?(mode = Fail_stop) point =
  if point.at < 1 then raise (Disk_error "arm_fault: need at >= 1");
  if mode = Torn && point.target <> On_write then
    raise (Disk_error "arm_fault: torn mode applies to writes only");
  t.fault_in <- point.at;
  t.fault_target <- point.target;
  t.fault_mode <- mode

let set_fault t ~after_seeks =
  if after_seeks < 1 then raise (Disk_error "set_fault: need after_seeks >= 1");
  arm_fault t { target = On_seek; at = after_seeks }

let clear_fault t = t.fault_in <- 0
let fault_armed t = t.fault_in > 0

let armed_fault t =
  if t.fault_in = 0 then None
  else Some ({ target = t.fault_target; at = t.fault_in }, t.fault_mode)

let fault_schedule ~(before : counters) ~(after : counters) =
  let seeks = max 0 (after.seeks - before.seeks) in
  let writes = max 0 (after.write_ops - before.write_ops) in
  let flushes = max 0 (after.flushes - before.flushes) in
  List.init seeks (fun i -> { target = On_seek; at = i + 1 })
  @ List.init writes (fun i -> { target = On_write; at = i + 1 })
  @ List.init flushes (fun i -> { target = On_flush; at = i + 1 })

(* --- torn extent introspection -------------------------------------- *)

let is_torn t ext = Hashtbl.mem t.torn ext.start
let torn_at t ~start = Hashtbl.mem t.torn start
let torn_count t = Hashtbl.length t.torn
