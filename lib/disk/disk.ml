type params = {
  seek_time : float;
  transfer_rate : float;
  block_size : int;
}

let default_params =
  { seek_time = 0.014; transfer_rate = 10e6; block_size = 4096 }

type extent = { start : int; length : int }

type counters = {
  seeks : int;
  blocks_read : int;
  blocks_written : int;
  write_ops : int;
  flushes : int;
  elapsed : float;
}

(* Real-I/O failures from the file backend surface through the same
   exception all cost-model violations use, so every existing
   [Disk_error] handler — checkpoint, crash harness, tests — catches
   shim errors with no call-site changes. *)
exception Disk_error = Io.Io_error

(* --- fault plans ---------------------------------------------------- *)

type fault_target = On_seek | On_write | On_flush

type fault_mode = Fail_stop | Torn | Stall of float

type fault_point = { target : fault_target; at : int }

let pp_fault_point ppf p =
  Format.fprintf ppf "%s#%d"
    (match p.target with
    | On_seek -> "seek"
    | On_write -> "write"
    | On_flush -> "flush")
    p.at

module Extent_key = struct
  type t = int (* start block; extents never overlap, so start is a key *)

  let compare = Int.compare
end

module Live = Map.Make (Extent_key)

(* One armed injection: the [p_in]-th next op of class [p_target] is
   hit.  Plans queue: only the head counts down; firing pops it, so a
   second plan can name a point inside recovery from the first. *)
type plan = {
  p_target : fault_target;
  p_mode : fault_mode;
  mutable p_in : int;
}

type backend = Sim | File of string

type t = {
  uid : int; (* process-unique disk identity, for client-side attachments *)
  params : params;
  mutable free_list : (int * int) list; (* (start, length), address-sorted *)
  mutable live : int Live.t; (* start -> length *)
  mutable frontier : int;
  mutable live_blocks : int;
  mutable peak_blocks : int;
  mutable seeks : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable write_ops : int;
  mutable flushes : int;
  mutable elapsed : float;
  mutable faults : plan list; (* [] = disarmed; head counts down first *)
  mutable stalls : int; (* stall plans fired *)
  torn : (int, unit) Hashtbl.t; (* start block -> extent contents invalid *)
  mutable alloc_seq : int; (* allocations ever made; generation source *)
  gen : (int, int) Hashtbl.t; (* start block -> allocation generation *)
  backing : Block_file.t option; (* the real block file, [File] backend only *)
  mutable write_seq : int; (* write ops ever stamped into the backing file *)
  mutable free_gate : (extent -> bool) option;
      (* epoch layer veto: a gated [free] leaves the extent live *)
  mutable op_observer : (unit -> unit) option;
      (* fires after every successfully charged operation *)
}

let m_stalls = Wave_obs.Metrics.counter "disk.stalls"

let next_uid = ref 0

let make ?(params = default_params) backing =
  if params.seek_time < 0.0 || params.transfer_rate <= 0.0 || params.block_size <= 0
  then raise (Disk_error "invalid parameters");
  incr next_uid;
  {
    uid = !next_uid;
    params;
    free_list = [];
    live = Live.empty;
    frontier = 0;
    live_blocks = 0;
    peak_blocks = 0;
    seeks = 0;
    blocks_read = 0;
    blocks_written = 0;
    write_ops = 0;
    flushes = 0;
    elapsed = 0.0;
    faults = [];
    stalls = 0;
    torn = Hashtbl.create 8;
    alloc_seq = 0;
    gen = Hashtbl.create 64;
    backing;
    write_seq = 0;
    free_gate = None;
    op_observer = None;
  }

let create ?params () = make ?params None

let params t = t.params
let id t = t.uid

let backend t =
  match t.backing with None -> Sim | Some bf -> File (Block_file.path bf)

let backing t = t.backing

let block_seconds t blocks =
  float_of_int (blocks * t.params.block_size) /. t.params.transfer_rate

let set_free_gate t gate = t.free_gate <- gate
let set_op_observer t obs = t.op_observer <- obs

(* Fired after an operation has been fully charged (never on the
   faulting path — an injected fault raises before the charge).  The
   epoch interleaver uses this as its logical clock: each completed
   disk operation is one tick at which a queued probe may arrive. *)
let notify t = match t.op_observer with Some f -> f () | None -> ()

(* Every counter/elapsed mutation below is mirrored into the ambient
   trace context (Wave_obs.Trace hooks), so open spans attribute the
   exact same increments the disk's own counters see.  The hooks are
   single-flag no-ops when tracing is disabled. *)

(* Countdown on the queue head for one op of class [target].  Returns
   the fired plan's mode for the caller to act on; a [Stall] is fully
   handled here — charge the delay, pop, let the operation proceed.
   Every firing also lands in the flight recorder under the op-class
   name, so a crash-sweep artifact's last event is the injected fault
   that killed the run. *)
let target_name = function
  | On_seek -> "seek"
  | On_write -> "write"
  | On_flush -> "flush"

let record_fault target ~outcome ~bytes =
  Wave_obs.Recorder.record_io ~syscall:(target_name target) ~outcome ~bytes

let fault_check t target =
  match t.faults with
  | [] -> None
  | { p_target; _ } :: _ when p_target <> target -> None
  | ({ p_mode; _ } as p) :: rest ->
    p.p_in <- p.p_in - 1;
    if p.p_in > 0 then None
    else begin
      t.faults <- rest;
      match p_mode with
      | Stall d ->
        t.stalls <- t.stalls + 1;
        Wave_obs.Metrics.inc m_stalls;
        record_fault target ~outcome:"stall" ~bytes:0;
        t.elapsed <- t.elapsed +. d;
        Wave_obs.Trace.on_model_seconds d;
        None
      | mode ->
        record_fault target
          ~outcome:(match mode with Torn -> "torn" | _ -> "fault")
          ~bytes:0;
        Some mode
    end

let charge_seek t =
  (match fault_check t On_seek with
  | Some _ -> raise (Disk_error "injected fault")
  | None -> ());
  t.seeks <- t.seeks + 1;
  t.elapsed <- t.elapsed +. t.params.seek_time;
  Wave_obs.Trace.on_seek ();
  Wave_obs.Trace.on_model_seconds t.params.seek_time;
  notify t

(* Countdown for write-targeted faults; called with the destination
   range before any cost is charged.  In [Torn] mode the extent's
   contents are marked invalid before the crash is raised: the space
   stays allocated but reads of it fail until it is freed or fully
   rewritten — the classic torn write.  With a backing file the tear
   is also physical: stamps for roughly half the range reach the file
   before the "crash". *)
let write_fault_check t ext ~off ~blocks =
  match fault_check t On_write with
  | None -> ()
  | Some (Stall _) -> assert false (* consumed inside [fault_check] *)
  | Some Fail_stop -> raise (Disk_error "injected fault")
  | Some Torn ->
    (match t.backing with
    | Some bf when blocks > 0 ->
      t.write_seq <- t.write_seq + 1;
      let gen =
        match Hashtbl.find_opt t.gen ext.start with Some g -> g | None -> 0
      in
      ignore
        (Block_file.write_torn_prefix bf ~start:(ext.start + off) ~blocks
           ~ext_start:ext.start ~gen ~seq:t.write_seq)
    | _ -> ());
    Hashtbl.replace t.torn ext.start ();
    raise (Disk_error "injected fault: torn write")

let charge_delay t seconds =
  if seconds < 0.0 then raise (Disk_error "negative delay");
  t.elapsed <- t.elapsed +. seconds;
  Wave_obs.Trace.on_model_seconds seconds;
  notify t

(* Raw streamed transfers (shadow-copy flushes) move bytes without a
   block-granular write, so the trace sees bytes but zero blocks. *)
let charge_transfer_bytes t bytes =
  if bytes < 0 then raise (Disk_error "negative transfer");
  t.elapsed <- t.elapsed +. (float_of_int bytes /. t.params.transfer_rate);
  Wave_obs.Trace.on_write ~blocks:0 ~bytes;
  Wave_obs.Trace.on_model_seconds (float_of_int bytes /. t.params.transfer_rate);
  notify t

let note_alloc t blocks =
  t.live_blocks <- t.live_blocks + blocks;
  if t.live_blocks > t.peak_blocks then t.peak_blocks <- t.live_blocks

let alloc t ~blocks =
  if blocks <= 0 then raise (Disk_error "alloc: non-positive size");
  (* First fit over the address-sorted free list. *)
  let rec fit acc = function
    | [] -> None
    | (start, len) :: rest when len >= blocks ->
      let remainder =
        if len = blocks then [] else [ (start + blocks, len - blocks) ]
      in
      Some (start, List.rev_append acc (remainder @ rest))
    | hole :: rest -> fit (hole :: acc) rest
  in
  let start =
    match fit [] t.free_list with
    | Some (start, free_list) ->
      t.free_list <- free_list;
      start
    | None ->
      let start = t.frontier in
      t.frontier <- t.frontier + blocks;
      start
  in
  t.live <- Live.add start blocks t.live;
  t.alloc_seq <- t.alloc_seq + 1;
  Hashtbl.replace t.gen start t.alloc_seq;
  note_alloc t blocks;
  (* Zero the range so the valid-stamp-or-zero read rule is sound for
     reused space (stale stamps from a freed tenant would otherwise
     look like damage — or worse, like valid old data). *)
  (match t.backing with
  | Some bf -> Block_file.zero_range bf ~start ~blocks
  | None -> ());
  { start; length = blocks }

let lookup_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len when len = ext.length -> ()
  | Some _ -> raise (Disk_error "extent shape mismatch (stale handle?)")
  | None -> raise (Disk_error "extent is not live")

let is_live t ext =
  match Live.find_opt ext.start t.live with
  | Some len -> len = ext.length
  | None -> false

let live_at t ~start ~length =
  match Live.find_opt start t.live with
  | Some len -> len = length
  | None -> false

let generation_at t ~start =
  if Live.mem start t.live then Hashtbl.find_opt t.gen start else None

let extent_covering t ~addr =
  match Live.find_last_opt (fun s -> s <= addr) t.live with
  | Some (start, length) when addr < start + length -> Some { start; length }
  | _ -> None

let live_extents t =
  Live.fold (fun start length acc -> { start; length } :: acc) t.live []
  |> List.rev

(* Insert (start, len) into the address-sorted free list, merging with
   adjacent holes so repeated alloc/free cycles do not fragment forever. *)
let insert_free free_list (start, len) =
  let rec go = function
    | [] -> [ (start, len) ]
    | (s, l) :: rest when s + l = start -> go_merge (s, l + len) rest
    | (s, l) :: rest when start + len = s -> (start, len + l) :: rest
    | (s, l) :: rest when s > start -> (start, len) :: (s, l) :: rest
    | hole :: rest -> hole :: go rest
  and go_merge (s, l) = function
    | (s2, l2) :: rest when s + l = s2 -> (s, l + l2) :: rest
    | rest -> (s, l) :: rest
  in
  go free_list

let free t ext =
  lookup_live t ext;
  (* A live epoch may still be serving probes out of this extent; the
     gate defers the free, leaving the extent live so the allocator
     cannot reuse the space and its generation stays valid.  The epoch
     layer re-issues the free once the last snapshot drains. *)
  if match t.free_gate with Some claims -> claims ext | None -> false then ()
  else begin
    t.live <- Live.remove ext.start t.live;
    Hashtbl.remove t.torn ext.start;
    Hashtbl.remove t.gen ext.start;
    t.live_blocks <- t.live_blocks - ext.length;
    t.free_list <- insert_free t.free_list (ext.start, ext.length)
  end

let check_readable t ext =
  if Hashtbl.mem t.torn ext.start then
    raise (Disk_error "torn extent: contents invalid after interrupted write")

(* Physical read + stamp verification of a prefix of a live extent.
   Damage found in the file is remembered in the torn table (the next
   read fails without re-reading) and raised like any torn extent. *)
let backed_read t ext ~blocks =
  match t.backing with
  | None -> ()
  | Some bf ->
    if blocks > 0 then begin
      let gen =
        match Hashtbl.find_opt t.gen ext.start with Some g -> g | None -> 0
      in
      if
        not
          (Block_file.verify_range bf ~start:ext.start ~blocks
             ~ext_start:ext.start ~gen)
      then begin
        Hashtbl.replace t.torn ext.start ();
        raise (Disk_error "torn extent: contents invalid after interrupted write")
      end
    end

(* Physical stamped write of a run inside a live extent. *)
let backed_write t ext ~off ~blocks =
  match t.backing with
  | None -> ()
  | Some bf ->
    if blocks > 0 then begin
      t.write_seq <- t.write_seq + 1;
      let gen =
        match Hashtbl.find_opt t.gen ext.start with Some g -> g | None -> 0
      in
      Block_file.write_range bf ~start:(ext.start + off) ~blocks
        ~ext_start:ext.start ~gen ~seq:t.write_seq
    end

let assert_readable t ext =
  lookup_live t ext;
  check_readable t ext

let charge_read_transfer t ~blocks =
  if blocks < 0 then raise (Disk_error "negative transfer");
  t.blocks_read <- t.blocks_read + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_read ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  notify t

let read_blocks t ext ~blocks =
  lookup_live t ext;
  check_readable t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "read_blocks: out of extent bounds");
  charge_seek t;
  t.blocks_read <- t.blocks_read + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_read ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  backed_read t ext ~blocks;
  notify t

let read t ext = read_blocks t ext ~blocks:ext.length

let write_blocks t ext ~blocks =
  lookup_live t ext;
  if blocks < 0 || blocks > ext.length then
    raise (Disk_error "write_blocks: out of extent bounds");
  write_fault_check t ext ~off:0 ~blocks;
  charge_seek t;
  t.write_ops <- t.write_ops + 1;
  t.blocks_written <- t.blocks_written + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_write ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  (* A complete rewrite of the extent replaces any torn contents. *)
  if blocks = ext.length then Hashtbl.remove t.torn ext.start;
  backed_write t ext ~off:0 ~blocks;
  notify t

let write t ext = write_blocks t ext ~blocks:ext.length

(* Deferred (write-back) flush of a sub-range: like [write_blocks] but
   the written run may start at any offset inside the extent, as a
   coalesced drain of dirty buffer frames does.  Same cost (one seek,
   one write op, the run's transfer) and the same fault point; a torn
   fault marks the whole destination extent, and only a complete
   rewrite clears an existing tear. *)
let write_run t ext ~off ~blocks =
  lookup_live t ext;
  if off < 0 || blocks < 0 || off + blocks > ext.length then
    raise (Disk_error "write_run: out of extent bounds");
  write_fault_check t ext ~off ~blocks;
  charge_seek t;
  t.write_ops <- t.write_ops + 1;
  t.blocks_written <- t.blocks_written + blocks;
  t.elapsed <- t.elapsed +. block_seconds t blocks;
  Wave_obs.Trace.on_write ~blocks ~bytes:(blocks * t.params.block_size);
  Wave_obs.Trace.on_model_seconds (block_seconds t blocks);
  if off = 0 && blocks = ext.length then Hashtbl.remove t.torn ext.start;
  backed_write t ext ~off ~blocks;
  notify t

(* One buffer-pool flush drain.  The drain itself moves no bytes (its
   runs charge their own seeks and transfers through [write_run]); it
   exists as an operation so crash plans can name "the k-th flush" and
   the sweep can crash with a dirty pool before any deferred write of
   the drain has happened. *)
let note_flush t =
  (match fault_check t On_flush with
  | Some _ -> raise (Disk_error "injected fault: flush")
  | None -> ());
  t.flushes <- t.flushes + 1;
  notify t

let sequential_read t exts =
  List.iter
    (fun ext ->
      lookup_live t ext;
      check_readable t ext)
    exts;
  charge_seek t;
  List.iter
    (fun ext ->
      t.blocks_read <- t.blocks_read + ext.length;
      t.elapsed <- t.elapsed +. block_seconds t ext.length;
      Wave_obs.Trace.on_read ~blocks:ext.length
        ~bytes:(ext.length * t.params.block_size);
      Wave_obs.Trace.on_model_seconds (block_seconds t ext.length);
      backed_read t ext ~blocks:ext.length)
    exts;
  notify t

let counters t =
  {
    seeks = t.seeks;
    blocks_read = t.blocks_read;
    blocks_written = t.blocks_written;
    write_ops = t.write_ops;
    flushes = t.flushes;
    elapsed = t.elapsed;
  }

let elapsed t = t.elapsed

let reset_counters t =
  t.seeks <- 0;
  t.blocks_read <- 0;
  t.blocks_written <- 0;
  t.write_ops <- 0;
  t.flushes <- 0;
  t.elapsed <- 0.0

let live_blocks t = t.live_blocks
let peak_blocks t = t.peak_blocks
let reset_peak t = t.peak_blocks <- t.live_blocks
let high_water t = t.frontier

let fragmentation t =
  if t.frontier = 0 then 0.0
  else 1.0 -. (float_of_int t.live_blocks /. float_of_int t.frontier)

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "seeks=%d read=%d blocks written=%d blocks (%d ops, %d flushes) \
     elapsed=%.4fs"
    c.seeks c.blocks_read c.blocks_written c.write_ops c.flushes c.elapsed

(* --- fault arming --------------------------------------------------- *)

let validate_plan (point, mode) =
  if point.at < 1 then raise (Disk_error "arm_fault: need at >= 1");
  match mode with
  | Torn ->
    if point.target <> On_write then
      raise (Disk_error "arm_fault: torn mode applies to writes only")
  | Stall d -> if d < 0.0 then raise (Disk_error "arm_fault: negative stall")
  | Fail_stop -> ()

let arm_faults t plans =
  List.iter validate_plan plans;
  t.faults <-
    List.map
      (fun ((point : fault_point), mode) ->
        { p_target = point.target; p_mode = mode; p_in = point.at })
      plans

let arm_fault t ?(mode = Fail_stop) point = arm_faults t [ (point, mode) ]

let set_fault t ~after_seeks =
  if after_seeks < 1 then raise (Disk_error "set_fault: need after_seeks >= 1");
  arm_fault t { target = On_seek; at = after_seeks }

let clear_fault t = t.faults <- []
let fault_armed t = t.faults <> []

let armed_fault t =
  match t.faults with
  | [] -> None
  | p :: _ -> Some ({ target = p.p_target; at = p.p_in }, p.p_mode)

let armed_faults t =
  List.map (fun p -> ({ target = p.p_target; at = p.p_in }, p.p_mode)) t.faults

let stall_count t = t.stalls

let fault_schedule ~(before : counters) ~(after : counters) =
  let seeks = max 0 (after.seeks - before.seeks) in
  let writes = max 0 (after.write_ops - before.write_ops) in
  let flushes = max 0 (after.flushes - before.flushes) in
  List.init seeks (fun i -> { target = On_seek; at = i + 1 })
  @ List.init writes (fun i -> { target = On_write; at = i + 1 })
  @ List.init flushes (fun i -> { target = On_flush; at = i + 1 })

(* --- torn extent introspection -------------------------------------- *)

let is_torn t ext = Hashtbl.mem t.torn ext.start
let torn_at t ~start = Hashtbl.mem t.torn start
let torn_count t = Hashtbl.length t.torn

(* --- file backend lifecycle ------------------------------------------ *)

let close t =
  match t.backing with Some bf -> Block_file.close bf | None -> ()

let fsync t = match t.backing with Some bf -> Block_file.fsync bf | None -> ()

let create_file ?(params = default_params) ~path () =
  make ~params (Some (Block_file.create ~path ~block_size:params.block_size))

let alloc_sidecar path = path ^ ".alloc"

(* Allocator snapshot: a versioned line-oriented sidecar naming the
   frontier, sequence counters and every live extent with its
   generation.  Written with the durable tmp + fsync + rename dance so
   a crash leaves either the old snapshot or the new one, never a
   partial file. *)
let checkpoint_alloc t =
  match t.backing with
  | None -> ()
  | Some bf ->
    let path = alloc_sidecar (Block_file.path bf) in
    let buf = Buffer.create 256 in
    Buffer.add_string buf "waveidx-alloc/1\n";
    Printf.ksprintf (Buffer.add_string buf) "block_size %d\n"
      t.params.block_size;
    Printf.ksprintf (Buffer.add_string buf) "frontier %d\n" t.frontier;
    Printf.ksprintf (Buffer.add_string buf) "alloc_seq %d\n" t.alloc_seq;
    Printf.ksprintf (Buffer.add_string buf) "write_seq %d\n" t.write_seq;
    Live.iter
      (fun start length ->
        let g =
          match Hashtbl.find_opt t.gen start with Some g -> g | None -> 0
        in
        Printf.ksprintf (Buffer.add_string buf) "extent %d %d %d\n" start
          length g)
      t.live;
    let tmp = path ^ ".tmp" in
    let fd =
      try Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      with Unix.Unix_error (e, _, _) ->
        raise
          (Disk_error (Printf.sprintf "open %s: %s" tmp (Unix.error_message e)))
    in
    (try
       Io.pwrite fd (Buffer.to_bytes buf) ~off:0;
       Io.fsync fd;
       Unix.close fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    Io.rename tmp path

let open_file ?(params = default_params) ~path () =
  let sidecar = alloc_sidecar path in
  (* A crash inside [checkpoint_alloc] can leave its temp file behind;
     it lost the commit race, so drop it. *)
  (try Sys.remove (sidecar ^ ".tmp") with Sys_error _ -> ());
  let corrupt () =
    raise
      (Disk_error
         (Printf.sprintf "open_file: corrupt allocator snapshot %s" sidecar))
  in
  let lines =
    match open_in sidecar with
    | exception Sys_error _ ->
      raise
        (Disk_error
           (Printf.sprintf "open_file: missing allocator snapshot %s" sidecar))
    | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      go []
  in
  let int s = match int_of_string_opt s with Some n -> n | None -> corrupt () in
  (match lines with
  | "waveidx-alloc/1" :: _ -> ()
  | _ -> corrupt ());
  let frontier = ref 0
  and alloc_seq = ref 0
  and write_seq = ref 0
  and extents = ref [] in
  List.iteri
    (fun i line ->
      if i > 0 then
        match String.split_on_char ' ' line with
        | [ "block_size"; b ] ->
          if int b <> params.block_size then
            raise
              (Disk_error
                 (Printf.sprintf
                    "open_file: block size mismatch (file %s, params %d)" b
                    params.block_size))
        | [ "frontier"; n ] -> frontier := int n
        | [ "alloc_seq"; n ] -> alloc_seq := int n
        | [ "write_seq"; n ] -> write_seq := int n
        | [ "extent"; s; l; g ] -> extents := (int s, int l, int g) :: !extents
        | [ "" ] | [] -> ()
        | _ -> corrupt ())
    lines;
  let extents = List.rev !extents in
  let bf = Block_file.open_existing ~path ~block_size:params.block_size in
  let t = make ~params (Some bf) in
  t.frontier <- !frontier;
  t.alloc_seq <- !alloc_seq;
  t.write_seq <- !write_seq;
  List.iter
    (fun (start, len, g) ->
      if len <= 0 || start < 0 || start + len > t.frontier then corrupt ();
      t.live <- Live.add start len t.live;
      Hashtbl.replace t.gen start g;
      t.live_blocks <- t.live_blocks + len)
    extents;
  t.peak_blocks <- t.live_blocks;
  (* Free list: the holes below the frontier not covered by a live
     extent (Live iterates in address order). *)
  let holes = ref [] and cursor = ref 0 in
  Live.iter
    (fun start len ->
      if start > !cursor then holes := (!cursor, start - !cursor) :: !holes;
      cursor := start + len)
    t.live;
  if t.frontier > !cursor then holes := (!cursor, t.frontier - !cursor) :: !holes;
  t.free_list <- List.rev !holes;
  (* Verify what the file really holds against the snapshot: every
     block of a live extent must carry that extent's stamp or be
     zero.  Failures — truncation, foreign or stale-generation stamps,
     CRC damage — mark the extent torn, exactly like an interrupted
     simulated write, so recovery's intactness test sees them. *)
  List.iter
    (fun (start, len, g) ->
      let intact =
        try
          Block_file.verify_range bf ~start ~blocks:len ~ext_start:start ~gen:g
        with Disk_error _ -> false
      in
      if not intact then Hashtbl.replace t.torn start ())
    extents;
  t
