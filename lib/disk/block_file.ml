(* Stamp layout, little-endian, CRC over bytes [0, 36):
     0  magic "WVBK"
     4  extent start block (int64)
    12  allocation generation (int64)
    20  absolute block index (int64)
    28  write sequence (int64)
    36  CRC-32 of bytes 0..35
    40  zeros to block_size *)

let magic = "WVBK"
let stamp_bytes = 40

(* Local CRC-32 (IEEE, reflected).  Codec has one, but wave_storage
   depends on wave_disk, so the stamp codec keeps its own table. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 buf off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  for i = off to off + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get buf i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

type t = {
  path : string;
  block_size : int;
  mutable fd : Unix.file_descr option;
  mutable size_blocks : int;
}

let fd t =
  match t.fd with
  | Some fd -> fd
  | None -> raise (Io.Io_error "block file is closed")

let of_fd ~path ~block_size fd =
  let size = (Unix.fstat fd).Unix.st_size / block_size in
  { path; block_size; fd = Some fd; size_blocks = size }

let create ~path ~block_size =
  if block_size < stamp_bytes then
    invalid_arg
      (Printf.sprintf "Block_file.create: block_size %d < stamp size %d"
         block_size stamp_bytes);
  let fd =
    try Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Io.Io_error (Printf.sprintf "open %s: %s" path (Unix.error_message e)))
  in
  of_fd ~path ~block_size fd

let open_existing ~path ~block_size =
  if block_size < stamp_bytes then
    invalid_arg
      (Printf.sprintf "Block_file.open_existing: block_size %d < stamp size %d"
         block_size stamp_bytes);
  let fd =
    try Unix.openfile path [ Unix.O_RDWR ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise (Io.Io_error (Printf.sprintf "open %s: %s" path (Unix.error_message e)))
  in
  of_fd ~path ~block_size fd

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    t.fd <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

let path t = t.path
let block_size t = t.block_size
let size_blocks t = t.size_blocks
let fsync t = Io.fsync (fd t)

let ensure_blocks t blocks =
  if blocks > t.size_blocks then begin
    (try Unix.ftruncate (fd t) (blocks * t.block_size)
     with Unix.Unix_error (e, _, _) ->
       raise (Io.Io_error (Printf.sprintf "ftruncate: %s" (Unix.error_message e))));
    t.size_blocks <- blocks
  end

let zero_range t ~start ~blocks =
  if blocks > 0 then begin
    (* Blocks past the current end are already zero once the file is
       extended; only reused space below it needs an explicit write. *)
    let dirty = min blocks (t.size_blocks - start) in
    ensure_blocks t (start + blocks);
    if dirty > 0 then
      Io.pwrite (fd t)
        (Bytes.make (dirty * t.block_size) '\000')
        ~off:(start * t.block_size)
  end

let stamp_into buf ~boff ~block ~ext_start ~gen ~seq =
  Bytes.blit_string magic 0 buf boff 4;
  Bytes.set_int64_le buf (boff + 4) (Int64.of_int ext_start);
  Bytes.set_int64_le buf (boff + 12) (Int64.of_int gen);
  Bytes.set_int64_le buf (boff + 20) (Int64.of_int block);
  Bytes.set_int64_le buf (boff + 28) (Int64.of_int seq);
  Bytes.set_int32_le buf (boff + 36) (crc32 buf boff 36)

let stamped_buffer t ~start ~blocks ~ext_start ~gen ~seq =
  let buf = Bytes.make (blocks * t.block_size) '\000' in
  for i = 0 to blocks - 1 do
    stamp_into buf ~boff:(i * t.block_size) ~block:(start + i) ~ext_start ~gen
      ~seq
  done;
  buf

let write_range t ~start ~blocks ~ext_start ~gen ~seq =
  if blocks > 0 then begin
    ensure_blocks t (start + blocks);
    Io.pwrite (fd t)
      (stamped_buffer t ~start ~blocks ~ext_start ~gen ~seq)
      ~off:(start * t.block_size)
  end

let write_torn_prefix t ~start ~blocks ~ext_start ~gen ~seq =
  let torn = if blocks <= 1 then blocks else max 1 (blocks / 2) in
  if torn > 0 then begin
    ensure_blocks t (start + torn);
    Io.pwrite (fd t)
      (stamped_buffer t ~start ~blocks:torn ~ext_start ~gen ~seq)
      ~off:(start * t.block_size)
  end;
  torn

let block_intact t buf ~boff ~block ~ext_start ~gen =
  let rec all_zero i =
    i >= t.block_size || (Bytes.get buf (boff + i) = '\000' && all_zero (i + 1))
  in
  (Bytes.sub_string buf boff 4 = magic
  && Bytes.get_int32_le buf (boff + 36) = crc32 buf boff 36
  && Bytes.get_int64_le buf (boff + 4) = Int64.of_int ext_start
  && Bytes.get_int64_le buf (boff + 12) = Int64.of_int gen
  && Bytes.get_int64_le buf (boff + 20) = Int64.of_int block)
  || all_zero 0

let verify_range t ~start ~blocks ~ext_start ~gen =
  if blocks = 0 then true
  else if start + blocks > t.size_blocks then false (* truncated tail *)
  else begin
    let buf = Bytes.create (blocks * t.block_size) in
    Io.pread (fd t) buf ~off:(start * t.block_size);
    let rec ok i =
      i >= blocks
      || block_intact t buf ~boff:(i * t.block_size) ~block:(start + i)
           ~ext_start ~gen
         && ok (i + 1)
    in
    ok 0
  end

let truncate_tail t ~blocks =
  if blocks < t.size_blocks then begin
    (try Unix.ftruncate (fd t) (blocks * t.block_size)
     with Unix.Unix_error (e, _, _) ->
       raise (Io.Io_error (Printf.sprintf "ftruncate: %s" (Unix.error_message e))));
    t.size_blocks <- blocks
  end
