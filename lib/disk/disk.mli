(** Simulated disk substrate.

    The paper evaluates every scheme on a single disk characterised by
    two hardware parameters: the time for one [seek] and the transfer
    rate [trans] (Section 5, "Disk Parameters").  This module supplies
    that substrate as a simulator: an extent allocator over a block
    address space plus per-operation cost accounting in model seconds.
    The storage layer above charges exactly the accesses the paper's
    algorithms perform — one seek followed by a contiguous transfer per
    probe or scan — so relative performance trends are preserved even
    though absolute numbers belong to the simulator, not a DEC 3000.

    Invariants enforced (and tested): extents never overlap, reads and
    frees of unallocated extents are errors, and frees coalesce so that
    space is actually reclaimed. *)

type params = {
  seek_time : float;  (** seconds per seek, e.g. 0.014 *)
  transfer_rate : float;  (** bytes per second, e.g. 10e6 *)
  block_size : int;  (** bytes per block, e.g. 4096 *)
}

val default_params : params
(** The paper's Table 12 hardware: 14 ms seek, 10 MB/s transfer, with a
    4 KiB block. *)

type t
(** A simulated disk: allocator state, clock and counters. *)

type extent = private { start : int; length : int }
(** A contiguous run of [length] blocks beginning at block [start].
    Obtained from {!alloc} only. *)

exception Disk_error of string
(** Raised on protocol violations: double free, foreign extent, etc.
    A rebinding of {!Io.Io_error}, so real-I/O failures surfacing from
    the file backend are caught by existing [Disk_error] handlers. *)

val create : ?params:params -> unit -> t

val params : t -> params

(** {1 Backends}

    {!create} makes the paper's pure cost simulator.  {!create_file}
    and {!open_file} put the {e same} disk — same allocator, same cost
    model, same fault points — over a real block file: every write
    additionally stamps its blocks into the file through the {!Io}
    syscall shim and every read verifies what it finds
    (see {!Block_file}), so schemes, journal, checkpoint, buffer pool
    and crash harness run unchanged on real I/O. *)

type backend = Sim | File of string

val backend : t -> backend

val create_file : ?params:params -> path:string -> unit -> t
(** A fresh file-backed disk over a new (truncated) block file at
    [path].  The block size must be at least {!Block_file.stamp_bytes}. *)

val open_file : ?params:params -> path:string -> unit -> t
(** Reopen a file-backed disk from [path] and its allocator snapshot
    [path ^ ".alloc"] (written by {!checkpoint_alloc}; a stale
    [.alloc.tmp] is cleaned up).  Every live extent's blocks are
    verified against the valid-stamp-or-zero rule; extents that fail —
    foreign or stale-generation stamps, CRC damage, truncated tail —
    are marked torn, exactly as an interrupted in-memory write would
    be, so recovery's [change_intact] test sees real damage.  Raises
    {!Disk_error} on a missing or unparseable snapshot. *)

val close : t -> unit
(** Close the backing file (no-op on the simulator).  Idempotent. *)

val fsync : t -> unit
(** Durability barrier on the backing file (no-op on the simulator). *)

val checkpoint_alloc : t -> unit
(** Persist the allocator snapshot to [path ^ ".alloc"] — tmp, fsync,
    atomic rename — so {!open_file} can rebuild allocation state.
    Called by the checkpoint layer after flushing data and before
    committing its manifest.  No-op on the simulator. *)

val backing : t -> Block_file.t option
(** The real block file, when this disk has one.  The crash harness
    uses it to truncate the tail behind a kill. *)

val id : t -> int
(** Process-unique identity of this disk (creation order).  Client
    layers that keep per-disk attachments — e.g. the buffer pool in
    {!Wave_cache} — key them on this id rather than on the mutable
    record itself. *)

(** {1 Allocation} *)

val alloc : t -> blocks:int -> extent
(** [alloc t ~blocks] reserves a contiguous extent.  First-fit over the
    free list, falling back to extending the high-water frontier; the
    address space is unbounded.  [blocks] must be positive. *)

val free : t -> extent -> unit
(** Returns an extent to the free list, coalescing with neighbours.
    Freeing an extent twice or one not produced by this disk raises
    {!Disk_error}.  When a {!set_free_gate} gate claims the extent, the
    free is deferred: the extent stays live (not reusable, generation
    intact) and the caller's handle is dead — the gate's owner is now
    responsible for re-issuing the free once no snapshot needs it. *)

val set_free_gate : t -> (extent -> bool) option -> unit
(** Install (or clear, with [None]) the free gate.  [free t ext] first
    asks the gate; a [true] answer defers the free as described above.
    Installed by {!Wave_epoch} so retired-but-undrained epochs keep the
    extents their snapshots still read; at most one gate at a time. *)

val set_op_observer : t -> (unit -> unit) option -> unit
(** Install (or clear) an observer called after every {e successfully}
    charged operation — seeks, transfers, delays, writes, flush notes.
    Faulting operations raise before the charge and never notify.  The
    epoch interleaver uses this as a logical clock to deliver query
    arrivals between the disk operations of a running transition. *)

val is_live : t -> extent -> bool
(** Whether the extent is currently allocated on this disk. *)

val live_at : t -> start:int -> length:int -> bool
(** Whether an extent with exactly this shape is currently allocated —
    the address-level twin of {!is_live}, usable from recovery code
    that only has journalled [(start, length)] pairs, not handles. *)

val live_extents : t -> extent list
(** Every live extent, in address order.  Recovery uses this to find
    extents leaked by an interrupted transition: anything live that no
    surviving index accounts for. *)

(** {1 Access costing} *)

val read : t -> extent -> unit
(** Charge one seek plus the transfer of the whole extent.  The extent
    must be live. *)

val read_blocks : t -> extent -> blocks:int -> unit
(** Charge one seek plus the transfer of [blocks] (<= extent length)
    from a live extent; models reading a prefix such as one bucket. *)

val write : t -> extent -> unit
(** Charge one seek plus the transfer of the whole extent. *)

val write_blocks : t -> extent -> blocks:int -> unit

val write_run : t -> extent -> off:int -> blocks:int -> unit
(** Charge one seek plus the transfer of [blocks] starting [off] blocks
    into a live extent — a coalesced run of deferred (write-back) frame
    writes.  Bounds-checked ([off + blocks <= length]); a full rewrite
    ([off = 0], [blocks = length]) replaces torn contents exactly as
    {!write} does, a partial one does not. *)

val note_flush : t -> unit
(** Record one buffer-pool flush drain.  Charges nothing (the drain's
    runs charge themselves through {!write_run}) but counts toward
    {!counters}[.flushes] and is an [On_flush] fault point, so a crash
    plan can name "the k-th flush" — the moment the pool is still fully
    dirty and no deferred write has reached the disk. *)

val sequential_read : t -> extent list -> unit
(** Charge one seek, then transfer every extent in the list without
    further seeks — the paper's packed segment scan, which reads "from
    the first bucket until the last bucket" with a single seek.  All
    extents must be live. *)

val charge_seek : t -> unit
val charge_transfer_bytes : t -> int -> unit

val charge_read_transfer : t -> blocks:int -> unit
(** Charge the transfer of [blocks] {e without} a seek, counting them
    as blocks read.  The buffer pool uses this to batch several cache
    misses behind the single seek it already charged; on its own it
    models the tail of any contiguous read. *)

val assert_readable : t -> extent -> unit
(** Raise exactly as {!read} would — extent not live, stale shape, or
    torn contents — but charge nothing.  Lets a cache serve fully
    resident reads at zero cost while still refusing to satisfy reads
    that the disk itself would refuse. *)

val charge_delay : t -> float -> unit
(** Advance the model clock by a non-disk cost (e.g. CPU time spent
    parsing and sorting a batch while building an index).  The paper's
    measured [Build]/[Add] parameters are dominated by such processing,
    so the simulator can be configured to charge it too. *)

(** {1 Metrics} *)

type counters = {
  seeks : int;
  blocks_read : int;
  blocks_written : int;
  write_ops : int;  (** write {e operations} (not blocks) — each is a torn-write injection point *)
  flushes : int;  (** buffer-pool flush drains noted via {!note_flush} *)
  elapsed : float;  (** model seconds consumed so far *)
}

val counters : t -> counters

val elapsed : t -> float
(** Model seconds consumed since creation. *)

val reset_counters : t -> unit
(** Zero the counters; allocation state is untouched. *)

val live_blocks : t -> int
(** Blocks currently allocated. *)

val extent_covering : t -> addr:int -> extent option
(** The live extent containing absolute block address [addr], if any.
    The write-back pool uses this at eviction and flush time to map a
    dirty frame's address back to the destination extent of its
    deferred write. *)

val generation_at : t -> start:int -> int option
(** Allocation generation of the live extent starting at [start]
    ([None] if none does).  Generations are unique across the disk's
    lifetime, so a recovery log that remembers an extent's generation
    can tell the original extent from a same-shaped reallocation at the
    same address — the allocator-reuse hazard an LSN solves in a real
    write-ahead log. *)

val peak_blocks : t -> int
(** Maximum of {!live_blocks} ever observed — the paper's "maximum
    storage required". *)

val reset_peak : t -> unit
(** Restart peak tracking from the current live size. *)

val high_water : t -> int
(** Frontier of the address space (largest block index ever used + 1). *)

val fragmentation : t -> float
(** 1 - live/high_water: share of the touched address space that is
    currently free.  0 when nothing was ever allocated. *)

val pp_counters : Format.formatter -> counters -> unit

(** {1 Fault injection}

    For crash-consistency testing: arm a {e fault plan} and the disk
    raises {!Disk_error} ["injected fault"] on the k-th subsequent
    matching operation, simulating a mid-transition failure.  Allocator
    state stays consistent (the failing operation charges nothing).

    A plan names a target operation class — seeks (which every read and
    write performs), write operations, or buffer-pool flush drains — and
    a mode.  [Fail_stop] simply raises.  [Torn] (writes only) first
    marks the destination extent's contents invalid: the extent stays
    allocated, but any read of it raises ["torn extent"] until it is
    either freed or completely rewritten.  This models a crash that
    tears a sector-level write after the space was allocated.  An
    [On_flush] point fires at {!note_flush}, i.e. {e before} any of the
    drain's deferred writes — the crash-with-a-fully-dirty-pool case;
    crashes inside the drain are the drain's own [On_write] points.

    A {e queue} of plans can be armed at once ({!arm_faults}): only the
    head plan counts down; when it fires, the queue pops and the next
    plan starts counting from that operation on.  This is how the
    double-fault sweep injects a second crash {e during recovery} from
    the first.  Arming again {e replaces} the whole queue (last arm
    wins).  An armed queue survives {!reset_counters} — counters are
    observability state, plans are injected-failure state — and
    {!clear_fault} is idempotent.

    Every firing also lands in {!Wave_obs.Recorder} as an [io] event
    (syscall [seek]/[write]/[flush], outcome
    ["fault"]/["torn"]/["stall"]), so a crash-sweep flight dump ends
    with the injected fault that killed the run. *)

type fault_target = On_seek | On_write | On_flush

type fault_mode =
  | Fail_stop
  | Torn
  | Stall of float
      (** slow I/O rather than failure: charge this many model seconds
          of delay at the fault point, then let the operation proceed
          (and pop to the next plan).  Any target; on a file-backed
          disk the real syscall still runs. *)

type fault_point = { target : fault_target; at : int }
(** The [at]-th next operation of class [target] (1-based). *)

val pp_fault_point : Format.formatter -> fault_point -> unit

val arm_fault : t -> ?mode:fault_mode -> fault_point -> unit
(** Arm a single plan (default mode [Fail_stop]), replacing any queue.
    Raises {!Disk_error} when [at < 1], when [Torn] is combined with
    anything but [On_write], or on a negative stall. *)

val arm_faults : t -> (fault_point * fault_mode) list -> unit
(** Arm a whole queue in firing order.  Validates every plan as
    {!arm_fault} does; the empty list disarms. *)

val armed_faults : t -> (fault_point * fault_mode) list
(** The remaining queue, head first, with the head's [at] counted down
    to the operations left before it fires. *)

val stall_count : t -> int
(** Stall plans fired so far (also counted in the [disk.stalls]
    metric).  Not part of {!counters}: stalls charge their delay into
    [elapsed] and are injection state, not an operation class. *)

val set_fault : t -> after_seeks:int -> unit
(** [set_fault t ~after_seeks:k] makes the k-th next seek fail (k >= 1);
    equivalent to [arm_fault t { target = On_seek; at = k }]. *)

val clear_fault : t -> unit
(** Disarm any plan.  Idempotent; never raises. *)

val fault_armed : t -> bool

val armed_fault : t -> (fault_point * fault_mode) option
(** The currently armed plan, with [at] counted down to the remaining
    operations before it fires. *)

val fault_schedule : before:counters -> after:counters -> fault_point list
(** Every injection point inside the operation bracketed by the two
    counter snapshots: one [On_seek] point per seek consumed, one
    [On_write] point per write operation consumed, and one [On_flush]
    point per flush drain consumed.  A harness measures an uncrashed
    twin, then sweeps the returned points one per run. *)

val is_torn : t -> extent -> bool
val torn_at : t -> start:int -> bool
val torn_count : t -> int
(** Number of extents currently marked torn (0 on a healthy disk). *)
