(** The real block file under the [file:] disk backend.

    One preallocated flat file, byte offset [= block * block_size] — the
    same O(1) addressing as the simulator's block address space, so an
    extent handle maps to a file range with no translation table.

    The simulator charges costs but carries no payloads: index entries
    live in memory and the day store is the system of record.  What the
    file backend persists per block is therefore a {e self-describing
    stamp} — magic, owning extent start, allocation generation, absolute
    block index, per-operation write sequence, CRC-32 — enough to decide
    after a kill whether every write that claimed to complete really
    reached the platter intact.  The verification rule is
    {e valid-stamp-or-zero}: a block must either carry a stamp whose CRC
    checks out and whose (extent, generation, index) match the live
    extent being verified, or be all zeros (allocated but never
    written).  {!Disk} zeroes an extent's range at allocation time to
    make the second disjunct sound, so cross-extent corruption,
    stale-generation reuse and tail truncation are all caught.  A torn
    rewrite of an extent {e in place} (same extent, same generation) can
    leave a mix of old and new stamps that both verify — undetectable by
    content, and harmless: in-place techniques always roll forward.

    All file I/O goes through the {!Io} shim (fault injection, retry,
    [disk.file.*] metrics).  Raises {!Io.Io_error} on I/O failure. *)

type t

val stamp_bytes : int
(** Bytes of each block consumed by the stamp (the rest stay zero).
    [block_size] must be at least this. *)

val create : path:string -> block_size:int -> t
(** Create (or truncate) the block file.  Raises [Invalid_argument] if
    [block_size < stamp_bytes]. *)

val open_existing : path:string -> block_size:int -> t
(** Open an existing block file; its current size is taken as-is (it
    may be shorter than the allocator frontier after a torn-tail
    crash). *)

val close : t -> unit
(** Idempotent. *)

val path : t -> string
val block_size : t -> int

val size_blocks : t -> int
(** Whole blocks the file currently covers. *)

val fsync : t -> unit

val ensure_blocks : t -> int -> unit
(** Grow the file (with zeros) so it covers at least this many blocks.
    Never shrinks. *)

val zero_range : t -> start:int -> blocks:int -> unit
(** Physically zero a block range — called at allocation so reused
    space satisfies the valid-stamp-or-zero rule.  Extends the file
    first if needed; only the portion below the old end of file incurs
    a write. *)

val write_range :
  t -> start:int -> blocks:int -> ext_start:int -> gen:int -> seq:int -> unit
(** Stamp every block of the range, one batched [pwrite]. *)

val write_torn_prefix :
  t -> start:int -> blocks:int -> ext_start:int -> gen:int -> seq:int -> int
(** Physically write stamps for roughly the first half of the range
    (at least one block, fewer than [blocks] when [blocks > 1]) and
    return how many were written — the on-disk half of a torn-write
    injection.  The caller then marks the extent torn and raises. *)

val verify_range :
  t -> start:int -> blocks:int -> ext_start:int -> gen:int -> bool
(** Read the range (one batched [pread]) and check valid-stamp-or-zero
    against the owning extent.  [false] on any damaged block, and on a
    range the (possibly truncated) file no longer covers.  Transient
    read errors retry inside {!Io}; a permanent failure raises. *)

val truncate_tail : t -> blocks:int -> unit
(** Cut the file down to this many blocks — the harness's torn-tail
    crash: the last write's blocks vanish entirely. *)
