open Wave_core
open Wave_storage
open Wave_disk
open Wave_epoch
open Wave_model
module Metrics = Wave_obs.Metrics

type arm_state = { id : int; mutable scheme : Scheme.t; disk : Disk.t }
type intent = { victim_arm : int; sib_disk : Disk.t }

type t = {
  kind : Scheme.kind;
  icfg : Index.config;
  technique : Env.technique;
  allow_deletes : bool;
  base_store : Env.day_store;
  clock : Parallel.t;
  w : int;
  n : int;
  mutable part : Partition.t;
  mutable arms_arr : arm_state array;
  mutable day : int;
  mutable n_splits : int;
  mutable intent : intent option;
  mutable served : Entry.t list list;
}

exception Split_in_progress

let filtered_store base part arm_id d =
  Entry.batch_filter (base d) ~keep:(fun v ->
      Partition.arm_of_value part v = arm_id)

let fanout_hist = lazy (Metrics.histogram "shard.fanout")

let update_gauges t =
  Metrics.set (Metrics.gauge "shard.arms")
    (float_of_int (Array.length t.arms_arr));
  Metrics.set (Metrics.gauge "shard.skew_ratio") (Parallel.skew_ratio t.clock);
  Array.iteri
    (fun i a ->
      let g fmt = Metrics.gauge (Printf.sprintf fmt i) in
      Metrics.set (g "shard.%d.busy_seconds") (Parallel.busy_arm t.clock i);
      Metrics.set (g "shard.%d.space_bytes")
        (float_of_int (Scheme.allocated_bytes a.scheme));
      Metrics.set (g "shard.%d.wave_length")
        (float_of_int (Frame.length (Scheme.frame a.scheme))))
    t.arms_arr;
  (* The registry is process-global: a previous, wider router (or this
     one before a future shrink) may have published per-arm gauges for
     indices this router doesn't own.  Retire every contiguous stale
     index so a snapshot/export never mixes live arms with fossils. *)
  let rec drop_stale i =
    let r1 = Metrics.remove (Printf.sprintf "shard.%d.busy_seconds" i) in
    let r2 = Metrics.remove (Printf.sprintf "shard.%d.space_bytes" i) in
    let r3 = Metrics.remove (Printf.sprintf "shard.%d.wave_length" i) in
    if r1 || r2 || r3 then drop_stale (i + 1)
  in
  drop_stale (Array.length t.arms_arr)

let create ?(icfg = Index.default_config) ?(technique = Env.In_place)
    ?(allow_deletes = true) ~kind ~partition ~shards ~vocab ~store ~w ~n () =
  let part = Partition.create partition ~arms:shards ~vocab in
  let arms_arr =
    Array.init shards (fun id ->
        let disk = Index.make_disk icfg in
        let env =
          Env.create ~disk ~icfg ~technique ~allow_deletes
            ~store:(filtered_store store part id) ~w ~n ()
        in
        { id; scheme = Scheme.start kind env; disk })
  in
  let t =
    {
      kind;
      icfg;
      technique;
      allow_deletes;
      base_store = store;
      clock = Parallel.create ~arms:shards;
      w;
      n;
      part;
      arms_arr;
      day = w;
      n_splits = 0;
      intent = None;
      served = [];
    }
  in
  update_gauges t;
  t

let partition t = t.part
let arms t = Array.length t.arms_arr
let current_day t = t.day
let clock t = t.clock
let splits t = t.n_splits
let arm_disk t i = t.arms_arr.(i).disk
let arm_scheme t i = t.arms_arr.(i).scheme
let last_served t = t.served

let probe t ~value ~t1 ~t2 =
  let a = t.arms_arr.(Partition.arm_of_value t.part value) in
  let before = Disk.elapsed a.disk in
  let entries =
    Frame.timed_index_probe (Scheme.frame a.scheme) ~t1 ~t2 ~value
  in
  let makespan =
    Parallel.record t.clock [ (a.id, Disk.elapsed a.disk -. before) ]
  in
  Metrics.inc (Metrics.counter "shard.probes");
  Metrics.observe (Lazy.force fanout_hist) 1.0;
  (entries, makespan)

let scan t ~t1 ~t2 =
  let deltas, parts =
    Array.fold_left
      (fun (ds, es) a ->
        let before = Disk.elapsed a.disk in
        let part = Frame.timed_segment_scan (Scheme.frame a.scheme) ~t1 ~t2 in
        ((a.id, Disk.elapsed a.disk -. before) :: ds, part :: es))
      ([], []) t.arms_arr
  in
  let makespan = Parallel.record t.clock deltas in
  Metrics.inc (Metrics.counter "shard.scans");
  Metrics.observe (Lazy.force fanout_hist)
    (float_of_int (Array.length t.arms_arr));
  (List.sort Entry.compare (List.concat parts), makespan)

let advance t =
  let deltas =
    Array.fold_left
      (fun ds a ->
        let before = Disk.elapsed a.disk in
        Scheme.transition a.scheme;
        (a.id, Disk.elapsed a.disk -. before) :: ds)
      [] t.arms_arr
  in
  t.day <- t.day + 1;
  let makespan = Parallel.record t.clock deltas in
  update_gauges t;
  makespan

(* -------------------------------------------------------------------- *)
(* Rebalancing: split a hot arm as a snapshot-isolated transition.      *)
(* -------------------------------------------------------------------- *)

let range_pred days ~t1 ~t2 = Dayset.exists (fun d -> d >= t1 && d <= t2) days

let claimed_extents scheme =
  List.concat_map
    (fun (idx, _) -> Index.extents idx)
    (Frame.snapshot (Scheme.frame scheme))
  @ List.concat_map Index.extents (Scheme.temp_indexes scheme)

let split ?(on_sibling = fun _ -> ()) ?(serve = []) t ~arm =
  if t.intent <> None then raise Split_in_progress;
  if not (Partition.can_split t.part ~arm) then
    invalid_arg (Printf.sprintf "Router.split: arm %d not divisible" arm);
  let victim = t.arms_arr.(arm) in
  let new_part = Partition.split t.part ~arm in
  let new_id = Partition.arms t.part in
  let sib_disk = Index.make_disk t.icfg in
  t.intent <- Some { victim_arm = arm; sib_disk };
  t.served <- [];
  on_sibling sib_disk;
  let before_v = Disk.elapsed victim.disk in
  let before_s = Disk.elapsed sib_disk in
  Epoch.attach victim.disk;
  let old_scheme = victim.scheme in
  let old_slots = Frame.snapshot (Scheme.frame old_scheme) in
  let epoch =
    Epoch.open_ victim.disk
      ~slots:(List.map (fun (idx, days) -> (idx, range_pred days)) old_slots)
  in
  let pending = ref serve in
  let serve_one () =
    match !pending with
    | [] -> ()
    | (v, t1, t2) :: rest ->
      pending := rest;
      Epoch.acquire epoch;
      let r = Epoch.probe epoch ~value:v ~t1 ~t2 in
      Epoch.release epoch;
      t.served <- t.served @ [ r ]
  in
  Epoch.Interleave.run victim.disk ~on_op:serve_one (fun () ->
      (* Sibling half first: a fault on the fresh disk must fire before
         anything irreversible happens on the victim. *)
      let mk_env disk id =
        Env.create ~disk ~icfg:t.icfg ~technique:t.technique
          ~allow_deletes:t.allow_deletes
          ~store:(filtered_store t.base_store new_part id) ~w:t.w ~n:t.n ()
      in
      let sib_scheme = Scheme.start t.kind (mk_env sib_disk new_id) in
      Scheme.advance_to sib_scheme t.day;
      (* Retained half rebuilds on the victim's own disk while the
         epoch keeps the pre-split snapshot probe-able. *)
      let keep_scheme = Scheme.start t.kind (mk_env victim.disk arm) in
      Scheme.advance_to keep_scheme t.day;
      while !pending <> [] do
        serve_one ()
      done;
      (* The atomic swap: commit the new partition and arm set in one
         in-memory step, aligned with the epoch swap.  Every fault
         point lands before this line, so recovery always sees the old
         committed partition. *)
      t.part <- new_part;
      victim.scheme <- keep_scheme;
      t.arms_arr <-
        Array.append t.arms_arr
          [| { id = new_id; scheme = sib_scheme; disk = sib_disk } |];
      Parallel.grow t.clock ~arms:(new_id + 1);
      t.intent <- None;
      t.n_splits <- t.n_splits + 1;
      Epoch.commit ~swap_seconds:0.0 victim.disk;
      (* Retire the pre-split constituents; drops of snapshot-visible
         indexes defer through the epoch gates until readers drain. *)
      List.iter (fun (idx, _) -> Index.drop idx) old_slots;
      List.iter Index.drop (Scheme.temp_indexes old_scheme));
  Epoch.release epoch;
  Epoch.detach victim.disk;
  Metrics.inc (Metrics.counter "shard.splits");
  let makespan =
    Parallel.record t.clock
      [
        (arm, Disk.elapsed victim.disk -. before_v);
        (new_id, Disk.elapsed sib_disk -. before_s);
      ]
  in
  update_gauges t;
  makespan

let recover t =
  match t.intent with
  | None -> ()
  | Some { victim_arm; sib_disk } ->
    let victim = t.arms_arr.(victim_arm) in
    Disk.clear_fault victim.disk;
    Disk.clear_fault sib_disk;
    (* Discard the epoch's deferred drops/frees without executing them:
       the half-built indexes' extents are the leaks the sweep below
       frees, exactly like transition recovery. *)
    Epoch.on_crash victim.disk;
    let claimed = claimed_extents victim.scheme in
    List.iter
      (fun e -> if not (List.mem e claimed) then Disk.free victim.disk e)
      (Disk.live_extents victim.disk);
    (* The sibling disk was never installed; dropping the reference
       discards it wholesale. *)
    t.intent <- None

let check_no_leaks t =
  Array.iter
    (fun a ->
      let claimed = claimed_extents a.scheme in
      List.iter
        (fun e ->
          if not (List.mem e claimed) then
            failwith
              (Printf.sprintf
                 "Router.check_no_leaks: arm %d leaks extent at %d (%d blocks)"
                 a.id e.Disk.start e.Disk.length))
        (Disk.live_extents a.disk))
    t.arms_arr

(* -------------------------------------------------------------------- *)
(* Driving a sharded run                                                *)
(* -------------------------------------------------------------------- *)

type run_result = {
  days_run : int;
  queries : int;
  query_makespan_s : float;
  query_serial_s : float;
  maintenance_makespan_s : float;
  splits_done : int;
  skew : float;
  speedup : float;
  throughput_qps : float;
}

let total_elapsed t =
  Array.fold_left (fun acc a -> acc +. Disk.elapsed a.disk) 0.0 t.arms_arr

let hottest_splittable t =
  let best = ref None in
  Array.iteri
    (fun i _ ->
      if Partition.can_split t.part ~arm:i then
        let busy = Parallel.busy_arm t.clock i in
        match !best with
        | Some (_, b) when b >= busy -> ()
        | _ -> best := Some (i, busy))
    t.arms_arr;
  Option.map fst !best

let run ?split_threshold ?on_day t ~spec ~days =
  let q_par = ref 0.0 and q_ser = ref 0.0 and m_par = ref 0.0 in
  let nq = ref 0 in
  for _ = 1 to days do
    m_par := !m_par +. advance t;
    (match split_threshold with
    | Some thr when Parallel.skew_ratio t.clock > thr -> (
      match hottest_splittable t with
      | Some i -> m_par := !m_par +. split t ~arm:i
      | None -> ())
    | _ -> ());
    List.iter
      (fun q ->
        incr nq;
        let before = total_elapsed t in
        let makespan =
          match q with
          | Wave_workload.Query_gen.Probe { value; t1; t2 } ->
            snd (probe t ~value ~t1 ~t2)
          | Wave_workload.Query_gen.Scan { t1; t2 } -> snd (scan t ~t1 ~t2)
        in
        q_par := !q_par +. makespan;
        q_ser := !q_ser +. (total_elapsed t -. before))
      (Wave_workload.Query_gen.day_queries spec ~day:t.day ~w:t.w);
    match on_day with Some f -> f t.day | None -> ()
  done;
  {
    days_run = days;
    queries = !nq;
    query_makespan_s = !q_par;
    query_serial_s = !q_ser;
    maintenance_makespan_s = !m_par;
    splits_done = t.n_splits;
    skew = Parallel.skew_ratio t.clock;
    speedup = Parallel.speedup t.clock;
    throughput_qps = (if !q_par > 0.0 then float_of_int !nq /. !q_par else 0.0);
  }
