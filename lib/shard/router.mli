(** The shard router: N arms, each a full scheme instance on its own
    disk, behind one query surface.

    Every arm runs the {e same} scheme x technique over its slice of
    the key space (its day store is the base store filtered through the
    committed {!Partition.t}), so the router is transparent: a probe
    routed to the owning arm returns bit-identical entries to a
    single-disk run, and a scan is the (sorted) union of the arms'
    scans.

    Costs use parallel semantics via {!Wave_model.Parallel}: a fan-out
    is charged the max over the touched arms' disk-clock deltas (its
    makespan), while per-arm busy totals feed utilisation/skew gauges
    ([shard.<i>.*], [shard.skew_ratio], [shard.fanout]).

    {2 Rebalancing}

    {!split} carves a hot arm in two as a snapshot-isolated transition
    on the PR 8 epoch machinery: probes keep resolving against the
    victim's pre-split epoch while both halves build, the new partition
    is committed in one atomic swap aligned with [Epoch.commit], and a
    crash at any disk fault point before the swap {!recover}s to the
    old committed partition (the half-built indexes are swept as
    leaks, the sibling disk is discarded).  After the swap the old
    constituents drop through the epoch's deferred gates as readers
    drain. *)

open Wave_core
open Wave_storage
open Wave_disk

type t

val create :
  ?icfg:Index.config ->
  ?technique:Env.technique ->
  ?allow_deletes:bool ->
  kind:Scheme.kind ->
  partition:Partition.kind ->
  shards:int ->
  vocab:int ->
  store:Env.day_store ->
  w:int ->
  n:int ->
  unit ->
  t
(** Build [shards] arms, each [Scheme.start]ed over days [1..w] of its
    filtered store.  Every arm gets its own simulated disk compatible
    with [icfg].  Publishing the per-arm gauges also {e retires} any
    stale [shard.<i>.*] names beyond this router's arm count — the
    metrics registry is process-global, so a previous wider router
    would otherwise leave fossil gauges in every snapshot and
    export. *)

val partition : t -> Partition.t
(** The committed partition (the only one queries ever route by). *)

val arms : t -> int
val current_day : t -> int
val clock : t -> Wave_model.Parallel.t
val splits : t -> int
(** Completed (committed) splits. *)

val arm_disk : t -> int -> Disk.t
val arm_scheme : t -> int -> Scheme.t

val probe : t -> value:int -> t1:int -> t2:int -> Entry.t list * float
(** Route to the owning arm (fan-out 1); returns the entries and the
    makespan charged to the parallel clock. *)

val scan : t -> t1:int -> t2:int -> Entry.t list * float
(** Fan out to every arm; entries merged in [Entry.compare] order. *)

val advance : t -> float
(** Absorb the next day on every arm (each arm's transition runs
    concurrently with the others'); returns the makespan.  Updates the
    per-arm gauges. *)

exception Split_in_progress

val split :
  ?on_sibling:(Disk.t -> unit) ->
  ?serve:(int * int * int) list ->
  t ->
  arm:int ->
  float
(** Split [arm] (must satisfy [Partition.can_split]).  [on_sibling]
    runs right after the new arm's disk is created — the crash sweep
    arms fault injection there.  [serve] is a list of [(value, t1,
    t2)] probes to serve {e during} the split from the victim's epoch
    snapshot (interleaved at disk-op ticks); their results are checked
    against the snapshot by the caller via {!last_served}.  Returns
    the makespan over the disks the split touched.

    On a disk fault the exception propagates with the router still on
    the old committed partition; call {!recover}. *)

val last_served : t -> Entry.t list list
(** Results of the [serve] probes of the most recent {!split}, in
    order. *)

val recover : t -> unit
(** Crash recovery for an interrupted {!split}: discard the epoch's
    deferred work ([Epoch.on_crash]), free the half-built indexes'
    leaked extents on the victim disk (everything live that no
    committed index claims), drop the sibling disk, clear fault
    injection.  Idempotent; a no-op when no split was in flight. *)

val check_no_leaks : t -> unit
(** Assert every live extent on every arm disk is claimed by that
    arm's committed constituents or scheme temporaries ([Failure]
    otherwise) — the sweep's post-recovery invariant. *)

(** {1 Driving a sharded run} *)

type run_result = {
  days_run : int;
  queries : int;
  query_makespan_s : float;  (** parallel model-seconds serving queries *)
  query_serial_s : float;  (** what one disk would have paid *)
  maintenance_makespan_s : float;
  splits_done : int;
  skew : float;  (** {!Wave_model.Parallel.skew_ratio} at end *)
  speedup : float;  (** serial / parallel over the whole run *)
  throughput_qps : float;  (** queries per parallel model-second *)
}

val run :
  ?split_threshold:float ->
  ?on_day:(int -> unit) ->
  t ->
  spec:Wave_workload.Query_gen.spec ->
  days:int ->
  run_result
(** Advance [days] days, serving each day's generated queries through
    the router.  With [split_threshold], a day boundary where the busy
    skew ratio exceeds the threshold splits the busiest splittable
    arm.  [on_day] runs at the end of every day (after that day's
    queries), with the current day number — the hook the CLI uses to
    sample {!Wave_obs.Series} and redraw the live dashboard. *)
