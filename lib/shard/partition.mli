(** Key-space partitioning for the sharded wave index.

    A partition maps every posting search value to the {e arm} (shard)
    that owns it.  Two strategies (Section 8's striping, made explicit):

    - {e Hash}: values are hashed into a fixed set of virtual buckets
      ({!buckets}); each bucket is owned by one arm.  Splits move
      buckets, so ownership of untouched arms never changes.
    - {e Range}: each arm owns a contiguous slice of [1..vocab]
      (values outside are clamped to the nearest slice).  Splits cut
      the victim's slice at its midpoint.

    Partitions are immutable; {!split} returns a successor with
    [generation + 1], which is what the split transition commits
    atomically (the crash sweep asserts recovery lands on exactly one
    committed partition). *)

type kind = Hash | Range

val kind_name : kind -> string
val kind_of_name : string -> kind option

type t

val buckets : int
(** Number of virtual hash buckets (64) — the split granularity for
    {!Hash} partitions. *)

val create : kind -> arms:int -> vocab:int -> t
(** [arms >= 1]; Hash requires [arms <= buckets]; Range requires
    [arms <= vocab]. Generation starts at 1. *)

val kind : t -> kind
val arms : t -> int
val vocab : t -> int

val generation : t -> int
(** Monotone across {!split} — the committed-map tag the crash sweep
    checks. *)

val arm_of_value : t -> int -> int
(** The owning arm for a search value.  Deterministic; total (every
    int maps somewhere). *)

val can_split : t -> arm:int -> bool
(** Whether the arm's key share is divisible (Hash: owns >= 2 buckets;
    Range: slice longer than 1). *)

val split : t -> arm:int -> t
(** Successor partition with one more arm (the new arm takes the id
    [arms t]): half the victim's buckets (Hash) or the upper half of
    its slice (Range) move to the new arm; every other arm's ownership
    is untouched.  [Invalid_argument] if [not (can_split t ~arm)]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val place : weights:float array -> arms:int -> int array
(** Longest-processing-time greedy placement of weighted slots onto
    [arms] arms: heaviest slot first, each to the currently
    least-loaded arm (ties to the lowest id).  Returns the slot ->
    arm map.  Used by [Multi_disk] to balance constituent day-ranges
    across disks instead of round-robin. *)
