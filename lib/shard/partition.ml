open Wave_core

type kind = Hash | Range

let kind_name = function Hash -> "hash" | Range -> "range"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "hash" -> Some Hash
  | "range" -> Some Range
  | _ -> None

let buckets = 64

type map =
  | Hash_map of int array  (** bucket -> arm *)
  | Range_map of (int * int) array  (** arm -> inclusive value slice *)

type t = { map : map; vocab : int; n_arms : int; generation : int }

let create k ~arms ~vocab =
  if arms < 1 then invalid_arg "Partition.create: need at least one arm";
  if vocab < 1 then invalid_arg "Partition.create: vocab must be >= 1";
  let map =
    match k with
    | Hash ->
      if arms > buckets then
        invalid_arg
          (Printf.sprintf "Partition.create: at most %d hash arms" buckets);
      Hash_map (Array.init buckets (fun b -> b mod arms))
    | Range ->
      if arms > vocab then
        invalid_arg "Partition.create: more range arms than values";
      Range_map
        (Array.of_list (Split.contiguous ~first_day:1 ~days:vocab ~parts:arms))
  in
  { map; vocab; n_arms = arms; generation = 1 }

let kind t = match t.map with Hash_map _ -> Hash | Range_map _ -> Range
let arms t = t.n_arms
let vocab t = t.vocab
let generation t = t.generation

(* Multiplicative mixer (Murmur3 finalizer constants): spreads adjacent
   values across buckets so Zipf-hot heads don't clump on one arm. *)
let bucket_of_value v =
  let h = v * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  let h = h * 0x85EBCA6B in
  let h = h lxor (h lsr 13) in
  (h land max_int) mod buckets

let arm_of_value t v =
  match t.map with
  | Hash_map owner -> owner.(bucket_of_value v)
  | Range_map slices ->
    let v = max 1 (min t.vocab v) in
    let rec find i =
      if i >= Array.length slices - 1 then i
      else
        let lo, hi = slices.(i) in
        if v >= lo && v <= hi then i else find (i + 1)
    in
    find 0

let owned_buckets owner arm =
  Array.to_list owner
  |> List.mapi (fun b a -> (b, a))
  |> List.filter_map (fun (b, a) -> if a = arm then Some b else None)

let can_split t ~arm =
  if arm < 0 || arm >= t.n_arms then false
  else
    match t.map with
    | Hash_map owner -> List.length (owned_buckets owner arm) >= 2
    | Range_map slices ->
      let lo, hi = slices.(arm) in
      hi > lo

let split t ~arm =
  if not (can_split t ~arm) then
    invalid_arg (Printf.sprintf "Partition.split: arm %d not divisible" arm);
  let new_arm = t.n_arms in
  let map =
    match t.map with
    | Hash_map owner ->
      let mine = owned_buckets owner arm in
      let keep = List.length mine - (List.length mine / 2) in
      let moving = List.filteri (fun i _ -> i >= keep) mine in
      let owner = Array.copy owner in
      List.iter (fun b -> owner.(b) <- new_arm) moving;
      Hash_map owner
    | Range_map slices ->
      let lo, hi = slices.(arm) in
      let mid = (lo + hi) / 2 in
      let slices = Array.copy slices in
      slices.(arm) <- (lo, mid);
      Range_map (Array.append slices [| (mid + 1, hi) |])
  in
  { t with map; n_arms = new_arm + 1; generation = t.generation + 1 }

let equal a b =
  a.vocab = b.vocab && a.n_arms = b.n_arms && a.generation = b.generation
  &&
  match (a.map, b.map) with
  | Hash_map x, Hash_map y -> x = y
  | Range_map x, Range_map y -> x = y
  | _ -> false

let pp ppf t =
  match t.map with
  | Hash_map owner ->
    Format.fprintf ppf "hash[gen %d, %d arms:" t.generation t.n_arms;
    for a = 0 to t.n_arms - 1 do
      Format.fprintf ppf " %d=%db" a (List.length (owned_buckets owner a))
    done;
    Format.fprintf ppf "]"
  | Range_map slices ->
    Format.fprintf ppf "range[gen %d," t.generation;
    Array.iteri (fun a (lo, hi) -> Format.fprintf ppf " %d=%d..%d" a lo hi)
      slices;
    Format.fprintf ppf "]"

let to_string t = Format.asprintf "%a" pp t

let place ~weights ~arms =
  if arms < 1 then invalid_arg "Partition.place: need at least one arm";
  let order =
    Array.to_list weights
    |> List.mapi (fun i w -> (i, w))
    |> List.sort (fun (i, a) (j, b) ->
           match Float.compare b a with 0 -> Int.compare i j | c -> c)
  in
  let load = Array.make arms 0.0 in
  let out = Array.make (Array.length weights) 0 in
  List.iter
    (fun (i, w) ->
      let best = ref 0 in
      for a = 1 to arms - 1 do
        if load.(a) < load.(!best) then best := a
      done;
      out.(i) <- !best;
      load.(!best) <- load.(!best) +. w)
    order;
  out
