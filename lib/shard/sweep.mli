(** Crash sweep for the shard-split transition.

    Mirrors [Crash_harness.sweep] for {!Router.split}: an uncrashed
    twin discovers every disk fault point of a split (on the victim's
    disk {e and} on the fresh sibling disk), then a fresh router is
    killed at each point and recovered.  Recovery must land on exactly
    one committed shard map — the pre-split partition, with probes
    bit-identical to the pre-split reference, no leaked extents, and
    the interrupted split re-runnable to the post-split reference. *)

open Wave_core
open Wave_disk

type point_result = {
  point : Disk.fault_point;
  on_sibling : bool;  (** fault armed on the new arm's disk *)
  fired : bool;
  rolled_back : bool;  (** recovered to the pre-split committed map *)
  probes_ok : bool;
  served_ok : bool;  (** probes served mid-split match the snapshot *)
  no_leaks : bool;
  resplit_ok : bool;  (** re-running the split reaches the post-split twin *)
}

val point_passed : point_result -> bool

type result = {
  scheme : Scheme.kind;
  technique : Env.technique;
  points : point_result list;
}

val result_passed : result -> bool

val sweep :
  ?artifact_dir:string ->
  ?shards:int ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  partition:Partition.kind ->
  w:int ->
  n:int ->
  unit ->
  result
(** One scheme x technique cell.  A failing point writes its
    flight-recorder dump under [artifact_dir] (created on demand;
    nothing is written when the sweep passes). *)

val sweep_matrix :
  ?artifact_dir:string ->
  ?shards:int ->
  ?schemes:Scheme.kind list ->
  ?techniques:Env.technique list ->
  partition:Partition.kind ->
  w:int ->
  n:int ->
  unit ->
  (result list * string)
(** The full matrix (defaults: all 6 schemes x 3 techniques) plus a
    printable summary table. *)
