open Wave_core
open Wave_storage
open Wave_disk

(* Same shape as [Crash_harness.default_store]: 8 postings a day over a
   6-value vocabulary, rids unique per (day, slot). *)
let vocab = 6

let store day =
  Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Entry.value = 1 + ((day + i) mod vocab);
           entry = { Entry.rid = (day * 100) + i; day; info = i };
         }))

type reference = { probes : Entry.t list array; scan : Entry.t list }

let capture r ~w =
  let day = Router.current_day r in
  let t1 = day - w + 1 and t2 = day in
  {
    probes =
      Array.init vocab (fun i -> fst (Router.probe r ~value:(i + 1) ~t1 ~t2));
    scan = fst (Router.scan r ~t1 ~t2);
  }

let ref_equal a b = a.probes = b.probes && a.scan = b.scan

type point_result = {
  point : Disk.fault_point;
  on_sibling : bool;
  fired : bool;
  rolled_back : bool;
  probes_ok : bool;
  served_ok : bool;
  no_leaks : bool;
  resplit_ok : bool;
}

let point_passed p =
  p.fired && p.rolled_back && p.probes_ok && p.served_ok && p.no_leaks
  && p.resplit_ok

type result = {
  scheme : Scheme.kind;
  technique : Env.technique;
  points : point_result list;
}

let result_passed r = r.points <> [] && List.for_all point_passed r.points

let ensure_dir dir = try Sys.mkdir dir 0o755 with Sys_error _ -> ()

let dump_flight ~reason path =
  try Wave_obs.Recorder.dump_to ~reason path with Sys_error _ -> ()

let no_leaks r =
  match Router.check_no_leaks r with
  | () -> true
  | exception Failure _ -> false

let sweep ?artifact_dir ?(shards = 2) ~scheme ~technique ~partition ~w ~n () =
  (* Uncrashed twin: reference answers on both sides of the split and
     the fault schedules of the two disks it touches. *)
  let make () =
    Router.create ~kind:scheme ~technique ~partition ~shards ~vocab ~store ~w
      ~n ()
  in
  let twin = make () in
  ignore (Router.advance twin);
  let day = Router.current_day twin in
  let pre_ref = capture twin ~w in
  let p0 = Router.partition twin in
  let serve =
    List.init vocab (fun i -> i + 1)
    |> List.filter (fun v -> Partition.arm_of_value p0 v = 0)
    |> List.filteri (fun i _ -> i < 2)
    |> List.map (fun v -> (v, day - w + 1, day))
  in
  let expected_served =
    List.map (fun (v, _, _) -> pre_ref.probes.(v - 1)) serve
  in
  let victim_disk = Router.arm_disk twin 0 in
  let before_v = Disk.counters victim_disk in
  let sib_before = ref None in
  ignore
    (Router.split twin ~arm:0 ~serve
       ~on_sibling:(fun d -> sib_before := Some (Disk.counters d)));
  let after_v = Disk.counters victim_disk in
  let after_s = Disk.counters (Router.arm_disk twin shards) in
  let post_ref = capture twin ~w in
  let sched_v = Disk.fault_schedule ~before:before_v ~after:after_v in
  let sched_s =
    Disk.fault_schedule ~before:(Option.get !sib_before) ~after:after_s
  in
  let run_point ~on_sibling point =
    Wave_obs.Recorder.clear ();
    let r = make () in
    ignore (Router.advance r);
    (* Replay the twin's pre-split capture so the victim disk enters
       the split at the exact counter state the schedule was
       discovered against. *)
    ignore (capture r ~w);
    if not on_sibling then
      Disk.arm_fault (Router.arm_disk r 0) ~mode:Disk.Fail_stop point;
    let arm_sibling d =
      if on_sibling then Disk.arm_fault d ~mode:Disk.Fail_stop point
    in
    let fired =
      match Router.split r ~arm:0 ~serve ~on_sibling:arm_sibling with
      | _ -> false
      | exception Disk.Disk_error _ -> true
    in
    let served = Router.last_served r in
    Router.recover r;
    let rolled_back =
      fired
      && Partition.generation (Router.partition r) = 1
      && Router.arms r = shards
      && Router.splits r = 0
    in
    let probes_ok = fired && ref_equal (capture r ~w) pre_ref in
    let served_ok =
      List.length served <= List.length expected_served
      && List.for_all2
           (fun got want -> got = want)
           served
           (List.filteri (fun i _ -> i < List.length served) expected_served)
    in
    let leaks_ok = no_leaks r in
    let resplit_ok =
      match Router.split r ~arm:0 ~serve with
      | _ ->
        Partition.generation (Router.partition r) = 2
        && Router.arms r = shards + 1
        && ref_equal (capture r ~w) post_ref
        && no_leaks r
      | exception _ -> false
    in
    {
      point;
      on_sibling;
      fired;
      rolled_back;
      probes_ok;
      served_ok;
      no_leaks = leaks_ok;
      resplit_ok;
    }
  in
  let run_side ~on_sibling sched =
    List.map
      (fun point ->
        let res = run_point ~on_sibling point in
        (if not (point_passed res) then
           match artifact_dir with
           | None -> ()
           | Some dir ->
             ensure_dir dir;
             let slug =
               Format.asprintf "%s_%s_%s%a"
                 (Scheme.name scheme)
                 (Env.technique_name technique)
                 (if on_sibling then "sib_" else "victim_")
                 Disk.pp_fault_point point
             in
             dump_flight ~reason:"shard split sweep failure"
               (Filename.concat dir (slug ^ ".jsonl")));
        res)
      sched
  in
  {
    scheme;
    technique;
    points = run_side ~on_sibling:false sched_v @ run_side ~on_sibling:true sched_s;
  }

let sweep_matrix ?artifact_dir ?shards ?(schemes = Scheme.all)
    ?(techniques = Env.[ In_place; Simple_shadow; Packed_shadow ]) ~partition
    ~w ~n () =
  let results =
    List.concat_map
      (fun scheme ->
        List.map
          (fun technique ->
            sweep ?artifact_dir ?shards ~scheme ~technique ~partition ~w ~n ())
          techniques)
      schemes
  in
  let rows =
    List.map
      (fun scheme ->
        Scheme.name scheme
        :: List.map
             (fun technique ->
               match
                 List.find_opt
                   (fun r -> r.scheme = scheme && r.technique = technique)
                   results
               with
               | None -> "-"
               | Some r ->
                 let total = List.length r.points in
                 let ok = List.length (List.filter point_passed r.points) in
                 Printf.sprintf "%d/%d%s" ok total
                   (if result_passed r then "" else " FAIL"))
             techniques)
      schemes
  in
  let table =
    Printf.sprintf
      "# Shard-split crash sweep (%s partition, W=%d n=%d): recovered \
       points / fault points\n%s"
      (Partition.kind_name partition)
      w n
      (Wave_util.Table_print.render
         ~header:("scheme" :: List.map Env.technique_name techniques)
         ~rows)
  in
  (results, table)
