open Wave_disk
module Cache = Wave_cache.Cache

type config = {
  entry_bytes : int;
  growth_factor : float;
  min_alloc_entries : int;
  dir_kind : Directory.kind;
  build_cpu_per_entry : float;
  add_cpu_per_entry : float;
  cache_blocks : int option;
  cache_readahead : int;
  cache_write_back : bool;
  disk_backend : Disk.backend;
}

let default_config =
  {
    entry_bytes = 100;
    growth_factor = 2.0;
    min_alloc_entries = 4;
    dir_kind = Directory.Bplus;
    build_cpu_per_entry = 0.0;
    add_cpu_per_entry = 0.0;
    cache_blocks = None;
    cache_readahead = 0;
    cache_write_back = false;
    disk_backend = Disk.Sim;
  }

exception Index_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Index_error s)) fmt

(* Tracing: one span per index-level operation.  Tag lists are only
   built when tracing is enabled so the disabled path stays
   allocation-free. *)
let span = Wave_obs.Trace.with_span

let make_disk ?(seek_time = 0.014) ?(transfer_rate = 10e6) cfg =
  let params =
    { Disk.seek_time; transfer_rate; block_size = cfg.entry_bytes }
  in
  match cfg.disk_backend with
  | Disk.Sim -> Disk.create ~params ()
  | Disk.File path -> Disk.create_file ~params ~path ()

(* Disk extents are allocated with a granularity of one entry per block,
   so that packed indexes are charged exactly their minimal size.  The
   disk's [block_size] must therefore equal [entry_bytes]; [make_disk]
   (in the mli's companion helpers) builds a consistent disk. *)

type shared_ext = { sext : Disk.extent; mutable refs : int }

type home = Own of Disk.extent | In_shared of shared_ext * int

type bucket = {
  value : int;
  mutable entries : Entry.t array; (* length = used, copied on change *)
  mutable home : home;
  mutable cap : int; (* capacity in entries *)
}

type t = {
  cfg : config;
  dsk : Disk.t;
  cache : Cache.t option; (* per-disk buffer pool; None = paper's cost model *)
  dir : bucket Directory.t;
  mutable packed : bool;
  mutable shared : shared_ext option;
  mutable total_used : int;
  mutable total_alloc : int; (* entries of capacity held, incl. dead shared space *)
}

let config t = t.cfg
let disk t = t.dsk
let cache t = t.cache

(* The pool is attached to the disk, not the index: every constituent
   sharing the disk shares frames, and Multi_disk gets one per arm. *)
let cache_of_config dsk cfg =
  match cfg.cache_blocks with
  | None -> None
  | Some frames ->
    if frames < 1 then fail "cache_blocks must be >= 1 (got %d)" frames;
    Some
      (Cache.attach dsk ~frames ~readahead:cfg.cache_readahead
         ~write_back:cfg.cache_write_back ())

let check_disk_compat disk cfg =
  if (Disk.params disk).Disk.block_size <> cfg.entry_bytes then
    fail "disk block size %d must equal entry_bytes %d (one entry per block)"
      (Disk.params disk).Disk.block_size cfg.entry_bytes;
  if cfg.growth_factor <= 1.0 then fail "growth_factor must exceed 1.0";
  if cfg.min_alloc_entries < 1 then fail "min_alloc_entries must be >= 1";
  if cfg.entry_bytes < 1 then fail "entry_bytes must be >= 1"

let create_empty dsk cfg =
  check_disk_compat dsk cfg;
  {
    cfg;
    dsk;
    cache = cache_of_config dsk cfg;
    dir = Directory.create cfg.dir_kind;
    packed = true;
    shared = None;
    total_used = 0;
    total_alloc = 0;
  }

let used_of b = Array.length b.entries

(* ------------------------------------------------------------------ *)
(* Shared-extent bookkeeping                                          *)
(* ------------------------------------------------------------------ *)

let decref_shared t s =
  s.refs <- s.refs - 1;
  if s.refs = 0 then begin
    Disk.free t.dsk s.sext;
    t.total_alloc <- t.total_alloc - s.sext.Disk.length;
    match t.shared with
    | Some s' when s' == s -> t.shared <- None
    | _ -> ()
  end

let release_home t b =
  match b.home with
  | Own e ->
    Disk.free t.dsk e;
    t.total_alloc <- t.total_alloc - e.Disk.length
  | In_shared (s, _) -> decref_shared t s

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

let grouped_of_batches batches =
  let tbl = Hashtbl.create 1024 in
  List.iter
    (fun (b : Entry.batch) ->
      Array.iter
        (fun (p : Entry.posting) ->
          match Hashtbl.find_opt tbl p.Entry.value with
          | None -> Hashtbl.add tbl p.Entry.value [ p.Entry.entry ]
          | Some es -> Hashtbl.replace tbl p.Entry.value (p.Entry.entry :: es))
        b.Entry.postings)
    batches;
  Hashtbl.fold (fun v es acc -> (v, Array.of_list (List.rev es)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Install packed contents: one extent, buckets at cumulative offsets in
   value order, zero slack.  [charge_read_source] optionally charges the
   sequential read of some source extents first (used by [pack]). *)
let bucket_read_charge t b =
  let used = used_of b in
  if used > 0 then
    match (t.cache, b.home) with
    | None, Own e -> Disk.read_blocks t.dsk e ~blocks:used
    | None, In_shared (s, _) ->
      Disk.read_blocks t.dsk s.sext ~blocks:(min used s.sext.Disk.length)
    | Some c, Own e -> Cache.read_range c e ~off:0 ~blocks:used
    | Some c, In_shared (s, off) ->
      (* The pool is block-granular, so unlike the prefix-proxy charge
         above it can use the bucket's true address range. *)
      Cache.read_range c s.sext ~off
        ~blocks:(min used (s.sext.Disk.length - off))

(* Directory lookups are free in the paper's model (the directory is
   memory-resident).  With a pool attached, the model instead treats
   directory pages as disk blocks cached like any other: a probe
   charges each cold node on its root-to-leaf path one seek + one
   block, and a warm pool holds the upper levels so repeat probes pay
   nothing — the cache-aware cost accounting of DESIGN.md §5c. *)
let dir_read_charge t v =
  match t.cache with
  | None -> ()
  | Some c ->
    Cache.meta_read c ~dir:(Directory.uid t.dir)
      ~nodes:(Directory.search_path t.dir v)

let charged_sequential_read t exts =
  if exts <> [] then
    match t.cache with
    | None -> Disk.sequential_read t.dsk exts
    | Some c -> Cache.sequential_read c exts

(* Write-through: the disk sees the identical write (cost, counters,
   fault points) whether or not a pool is attached; resident frames in
   the written range are refreshed, never allocated.  [off] is the
   written range's offset inside the extent — the uncached path charges
   the same [blocks] regardless. *)
let charged_write_blocks t ext ~off ~blocks =
  match t.cache with
  | None -> Disk.write_blocks t.dsk ext ~blocks
  | Some c -> Cache.write_range c ext ~off ~blocks

let install_packed t groups =
  let total = List.fold_left (fun acc (_, es) -> acc + Array.length es) 0 groups in
  if total = 0 then begin
    t.packed <- true;
    t.shared <- None
  end
  else begin
    let ext = Disk.alloc t.dsk ~blocks:total in
    charged_write_blocks t ext ~off:0 ~blocks:total;
    let s = { sext = ext; refs = List.length groups } in
    let off = ref 0 in
    List.iter
      (fun (v, es) ->
        let b =
          { value = v; entries = es; home = In_shared (s, !off); cap = Array.length es }
        in
        off := !off + Array.length es;
        Directory.set t.dir v b)
      groups;
    t.shared <- Some s;
    t.total_alloc <- t.total_alloc + total;
    t.total_used <- total;
    t.packed <- true
  end

let build dsk cfg batches =
  span "index.build" (fun () ->
      check_disk_compat dsk cfg;
      let t = create_empty dsk cfg in
      let groups = grouped_of_batches batches in
      let total =
        List.fold_left (fun acc (_, es) -> acc + Array.length es) 0 groups
      in
      Disk.charge_delay dsk (cfg.build_cpu_per_entry *. float_of_int total);
      install_packed t groups;
      t)

(* ------------------------------------------------------------------ *)
(* Observation                                                        *)
(* ------------------------------------------------------------------ *)

let entry_count t = t.total_used
let distinct_values t = Directory.length t.dir
let is_packed t = t.packed

let days t =
  let seen = Hashtbl.create 16 in
  Directory.iter_ordered t.dir (fun _ b ->
      Array.iter
        (fun (e : Entry.t) ->
          if not (Hashtbl.mem seen e.Entry.day) then Hashtbl.add seen e.Entry.day ())
        b.entries);
  Hashtbl.fold (fun d () acc -> d :: acc) seen [] |> List.sort Int.compare

let used_bytes t = t.total_used * t.cfg.entry_bytes
let allocated_bytes t = t.total_alloc * t.cfg.entry_bytes
let allocated_blocks t = t.total_alloc

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let probe t v =
  span "index.probe" (fun () ->
      dir_read_charge t v;
      match Directory.find t.dir v with
      | None -> []
      | Some b ->
        bucket_read_charge t b;
        Array.to_list b.entries)

let probe_timed t v ~t1 ~t2 =
  List.filter (fun (e : Entry.t) -> e.Entry.day >= t1 && e.Entry.day <= t2) (probe t v)

let scan_extents t =
  (* Every extent this index holds: the shared home (live part or not —
     a scan of an unpacked index pays for its slack and dead space, the
     paper's S' accounting) plus each bucket-owned extent. *)
  let own =
    Directory.fold_ordered t.dir ~init:[] ~f:(fun acc _ b ->
        match b.home with Own e -> e :: acc | In_shared _ -> acc)
  in
  match t.shared with Some s -> s.sext :: List.rev own | None -> List.rev own

let extents t = scan_extents t

let scan t =
  span "index.scan" (fun () ->
      if t.total_used > 0 || t.total_alloc > 0 then
        charged_sequential_read t (scan_extents t);
      Directory.fold_ordered t.dir ~init:[] ~f:(fun acc _ b ->
          Array.fold_left (fun acc e -> e :: acc) acc b.entries)
      |> List.rev)

let scan_timed t ~t1 ~t2 =
  List.filter (fun (e : Entry.t) -> e.Entry.day >= t1 && e.Entry.day <= t2) (scan t)

(* ------------------------------------------------------------------ *)
(* Mutation                                                           *)
(* ------------------------------------------------------------------ *)

let grow_target t needed =
  let g = t.cfg.growth_factor in
  let by_g = int_of_float (ceil (float_of_int needed *. g)) in
  max t.cfg.min_alloc_entries (max needed by_g)

(* Move bucket [b] to a fresh extent of capacity [new_cap], charging the
   copy (read old contents + write them to the new home). *)
let relocate t b ~new_cap ~extra_entries =
  let old_used = used_of b in
  if old_used > 0 then bucket_read_charge t b;
  let ext = Disk.alloc t.dsk ~blocks:new_cap in
  let new_used = old_used + Array.length extra_entries in
  charged_write_blocks t ext ~off:0 ~blocks:new_used;
  release_home t b;
  b.home <- Own ext;
  b.cap <- new_cap;
  t.total_alloc <- t.total_alloc + new_cap;
  if Array.length extra_entries > 0 then
    b.entries <- Array.append b.entries extra_entries

let add_group t v es =
  let n_new = Array.length es in
  match Directory.find t.dir v with
  | None ->
    let cap = grow_target t n_new in
    let ext = Disk.alloc t.dsk ~blocks:cap in
    charged_write_blocks t ext ~off:0 ~blocks:n_new;
    t.total_alloc <- t.total_alloc + cap;
    Directory.set t.dir v { value = v; entries = es; home = Own ext; cap }
  | Some b ->
    let used = used_of b in
    let fits = match b.home with Own _ -> used + n_new <= b.cap | In_shared _ -> false in
    if fits then begin
      (* Append into the existing allocation: seek + write of the tail. *)
      (match b.home with
      | Own e -> charged_write_blocks t e ~off:used ~blocks:n_new
      | In_shared _ -> assert false);
      b.entries <- Array.append b.entries es
    end
    else relocate t b ~new_cap:(grow_target t (used + n_new)) ~extra_entries:es

let add_batch t (batch : Entry.batch) =
  span "index.add" (fun () ->
      let groups = Entry.group_by_value batch.Entry.postings in
      Disk.charge_delay t.dsk
        (t.cfg.add_cpu_per_entry *. float_of_int (Entry.batch_size batch));
      List.iter (fun (v, es) -> add_group t v (Array.of_list es)) groups;
      t.total_used <- t.total_used + Entry.batch_size batch;
      if Entry.batch_size batch > 0 then t.packed <- false)

let delete_days t expired =
  span "index.delete" (fun () ->
  let removed = ref 0 in
  let to_delete = ref [] in
  Directory.iter_ordered t.dir (fun v b ->
      let keep = Array.of_seq (Seq.filter
        (fun (e : Entry.t) -> not (expired e.Entry.day))
        (Array.to_seq b.entries))
      in
      let dropped = used_of b - Array.length keep in
      if dropped > 0 then begin
        removed := !removed + dropped;
        (* Rewrite the bucket in place: read it, write back survivors. *)
        bucket_read_charge t b;
        b.entries <- keep;
        let used = Array.length keep in
        if used = 0 then to_delete := v :: !to_delete
        else begin
          (match b.home with
          | Own e -> charged_write_blocks t e ~off:0 ~blocks:used
          | In_shared (s, off) ->
            charged_write_blocks t s.sext ~off
              ~blocks:(min used (s.sext.Disk.length - off)));
          (* CONTIGUOUS shrink: if mostly empty, move to a tighter home. *)
          let g = t.cfg.growth_factor in
          let shrink_below = float_of_int b.cap /. (g *. g) in
          match b.home with
          | Own _ when float_of_int used < shrink_below
                       && grow_target t used < b.cap ->
            relocate t b ~new_cap:(grow_target t used) ~extra_entries:[||]
          | _ -> ()
        end
      end);
  List.iter
    (fun v ->
      match Directory.find t.dir v with
      | None -> ()
      | Some b ->
        release_home t b;
        Directory.remove t.dir v)
    !to_delete;
  Disk.charge_delay t.dsk (t.cfg.add_cpu_per_entry *. float_of_int !removed);
  t.total_used <- t.total_used - !removed;
  if !removed > 0 then t.packed <- false;
  !removed)

(* Epoch veto on whole-index teardown.  [drop] both frees extents and
   clears the in-memory directory, so a gated free alone would leave a
   snapshot probing an empty index; when the gate claims the index the
   entire drop is deferred — structure and extents stay intact — and
   the epoch layer re-calls [drop] (through this gate again, so a
   second still-live snapshot re-defers) once the last reader drains. *)
let drop_gate : (t -> bool) ref = ref (fun _ -> false)
let set_drop_gate f = drop_gate := f

let drop t =
  if !drop_gate t then ()
  else begin
  (* Constant-time unlink: free every extent without transfer charges. *)
  let seen_shared = ref [] in
  Directory.iter_ordered t.dir (fun _ b ->
      match b.home with
      | Own e ->
        Disk.free t.dsk e;
        t.total_alloc <- t.total_alloc - e.Disk.length
      | In_shared (s, _) ->
        if not (List.memq s !seen_shared) then seen_shared := s :: !seen_shared);
  List.iter
    (fun s ->
      Disk.free t.dsk s.sext;
      t.total_alloc <- t.total_alloc - s.sext.Disk.length)
    !seen_shared;
  (match t.shared with
  | Some s when not (List.memq s !seen_shared) ->
    (* Shared extent with buckets all gone but refcount drained lazily. *)
    if Disk.is_live t.dsk s.sext then begin
      Disk.free t.dsk s.sext;
      t.total_alloc <- t.total_alloc - s.sext.Disk.length
    end
  | _ -> ());
  t.shared <- None;
  List.iter (fun v -> Directory.remove t.dir v) (Directory.values_ordered t.dir);
  t.total_used <- 0;
  t.packed <- true;
  if t.total_alloc <> 0 then fail "drop: allocation accounting leak (%d)" t.total_alloc
  end

(* ------------------------------------------------------------------ *)
(* Shadow operations                                                  *)
(* ------------------------------------------------------------------ *)

let copy t =
  span "index.copy" (fun () ->
  let t' =
    {
      cfg = t.cfg;
      dsk = t.dsk;
      cache = t.cache;
      dir = Directory.create t.cfg.dir_kind;
      packed = t.packed;
      shared = None;
      total_used = 0;
      total_alloc = 0;
    }
  in
  (* Charge: stream the source out and the duplicate in. *)
  let exts = scan_extents t in
  charged_sequential_read t exts;
  if t.packed then begin
    let groups =
      Directory.fold_ordered t.dir ~init:[] ~f:(fun acc v b ->
          (v, Array.copy b.entries) :: acc)
      |> List.rev
    in
    install_packed t' groups
  end
  else begin
    (* Reproduce the unpacked layout bucket by bucket (same caps), but
       charge the flush as one sequential write: a shadow copy streams
       to a fresh contiguous region rather than seeking per bucket. *)
    let written = ref 0 in
    Directory.iter_ordered t.dir (fun v b ->
        let cap = b.cap in
        let ext = Disk.alloc t'.dsk ~blocks:cap in
        t'.total_alloc <- t'.total_alloc + cap;
        written := !written + used_of b;
        Directory.set t'.dir v
          { value = v; entries = Array.copy b.entries; home = Own ext; cap });
    if !written > 0 then begin
      Disk.charge_seek t.dsk;
      Disk.charge_transfer_bytes t.dsk (!written * t.cfg.entry_bytes)
    end;
    t'.total_used <- t.total_used;
    t'.packed <- false
  end;
  t')

let pack t ~drop_days ~extra =
  span "index.pack" (fun () ->
  (* Packed shadow update (Section 2.1, technique 3): build a temporary
     packed index for the inserts, then stream the source dropping
     expired entries while merging the temporary in, producing a fresh
     packed index.  The source is left untouched. *)
  let temp = build t.dsk t.cfg extra in
  let groups_tbl = Hashtbl.create 1024 in
  let add_entries v es =
    match Hashtbl.find_opt groups_tbl v with
    | None -> Hashtbl.add groups_tbl v es
    | Some old -> Hashtbl.replace groups_tbl v (Array.append old es)
  in
  (* Stream the source: one sequential read, dropping expired days. *)
  let src_exts = scan_extents t in
  charged_sequential_read t src_exts;
  Directory.iter_ordered t.dir (fun v b ->
      let keep =
        Array.of_seq (Seq.filter
          (fun (e : Entry.t) -> not (drop_days e.Entry.day))
          (Array.to_seq b.entries))
      in
      if Array.length keep > 0 then add_entries v keep);
  (* Stream the temporary index in (one sequential read), append its
     buckets behind the survivors. *)
  let tmp_exts = scan_extents temp in
  charged_sequential_read t tmp_exts;
  Directory.iter_ordered temp.dir (fun v b ->
      if used_of b > 0 then add_entries v (Array.copy b.entries));
  drop temp;
  let groups =
    Hashtbl.fold (fun v es acc -> (v, es) :: acc) groups_tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let t' = create_empty t.dsk t.cfg in
  install_packed t' groups;
  t')

(* ------------------------------------------------------------------ *)
(* Validation                                                         *)
(* ------------------------------------------------------------------ *)

let validate t =
  let used = ref 0 in
  let alloc = ref 0 in
  let shared_seen = ref [] in
  Directory.iter_ordered t.dir (fun v b ->
      if b.value <> v then fail "bucket value %d filed under %d" b.value v;
      let u = used_of b in
      if u = 0 then fail "empty bucket for value %d retained" v;
      used := !used + u;
      match b.home with
      | Own e ->
        if not (Disk.is_live t.dsk e) then fail "dead extent for value %d" v;
        if b.cap <> e.Disk.length then
          fail "cap %d <> extent length %d for value %d" b.cap e.Disk.length v;
        if u > b.cap then fail "overfull bucket for value %d" v;
        alloc := !alloc + b.cap
      | In_shared (s, off) ->
        if not (Disk.is_live t.dsk s.sext) then fail "dead shared extent";
        if off < 0 || off + b.cap > s.sext.Disk.length then
          fail "bucket for value %d overflows shared extent" v;
        if u > b.cap then fail "overfull shared bucket for value %d" v;
        if not (List.memq s !shared_seen) then shared_seen := s :: !shared_seen);
  List.iter (fun s -> alloc := !alloc + s.sext.Disk.length) !shared_seen;
  (match t.shared with
  | Some s when not (List.memq s !shared_seen) ->
    (* A retained shared home with no remaining buckets would be a leak
       unless still live awaiting decref. *)
    if Disk.is_live t.dsk s.sext then alloc := !alloc + s.sext.Disk.length
  | _ -> ());
  if !used <> t.total_used then
    fail "used accounting: computed %d, recorded %d" !used t.total_used;
  if !alloc <> t.total_alloc then
    fail "alloc accounting: computed %d, recorded %d" !alloc t.total_alloc;
  if t.packed && t.total_alloc <> t.total_used then
    fail "packed index with slack: alloc %d <> used %d" t.total_alloc t.total_used;
  if t.packed then begin
    (* Packedness also requires a single shared extent (or emptiness). *)
    match (t.shared, !shared_seen) with
    | None, [] -> if t.total_used <> 0 then fail "packed, no extent, but entries"
    | Some _, [ _ ] | Some _, [] -> ()
    | _ -> fail "packed index with multiple homes"
  end
