(** Binary serialisation of day batches.

    A deployment checkpoints its day store so the wave can be rebuilt
    after a restart (every scheme's Start phase, and REINDEX-family
    maintenance, re-reads past days).  The format is self-describing
    and safe to read from untrusted files: a magic/version header,
    LEB128 varints with ZigZag for signed fields, and a CRC-32
    (IEEE 802.3) over the payload verified on decode — it catches every
    burst error up to 32 bits, unlike the additive checksum of format
    v1, which missed transpositions.

    Layout: magic "WVB2" | day | posting-count | postings (value rid
    info, each delta-free varints) | crc32 (varint). *)

val encode_batch : Entry.batch -> string
val decode_batch : string -> (Entry.batch, string) result
(** [decode_batch s] fails (with a diagnostic) on bad magic, truncated
    input, malformed varints, checksum mismatch or trailing bytes. *)

val encode_batches : Entry.batch list -> string
(** Length-prefixed concatenation, e.g. a whole window. *)

val decode_batches : string -> (Entry.batch list, string) result
