(** Index directory: search value -> bucket.

    Section 2 assumes the directory is memory-resident; only the
    buckets live on disk.  Two interchangeable implementations are
    provided — a hash table and the {!Btree} — selected at index
    creation.  The B+tree keeps values ordered, which the packed
    builder uses to lay buckets out in value order, and which makes
    ordered scans deterministic. *)

type kind = Hash | Bplus

type 'a t

val create : kind -> 'a t
val kind : 'a t -> kind

val uid : 'a t -> int
(** Process-unique identity of this directory; the buffer pool's
    metadata namespace for its pages. *)

val length : 'a t -> int
val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val search_path : 'a t -> int -> int list
(** Stable page ids a lookup of this value touches: the root-to-leaf
    node ids for the B+tree (see {!Btree.search_path}), or the single
    hashed page for the hash directory.  The cache-aware cost model
    charges one metadata block per id on a cold read. *)

val set : 'a t -> int -> 'a -> unit
val remove : 'a t -> int -> unit

val iter_ordered : 'a t -> (int -> 'a -> unit) -> unit
(** Visits bindings in increasing value order for both implementations
    (the hash directory sorts its keys first: O(n log n)). *)

val fold_ordered : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
val values_ordered : 'a t -> int list
