(* In-memory B+tree with mutable nodes.  Convention: in an internal node
   with separators s_0 .. s_{k-1} and children c_0 .. c_k, child c_i holds
   keys strictly below s_i (for i < k) and c_k holds keys >= s_{k-1};
   equivalently every key in c_i satisfies s_{i-1} <= key < s_i.  All
   bindings live in leaves; leaves are chained left-to-right. *)

type 'a leaf = {
  lid : int; (* stable node id, unique within the tree, never reused *)
  mutable lkeys : int array;
  mutable lvals : 'a option array;
  mutable lsize : int;
  mutable lnext : 'a leaf option;
}

type 'a node = Leaf of 'a leaf | Internal of 'a internal

and 'a internal = {
  iid : int; (* stable node id, unique within the tree, never reused *)
  mutable seps : int array;
  mutable children : 'a node array;
  mutable isize : int; (* number of separator keys; children = isize + 1 *)
}

type 'a t = {
  ord : int; (* maximum keys per node *)
  uid : int; (* process-unique tree identity *)
  mutable root : 'a node option;
  mutable count : int;
  mutable next_id : int; (* node id source *)
}

let next_uid = ref 0

let create ?(order = 32) () =
  if order < 4 then invalid_arg "Btree.create: order must be >= 4";
  incr next_uid;
  { ord = order; uid = !next_uid; root = None; count = 0; next_id = 0 }

let uid t = t.uid

let fresh_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let order t = t.ord
let length t = t.count
let is_empty t = t.count = 0
let min_keys t = t.ord / 2

let new_leaf t =
  {
    lid = fresh_id t;
    lkeys = Array.make (t.ord + 1) 0;
    lvals = Array.make (t.ord + 1) None;
    lsize = 0;
    lnext = None;
  }

let new_internal t =
  {
    iid = fresh_id t;
    seps = Array.make (t.ord + 1) 0;
    children = Array.make (t.ord + 2) (Leaf (new_leaf t));
    isize = 0;
  }

(* Smallest i in [0, size) with keys.(i) >= k, else size. *)
let lower_bound keys size k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if keys.(mid) >= k then go lo mid else go (mid + 1) hi
  in
  go 0 size

(* Child index to descend into for key k: first i with k < seps.(i). *)
let child_index node k =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if k < node.seps.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 node.isize

(* ------------------------------------------------------------------ *)
(* find                                                               *)
(* ------------------------------------------------------------------ *)

(* Directory traffic counters: always-on (a counter bump is a single
   float store, negligible next to the tree walk), surfaced through
   Wave_obs.Metrics.default for perf artifacts. *)
let m_finds = Wave_obs.Metrics.counter "btree.finds"
let m_inserts = Wave_obs.Metrics.counter "btree.inserts"
let m_removes = Wave_obs.Metrics.counter "btree.removes"
let m_splits = Wave_obs.Metrics.counter "btree.splits"

let rec find_node node k =
  match node with
  | Leaf l ->
    let i = lower_bound l.lkeys l.lsize k in
    if i < l.lsize && l.lkeys.(i) = k then l.lvals.(i) else None
  | Internal n -> find_node n.children.(child_index n k) k

let find t k =
  Wave_obs.Metrics.inc m_finds;
  match t.root with None -> None | Some r -> find_node r k
let mem t k = Option.is_some (find t k)

let node_id = function Leaf l -> l.lid | Internal n -> n.iid

let search_path t k =
  let rec go acc node =
    match node with
    | Leaf _ -> List.rev (node_id node :: acc)
    | Internal n -> go (node_id node :: acc) n.children.(child_index n k)
  in
  match t.root with None -> [] | Some r -> go [] r

(* ------------------------------------------------------------------ *)
(* insert                                                             *)
(* ------------------------------------------------------------------ *)

let leaf_insert_at l i k v =
  Array.blit l.lkeys i l.lkeys (i + 1) (l.lsize - i);
  Array.blit l.lvals i l.lvals (i + 1) (l.lsize - i);
  l.lkeys.(i) <- k;
  l.lvals.(i) <- Some v;
  l.lsize <- l.lsize + 1

let split_leaf t l =
  Wave_obs.Metrics.inc m_splits;
  let right = new_leaf t in
  let mid = l.lsize / 2 in
  let moved = l.lsize - mid in
  Array.blit l.lkeys mid right.lkeys 0 moved;
  Array.blit l.lvals mid right.lvals 0 moved;
  Array.fill l.lvals mid moved None;
  right.lsize <- moved;
  l.lsize <- mid;
  right.lnext <- l.lnext;
  l.lnext <- Some right;
  (right.lkeys.(0), Leaf right)

let split_internal t n =
  Wave_obs.Metrics.inc m_splits;
  let right = new_internal t in
  let mid = n.isize / 2 in
  (* Separator at [mid] moves up; keys right of it go to the new node. *)
  let up = n.seps.(mid) in
  let moved = n.isize - mid - 1 in
  Array.blit n.seps (mid + 1) right.seps 0 moved;
  Array.blit n.children (mid + 1) right.children 0 (moved + 1);
  right.isize <- moved;
  n.isize <- mid;
  (up, Internal right)

(* Returns [Some (sep, right)] if the node split. *)
let rec insert_node t node k v =
  match node with
  | Leaf l ->
    let i = lower_bound l.lkeys l.lsize k in
    if i < l.lsize && l.lkeys.(i) = k then begin
      l.lvals.(i) <- Some v;
      None
    end
    else begin
      leaf_insert_at l i k v;
      t.count <- t.count + 1;
      if l.lsize > t.ord then Some (split_leaf t l) else None
    end
  | Internal n -> (
    let ci = child_index n k in
    match insert_node t n.children.(ci) k v with
    | None -> None
    | Some (sep, right) ->
      Array.blit n.seps ci n.seps (ci + 1) (n.isize - ci);
      Array.blit n.children (ci + 1) n.children (ci + 2) (n.isize - ci);
      n.seps.(ci) <- sep;
      n.children.(ci + 1) <- right;
      n.isize <- n.isize + 1;
      if n.isize > t.ord then Some (split_internal t n) else None)

let insert t k v =
  Wave_obs.Metrics.inc m_inserts;
  match t.root with
  | None ->
    let l = new_leaf t in
    l.lkeys.(0) <- k;
    l.lvals.(0) <- Some v;
    l.lsize <- 1;
    t.root <- Some (Leaf l);
    t.count <- 1
  | Some root -> (
    match insert_node t root k v with
    | None -> ()
    | Some (sep, right) ->
      let n = new_internal t in
      n.seps.(0) <- sep;
      n.children.(0) <- root;
      n.children.(1) <- right;
      n.isize <- 1;
      t.root <- Some (Internal n))

(* ------------------------------------------------------------------ *)
(* remove                                                             *)
(* ------------------------------------------------------------------ *)

let leaf_remove_at l i =
  Array.blit l.lkeys (i + 1) l.lkeys i (l.lsize - i - 1);
  Array.blit l.lvals (i + 1) l.lvals i (l.lsize - i - 1);
  l.lsize <- l.lsize - 1;
  l.lvals.(l.lsize) <- None

let node_size = function Leaf l -> l.lsize | Internal n -> n.isize

(* Rebalance the underfull child at index [ci] of internal node [p] by
   borrowing from a sibling or merging with one. *)
let rebalance_child t p ci =
  let child = p.children.(ci) in
  let left = if ci > 0 then Some p.children.(ci - 1) else None in
  let right = if ci < p.isize then Some p.children.(ci + 1) else None in
  let remove_sep_and_child si =
    (* Drops separator [si] and child [si+1] from [p]. *)
    Array.blit p.seps (si + 1) p.seps si (p.isize - si - 1);
    Array.blit p.children (si + 2) p.children (si + 1) (p.isize - si - 1);
    p.isize <- p.isize - 1
  in
  match child with
  | Leaf l -> (
    let borrow_left ll =
      (* Move ll's last binding to the front of l. *)
      Array.blit l.lkeys 0 l.lkeys 1 l.lsize;
      Array.blit l.lvals 0 l.lvals 1 l.lsize;
      l.lkeys.(0) <- ll.lkeys.(ll.lsize - 1);
      l.lvals.(0) <- ll.lvals.(ll.lsize - 1);
      l.lsize <- l.lsize + 1;
      ll.lvals.(ll.lsize - 1) <- None;
      ll.lsize <- ll.lsize - 1;
      p.seps.(ci - 1) <- l.lkeys.(0)
    and borrow_right rl =
      l.lkeys.(l.lsize) <- rl.lkeys.(0);
      l.lvals.(l.lsize) <- rl.lvals.(0);
      l.lsize <- l.lsize + 1;
      leaf_remove_at rl 0;
      p.seps.(ci) <- rl.lkeys.(0)
    and merge_into_left ll =
      Array.blit l.lkeys 0 ll.lkeys ll.lsize l.lsize;
      Array.blit l.lvals 0 ll.lvals ll.lsize l.lsize;
      ll.lsize <- ll.lsize + l.lsize;
      ll.lnext <- l.lnext;
      remove_sep_and_child (ci - 1)
    and merge_right_into_self rl =
      Array.blit rl.lkeys 0 l.lkeys l.lsize rl.lsize;
      Array.blit rl.lvals 0 l.lvals l.lsize rl.lsize;
      l.lsize <- l.lsize + rl.lsize;
      l.lnext <- rl.lnext;
      remove_sep_and_child ci
    in
    match (left, right) with
    | Some (Leaf ll), _ when ll.lsize > min_keys t -> borrow_left ll
    | _, Some (Leaf rl) when rl.lsize > min_keys t -> borrow_right rl
    | Some (Leaf ll), _ -> merge_into_left ll
    | _, Some (Leaf rl) -> merge_right_into_self rl
    | _ -> failwith "Btree: leaf with no leaf sibling")
  | Internal n -> (
    let borrow_left ln =
      Array.blit n.seps 0 n.seps 1 n.isize;
      Array.blit n.children 0 n.children 1 (n.isize + 1);
      n.seps.(0) <- p.seps.(ci - 1);
      n.children.(0) <- ln.children.(ln.isize);
      n.isize <- n.isize + 1;
      p.seps.(ci - 1) <- ln.seps.(ln.isize - 1);
      ln.isize <- ln.isize - 1
    and borrow_right rn =
      n.seps.(n.isize) <- p.seps.(ci);
      n.children.(n.isize + 1) <- rn.children.(0);
      n.isize <- n.isize + 1;
      p.seps.(ci) <- rn.seps.(0);
      Array.blit rn.seps 1 rn.seps 0 (rn.isize - 1);
      Array.blit rn.children 1 rn.children 0 rn.isize;
      rn.isize <- rn.isize - 1
    and merge_into_left ln =
      ln.seps.(ln.isize) <- p.seps.(ci - 1);
      Array.blit n.seps 0 ln.seps (ln.isize + 1) n.isize;
      Array.blit n.children 0 ln.children (ln.isize + 1) (n.isize + 1);
      ln.isize <- ln.isize + 1 + n.isize;
      remove_sep_and_child (ci - 1)
    and merge_right_into_self rn =
      n.seps.(n.isize) <- p.seps.(ci);
      Array.blit rn.seps 0 n.seps (n.isize + 1) rn.isize;
      Array.blit rn.children 0 n.children (n.isize + 1) (rn.isize + 1);
      n.isize <- n.isize + 1 + rn.isize;
      remove_sep_and_child ci
    in
    match (left, right) with
    | Some (Internal ln), _ when ln.isize > min_keys t -> borrow_left ln
    | _, Some (Internal rn) when rn.isize > min_keys t -> borrow_right rn
    | Some (Internal ln), _ -> merge_into_left ln
    | _, Some (Internal rn) -> merge_right_into_self rn
    | _ -> failwith "Btree: internal with no internal sibling")

let rec remove_node t node k =
  match node with
  | Leaf l ->
    let i = lower_bound l.lkeys l.lsize k in
    if i < l.lsize && l.lkeys.(i) = k then begin
      leaf_remove_at l i;
      t.count <- t.count - 1;
      true
    end
    else false
  | Internal n ->
    let ci = child_index n k in
    let found = remove_node t n.children.(ci) k in
    if found && node_size n.children.(ci) < min_keys t then
      rebalance_child t n ci;
    found

let remove t k =
  Wave_obs.Metrics.inc m_removes;
  match t.root with
  | None -> false
  | Some root ->
    let found = remove_node t root k in
    (match t.root with
    | Some (Internal n) when n.isize = 0 -> t.root <- Some n.children.(0)
    | Some (Leaf l) when l.lsize = 0 -> t.root <- None
    | _ -> ());
    found

(* ------------------------------------------------------------------ *)
(* iteration                                                          *)
(* ------------------------------------------------------------------ *)

let rec leftmost_leaf = function
  | Leaf l -> l
  | Internal n -> leftmost_leaf n.children.(0)

let rec rightmost_leaf = function
  | Leaf l -> l
  | Internal n -> rightmost_leaf n.children.(n.isize)

let min_binding t =
  match t.root with
  | None -> None
  | Some r ->
    let l = leftmost_leaf r in
    if l.lsize = 0 then None
    else Some (l.lkeys.(0), Option.get l.lvals.(0))

let max_binding t =
  match t.root with
  | None -> None
  | Some r ->
    let l = rightmost_leaf r in
    if l.lsize = 0 then None
    else Some (l.lkeys.(l.lsize - 1), Option.get l.lvals.(l.lsize - 1))

let iter t f =
  match t.root with
  | None -> ()
  | Some r ->
    let rec walk l =
      for i = 0 to l.lsize - 1 do
        f l.lkeys.(i) (Option.get l.lvals.(i))
      done;
      match l.lnext with None -> () | Some next -> walk next
    in
    walk (leftmost_leaf r)

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun k v -> acc := f !acc k v);
  !acc

let range t ~lo ~hi =
  match t.root with
  | None -> []
  | Some r ->
    (* Descend to the leaf that would contain [lo]. *)
    let rec descend = function
      | Leaf l -> l
      | Internal n -> descend n.children.(child_index n lo)
    in
    let out = ref [] in
    let rec walk l =
      let start = lower_bound l.lkeys l.lsize lo in
      let continue = ref true in
      for i = start to l.lsize - 1 do
        if l.lkeys.(i) <= hi then
          out := (l.lkeys.(i), Option.get l.lvals.(i)) :: !out
        else continue := false
      done;
      if !continue then
        match l.lnext with None -> () | Some next -> walk next
    in
    walk (descend r);
    List.rev !out

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

(* ------------------------------------------------------------------ *)
(* invariants                                                         *)
(* ------------------------------------------------------------------ *)

let height t =
  let rec go acc = function
    | Leaf _ -> acc + 1
    | Internal n -> go (acc + 1) n.children.(0)
  in
  match t.root with None -> 0 | Some r -> go 0 r

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  match t.root with
  | None -> if t.count <> 0 then fail "empty root but count = %d" t.count
  | Some root ->
    let seen = ref 0 in
    let leaf_depth = ref (-1) in
    (* Checks the subtree holds keys in [lo, hi) and returns unit. *)
    let rec check node lo hi depth is_root =
      match node with
      | Leaf l ->
        if !leaf_depth = -1 then leaf_depth := depth
        else if !leaf_depth <> depth then
          fail "leaves at depths %d and %d" !leaf_depth depth;
        if (not is_root) && l.lsize < min_keys t then
          fail "leaf underfull: %d < %d" l.lsize (min_keys t);
        if l.lsize > t.ord then fail "leaf overfull: %d" l.lsize;
        for i = 0 to l.lsize - 1 do
          let k = l.lkeys.(i) in
          if i > 0 && l.lkeys.(i - 1) >= k then fail "leaf keys unsorted";
          (match lo with
          | Some b when k < b -> fail "leaf key %d below bound %d" k b
          | _ -> ());
          (match hi with
          | Some b when k >= b -> fail "leaf key %d above bound %d" k b
          | _ -> ());
          if Option.is_none l.lvals.(i) then fail "missing value for key %d" k;
          incr seen
        done
      | Internal n ->
        if (not is_root) && n.isize < min_keys t then
          fail "internal underfull: %d < %d" n.isize (min_keys t);
        if is_root && n.isize < 1 then fail "root internal with no separator";
        if n.isize > t.ord then fail "internal overfull: %d" n.isize;
        for i = 1 to n.isize - 1 do
          if n.seps.(i - 1) >= n.seps.(i) then fail "separators unsorted"
        done;
        for i = 0 to n.isize do
          let clo = if i = 0 then lo else Some n.seps.(i - 1) in
          let chi = if i = n.isize then hi else Some n.seps.(i) in
          check n.children.(i) clo chi (depth + 1) false
        done
    in
    check root None None 0 true;
    if !seen <> t.count then fail "count mismatch: saw %d, recorded %d" !seen t.count;
    (* The leaf chain must enumerate exactly the same keys in order. *)
    let chained = ref 0 in
    let prev = ref min_int in
    let rec walk l =
      for i = 0 to l.lsize - 1 do
        if l.lkeys.(i) <= !prev then fail "leaf chain unsorted";
        prev := l.lkeys.(i);
        incr chained
      done;
      match l.lnext with None -> () | Some next -> walk next
    in
    walk (leftmost_leaf root);
    if !chained <> t.count then
      fail "leaf chain covers %d of %d bindings" !chained t.count
