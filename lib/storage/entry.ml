type t = { rid : int; day : int; info : int }

let compare a b =
  match Int.compare a.day b.day with
  | 0 -> ( match Int.compare a.rid b.rid with 0 -> Int.compare a.info b.info | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf e = Format.fprintf ppf "{rid=%d; day=%d; info=%d}" e.rid e.day e.info

type posting = { value : int; entry : t }
type batch = { day : int; postings : posting array }

let batch_create ~day postings =
  Array.iter
    (fun p ->
      if p.entry.day <> day then
        invalid_arg "Entry.batch_create: posting day mismatch")
    postings;
  { day; postings }

let batch_size b = Array.length b.postings

let batch_filter b ~keep =
  { b with postings = Array.of_list (List.filter (fun p -> keep p.value) (Array.to_list b.postings)) }

let group_by_value postings =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      match Hashtbl.find_opt tbl p.value with
      | None -> Hashtbl.add tbl p.value [ p.entry ]
      | Some es -> Hashtbl.replace tbl p.value (p.entry :: es))
    postings;
  Hashtbl.fold (fun v es acc -> (v, List.rev es) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
