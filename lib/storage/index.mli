(** A constituent ("conventional") index: memory-resident directory
    plus timestamped buckets on the simulated disk.

    This is the structure of Figure 1 in the paper.  Two layouts exist:

    - {e packed}: every bucket uses minimal space and all buckets are
      allocated contiguously (one extent), in increasing value order.
      Produced by {!build} and {!pack}.  Whole-index scans cost a
      single seek plus one contiguous transfer.
    - {e contiguous-per-bucket} (unpacked): each bucket owns its own
      extent with room for growth, managed by the CONTIGUOUS scheme of
      Faloutsos and Jagadish [FJ92]: when a bucket outgrows its
      allocation, a region [g] times larger is allocated, entries are
      copied over and the old region is released (symmetrically it
      shrinks after heavy deletion).  Produced as soon as {!add_batch}
      or {!delete_days} touches a packed index in place.

    Every operation charges the simulated disk with exactly the seeks
    and transfers it performs, plus configurable CPU time per entry so
    that the paper's measured [Build]/[Add]/[Del] magnitudes can be
    reproduced. *)

open Wave_disk

type config = {
  entry_bytes : int;  (** on-disk bytes per entry *)
  growth_factor : float;  (** CONTIGUOUS [g]; > 1.0 *)
  min_alloc_entries : int;  (** smallest per-bucket allocation *)
  dir_kind : Directory.kind;
  build_cpu_per_entry : float;  (** seconds of processing per entry during packed builds *)
  add_cpu_per_entry : float;  (** seconds per entry during incremental add/delete *)
  cache_blocks : int option;
      (** [Some n] routes reads through an [n]-frame {!Wave_cache.Cache}
          buffer pool attached to the disk (shared by all indexes on
          that disk); [None] (the default) keeps the paper's cold-disk
          cost model, bit-identical to a build without the pool. *)
  cache_readahead : int;  (** demand-read prefetch depth when cached *)
  cache_write_back : bool;
      (** defer writes in the pool's dirty frames until eviction or an
          explicit {!Wave_cache.Cache.flush} (coalescing repeated bucket
          rewrites); [false] (the default) keeps write-through, which is
          bit-identical to the uncached fault schedule *)
  disk_backend : Disk.backend;
      (** [Sim] (the default) is the paper's pure cost model;
          [File path] puts the same disk over a real block file at
          [path] ({!Disk.create_file}), so every charged write also
          lands on storage through the {!Wave_disk.Io} shim. *)
}

val default_config : config
(** 100-byte entries, [g = 2.0], B+tree directory, zero CPU charges,
    no buffer pool, simulated backend. *)

type t

exception Index_error of string

val make_disk :
  ?seek_time:float -> ?transfer_rate:float -> config -> Disk.t
(** A simulated disk compatible with [config]: extents are allocated at
    a granularity of one entry per block (the disk's block size is set
    to [entry_bytes]) so packed indexes are charged exactly their
    minimal size.  Defaults: the paper's 14 ms seek, 10 MB/s. *)

(** {1 Construction} *)

val create_empty : Disk.t -> config -> t
(** A fresh, empty, (vacuously packed) index.  Raises {!Index_error} if
    the disk's block size differs from [config.entry_bytes]. *)

val build : Disk.t -> config -> Entry.batch list -> t
(** [build disk config batches] is the paper's [BuildIndex]: scan the
    batches counting entries per value, allocate one contiguous packed
    extent, and write it with a single seek.  Charges
    [build_cpu_per_entry] per entry plus the sequential write. *)

val copy : t -> t
(** Duplicate the index for shadow updating: the paper's [CP].  Charges
    a sequential read of the source and a sequential write of the copy
    (same layout, same slack). *)

val pack : t -> drop_days:(int -> bool) -> extra:Entry.batch list -> t
(** Packed-shadow update, the paper's smart copy [SMCP]: builds a
    temporary packed index for [extra], streams the old index dropping
    entries whose day satisfies [drop_days], merges in the temporary
    index, and writes the result packed.  The source is left intact
    (the caller drops it after swapping). *)

(** {1 Mutation (in place)} *)

val add_batch : t -> Entry.batch -> unit
(** The paper's [AddToIndex] with in-place updating under CONTIGUOUS.
    The index becomes (or remains) unpacked. *)

val delete_days : t -> (int -> bool) -> int
(** [delete_days t expired] removes every entry whose day satisfies
    [expired]; returns how many entries were removed.  Buckets are
    rewritten in place, shrunk when mostly empty, and removed from the
    directory when empty — the "complex deletion code" DEL needs. *)

val drop : t -> unit
(** Release all disk space and empty the index — the paper's
    [DropIndex] body, a constant-time unlink ("a few milliseconds ...
    irrespective of the index size"): no data transfer is charged.
    When the {!set_drop_gate} gate claims the index the whole drop is
    deferred — structure and extents stay intact so snapshot readers
    keep probing it — and the gate's owner re-calls [drop] later. *)

val set_drop_gate : (t -> bool) -> unit
(** Install the global drop gate (default: claims nothing).  [drop t]
    first asks the gate; [true] defers the drop as described above.
    Installed once by [Wave_epoch] to protect indexes referenced by
    live epoch snapshots. *)

(** {1 Queries} *)

val probe : t -> int -> Entry.t list
(** [probe t v] returns the bucket for value [v] (insertion order),
    charging one seek plus the bucket transfer.  Missing values cost a
    directory lookup only (the directory is in memory). *)

val probe_timed : t -> int -> t1:int -> t2:int -> Entry.t list
(** [TimedIndexProbe] restricted to one constituent: probes and keeps
    entries with [t1 <= day <= t2].  Charged like {!probe} (selection
    happens in memory after the transfer). *)

val scan : t -> Entry.t list
(** [SegmentScan] of this constituent: every entry, charged as one seek
    plus the transfer of the index's {e allocated} space — so unpacked
    indexes pay for their slack, packed ones do not. *)

val scan_timed : t -> t1:int -> t2:int -> Entry.t list
(** [TimedSegmentScan] on this constituent: full scan cost, filtered to
    the day range. *)

(** {1 Observation} *)

val entry_count : t -> int
val distinct_values : t -> int
val is_packed : t -> bool
val days : t -> int list
(** Distinct days present, ascending. *)

val used_bytes : t -> int
(** Bytes of real entries ([S]-side accounting). *)

val allocated_bytes : t -> int
(** Bytes of disk space held, including CONTIGUOUS slack ([S']). *)

val allocated_blocks : t -> int
val config : t -> config
val disk : t -> Disk.t

val cache : t -> Wave_cache.Cache.t option
(** The buffer pool charged by this index's reads, when
    [config.cache_blocks] asked for one.  With a pool attached, probes
    additionally charge cold directory blocks ({!Wave_cache.Cache.meta_read})
    that the memory-resident-directory model treats as free. *)

val extents : t -> Disk.extent list
(** Every disk extent this index holds (shared packed home plus
    per-bucket homes).  Together with {!Disk.live_extents} this lets a
    recovery pass decide which live extents a crashed transition
    leaked: journal intent records snapshot these before the
    transition, and cleanup frees whatever no surviving index claims. *)

val validate : t -> unit
(** Structural invariants: per-bucket fill within capacity, directory
    consistent with buckets, packedness implies minimal contiguous
    allocation, all extents live.  Raises [Index_error] on violation. *)
