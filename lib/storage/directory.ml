type kind = Hash | Bplus

type 'a impl =
  | Hash_dir of (int, 'a) Hashtbl.t
  | Bplus_dir of 'a Btree.t

type 'a t = { uid : int; impl : 'a impl }

let next_uid = ref 0

(* The hash directory is modelled as this many metadata pages: a search
   value hashes to one page, which the cost layer charges as one block. *)
let hash_pages = 256

let create kind =
  incr next_uid;
  {
    uid = !next_uid;
    impl =
      (match kind with
      | Hash -> Hash_dir (Hashtbl.create 256)
      | Bplus -> Bplus_dir (Btree.create ()));
  }

let kind t = match t.impl with Hash_dir _ -> Hash | Bplus_dir _ -> Bplus
let uid t = t.uid

let length t =
  match t.impl with
  | Hash_dir h -> Hashtbl.length h
  | Bplus_dir b -> Btree.length b

let find t v =
  match t.impl with
  | Hash_dir h -> Hashtbl.find_opt h v
  | Bplus_dir b -> Btree.find b v

let mem t v = Option.is_some (find t v)

let search_path t v =
  match t.impl with
  | Hash_dir _ -> [ v mod hash_pages ]
  | Bplus_dir b -> Btree.search_path b v

let set t v x =
  match t.impl with
  | Hash_dir h -> Hashtbl.replace h v x
  | Bplus_dir b -> Btree.insert b v x

let remove t v =
  match t.impl with
  | Hash_dir h -> Hashtbl.remove h v
  | Bplus_dir b -> ignore (Btree.remove b v)

let iter_ordered t f =
  match t.impl with
  | Bplus_dir b -> Btree.iter b f
  | Hash_dir h ->
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
    List.iter (fun k -> f k (Hashtbl.find h k)) (List.sort Int.compare keys)

let fold_ordered t ~init ~f =
  let acc = ref init in
  iter_ordered t (fun k v -> acc := f !acc k v);
  !acc

let values_ordered t =
  List.rev (fold_ordered t ~init:[] ~f:(fun acc k _ -> k :: acc))
