let magic = "WVB2"

(* --- varint (LEB128) + ZigZag ------------------------------------- *)

let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let put_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let byte = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let put_signed buf n = put_varint buf (zigzag n)

type reader = { data : string; mutable pos : int }

exception Malformed of string

let get_varint r =
  let shift = ref 0 and acc = ref 0 and continue = ref true in
  while !continue do
    if r.pos >= String.length r.data then raise (Malformed "truncated varint");
    if !shift > Sys.int_size - 7 then raise (Malformed "varint overflow");
    let byte = Char.code r.data.[r.pos] in
    r.pos <- r.pos + 1;
    acc := !acc lor ((byte land 0x7f) lsl !shift);
    shift := !shift + 7;
    if byte land 0x80 = 0 then continue := false
  done;
  !acc

let get_signed r = unzigzag (get_varint r)

(* --- batch ---------------------------------------------------------- *)

(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table driven.
   The previous additive checksum missed transpositions and many
   two-bit flips; CRC-32 detects all single-burst errors up to 32 bits
   and any odd number of bit flips. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let checksum_of buf_contents =
  let table = Lazy.force crc_table in
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun ch ->
      crc := table.((!crc lxor Char.code ch) land 0xFF) lxor (!crc lsr 8))
    buf_contents;
  !crc lxor 0xFFFFFFFF

let encode_batch (b : Entry.batch) =
  let buf = Buffer.create (64 + (Entry.batch_size b * 6)) in
  put_signed buf b.Entry.day;
  put_varint buf (Entry.batch_size b);
  Array.iter
    (fun (p : Entry.posting) ->
      put_signed buf p.Entry.value;
      put_signed buf p.Entry.entry.Entry.rid;
      put_signed buf p.Entry.entry.Entry.info)
    b.Entry.postings;
  let payload = Buffer.contents buf in
  let out = Buffer.create (String.length payload + 12) in
  Buffer.add_string out magic;
  Buffer.add_string out payload;
  put_varint out (checksum_of payload);
  Buffer.contents out

let decode_batch_reader r =
  let start = r.pos in
  if r.pos + 4 > String.length r.data then raise (Malformed "missing magic");
  if String.sub r.data r.pos 4 <> magic then raise (Malformed "bad magic");
  r.pos <- r.pos + 4;
  let payload_start = r.pos in
  let day = get_signed r in
  let count = get_varint r in
  if count < 0 then raise (Malformed "negative count");
  let postings =
    Array.init count (fun _ ->
        let value = get_signed r in
        let rid = get_signed r in
        let info = get_signed r in
        { Entry.value; entry = { Entry.rid; day; info } })
  in
  let payload = String.sub r.data payload_start (r.pos - payload_start) in
  let expect = get_varint r in
  if checksum_of payload <> expect then raise (Malformed "checksum mismatch");
  ignore start;
  Entry.batch_create ~day postings

let decode_batch s =
  let r = { data = s; pos = 0 } in
  match decode_batch_reader r with
  | b ->
    if r.pos <> String.length s then Error "trailing bytes"
    else Ok b
  | exception Malformed m -> Error m
  | exception Invalid_argument m -> Error m

let encode_batches bs =
  let buf = Buffer.create 1024 in
  put_varint buf (List.length bs);
  List.iter
    (fun b ->
      let s = encode_batch b in
      put_varint buf (String.length s);
      Buffer.add_string buf s)
    bs;
  Buffer.contents buf

let decode_batches s =
  let r = { data = s; pos = 0 } in
  match
    let count = get_varint r in
    if count < 0 then raise (Malformed "negative batch count");
    let out =
      List.init count (fun _ ->
          let len = get_varint r in
          if r.pos + len > String.length s then raise (Malformed "truncated batch");
          let sub = String.sub s r.pos len in
          r.pos <- r.pos + len;
          let inner = { data = sub; pos = 0 } in
          let b = decode_batch_reader inner in
          if inner.pos <> String.length sub then raise (Malformed "trailing bytes in batch");
          b)
    in
    if r.pos <> String.length s then raise (Malformed "trailing bytes");
    out
  with
  | bs -> Ok bs
  | exception Malformed m -> Error m
  | exception Invalid_argument m -> Error m
