(** Index entries and day batches.

    Following Section 2 of the paper, the data to index consists of
    records; each record has one or more values for the search field
    [F].  An index {e entry} is a record pointer plus associated
    information, including the {e timestamp} (the day the record was
    inserted) needed by timed queries and packed-shadow expiry. *)

type t = {
  rid : int;  (** record identifier (the pointer [p_i]) *)
  day : int;  (** insertion day — the timestamp in [a_i] *)
  info : int;  (** extra payload, e.g. byte offset or sale amount *)
}

val compare : t -> t -> int
(** Orders by [day], then [rid], then [info]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type posting = { value : int; entry : t }
(** One (search value, entry) pair produced by indexing a record. *)

type batch = {
  day : int;
  postings : posting array;  (** all postings generated on [day] *)
}
(** A day's worth of new data, delivered as a batch (Section 2.1). *)

val batch_create : day:int -> posting array -> batch
(** Validates that every posting's entry carries [day]. *)

val batch_size : batch -> int

val batch_filter : batch -> keep:(int -> bool) -> batch
(** Restricts a batch to the postings whose search value satisfies
    [keep], preserving order.  Used by the shard router to carve one
    day store into per-arm stores. *)

val group_by_value : posting array -> (int * t list) list
(** Groups postings by search value, values ascending, entries in input
    order within a value. *)
