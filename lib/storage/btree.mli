(** In-memory B+tree over integer keys.

    The paper's index directory is "a search structure (e.g., a B+Tree
    or a hash table) that given a search value identifies a bucket" and
    is assumed memory-resident.  This module is the B+tree variant,
    built from scratch: internal nodes hold only separator keys, all
    bindings live in linked leaves, so ordered iteration and range
    queries are cheap.  Nodes are mutable arrays of fixed capacity;
    insertion splits on overflow and deletion rebalances by borrowing
    from or merging with siblings, keeping every node (root excepted)
    at least half full.

    Complexity: [find], [insert], [remove] are O(log n); [iter],
    [range] are O(result). *)

type 'a t

val create : ?order:int -> unit -> 'a t
(** [create ~order ()] makes an empty tree.  [order] is the maximum
    number of keys per node (default 32, minimum 4). *)

val order : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val uid : 'a t -> int
(** Process-unique identity of this tree; the buffer pool's metadata
    namespace for its nodes. *)

val find : 'a t -> int -> 'a option
val mem : 'a t -> int -> bool

val search_path : 'a t -> int -> int list
(** Stable ids of the nodes a {!find} for this key visits, root first,
    leaf last ([[]] on an empty tree).  Ids are unique within the tree
    and never reused after splits or merges, so a cache of "disk pages"
    keyed on them can never serve a stale node.  The cost-model layer
    charges one metadata block per id. *)

val insert : 'a t -> int -> 'a -> unit
(** Adds a binding; replaces the value if the key is already present. *)

val remove : 'a t -> int -> bool
(** [remove t k] deletes the binding for [k]; returns whether a binding
    was present. *)

val min_binding : 'a t -> (int * 'a) option
val max_binding : 'a t -> (int * 'a) option

val iter : 'a t -> (int -> 'a -> unit) -> unit
(** Visits bindings in increasing key order. *)

val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b

val range : 'a t -> lo:int -> hi:int -> (int * 'a) list
(** Bindings with [lo <= key <= hi], in increasing key order. *)

val to_list : 'a t -> (int * 'a) list

val check_invariants : 'a t -> unit
(** Validates the structural invariants (key ordering, node fill
    factors, leaf chaining, depth uniformity); raises [Failure] with a
    diagnostic if violated.  Used by the test suite. *)

val height : 'a t -> int
(** Number of levels (0 for an empty tree). *)
