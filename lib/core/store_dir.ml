open Wave_disk

let blocks_path dir = Filename.concat dir "BLOCKS"
let manifest_path dir = Filename.concat dir "MANIFEST"
let manifest_prev_path dir = Filename.concat dir "MANIFEST.prev"
let journal_path dir = Filename.concat dir "JOURNAL"

let rec init dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    init (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Durable whole-file write: tmp + fsync + atomic rename into place. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  let fd =
    try Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with Unix.Unix_error (e, _, _) ->
      raise
        (Disk.Disk_error
           (Printf.sprintf "open %s: %s" tmp (Unix.error_message e)))
  in
  (try
     Io.pwrite fd (Bytes.of_string contents) ~off:0;
     Io.fsync fd;
     Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Io.rename tmp path

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s

let remove_if_exists path =
  try Sys.remove path with Sys_error _ -> ()

let write_manifest dir m =
  let path = manifest_path dir in
  let tmp = path ^ ".tmp" in
  write_file tmp (Manifest.to_string m);
  (* write_file committed the contents to [MANIFEST.tmp] (its own temp
     was [MANIFEST.tmp.tmp]); now rotate and swap.  A kill between the
     renames leaves only [.prev] — still a committed checkpoint. *)
  if Sys.file_exists path then Io.rename path (manifest_prev_path dir);
  Io.rename tmp path

let read_manifest dir =
  remove_if_exists (manifest_path dir ^ ".tmp");
  remove_if_exists (manifest_path dir ^ ".tmp.tmp");
  let parse path =
    match read_file path with
    | None -> None
    | Some s -> (
      match Manifest.of_string s with Ok m -> Some m | Error _ -> None)
  in
  match parse (manifest_path dir) with
  | Some m -> (m, false)
  | None -> (
    match parse (manifest_prev_path dir) with
    | Some m -> (m, true)
    | None ->
      raise
        (Disk.Disk_error
           (Printf.sprintf "read_manifest: no readable manifest in %s" dir)))

let write_journal dir j = write_file (journal_path dir) (Journal.to_string j)

let read_journal dir =
  remove_if_exists (journal_path dir ^ ".tmp");
  match read_file (journal_path dir) with
  | None -> Journal.create ()
  | Some s -> (
    match Journal.of_string s with Ok j -> j | Error _ -> Journal.create ())
