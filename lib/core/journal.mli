(** Transition journal: write-ahead intent records for wave
    maintenance.

    A scheme transition is the only moment a wave index is in danger:
    constituents are dropped, rebuilt or mutated in place, and a crash
    partway leaves the durable state (the extents on disk plus the
    checkpointed manifest) inconsistent.  Before each transition the
    {!Checkpoint} driver appends a versioned {e intent} record — which
    scheme and technique are running, the day being absorbed, and for
    every slot the transition will touch its old time-set, intended new
    time-set, and the extents its old index occupied.  After the
    transition completes and the manifest has been atomically swapped,
    a {e commit} record closes the intent and the journal is truncated.

    On recovery, {!pending} identifies an interrupted transition;
    {!Checkpoint.recover} then rolls it forward (rebuilding only the
    slots the intent names, from the day store) or back (when every old
    extent survives intact under a shadow technique), so recovery cost
    is bounded by one transition rather than a full [BuildIndex] of
    every slot.

    Like the manifest, the wire format is a versioned, line-oriented
    text file an operator can read.  [old_extents] are plain
    [(start, length)] block addresses so the record survives
    serialisation. *)

type change = {
  slot : int;  (** frame slot the transition will modify *)
  old_days : Dayset.t;  (** time-set before the transition *)
  new_days : Dayset.t;  (** intended time-set after the transition *)
  old_extents : (int * int * int) list;
      (** (start, length, allocation generation) of every extent the
          slot's index held at intent time; all still live at the same
          generation and untorn ⇒ roll-back is safe under shadow
          techniques.  The generation (an LSN-like epoch from
          {!Wave_disk.Disk.generation_at}) distinguishes the original
          extent from a same-shaped reallocation at the same address
          after the transition freed it. *)
}

type intent = {
  scheme : Scheme.kind;
  technique : Env.technique;
  day_from : int;  (** day of the wave the transition starts from *)
  day_to : int;  (** day being absorbed *)
  changes : change list;
}

type entry = Intent of intent | Commit of { day_to : int }

type t
(** An append-only journal (in creation order). *)

val create : unit -> t
val append : t -> entry -> unit
val entries : t -> entry list
val truncate : t -> unit
(** Reset after a commit — the classic log truncation. *)

val is_empty : t -> bool

val pending : t -> intent option
(** The interrupted transition, if any: the newest intent not followed
    by a commit for its [day_to]. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Parses what {!to_string} produces; returns a diagnostic on bad
    headers, unknown schemes/techniques, or garbled day/extent sets. *)
