(** Wave-index manifests: checkpoint and restart.

    The day store is the system of record (the indexes are derived
    data), so recovery after a restart is: read the manifest — which
    scheme, geometry, current day and per-slot time-sets were active —
    and rebuild each constituent from the store.  Scheme-private
    temporaries are not checkpointed; the restarted scheme re-enters at
    a cluster boundary equivalent state by replaying recent transitions
    when needed.

    The format is a plain, versioned, line-oriented text file so
    operators can read it. *)

type t = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;  (** most recent absorbed day *)
  epoch : int;
      (** generation of the serving epoch committed with this
          checkpoint — the tag {!Wave_epoch.Epoch} assigns; 0 when
          concurrent serving is off (and in pre-epoch manifests, which
          parse with an implicit [epoch 0] and re-serialise without an
          [epoch] line) *)
  slots : Dayset.t list;  (** time-set per constituent, slot order *)
}

val capture : Scheme.t -> t
(** Snapshot a running scheme.  [epoch] is the current epoch's
    generation when one is open on the environment's disk, 0
    otherwise. *)

val to_string : t -> string
val of_string : string -> (t, string) result
(** Parses what {!to_string} produces; returns a diagnostic on bad
    version lines, unknown schemes, or malformed day sets. *)

val restore_frame : t -> Env.t -> Frame.t
(** Rebuild the constituents recorded in the manifest from the
    environment's day store ([BuildIndex] per slot).  The environment's
    [w]/[n] must match the manifest's.  The result serves queries for
    the manifest's window immediately. *)

val restart : t -> Env.t -> Scheme.t
(** Full recovery: restart the scheme from scratch at the manifest's
    window by replaying its Start phase shifted to the manifest's day —
    i.e. a fresh [Scheme.start] advanced to [t.day].  Query-equivalent
    to the pre-crash wave (hard schemes exactly; WATA* covers at least
    the window). *)
