open Wave_disk
open Wave_storage

type durable_slot = { d_index : Index.t; d_days : Dayset.t }

type t = {
  env : Env.t;
  kind : Scheme.kind;
  mutable scheme : Scheme.t option; (* volatile: None after a crash *)
  mutable manifest : Manifest.t; (* durable: last atomic checkpoint *)
  journal : Journal.t; (* durable: append-only intent log *)
  mutable durable : durable_slot array; (* durable slot -> extents map *)
  mutable recovered : Frame.t option; (* queryable frame after recovery *)
  dir : string option; (* durable checkpoint directory (file backend) *)
}

type recovery = {
  rolled_forward : bool;
  recovered_day : int;
  rebuilt_slots : int list;
  freed_blocks : int;
  recovery_seconds : float;
}

exception Crashed

(* Model the I/O of a small metadata write (journal record or manifest
   file): one seek plus the transfer of the serialized bytes.  Charged
   before the in-memory "durable" structure is updated, so an injected
   fault during the write leaves the record un-persisted — exactly the
   torn-metadata case write-new-then-rename protects the manifest
   against. *)
let metadata_write t bytes =
  Disk.charge_seek t.env.Env.disk;
  Disk.charge_transfer_bytes t.env.Env.disk bytes

(* Write-back durability boundary.  A write-back pool holds deferred
   writes in volatile frames; any record that makes index state durable
   (journal intent, manifest rename) is a lie unless those frames reach
   the disk first.  Flushing is a no-op for write-through pools and for
   uncached runs, so the fault schedule without write-back is untouched. *)
let flush_disk disk =
  match Wave_cache.Cache.find disk with
  | Some pool -> Wave_cache.Cache.flush pool
  | None -> ()

(* A crash loses the pool's dirty frames: model it.  Clean frames match
   the disk and survive (warm-pool recovery, as in PR 3). *)
let discard_dirty_disk disk =
  match Wave_cache.Cache.find disk with
  | Some pool -> ignore (Wave_cache.Cache.discard_dirty pool)
  | None -> ()

let snapshot_slots frame =
  Array.init (Frame.n frame) (fun i ->
      {
        d_index = Frame.slot_index frame (i + 1);
        d_days = Frame.slot_days frame (i + 1);
      })

let scheme_exn t =
  match t.scheme with Some s -> s | None -> raise Crashed

(* Durable metadata commit, [dir] mode only.  Ordering is the
   protocol's: everything the manifest/journal describe must be on the
   platter first — data blocks ([Disk.fsync]), then the allocator
   snapshot the reopened disk will be rebuilt from, then the atomic
   manifest swap, then the journal rewrite. *)
let persist_meta t =
  match t.dir with
  | None -> ()
  | Some dir ->
    Disk.fsync t.env.Env.disk;
    Disk.checkpoint_alloc t.env.Env.disk;
    Store_dir.write_manifest dir t.manifest;
    Store_dir.write_journal dir t.journal

(* Journal-only durable write: the intent record must be on disk before
   the dangerous region starts, but the manifest stays untouched. *)
let persist_journal t =
  match t.dir with
  | None -> ()
  | Some dir ->
    Disk.fsync t.env.Env.disk;
    Store_dir.write_journal dir t.journal

let start ?dir kind env =
  (match dir with
  | None -> ()
  | Some d -> (
    match Disk.backend env.Env.disk with
    | Disk.File path when path = Store_dir.blocks_path d -> ()
    | Disk.File path ->
      invalid_arg
        (Printf.sprintf
           "Checkpoint.start: disk is backed by %s, not %s" path
           (Store_dir.blocks_path d))
    | Disk.Sim ->
      invalid_arg "Checkpoint.start: a checkpoint dir needs a file-backed disk"));
  let s = Scheme.start kind env in
  let m = Manifest.capture s in
  let t =
    {
      env;
      kind;
      scheme = Some s;
      manifest = m;
      journal = Journal.create ();
      durable = snapshot_slots (Scheme.frame s);
      recovered = None;
      dir;
    }
  in
  flush_disk env.Env.disk;
  metadata_write t (String.length (Manifest.to_string m));
  persist_meta t;
  t

let scheme = scheme_exn
let manifest t = t.manifest
let journal t = t.journal
let crashed t = t.scheme = None
let env t = t.env

let frame t =
  match (t.scheme, t.recovered) with
  | Some s, _ -> Scheme.frame s
  | None, Some f -> f
  | None, None -> raise Crashed

let current_day t =
  match t.scheme with Some s -> Scheme.current_day s | None -> t.manifest.Manifest.day

let extent_triples disk idx =
  List.map
    (fun (e : Disk.extent) ->
      let gen =
        match Disk.generation_at disk ~start:e.Disk.start with
        | Some g -> g
        | None -> 0
      in
      (e.Disk.start, e.Disk.length, gen))
    (Index.extents idx)

let intent_of_plan t (p : Transition_plan.t) =
  let frame = frame t in
  {
    Journal.scheme = t.kind;
    technique = t.env.Env.technique;
    day_from = p.Transition_plan.day_from;
    day_to = p.Transition_plan.day_to;
    changes =
      List.map
        (fun (c : Transition_plan.change) ->
          {
            Journal.slot = c.Transition_plan.slot;
            old_days = c.Transition_plan.old_days;
            new_days = c.Transition_plan.new_days;
            old_extents =
              extent_triples t.env.Env.disk
                (Frame.slot_index frame c.Transition_plan.slot);
          })
        p.Transition_plan.changes;
  }

let transition t =
  let s = scheme_exn t in
  let p = Transition_plan.plan s in
  let intent = intent_of_plan t p in
  try
    (* 1. Durable intent: append before any index work.  The record is
       only considered written if its I/O completes.  Any deferred
       writes still pooled from earlier work must land first — the
       journal's old-extent snapshot describes the disk, not the pool. *)
    flush_disk t.env.Env.disk;
    let record = Journal.Intent intent in
    let scratch = Journal.create () in
    Journal.append scratch record;
    metadata_write t (String.length (Journal.to_string scratch));
    Journal.append t.journal record;
    persist_journal t;
    (* 2. The dangerous region. *)
    Scheme.transition s;
    (* 3. Atomic checkpoint: write the new manifest to a fresh file and
       rename over the old one.  The in-memory manifest/durable-slot
       update happens only after the write completed — the rename is
       the commit point.  Flush-before-rename: every bucket write the
       transition deferred into the pool must be on disk before the
       manifest can claim the new wave — this is where a shadow build's
       coalesced rewrites are charged. *)
    flush_disk t.env.Env.disk;
    let m = Manifest.capture s in
    metadata_write t (String.length (Manifest.to_string m));
    t.manifest <- m;
    t.durable <- snapshot_slots (Scheme.frame s);
    (* In [dir] mode the manifest swap is a real fsync'd rename; the
       data and allocator snapshot it describes land first. *)
    (match t.dir with
    | None -> ()
    | Some dir ->
      Disk.fsync t.env.Env.disk;
      Disk.checkpoint_alloc t.env.Env.disk;
      Store_dir.write_manifest dir m);
    (* The epoch swap rides the same commit point: the moment the new
       manifest is the durable truth, the serving epoch retires and new
       readers see the post-transition wave.  In-flight readers keep
       the retired snapshot until they drain.  No-op when concurrent
       serving is off (no epoch open on this disk). *)
    Wave_epoch.Epoch.commit t.env.Env.disk;
    (* 4. Close the intent and truncate the log. *)
    metadata_write t 16;
    Journal.append t.journal (Journal.Commit { day_to = intent.Journal.day_to });
    Journal.truncate t.journal;
    (match t.dir with
    | None -> ()
    | Some dir -> Store_dir.write_journal dir t.journal)
  with Disk.Disk_error _ as e ->
    (* The machine died: volatile state (the running scheme, its
       private temporaries' directories, the pool's dirty frames) is
       gone.  Durable state — manifest, journal, disk extents —
       survives for [recover]. *)
    discard_dirty_disk t.env.Env.disk;
    (* Epoch state is volatile too: deferred frees/drops die with the
       process — recovery's leak sweep reclaims that space from the
       journal and manifest, so executing them would double-free. *)
    Wave_epoch.Epoch.on_crash t.env.Env.disk;
    t.scheme <- None;
    raise e

let advance_to t day =
  while current_day t < day do
    transition t
  done

(* Process death outside [transition] — e.g. a fault firing while
   post-commit readers drain a retired epoch.  Same volatile-state
   teardown as the transition crash handler; durable state survives
   for [recover], which will find no pending intent, land on the
   committed manifest and sweep whatever the epoch gates held. *)
let kill t =
  if t.scheme <> None then begin
    discard_dirty_disk t.env.Env.disk;
    Wave_epoch.Epoch.on_crash t.env.Env.disk;
    t.scheme <- None
  end

(* Free every live extent no surviving constituent claims: interrupted
   shadows, torn extents, orphaned temporaries.  Returns blocks freed. *)
let sweep_leaks t keep_frame =
  let disk = t.env.Env.disk in
  let keep = Hashtbl.create 64 in
  for j = 1 to Frame.n keep_frame do
    List.iter
      (fun (e : Disk.extent) -> Hashtbl.replace keep e.Disk.start ())
      (Index.extents (Frame.slot_index keep_frame j))
  done;
  List.fold_left
    (fun freed (e : Disk.extent) ->
      if Hashtbl.mem keep e.Disk.start then freed
      else begin
        Disk.free disk e;
        freed + e.Disk.length
      end)
    0 (Disk.live_extents disk)

(* Every journalled old extent still live with its original shape AND
   allocation generation (rules out a same-shaped reallocation after
   the transition freed it — the allocator-reuse hazard) and untorn. *)
let change_intact t (c : Journal.change) =
  let disk = t.env.Env.disk in
  List.for_all
    (fun (start, length, gen) ->
      Disk.live_at disk ~start ~length
      && Disk.generation_at disk ~start = Some gen
      && not (Disk.torn_at disk ~start))
    c.Journal.old_extents

let recover t =
  if t.scheme <> None then invalid_arg "Checkpoint.recover: not crashed";
  let recover_span f =
    if Wave_obs.Trace.is_enabled () then
      Wave_obs.Trace.with_span "recovery"
        ~tags:[ ("scheme", Scheme.name t.kind) ]
        f
    else f ()
  in
  recover_span @@ fun () ->
  let disk = t.env.Env.disk in
  (* Defensive: a crash already discarded the dirty frames, but recovery
     must never trust deferred writes that predate it.  Likewise any
     epoch state: snapshots and deferred reclamation are volatile, and
     the leak sweep below frees what the gates were holding. *)
  discard_dirty_disk disk;
  Wave_epoch.Epoch.on_crash disk;
  let t0 = Disk.elapsed disk in
  let fr = Frame.create t.env in
  (* In-process recovery reuses the surviving in-memory constituents of
     the last checkpoint.  After a process kill ({!reopen}) there are
     none — the cost model persists stamps, not payloads — so every
     surviving slot is rebuilt from the day store at its manifest
     time-set.  The roll-forward/roll-back decision is unchanged; only
     where untouched slots come from differs. *)
  let install_durable ?(except = []) () =
    if Array.length t.durable > 0 then
      Array.iteri
        (fun i d ->
          if not (List.mem (i + 1) except) then
            Frame.set_slot fr (i + 1) d.d_index d.d_days)
        t.durable
    else
      List.iteri
        (fun i days ->
          if not (List.mem (i + 1) except) then begin
            let idx = Update.build_days t.env (Dayset.elements days) in
            Frame.set_slot fr (i + 1) idx days
          end)
        t.manifest.Manifest.slots
  in
  let finish ~rolled_forward ~recovered_day ~rebuilt_slots =
    let freed_blocks = sweep_leaks t fr in
    Journal.truncate t.journal;
    (* Post-recovery checkpoint made durable: if a second fault kills
       the recovery before this completes, the old manifest + journal
       still describe a recoverable state and [reopen] can run again. *)
    persist_meta t;
    t.durable <- snapshot_slots fr;
    t.recovered <- Some fr;
    {
      rolled_forward;
      recovered_day;
      rebuilt_slots;
      freed_blocks;
      recovery_seconds = Disk.elapsed disk -. t0;
    }
  in
  match Journal.pending t.journal with
  | None ->
    (* No interrupted transition: the durable frame is the truth. *)
    install_durable ();
    finish ~rolled_forward:false ~recovered_day:t.manifest.Manifest.day
      ~rebuilt_slots:[]
  | Some i when i.Journal.day_to <= t.manifest.Manifest.day ->
    (* The manifest already covers the intent (crash landed between the
       manifest rename and the commit record): the transition is
       durable; only orphaned temporaries need sweeping. *)
    install_durable ();
    finish ~rolled_forward:false ~recovered_day:t.manifest.Manifest.day
      ~rebuilt_slots:[]
  | Some i ->
    let rollback_safe =
      (* In-place updating mutates extent contents without necessarily
         changing extent shapes, so surviving extents prove nothing
         there; under shadow techniques the old constituents are
         immutable until dropped, so "every old extent live and
         untorn" certifies them. *)
      i.Journal.technique <> Env.In_place
      && List.for_all (change_intact t) i.Journal.changes
    in
    if rollback_safe then begin
      (* Roll back: the pre-transition wave is fully intact on disk;
         discard the half-done work and keep serving day_from. *)
      install_durable ();
      finish ~rolled_forward:false ~recovered_day:i.Journal.day_from
        ~rebuilt_slots:[]
    end
    else begin
      (* Roll forward: rebuild exactly the slots the intent names, at
         their intended new time-sets, from the day store (the system
         of record) — every other constituent is reused as-is.  Free
         the interrupted transition's debris first so the rebuild can
         reuse its space. *)
      let touched = List.map (fun c -> c.Journal.slot) i.Journal.changes in
      install_durable ~except:touched ();
      let freed_before = sweep_leaks t fr in
      List.iter
        (fun (c : Journal.change) ->
          let idx = Update.build_days t.env (Dayset.elements c.Journal.new_days) in
          Frame.set_slot fr c.Journal.slot idx c.Journal.new_days)
        i.Journal.changes;
      (* Post-recovery checkpoint: the completed transition becomes
         durable via the same write-new-then-rename swap — the rebuild's
         own deferred writes land first. *)
      flush_disk disk;
      let m =
        {
          t.manifest with
          Manifest.day = i.Journal.day_to;
          slots =
            List.init (Frame.n fr) (fun j -> Frame.slot_days fr (j + 1));
        }
      in
      metadata_write t (String.length (Manifest.to_string m));
      t.manifest <- m;
      let r =
        finish ~rolled_forward:true ~recovered_day:i.Journal.day_to
          ~rebuilt_slots:touched
      in
      { r with freed_blocks = r.freed_blocks + freed_before }
    end

let dir t = t.dir

(* Kill-and-recover: rebuild the whole instance from the checkpoint
   directory alone — the process that armed the fault is gone.  The
   manifest (falling back to [MANIFEST.prev] if the newest commit was
   torn) names the scheme, technique and geometry; {!Disk.open_file}
   restores the allocator from its sidecar and verifies every live
   extent's stamps, so real damage — torn prefixes, truncated tails,
   stale-generation reuse — surfaces through the same [torn] state the
   simulated sweep exercises; the journal (unreadable reads as empty)
   says whether a transition was in flight.  [recover] then makes the
   roll decision exactly as in-process recovery does, except that every
   surviving slot is rebuilt from the day store. *)
let reopen ?icfg ?allow_deletes ?(seek_time = 0.014) ?(transfer_rate = 10e6)
    ~dir ~store () =
  let icfg =
    match icfg with Some c -> c | None -> Index.default_config
  in
  let blocks = Store_dir.blocks_path dir in
  let icfg = { icfg with Index.disk_backend = Disk.File blocks } in
  let m, _fell_back = Store_dir.read_manifest dir in
  let disk =
    Disk.open_file
      ~params:
        { Disk.seek_time; transfer_rate; block_size = icfg.Index.entry_bytes }
      ~path:blocks ()
  in
  let journal = Store_dir.read_journal dir in
  let env =
    Env.create ~disk ~icfg ~technique:m.Manifest.technique ?allow_deletes
      ~store ~w:m.Manifest.w ~n:m.Manifest.n ()
  in
  let t =
    {
      env;
      kind = m.Manifest.scheme;
      scheme = None;
      manifest = m;
      journal;
      durable = [||];
      recovered = None;
      dir = Some dir;
    }
  in
  let r = recover t in
  (t, r)
