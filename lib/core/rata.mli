(** RATA* (Section 4.3, Figure 17): hard windows at WATA cost.

    WATA* plus a ladder of temporaries: while WATA would let expired
    days linger in the oldest constituent, RATA pre-builds indexes of
    that cluster's suffixes and each day swaps the constituent for the
    suffix that excludes the newly expired day — simulating deletion
    without deletion code.  Transition time equals WATA's (one
    [AddToIndex]); the temporary ladder is pre-computation.

    Requires [n >= 2], like WATA. *)

type t

val name : string
val hard_window : bool
val min_indexes : int
val start : Env.t -> t
val transition : t -> unit
val frame : t -> Frame.t
val current_day : t -> int
val last_mark : t -> float

val last_slot : t -> int
(** The constituent currently absorbing new days. *)

val temps_days : t -> Dayset.t list
(** Time-sets of the unconsumed temporaries (T_1 .. T_TempUsed). *)

val temp_indexes : t -> Wave_storage.Index.t list
(** The unconsumed temporaries T_1 .. T_TempUsed, for space accounting. *)

val base : t -> Scheme_base.t
(** Shared scheme state (clock stamps), for the uniform driver. *)
