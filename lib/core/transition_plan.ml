type change = { slot : int; old_days : Dayset.t; new_days : Dayset.t }

type t = { day_from : int; day_to : int; changes : change list }

(* WATA/RATA branch predicate: the slots other than [j] jointly cover
   exactly the W-1 most recent required days, so slot [j] holds only
   expired days and will be thrown away.  (Same formula as the schemes
   use internally; it only reads the frame.) *)
let others_cover_rest frame ~j ~w =
  let total = ref 0 in
  for i = 1 to Frame.n frame do
    if i <> j then total := !total + Dayset.cardinal (Frame.slot_days frame i)
  done;
  !total = w - 1

let plan s =
  let frame = Scheme.frame s in
  let env = Scheme.env s in
  let w = env.Env.w in
  let day_from = Scheme.current_day s in
  let day_to = day_from + 1 in
  let expired = day_to - w in
  let j = Frame.find_slot_with_day frame expired in
  let slot_days k = Frame.slot_days frame k in
  let shifted k =
    Dayset.add day_to (Dayset.remove expired (slot_days k))
  in
  let changes =
    match Scheme.kind s with
    | Scheme.Del | Scheme.Reindex | Scheme.Reindex_plus | Scheme.Reindex_pp ->
      (* Hard window, single-slot schemes: only the slot holding the
         expired day changes, and the window shift pins its new
         time-set. *)
      [ { slot = j; old_days = slot_days j; new_days = shifted j } ]
    | Scheme.Wata_star ->
      if others_cover_rest frame ~j ~w then
        (* ThrowAway: slot j restarts from the new day alone. *)
        [ { slot = j; old_days = slot_days j;
            new_days = Dayset.singleton day_to } ]
      else
        (* Wait: the last-modified slot absorbs the new day. *)
        let l = Option.get (Scheme.last_slot s) in
        [ { slot = l; old_days = slot_days l;
            new_days = Dayset.add day_to (slot_days l) } ]
    | Scheme.Rata_star ->
      if others_cover_rest frame ~j ~w then
        [ { slot = j; old_days = slot_days j;
            new_days = Dayset.singleton day_to } ]
      else
        (* Wait: Last absorbs the new day AND slot j is swapped for the
           pre-built suffix omitting the expired day. *)
        let l = Option.get (Scheme.last_slot s) in
        if l = j then [ { slot = j; old_days = slot_days j; new_days = shifted j } ]
        else
          [ { slot = l; old_days = slot_days l;
              new_days = Dayset.add day_to (slot_days l) };
            { slot = j; old_days = slot_days j;
              new_days = Dayset.remove expired (slot_days j) } ]
  in
  { day_from; day_to; changes }
