(** Uniform driver over the six wave-index maintenance algorithms. *)

type kind = Del | Reindex | Reindex_plus | Reindex_pp | Wata_star | Rata_star

val all : kind list
(** All six, in the paper's order. *)

val name : kind -> string
val of_name : string -> kind option
(** Case-insensitive; accepts "DEL", "REINDEX", "REINDEX+", "REINDEX++",
    "WATA*"/"WATA", "RATA*"/"RATA". *)

val hard_window : kind -> bool
(** Whether the scheme maintains hard windows (exactly the last W
    days); WATA* is the only soft one. *)

val min_indexes : kind -> int
(** 1 for the DEL/REINDEX family, 2 for WATA*/RATA*. *)

type t
(** A running scheme instance. *)

val start : kind -> Env.t -> t
(** Execute the algorithm's Start phase: builds the wave over days
    [1..env.w] fetched from the store. *)

val transition : t -> unit
(** Absorb the next day. *)

val advance_to : t -> int -> unit
(** Transition repeatedly until [current_day] reaches the given day. *)

val kind : t -> kind
val env : t -> Env.t
val frame : t -> Frame.t
val current_day : t -> int

val last_mark : t -> float
(** Disk-clock instant during the most recent transition at which the
    new day's data became queryable (Section 5's Transition Time is
    [last_mark - clock at transition start]). *)

val window : t -> Dayset.t
(** The required window [{current_day - w + 1 .. current_day}]. *)

val last_slot : t -> int option
(** For WATA*/RATA*, the constituent currently absorbing new days
    (their "Last" pointer); [None] for the DEL/REINDEX family.  Used by
    {!Transition_plan} to predict which slots the next transition will
    touch. *)

val temp_days : t -> Dayset.t list
(** Time-sets of scheme-private temporary indexes currently held
    (empty list for DEL, REINDEX and WATA). *)

val check_window_invariant : t -> unit
(** Hard schemes: coverage equals the required window.  WATA*:
    coverage includes the window and total length never exceeds
    Theorem 2's bound.  Raises [Failure] with a diagnostic. *)

val temp_indexes : t -> Wave_storage.Index.t list
(** Scheme-private temporary indexes currently alive; with the frame's
    constituents these account for all disk space the scheme holds. *)

val allocated_bytes : t -> int
(** Total disk bytes held: constituents plus temporaries — the paper's
    space-utilisation measure during operation. *)

val last_transition_seconds : t -> float
(** Model seconds between the new day's data arriving and it becoming
    queryable during the most recent transition — Section 5's
    Transition Time. *)

val last_total_seconds : t -> float
(** Model seconds consumed by the whole most recent maintenance step
    (pre-computation + transition + post-install work). *)
