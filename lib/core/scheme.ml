type kind = Del | Reindex | Reindex_plus | Reindex_pp | Wata_star | Rata_star

let all = [ Del; Reindex; Reindex_plus; Reindex_pp; Wata_star; Rata_star ]

let name = function
  | Del -> "DEL"
  | Reindex -> "REINDEX"
  | Reindex_plus -> "REINDEX+"
  | Reindex_pp -> "REINDEX++"
  | Wata_star -> "WATA*"
  | Rata_star -> "RATA*"

let of_name s =
  match String.uppercase_ascii (String.trim s) with
  | "DEL" -> Some Del
  | "REINDEX" -> Some Reindex
  | "REINDEX+" -> Some Reindex_plus
  | "REINDEX++" -> Some Reindex_pp
  | "WATA" | "WATA*" -> Some Wata_star
  | "RATA" | "RATA*" -> Some Rata_star
  | _ -> None

let hard_window = function Wata_star -> false | _ -> true

let min_indexes = function Wata_star | Rata_star -> 2 | _ -> 1

type t =
  | S_del of Del.t
  | S_reindex of Reindex.t
  | S_rplus of Reindex_plus.t
  | S_rpp of Reindex_pp.t
  | S_wata of Wata.t
  | S_rata of Rata.t

let start_raw k env =
  match k with
  | Del -> S_del (Del.start env)
  | Reindex -> S_reindex (Reindex.start env)
  | Reindex_plus -> S_rplus (Reindex_plus.start env)
  | Reindex_pp -> S_rpp (Reindex_pp.start env)
  | Wata_star -> S_wata (Wata.start env)
  | Rata_star -> S_rata (Rata.start env)

let start k env =
  if Wave_obs.Trace.is_enabled () then
    Wave_obs.Trace.with_span "scheme.start"
      ~tags:[ ("scheme", name k) ]
      (fun () -> start_raw k env)
  else start_raw k env

let transition_raw = function
  | S_del s -> Del.transition s
  | S_reindex s -> Reindex.transition s
  | S_rplus s -> Reindex_plus.transition s
  | S_rpp s -> Reindex_pp.transition s
  | S_wata s -> Wata.transition s
  | S_rata s -> Rata.transition s

let kind = function
  | S_del _ -> Del
  | S_reindex _ -> Reindex
  | S_rplus _ -> Reindex_plus
  | S_rpp _ -> Reindex_pp
  | S_wata _ -> Wata_star
  | S_rata _ -> Rata_star

let frame = function
  | S_del s -> Del.frame s
  | S_reindex s -> Reindex.frame s
  | S_rplus s -> Reindex_plus.frame s
  | S_rpp s -> Reindex_pp.frame s
  | S_wata s -> Wata.frame s
  | S_rata s -> Rata.frame s

let current_day = function
  | S_del s -> Del.current_day s
  | S_reindex s -> Reindex.current_day s
  | S_rplus s -> Reindex_plus.current_day s
  | S_rpp s -> Reindex_pp.current_day s
  | S_wata s -> Wata.current_day s
  | S_rata s -> Rata.current_day s

(* One span per daily transition, tagged with the scheme and the day
   being installed.  The tag strings are only built when tracing is on,
   so the disabled path costs a flag test. *)
let transition t =
  if Wave_obs.Trace.is_enabled () then
    Wave_obs.Trace.with_span "transition"
      ~tags:
        [
          ("scheme", name (kind t));
          ("day", string_of_int (current_day t + 1));
        ]
      (fun () -> transition_raw t)
  else transition_raw t

let last_mark = function
  | S_del s -> Del.last_mark s
  | S_reindex s -> Reindex.last_mark s
  | S_rplus s -> Reindex_plus.last_mark s
  | S_rpp s -> Reindex_pp.last_mark s
  | S_wata s -> Wata.last_mark s
  | S_rata s -> Rata.last_mark s

let env t = Frame.env (frame t)

let last_slot = function
  | S_wata s -> Some (Wata.last_slot s)
  | S_rata s -> Some (Rata.last_slot s)
  | S_del _ | S_reindex _ | S_rplus _ | S_rpp _ -> None

let advance_to t day =
  while current_day t < day do
    transition t
  done

let window t =
  let d = current_day t in
  Dayset.range (d - (env t).Env.w + 1) d

let temp_days = function
  | S_del _ | S_reindex _ | S_wata _ -> []
  | S_rplus s ->
    let d = Reindex_plus.temp_days s in
    if Dayset.is_empty d then [] else [ d ]
  | S_rpp s -> Reindex_pp.temps_days s
  | S_rata s -> Rata.temps_days s

let check_window_invariant t =
  let covered = Frame.covered_days (frame t) in
  let required = window t in
  if hard_window (kind t) then begin
    if not (Dayset.equal covered required) then
      failwith
        (Printf.sprintf "%s: hard window violated: covered %s, required %s"
           (name (kind t))
           (Dayset.to_string covered)
           (Dayset.to_string required))
  end
  else begin
    if not (Dayset.subset required covered) then
      failwith
        (Printf.sprintf "%s: soft window missing days: covered %s, required %s"
           (name (kind t))
           (Dayset.to_string covered)
           (Dayset.to_string required));
    let e = env t in
    let bound = Wata.length_bound ~w:e.Env.w ~n:e.Env.n in
    let len = Frame.length (frame t) in
    if len > bound then
      failwith
        (Printf.sprintf "WATA*: length %d exceeds Theorem 2 bound %d" len bound)
  end

let temp_indexes = function
  | S_del _ | S_reindex _ | S_wata _ -> []
  | S_rplus s -> Option.to_list (Reindex_plus.temp_index s)
  | S_rpp s -> Reindex_pp.temp_indexes s
  | S_rata s -> Rata.temp_indexes s

let allocated_bytes t =
  Frame.allocated_bytes (frame t)
  + List.fold_left
      (fun acc i -> acc + Wave_storage.Index.allocated_bytes i)
      0 (temp_indexes t)

let base_of = function
  | S_del s -> Del.base s
  | S_reindex s -> Reindex.base s
  | S_rplus s -> Reindex_plus.base s
  | S_rpp s -> Reindex_pp.base s
  | S_wata s -> Wata.base s
  | S_rata s -> Rata.base s

let last_transition_seconds t =
  let b = base_of t in
  b.Scheme_base.mark -. b.Scheme_base.arrived

let last_total_seconds t =
  let b = base_of t in
  Wave_disk.Disk.elapsed (Frame.env (frame t)).Env.disk -. b.Scheme_base.started
