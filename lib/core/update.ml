open Wave_storage

exception Deletes_not_supported of string

let require_deletes env op =
  if (not env.Env.allow_deletes) && env.Env.technique <> Env.Packed_shadow then
    raise
      (Deletes_not_supported
         (Printf.sprintf
            "%s needs incremental deletion, but the index package does not              support deletes (use packed shadowing or a rebuild/throw-away              scheme)"
            op))

let fetch env days = List.map env.Env.store days

(* One span per paper-level wave operation (BuildIndex / AddToIndex /
   DeleteFromIndex), tagged with the technique and the day count.  The
   tag list is only built when tracing is on. *)
let op_span env name days f =
  if Wave_obs.Trace.is_enabled () then
    Wave_obs.Trace.with_span name
      ~tags:
        [
          ("technique", Env.technique_name env.Env.technique);
          ("days", string_of_int (List.length days));
        ]
      f
  else f ()

(* Technique barrier for write-back pools: the moment a shadow replaces
   the old constituent (the old index is dropped), the shadow is the
   only copy — its deferred bucket writes must be on disk first.  This
   is where a shadow build's coalesced rewrites are charged; for
   write-through or uncached runs it is a no-op. *)
let flush_barrier env =
  match Wave_cache.Cache.find env.Env.disk with
  | Some pool -> Wave_cache.Cache.flush pool
  | None -> ()

let build_days env days =
  op_span env "BuildIndex" days (fun () ->
      Index.build env.Env.disk env.Env.icfg (fetch env days))

let add_in_place env idx days =
  List.iter (fun b -> Index.add_batch idx b) (fetch env days);
  idx

let add_days env idx days =
  op_span env "AddToIndex" days @@ fun () ->
  match env.Env.technique with
  | Env.In_place -> add_in_place env idx days
  | Env.Simple_shadow ->
    let shadow = Index.copy idx in
    let shadow = add_in_place env shadow days in
    flush_barrier env;
    Index.drop idx;
    shadow
  | Env.Packed_shadow ->
    let fresh = Index.pack idx ~drop_days:(fun _ -> false) ~extra:(fetch env days) in
    flush_barrier env;
    Index.drop idx;
    fresh

let delete_days env idx expire =
  require_deletes env "DeleteFromIndex";
  op_span env "DeleteFromIndex" [] @@ fun () ->
  match env.Env.technique with
  | Env.In_place ->
    ignore (Index.delete_days idx expire);
    idx
  | Env.Simple_shadow ->
    let shadow = Index.copy idx in
    ignore (Index.delete_days shadow expire);
    flush_barrier env;
    Index.drop idx;
    shadow
  | Env.Packed_shadow ->
    let fresh = Index.pack idx ~drop_days:expire ~extra:[] in
    flush_barrier env;
    Index.drop idx;
    fresh

let replace_days env idx ~expire ~add =
  require_deletes env "DeleteFromIndex";
  op_span env "ReplaceInIndex" add @@ fun () ->
  match env.Env.technique with
  | Env.In_place ->
    ignore (Index.delete_days idx expire);
    add_in_place env idx add
  | Env.Simple_shadow ->
    let shadow = Index.copy idx in
    ignore (Index.delete_days shadow expire);
    let shadow = add_in_place env shadow add in
    flush_barrier env;
    Index.drop idx;
    shadow
  | Env.Packed_shadow ->
    let fresh = Index.pack idx ~drop_days:expire ~extra:(fetch env add) in
    flush_barrier env;
    Index.drop idx;
    fresh

let copy _env idx = Index.copy idx

let add_days_fresh env idx days =
  op_span env "AddToIndex" days @@ fun () ->
  match env.Env.technique with
  | Env.In_place | Env.Simple_shadow -> add_in_place env idx days
  | Env.Packed_shadow ->
    let fresh = Index.pack idx ~drop_days:(fun _ -> false) ~extra:(fetch env days) in
    flush_barrier env;
    Index.drop idx;
    fresh

type pending = {
  old_idx : Index.t;
  staged : Index.t option; (* None: work deferred to completion (packed shadow) *)
  expire : int -> bool;
}

let prepare_replace env idx ~expire =
  require_deletes env "DeleteFromIndex";
  op_span env "DeleteFromIndex" [] @@ fun () ->
  match env.Env.technique with
  | Env.In_place ->
    ignore (Index.delete_days idx expire);
    { old_idx = idx; staged = Some idx; expire }
  | Env.Simple_shadow ->
    let shadow = Index.copy idx in
    ignore (Index.delete_days shadow expire);
    { old_idx = idx; staged = Some shadow; expire }
  | Env.Packed_shadow -> { old_idx = idx; staged = None; expire }

let prepare_add env idx =
  (* No expiry: skip the legacy-deletes guard and the delete pass. *)
  match env.Env.technique with
  | Env.In_place -> { old_idx = idx; staged = Some idx; expire = (fun _ -> false) }
  | Env.Simple_shadow ->
    { old_idx = idx; staged = Some (Index.copy idx); expire = (fun _ -> false) }
  | Env.Packed_shadow -> { old_idx = idx; staged = None; expire = (fun _ -> false) }

let complete_replace env p ~add =
  op_span env "AddToIndex" add @@ fun () ->
  match p.staged with
  | Some staged ->
    let staged = add_in_place env staged add in
    if staged != p.old_idx then begin
      flush_barrier env;
      Index.drop p.old_idx
    end;
    staged
  | None ->
    let fresh = Index.pack p.old_idx ~drop_days:p.expire ~extra:(fetch env add) in
    flush_barrier env;
    Index.drop p.old_idx;
    fresh
