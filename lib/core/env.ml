open Wave_disk
open Wave_storage

type technique = In_place | Simple_shadow | Packed_shadow

let technique_name = function
  | In_place -> "in-place"
  | Simple_shadow -> "simple-shadow"
  | Packed_shadow -> "packed-shadow"

let technique_of_name = function
  | "in-place" -> Some In_place
  | "simple-shadow" -> Some Simple_shadow
  | "packed-shadow" -> Some Packed_shadow
  | _ -> None

type day_store = int -> Entry.batch

type t = {
  disk : Disk.t;
  icfg : Index.config;
  technique : technique;
  store : day_store;
  w : int;
  n : int;
  allow_deletes : bool;
}

let create ?disk ?(icfg = Index.default_config) ?(technique = In_place)
    ?(allow_deletes = true) ~store ~w ~n () =
  if n < 1 then invalid_arg "Env.create: n must be >= 1";
  if w < n then invalid_arg "Env.create: need n <= w";
  let disk = match disk with Some d -> d | None -> Index.make_disk icfg in
  { disk; icfg; technique; store; w; n; allow_deletes }
