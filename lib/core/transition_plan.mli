(** Predict the frame changes of a scheme's next transition.

    Every scheme's transition is a deterministic function of its
    current state, so the slots it will touch — and their time-sets
    afterwards — can be computed {e before} any disk work happens.
    {!Checkpoint} turns this prediction into the journal's intent
    record; recovery then knows exactly which constituents an
    interrupted transition may have damaged and rebuilds only those.

    For the hard-window single-slot family (DEL, REINDEX, REINDEX+,
    REINDEX++) the window invariant pins the answer: only the slot
    holding the expiring day changes, gaining the new day and losing
    the expired one.  WATA*/RATA* branch between ThrowAway and Wait on
    a frame-derivable predicate, using the scheme's Last pointer
    ({!Scheme.last_slot}).  Scheme-private temporaries (REINDEX+/++
    and RATA* ladders) are precomputation, not constituents: they are
    deliberately absent — recovery discards and later rebuilds them. *)

type change = {
  slot : int;
  old_days : Dayset.t;
  new_days : Dayset.t;
}

type t = { day_from : int; day_to : int; changes : change list }

val plan : Scheme.t -> t
(** The next transition's plan.  Pure: reads only in-memory state,
    charges nothing to the disk. *)
