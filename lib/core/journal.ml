type change = {
  slot : int;
  old_days : Dayset.t;
  new_days : Dayset.t;
  old_extents : (int * int * int) list; (* start, length, generation *)
}

type intent = {
  scheme : Scheme.kind;
  technique : Env.technique;
  day_from : int;
  day_to : int;
  changes : change list;
}

type entry = Intent of intent | Commit of { day_to : int }

type t = { mutable entries : entry list (* newest first *) }

let create () = { entries = [] }
let append t e = t.entries <- e :: t.entries
let entries t = List.rev t.entries
let truncate t = t.entries <- []
let is_empty t = t.entries = []

let pending t =
  (* The journal is truncated after every commit, so an interrupted
     transition is simply the newest intent with no commit after it. *)
  let rec scan committed = function
    | [] -> None
    | Commit { day_to } :: rest -> scan (day_to :: committed) rest
    | Intent i :: _ -> if List.mem i.day_to committed then None else Some i
  in
  scan [] t.entries

(* --- serialization -------------------------------------------------- *)

let days_token ds =
  if Dayset.is_empty ds then "-"
  else String.concat "," (List.map string_of_int (Dayset.elements ds))

let days_of_token = function
  | "-" -> Some Dayset.empty
  | s ->
    String.split_on_char ',' s
    |> List.map int_of_string_opt
    |> List.fold_left
         (fun acc d ->
           match (acc, d) with
           | Some a, Some d -> Some (Dayset.add d a)
           | _ -> None)
         (Some Dayset.empty)

let extents_token = function
  | [] -> "-"
  | exts ->
    String.concat ","
      (List.map (fun (s, l, g) -> Printf.sprintf "%d:%d:%d" s l g) exts)

let extents_of_token = function
  | "-" -> Some []
  | s ->
    String.split_on_char ',' s
    |> List.map (fun triple ->
           match String.split_on_char ':' triple with
           | [ a; b; c ] -> (
             match
               (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c)
             with
             | Some a, Some b, Some c -> Some (a, b, c)
             | _ -> None)
           | _ -> None)
    |> List.fold_left
         (fun acc e ->
           match (acc, e) with Some a, Some e -> Some (e :: a) | _ -> None)
         (Some [])
    |> Option.map List.rev

let entry_lines = function
  | Intent i ->
    Printf.sprintf "intent %s %s %d %d" (Scheme.name i.scheme)
      (Env.technique_name i.technique) i.day_from i.day_to
    :: List.map
         (fun c ->
           Printf.sprintf "change %d %s %s %s" c.slot (days_token c.old_days)
             (days_token c.new_days)
             (extents_token c.old_extents))
         i.changes
  | Commit { day_to } -> [ Printf.sprintf "commit %d" day_to ]

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "wave-journal v1\n";
  List.iter
    (fun e ->
      List.iter
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        (entry_lines e))
    (entries t);
  Buffer.contents buf

let of_string s =
  let err m = Error m in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  match lines with
  | header :: rest when header = "wave-journal v1" -> (
    (* Fold lines into entries; [change] lines attach to the open intent. *)
    let parse_line (acc : (entry list * intent option, string) result) line =
      match acc with
      | Error _ as e -> e
      | Ok (done_, open_intent) -> (
        let close acc = match open_intent with
          | Some i -> Intent { i with changes = List.rev i.changes } :: acc
          | None -> acc
        in
        match String.split_on_char ' ' line with
        | "intent" :: sch :: tech :: from_ :: to_ :: [] -> (
          match
            ( Scheme.of_name sch,
              Env.technique_of_name tech,
              int_of_string_opt from_,
              int_of_string_opt to_ )
          with
          | Some scheme, Some technique, Some day_from, Some day_to ->
            Ok
              ( close done_,
                Some { scheme; technique; day_from; day_to; changes = [] } )
          | None, _, _, _ -> err "intent: unknown scheme"
          | _, None, _, _ -> err "intent: unknown technique"
          | _ -> err "intent: bad day numbers")
        | "change" :: slot :: old_ :: new_ :: exts :: [] -> (
          match open_intent with
          | None -> err "change line outside an intent"
          | Some i -> (
            match
              ( int_of_string_opt slot,
                days_of_token old_,
                days_of_token new_,
                extents_of_token exts )
            with
            | Some slot, Some old_days, Some new_days, Some old_extents ->
              if slot < 1 then err "change: slot must be >= 1"
              else
                Ok
                  ( done_,
                    Some
                      {
                        i with
                        changes =
                          { slot; old_days; new_days; old_extents }
                          :: i.changes;
                      } )
            | None, _, _, _ -> err "change: bad slot"
            | _, None, _, _ | _, _, None, _ -> err "change: garbled day set"
            | _ -> err "change: garbled extent list"))
        | "commit" :: to_ :: [] -> (
          match int_of_string_opt to_ with
          | Some day_to -> Ok (Commit { day_to } :: close done_, None)
          | None -> err "commit: bad day number")
        | _ -> err (Printf.sprintf "unrecognised journal line %S" line))
    in
    match List.fold_left parse_line (Ok ([], None)) rest with
    | Error m -> Error m
    | Ok (done_, open_intent) ->
      let done_ =
        match open_intent with
        | Some i -> Intent { i with changes = List.rev i.changes } :: done_
        | None -> done_
      in
      Ok { entries = done_ }
  )
  | _ -> err "bad or missing journal header"
