(** Shared environment for wave-index maintenance.

    Bundles everything a scheme needs: the simulated disk, the
    constituent-index configuration, the chosen update technique
    (Section 2.1), the day store supplying historical batches (schemes
    like REINDEX re-read past days when rebuilding), and the window
    geometry [(W, n)]. *)

open Wave_disk
open Wave_storage

type technique =
  | In_place
      (** Modify directory/buckets directly; needs concurrency control;
          result not packed. *)
  | Simple_shadow
      (** Copy the index, update the copy in place, swap; extra space
          during transitions; result not packed. *)
  | Packed_shadow
      (** Stream old + temporary new into a fresh packed index; result
          packed; deletes ride along with the smart copy. *)

val technique_name : technique -> string

val technique_of_name : string -> technique option
(** Inverse of {!technique_name} — the token used by manifests and
    journals. *)

type day_store = int -> Entry.batch
(** [store d] returns day [d]'s batch.  Must be deterministic: schemes
    may fetch the same day several times (e.g. REINDEX re-reads W/n
    days per rebuild). *)

type t = {
  disk : Disk.t;
  icfg : Index.config;
  technique : technique;
  store : day_store;
  w : int;  (** required window length in days *)
  n : int;  (** number of constituent indexes *)
  allow_deletes : bool;
      (** Whether the underlying index package implements incremental
          deletion.  The paper motivates REINDEX/WATA/RATA partly by
          legacy packages (WAIS, SMART) that "do not implement deletes
          at all"; with [false], any scheme x technique combination
          that needs [DeleteFromIndex] (DEL under in-place or simple
          shadowing) raises {!Update.Deletes_not_supported}, while
          packed shadowing remains legal since expiry rides the smart
          copy. *)
}

val create :
  ?disk:Disk.t ->
  ?icfg:Index.config ->
  ?technique:technique ->
  ?allow_deletes:bool ->
  store:day_store ->
  w:int ->
  n:int ->
  unit ->
  t
(** Validates [1 <= n <= w].  When [disk] is omitted a fresh compatible
    disk is created via {!Wave_storage.Index.make_disk}. *)
