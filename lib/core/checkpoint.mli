(** Crash-consistent wave maintenance: journalled transitions and
    atomic manifest checkpoints.

    This module wraps a running {!Scheme} in the durability protocol:

    + before each transition, a {!Journal} intent record naming every
      slot the transition will touch ({!Transition_plan}) is made
      durable;
    + the transition runs (the only dangerous region);
    + the new manifest is checkpointed with write-new-then-rename
      atomic-swap semantics — a crash mid-write leaves the old
      manifest intact, the rename is the commit point;
    + a commit record closes the intent and the journal is truncated.

    The simulator models a crash as an injected {!Disk.Disk_error}
    escaping the transition: volatile state (the running scheme and its
    private temporaries) is lost, durable state (manifest, journal,
    extents on disk, the constituent indexes named by the last
    checkpoint) survives.  {!recover} then rolls the interrupted
    transition {e back} — when a shadow technique left every journalled
    old extent live and untorn — or {e forward}, rebuilding only the
    slots the intent names from the day store.  Either way recovery
    cost is bounded by one transition, not a full [BuildIndex] of every
    slot, and every unclaimed extent (interrupted shadows, torn writes,
    orphaned temporaries) is swept back to the allocator. *)

type t

type recovery = {
  rolled_forward : bool;
      (** [true]: the interrupted transition was completed from the day
          store; [false]: it was undone (or nothing was pending). *)
  recovered_day : int;  (** day the recovered wave serves *)
  rebuilt_slots : int list;  (** slots rebuilt — at most the intent's *)
  freed_blocks : int;  (** leaked/torn blocks swept back *)
  recovery_seconds : float;  (** model time the recovery cost *)
}

exception Crashed
(** Raised when the live scheme is demanded after a crash and before
    {!recover}. *)

val start : ?dir:string -> Scheme.kind -> Env.t -> t
(** Start the scheme and write the initial checkpoint.

    With [dir], durable state is {e really} persisted under the
    {!Store_dir} layout: the environment's disk must be file-backed at
    [Store_dir.blocks_path dir] (raises [Invalid_argument] otherwise),
    and every protocol step lands on storage in commit order — data
    blocks fsync'd, the allocator sidecar snapshotted, the manifest
    atomically swapped, the journal rewritten.  A process killed at any
    point can then be brought back with {!reopen}. *)

val transition : t -> unit
(** One journalled, checkpointed transition.  If the disk's armed fault
    fires, the exception propagates and the instance enters the crashed
    state ({!crashed} = [true]); durable state is preserved for
    {!recover}. *)

val advance_to : t -> int -> unit

val kill : t -> unit
(** Enter the crashed state without a fault inside {!transition}: the
    process died elsewhere — e.g. while a retired epoch's readers were
    draining after the commit.  Volatile state (scheme, dirty frames,
    epoch snapshots and their deferred reclamation) is dropped exactly
    as the transition crash handler drops it; durable state is
    preserved for {!recover}, which finds no pending intent, lands on
    the last committed manifest and sweeps whatever the epoch gates
    were holding.  No-op when already crashed. *)

val recover : t -> recovery
(** Cold-start recovery from durable state only.  Rolls the pending
    intent forward or back as described above, sweeps unclaimed
    extents, re-checkpoints, and leaves a queryable {!frame}.
    Re-entrant: if a second fault interrupts recovery itself, calling
    it again (or {!reopen}, after a kill) starts over from the same
    durable state — all in-memory commits happen after the last I/O. *)

val reopen :
  ?icfg:Wave_storage.Index.config ->
  ?allow_deletes:bool ->
  ?seek_time:float ->
  ?transfer_rate:float ->
  dir:string ->
  store:Env.day_store ->
  unit ->
  t * recovery
(** Kill-and-recover: rebuild an instance from a {!Store_dir} checkpoint
    directory after the process died.  Reads the manifest (falling back
    to [MANIFEST.prev] when the newest commit was torn, cleaning stale
    temp files), reopens the block file with stamp verification, reads
    the journal (unreadable = empty), and runs {!recover}.  Because the
    cost model persists block stamps rather than index payloads, every
    surviving slot is rebuilt from the day store — [rebuilt_slots] still
    reports only the interrupted intent's slots.  Raises
    {!Wave_disk.Disk.Disk_error} when no readable manifest or allocator
    snapshot survives. *)

val dir : t -> string option

val scheme : t -> Scheme.t
(** The live scheme.  @raise Crashed after a crash. *)

val frame : t -> Frame.t
(** The queryable wave: the live scheme's frame, or after {!recover}
    the recovered frame.  @raise Crashed between crash and recovery. *)

val current_day : t -> int
val crashed : t -> bool
val manifest : t -> Manifest.t
val journal : t -> Journal.t
val env : t -> Env.t
