type t = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;
  epoch : int;
      (* generation of the serving epoch this checkpoint commits; 0
         when concurrent serving is off (and in pre-epoch manifests) *)
  slots : Dayset.t list;
}

let capture s =
  let env = Scheme.env s in
  let frame = Scheme.frame s in
  {
    scheme = Scheme.kind s;
    technique = env.Env.technique;
    w = env.Env.w;
    n = env.Env.n;
    day = Scheme.current_day s;
    epoch =
      (match Wave_epoch.Epoch.current env.Env.disk with
      | Some e -> Wave_epoch.Epoch.gen e
      | None -> 0);
    slots =
      List.init (Frame.n frame) (fun i -> Frame.slot_days frame (i + 1));
  }

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "wave-manifest v1\n";
  Printf.bprintf buf "scheme %s\n" (Scheme.name t.scheme);
  Printf.bprintf buf "technique %s\n" (Env.technique_name t.technique);
  Printf.bprintf buf "w %d\n" t.w;
  Printf.bprintf buf "n %d\n" t.n;
  Printf.bprintf buf "day %d\n" t.day;
  (* Written only when epochs are on, so manifests from stop-the-world
     runs stay byte-identical to the pre-epoch format. *)
  if t.epoch <> 0 then Printf.bprintf buf "epoch %d\n" t.epoch;
  List.iteri
    (fun i ds ->
      Printf.bprintf buf "slot %d %s\n" (i + 1)
        (String.concat "," (List.map string_of_int (Dayset.elements ds))))
    t.slots;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let err m = Error m in
  match lines with
  | header :: rest when header = "wave-manifest v1" -> (
    let field name =
      List.find_map
        (fun l ->
          let prefix = name ^ " " in
          if String.starts_with ~prefix l then
            Some (String.sub l (String.length prefix)
                    (String.length l - String.length prefix))
          else None)
        rest
    in
    let int_field name =
      match field name with
      | None -> Error (Printf.sprintf "missing field %s" name)
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "bad integer for %s" name))
    in
    (* Absent in pre-epoch manifests: default 0 (stop-the-world). *)
    let epoch_field =
      match field "epoch" with
      | None -> Ok 0
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some i -> Ok i
        | None -> Error "bad integer for epoch")
    in
    match (field "scheme", field "technique", int_field "w", int_field "n",
           int_field "day", epoch_field) with
    | Some sch, Some tech, Ok w, Ok n, Ok day, Ok epoch -> (
      match (Scheme.of_name sch, Env.technique_of_name (String.trim tech)) with
      | Some scheme, Some technique -> (
        let slots =
          List.filter_map
            (fun l ->
              if String.starts_with ~prefix:"slot " l then
                match String.split_on_char ' ' l with
                | [ _; _; days ] ->
                  let parsed =
                    if days = "" then Some Dayset.empty
                    else
                      String.split_on_char ',' days
                      |> List.map int_of_string_opt
                      |> List.fold_left
                           (fun acc d ->
                             match (acc, d) with
                             | Some s, Some d -> Some (Dayset.add d s)
                             | _ -> None)
                           (Some Dayset.empty)
                  in
                  Some parsed
                | [ _; _ ] -> Some (Some Dayset.empty)
                | _ -> Some None
              else None)
            rest
        in
        if List.exists Option.is_none slots then err "malformed slot line"
        else
          let slots = List.map Option.get slots in
          if List.length slots <> n then err "slot count does not match n"
          else Ok { scheme; technique; w; n; day; epoch; slots })
      | None, _ -> err "unknown scheme"
      | _, None -> err "unknown technique")
    | None, _, _, _, _, _ -> err "missing field scheme"
    | _, None, _, _, _, _ -> err "missing field technique"
    | _, _, (Error _ as e), _, _, _ -> e
    | _, _, _, (Error _ as e), _, _ -> e
    | _, _, _, _, (Error _ as e), _ -> e
    | _, _, _, _, _, (Error _ as e) -> e)
  | _ -> err "bad or missing manifest header"

let restore_frame t env =
  if env.Env.w <> t.w || env.Env.n <> t.n then
    invalid_arg "Manifest.restore_frame: geometry mismatch";
  let frame = Frame.create env in
  List.iteri
    (fun i ds ->
      if not (Dayset.is_empty ds) then
        Frame.set_slot frame (i + 1)
          (Update.build_days env (Dayset.elements ds))
          ds)
    t.slots;
  frame

let restart t env =
  if env.Env.w <> t.w || env.Env.n <> t.n then
    invalid_arg "Manifest.restart: geometry mismatch";
  let s = Scheme.start t.scheme env in
  Scheme.advance_to s t.day;
  s
