(** The wave index Θ: the set of constituent indexes visible to
    queries, with their time-sets.

    Maintenance algorithms mutate slots through {!set_slot} /
    {!clear_slot}; queries go through the [Timed*] operations of
    Section 2.2.  Temporary indexes (REINDEX+/++, RATA) are scheme
    private and never appear here — the paper charges no transition
    space for them because "queries are executed only on constituent
    indexes". *)

open Wave_storage

type t

val create : Env.t -> t
(** [create env] makes a frame with [env.n] empty slots (ids
    [1 .. env.n]). *)

val env : t -> Env.t
val n : t -> int

(** {1 Slot management (used by schemes)} *)

val set_slot : t -> int -> Index.t -> Dayset.t -> unit
(** [set_slot t j idx days] installs [idx] with time-set [days] in slot
    [j].  The previous index is {e not} dropped (shadow swaps drop it
    themselves); it is simply unlinked. *)

val slot_index : t -> int -> Index.t
val slot_days : t -> int -> Dayset.t
val update_days : t -> int -> Dayset.t -> unit

val snapshot : t -> (Index.t * Dayset.t) list
(** The constituent set as an immutable value — one [(index, days)]
    pair per slot, captured at call time.  An epoch snapshot probes
    against this list, unaffected by any later {!set_slot}. *)

val find_slot_with_day : t -> int -> int
(** The slot whose time-set contains the day.  Raises [Not_found]. *)

val covered_days : t -> Dayset.t
(** Union of all time-sets — the days currently indexed. *)

val length : t -> int
(** Total number of days indexed — the paper's wave-index {e length}. *)

(** {1 Access operations (Section 2.2)} *)

val timed_index_probe : t -> t1:int -> t2:int -> value:int -> Entry.t list
(** [TimedIndexProbe (Θ, T1, T2, s)]: probes every constituent whose
    time-set intersects [\[t1, t2\]], keeping entries whose timestamp
    falls in range. *)

val index_probe : t -> value:int -> Entry.t list
(** [IndexProbe]: [timed_index_probe] with an unbounded range — note
    that under soft windows this can return entries older than the
    required window, exactly as the paper warns. *)

val timed_segment_scan : t -> t1:int -> t2:int -> Entry.t list
val segment_scan : t -> Entry.t list

type aggregate = Count | Sum_info | Min_info | Max_info
(** Aggregates over the [info] payload — the paper's motivating scan
    queries "compute some aggregate such as sum, min or max" by
    scanning the whole index. *)

val timed_aggregate : t -> t1:int -> t2:int -> op:aggregate -> int option
(** [TimedSegmentScan] folded into an aggregate without materialising
    the entry list.  [Count]/[Sum_info] return [Some 0] on an empty
    range; [Min_info]/[Max_info] return [None].  Charges exactly the
    scan's disk accesses. *)

(** {1 Accounting} *)

val allocated_bytes : t -> int
(** Disk space held by all constituents (the S'-accounted size). *)

val used_bytes : t -> int
val entry_count : t -> int

val validate : t -> unit
(** Validates every constituent ({!Wave_storage.Index.validate}) and
    checks each slot's recorded time-set covers the days actually
    present in its index (days with empty batches leave no entries, so
    the time-set may be a superset). *)

val pp : Format.formatter -> t -> unit
(** One line per slot: [I1 -> {d2, d3}], matching the paper's tables. *)
