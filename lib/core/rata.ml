open Wave_storage

type t = {
  base : Scheme_base.t;
  mutable last : int;
  mutable temps : Index.t array; (* T_1 .. T_c at indexes 1..c; slot 0 unused *)
  mutable tdays : Dayset.t array;
  mutable temp_used : int;
}

let name = "RATA*"
let hard_window = true
let min_indexes = 2

(* Build suffix indexes of [ds] (the next-to-expire cluster minus its
   oldest day): T_m holds the m most recent days, so consuming the
   ladder top-down simulates day-by-day expiry. *)
let initialize t ds =
  let env = t.base.Scheme_base.env in
  let c = Dayset.cardinal ds in
  let temps = Array.make (c + 1) (Index.create_empty env.Env.disk env.Env.icfg) in
  let tdays = Array.make (c + 1) Dayset.empty in
  (if c > 0 then
     match List.rev (Dayset.elements ds) with
     | [] -> assert false
     | k :: rest ->
       temps.(1) <- Update.build_days env [ k ];
       tdays.(1) <- Dayset.singleton k;
       List.iteri
         (fun i day ->
           let m = i + 2 in
           let next = Update.copy env temps.(m - 1) in
           temps.(m) <- Update.add_days_fresh env next [ day ];
           tdays.(m) <- Dayset.add day tdays.(m - 1))
         rest);
  t.temps <- temps;
  t.tdays <- tdays;
  t.temp_used <- c

let start env =
  if env.Env.n < 2 then invalid_arg "Rata.start: RATA needs n >= 2";
  let base = Scheme_base.create env in
  let parts =
    Split.contiguous ~first_day:1 ~days:(env.Env.w - 1) ~parts:(env.Env.n - 1)
  in
  List.iteri
    (fun i (lo, hi) ->
      let days = Dayset.range lo hi in
      Scheme_base.install base (i + 1)
        (Update.build_days env (Dayset.elements days))
        days)
    parts;
  Scheme_base.install base env.Env.n
    (Update.build_days env [ env.Env.w ])
    (Dayset.singleton env.Env.w);
  base.Scheme_base.day <- env.Env.w;
  Scheme_base.mark_visible base;
  let t =
    { base; last = env.Env.n; temps = [||]; tdays = [||]; temp_used = 0 }
  in
  initialize t (Dayset.remove 1 (Frame.slot_days base.Scheme_base.frame 1));
  t

let others_cover_rest frame ~j ~w =
  let total = ref 0 in
  for i = 1 to Frame.n frame do
    if i <> j then total := !total + Dayset.cardinal (Frame.slot_days frame i)
  done;
  !total = w - 1

let transition t =
  let env = t.base.Scheme_base.env in
  Scheme_base.begin_transition t.base;
  let frame = t.base.Scheme_base.frame in
  let new_day = t.base.Scheme_base.day + 1 in
  let expired = new_day - env.Env.w in
  let j = Frame.find_slot_with_day frame expired in
  if others_cover_rest frame ~j ~w:env.Env.w then begin
    (* ThrowAway, then prepare the ladder for the next cluster (the
       ladder work is pre-computation for future days). *)
    Scheme_base.data_arrives t.base;
    (* Build the replacement before dropping the retired constituent so
       a mid-build failure cannot lose the old (still-valid) wave. *)
    let fresh = Update.build_days env [ new_day ] in
    Index.drop (Frame.slot_index frame j);
    Scheme_base.install t.base j fresh (Dayset.singleton new_day);
    t.last <- j;
    Scheme_base.mark_visible t.base;
    let j' = Frame.find_slot_with_day frame (expired + 1) in
    initialize t (Dayset.remove (expired + 1) (Frame.slot_days frame j'))
  end
  else begin
    (* Wait: absorb the new day, then swap the expiring constituent for
       the pre-built suffix that omits the expired day.  Under simple
       shadowing the copy of I_last is pre-computation. *)
    let idx = Frame.slot_index frame t.last in
    let pending = Update.prepare_add env idx in
    Scheme_base.data_arrives t.base;
    let idx = Update.complete_replace env pending ~add:[ new_day ] in
    Scheme_base.install t.base t.last idx
      (Dayset.add new_day (Frame.slot_days frame t.last));
    let tu = t.temp_used in
    assert (tu >= 1);
    Index.drop (Frame.slot_index frame j);
    Scheme_base.install t.base j t.temps.(tu) t.tdays.(tu);
    t.temp_used <- tu - 1;
    Scheme_base.mark_visible t.base
  end;
  t.base.Scheme_base.day <- new_day

let frame t = t.base.Scheme_base.frame
let current_day t = t.base.Scheme_base.day
let last_mark t = t.base.Scheme_base.mark
let last_slot t = t.last

let temps_days t =
  if t.temp_used = 0 then []
  else Array.to_list (Array.sub t.tdays 1 t.temp_used)

let temp_indexes t =
  if t.temp_used = 0 then [] else Array.to_list (Array.sub t.temps 1 t.temp_used)

let base t = t.base
