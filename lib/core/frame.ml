open Wave_storage

type slot = { mutable index : Index.t; mutable days : Dayset.t }

type t = { env : Env.t; slots : slot array }

let create env =
  {
    env;
    slots =
      Array.init env.Env.n (fun _ ->
          {
            index = Index.create_empty env.Env.disk env.Env.icfg;
            days = Dayset.empty;
          });
  }

let env t = t.env
let n t = Array.length t.slots

let slot t j =
  if j < 1 || j > Array.length t.slots then
    invalid_arg (Printf.sprintf "Frame: slot %d out of range" j);
  t.slots.(j - 1)

let set_slot t j idx days =
  let s = slot t j in
  s.index <- idx;
  s.days <- days;
  (* Slot attribution for traces: every constituent installation leaves
     an instant event naming the slot and its new time-set. *)
  if Wave_obs.Trace.is_enabled () then
    Wave_obs.Trace.instant "install"
      ~tags:[ ("slot", string_of_int j); ("days", Dayset.to_string days) ]

let slot_index t j = (slot t j).index
let slot_days t j = (slot t j).days
let update_days t j days = (slot t j).days <- days

(* The constituent set as an immutable value: what an epoch snapshot
   captures at open time.  Probes resolved against the returned pairs
   see the frame exactly as it was, whatever [set_slot] does later. *)
let snapshot t =
  Array.to_list (Array.map (fun s -> (s.index, s.days)) t.slots)

let find_slot_with_day t day =
  let rec go j =
    if j > Array.length t.slots then raise Not_found
    else if Dayset.mem day (slot t j).days then j
    else go (j + 1)
  in
  go 1

let covered_days t =
  Array.fold_left (fun acc s -> Dayset.union acc s.days) Dayset.empty t.slots

let length t =
  Array.fold_left (fun acc s -> acc + Dayset.cardinal s.days) 0 t.slots

let slot_in_range s ~t1 ~t2 =
  Dayset.exists (fun d -> d >= t1 && d <= t2) s.days

let timed_index_probe t ~t1 ~t2 ~value =
  Array.fold_left
    (fun acc s ->
      if slot_in_range s ~t1 ~t2 then
        acc @ Index.probe_timed s.index value ~t1 ~t2
      else acc)
    [] t.slots

let index_probe t ~value = timed_index_probe t ~t1:min_int ~t2:max_int ~value

let timed_segment_scan t ~t1 ~t2 =
  Array.fold_left
    (fun acc s ->
      if slot_in_range s ~t1 ~t2 then acc @ Index.scan_timed s.index ~t1 ~t2
      else acc)
    [] t.slots

let segment_scan t = timed_segment_scan t ~t1:min_int ~t2:max_int

type aggregate = Count | Sum_info | Min_info | Max_info

let timed_aggregate t ~t1 ~t2 ~op =
  let entries = timed_segment_scan t ~t1 ~t2 in
  let fold f init =
    List.fold_left (fun acc (e : Entry.t) -> f acc e.Entry.info) init entries
  in
  match op with
  | Count -> Some (List.length entries)
  | Sum_info -> Some (fold ( + ) 0)
  | Min_info -> (
    match entries with [] -> None | _ -> Some (fold min max_int))
  | Max_info -> (
    match entries with [] -> None | _ -> Some (fold max min_int))

let allocated_bytes t =
  Array.fold_left (fun acc s -> acc + Index.allocated_bytes s.index) 0 t.slots

let used_bytes t =
  Array.fold_left (fun acc s -> acc + Index.used_bytes s.index) 0 t.slots

let entry_count t =
  Array.fold_left (fun acc s -> acc + Index.entry_count s.index) 0 t.slots

let validate t =
  Array.iteri
    (fun i s ->
      Index.validate s.index;
      let present = Dayset.of_int_list (Index.days s.index) in
      (* Days whose batch happened to be empty leave no trace in the
         index, so the recorded time-set may be a superset. *)
      if not (Dayset.subset present s.days) then
        failwith
          (Printf.sprintf "Frame: slot %d time-set %s but index holds %s"
             (i + 1)
             (Dayset.to_string s.days)
             (Dayset.to_string present)))
    t.slots

let pp ppf t =
  Array.iteri
    (fun i s -> Format.fprintf ppf "I%d -> %a@." (i + 1) Dayset.pp s.days)
    t.slots
