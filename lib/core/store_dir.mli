(** On-disk layout of a durable checkpoint directory.

    When {!Checkpoint.start} is given a directory, the wave's durable
    state lives in four well-known files:

    {v
    dir/BLOCKS         the real block file (plus BLOCKS.alloc sidecar)
    dir/MANIFEST       last committed manifest
    dir/MANIFEST.prev  the one before it (fallback for torn commits)
    dir/JOURNAL        intent/commit log, rewritten atomically
    v}

    The manifest commit is the classic write-new-then-rename swap with
    one refinement: the old [MANIFEST] is first rotated to
    [MANIFEST.prev].  A kill between the two renames leaves only
    [.prev]; a kill before them leaves the old [MANIFEST] plus a stale
    [MANIFEST.tmp] that {!read_manifest} cleans up.  Either way a
    complete committed manifest is always readable, and a corrupted
    [MANIFEST] (partial write on a filesystem without atomic rename
    durability) falls back to the previous checkpoint.

    The journal is tiny — one intent plus one commit — so it is
    persisted as a whole-file atomic rewrite rather than an append
    stream; truncation is a rewrite with the empty journal.

    All writes go through the {!Wave_disk.Io} shim (fault injection,
    retry, [disk.file.*] metrics).  Failures raise
    {!Wave_disk.Disk.Disk_error}. *)

val blocks_path : string -> string
val manifest_path : string -> string
val manifest_prev_path : string -> string
val journal_path : string -> string

val init : string -> unit
(** Create the directory (and parents) if missing. *)

val write_manifest : string -> Manifest.t -> unit
(** Durable commit: tmp + fsync + rotate + rename. *)

val read_manifest : string -> Manifest.t * bool
(** The newest readable committed manifest, cleaning up a stale
    [MANIFEST.tmp].  [true] when the primary was missing or corrupt
    and [MANIFEST.prev] was used.  Raises {!Wave_disk.Disk.Disk_error}
    when neither parses. *)

val write_journal : string -> Journal.t -> unit
(** Whole-file atomic rewrite (tmp + fsync + rename). *)

val read_journal : string -> Journal.t
(** Missing or unparseable — a torn non-atomic write lost the race —
    reads as the empty journal: no pending intent, the manifest is the
    truth. *)
