(** Daily query-stream generation (Section 2.2's four access kinds).

    A [spec] describes an application's daily query mix; {!day_queries}
    expands it into the concrete probes and scans to run against the
    wave index that day.  Values are drawn from the same distribution
    the workload writes with (Zipf for Netnews, uniform for TPC-D), so
    probe selectivities match the data. *)

type value_dist =
  | Zipfian of { vocab : int; s : float }
  | Uniform of int  (** domain size *)

type range_kind =
  | Whole_window  (** [T1 = d - W + 1, T2 = d] *)
  | Current_day  (** [T1 = T2 = d] — SCAM's registration scans *)
  | Random_subrange  (** uniform sub-interval of the window *)

type spec = {
  seed : int;
  probes_per_day : int;
  probe_range : range_kind;
  scans_per_day : int;
  scan_range : range_kind;
  value_dist : value_dist;
}

type query =
  | Probe of { value : int; t1 : int; t2 : int }
  | Scan of { t1 : int; t2 : int }

val day_queries : spec -> day:int -> w:int -> query list
(** Deterministic in [(spec.seed, day)]; probes first, then scans. *)

val scam_spec : spec
(** 100 probes + 1 current-day scan per day (a laptop-scale stand-in
    for the paper's 100,000 and 10). *)

val wse_spec : spec
(** 340 whole-window probes, no scans. *)

val tpcd_spec : spec
(** no probes, 10 whole-window scans. *)

val scale : spec -> factor:int -> spec
(** Multiplies the daily probe and scan counts by [factor] (>= 1),
    keeping the seed, ranges and value distribution.  Lets the sim jump
    a laptop-scale mix to million-user-scale rates ([--query-scale]). *)
