let day_filename d = Printf.sprintf "day-%d.wvb" d

let export ~dir ~store ~days =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun d ->
      let path = Filename.concat dir (day_filename d) in
      let oc = open_out_bin path in
      output_string oc (Wave_storage.Codec.encode_batch (store d));
      close_out oc)
    days

let default_cache_days = 32

let store ?(cache_days = default_cache_days) ~dir () =
  if cache_days < 1 then invalid_arg "File_store.store: cache_days must be >= 1";
  (* LRU over at most [cache_days] decoded batches: recency order lives
     in [order] (front = most recent), capped by evicting its back.  A
     wave's working set is the window's recent days, so a bound well
     under W only costs re-reads, never correctness. *)
  let cache = Hashtbl.create 64 in
  let order = ref [] in
  let touch day = order := day :: List.filter (fun d -> d <> day) !order in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b ->
      touch day;
      b
    | None ->
      let path = Filename.concat dir (day_filename day) in
      if not (Sys.file_exists path) then
        failwith (Printf.sprintf "File_store: missing %s" path);
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      (match Wave_storage.Codec.decode_batch contents with
      | Error e -> failwith (Printf.sprintf "File_store: %s: %s" path e)
      | Ok b ->
        if b.Wave_storage.Entry.day <> day then
          failwith (Printf.sprintf "File_store: %s holds day %d" path
                      b.Wave_storage.Entry.day);
        if Hashtbl.length cache >= cache_days then begin
          match List.rev !order with
          | [] -> ()
          | victim :: rest_rev ->
            Hashtbl.remove cache victim;
            order := List.rev rest_rev
        end;
        Hashtbl.add cache day b;
        touch day;
        b)

let available_days ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun name ->
           match Scanf.sscanf_opt name "day-%d.wvb%!" (fun d -> d) with
           | Some d when day_filename d = name -> Some d
           | _ -> None)
    |> List.sort Int.compare
