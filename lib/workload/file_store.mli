(** File-backed day stores.

    A deployment's day batches live on disk as the system of record
    (schemes re-read past days for rebuilds, and recovery replays
    them).  This store materialises any day store into a directory of
    {!Wave_storage.Codec} files — one `day-<d>.wvb` per day — and reads
    them back on demand with an in-memory cache. *)

val day_filename : int -> string
(** ["day-<d>.wvb"]. *)

val export : dir:string -> store:Wave_core.Env.day_store -> days:int list -> unit
(** Write the given days' batches into [dir] (created if missing).
    Existing files are overwritten. *)

val default_cache_days : int
(** 32. *)

val store : ?cache_days:int -> dir:string -> unit -> Wave_core.Env.day_store
(** A day store reading from [dir].  Raises [Failure] with a diagnostic
    when a day's file is missing or fails to decode — a wave cannot be
    maintained over holes in the record.

    Decoded batches are held in a bounded LRU cache of at most
    [cache_days] days (default {!default_cache_days}); a store used to
    run for months would otherwise retain every day it ever read.
    Raises [Invalid_argument] if [cache_days < 1]. *)

val available_days : dir:string -> int list
(** Days with a well-named file present, ascending. *)
