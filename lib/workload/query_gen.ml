open Wave_util

type value_dist = Zipfian of { vocab : int; s : float } | Uniform of int

type range_kind = Whole_window | Current_day | Random_subrange

type spec = {
  seed : int;
  probes_per_day : int;
  probe_range : range_kind;
  scans_per_day : int;
  scan_range : range_kind;
  value_dist : value_dist;
}

type query = Probe of { value : int; t1 : int; t2 : int } | Scan of { t1 : int; t2 : int }

let range prng kind ~day ~w =
  let lo = day - w + 1 in
  match kind with
  | Whole_window -> (lo, day)
  | Current_day -> (day, day)
  | Random_subrange ->
    let a = Prng.int_in prng lo day and b = Prng.int_in prng lo day in
    (min a b, max a b)

let day_queries spec ~day ~w =
  let prng = Prng.create ((spec.seed * 31_337) + day) in
  let sample_value =
    match spec.value_dist with
    | Zipfian { vocab; s } ->
      let z = Zipf.create ~n:vocab ~s in
      fun () -> Zipf.sample z prng
    | Uniform n -> fun () -> 1 + Prng.int prng n
  in
  let probes =
    List.init spec.probes_per_day (fun _ ->
        let t1, t2 = range prng spec.probe_range ~day ~w in
        Probe { value = sample_value (); t1; t2 })
  in
  let scans =
    List.init spec.scans_per_day (fun _ ->
        let t1, t2 = range prng spec.scan_range ~day ~w in
        Scan { t1; t2 })
  in
  probes @ scans

let scam_spec =
  {
    seed = 1001;
    probes_per_day = 100;
    probe_range = Whole_window;
    scans_per_day = 1;
    scan_range = Current_day;
    value_dist = Zipfian { vocab = 5_000; s = 1.0 };
  }

let wse_spec =
  {
    seed = 1002;
    probes_per_day = 340;
    probe_range = Whole_window;
    scans_per_day = 0;
    scan_range = Whole_window;
    value_dist = Zipfian { vocab = 5_000; s = 1.0 };
  }

let tpcd_spec =
  {
    seed = 1003;
    probes_per_day = 0;
    probe_range = Whole_window;
    scans_per_day = 10;
    scan_range = Whole_window;
    value_dist = Uniform 1_000;
  }

let scale spec ~factor =
  if factor < 1 then invalid_arg "Query_gen.scale: factor must be >= 1";
  {
    spec with
    probes_per_day = spec.probes_per_day * factor;
    scans_per_day = spec.scans_per_day * factor;
  }
