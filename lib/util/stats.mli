(** Small descriptive-statistics toolkit used by the experiment drivers
    and tests (distribution checks, series summaries). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;  (** population standard deviation *)
  min : float;
  max : float;
  total : float;
}

val summarize : float array -> summary
(** Single-pass summary.  Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], or [0.] when [den = 0.] — the
    convention reporting code wants for rates over possibly-empty
    activity (a run that issued no reads has hit ratio 0, not NaN). *)

val safe_div : float -> float -> float
(** Alias of {!ratio}. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation
    between closest ranks.  Sorts a copy; O(n log n). *)

val median : float array -> float

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] per equal-width bin
    spanning [\[min xs, max xs\]].  An empty input yields [[||]];
    all-equal inputs land in the first bin (bin width defaults to 1
    when the range is empty).  Raises [Invalid_argument] if [bins <=
    0]. *)

val chi_square_uniform : observed:int array -> float
(** Chi-square statistic of observed counts against the uniform
    expectation; used in PRNG/Zipf distribution tests. *)

val linear_regression : (float * float) array -> float * float
(** [linear_regression pts] is [(slope, intercept)] of the least-squares
    fit.  Requires at least two points with distinct x. *)

val ratio_series : float array -> float array -> float array
(** Pointwise [a.(i) /. b.(i)]; arrays must have equal length. *)
