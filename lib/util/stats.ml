type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  total : float;
}

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let total = Array.fold_left ( +. ) 0.0 xs in
  let mean = total /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs in
  let stddev = sqrt (sq /. float_of_int n) in
  let min = Array.fold_left Stdlib.min xs.(0) xs in
  let max = Array.fold_left Stdlib.max xs.(0) xs in
  { count = n; mean; stddev; min; max; total }

let mean xs = (summarize xs).mean
let stddev xs = (summarize xs).stddev

let ratio num den = if den = 0.0 then 0.0 else num /. den

let safe_div = ratio

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median xs = percentile xs 50.0

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then [||]
  else begin
  let s = summarize xs in
  let width =
    if s.max > s.min then (s.max -. s.min) /. float_of_int bins else 1.0
  in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let i = int_of_float ((x -. s.min) /. width) in
      let i = if i >= bins then bins - 1 else i in
      counts.(i) <- counts.(i) + 1)
    xs;
  Array.mapi
    (fun i c ->
      let lo = s.min +. (float_of_int i *. width) in
      (lo, lo +. width, c))
    counts
  end

let chi_square_uniform ~observed =
  let k = Array.length observed in
  if k = 0 then invalid_arg "Stats.chi_square_uniform: empty";
  let total = Array.fold_left ( + ) 0 observed in
  let expected = float_of_int total /. float_of_int k in
  Array.fold_left
    (fun acc o ->
      let d = float_of_int o -. expected in
      acc +. (d *. d /. expected))
    0.0 observed

let linear_regression pts =
  let n = Array.length pts in
  if n < 2 then invalid_arg "Stats.linear_regression: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    pts;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if denom = 0.0 then invalid_arg "Stats.linear_regression: degenerate x";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  (slope, intercept)

let ratio_series a b =
  if Array.length a <> Array.length b then
    invalid_arg "Stats.ratio_series: length mismatch";
  Array.mapi (fun i x -> x /. b.(i)) a
