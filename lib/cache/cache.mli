(** Block-granular buffer pool over {!Wave_disk.Disk}.

    The paper's query-response model (Tables 8-11) charges every probe
    one full seek plus a transfer per constituent, as if every block
    came from cold disk.  Real systems amortise exactly those accesses
    with a buffer manager; this module supplies one for the simulated
    disk, as a {e cost} cache: the pool records which blocks are
    resident, serves resident reads for zero model-seconds, and charges
    misses to the underlying disk exactly as an uncached access would
    (one seek, then the missed blocks' transfer).  No data flows
    through the pool — entry contents always come from the in-memory
    index structures — so enabling it can never change {e what} a query
    returns, only what it costs.

    Policy (see DESIGN.md §5c–§5d):
    - {b CLOCK eviction} (second chance).  Each frame has a reference
      bit, set on hit; the hand sweeps, clearing reference bits and
      skipping pinned frames, and evicts the first unreferenced,
      unpinned frame.
    - {b Pinning.}  {!pin_extent} faults an extent in and makes its
      frames ineligible for eviction until {!unpin_extent}.  Pins
      nest; unpinning below zero raises {!Cache_error}, as does an
      allocation request when every frame is pinned.  Pinned frames can
      still be {e flushed} — pinning defers eviction, not durability.
    - {b Write-through} (default).  Writes charge the disk exactly as
      uncached — same seeks, same write operations, same
      fault-injection points, so PR 1's crash-consistency guarantees
      are untouched — and refresh any resident frames; they never
      allocate frames.
    - {b Write-back} (opt-in, [~write_back:true]).  Writes dirty
      resident frames (allocating them on demand) instead of charging
      the disk; a rewrite absorbed by an already-dirty frame is counted
      as {e coalesced}.  The deferred write is charged when the CLOCK
      hand evicts a dirty frame, or — batched into contiguous runs — at
      the next {!flush}.  Dirty frames are volatile: a crash loses
      them, so every durability boundary (checkpoint manifest rename,
      journal commit) must {!flush} first, and recovery calls
      {!discard_dirty}.  Dirty frames of a freed or reallocated extent
      are {e discarded}, never written.
    - {b Invalidation by allocation generation.}  Frames are tagged
      with their extent's allocation generation ({!Disk.generation_at}).
      After a [free] and reallocation of the same address, the stale
      frame no longer matches and is refetched — the allocator-reuse
      hazard PR 1's generations were introduced for.
    - {b Scan readahead.}  Sequential (segment-scan) reads batch each
      contiguous run of missing blocks into one transfer behind the
      scan's single seek, counting the blocks fetched ahead of demand;
      scan-loaded frames enter with a clear reference bit so a long
      scan drains out of the pool before it can evict the probe
      working set.  Demand reads can additionally prefetch up to
      [readahead] following blocks of the same extent.

    Pools attach one per disk ({!attach}) so that every index sharing a
    disk shares the pool.  {!attach_shared} instead backs {e several}
    disks with one set of frames — a global buffer manager across
    {!Wave_sim.Multi_disk} arms — with per-disk stats slices via
    {!local_stats}. *)

open Wave_disk

exception Cache_error of string

type t
(** A view of a buffer pool through one disk.  Plain {!attach}/{!create}
    pools have exactly one view; {!attach_shared} pools have one view
    per backing disk, all sharing the same frames. *)

type stats = {
  hits : int;  (** data blocks served from the pool *)
  misses : int;  (** data blocks fetched from disk *)
  meta_hits : int;  (** directory / B+tree node reads served *)
  meta_misses : int;  (** directory / B+tree node reads charged *)
  evictions : int;  (** frames reclaimed by the CLOCK hand *)
  readaheads : int;  (** blocks fetched ahead of demand *)
  stale_drops : int;  (** frames dropped on generation mismatch *)
  writes_coalesced : int;
      (** block writes absorbed by an already-dirty frame — physical
          writes the write-through pool would have charged *)
  dirty_evictions : int;
      (** dirty frames whose deferred write was performed at eviction *)
  flushes : int;  (** non-empty {!flush} drains *)
  flush_writes : int;  (** physical write operations issued by flushes *)
  flushed_blocks : int;  (** blocks those flush writes carried *)
  dirty_discards : int;
      (** dirty frames discarded unwritten (freed / reallocated extent,
          or {!discard_dirty} after a crash) *)
  saved_seconds : float;
      (** model-seconds avoided on data accesses versus the uncached
          charging (net of any wasted readahead transfer) *)
  meta_seconds : float;
      (** model-seconds charged for directory metadata misses — cost
          the uncached model does not charge at all (it assumes the
          directory memory-resident) *)
}

val create :
  Disk.t -> frames:int -> ?readahead:int -> ?write_back:bool -> unit -> t
(** A pool of [frames] one-block frames over the disk.  [frames >= 1];
    [readahead >= 0] (default 0) blocks of demand-read prefetch;
    [write_back] (default [false]) enables deferred writes. *)

(** {1 Per-disk attachment} *)

val attach :
  Disk.t -> frames:int -> ?readahead:int -> ?write_back:bool -> unit -> t
(** The pool attached to this disk, creating it with the given
    geometry on first use.  Subsequent calls return the existing pool
    (its geometry wins). *)

val attach_shared :
  Disk.t list -> frames:int -> ?readahead:int -> ?write_back:bool -> unit ->
  t list
(** One shared pool state backing every listed disk, returned as one
    view per disk (in order).  Raises {!Cache_error} if the list is
    empty or any disk already has a pool attached.  Data keys carry the
    disk id, so same-numbered blocks of different arms never collide;
    eviction pressure, however, is global — a hot arm can evict a cold
    arm's frames, which is the contention {!Wave_sim.Multi_disk}'s
    shared mode exists to expose. *)

val find : Disk.t -> t option
(** The pool view attached to this disk, if any. *)

val detach : Disk.t -> unit
(** Drop any pool view attached to this disk.  Idempotent.  Detaching
    one arm of a shared pool leaves the other arms attached. *)

(** {1 Charged accesses}

    Each mirrors a {!Disk} access: resident blocks are free, missed
    blocks charge the disk (and become resident).  All of them raise
    exactly as the uncached access would on a dead, stale-shaped or
    torn extent, even when fully resident. *)

val read_range : t -> Disk.extent -> off:int -> blocks:int -> unit
(** Read [blocks] blocks starting [off] blocks into the extent —
    uncached cost: one seek plus [blocks] transfers.  Charges one seek
    plus only the missed blocks (plus up to [readahead] prefetched
    followers within the extent, entering cold). *)

val read : t -> Disk.extent -> unit
(** [read_range t e ~off:0 ~blocks:e.length]. *)

val sequential_read : t -> Disk.extent list -> unit
(** Segment scan: uncached cost is one seek plus every block of every
    extent; the pool charges one seek (if anything misses) plus the
    missed blocks, batched per contiguous run. *)

val write_range : t -> Disk.extent -> off:int -> blocks:int -> unit
(** Write-through pool: charges {!Disk.write_blocks} [~blocks] verbatim
    (same cost and fault points as uncached), then refreshes resident
    frames in [off, off+blocks); never allocates frames.  Write-back
    pool: dirties the range's frames (allocating on demand) and charges
    nothing now — except a range larger than the whole pool, which
    falls back to one write-through operation. *)

val write : t -> Disk.extent -> unit
(** Whole-extent write. *)

val meta_read : t -> dir:int -> nodes:int list -> unit
(** Charge a directory walk: each node is one metadata block in
    namespace [dir] (use {!Wave_storage.Directory.uid}).  A resident
    node is free; a miss charges one seek plus one block — the
    seek-dominated upper-level access a warm pool removes.  Metadata
    frames are never stale (node ids are never reused). *)

(** {1 Write-back durability} *)

val write_back : t -> bool
(** Whether this pool defers writes. *)

val dirty_frames : t -> int
(** Frames currently holding a deferred write (0 for write-through). *)

val flush : t -> unit
(** Drain every dirty frame of the pool (all views of a shared pool):
    one {!Disk.note_flush} fault point on this view's disk, then the
    dirty set sorted by (disk, block address) and written as maximal
    contiguous runs via {!Disk.write_run} — each run one seek and one
    write operation, so a shadow build's repeated bucket rewrites reach
    the disk as one physical write per bucket.  Frames are marked clean
    only after their run succeeds: an injected fault mid-drain leaves
    the rest dirty, and a later flush resumes with exactly those.
    No-op on a write-through pool, on a clean pool (no fault point, no
    counter), and when re-entered from an eviction inside the drain. *)

val discard_dirty : t -> int
(** Throw away every deferred write without performing it — what a
    crash does to a volatile buffer pool.  Recovery calls this before
    re-reading any state the dirty frames shadowed.  Returns the number
    of frames discarded; clean frames stay resident (they match the
    disk).  Idempotent. *)

(** {1 Pinning} *)

val pin_extent : t -> Disk.extent -> unit
(** Fault the whole extent in (charged like {!read}) and pin every
    frame.  Pins nest.  Raises {!Cache_error} if the extent does not
    fit the unpinned frames. *)

val unpin_extent : t -> Disk.extent -> unit
(** Undo one {!pin_extent}.  Raises {!Cache_error} if any block is not
    resident with a positive pin count (a pin/unpin imbalance). *)

val pin_resident_blocks : t -> Disk.extent -> budget:int -> int list
(** Pin whatever blocks of the extent are {e already} resident with the
    extent's current generation — no I/O is charged, absent and stale
    blocks are skipped — stopping after [budget] pins.  Returns the
    pinned block addresses (pass them to {!unpin_blocks}).  This is the
    epoch-snapshot pin: eviction never selects a pinned frame, so a
    frame pinned by a retired-but-undrained epoch survives any cache
    pressure until the epoch drains; the budget keeps one epoch from
    pinning the whole pool and starving eviction. *)

val unpin_blocks : t -> int list -> unit
(** Undo one {!pin_resident_blocks} given the addresses it returned.
    Raises {!Cache_error} on a pin imbalance; validates every address
    before touching any pin count. *)

val pinned_frames : t -> int
(** Frames currently holding a positive pin count. *)

(** {1 Observation} *)

val capacity : t -> int
val resident : t -> int
(** Frames currently occupied. *)

val contains : t -> Disk.extent -> bool
(** Whether every block of the extent is resident with the extent's
    current allocation generation. *)

val stats : t -> stats
(** Pool-wide totals (all views of a shared pool). *)

val local_stats : t -> stats
(** This view's slice: only accesses issued through this view.  Equal
    to {!stats} for a non-shared pool. *)

val reset_stats : t -> unit
(** Zero both the pool-wide totals and this view's slice.  (Other
    views of a shared pool keep their local slices.) *)

val hit_ratio : stats -> float
(** Data-block hit ratio, 0 when no data blocks were touched. *)

val meta_hit_ratio : stats -> float

val pp_stats : Format.formatter -> stats -> unit
