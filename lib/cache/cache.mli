(** Block-granular buffer pool over {!Wave_disk.Disk}.

    The paper's query-response model (Tables 8-11) charges every probe
    one full seek plus a transfer per constituent, as if every block
    came from cold disk.  Real systems amortise exactly those accesses
    with a buffer manager; this module supplies one for the simulated
    disk, as a {e cost} cache: the pool records which blocks are
    resident, serves resident reads for zero model-seconds, and charges
    misses to the underlying disk exactly as an uncached access would
    (one seek, then the missed blocks' transfer).  No data flows
    through the pool — entry contents always come from the in-memory
    index structures — so enabling it can never change {e what} a query
    returns, only what it costs.

    Policy (see DESIGN.md §5c):
    - {b CLOCK eviction} (second chance).  Each frame has a reference
      bit, set on hit; the hand sweeps, clearing reference bits and
      skipping pinned frames, and evicts the first unreferenced,
      unpinned frame.
    - {b Pinning.}  {!pin_extent} faults an extent in and makes its
      frames ineligible for eviction until {!unpin_extent}.  Pins
      nest; unpinning below zero raises {!Cache_error}, as does an
      allocation request when every frame is pinned.
    - {b Write-through.}  Writes charge the disk exactly as today —
      same seeks, same write operations, same fault-injection points,
      so PR 1's crash-consistency guarantees are untouched — and
      refresh any resident frames; they never allocate frames.
    - {b Invalidation by allocation generation.}  Frames are tagged
      with their extent's allocation generation ({!Disk.generation_at}).
      After a [free] and reallocation of the same address, the stale
      frame no longer matches and is refetched — the allocator-reuse
      hazard PR 1's generations were introduced for.
    - {b Scan readahead.}  Sequential (segment-scan) reads batch each
      contiguous run of missing blocks into one transfer behind the
      scan's single seek, counting the blocks fetched ahead of demand;
      scan-loaded frames enter with a clear reference bit so a long
      scan drains out of the pool before it can evict the probe
      working set.  Demand reads can additionally prefetch up to
      [readahead] following blocks of the same extent.

    Pools are attached one per disk ({!attach}) so that every index
    sharing a disk shares the pool, and {!Wave_sim.Multi_disk} gets one
    pool per arm. *)

open Wave_disk

exception Cache_error of string

type t

type stats = {
  hits : int;  (** data blocks served from the pool *)
  misses : int;  (** data blocks fetched from disk *)
  meta_hits : int;  (** directory / B+tree node reads served *)
  meta_misses : int;  (** directory / B+tree node reads charged *)
  evictions : int;  (** frames reclaimed by the CLOCK hand *)
  readaheads : int;  (** blocks fetched ahead of demand *)
  stale_drops : int;  (** frames dropped on generation mismatch *)
  saved_seconds : float;
      (** model-seconds avoided on data accesses versus the uncached
          charging (net of any wasted readahead transfer) *)
  meta_seconds : float;
      (** model-seconds charged for directory metadata misses — cost
          the uncached model does not charge at all (it assumes the
          directory memory-resident) *)
}

val create : Disk.t -> frames:int -> ?readahead:int -> unit -> t
(** A pool of [frames] one-block frames over the disk.  [frames >= 1];
    [readahead >= 0] (default 0) blocks of demand-read prefetch. *)

(** {1 Per-disk attachment} *)

val attach : Disk.t -> frames:int -> ?readahead:int -> unit -> t
(** The pool attached to this disk, creating it with the given
    geometry on first use.  Subsequent calls return the existing pool
    (its geometry wins). *)

val find : Disk.t -> t option
(** The pool attached to this disk, if any. *)

val detach : Disk.t -> unit
(** Drop any pool attached to this disk.  Idempotent. *)

(** {1 Charged accesses}

    Each mirrors a {!Disk} access: resident blocks are free, missed
    blocks charge the disk (and become resident).  All of them raise
    exactly as the uncached access would on a dead, stale-shaped or
    torn extent, even when fully resident. *)

val read_range : t -> Disk.extent -> off:int -> blocks:int -> unit
(** Read [blocks] blocks starting [off] blocks into the extent —
    uncached cost: one seek plus [blocks] transfers.  Charges one seek
    plus only the missed blocks (plus up to [readahead] prefetched
    followers within the extent, entering cold). *)

val read : t -> Disk.extent -> unit
(** [read_range t e ~off:0 ~blocks:e.length]. *)

val sequential_read : t -> Disk.extent list -> unit
(** Segment scan: uncached cost is one seek plus every block of every
    extent; the pool charges one seek (if anything misses) plus the
    missed blocks, batched per contiguous run. *)

val write_range : t -> Disk.extent -> off:int -> blocks:int -> unit
(** Write-through: charges {!Disk.write_blocks} [~blocks] verbatim
    (same cost and fault points as uncached), then refreshes resident
    frames in [off, off+blocks).  Never allocates frames. *)

val write : t -> Disk.extent -> unit
(** Whole-extent write-through. *)

val meta_read : t -> dir:int -> nodes:int list -> unit
(** Charge a directory walk: each node is one metadata block in
    namespace [dir] (use {!Wave_storage.Directory.uid}).  A resident
    node is free; a miss charges one seek plus one block — the
    seek-dominated upper-level access a warm pool removes.  Metadata
    frames are never stale (node ids are never reused). *)

(** {1 Pinning} *)

val pin_extent : t -> Disk.extent -> unit
(** Fault the whole extent in (charged like {!read}) and pin every
    frame.  Pins nest.  Raises {!Cache_error} if the extent does not
    fit the unpinned frames. *)

val unpin_extent : t -> Disk.extent -> unit
(** Undo one {!pin_extent}.  Raises {!Cache_error} if any block is not
    resident with a positive pin count (a pin/unpin imbalance). *)

val pinned_frames : t -> int
(** Frames currently holding a positive pin count. *)

(** {1 Observation} *)

val capacity : t -> int
val resident : t -> int
(** Frames currently occupied. *)

val contains : t -> Disk.extent -> bool
(** Whether every block of the extent is resident with the extent's
    current allocation generation. *)

val stats : t -> stats
val reset_stats : t -> unit

val hit_ratio : stats -> float
(** Data-block hit ratio, 0 when no data blocks were touched. *)

val meta_hit_ratio : stats -> float

val pp_stats : Format.formatter -> stats -> unit
