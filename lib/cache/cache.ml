open Wave_disk

exception Cache_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cache_error s)) fmt

(* A frame caches one block.  Data blocks are identified by the owning
   disk's id plus their block address, tagged with the allocation
   generation of the extent that covered them when they were loaded;
   metadata blocks (directory / B+tree nodes) by a (namespace, node id)
   pair.  Node ids are never reused, so metadata frames cannot go
   stale; data frames go stale when the extent is freed and the address
   reallocated (generation mismatch).  The disk id in data keys lets a
   single pool [state] back several disks (a shared pool across
   {!Wave_sim.Multi_disk} arms) without address collisions. *)
type key = Data of { dsk : int; addr : int } | Meta of { dir : int; node : int }

type stats = {
  hits : int;
  misses : int;
  meta_hits : int;
  meta_misses : int;
  evictions : int;
  readaheads : int;
  stale_drops : int;
  writes_coalesced : int;
  dirty_evictions : int;
  flushes : int;
  flush_writes : int;
  flushed_blocks : int;
  dirty_discards : int;
  saved_seconds : float;
  meta_seconds : float;
}

(* Mutable accumulator behind [stats].  Each pool [state] holds one
   global accumulator and each attached view holds a local one, so a
   shared pool can report both fleet totals and per-arm slices. *)
type acc = {
  mutable hits : int;
  mutable misses : int;
  mutable meta_hits : int;
  mutable meta_misses : int;
  mutable evictions : int;
  mutable readaheads : int;
  mutable stale_drops : int;
  mutable writes_coalesced : int;
  mutable dirty_evictions : int;
  mutable flushes : int;
  mutable flush_writes : int;
  mutable flushed_blocks : int;
  mutable dirty_discards : int;
  mutable saved_seconds : float;
  mutable meta_seconds : float;
}

type frame = {
  mutable key : key;
  mutable occupied : bool;
  mutable gen : int;
  mutable pins : int;
  mutable refbit : bool;
  mutable dirty : bool; (* deferred (write-back) contents not yet on disk *)
  mutable owner : t option; (* view whose disk the deferred write targets *)
}

(* Shared pool state: the frames and their policy.  Several views (one
   per attached disk) may share one state. *)
and state = {
  frames : frame array;
  map : (key, int) Hashtbl.t;
  readahead : int;
  write_back : bool;
  mutable in_flush : bool; (* reentrancy guard: eviction inside a flush
                              must not start a nested drain *)
  mutable hand : int;
  global : acc;
}

and t = { st : state; disk : Disk.t; uid : int; local : acc }

let acc_create () =
  {
    hits = 0;
    misses = 0;
    meta_hits = 0;
    meta_misses = 0;
    evictions = 0;
    readaheads = 0;
    stale_drops = 0;
    writes_coalesced = 0;
    dirty_evictions = 0;
    flushes = 0;
    flush_writes = 0;
    flushed_blocks = 0;
    dirty_discards = 0;
    saved_seconds = 0.0;
    meta_seconds = 0.0;
  }

let acc_reset a =
  a.hits <- 0;
  a.misses <- 0;
  a.meta_hits <- 0;
  a.meta_misses <- 0;
  a.evictions <- 0;
  a.readaheads <- 0;
  a.stale_drops <- 0;
  a.writes_coalesced <- 0;
  a.dirty_evictions <- 0;
  a.flushes <- 0;
  a.flush_writes <- 0;
  a.flushed_blocks <- 0;
  a.dirty_discards <- 0;
  a.saved_seconds <- 0.0;
  a.meta_seconds <- 0.0

let acc_stats (a : acc) : stats =
  {
    hits = a.hits;
    misses = a.misses;
    meta_hits = a.meta_hits;
    meta_misses = a.meta_misses;
    evictions = a.evictions;
    readaheads = a.readaheads;
    stale_drops = a.stale_drops;
    writes_coalesced = a.writes_coalesced;
    dirty_evictions = a.dirty_evictions;
    flushes = a.flushes;
    flush_writes = a.flush_writes;
    flushed_blocks = a.flushed_blocks;
    dirty_discards = a.dirty_discards;
    saved_seconds = a.saved_seconds;
    meta_seconds = a.meta_seconds;
  }

(* Mirror every counter mutation into both the view's local slice and
   the pool-wide accumulator. *)
let bump t f =
  f t.local;
  f t.st.global

(* Fleet-wide counters: pools also feed the always-on metrics registry
   so perf artifacts can report hit ratios without a pool handle. *)
let m_hits = Wave_obs.Metrics.counter "cache.hits"
let m_misses = Wave_obs.Metrics.counter "cache.misses"
let m_meta_hits = Wave_obs.Metrics.counter "cache.meta_hits"
let m_meta_misses = Wave_obs.Metrics.counter "cache.meta_misses"
let m_evictions = Wave_obs.Metrics.counter "cache.evictions"
let m_readaheads = Wave_obs.Metrics.counter "cache.readaheads"
let m_writes_coalesced = Wave_obs.Metrics.counter "cache.writes_coalesced"
let m_dirty_evictions = Wave_obs.Metrics.counter "cache.dirty_evictions"
let m_flushes = Wave_obs.Metrics.counter "cache.flushes"
let m_flushed_blocks = Wave_obs.Metrics.counter "cache.flushed_blocks"
let m_dirty_discards = Wave_obs.Metrics.counter "cache.dirty_discards"

let state_create ~frames ~readahead ~write_back =
  if frames < 1 then fail "create: need at least one frame (got %d)" frames;
  if readahead < 0 then fail "create: negative readahead";
  {
    frames =
      Array.init frames (fun _ ->
          {
            key = Data { dsk = -1; addr = -1 };
            occupied = false;
            gen = 0;
            pins = 0;
            refbit = false;
            dirty = false;
            owner = None;
          });
    map = Hashtbl.create (2 * frames);
    readahead;
    write_back;
    in_flush = false;
    hand = 0;
    global = acc_create ();
  }

let view st disk = { st; disk; uid = Disk.id disk; local = acc_create () }

let create disk ~frames ?(readahead = 0) ?(write_back = false) () =
  view (state_create ~frames ~readahead ~write_back) disk

(* --- per-disk attachment -------------------------------------------- *)

let pools : (int, t) Hashtbl.t = Hashtbl.create 16

let attach disk ~frames ?(readahead = 0) ?(write_back = false) () =
  match Hashtbl.find_opt pools (Disk.id disk) with
  | Some pool -> pool
  | None ->
    let pool = create disk ~frames ~readahead ~write_back () in
    Hashtbl.replace pools (Disk.id disk) pool;
    pool

let attach_shared disks ~frames ?(readahead = 0) ?(write_back = false) () =
  if disks = [] then fail "attach_shared: no disks";
  List.iter
    (fun d ->
      if Hashtbl.mem pools (Disk.id d) then
        fail "attach_shared: disk %d already has a pool" (Disk.id d))
    disks;
  let st = state_create ~frames ~readahead ~write_back in
  List.map
    (fun d ->
      let v = view st d in
      Hashtbl.replace pools (Disk.id d) v;
      v)
    disks

let find disk = Hashtbl.find_opt pools (Disk.id disk)
let detach disk = Hashtbl.remove pools (Disk.id disk)

(* --- frame management ----------------------------------------------- *)

let params t = Disk.params t.disk

let block_seconds t blocks =
  float_of_int (blocks * (params t).Disk.block_size)
  /. (params t).Disk.transfer_rate

(* Deferred write of one dirty frame, performed at eviction (or
   discarded if the covering extent is gone or reallocated — its
   contents belong to a dead extent and must never reach the disk). *)
let evict_dirty f =
  match (f.owner, f.key) with
  | Some v, Data { addr; _ } ->
    (match Disk.extent_covering v.disk ~addr with
    | Some ext
      when Disk.generation_at v.disk ~start:ext.Disk.start = Some f.gen ->
      Disk.write_run v.disk ext ~off:(addr - ext.Disk.start) ~blocks:1;
      bump v (fun a -> a.dirty_evictions <- a.dirty_evictions + 1);
      Wave_obs.Metrics.inc m_dirty_evictions
    | _ ->
      bump v (fun a -> a.dirty_discards <- a.dirty_discards + 1);
      Wave_obs.Metrics.inc m_dirty_discards);
    f.dirty <- false;
    f.owner <- None
  | _ ->
    f.dirty <- false;
    f.owner <- None

(* CLOCK second chance: sweep from the hand, skipping pinned frames and
   giving referenced frames one more revolution.  Two full revolutions
   guarantee a victim unless every frame is pinned. *)
let victim st =
  let n = Array.length st.frames in
  let budget = ref (2 * n) in
  let rec go () =
    if !budget = 0 then fail "no evictable frame: all %d frames pinned" n;
    decr budget;
    let i = st.hand in
    st.hand <- (st.hand + 1) mod n;
    let f = st.frames.(i) in
    if not f.occupied then i
    else if f.pins > 0 then go ()
    else if f.refbit then begin
      f.refbit <- false;
      go ()
    end
    else i
  in
  go ()

let install t key ~gen ~refbit =
  let st = t.st in
  let i = victim st in
  let f = st.frames.(i) in
  if f.occupied then begin
    if f.dirty then evict_dirty f;
    Hashtbl.remove st.map f.key;
    bump t (fun a -> a.evictions <- a.evictions + 1);
    Wave_obs.Metrics.inc m_evictions
  end;
  f.key <- key;
  f.occupied <- true;
  f.gen <- gen;
  f.pins <- 0;
  f.refbit <- refbit;
  f.dirty <- false;
  f.owner <- None;
  Hashtbl.replace st.map key i;
  f

let frame_of t key =
  match Hashtbl.find_opt t.st.map key with
  | None -> None
  | Some i -> Some t.st.frames.(i)

let dkey t addr = Data { dsk = t.uid; addr }

let live_gen t (ext : Disk.extent) =
  match Disk.generation_at t.disk ~start:ext.Disk.start with
  | Some g -> g
  | None -> fail "extent at %d is not live" ext.Disk.start

(* A stale frame refreshed in place carries deferred contents of a
   {e dead} extent: discard them, never write them. *)
let drop_stale_dirty t f =
  if f.dirty then begin
    f.dirty <- false;
    f.owner <- None;
    bump t (fun a -> a.dirty_discards <- a.dirty_discards + 1);
    Wave_obs.Metrics.inc m_dirty_discards
  end

(* Classify one data block against the pool.  Hits get their reference
   bit set here; stale and absent blocks are returned for the caller to
   fetch in one batched charge. *)
type presence = P_hit | P_stale | P_absent

let classify t addr ~gen =
  match frame_of t (dkey t addr) with
  | Some f when f.gen = gen ->
    f.refbit <- true;
    P_hit
  | Some _ -> P_stale
  | None -> P_absent

let settle t addr ~gen ~refbit =
  match frame_of t (dkey t addr) with
  | Some f ->
    (* Stale frame refreshed in place: same key, new generation. *)
    drop_stale_dirty t f;
    f.gen <- gen;
    f.refbit <- refbit;
    bump t (fun a -> a.stale_drops <- a.stale_drops + 1)
  | None -> ignore (install t (dkey t addr) ~gen ~refbit)

let note_data t ~hits ~misses =
  bump t (fun a ->
      a.hits <- a.hits + hits;
      a.misses <- a.misses + misses);
  if hits > 0 then Wave_obs.Metrics.inc ~by:(float_of_int hits) m_hits;
  if misses > 0 then Wave_obs.Metrics.inc ~by:(float_of_int misses) m_misses

(* --- charged accesses ----------------------------------------------- *)

let read_range t (ext : Disk.extent) ~off ~blocks =
  if off < 0 || blocks < 0 || off + blocks > ext.Disk.length then
    fail "read_range: [%d, %d) outside extent of %d blocks" off (off + blocks)
      ext.Disk.length;
  if blocks > 0 then begin
    Disk.assert_readable t.disk ext;
    let gen = live_gen t ext in
    let base = ext.Disk.start + off in
    let missing = ref [] in
    let hits = ref 0 in
    for i = blocks - 1 downto 0 do
      match classify t (base + i) ~gen with
      | P_hit -> incr hits
      | P_stale | P_absent -> missing := (base + i) :: !missing
    done;
    let m = List.length !missing in
    let ra =
      if m = 0 || t.st.readahead = 0 then []
      else begin
        (* Prefetch up to [readahead] blocks following the demand range
           inside the same extent — the arm is already positioned, so
           they ride the same seek (extra transfer only). *)
        let upto =
          min ext.Disk.length (off + blocks + t.st.readahead)
          - 1 + ext.Disk.start
        in
        let out = ref [] in
        for a = upto downto base + blocks do
          match classify t a ~gen with
          | P_hit -> ()
          | P_stale | P_absent -> out := a :: !out
        done;
        !out
      end
    in
    if m > 0 then begin
      Disk.charge_seek t.disk;
      Disk.charge_read_transfer t.disk ~blocks:(m + List.length ra);
      List.iter (fun a -> settle t a ~gen ~refbit:true) !missing;
      List.iter (fun a -> settle t a ~gen ~refbit:false) ra;
      let n_ra = List.length ra in
      bump t (fun a -> a.readaheads <- a.readaheads + n_ra);
      if n_ra > 0 then Wave_obs.Metrics.inc ~by:(float_of_int n_ra) m_readaheads
    end;
    (* Saved versus the uncached charge (seek + whole range), net of any
       readahead transfer spent speculatively. *)
    let seek = (params t).Disk.seek_time in
    let uncached = seek +. block_seconds t blocks in
    let charged =
      if m = 0 then 0.0 else seek +. block_seconds t (m + List.length ra)
    in
    bump t (fun a -> a.saved_seconds <- a.saved_seconds +. uncached -. charged);
    note_data t ~hits:!hits ~misses:m
  end

let read t ext = read_range t ext ~off:0 ~blocks:ext.Disk.length

let sequential_read t exts =
  if exts <> [] then begin
    List.iter (fun e -> Disk.assert_readable t.disk e) exts;
    let gens = List.map (fun e -> (e, live_gen t e)) exts in
    let total = ref 0 in
    let missing = ref [] (* reversed (addr, gen) demand list *) in
    let hits = ref 0 in
    let runs = ref 0 in
    let in_run = ref false in
    List.iter
      (fun ((e : Disk.extent), gen) ->
        for i = 0 to e.Disk.length - 1 do
          incr total;
          match classify t (e.Disk.start + i) ~gen with
          | P_hit ->
            incr hits;
            in_run := false
          | P_stale | P_absent ->
            missing := (e.Disk.start + i, gen) :: !missing;
            if not !in_run then begin
              incr runs;
              in_run := true
            end
        done)
      gens;
    let m = List.length !missing in
    if m > 0 then begin
      Disk.charge_seek t.disk;
      Disk.charge_read_transfer t.disk ~blocks:m;
      (* Scan-loaded frames enter cold (reference bit clear): a scan
         longer than the pool drains behind itself instead of evicting
         the probe working set — drop-behind readahead. *)
      List.iter
        (fun (a, gen) -> settle t a ~gen ~refbit:false)
        (List.rev !missing);
      let ra = m - !runs in
      bump t (fun a -> a.readaheads <- a.readaheads + ra);
      if ra > 0 then Wave_obs.Metrics.inc ~by:(float_of_int ra) m_readaheads
    end;
    let seek = (params t).Disk.seek_time in
    let uncached = seek +. block_seconds t !total in
    let charged = if m = 0 then 0.0 else seek +. block_seconds t m in
    bump t (fun a -> a.saved_seconds <- a.saved_seconds +. uncached -. charged);
    note_data t ~hits:!hits ~misses:m
  end

(* Write-back: dirty the resident frames instead of charging the disk;
   the deferred write happens at eviction ({!evict_dirty}) or at the
   next {!flush} drain, where contiguous dirty runs coalesce into one
   physical write each. *)
let write_back_range t (ext : Disk.extent) ~off ~blocks =
  if not (Disk.live_at t.disk ~start:ext.Disk.start ~length:ext.Disk.length)
  then raise (Disk.Disk_error "write: extent is not live");
  if blocks > 0 then
    if blocks > Array.length t.st.frames then begin
      (* The range cannot be held dirty: fall back to write-through for
         this one write (same cost and fault point as uncached). *)
      Disk.write_blocks t.disk ext ~blocks;
      let gen = live_gen t ext in
      let base = ext.Disk.start + off in
      for i = 0 to blocks - 1 do
        match frame_of t (dkey t (base + i)) with
        | Some f ->
          drop_stale_dirty t f;
          f.gen <- gen;
          f.refbit <- true
        | None -> ()
      done
    end
    else begin
      let gen = live_gen t ext in
      let base = ext.Disk.start + off in
      for i = 0 to blocks - 1 do
        let addr = base + i in
        let f =
          match frame_of t (dkey t addr) with
          | Some f when f.gen = gen ->
            if f.dirty then begin
              (* A rewrite absorbed by an already-dirty frame: the
                 whole point of write-back. *)
              bump t (fun a -> a.writes_coalesced <- a.writes_coalesced + 1);
              Wave_obs.Metrics.inc m_writes_coalesced
            end;
            f
          | Some f ->
            drop_stale_dirty t f;
            f.gen <- gen;
            bump t (fun a -> a.stale_drops <- a.stale_drops + 1);
            f
          | None -> install t (dkey t addr) ~gen ~refbit:true
        in
        f.refbit <- true;
        f.dirty <- true;
        f.owner <- Some t
      done
    end

let write_range t (ext : Disk.extent) ~off ~blocks =
  if off < 0 || blocks < 0 || off + blocks > ext.Disk.length then
    fail "write_range: [%d, %d) outside extent of %d blocks" off (off + blocks)
      ext.Disk.length;
  if t.st.write_back then write_back_range t ext ~off ~blocks
  else begin
    (* Write-through: the disk is charged exactly as an uncached write —
       same seek, same write op, same fault point.  Only if it succeeds
       do resident frames pick up the new contents (and generation). *)
    Disk.write_blocks t.disk ext ~blocks;
    if blocks > 0 then begin
      let gen = live_gen t ext in
      let base = ext.Disk.start + off in
      for i = 0 to blocks - 1 do
        match frame_of t (dkey t (base + i)) with
        | Some f ->
          f.gen <- gen;
          f.refbit <- true
        | None -> () (* no write allocation *)
      done
    end
  end

let write t ext = write_range t ext ~off:0 ~blocks:ext.Disk.length

(* --- flush ----------------------------------------------------------- *)

let dirty_frames t =
  Array.fold_left
    (fun acc f -> if f.occupied && f.dirty then acc + 1 else acc)
    0 t.st.frames

let write_back t = t.st.write_back

(* Drain every dirty frame: one {!Disk.note_flush} fault point, then
   the dirty set sorted by (owning disk, address) and written as
   contiguous runs — a shadow build's repeated bucket rewrites land as
   one physical write per bucket.  Frames are marked clean only after
   their run's write succeeds, so an injected fault mid-drain leaves
   the remaining frames dirty and a later flush resumes exactly there.
   Reentrant calls (an eviction during the drain installing frames) are
   no-ops, as is any flush of a write-through pool or a clean pool. *)
let flush t =
  let st = t.st in
  if st.write_back && not st.in_flush then begin
    let dirty = ref [] in
    Array.iter
      (fun f ->
        if f.occupied && f.dirty then
          match (f.owner, f.key) with
          | Some v, Data { addr; _ } -> dirty := (v, addr, f) :: !dirty
          | _ ->
            (* Dirty frame with no owner cannot be written anywhere. *)
            f.dirty <- false)
      st.frames;
    let dirty =
      List.sort
        (fun (v1, a1, _) (v2, a2, _) ->
          match Int.compare v1.uid v2.uid with
          | 0 -> Int.compare a1 a2
          | c -> c)
        !dirty
    in
    if dirty <> [] then begin
      st.in_flush <- true;
      Fun.protect
        ~finally:(fun () -> st.in_flush <- false)
        (fun () ->
          Disk.note_flush t.disk;
          bump t (fun a -> a.flushes <- a.flushes + 1);
          Wave_obs.Metrics.inc m_flushes;
          (* Resolve each frame to its covering live extent; a frame
             whose extent is gone or reallocated is discarded. *)
          let writable =
            List.filter_map
              (fun (v, addr, f) ->
                match Disk.extent_covering v.disk ~addr with
                | Some ext
                  when Disk.generation_at v.disk ~start:ext.Disk.start
                       = Some f.gen ->
                  Some (v, addr, f, ext)
                | _ ->
                  f.dirty <- false;
                  f.owner <- None;
                  bump v (fun a -> a.dirty_discards <- a.dirty_discards + 1);
                  Wave_obs.Metrics.inc m_dirty_discards;
                  None)
              dirty
          in
          (* Coalesce into maximal contiguous runs within one extent of
             one disk, then write each run with a single operation. *)
          let write_run_group = function
            | [] -> ()
            | (v, addr0, _, (ext : Disk.extent)) :: _ as group ->
              let n = List.length group in
              Disk.write_run v.disk ext
                ~off:(addr0 - ext.Disk.start)
                ~blocks:n;
              List.iter
                (fun (_, _, f, _) ->
                  f.dirty <- false;
                  f.owner <- None)
                group;
              bump v (fun a ->
                  a.flush_writes <- a.flush_writes + 1;
                  a.flushed_blocks <- a.flushed_blocks + n);
              Wave_obs.Metrics.inc ~by:(float_of_int n) m_flushed_blocks
          in
          let rec drain group = function
            | [] -> write_run_group (List.rev group)
            | ((v, addr, _, (ext : Disk.extent)) as item) :: rest -> (
              match group with
              | (v0, prev, _, (ext0 : Disk.extent)) :: _
                when v0.uid = v.uid
                     && addr = prev + 1
                     && ext0.Disk.start = ext.Disk.start ->
                drain (item :: group) rest
              | [] -> drain [ item ] rest
              | _ ->
                write_run_group (List.rev group);
                drain [ item ] rest)
          in
          drain [] writable)
    end
  end

let discard_dirty t =
  let n = ref 0 in
  Array.iter
    (fun f ->
      if f.occupied && f.dirty then begin
        (match f.owner with
        | Some v ->
          bump v (fun a -> a.dirty_discards <- a.dirty_discards + 1);
          Wave_obs.Metrics.inc m_dirty_discards
        | None -> ());
        f.dirty <- false;
        f.owner <- None;
        incr n
      end)
    t.st.frames;
  !n

let meta_read t ~dir ~nodes =
  let seek = (params t).Disk.seek_time in
  List.iter
    (fun node ->
      let key = Meta { dir; node } in
      match frame_of t key with
      | Some f ->
        f.refbit <- true;
        bump t (fun a -> a.meta_hits <- a.meta_hits + 1);
        Wave_obs.Metrics.inc m_meta_hits
      | None ->
        (* A cold upper-level block: pointer-chased, so each miss pays
           its own seek — exactly the term a warm pool removes. *)
        Disk.charge_seek t.disk;
        Disk.charge_read_transfer t.disk ~blocks:1;
        bump t (fun a ->
            a.meta_seconds <- a.meta_seconds +. seek +. block_seconds t 1;
            a.meta_misses <- a.meta_misses + 1);
        Wave_obs.Metrics.inc m_meta_misses;
        ignore (install t key ~gen:0 ~refbit:true))
    nodes

(* --- pinning --------------------------------------------------------- *)

let pin_extent t (ext : Disk.extent) =
  read t ext;
  let gen = live_gen t ext in
  let pinned = ref [] in
  try
    for i = 0 to ext.Disk.length - 1 do
      match frame_of t (dkey t (ext.Disk.start + i)) with
      | Some f when f.gen = gen ->
        f.pins <- f.pins + 1;
        pinned := f :: !pinned
      | Some _ | None ->
        fail "pin_extent: extent of %d blocks does not fit the pool"
          ext.Disk.length
    done
  with e ->
    List.iter (fun f -> f.pins <- f.pins - 1) !pinned;
    raise e

let unpin_extent t (ext : Disk.extent) =
  (* Validate the whole range first so a failed unpin changes nothing. *)
  let frames =
    List.init ext.Disk.length (fun i ->
        match frame_of t (dkey t (ext.Disk.start + i)) with
        | Some f when f.pins > 0 -> f
        | Some _ ->
          fail "unpin_extent: block %d pin count would drop below zero"
            (ext.Disk.start + i)
        | None ->
          fail "unpin_extent: block %d is not resident" (ext.Disk.start + i))
  in
  List.iter (fun f -> f.pins <- f.pins - 1) frames

(* Epoch pinning: keep what is already resident of a snapshot extent in
   the pool for the epoch's lifetime, without charging any I/O (unlike
   [pin_extent], which reads the extent in).  Only frames whose
   generation matches the extent's current live generation are pinned —
   a stale frame is not snapshot contents.  [budget] bounds how many
   frames one epoch may pin so that a small pool can never end up fully
   pinned (eviction would then have no victim); the returned addresses
   are exactly the blocks pinned, to be released with [unpin_blocks].

   Eviction invariant (see [victim]): a frame with [pins > 0] is never
   selected, whatever its reference bit — so a frame pinned by a
   retired-but-undrained epoch survives any amount of cache pressure
   until the epoch's last reader drains and unpins it. *)
let pin_resident_blocks t (ext : Disk.extent) ~budget =
  let gen = live_gen t ext in
  let pinned = ref [] in
  let left = ref budget in
  for i = 0 to ext.Disk.length - 1 do
    if !left > 0 then begin
      let addr = ext.Disk.start + i in
      match frame_of t (dkey t addr) with
      | Some f when f.gen = gen ->
        f.pins <- f.pins + 1;
        decr left;
        pinned := addr :: !pinned
      | Some _ | None -> ()
    end
  done;
  List.rev !pinned

let unpin_blocks t addrs =
  (* Validate first so a failed unpin changes nothing; pinned frames
     cannot be evicted, so every address must still be resident. *)
  let frames =
    List.map
      (fun addr ->
        match frame_of t (dkey t addr) with
        | Some f when f.pins > 0 -> f
        | Some _ ->
          fail "unpin_blocks: block %d pin count would drop below zero" addr
        | None -> fail "unpin_blocks: pinned block %d is not resident" addr)
      addrs
  in
  List.iter (fun f -> f.pins <- f.pins - 1) frames

let pinned_frames t =
  Array.fold_left
    (fun acc f -> if f.pins > 0 then acc + 1 else acc)
    0 t.st.frames

(* --- observation ----------------------------------------------------- *)

let capacity t = Array.length t.st.frames

let resident t =
  Array.fold_left
    (fun acc f -> if f.occupied then acc + 1 else acc)
    0 t.st.frames

let contains t (ext : Disk.extent) =
  match Disk.generation_at t.disk ~start:ext.Disk.start with
  | None -> false
  | Some gen ->
    let ok = ref true in
    for i = 0 to ext.Disk.length - 1 do
      match frame_of t (dkey t (ext.Disk.start + i)) with
      | Some f when f.gen = gen -> ()
      | Some _ | None -> ok := false
    done;
    !ok

let stats t = acc_stats t.st.global
let local_stats t = acc_stats t.local

let reset_stats t =
  acc_reset t.st.global;
  acc_reset t.local

let hit_ratio (s : stats) =
  Wave_util.Stats.ratio (float_of_int s.hits) (float_of_int (s.hits + s.misses))

let meta_hit_ratio (s : stats) =
  Wave_util.Stats.ratio
    (float_of_int s.meta_hits)
    (float_of_int (s.meta_hits + s.meta_misses))

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "hits=%d misses=%d (ratio %.3f) meta=%d/%d evictions=%d readahead=%d \
     stale=%d saved=%.4fs meta-cost=%.4fs"
    s.hits s.misses (hit_ratio s) s.meta_hits
    (s.meta_hits + s.meta_misses)
    s.evictions s.readaheads s.stale_drops s.saved_seconds s.meta_seconds;
  if
    s.writes_coalesced > 0 || s.flushes > 0 || s.dirty_evictions > 0
    || s.dirty_discards > 0
  then
    Format.fprintf ppf
      " wb[coalesced=%d flushes=%d runs=%d blocks=%d evict-writes=%d \
       discards=%d]"
      s.writes_coalesced s.flushes s.flush_writes s.flushed_blocks
      s.dirty_evictions s.dirty_discards
