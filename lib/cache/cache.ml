open Wave_disk

exception Cache_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Cache_error s)) fmt

(* A frame caches one block.  Data blocks are identified by their disk
   address plus the allocation generation of the extent that covered
   them when they were loaded; metadata blocks (directory / B+tree
   nodes) by a (namespace, node id) pair.  Node ids are never reused,
   so metadata frames cannot go stale; data frames go stale when the
   extent is freed and the address reallocated (generation mismatch). *)
type key = Data of int | Meta of { dir : int; node : int }

type frame = {
  mutable key : key;
  mutable occupied : bool;
  mutable gen : int;
  mutable pins : int;
  mutable refbit : bool;
}

type stats = {
  hits : int;
  misses : int;
  meta_hits : int;
  meta_misses : int;
  evictions : int;
  readaheads : int;
  stale_drops : int;
  saved_seconds : float;
  meta_seconds : float;
}

type t = {
  disk : Disk.t;
  frames : frame array;
  map : (key, int) Hashtbl.t;
  readahead : int;
  mutable hand : int;
  mutable hits : int;
  mutable misses : int;
  mutable meta_hits : int;
  mutable meta_misses : int;
  mutable evictions : int;
  mutable readaheads : int;
  mutable stale_drops : int;
  mutable saved_seconds : float;
  mutable meta_seconds : float;
}

(* Fleet-wide counters: pools also feed the always-on metrics registry
   so perf artifacts can report hit ratios without a pool handle. *)
let m_hits = Wave_obs.Metrics.counter "cache.hits"
let m_misses = Wave_obs.Metrics.counter "cache.misses"
let m_meta_hits = Wave_obs.Metrics.counter "cache.meta_hits"
let m_meta_misses = Wave_obs.Metrics.counter "cache.meta_misses"
let m_evictions = Wave_obs.Metrics.counter "cache.evictions"
let m_readaheads = Wave_obs.Metrics.counter "cache.readaheads"

let create disk ~frames ?(readahead = 0) () =
  if frames < 1 then fail "create: need at least one frame (got %d)" frames;
  if readahead < 0 then fail "create: negative readahead";
  {
    disk;
    frames =
      Array.init frames (fun _ ->
          { key = Data (-1); occupied = false; gen = 0; pins = 0; refbit = false });
    map = Hashtbl.create (2 * frames);
    readahead;
    hand = 0;
    hits = 0;
    misses = 0;
    meta_hits = 0;
    meta_misses = 0;
    evictions = 0;
    readaheads = 0;
    stale_drops = 0;
    saved_seconds = 0.0;
    meta_seconds = 0.0;
  }

(* --- per-disk attachment -------------------------------------------- *)

let pools : (int, t) Hashtbl.t = Hashtbl.create 16

let attach disk ~frames ?(readahead = 0) () =
  match Hashtbl.find_opt pools (Disk.id disk) with
  | Some pool -> pool
  | None ->
    let pool = create disk ~frames ~readahead () in
    Hashtbl.replace pools (Disk.id disk) pool;
    pool

let find disk = Hashtbl.find_opt pools (Disk.id disk)
let detach disk = Hashtbl.remove pools (Disk.id disk)

(* --- frame management ----------------------------------------------- *)

(* CLOCK second chance: sweep from the hand, skipping pinned frames and
   giving referenced frames one more revolution.  Two full revolutions
   guarantee a victim unless every frame is pinned. *)
let victim t =
  let n = Array.length t.frames in
  let budget = ref (2 * n) in
  let rec go () =
    if !budget = 0 then fail "no evictable frame: all %d frames pinned" n;
    decr budget;
    let i = t.hand in
    t.hand <- (t.hand + 1) mod n;
    let f = t.frames.(i) in
    if not f.occupied then i
    else if f.pins > 0 then go ()
    else if f.refbit then begin
      f.refbit <- false;
      go ()
    end
    else i
  in
  go ()

let install t key ~gen ~refbit =
  let i = victim t in
  let f = t.frames.(i) in
  if f.occupied then begin
    Hashtbl.remove t.map f.key;
    t.evictions <- t.evictions + 1;
    Wave_obs.Metrics.inc m_evictions
  end;
  f.key <- key;
  f.occupied <- true;
  f.gen <- gen;
  f.pins <- 0;
  f.refbit <- refbit;
  Hashtbl.replace t.map key i

let frame_of t key =
  match Hashtbl.find_opt t.map key with
  | None -> None
  | Some i -> Some t.frames.(i)

let params t = Disk.params t.disk

let block_seconds t blocks =
  float_of_int (blocks * (params t).Disk.block_size)
  /. (params t).Disk.transfer_rate

let live_gen t (ext : Disk.extent) =
  match Disk.generation_at t.disk ~start:ext.Disk.start with
  | Some g -> g
  | None -> fail "extent at %d is not live" ext.Disk.start

(* Classify one data block against the pool.  Hits get their reference
   bit set here; stale and absent blocks are returned for the caller to
   fetch in one batched charge. *)
type presence = P_hit | P_stale | P_absent

let classify t addr ~gen =
  match frame_of t (Data addr) with
  | Some f when f.gen = gen ->
    f.refbit <- true;
    P_hit
  | Some _ -> P_stale
  | None -> P_absent

let settle t addr ~gen ~refbit =
  match frame_of t (Data addr) with
  | Some f ->
    (* Stale frame refreshed in place: same key, new generation. *)
    f.gen <- gen;
    f.refbit <- refbit;
    t.stale_drops <- t.stale_drops + 1
  | None -> install t (Data addr) ~gen ~refbit

let note_data t ~hits ~misses =
  t.hits <- t.hits + hits;
  t.misses <- t.misses + misses;
  if hits > 0 then Wave_obs.Metrics.inc ~by:(float_of_int hits) m_hits;
  if misses > 0 then Wave_obs.Metrics.inc ~by:(float_of_int misses) m_misses

(* --- charged accesses ----------------------------------------------- *)

let read_range t (ext : Disk.extent) ~off ~blocks =
  if off < 0 || blocks < 0 || off + blocks > ext.Disk.length then
    fail "read_range: [%d, %d) outside extent of %d blocks" off (off + blocks)
      ext.Disk.length;
  if blocks > 0 then begin
    Disk.assert_readable t.disk ext;
    let gen = live_gen t ext in
    let base = ext.Disk.start + off in
    let missing = ref [] in
    let hits = ref 0 in
    for i = blocks - 1 downto 0 do
      match classify t (base + i) ~gen with
      | P_hit -> incr hits
      | P_stale | P_absent -> missing := (base + i) :: !missing
    done;
    let m = List.length !missing in
    let ra =
      if m = 0 || t.readahead = 0 then []
      else begin
        (* Prefetch up to [readahead] blocks following the demand range
           inside the same extent — the arm is already positioned, so
           they ride the same seek (extra transfer only). *)
        let upto =
          min ext.Disk.length (off + blocks + t.readahead) - 1 + ext.Disk.start
        in
        let out = ref [] in
        for a = upto downto base + blocks do
          match classify t a ~gen with
          | P_hit -> ()
          | P_stale | P_absent -> out := a :: !out
        done;
        !out
      end
    in
    if m > 0 then begin
      Disk.charge_seek t.disk;
      Disk.charge_read_transfer t.disk ~blocks:(m + List.length ra);
      List.iter (fun a -> settle t a ~gen ~refbit:true) !missing;
      List.iter (fun a -> settle t a ~gen ~refbit:false) ra;
      let n_ra = List.length ra in
      t.readaheads <- t.readaheads + n_ra;
      if n_ra > 0 then Wave_obs.Metrics.inc ~by:(float_of_int n_ra) m_readaheads
    end;
    (* Saved versus the uncached charge (seek + whole range), net of any
       readahead transfer spent speculatively. *)
    let seek = (params t).Disk.seek_time in
    let uncached = seek +. block_seconds t blocks in
    let charged =
      if m = 0 then 0.0
      else seek +. block_seconds t (m + List.length ra)
    in
    t.saved_seconds <- t.saved_seconds +. uncached -. charged;
    note_data t ~hits:!hits ~misses:m
  end

let read t ext = read_range t ext ~off:0 ~blocks:ext.Disk.length

let sequential_read t exts =
  if exts <> [] then begin
    List.iter (fun e -> Disk.assert_readable t.disk e) exts;
    let gens = List.map (fun e -> (e, live_gen t e)) exts in
    let total = ref 0 in
    let missing = ref [] (* reversed (addr, gen) demand list *) in
    let hits = ref 0 in
    let runs = ref 0 in
    let in_run = ref false in
    List.iter
      (fun ((e : Disk.extent), gen) ->
        for i = 0 to e.Disk.length - 1 do
          incr total;
          match classify t (e.Disk.start + i) ~gen with
          | P_hit ->
            incr hits;
            in_run := false
          | P_stale | P_absent ->
            missing := (e.Disk.start + i, gen) :: !missing;
            if not !in_run then begin
              incr runs;
              in_run := true
            end
        done)
      gens;
    let m = List.length !missing in
    if m > 0 then begin
      Disk.charge_seek t.disk;
      Disk.charge_read_transfer t.disk ~blocks:m;
      (* Scan-loaded frames enter cold (reference bit clear): a scan
         longer than the pool drains behind itself instead of evicting
         the probe working set — drop-behind readahead. *)
      List.iter (fun (a, gen) -> settle t a ~gen ~refbit:false) (List.rev !missing);
      let ra = m - !runs in
      t.readaheads <- t.readaheads + ra;
      if ra > 0 then Wave_obs.Metrics.inc ~by:(float_of_int ra) m_readaheads
    end;
    let seek = (params t).Disk.seek_time in
    let uncached = seek +. block_seconds t !total in
    let charged = if m = 0 then 0.0 else seek +. block_seconds t m in
    t.saved_seconds <- t.saved_seconds +. uncached -. charged;
    note_data t ~hits:!hits ~misses:m
  end

let write_range t (ext : Disk.extent) ~off ~blocks =
  if off < 0 || blocks < 0 || off + blocks > ext.Disk.length then
    fail "write_range: [%d, %d) outside extent of %d blocks" off (off + blocks)
      ext.Disk.length;
  (* Write-through: the disk is charged exactly as an uncached write —
     same seek, same write op, same fault point.  Only if it succeeds
     do resident frames pick up the new contents (and generation). *)
  Disk.write_blocks t.disk ext ~blocks;
  if blocks > 0 then begin
    let gen = live_gen t ext in
    let base = ext.Disk.start + off in
    for i = 0 to blocks - 1 do
      match frame_of t (Data (base + i)) with
      | Some f ->
        f.gen <- gen;
        f.refbit <- true
      | None -> () (* no write allocation *)
    done
  end

let write t ext = write_range t ext ~off:0 ~blocks:ext.Disk.length

let meta_read t ~dir ~nodes =
  let seek = (params t).Disk.seek_time in
  List.iter
    (fun node ->
      let key = Meta { dir; node } in
      match frame_of t key with
      | Some f ->
        f.refbit <- true;
        t.meta_hits <- t.meta_hits + 1;
        Wave_obs.Metrics.inc m_meta_hits
      | None ->
        (* A cold upper-level block: pointer-chased, so each miss pays
           its own seek — exactly the term a warm pool removes. *)
        Disk.charge_seek t.disk;
        Disk.charge_read_transfer t.disk ~blocks:1;
        t.meta_seconds <- t.meta_seconds +. seek +. block_seconds t 1;
        t.meta_misses <- t.meta_misses + 1;
        Wave_obs.Metrics.inc m_meta_misses;
        install t key ~gen:0 ~refbit:true)
    nodes

(* --- pinning --------------------------------------------------------- *)

let pin_extent t (ext : Disk.extent) =
  read t ext;
  let gen = live_gen t ext in
  let pinned = ref [] in
  try
    for i = 0 to ext.Disk.length - 1 do
      match frame_of t (Data (ext.Disk.start + i)) with
      | Some f when f.gen = gen ->
        f.pins <- f.pins + 1;
        pinned := f :: !pinned
      | Some _ | None ->
        fail "pin_extent: extent of %d blocks does not fit the pool"
          ext.Disk.length
    done
  with e ->
    List.iter (fun f -> f.pins <- f.pins - 1) !pinned;
    raise e

let unpin_extent t (ext : Disk.extent) =
  (* Validate the whole range first so a failed unpin changes nothing. *)
  let frames =
    List.init ext.Disk.length (fun i ->
        match frame_of t (Data (ext.Disk.start + i)) with
        | Some f when f.pins > 0 -> f
        | Some _ ->
          fail "unpin_extent: block %d pin count would drop below zero"
            (ext.Disk.start + i)
        | None ->
          fail "unpin_extent: block %d is not resident" (ext.Disk.start + i))
  in
  List.iter (fun f -> f.pins <- f.pins - 1) frames

let pinned_frames t =
  Array.fold_left (fun acc f -> if f.pins > 0 then acc + 1 else acc) 0 t.frames

(* --- observation ----------------------------------------------------- *)

let capacity t = Array.length t.frames

let resident t =
  Array.fold_left (fun acc f -> if f.occupied then acc + 1 else acc) 0 t.frames

let contains t (ext : Disk.extent) =
  match Disk.generation_at t.disk ~start:ext.Disk.start with
  | None -> false
  | Some gen ->
    let ok = ref true in
    for i = 0 to ext.Disk.length - 1 do
      match frame_of t (Data (ext.Disk.start + i)) with
      | Some f when f.gen = gen -> ()
      | Some _ | None -> ok := false
    done;
    !ok

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    meta_hits = t.meta_hits;
    meta_misses = t.meta_misses;
    evictions = t.evictions;
    readaheads = t.readaheads;
    stale_drops = t.stale_drops;
    saved_seconds = t.saved_seconds;
    meta_seconds = t.meta_seconds;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.meta_hits <- 0;
  t.meta_misses <- 0;
  t.evictions <- 0;
  t.readaheads <- 0;
  t.stale_drops <- 0;
  t.saved_seconds <- 0.0;
  t.meta_seconds <- 0.0

let hit_ratio (s : stats) =
  Wave_util.Stats.ratio (float_of_int s.hits) (float_of_int (s.hits + s.misses))

let meta_hit_ratio (s : stats) =
  Wave_util.Stats.ratio
    (float_of_int s.meta_hits)
    (float_of_int (s.meta_hits + s.meta_misses))

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "hits=%d misses=%d (ratio %.3f) meta=%d/%d evictions=%d readahead=%d \
     stale=%d saved=%.4fs meta-cost=%.4fs"
    s.hits s.misses (hit_ratio s) s.meta_hits
    (s.meta_hits + s.meta_misses)
    s.evictions s.readaheads s.stale_drops s.saved_seconds s.meta_seconds
