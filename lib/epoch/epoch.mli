(** Epoch-based snapshot isolation for concurrent wave serving.

    The stop-the-world evaluation of the paper runs maintenance, then
    queries.  A production wave index answers probes {e while} the
    day's transition executes.  The shadow techniques already build the
    next bucket set off to the side; this module turns that into
    reader-visible snapshot isolation:

    - {!open_} captures the current constituent set (the frame's
      indexes, their time-sets, and every extent they own) as an
      immutable {e epoch} — a generation-tagged snapshot handle.
      Readers {!acquire} the epoch, resolve probes against it with
      {!probe}/{!scan}, and {!release} it.
    - The transition mutates the frame freely under the {e next}
      epoch.  Space it would reclaim from the snapshot is protected by
      two gates: the disk-level free gate ({!Wave_disk.Disk.set_free_gate})
      defers frees of snapshot extents — they stay live, so the
      allocator cannot reuse them and their generations stay valid —
      and the index-level drop gate ({!Wave_storage.Index.set_drop_gate})
      defers whole-index teardown, keeping both the extents and the
      in-memory directory a snapshot probe needs.
    - {!commit} is the single atomic swap: the open epoch retires.  The
      caller aligns it with its durability commit point (the atomic
      checkpoint rename), so the epoch a reader sees is always exactly
      one committed state, never a blend.
    - A retired epoch is refcounted.  Only when the last in-flight
      reader drains (refcount hits zero) are the deferred drops and
      frees re-issued — each re-checks the gates, so an extent still
      visible to {e another} live snapshot is re-deferred — and the
      cache frames the epoch pinned are unpinned.

    Cache interaction: at {!open_} the epoch pins whatever blocks of
    its snapshot extents are already resident ({!Wave_cache.Cache.pin_resident_blocks},
    no I/O, bounded budget), so eviction cannot push out a
    retired-but-undrained epoch's working set.

    Crash safety: {!on_crash} discards every deferred action {e without}
    executing it and unpins everything.  Recovery's leak sweep then
    frees the orphaned extents like any other leak of the interrupted
    transition — a deferred free must never double-fire after recovery
    rebuilt the allocator.

    Observability: every lifecycle step lands in the flight recorder
    ([epoch] events), [epoch.*] metrics track active/retired epochs,
    pinned frames, deferred blocks, swap latency and drained probes,
    and swap/drain run under [epoch.swap]/[epoch.drain] spans. *)

open Wave_storage

type t
(** A snapshot handle: one epoch. *)

type range_pred = t1:int -> t2:int -> bool
(** Whether a slot's time-set intersects [t1..t2] — the probe-routing
    predicate captured per slot (the core layer builds it from the
    frame's [Dayset]s, which this library does not depend on). *)

(** {1 Registry lifecycle} *)

val attach : Wave_disk.Disk.t -> unit
(** Enable epochs on this disk: create its registry entry and install
    the free gate (and, once per process, the index drop gate).
    Idempotent.  Without an attach, nothing in this module runs and
    every gate answers "not claimed" — the stop-the-world paths are
    bit-identical to a build without epochs. *)

val attached : Wave_disk.Disk.t -> bool

val detach : Wave_disk.Disk.t -> unit
(** Tear epochs down on this disk {e normally}: requires no live
    epoch (drain first); removes the registry entry and the free
    gate.  Raises [Failure] if an epoch is still live. *)

val on_crash : Wave_disk.Disk.t -> unit
(** Crash-path teardown: unpin everything, {e discard} all deferred
    drops/frees without executing them, drop every live epoch and
    remove the registry entry and free gate.  The deferred extents are
    exactly the leaks recovery's sweep will free from the journal and
    manifest, so executing them here would double-free.  Idempotent;
    never raises. *)

(** {1 Epoch lifecycle} *)

val open_ :
  Wave_disk.Disk.t -> slots:(Index.t * range_pred) list -> t
(** Capture the constituent set as a new current epoch (refcount 1 —
    the opener's own lease).  At most one current epoch per disk
    ([Failure] otherwise); pins resident cache blocks of the snapshot
    extents when a pool is attached.  Requires {!attach} first. *)

val current : Wave_disk.Disk.t -> t option
(** The open (not yet committed) epoch, if any. *)

val commit : ?swap_seconds:float -> Wave_disk.Disk.t -> unit
(** The atomic swap: retire the current epoch.  Readers already inside
    it keep their snapshot; new readers see post-transition state.
    [swap_seconds] (the model time the caller attributes to the swap)
    feeds the [epoch.swap_seconds] histogram.  No-op when no epoch is
    open. *)

val acquire : t -> unit
(** Take a reader reference.  Acquiring a retired epoch counts as a
    {e drained probe} (the reader arrived before the swap and resolves
    against the retired snapshot).  [Failure] on a drained epoch. *)

val release : t -> unit
(** Drop a reference.  When the last reference of a {e retired} epoch
    drains, the epoch's deferred drops and frees re-issue through the
    gates, its cache pins release, and it becomes drained.  [Failure]
    on refcount underflow. *)

val gen : t -> int
(** The epoch's generation tag (monotone per disk, starting at 1). *)

val refcount : t -> int

val is_retired : t -> bool
val is_drained : t -> bool

(** {1 Snapshot reads} *)

val probe : t -> value:int -> t1:int -> t2:int -> Entry.t list
(** [TimedIndexProbe] against the snapshot: probes every snapshot
    constituent whose captured time-set intersects [t1..t2], charging
    the usual disk costs.  [Failure] on a drained epoch. *)

val scan : t -> t1:int -> t2:int -> Entry.t list
(** [TimedSegmentScan] against the snapshot. *)

val snapshot_extents : t -> Wave_disk.Disk.extent list
(** The extents the snapshot owned at {!open_} time.  While the epoch
    is live, every one of them is kept allocated (tested invariant). *)

(** {1 Introspection (tests, gauges, alerting)} *)

val live_epochs : Wave_disk.Disk.t -> int
(** Epochs not yet drained on this disk (current + retired). *)

val retired_undrained : Wave_disk.Disk.t -> int
(** Retired epochs still holding references or deferred work — the
    epoch-leak signal the transition-scoped alert watches. *)

val pinned_blocks : Wave_disk.Disk.t -> int
(** Cache blocks currently pinned by this disk's epochs. *)

val deferred_blocks : Wave_disk.Disk.t -> int
(** Blocks whose reclamation is deferred: gated frees plus the
    allocation of every gated index drop. *)

(** {1 Interleaved execution} *)

module Interleave : sig
  val run :
    Wave_disk.Disk.t -> on_op:(unit -> unit) -> (unit -> 'a) -> 'a
  (** [run disk ~on_op f] executes [f] with [on_op] invoked after every
      charged disk operation — the logical schedule: each completed
      operation is a tick at which queued query arrivals may be served,
      on the same disk, so served probes contend with the transition
      under the cost model.  Reentrant ticks are suppressed (a probe
      served inside [on_op] does not recursively deliver arrivals), and
      the observer is removed when [f] returns or raises. *)
end
