(* Epoch-based snapshot isolation: generation-tagged immutable views of
   the constituent set, so probes keep running against the old wave
   while a transition assembles the next one.  See epoch.mli for the
   protocol; the load-bearing invariant is that an extent visible to
   any live snapshot is never freed (the disk free gate) and an index
   visible to any live snapshot is never torn down (the index drop
   gate) until the last reader drains. *)

module Disk = Wave_disk.Disk
module Cache = Wave_cache.Cache
module Index = Wave_storage.Index

let fail fmt = Printf.ksprintf failwith fmt

type range_pred = t1:int -> t2:int -> bool

type state = Current | Retired | Drained

type t = {
  e_gen : int;
  e_disk : Disk.t;
  e_slots : (Index.t * range_pred) list;
  e_extents : Disk.extent list; (* snapshot ownership at open time *)
  e_extent_starts : (int, unit) Hashtbl.t;
  mutable e_state : state;
  mutable e_refcount : int;
  mutable e_pinned : int list; (* cache block addresses pinned at open *)
  mutable e_def_drops : Index.t list; (* gated Index.drop calls, oldest last *)
  mutable e_def_frees : Disk.extent list; (* gated Disk.free calls *)
  e_def_free_set : (int, unit) Hashtbl.t; (* dedup by extent start *)
}

type reg = {
  r_disk : Disk.t;
  mutable r_current : t option;
  mutable r_retired : t list; (* retired, not yet drained; newest first *)
  mutable r_next_gen : int;
}

let registry : (int, reg) Hashtbl.t = Hashtbl.create 4

let find_reg disk = Hashtbl.find_opt registry (Disk.id disk)

let live_of reg =
  (match reg.r_current with Some e -> [ e ] | None -> []) @ reg.r_retired

(* --- observability --------------------------------------------------- *)

let m_opened = Wave_obs.Metrics.counter "epoch.opened"
let m_swaps = Wave_obs.Metrics.counter "epoch.swaps"
let m_drains = Wave_obs.Metrics.counter "epoch.drains"
let m_drained_probes = Wave_obs.Metrics.counter "epoch.drained_probes"
let g_active = Wave_obs.Metrics.gauge "epoch.active"
let g_retired = Wave_obs.Metrics.gauge "epoch.retired_undrained"
let g_pinned = Wave_obs.Metrics.gauge "epoch.pinned_frames"
let g_deferred = Wave_obs.Metrics.gauge "epoch.deferred_blocks"
let h_swap = Wave_obs.Metrics.histogram "epoch.swap_seconds"

let span name f =
  if Wave_obs.Trace.is_enabled () then Wave_obs.Trace.with_span name f
  else f ()

let record event e =
  Wave_obs.Recorder.record_epoch ~event ~gen:e.e_gen ~refcount:e.e_refcount

(* --- introspection --------------------------------------------------- *)

let live_epochs disk =
  match find_reg disk with None -> 0 | Some reg -> List.length (live_of reg)

let retired_undrained disk =
  match find_reg disk with
  | None -> 0
  | Some reg -> List.length reg.r_retired

let pinned_blocks disk =
  match find_reg disk with
  | None -> 0
  | Some reg ->
    List.fold_left (fun acc e -> acc + List.length e.e_pinned) 0 (live_of reg)

let deferred_blocks disk =
  match find_reg disk with
  | None -> 0
  | Some reg ->
    List.fold_left
      (fun acc e ->
        let frees =
          List.fold_left
            (fun a (ext : Disk.extent) -> a + ext.Disk.length)
            0 e.e_def_frees
        in
        let drops =
          List.fold_left (fun a i -> a + Index.allocated_blocks i) 0 e.e_def_drops
        in
        acc + frees + drops)
      0 (live_of reg)

let update_gauges reg =
  Wave_obs.Metrics.set g_active (float_of_int (List.length (live_of reg)));
  Wave_obs.Metrics.set g_retired (float_of_int (List.length reg.r_retired));
  Wave_obs.Metrics.set g_pinned (float_of_int (pinned_blocks reg.r_disk));
  Wave_obs.Metrics.set g_deferred (float_of_int (deferred_blocks reg.r_disk))

(* --- gates ----------------------------------------------------------- *)

(* Free gate for one disk: claim the extent when any live epoch's
   snapshot owns its start, recording the deferred free into the first
   such epoch.  A drained epoch re-issuing the free runs through this
   same gate with itself already out of the live set, so a second
   still-live snapshot re-defers it — termination holds because every
   re-deferral lands on a strictly later epoch. *)
let free_gate reg (ext : Disk.extent) =
  match
    List.find_opt
      (fun e -> Hashtbl.mem e.e_extent_starts ext.Disk.start)
      (live_of reg)
  with
  | None -> false
  | Some e ->
    if not (Hashtbl.mem e.e_def_free_set ext.Disk.start) then begin
      Hashtbl.replace e.e_def_free_set ext.Disk.start ();
      e.e_def_frees <- ext :: e.e_def_frees
    end;
    true

(* Drop gate (global, installed once): claim the index when any live
   epoch on its disk snapshot-references it.  [Index.drop] defers the
   whole teardown — extents and directory stay intact for snapshot
   probes — and drain re-calls [Index.drop], which re-enters here. *)
let drop_gate idx =
  match find_reg (Index.disk idx) with
  | None -> false
  | Some reg -> (
    match
      List.find_opt
        (fun e -> List.exists (fun (i, _) -> i == idx) e.e_slots)
        (live_of reg)
    with
    | None -> false
    | Some e ->
      if not (List.memq idx e.e_def_drops) then
        e.e_def_drops <- idx :: e.e_def_drops;
      true)

let drop_gate_installed = ref false

(* --- registry lifecycle ---------------------------------------------- *)

let attach disk =
  if not !drop_gate_installed then begin
    Index.set_drop_gate drop_gate;
    drop_gate_installed := true
  end;
  match find_reg disk with
  | Some _ -> ()
  | None ->
    let reg =
      { r_disk = disk; r_current = None; r_retired = []; r_next_gen = 1 }
    in
    Hashtbl.replace registry (Disk.id disk) reg;
    Disk.set_free_gate disk (Some (free_gate reg))

let attached disk = find_reg disk <> None

let unpin e =
  (match e.e_pinned with
  | [] -> ()
  | pinned -> (
    match Cache.find e.e_disk with
    | Some pool -> Cache.unpin_blocks pool pinned
    | None -> ()));
  e.e_pinned <- []

let detach disk =
  match find_reg disk with
  | None -> ()
  | Some reg ->
    if live_of reg <> [] then
      fail "Epoch.detach: %d live epoch(s); drain before detaching"
        (List.length (live_of reg));
    Hashtbl.remove registry (Disk.id disk);
    Disk.set_free_gate disk None

let on_crash disk =
  match find_reg disk with
  | None -> ()
  | Some reg ->
    (* Deferred drops/frees are exactly the space the interrupted
       transition's recovery will find unclaimed and sweep as leaks:
       executing them here would double-free after the allocator is
       rebuilt.  Discard them, unpin, and forget every epoch. *)
    List.iter
      (fun e ->
        (try unpin e with _ -> ());
        e.e_def_drops <- [];
        e.e_def_frees <- [];
        Hashtbl.reset e.e_def_free_set;
        e.e_state <- Drained)
      (live_of reg);
    reg.r_current <- None;
    reg.r_retired <- [];
    update_gauges reg;
    Hashtbl.remove registry (Disk.id disk);
    Disk.set_free_gate disk None

(* --- epoch lifecycle ------------------------------------------------- *)

(* One epoch may pin at most half the pool, so eviction always has
   victims even with a retired epoch still draining next to the
   current one. *)
let pin_budget pool = Cache.capacity pool / 2

let open_ disk ~slots =
  let reg =
    match find_reg disk with
    | Some reg -> reg
    | None -> fail "Epoch.open_: disk not attached (call Epoch.attach first)"
  in
  (match reg.r_current with
  | Some e -> fail "Epoch.open_: epoch %d is still current (commit it first)" e.e_gen
  | None -> ());
  let extents =
    List.concat_map (fun (idx, _) -> Index.extents idx) slots
  in
  let starts = Hashtbl.create (List.length extents) in
  List.iter
    (fun (ext : Disk.extent) -> Hashtbl.replace starts ext.Disk.start ())
    extents;
  let e =
    {
      e_gen = reg.r_next_gen;
      e_disk = disk;
      e_slots = slots;
      e_extents = extents;
      e_extent_starts = starts;
      e_state = Current;
      e_refcount = 1 (* the opener's lease *);
      e_pinned = [];
      e_def_drops = [];
      e_def_frees = [];
      e_def_free_set = Hashtbl.create 8;
    }
  in
  reg.r_next_gen <- reg.r_next_gen + 1;
  (* Pin what is already resident of the snapshot so cache pressure
     from the transition cannot evict a retired epoch's working set. *)
  (match Cache.find disk with
  | Some pool ->
    let budget = ref (pin_budget pool) in
    List.iter
      (fun ext ->
        if !budget > 0 then begin
          let pinned = Cache.pin_resident_blocks pool ext ~budget:!budget in
          budget := !budget - List.length pinned;
          e.e_pinned <- e.e_pinned @ pinned
        end)
      extents
  | None -> ());
  reg.r_current <- Some e;
  Wave_obs.Metrics.inc m_opened;
  record "open" e;
  update_gauges reg;
  e

let current disk = Option.bind (find_reg disk) (fun reg -> reg.r_current)

let gen e = e.e_gen
let refcount e = e.e_refcount
let is_retired e = e.e_state = Retired
let is_drained e = e.e_state = Drained
let snapshot_extents e = e.e_extents

let drain reg e =
  span "epoch.drain" (fun () ->
      (* Out of the live set first: the re-issued drops and frees run
         through the gates again, which must no longer see this epoch —
         they either really execute now or re-defer to a later live
         snapshot. *)
      e.e_state <- Drained;
      (match reg.r_current with
      | Some c when c == e -> reg.r_current <- None
      | _ -> ());
      reg.r_retired <- List.filter (fun x -> not (x == e)) reg.r_retired;
      unpin e;
      let drops = List.rev e.e_def_drops and frees = List.rev e.e_def_frees in
      e.e_def_drops <- [];
      e.e_def_frees <- [];
      Hashtbl.reset e.e_def_free_set;
      List.iter Index.drop drops;
      List.iter (fun ext -> Disk.free reg.r_disk ext) frees;
      Wave_obs.Metrics.inc m_drains;
      record "drain" e;
      update_gauges reg)

let commit ?swap_seconds disk =
  match find_reg disk with
  | None -> ()
  | Some reg -> (
    match reg.r_current with
    | None -> ()
    | Some e ->
      span "epoch.swap" (fun () ->
          e.e_state <- Retired;
          reg.r_current <- None;
          reg.r_retired <- e :: reg.r_retired;
          Wave_obs.Metrics.inc m_swaps;
          (match swap_seconds with
          | Some s -> Wave_obs.Metrics.observe h_swap s
          | None -> ());
          record "swap" e;
          record "retire" e;
          update_gauges reg))

let acquire e =
  (match e.e_state with
  | Drained -> fail "Epoch.acquire: epoch %d is drained" e.e_gen
  | Retired ->
    (* A reader resolving against a retired snapshot is by definition a
       probe that arrived before the swap and drains after it. *)
    Wave_obs.Metrics.inc m_drained_probes
  | Current -> ());
  e.e_refcount <- e.e_refcount + 1

let release e =
  if e.e_refcount <= 0 then
    fail "Epoch.release: epoch %d refcount underflow" e.e_gen;
  e.e_refcount <- e.e_refcount - 1;
  if e.e_refcount = 0 && e.e_state <> Drained then
    match find_reg e.e_disk with
    | Some reg -> drain reg e
    | None -> () (* registry torn down by on_crash; nothing to reclaim *)

(* --- snapshot reads -------------------------------------------------- *)

let check_readable e =
  if e.e_state = Drained then
    fail "Epoch.probe: epoch %d is drained" e.e_gen

let probe e ~value ~t1 ~t2 =
  check_readable e;
  List.fold_left
    (fun acc (idx, in_range) ->
      if in_range ~t1 ~t2 then acc @ Index.probe_timed idx value ~t1 ~t2
      else acc)
    [] e.e_slots

let scan e ~t1 ~t2 =
  check_readable e;
  List.fold_left
    (fun acc (idx, in_range) ->
      if in_range ~t1 ~t2 then acc @ Index.scan_timed idx ~t1 ~t2 else acc)
    [] e.e_slots

(* --- interleaved execution ------------------------------------------- *)

module Interleave = struct
  let run disk ~on_op f =
    let busy = ref false in
    Disk.set_op_observer disk
      (Some
         (fun () ->
           (* Probes served from a tick charge the same disk, which
              notifies again; the guard keeps delivery non-reentrant. *)
           if not !busy then begin
             busy := true;
             Fun.protect ~finally:(fun () -> busy := false) on_op
           end));
    Fun.protect ~finally:(fun () -> Disk.set_op_observer disk None) f
end
