type t = { mutable busy : float array; mutable elapsed : float }

let create ~arms =
  if arms < 1 then invalid_arg "Parallel.create: need at least one arm";
  { busy = Array.make arms 0.0; elapsed = 0.0 }

let arms t = Array.length t.busy

let grow t ~arms:n =
  let cur = arms t in
  if n > cur then begin
    let busy = Array.make n 0.0 in
    Array.blit t.busy 0 busy 0 cur;
    t.busy <- busy
  end

let record t deltas =
  let makespan =
    List.fold_left
      (fun acc (i, d) ->
        if i < 0 || i >= arms t then
          invalid_arg
            (Printf.sprintf "Parallel.record: arm %d out of range [0,%d)" i
               (arms t));
        if d < 0.0 then invalid_arg "Parallel.record: negative delta";
        t.busy.(i) <- t.busy.(i) +. d;
        Float.max acc d)
      0.0 deltas
  in
  t.elapsed <- t.elapsed +. makespan;
  makespan

let elapsed t = t.elapsed
let serial t = Array.fold_left ( +. ) 0.0 t.busy
let busy_arm t i = t.busy.(i)

let skew_ratio t =
  let total = serial t in
  if total <= 0.0 then 1.0
  else
    let mean = total /. float_of_int (arms t) in
    Array.fold_left Float.max 0.0 t.busy /. mean

let speedup t = if t.elapsed > 0.0 then serial t /. t.elapsed else 1.0
