(** Parallel cost semantics for fan-out over independent disk arms.

    The single-disk cost model charges every operation to one global
    clock, so a query that touches N arms pays the {e sum} of the
    per-arm costs.  Real sharded deployments run the arms concurrently:
    the fan-out's latency is the {e max} over arms (the makespan), while
    the sum survives as the total busy time — useful for utilisation and
    skew accounting.

    A [Parallel.t] accumulates both views.  Callers bracket a fan-out by
    sampling each arm's [Disk.elapsed] before and after, then [record]
    the per-arm deltas; the clock advances by the makespan and keeps
    per-arm busy totals for [skew_ratio]/[speedup]. *)

type t

val create : arms:int -> t
(** Fresh clock over [arms] arms (>= 1). *)

val grow : t -> arms:int -> unit
(** Extend to [arms] arms (new arms start with zero busy time).  Used
    when a shard split adds an arm mid-run.  No-op if [arms] is not
    larger than the current count. *)

val arms : t -> int

val record : t -> (int * float) list -> float
(** [record t deltas] charges each [(arm, delta)] pair to that arm's
    busy total and advances the parallel clock by the max delta (the
    fan-out's makespan).  Returns the makespan.  Negative deltas and
    out-of-range arms are rejected with [Invalid_argument].  An empty
    list costs nothing and returns [0.]. *)

val elapsed : t -> float
(** Total parallel (makespan) model-seconds accumulated so far. *)

val serial : t -> float
(** Sum of all per-arm busy time — what a single disk would have paid. *)

val busy_arm : t -> int -> float
(** Busy total for one arm. *)

val skew_ratio : t -> float
(** Max per-arm busy time over the mean — 1.0 means perfectly balanced,
    N means one arm did all the work.  [1.0] when nothing is recorded. *)

val speedup : t -> float
(** [serial /. elapsed]; [1.0] when nothing has been recorded. *)
