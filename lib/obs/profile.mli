(** Cost-attribution profiler: aggregate finished {!Trace} spans into a
    call tree keyed by span-stack path.

    The paper's evaluation is a cost model — Tables 8–11 predict where
    model-seconds go per scheme and technique — but spans alone only
    show individual operations.  This module folds a span list into a
    tree whose nodes are {e paths} (e.g.
    [day/phase.maintenance/transition/AddToIndex/index.pack]): every
    span with the same ancestor-name chain lands on the same node, so a
    30-day run collapses into one tree of a few dozen nodes with call
    counts and attributed costs.

    Attribution follows the tracer's invariant: a span's model-seconds
    and disk counters are {e inclusive} of its children (disk hooks
    land on every open span).  A node therefore carries both the
    inclusive total and the {e self} share — total minus the direct
    children's totals — and the self values of all nodes sum to the
    roots' totals exactly (integer counters) or to within float
    rounding (model seconds).  This conservation property is what lets
    a profile be cross-checked against {!Wave_sim.Runner.day_metrics}:
    the [day] node's total model-seconds equal the summed per-day
    maintenance + query seconds.

    Two renderings: {!folded} emits flamegraph.pl / speedscope
    compatible folded stacks ([path;to;node <self-seconds>] per line,
    fractional counts), and {!to_json} a nested JSON document
    ({!Sink.validate_profile} checks its shape). *)

type node = {
  name : string;  (** last path segment *)
  path : string list;  (** root-relative span names, [name] last *)
  mutable calls : int;  (** spans aggregated into this node *)
  mutable total_model : float;  (** inclusive model-seconds *)
  mutable self_model : float;  (** total minus direct children; >= 0 *)
  mutable seeks : int;
  mutable self_seeks : int;
  mutable blocks_read : int;
  mutable self_blocks_read : int;
  mutable blocks_written : int;
  mutable self_blocks_written : int;
  mutable bytes_read : int;
  mutable self_bytes_read : int;
  mutable bytes_written : int;
  mutable self_bytes_written : int;
  mutable children : node list;  (** sorted by [total_model], largest first *)
}

type t

val of_spans : Trace.span list -> t
(** Build the call tree.  Spans whose parent is missing from the list
    (top-level spans, or children of a still-open span) become roots.
    Works on any span list, finished in any order. *)

val roots : t -> node list
(** Top-level nodes, sorted by inclusive model-seconds, largest
    first. *)

val total_model : t -> float
(** Sum of the roots' inclusive model-seconds — the whole profiled
    extent. *)

val span_count : t -> int
(** Number of spans aggregated. *)

val nodes : t -> node list
(** Every node, preorder (parents before children). *)

val find : t -> string list -> node option
(** [find t path] resolves a root-relative name path, e.g.
    [["day"; "phase.query"; "index.probe"]]. *)

val path_string : node -> string
(** The node's path joined with ["/"]. *)

val top_self : ?k:int -> ?under:string list -> t -> node list
(** The [k] (default 10) nodes with the largest self model-seconds,
    optionally restricted to the subtree at [under] (inclusive).
    Empty when [under] names no node. *)

val folded : t -> string
(** Folded-stack text: one line per node with positive self time (and
    per leaf), [name;name;name <self-model-seconds>], fractional
    seconds with nanosecond precision.  Feed to flamegraph.pl or
    speedscope; line values sum to {!total_model} (within rounding). *)

val to_json : t -> Json.t
(** [{"schema": "waveidx-profile/1", "unit": "model-seconds",
    "total_model_s": ..., "spans": ..., "roots": [node...]}] where each
    node carries name, calls, total/self model-seconds, total/self
    seeks, blocks and bytes, and its children. *)

val of_json : Json.t -> (t, string) result
(** Parse a {!to_json} document back into a profile — the [--diff]
    baseline loader.  Strict on the tree shape (schema tag, ["name"],
    ["calls"] >= 1, ["children"]); lenient on cost fields (0 when
    absent) so trimmed baselines still load.  Node order is preserved
    as written. *)

(** {1 Differential profiles}

    Two call trees aligned by span-stack path: a node's identity is
    its root-relative name chain, so sibling reordering (children
    re-sort by cost) never produces a spurious add/remove pair.
    Identical trees diff to all-zero deltas exactly — both sides were
    built from the same float arithmetic, so [cur -. base] is [0.]
    bitwise, not epsilon-close. *)

type diff_status =
  | Common  (** present on both sides *)
  | Added  (** only in the current tree *)
  | Removed  (** only in the baseline *)

type diff_entry = {
  d_path : string list;
  d_status : diff_status;
  d_base : node option;
  d_cur : node option;
  d_calls : int;  (** current - baseline; an absent side counts 0 *)
  d_total : float;  (** inclusive model-seconds delta *)
  d_self : float;  (** self model-seconds delta *)
  d_seeks : int;
  d_blocks : int;  (** read + written *)
  d_bytes : int;  (** read + written *)
}

type diff = {
  entries : diff_entry list;
      (** union of both trees' paths, sorted by |self delta| largest
          first (ties by path) *)
  base_total : float;
  cur_total : float;
}

val diff : baseline:t -> current:t -> diff

val diff_top : ?k:int -> diff -> diff_entry list
(** First [k] (default 10) entries — the top regressing / improving
    nodes by |self delta|. *)

val diff_report : ?k:int -> diff -> string
(** Human-readable table: totals line, then one row per top-[k] entry
    with status and self/total/seeks/blocks deltas. *)

val diff_json : diff -> Json.t
(** [{"schema": "waveidx-profile-diff/1", ...}] with every entry's
    deltas — the machine-readable companion of {!diff_report}. *)
