(** SLO specs with multi-window burn-rate alerting over {!Series}
    histories.

    An {!Alert} rule judges an instant (one day's or one transition's
    stat, with a consecutive-days debounce); an SLO judges a {e rolling
    window}: "the objective held on at least [goal] of the last
    [window_days] days".  The error budget is [1 - goal], and the burn
    rate of a window is the fraction of {e bad} days in it divided by
    that budget — burn 1.0 means the budget is being consumed exactly
    as fast as it accrues, burn 2.0 twice as fast.

    Following SRE multi-window practice, an SLO fires only when {e
    both} a fast window (recent spike — low detection latency) and a
    slow window (sustained — low false-positive rate) burn at or above
    [burn_threshold].  A day is bad when the objective series' daily
    sample satisfies the comparator against [threshold] — like alert
    rules, the comparator expresses the {e bad} direction
    ([runner.day.query_p95 > 0.25]).  Days are read from
    {!Series.daily}, so a store sampled at transition ticks still
    yields one judgment per day.

    Firing opens an {!Alert.event} (the spec synthesized into a rule,
    the event's [value] carrying the fast-window burn rate at fire
    time); while both windows keep burning the event's [last_day]
    advances, and the first quiet evaluation stamps [resolved_day] and
    re-arms — so one breach {e episode} yields exactly one event.  A
    firing lands in the flight recorder ({!Recorder.record_alert} with
    scope ["slo"]), triggers {!Recorder.dump_if_configured} and
    {!Sink.flush_traces}, and emits a ["slo"] {!Trace.instant} when
    tracing is on — the same evidence trail as the alert engine's.

    JSON syntax ([sim --slos FILE]): [{"slos": [{"name": "query-p95",
    "metric": "runner.day.query_p95", "op": ">", "threshold": 0.25,
    "goal": 0.99, "window_days": 28, "fast_days": 3, "slow_days": 14,
    "burn_threshold": 1.0}]}] (a bare top-level array also parses;
    [goal] defaults to 0.99, [fast_days] to [max 1 (window_days / 8)],
    [slow_days] to [max fast_days (window_days / 2)],
    [burn_threshold] to 1.0). *)

type spec = {
  slo_name : string;
  objective : string;  (** the {!Series} name judged daily *)
  comparator : Alert.comparator;  (** the {e bad} direction *)
  threshold : float;  (** objective ceiling/floor per the comparator *)
  goal : float;  (** required good-day fraction, in [0, 1) *)
  window_days : int;  (** the SLO's nominal rolling window *)
  fast_days : int;  (** fast burn window, 1 <= fast <= slow *)
  slow_days : int;  (** slow burn window, fast <= slow <= window *)
  burn_threshold : float;  (** fire when both windows burn >= this *)
}

val spec :
  ?goal:float ->
  ?fast_days:int ->
  ?slow_days:int ->
  ?burn_threshold:float ->
  name:string ->
  objective:string ->
  window_days:int ->
  Alert.comparator ->
  float ->
  spec
(** Smart constructor applying the defaults above.  Raises
    [Invalid_argument] on an empty name/objective, [window_days < 1],
    [goal] outside [0, 1), a non-positive [burn_threshold], or windows
    violating [1 <= fast_days <= slow_days <= window_days]. *)

val rule_of_spec : spec -> Alert.rule
(** The synthesized rule carried by this spec's events: the spec's
    name, objective metric and comparator, stat [Value], [for_days] 1,
    scope [Day]. *)

type t
(** Engine: specs plus per-spec episode state and the event history. *)

val create : spec list -> t
val specs : t -> spec list

val burn_rate : Series.t -> spec -> window:int -> float option
(** Bad-day fraction over the last [window] {!Series.daily} points of
    the objective, divided by the error budget [1 - goal].  [None]
    until the series holds at least [window] distinct days — an SLO
    never fires on insufficient history. *)

val eval : t -> series:Series.t -> day:int -> (spec * float) list
(** Evaluate every spec against the series store, firing and resolving
    episodes.  Returns the specs burning after this evaluation with
    their fast-window burn rates. *)

val events : t -> Alert.event list
(** Full episode history, oldest first. *)

val active : t -> Alert.event list
(** Unresolved episodes, oldest first. *)

val to_json : t -> Json.t
(** [{"slos": n, "count": n, "alerts": [...]}] in the alert engine's
    event JSON shape. *)

val specs_of_json : Json.t -> (spec list, string) result
(** Parse the syntax above.  Errors name the offending spec (by [name]
    when present, index otherwise) and field. *)

val specs_of_file : string -> (spec list, string) result
(** Read and parse [path], then {!specs_of_json}. *)
