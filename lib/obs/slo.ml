type spec = {
  slo_name : string;
  objective : string;
  comparator : Alert.comparator;
  threshold : float;
  goal : float;
  window_days : int;
  fast_days : int;
  slow_days : int;
  burn_threshold : float;
}

let spec ?(goal = 0.99) ?fast_days ?slow_days ?(burn_threshold = 1.0) ~name
    ~objective ~window_days comparator threshold =
  if String.length name = 0 then invalid_arg "Slo.spec: empty name";
  if String.length objective = 0 then invalid_arg "Slo.spec: empty objective";
  if window_days < 1 then invalid_arg "Slo.spec: window_days < 1";
  if not (goal >= 0.0 && goal < 1.0) then
    invalid_arg "Slo.spec: goal outside [0, 1)";
  if not (burn_threshold > 0.0) then
    invalid_arg "Slo.spec: non-positive burn_threshold";
  let fast = Option.value ~default:(max 1 (window_days / 8)) fast_days in
  let slow = Option.value ~default:(max fast (window_days / 2)) slow_days in
  if not (1 <= fast && fast <= slow && slow <= window_days) then
    invalid_arg "Slo.spec: need 1 <= fast_days <= slow_days <= window_days";
  {
    slo_name = name;
    objective;
    comparator;
    threshold;
    goal;
    window_days;
    fast_days = fast;
    slow_days = slow;
    burn_threshold;
  }

(* The synthesized rule rides inside every episode's Alert.event, so
   SLO firings flow through the same result/alerts plumbing as rule
   firings; for_days 1 because debounce lives in the slow window, not
   in consecutive evaluations. *)
let rule_of_spec s =
  {
    Alert.name = s.slo_name;
    metric = s.objective;
    stat = Alert.Value;
    comparator = s.comparator;
    threshold = s.threshold;
    for_days = 1;
    scope = Alert.Day;
  }

type state = { s_spec : spec; mutable current : Alert.event option }
type t = { states : state list; mutable history : Alert.event list (* newest first *) }

let create specs =
  { states = List.map (fun s -> { s_spec = s; current = None }) specs;
    history = [] }

let specs t = List.map (fun st -> st.s_spec) t.states

let bad cmp v threshold =
  match (cmp : Alert.comparator) with
  | Alert.Gt -> v > threshold
  | Alert.Ge -> v >= threshold
  | Alert.Lt -> v < threshold
  | Alert.Le -> v <= threshold

let burn_rate series s ~window =
  let days = Series.daily series s.objective in
  let have = List.length days in
  if have < window || window < 1 then None
  else
    let tail = List.filteri (fun i _ -> i >= have - window) days in
    let bad_days =
      List.length
        (List.filter (fun p -> bad s.comparator p.Series.value s.threshold) tail)
    in
    let budget = 1.0 -. s.goal in
    Some (float_of_int bad_days /. float_of_int window /. budget)

let fire st ~day ~burn =
  let s = st.s_spec in
  let e =
    {
      Alert.e_rule = rule_of_spec s;
      fired_day = day;
      value = burn;
      last_day = day;
      resolved_day = None;
    }
  in
  st.current <- Some e;
  if Trace.is_enabled () then
    Trace.instant "slo"
      ~tags:
        [
          ("slo", s.slo_name);
          ("objective", s.objective);
          ("burn", Printf.sprintf "%g" burn);
          ("fast_days", string_of_int s.fast_days);
          ("slow_days", string_of_int s.slow_days);
          ("day", string_of_int day);
        ];
  (* Same evidence trail as an alert firing: the episode lands in the
     flight ring, a configured dump path captures it immediately, and
     the streaming trace sink flushes so the lead-up survives a
     crash. *)
  Recorder.record_alert ~rule:s.slo_name ~metric:s.objective ~value:burn ~day
    ~scope:"slo";
  Recorder.dump_if_configured ~reason:("slo:" ^ s.slo_name);
  Sink.flush_traces ~reason:("slo:" ^ s.slo_name);
  e

let eval t ~series ~day =
  List.filter_map
    (fun st ->
      let s = st.s_spec in
      let burning =
        match
          (burn_rate series s ~window:s.fast_days,
           burn_rate series s ~window:s.slow_days)
        with
        | Some bf, Some bs
          when bf >= s.burn_threshold && bs >= s.burn_threshold ->
          Some bf
        | _ -> None
      in
      match burning with
      | Some bf ->
        (match st.current with
        | Some e -> e.Alert.last_day <- day
        | None ->
          let e = fire st ~day ~burn:bf in
          t.history <- e :: t.history);
        Some (s, bf)
      | None ->
        (match st.current with
        | Some e ->
          e.Alert.resolved_day <- Some day;
          st.current <- None
        | None -> ());
        None)
    t.states

let events t = List.rev t.history

let active t =
  List.rev (List.filter (fun e -> e.Alert.resolved_day = None) t.history)

let to_json t =
  let evs = events t in
  Json.Obj
    [
      ("slos", Json.int (List.length t.states));
      ("count", Json.int (List.length evs));
      ("alerts", Json.Arr (List.map Alert.event_json evs));
    ]

(* --- spec parsing -------------------------------------------------- *)

let ( let* ) = Result.bind

let spec_of_json i j =
  let label fields =
    match List.assoc_opt "name" fields with
    | Some (Json.Str n) -> Printf.sprintf "slo %S" n
    | _ -> Printf.sprintf "slo %d" i
  in
  match j with
  | Json.Obj fields ->
    let where = label fields in
    let str field =
      match List.assoc_opt field fields with
      | Some (Json.Str s) when String.length s > 0 -> Ok s
      | Some _ ->
        Error (Printf.sprintf "%s: %S must be a non-empty string" where field)
      | None -> Error (Printf.sprintf "%s: missing %S" where field)
    in
    let finite field =
      match List.assoc_opt field fields with
      | Some (Json.Num v) when Float.is_finite v -> Ok (Some v)
      | Some _ ->
        Error (Printf.sprintf "%s: %S must be a finite number" where field)
      | None -> Ok None
    in
    let int_field field =
      match List.assoc_opt field fields with
      | Some (Json.Num v) when Float.is_integer v && v >= 1.0 ->
        Ok (Some (int_of_float v))
      | Some _ ->
        Error (Printf.sprintf "%s: %S must be an integer >= 1" where field)
      | None -> Ok None
    in
    let* name = str "name" in
    let* objective = str "metric" in
    let* op_s = str "op" in
    let* comparator =
      match op_s with
      | ">" | "gt" -> Ok Alert.Gt
      | ">=" | "ge" -> Ok Alert.Ge
      | "<" | "lt" -> Ok Alert.Lt
      | "<=" | "le" -> Ok Alert.Le
      | s ->
        Error
          (Printf.sprintf "%s: unknown op %S (expected >, >=, <, <=)" where s)
    in
    let* threshold =
      match List.assoc_opt "threshold" fields with
      | Some (Json.Num v) when Float.is_finite v -> Ok v
      | Some _ ->
        Error (Printf.sprintf "%s: \"threshold\" must be a finite number" where)
      | None -> Error (Printf.sprintf "%s: missing \"threshold\"" where)
    in
    let* window_days =
      match List.assoc_opt "window_days" fields with
      | Some (Json.Num v) when Float.is_integer v && v >= 1.0 ->
        Ok (int_of_float v)
      | Some _ ->
        Error
          (Printf.sprintf "%s: \"window_days\" must be an integer >= 1" where)
      | None -> Error (Printf.sprintf "%s: missing \"window_days\"" where)
    in
    let* goal = finite "goal" in
    let* burn_threshold = finite "burn_threshold" in
    let* fast_days = int_field "fast_days" in
    let* slow_days = int_field "slow_days" in
    (match
       spec ?goal ?fast_days ?slow_days ?burn_threshold ~name
         ~objective ~window_days comparator threshold
     with
    | s -> Ok s
    | exception Invalid_argument msg ->
      Error (Printf.sprintf "%s: %s" where msg))
  | _ -> Error (Printf.sprintf "slo %d: expected an object" i)

let specs_of_json j =
  let arr =
    match j with
    | Json.Obj fields -> (
      match List.assoc_opt "slos" fields with
      | Some (Json.Arr items) -> Ok items
      | Some _ -> Error "\"slos\" must be an array"
      | None -> Error "expected {\"slos\": [...]} or a top-level array")
    | Json.Arr items -> Ok items
    | _ -> Error "expected {\"slos\": [...]} or a top-level array"
  in
  let* items = arr in
  if items = [] then Error "no slos given"
  else
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* s = spec_of_json i item in
        go (i + 1) (s :: acc) rest
    in
    go 0 [] items

let specs_of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.parse text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> specs_of_json j)
