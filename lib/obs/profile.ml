type node = {
  name : string;
  path : string list;
  mutable calls : int;
  mutable total_model : float;
  mutable self_model : float;
  mutable seeks : int;
  mutable self_seeks : int;
  mutable blocks_read : int;
  mutable self_blocks_read : int;
  mutable blocks_written : int;
  mutable self_blocks_written : int;
  mutable bytes_read : int;
  mutable self_bytes_read : int;
  mutable bytes_written : int;
  mutable self_bytes_written : int;
  mutable children : node list;
}

type t = { mutable tree : node list; span_count : int }

let fresh_node ~path name =
  {
    name;
    path;
    calls = 0;
    total_model = 0.0;
    self_model = 0.0;
    seeks = 0;
    self_seeks = 0;
    blocks_read = 0;
    self_blocks_read = 0;
    blocks_written = 0;
    self_blocks_written = 0;
    bytes_read = 0;
    self_bytes_read = 0;
    bytes_written = 0;
    self_bytes_written = 0;
    children = [];
  }

(* Per-span sums of the direct children's inclusive totals, used to
   compute self = total - children.  Counter attribution is inclusive
   by construction (every disk hook lands on all open spans), so the
   integer selves are exact; the model clock is a float subtraction and
   gets clamped at zero. *)
type child_sum = {
  mutable c_model : float;
  mutable c_seeks : int;
  mutable c_blocks_read : int;
  mutable c_blocks_written : int;
  mutable c_bytes_read : int;
  mutable c_bytes_written : int;
}

let of_spans spans =
  (* Ids are assigned at span begin, so a parent's id is always smaller
     than its children's: processing in id order guarantees the parent
     node exists before any child asks for it. *)
  let spans =
    List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans
  in
  let sums : (int, child_sum) Hashtbl.t = Hashtbl.create 64 in
  let sum_of id =
    match Hashtbl.find_opt sums id with
    | Some s -> s
    | None ->
      let s =
        {
          c_model = 0.0;
          c_seeks = 0;
          c_blocks_read = 0;
          c_blocks_written = 0;
          c_bytes_read = 0;
          c_bytes_written = 0;
        }
      in
      Hashtbl.add sums id s;
      s
  in
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.Trace.id ()) spans;
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.parent <> 0 && Hashtbl.mem known s.Trace.parent then begin
        let c = sum_of s.Trace.parent in
        c.c_model <- c.c_model +. Trace.model_seconds s;
        c.c_seeks <- c.c_seeks + s.Trace.seeks;
        c.c_blocks_read <- c.c_blocks_read + s.Trace.blocks_read;
        c.c_blocks_written <- c.c_blocks_written + s.Trace.blocks_written;
        c.c_bytes_read <- c.c_bytes_read + s.Trace.bytes_read;
        c.c_bytes_written <- c.c_bytes_written + s.Trace.bytes_written
      end)
    spans;
  let t = { tree = []; span_count = List.length spans } in
  let node_of_span : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let locate (s : Trace.span) =
    let parent =
      if s.Trace.parent = 0 then None
      else Hashtbl.find_opt node_of_span s.Trace.parent
    in
    let siblings, parent_path =
      match parent with
      | Some p -> (p.children, p.path)
      | None -> (t.tree, [])
    in
    match List.find_opt (fun n -> String.equal n.name s.Trace.name) siblings with
    | Some n -> n
    | None ->
      let n = fresh_node ~path:(parent_path @ [ s.Trace.name ]) s.Trace.name in
      (match parent with
      | Some p -> p.children <- n :: p.children
      | None -> t.tree <- n :: t.tree);
      n
  in
  List.iter
    (fun (s : Trace.span) ->
      let n = locate s in
      Hashtbl.replace node_of_span s.Trace.id n;
      let model = Trace.model_seconds s in
      let c =
        match Hashtbl.find_opt sums s.Trace.id with
        | Some c -> c
        | None ->
          {
            c_model = 0.0;
            c_seeks = 0;
            c_blocks_read = 0;
            c_blocks_written = 0;
            c_bytes_read = 0;
            c_bytes_written = 0;
          }
      in
      n.calls <- n.calls + 1;
      n.total_model <- n.total_model +. model;
      n.self_model <- n.self_model +. Float.max 0.0 (model -. c.c_model);
      n.seeks <- n.seeks + s.Trace.seeks;
      n.self_seeks <- n.self_seeks + (s.Trace.seeks - c.c_seeks);
      n.blocks_read <- n.blocks_read + s.Trace.blocks_read;
      n.self_blocks_read <- n.self_blocks_read + (s.Trace.blocks_read - c.c_blocks_read);
      n.blocks_written <- n.blocks_written + s.Trace.blocks_written;
      n.self_blocks_written <-
        n.self_blocks_written + (s.Trace.blocks_written - c.c_blocks_written);
      n.bytes_read <- n.bytes_read + s.Trace.bytes_read;
      n.self_bytes_read <- n.self_bytes_read + (s.Trace.bytes_read - c.c_bytes_read);
      n.bytes_written <- n.bytes_written + s.Trace.bytes_written;
      n.self_bytes_written <-
        n.self_bytes_written + (s.Trace.bytes_written - c.c_bytes_written))
    spans;
  let by_total a b = Float.compare b.total_model a.total_model in
  let rec sort_children n =
    n.children <- List.sort by_total n.children;
    List.iter sort_children n.children
  in
  t.tree <- List.sort by_total t.tree;
  List.iter sort_children t.tree;
  t

let roots t = t.tree
let span_count t = t.span_count

let total_model t =
  List.fold_left (fun acc n -> acc +. n.total_model) 0.0 t.tree

let nodes t =
  let rec go acc n = List.fold_left go (n :: acc) n.children in
  List.rev (List.fold_left go [] t.tree)

let find t path =
  let rec go siblings = function
    | [] -> None
    | [ name ] -> List.find_opt (fun n -> String.equal n.name name) siblings
    | name :: rest -> (
      match List.find_opt (fun n -> String.equal n.name name) siblings with
      | Some n -> go n.children rest
      | None -> None)
  in
  go t.tree path

let path_string n = String.concat "/" n.path

let top_self ?(k = 10) ?under t =
  let pool =
    match under with
    | None -> nodes t
    | Some path -> (
      match find t path with
      | None -> []
      | Some n ->
        let rec go acc n = List.fold_left go (n :: acc) n.children in
        List.rev (go [] n))
  in
  let sorted =
    List.sort (fun a b -> Float.compare b.self_model a.self_model) pool
  in
  List.filteri (fun i _ -> i < k) sorted

let folded t =
  let buf = Buffer.create 1024 in
  let rec go n =
    if n.self_model > 0.0 || n.children = [] then
      Buffer.add_string buf
        (Printf.sprintf "%s %.9f\n" (String.concat ";" n.path) n.self_model);
    List.iter go n.children
  in
  List.iter go t.tree;
  Buffer.contents buf

let rec node_json n =
  Json.Obj
    [
      ("name", Json.Str n.name);
      ("calls", Json.int n.calls);
      ("total_model_s", Json.Num n.total_model);
      ("self_model_s", Json.Num n.self_model);
      ("seeks", Json.int n.seeks);
      ("self_seeks", Json.int n.self_seeks);
      ("blocks_read", Json.int n.blocks_read);
      ("self_blocks_read", Json.int n.self_blocks_read);
      ("blocks_written", Json.int n.blocks_written);
      ("self_blocks_written", Json.int n.self_blocks_written);
      ("bytes_read", Json.int n.bytes_read);
      ("self_bytes_read", Json.int n.self_bytes_read);
      ("bytes_written", Json.int n.bytes_written);
      ("self_bytes_written", Json.int n.self_bytes_written);
      ("children", Json.Arr (List.map node_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "waveidx-profile/1");
      ("unit", Json.Str "model-seconds");
      ("total_model_s", Json.Num (total_model t));
      ("spans", Json.int t.span_count);
      ("roots", Json.Arr (List.map node_json t.tree));
    ]

(* --- parsing: read a profile document back ---------------------------- *)

let ( let* ) = Result.bind

(* Lenient on the cost fields (0 when absent) so hand-trimmed baselines
   still load; strict on the tree shape (name, calls, children). *)
let rec node_of_json parent_path j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  let fnum k = Option.value ~default:0.0 (num k) in
  let inum k = int_of_float (fnum k) in
  match str "name" with
  | None ->
    Error
      (Printf.sprintf "%s: node missing string \"name\""
         (String.concat "/" parent_path))
  | Some name -> (
    let path = parent_path @ [ name ] in
    let where = String.concat "/" path in
    let* calls =
      match num "calls" with
      | Some c when c >= 1.0 -> Ok (int_of_float c)
      | _ -> Error (Printf.sprintf "%s: \"calls\" missing or below 1" where)
    in
    match Option.bind (Json.member "children" j) Json.to_list with
    | None -> Error (Printf.sprintf "%s: missing \"children\" array" where)
    | Some kids ->
      let* children =
        List.fold_left
          (fun acc kid ->
            let* acc = acc in
            let* c = node_of_json path kid in
            Ok (c :: acc))
          (Ok []) kids
      in
      Ok
        {
          name;
          path;
          calls;
          total_model = fnum "total_model_s";
          self_model = fnum "self_model_s";
          seeks = inum "seeks";
          self_seeks = inum "self_seeks";
          blocks_read = inum "blocks_read";
          self_blocks_read = inum "self_blocks_read";
          blocks_written = inum "blocks_written";
          self_blocks_written = inum "self_blocks_written";
          bytes_read = inum "bytes_read";
          self_bytes_read = inum "self_bytes_read";
          bytes_written = inum "bytes_written";
          self_bytes_written = inum "self_bytes_written";
          children = List.rev children;
        })

let of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  match str "schema" with
  | None -> Error "missing string \"schema\""
  | Some s when s <> "waveidx-profile/1" ->
    Error (Printf.sprintf "schema %S, expected \"waveidx-profile/1\"" s)
  | Some _ -> (
    let spans =
      match Option.bind (Json.member "spans" j) Json.to_float with
      | Some v -> int_of_float v
      | None -> 0
    in
    match Option.bind (Json.member "roots" j) Json.to_list with
    | None -> Error "missing \"roots\" array"
    | Some roots ->
      let* tree =
        List.fold_left
          (fun acc r ->
            let* acc = acc in
            let* n = node_of_json [] r in
            Ok (n :: acc))
          (Ok []) roots
      in
      Ok { tree = List.rev tree; span_count = spans })

(* --- diffing: align two trees by span-stack path ---------------------- *)

type diff_status = Common | Added | Removed

type diff_entry = {
  d_path : string list;
  d_status : diff_status;
  d_base : node option;
  d_cur : node option;
  d_calls : int;
  d_total : float;
  d_self : float;
  d_seeks : int;
  d_blocks : int;
  d_bytes : int;
}

type diff = {
  entries : diff_entry list;
  base_total : float;
  cur_total : float;
}

let entry_of ~path ~base ~cur =
  let f get = function Some n -> get n | None -> 0.0 in
  let i get = function Some n -> get n | None -> 0 in
  let blocks n = n.blocks_read + n.blocks_written in
  let bytes n = n.bytes_read + n.bytes_written in
  {
    d_path = path;
    d_status =
      (match (base, cur) with
      | Some _, Some _ -> Common
      | None, Some _ -> Added
      | Some _, None -> Removed
      | None, None -> assert false);
    d_base = base;
    d_cur = cur;
    d_calls = i (fun n -> n.calls) cur - i (fun n -> n.calls) base;
    d_total = f (fun n -> n.total_model) cur -. f (fun n -> n.total_model) base;
    d_self = f (fun n -> n.self_model) cur -. f (fun n -> n.self_model) base;
    d_seeks = i (fun n -> n.seeks) cur - i (fun n -> n.seeks) base;
    d_blocks = i blocks cur - i blocks base;
    d_bytes = i bytes cur - i bytes base;
  }

let diff ~baseline ~current =
  (* Alignment is by path, so two trees whose siblings merely reordered
     (cost shifts re-sort children) still pair node for node. *)
  let index t =
    let tbl = Hashtbl.create 64 in
    List.iter (fun n -> Hashtbl.replace tbl (path_string n) n) (nodes t);
    tbl
  in
  let b = index baseline and c = index current in
  let seen = Hashtbl.create 64 in
  let entries = ref [] in
  let consider n =
    let key = path_string n in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      entries :=
        entry_of ~path:n.path ~base:(Hashtbl.find_opt b key)
          ~cur:(Hashtbl.find_opt c key)
        :: !entries
    end
  in
  List.iter consider (nodes current);
  List.iter consider (nodes baseline);
  let by_magnitude a b =
    match Float.compare (Float.abs b.d_self) (Float.abs a.d_self) with
    | 0 -> compare a.d_path b.d_path
    | c -> c
  in
  {
    entries = List.sort by_magnitude !entries;
    base_total = total_model baseline;
    cur_total = total_model current;
  }

let diff_top ?(k = 10) d = List.filteri (fun i _ -> i < k) d.entries

let diff_status_name = function
  | Common -> "common"
  | Added -> "added"
  | Removed -> "removed"

let diff_report ?(k = 10) d =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let pct =
    if d.base_total = 0.0 then if d.cur_total = 0.0 then 0.0 else infinity
    else (d.cur_total -. d.base_total) /. d.base_total *. 100.0
  in
  line "profile diff: total %.4f -> %.4f model-s (%+.1f%%), %d node(s) changed"
    d.base_total d.cur_total pct
    (List.length
       (List.filter
          (fun e -> e.d_status <> Common || Float.abs e.d_self > 0.0)
          d.entries));
  line "  %-52s %8s %12s %12s %8s %8s" "path" "status" "dself(ms)" "dtotal(ms)"
    "dseeks" "dblocks";
  List.iter
    (fun e ->
      line "  %-52s %8s %+12.4f %+12.4f %+8d %+8d"
        (String.concat "/" e.d_path)
        (diff_status_name e.d_status)
        (e.d_self *. 1e3) (e.d_total *. 1e3) e.d_seeks e.d_blocks)
    (diff_top ~k d);
  Buffer.contents buf

let diff_entry_json e =
  Json.Obj
    [
      ("path", Json.Str (String.concat "/" e.d_path));
      ("status", Json.Str (diff_status_name e.d_status));
      ("delta_calls", Json.int e.d_calls);
      ("delta_total_model_s", Json.Num e.d_total);
      ("delta_self_model_s", Json.Num e.d_self);
      ("delta_seeks", Json.int e.d_seeks);
      ("delta_blocks", Json.int e.d_blocks);
      ("delta_bytes", Json.int e.d_bytes);
    ]

let diff_json d =
  Json.Obj
    [
      ("schema", Json.Str "waveidx-profile-diff/1");
      ("unit", Json.Str "model-seconds");
      ("baseline_total_model_s", Json.Num d.base_total);
      ("current_total_model_s", Json.Num d.cur_total);
      ("entries", Json.Arr (List.map diff_entry_json d.entries));
    ]
