type node = {
  name : string;
  path : string list;
  mutable calls : int;
  mutable total_model : float;
  mutable self_model : float;
  mutable seeks : int;
  mutable self_seeks : int;
  mutable blocks_read : int;
  mutable self_blocks_read : int;
  mutable blocks_written : int;
  mutable self_blocks_written : int;
  mutable bytes_read : int;
  mutable self_bytes_read : int;
  mutable bytes_written : int;
  mutable self_bytes_written : int;
  mutable children : node list;
}

type t = { mutable tree : node list; span_count : int }

let fresh_node ~path name =
  {
    name;
    path;
    calls = 0;
    total_model = 0.0;
    self_model = 0.0;
    seeks = 0;
    self_seeks = 0;
    blocks_read = 0;
    self_blocks_read = 0;
    blocks_written = 0;
    self_blocks_written = 0;
    bytes_read = 0;
    self_bytes_read = 0;
    bytes_written = 0;
    self_bytes_written = 0;
    children = [];
  }

(* Per-span sums of the direct children's inclusive totals, used to
   compute self = total - children.  Counter attribution is inclusive
   by construction (every disk hook lands on all open spans), so the
   integer selves are exact; the model clock is a float subtraction and
   gets clamped at zero. *)
type child_sum = {
  mutable c_model : float;
  mutable c_seeks : int;
  mutable c_blocks_read : int;
  mutable c_blocks_written : int;
  mutable c_bytes_read : int;
  mutable c_bytes_written : int;
}

let of_spans spans =
  (* Ids are assigned at span begin, so a parent's id is always smaller
     than its children's: processing in id order guarantees the parent
     node exists before any child asks for it. *)
  let spans =
    List.sort (fun a b -> compare a.Trace.id b.Trace.id) spans
  in
  let sums : (int, child_sum) Hashtbl.t = Hashtbl.create 64 in
  let sum_of id =
    match Hashtbl.find_opt sums id with
    | Some s -> s
    | None ->
      let s =
        {
          c_model = 0.0;
          c_seeks = 0;
          c_blocks_read = 0;
          c_blocks_written = 0;
          c_bytes_read = 0;
          c_bytes_written = 0;
        }
      in
      Hashtbl.add sums id s;
      s
  in
  let known = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace known s.Trace.id ()) spans;
  List.iter
    (fun (s : Trace.span) ->
      if s.Trace.parent <> 0 && Hashtbl.mem known s.Trace.parent then begin
        let c = sum_of s.Trace.parent in
        c.c_model <- c.c_model +. Trace.model_seconds s;
        c.c_seeks <- c.c_seeks + s.Trace.seeks;
        c.c_blocks_read <- c.c_blocks_read + s.Trace.blocks_read;
        c.c_blocks_written <- c.c_blocks_written + s.Trace.blocks_written;
        c.c_bytes_read <- c.c_bytes_read + s.Trace.bytes_read;
        c.c_bytes_written <- c.c_bytes_written + s.Trace.bytes_written
      end)
    spans;
  let t = { tree = []; span_count = List.length spans } in
  let node_of_span : (int, node) Hashtbl.t = Hashtbl.create 64 in
  let locate (s : Trace.span) =
    let parent =
      if s.Trace.parent = 0 then None
      else Hashtbl.find_opt node_of_span s.Trace.parent
    in
    let siblings, parent_path =
      match parent with
      | Some p -> (p.children, p.path)
      | None -> (t.tree, [])
    in
    match List.find_opt (fun n -> String.equal n.name s.Trace.name) siblings with
    | Some n -> n
    | None ->
      let n = fresh_node ~path:(parent_path @ [ s.Trace.name ]) s.Trace.name in
      (match parent with
      | Some p -> p.children <- n :: p.children
      | None -> t.tree <- n :: t.tree);
      n
  in
  List.iter
    (fun (s : Trace.span) ->
      let n = locate s in
      Hashtbl.replace node_of_span s.Trace.id n;
      let model = Trace.model_seconds s in
      let c =
        match Hashtbl.find_opt sums s.Trace.id with
        | Some c -> c
        | None ->
          {
            c_model = 0.0;
            c_seeks = 0;
            c_blocks_read = 0;
            c_blocks_written = 0;
            c_bytes_read = 0;
            c_bytes_written = 0;
          }
      in
      n.calls <- n.calls + 1;
      n.total_model <- n.total_model +. model;
      n.self_model <- n.self_model +. Float.max 0.0 (model -. c.c_model);
      n.seeks <- n.seeks + s.Trace.seeks;
      n.self_seeks <- n.self_seeks + (s.Trace.seeks - c.c_seeks);
      n.blocks_read <- n.blocks_read + s.Trace.blocks_read;
      n.self_blocks_read <- n.self_blocks_read + (s.Trace.blocks_read - c.c_blocks_read);
      n.blocks_written <- n.blocks_written + s.Trace.blocks_written;
      n.self_blocks_written <-
        n.self_blocks_written + (s.Trace.blocks_written - c.c_blocks_written);
      n.bytes_read <- n.bytes_read + s.Trace.bytes_read;
      n.self_bytes_read <- n.self_bytes_read + (s.Trace.bytes_read - c.c_bytes_read);
      n.bytes_written <- n.bytes_written + s.Trace.bytes_written;
      n.self_bytes_written <-
        n.self_bytes_written + (s.Trace.bytes_written - c.c_bytes_written))
    spans;
  let by_total a b = Float.compare b.total_model a.total_model in
  let rec sort_children n =
    n.children <- List.sort by_total n.children;
    List.iter sort_children n.children
  in
  t.tree <- List.sort by_total t.tree;
  List.iter sort_children t.tree;
  t

let roots t = t.tree
let span_count t = t.span_count

let total_model t =
  List.fold_left (fun acc n -> acc +. n.total_model) 0.0 t.tree

let nodes t =
  let rec go acc n = List.fold_left go (n :: acc) n.children in
  List.rev (List.fold_left go [] t.tree)

let find t path =
  let rec go siblings = function
    | [] -> None
    | [ name ] -> List.find_opt (fun n -> String.equal n.name name) siblings
    | name :: rest -> (
      match List.find_opt (fun n -> String.equal n.name name) siblings with
      | Some n -> go n.children rest
      | None -> None)
  in
  go t.tree path

let path_string n = String.concat "/" n.path

let top_self ?(k = 10) ?under t =
  let pool =
    match under with
    | None -> nodes t
    | Some path -> (
      match find t path with
      | None -> []
      | Some n ->
        let rec go acc n = List.fold_left go (n :: acc) n.children in
        List.rev (go [] n))
  in
  let sorted =
    List.sort (fun a b -> Float.compare b.self_model a.self_model) pool
  in
  List.filteri (fun i _ -> i < k) sorted

let folded t =
  let buf = Buffer.create 1024 in
  let rec go n =
    if n.self_model > 0.0 || n.children = [] then
      Buffer.add_string buf
        (Printf.sprintf "%s %.9f\n" (String.concat ";" n.path) n.self_model);
    List.iter go n.children
  in
  List.iter go t.tree;
  Buffer.contents buf

let rec node_json n =
  Json.Obj
    [
      ("name", Json.Str n.name);
      ("calls", Json.int n.calls);
      ("total_model_s", Json.Num n.total_model);
      ("self_model_s", Json.Num n.self_model);
      ("seeks", Json.int n.seeks);
      ("self_seeks", Json.int n.self_seeks);
      ("blocks_read", Json.int n.blocks_read);
      ("self_blocks_read", Json.int n.self_blocks_read);
      ("blocks_written", Json.int n.blocks_written);
      ("self_blocks_written", Json.int n.self_blocks_written);
      ("bytes_read", Json.int n.bytes_read);
      ("self_bytes_read", Json.int n.self_bytes_read);
      ("bytes_written", Json.int n.bytes_written);
      ("self_bytes_written", Json.int n.self_bytes_written);
      ("children", Json.Arr (List.map node_json n.children));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "waveidx-profile/1");
      ("unit", Json.Str "model-seconds");
      ("total_model_s", Json.Num (total_model t));
      ("spans", Json.int t.span_count);
      ("roots", Json.Arr (List.map node_json t.tree));
    ]
