type point = { tick : int; day : int; value : float }

(* One bounded ring per series name: [buf] is allocated lazily up to
   [cap]; once full, [head] walks forward and the oldest point is
   overwritten.  Points are plain immutable records, so handing them
   out never exposes the ring's mutation. *)
type ring = { mutable buf : point array; mutable len : int; mutable head : int }

type t = {
  r_cap : int;
  rings : (string, ring) Hashtbl.t;
  mutable ticks : int;
}

let schema = "waveidx-series/1"

let create ?(cap = 2048) () =
  if cap < 1 then invalid_arg "Series.create: cap < 1";
  { r_cap = cap; rings = Hashtbl.create 32; ticks = 0 }

let cap t = t.r_cap
let tick t = t.ticks

let zero_point = { tick = 0; day = 0; value = 0.0 }

let push t r p =
  if r.len < t.r_cap then begin
    if r.len = Array.length r.buf then begin
      let bigger =
        Array.make (min t.r_cap (max 16 (2 * Array.length r.buf))) zero_point
      in
      Array.blit r.buf 0 bigger 0 r.len;
      r.buf <- bigger
    end;
    r.buf.((r.head + r.len) mod Array.length r.buf) <- p;
    r.len <- r.len + 1
  end
  else begin
    r.buf.(r.head) <- p;
    r.head <- (r.head + 1) mod Array.length r.buf
  end

let record t ~name ~day value =
  if Float.is_finite value then begin
    let r =
      match Hashtbl.find_opt t.rings name with
      | Some r -> r
      | None ->
        let r = { buf = [||]; len = 0; head = 0 } in
        Hashtbl.add t.rings name r;
        r
    in
    push t r { tick = t.ticks; day; value }
  end

let sample ?registry t ~day =
  t.ticks <- t.ticks + 1;
  List.iter
    (fun (name, v) ->
      match (v : Metrics.value) with
      | `Counter x | `Gauge x -> record t ~name ~day x
      | `Histogram None -> ()
      | `Histogram (Some s) ->
        record t ~name:(name ^ ".mean") ~day s.Metrics.mean;
        record t ~name:(name ^ ".p50") ~day s.Metrics.p50;
        record t ~name:(name ^ ".p95") ~day s.Metrics.p95;
        record t ~name:(name ^ ".p99") ~day s.Metrics.p99)
    (Metrics.snapshot ?registry ())

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.rings []
  |> List.sort String.compare

let length t name =
  match Hashtbl.find_opt t.rings name with None -> 0 | Some r -> r.len

let points t name =
  match Hashtbl.find_opt t.rings name with
  | None -> []
  | Some r ->
    List.init r.len (fun i -> r.buf.((r.head + i) mod Array.length r.buf))

let last_n t name n =
  match Hashtbl.find_opt t.rings name with
  | None -> []
  | Some r ->
    let n = max 0 (min n r.len) in
    List.init n (fun i ->
        r.buf.((r.head + r.len - n + i) mod Array.length r.buf))

(* Collapse mid-day ticks to the last point of each distinct day: a
   linear scan keeping a point only when the next one belongs to a
   different day. *)
let daily t name =
  let rec keep_last = function
    | [] -> []
    | [ p ] -> [ p ]
    | p :: (q :: _ as rest) ->
      if p.day = q.day then keep_last rest else p :: keep_last rest
  in
  keep_last (points t name)

type window_stats = {
  w_count : int;
  w_mean : float;
  w_min : float;
  w_max : float;
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
}

let window_stats t name ~n =
  match last_n t name n with
  | [] -> None
  | ps ->
    let xs = Array.of_list (List.map (fun p -> p.value) ps) in
    let sum = Array.fold_left ( +. ) 0.0 xs in
    Some
      {
        w_count = Array.length xs;
        w_mean = sum /. float_of_int (Array.length xs);
        w_min = Array.fold_left Float.min xs.(0) xs;
        w_max = Array.fold_left Float.max xs.(0) xs;
        w_p50 = Wave_util.Stats.percentile xs 50.0;
        w_p95 = Wave_util.Stats.percentile xs 95.0;
        w_p99 = Wave_util.Stats.percentile xs 99.0;
      }

let trend t name ~n =
  match last_n t name n with
  | [] | [ _ ] -> None
  | ps ->
    let pts =
      Array.of_list
        (List.mapi (fun i p -> (float_of_int i, p.value)) ps)
    in
    (* Degenerate x cannot happen (indices are distinct), but a
       constant series is fine: slope 0. *)
    let slope, _ = Wave_util.Stats.linear_regression pts in
    Some slope

let spark_levels = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                      "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 32) t name =
  match last_n t name width with
  | [] -> ""
  | ps ->
    let xs = List.map (fun p -> p.value) ps in
    let lo = List.fold_left Float.min (List.hd xs) xs in
    let hi = List.fold_left Float.max (List.hd xs) xs in
    let level v =
      if hi = lo then 3
      else
        let k = int_of_float ((v -. lo) /. (hi -. lo) *. 7.0 +. 0.5) in
        max 0 (min 7 k)
    in
    String.concat "" (List.map (fun v -> spark_levels.(level v)) xs)

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("cap", Json.int t.r_cap);
      ("ticks", Json.int t.ticks);
      ( "series",
        Json.Arr
          (List.map
             (fun name ->
               Json.Obj
                 [
                   ("name", Json.Str name);
                   ( "points",
                     Json.Arr
                       (List.map
                          (fun p ->
                            Json.Obj
                              [
                                ("tick", Json.int p.tick);
                                ("day", Json.int p.day);
                                ("value", Json.Num p.value);
                              ])
                          (points t name)) );
                 ])
             (names t)) );
    ]
