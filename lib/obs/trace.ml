type tags = (string * string) list

type span = {
  id : int;
  parent : int;
  name : string;
  tags : tags;
  start_model : float;
  start_wall : float;
  mutable end_model : float;
  mutable end_wall : float;
  mutable seeks : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type instant = {
  i_name : string;
  i_tags : tags;
  at_model : float;
  at_wall : float;
}

let model_seconds s = s.end_model -. s.start_model
let wall_seconds s = s.end_wall -. s.start_wall

(* --- global tracer state -------------------------------------------- *)

let enabled = ref false
let model_now = ref 0.0
let model_clock : (unit -> float) option ref = ref None
let stack : span list ref = ref []
let finished : span list ref = ref [] (* newest first *)
let recorded_instants : instant list ref = ref [] (* newest first *)
let next_id = ref 0

let now_model () =
  match !model_clock with Some f -> f () | None -> !model_now

(* The flight recorder lives below this module; give it our model
   clock so its events carry model timestamps during traced runs. *)
let () = Recorder.set_model_clock now_model

let now_wall () = Unix.gettimeofday ()

let is_enabled () = !enabled
let enable () = enabled := true

let disable () =
  enabled := false;
  model_clock := None

let reset () =
  finished := [];
  recorded_instants := [];
  model_now := 0.0

let set_model_clock f = model_clock := Some f

(* --- recording ------------------------------------------------------ *)

let begin_span tags name =
  incr next_id;
  let s =
    {
      id = !next_id;
      parent = (match !stack with [] -> 0 | p :: _ -> p.id);
      name;
      tags;
      start_model = now_model ();
      start_wall = now_wall ();
      end_model = 0.0;
      end_wall = 0.0;
      seeks = 0;
      blocks_read = 0;
      blocks_written = 0;
      bytes_read = 0;
      bytes_written = 0;
    }
  in
  stack := s :: !stack;
  s

let end_span s =
  s.end_model <- now_model ();
  s.end_wall <- now_wall ();
  (match !stack with
  | top :: rest when top == s -> stack := rest
  | _ ->
    (* Out-of-order unwind (an exception skipped intermediate frames):
       drop the span wherever it sits. *)
    stack := List.filter (fun x -> x != s) !stack);
  finished := s :: !finished;
  Recorder.record_span ~name:s.name ~model_s:(model_seconds s) ~seeks:s.seeks
    ~blocks_read:s.blocks_read ~blocks_written:s.blocks_written
    ~bytes_read:s.bytes_read ~bytes_written:s.bytes_written

let with_span ?(tags = []) name f =
  if not !enabled then f ()
  else begin
    let s = begin_span tags name in
    Fun.protect ~finally:(fun () -> end_span s) f
  end

let instant ?(tags = []) name =
  if !enabled then
    recorded_instants :=
      { i_name = name; i_tags = tags; at_model = now_model (); at_wall = now_wall () }
      :: !recorded_instants

(* --- ambient disk hooks --------------------------------------------- *)

let on_seek () =
  if !enabled then List.iter (fun s -> s.seeks <- s.seeks + 1) !stack

let on_read ~blocks ~bytes =
  if !enabled then
    List.iter
      (fun s ->
        s.blocks_read <- s.blocks_read + blocks;
        s.bytes_read <- s.bytes_read + bytes)
      !stack

let on_write ~blocks ~bytes =
  if !enabled then
    List.iter
      (fun s ->
        s.blocks_written <- s.blocks_written + blocks;
        s.bytes_written <- s.bytes_written + bytes)
      !stack

let on_model_seconds dt = if !enabled then model_now := !model_now +. dt

(* --- inspection ----------------------------------------------------- *)

let spans () = List.rev !finished
let instants () = List.rev !recorded_instants
let open_depth () = List.length !stack

let has_tags s tags =
  List.for_all
    (fun (k, v) ->
      match List.assoc_opt k s.tags with Some v' -> String.equal v v' | None -> false)
    tags

let find_spans ?(tags = []) name =
  List.filter (fun s -> String.equal s.name name && has_tags s tags) (spans ())
