(** Always-on metrics registry: named counters, gauges, and latency
    histograms.

    Handles are interned by name: [counter "x"] returns the same
    counter every time, creating it on first use.  Recording into a
    handle is a single mutable-field update, cheap enough to leave in
    hot paths unconditionally (unlike spans, metrics are not gated on
    {!Trace.is_enabled}).

    Histograms keep every observation; {!hist_summary} reduces them
    with {!Wave_util.Stats} (mean, min/max, p50/p95/p99).  A name maps
    to exactly one kind — re-registering ["x"] as a different kind
    raises [Invalid_argument]. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** The process-wide registry used when [?registry] is omitted. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge
val histogram : ?registry:registry -> string -> histogram

val inc : ?by:float -> counter -> unit
(** [by] defaults to [1.] and must be non-negative. *)

val counter_value : counter -> float

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val observe : histogram -> float -> unit
val hist_count : histogram -> int

val hist_values : histogram -> float array
(** A copy of the raw observations, in recording order. *)

type hist_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val hist_summary : histogram -> hist_summary option
(** [None] for an empty histogram. *)

val reset : registry -> unit
(** Zero every counter and gauge and clear every histogram; handles
    stay valid. *)

val to_json : registry -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count, mean, min, max, p50, p95, p99}}}] with names sorted. *)

val dump : registry -> string
(** Human-readable one-line-per-metric rendering, names sorted. *)
