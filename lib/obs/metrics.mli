(** Always-on metrics registry: named counters, gauges, and latency
    histograms.

    Handles are interned by name: [counter "x"] returns the same
    counter every time, creating it on first use.  Recording into a
    handle is a single mutable-field update, cheap enough to leave in
    hot paths unconditionally (unlike spans, metrics are not gated on
    {!Trace.is_enabled}).

    Histograms are {e bounded}: each keeps at most [cap] observations
    (default {!default_histogram_cap}).  Below the cap every
    observation is retained exactly; above it the retained set is a
    uniform random sample (reservoir algorithm R with a deterministic
    per-histogram PRNG seeded from the name, so runs are
    reproducible).  Count, mean, min and max are always exact — they
    are maintained as running values — while percentiles are computed
    over the reservoir, with sampling error O(1/sqrt(cap)).  A
    week-long simulation therefore holds O(cap) floats per histogram
    instead of one per observation.

    A name maps to exactly one kind — re-registering ["x"] as a
    different kind raises [Invalid_argument]. *)

type registry
type counter
type gauge
type histogram

val create : unit -> registry

val default : registry
(** The process-wide registry used when [?registry] is omitted. *)

val counter : ?registry:registry -> string -> counter
val gauge : ?registry:registry -> string -> gauge

val histogram : ?registry:registry -> ?cap:int -> string -> histogram
(** [cap] (>= 1, default {!default_histogram_cap}) bounds the retained
    reservoir.  Only the first registration's cap counts; later lookups
    of the same name return the existing histogram unchanged. *)

val default_histogram_cap : unit -> int
(** Reservoir bound used when [?cap] is omitted (initially 8192). *)

val set_default_histogram_cap : int -> unit
(** Change the default for histograms created afterwards.  Raises
    [Invalid_argument] below 1. *)

val inc : ?by:float -> counter -> unit
(** [by] defaults to [1.] and must be non-negative. *)

val counter_value : counter -> float

val set : gauge -> float -> unit
(** Also records the update (name, new value, delta) into
    {!Recorder} — gauges are low-frequency per-day / per-transition
    signals, so every change is flight-recorder material. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit

val hist_count : histogram -> int
(** Total observations ever recorded (not the reservoir size). *)

val hist_sample_size : histogram -> int
(** Observations currently retained: [min (hist_count h) cap]. *)

val hist_values : histogram -> float array
(** A copy of the retained observations — every observation while
    under the cap (in recording order), a uniform sample beyond it. *)

type hist_summary = {
  count : int;  (** exact: total observations *)
  mean : float;  (** exact: running sum / count *)
  min : float;  (** exact *)
  max : float;  (** exact *)
  p50 : float;  (** over the reservoir *)
  p95 : float;  (** over the reservoir *)
  p99 : float;  (** over the reservoir *)
}

val hist_summary : histogram -> hist_summary option
(** [None] for an empty histogram. *)

type value =
  [ `Counter of float | `Gauge of float | `Histogram of hist_summary option ]

val lookup : ?registry:registry -> string -> value option
(** Read an existing metric by name without creating it — the alert
    engine's resolution primitive.  [None] when the name was never
    registered. *)

val remove : ?registry:registry -> string -> bool
(** Drop [name]'s binding from the registry (true when it existed) so
    it no longer appears in {!lookup}/{!snapshot}/{!dump}.  An
    outstanding handle keeps working but is detached: re-registering
    the name creates a fresh metric.  The shard router uses this to
    retire stale [shard.<i>.*] gauges when the live arm count is
    smaller than a previous router's. *)

val reset : registry -> unit
(** Zero every counter and gauge and clear every histogram; handles
    stay valid. *)

val reset_all : unit -> unit
(** {!reset} the {!default} registry — call between repeated in-process
    runs (tests, advisor loops) so counters don't accumulate across
    them. *)

val snapshot : ?registry:registry -> unit -> (string * value) list
(** Point-in-time copy of every metric's current value, names sorted.
    Pair with {!reset_all} to measure one run in isolation: snapshot,
    run, snapshot, diff. *)

val to_json : registry -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name:
    {count, mean, min, max, p50, p95, p99}}}] with names sorted. *)

val dump : registry -> string
(** Human-readable one-line-per-metric rendering, names sorted. *)
