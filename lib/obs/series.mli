(** Bounded metric time-series: per-metric ring-buffer histories over
    the {!Metrics} registry.

    Every metric in the registry is point-in-time; this module retains
    {e history}.  A store holds one ring of at most [cap] points per
    series name; {!sample} advances the store's tick and records every
    registry metric at its current value — counters and gauges at face
    value, a histogram as four derived sub-series ([<name>.mean],
    [<name>.p50], [<name>.p95], [<name>.p99] over its reservoir
    summary).  The simulation runner samples at every transition step
    and day boundary, so a series is the trend the alert engine's
    instant rules cannot see: "has query p95 drifted over the last W
    days, or was that one bad transition?"

    Sampling only {e reads} the registry (and never the model disk
    clock), so an attached store cannot perturb a run's day metrics —
    the golden-digest tests hold bit-identical with sampling on.

    Window queries reduce the most recent [n] points: {!window_stats}
    (mean/min/max/p50/p95/p99), {!trend} (least-squares slope per
    sample), {!last_n}, and {!daily} (the last point of each distinct
    day — the day-granular view {!Slo} burn rates are computed over).

    {!to_json} dumps the whole store as a validated
    ["waveidx-series/1"] document ([sim --series-out]); {!sparkline}
    renders a series as a fixed-width unicode strip for the live
    dashboard ([sim --dash]). *)

type point = {
  tick : int;  (** the store's sampling instant that recorded this *)
  day : int;  (** simulation day at recording time *)
  value : float;
}

type t

val schema : string
(** ["waveidx-series/1"] — the {!to_json} schema tag. *)

val create : ?cap:int -> unit -> t
(** A fresh store; [cap] (>= 1, default 2048) bounds every ring — the
    oldest point is dropped when a series exceeds it.  Raises
    [Invalid_argument] below 1. *)

val cap : t -> int

val tick : t -> int
(** Sampling instants so far ({!sample} calls); 0 when fresh. *)

val record : t -> name:string -> day:int -> float -> unit
(** Append one point to [name]'s ring (created on first use) at the
    store's current tick.  Non-finite values are dropped — a series
    holds only plottable numbers. *)

val sample : ?registry:Metrics.registry -> t -> day:int -> unit
(** Advance the tick, then {!record} every metric in the registry
    (default {!Metrics.default}): counters and gauges at face value
    under their own names, each non-empty histogram as
    [<name>.{mean,p50,p95,p99}] from its reservoir summary. *)

val names : t -> string list
(** Series names recorded so far, sorted. *)

val length : t -> string -> int
(** Points currently retained for [name]; 0 for an unknown series. *)

val points : t -> string -> point list
(** All retained points, oldest first; [[]] for an unknown series. *)

val last_n : t -> string -> int -> point list
(** The most recent [n] points, oldest first (fewer when the ring
    holds fewer). *)

val daily : t -> string -> point list
(** The last retained point of each distinct day, oldest first — the
    day-granular collapse of a ring that also holds mid-day
    (transition-step) ticks. *)

type window_stats = {
  w_count : int;
  w_mean : float;
  w_min : float;
  w_max : float;
  w_p50 : float;
  w_p95 : float;
  w_p99 : float;
}

val window_stats : t -> string -> n:int -> window_stats option
(** Reduce the most recent [n] points (all retained points when [n]
    exceeds the ring).  [None] for an empty or unknown series. *)

val trend : t -> string -> n:int -> float option
(** Least-squares slope of value per sample over the most recent [n]
    points (x = 0, 1, ... within the window).  [None] with fewer than
    2 points. *)

val sparkline : ?width:int -> t -> string -> string
(** The most recent [width] (default 32) points as a unicode
    eight-level strip, min-max normalized over the window; a flat
    series renders mid-height, an empty one renders [""]. *)

val to_json : t -> Json.t
(** [{"schema": "waveidx-series/1", "cap": c, "ticks": t, "series":
    [{"name": n, "points": [{"tick", "day", "value"}]}]}] with names
    sorted and points oldest first — the [sim --series-out] document,
    validated by {!Sink.validate_series}. *)
