(** Minimal JSON tree, printer and parser.

    The observability sinks need to both emit machine-readable
    artifacts (JSONL event logs, Chrome [trace_event] files,
    [BENCH_wave.json]) and re-parse them for validation, without
    pulling a JSON dependency into the build.  This module is that
    self-contained substrate: a plain constructor tree, a printer that
    always emits valid JSON (non-finite floats become [null], control
    characters are escaped), and a strict recursive-descent parser.

    Not a streaming parser; inputs are whole strings.  [\uXXXX] escapes
    decode to UTF-8 (surrogate pairs are combined). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val to_string : ?pretty:bool -> t -> string
(** Render as JSON text.  [pretty] (default false) adds newlines and
    two-space indentation. *)

val parse : string -> (t, string) result
(** Parse a complete JSON document; trailing non-whitespace is an
    error.  Error strings carry a character offset. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the first binding of [k], if any; [None]
    on non-objects. *)

val to_float : t -> float option
(** [Num] payload, if the value is a number. *)

val to_str : t -> string option
(** [Str] payload, if the value is a string. *)

val to_list : t -> t list option
(** [Arr] payload, if the value is an array. *)

val equal : t -> t -> bool
(** Structural equality; object key order is significant. *)
