type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* --- printing ------------------------------------------------------- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let pad depth = if pretty then Buffer.add_string buf (String.make (2 * depth) ' ') in
  let nl () = if pretty then Buffer.add_char buf '\n' in
  let rec go depth t =
    match t with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      if Float.is_nan f || f = infinity || f = neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (num_to_string f)
    | Str s -> escape_to buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, v) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if pretty then Buffer.add_char buf ' ';
          go (depth + 1) v)
        kvs;
      nl ();
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
        | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
        | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
        | Some 'u' ->
          advance ();
          let cp = hex4 () in
          let cp =
            (* Combine a high surrogate with the following \uXXXX; a
               surrogate half with no partner is a parse error rather
               than WTF-8 output that other tools would choke on. *)
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              if
                !pos + 6 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
              then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                else fail "unpaired surrogate"
              end
              else fail "unpaired surrogate"
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then fail "unpaired surrogate"
            else cp
          in
          add_utf8 buf cp;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (elements [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "at %d: %s" at msg)

(* --- accessors ------------------------------------------------------ *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> a = b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2 (fun (k, v) (k', v') -> String.equal k k' && equal v v') a b
  | _ -> false
