type clock = [ `Model | `Wall ]

let tags_json tags = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) tags)

let span_json (s : Trace.span) =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("id", Json.int s.Trace.id);
      ("parent", Json.int s.Trace.parent);
      ("name", Json.Str s.Trace.name);
      ("tags", tags_json s.Trace.tags);
      ("start_model_s", Json.Num s.Trace.start_model);
      ("end_model_s", Json.Num s.Trace.end_model);
      ("model_s", Json.Num (Trace.model_seconds s));
      ("start_wall_s", Json.Num s.Trace.start_wall);
      ("end_wall_s", Json.Num s.Trace.end_wall);
      ("wall_s", Json.Num (Trace.wall_seconds s));
      ("seeks", Json.int s.Trace.seeks);
      ("blocks_read", Json.int s.Trace.blocks_read);
      ("blocks_written", Json.int s.Trace.blocks_written);
      ("bytes_read", Json.int s.Trace.bytes_read);
      ("bytes_written", Json.int s.Trace.bytes_written);
    ]

let instant_json (i : Trace.instant) =
  Json.Obj
    [
      ("type", Json.Str "instant");
      ("name", Json.Str i.Trace.i_name);
      ("tags", tags_json i.Trace.i_tags);
      ("model_s", Json.Num i.Trace.at_model);
      ("wall_s", Json.Num i.Trace.at_wall);
    ]

(* Rows sorted by model start time so both sinks read chronologically. *)
let rows ~spans ~instants =
  let xs =
    List.map (fun s -> (s.Trace.start_model, `S s)) spans
    @ List.map (fun i -> (i.Trace.at_model, `I i)) instants
  in
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) xs

let jsonl ~spans ~instants =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (_, row) ->
      let j = match row with `S s -> span_json s | `I i -> instant_json i in
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n')
    (rows ~spans ~instants);
  Buffer.contents buf

let micros seconds = seconds *. 1e6

let chrome_span ~clock (s : Trace.span) =
  let ts, dur =
    match clock with
    | `Model -> (micros s.Trace.start_model, micros (Trace.model_seconds s))
    | `Wall -> (micros s.Trace.start_wall, micros (Trace.wall_seconds s))
  in
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str "wave");
      ("ph", Json.Str "X");
      ("ts", Json.Num ts);
      ("dur", Json.Num (Float.max 0.0 dur));
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.tags
          @ [
              ("span_id", Json.int s.Trace.id);
              ("parent", Json.int s.Trace.parent);
              ("model_s", Json.Num (Trace.model_seconds s));
              ("wall_s", Json.Num (Trace.wall_seconds s));
              ("seeks", Json.int s.Trace.seeks);
              ("blocks_read", Json.int s.Trace.blocks_read);
              ("blocks_written", Json.int s.Trace.blocks_written);
              ("bytes_read", Json.int s.Trace.bytes_read);
              ("bytes_written", Json.int s.Trace.bytes_written);
            ]) );
    ]

let chrome_instant ~clock (i : Trace.instant) =
  let ts =
    match clock with
    | `Model -> micros i.Trace.at_model
    | `Wall -> micros i.Trace.at_wall
  in
  Json.Obj
    [
      ("name", Json.Str i.Trace.i_name);
      ("cat", Json.Str "wave");
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Num ts);
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("args", tags_json i.Trace.i_tags);
    ]

let chrome_json ?(clock = `Model) ~spans ~instants () =
  let events =
    List.map
      (fun (_, row) ->
        match row with
        | `S s -> chrome_span ~clock s
        | `I i -> chrome_instant ~clock i)
      (rows ~spans ~instants)
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.Str "waveidx");
            ( "clock",
              Json.Str (match clock with `Model -> "model-disk" | `Wall -> "wall") );
          ] );
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_jsonl ~path ~spans ~instants =
  write_file path (jsonl ~spans ~instants)

let write_chrome ?(clock = `Model) ~path ~spans ~instants () =
  write_file path (Json.to_string ~pretty:true (chrome_json ~clock ~spans ~instants ()))

(* --- validation ----------------------------------------------------- *)

let validate_event i ev =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
  let num k = Option.bind (Json.member k ev) Json.to_float in
  let str k = Option.bind (Json.member k ev) Json.to_str in
  match str "name" with
  | None -> fail "missing string \"name\""
  | Some _ -> (
    match str "ph" with
    | None -> fail "missing string \"ph\""
    | Some ph -> (
      match num "ts" with
      | None -> fail "missing numeric \"ts\""
      | Some ts when Float.is_nan ts -> fail "non-finite \"ts\""
      | Some _ -> (
        match (num "pid", num "tid") with
        | Some _, Some _ -> (
          if ph <> "X" then Ok ()
          else
            match num "dur" with
            | Some d when d >= 0.0 -> Ok ()
            | Some _ -> fail "negative \"dur\""
            | None -> fail "\"X\" event missing \"dur\"")
        | _ -> fail "missing \"pid\"/\"tid\"")))

let validate_chrome j =
  match Json.member "traceEvents" j with
  | None -> Error "missing \"traceEvents\""
  | Some events -> (
    match Json.to_list events with
    | None -> Error "\"traceEvents\" is not an array"
    | Some evs ->
      let rec go i = function
        | [] -> Ok (List.length evs)
        | ev :: rest -> (
          match validate_event i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 evs)

let read_parse path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" path e)
  | Ok j -> Ok j

let validate_chrome_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_chrome j

(* --- bench snapshot validation --------------------------------------- *)

let bench_schema = "waveidx-bench/3"

let validate_benchmark i b =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "benchmark %d: %s" i m)) fmt
  in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let ( let* ) = Result.bind in
  let non_negative o name keys =
    List.fold_left
      (fun acc key ->
        let* () = acc in
        match num key o with
        | Some v when v >= 0.0 -> Ok ()
        | Some _ -> fail "%s.%s is negative" name key
        | None -> fail "%s missing numeric %S" name key)
      (Ok ()) keys
  in
  let* () =
    match str "name" b with
    | None -> fail "missing string \"name\""
    | Some _ -> Ok ()
  in
  let* () = non_negative b "benchmark" [ "p50"; "p95" ] in
  let* () =
    match num "runs" b with
    | Some r when r >= 1.0 -> Ok ()
    | Some _ -> fail "\"runs\" below 1"
    | None -> fail "missing numeric \"runs\""
  in
  let* () =
    match Json.member "cache" b with
    | None -> Ok ()
    | Some c -> (
      match num "hit_ratio" c with
      | Some r when r >= 0.0 && r <= 1.0 ->
        non_negative c "cache" [ "hits"; "misses"; "frames" ]
      | Some _ -> fail "cache.hit_ratio outside [0, 1]"
      | None -> fail "cache missing numeric \"hit_ratio\"")
  in
  match Json.member "writeback" b with
  | None -> Ok ()
  | Some wb ->
    non_negative wb "writeback"
      [ "writes_coalesced"; "flushes"; "flushed_blocks" ]

let validate_bench j =
  let str k o = Option.bind (Json.member k o) Json.to_str in
  match str "schema" j with
  | None -> Error "missing string \"schema\""
  | Some s when s <> bench_schema ->
    Error (Printf.sprintf "schema %S, expected %S" s bench_schema)
  | Some _ -> (
    match str "unit" j with
    | Some "model-seconds" -> (
      match Option.bind (Json.member "benchmarks" j) Json.to_list with
      | None -> Error "missing \"benchmarks\" array"
      | Some [] -> Error "empty \"benchmarks\" array"
      | Some bs ->
        let rec go i = function
          | [] -> Ok (List.length bs)
          | b :: rest -> (
            match validate_benchmark i b with
            | Ok () -> go (i + 1) rest
            | Error e -> Error e)
        in
        go 0 bs)
    | Some u -> Error (Printf.sprintf "unit %S, expected \"model-seconds\"" u)
    | None -> Error "missing string \"unit\"")

let validate_bench_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_bench j
