type clock = [ `Model | `Wall ]

let tags_json tags = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) tags)

let span_json (s : Trace.span) =
  Json.Obj
    [
      ("type", Json.Str "span");
      ("id", Json.int s.Trace.id);
      ("parent", Json.int s.Trace.parent);
      ("name", Json.Str s.Trace.name);
      ("tags", tags_json s.Trace.tags);
      ("start_model_s", Json.Num s.Trace.start_model);
      ("end_model_s", Json.Num s.Trace.end_model);
      ("model_s", Json.Num (Trace.model_seconds s));
      ("start_wall_s", Json.Num s.Trace.start_wall);
      ("end_wall_s", Json.Num s.Trace.end_wall);
      ("wall_s", Json.Num (Trace.wall_seconds s));
      ("seeks", Json.int s.Trace.seeks);
      ("blocks_read", Json.int s.Trace.blocks_read);
      ("blocks_written", Json.int s.Trace.blocks_written);
      ("bytes_read", Json.int s.Trace.bytes_read);
      ("bytes_written", Json.int s.Trace.bytes_written);
    ]

let instant_json (i : Trace.instant) =
  Json.Obj
    [
      ("type", Json.Str "instant");
      ("name", Json.Str i.Trace.i_name);
      ("tags", tags_json i.Trace.i_tags);
      ("model_s", Json.Num i.Trace.at_model);
      ("wall_s", Json.Num i.Trace.at_wall);
    ]

(* Rows sorted by model start time so both sinks read chronologically. *)
let rows ~spans ~instants =
  let xs =
    List.map (fun s -> (s.Trace.start_model, `S s)) spans
    @ List.map (fun i -> (i.Trace.at_model, `I i)) instants
  in
  List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) xs

let jsonl ~spans ~instants =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (_, row) ->
      let j = match row with `S s -> span_json s | `I i -> instant_json i in
      Buffer.add_string buf (Json.to_string j);
      Buffer.add_char buf '\n')
    (rows ~spans ~instants);
  Buffer.contents buf

let micros seconds = seconds *. 1e6

let chrome_span ~clock (s : Trace.span) =
  let ts, dur =
    match clock with
    | `Model -> (micros s.Trace.start_model, micros (Trace.model_seconds s))
    | `Wall -> (micros s.Trace.start_wall, micros (Trace.wall_seconds s))
  in
  Json.Obj
    [
      ("name", Json.Str s.Trace.name);
      ("cat", Json.Str "wave");
      ("ph", Json.Str "X");
      ("ts", Json.Num ts);
      ("dur", Json.Num (Float.max 0.0 dur));
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ( "args",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Str v)) s.Trace.tags
          @ [
              ("span_id", Json.int s.Trace.id);
              ("parent", Json.int s.Trace.parent);
              ("model_s", Json.Num (Trace.model_seconds s));
              ("wall_s", Json.Num (Trace.wall_seconds s));
              ("seeks", Json.int s.Trace.seeks);
              ("blocks_read", Json.int s.Trace.blocks_read);
              ("blocks_written", Json.int s.Trace.blocks_written);
              ("bytes_read", Json.int s.Trace.bytes_read);
              ("bytes_written", Json.int s.Trace.bytes_written);
            ]) );
    ]

let chrome_instant ~clock (i : Trace.instant) =
  let ts =
    match clock with
    | `Model -> micros i.Trace.at_model
    | `Wall -> micros i.Trace.at_wall
  in
  Json.Obj
    [
      ("name", Json.Str i.Trace.i_name);
      ("cat", Json.Str "wave");
      ("ph", Json.Str "i");
      ("s", Json.Str "t");
      ("ts", Json.Num ts);
      ("pid", Json.int 1);
      ("tid", Json.int 1);
      ("args", tags_json i.Trace.i_tags);
    ]

let chrome_json ?(clock = `Model) ~spans ~instants () =
  let events =
    List.map
      (fun (_, row) ->
        match row with
        | `S s -> chrome_span ~clock s
        | `I i -> chrome_instant ~clock i)
      (rows ~spans ~instants)
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr events);
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("producer", Json.Str "waveidx");
            ( "clock",
              Json.Str (match clock with `Model -> "model-disk" | `Wall -> "wall") );
          ] );
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_jsonl ~path ~spans ~instants =
  write_file path (jsonl ~spans ~instants)

let write_chrome ?(clock = `Model) ~path ~spans ~instants () =
  write_file path (Json.to_string ~pretty:true (chrome_json ~clock ~spans ~instants ()))

(* --- validation ----------------------------------------------------- *)

let validate_event i ev =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt in
  let num k = Option.bind (Json.member k ev) Json.to_float in
  let str k = Option.bind (Json.member k ev) Json.to_str in
  match str "name" with
  | None -> fail "missing string \"name\""
  | Some _ -> (
    match str "ph" with
    | None -> fail "missing string \"ph\""
    | Some ph -> (
      match num "ts" with
      | None -> fail "missing numeric \"ts\""
      | Some ts when Float.is_nan ts -> fail "non-finite \"ts\""
      | Some _ -> (
        match (num "pid", num "tid") with
        | Some _, Some _ -> (
          if ph <> "X" then Ok ()
          else
            match num "dur" with
            | Some d when d >= 0.0 -> Ok ()
            | Some _ -> fail "negative \"dur\""
            | None -> fail "\"X\" event missing \"dur\"")
        | _ -> fail "missing \"pid\"/\"tid\"")))

let validate_chrome j =
  match Json.member "traceEvents" j with
  | None -> Error "missing \"traceEvents\""
  | Some events -> (
    match Json.to_list events with
    | None -> Error "\"traceEvents\" is not an array"
    | Some evs ->
      let rec go i = function
        | [] -> Ok (List.length evs)
        | ev :: rest -> (
          match validate_event i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
      in
      go 0 evs)

let read_parse path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.parse contents with
  | Error e -> Error (Printf.sprintf "%s: bad JSON: %s" path e)
  | Ok j -> Ok j

let validate_chrome_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_chrome j

(* --- bench snapshot validation --------------------------------------- *)

(* /5 adds the concurrent-serving series (probe+concurrent/...,
   probe+stopworld/...) measured by the epoch-interleaved runner.
   /6 adds the sharded throughput scaling curve: the four
   throughput+shards/{1,2,4,8} series are required, so a snapshot
   that silently lost its scaling curve fails validation by name.
   /7 adds a required "series" block: per-metric time-series summaries
   (points, last, mean, p95, trend) from the canonical profiled run,
   so a snapshot also shows the trend shape, not just the endpoint
   percentiles. *)
let bench_schema = "waveidx-bench/7"

let required_bench_series =
  [
    "throughput+shards/1"; "throughput+shards/2"; "throughput+shards/4";
    "throughput+shards/8";
  ]

let validate_benchmark i b =
  (* Name the series in every error so a failing corpus line is
     actionable without counting array elements. *)
  let label =
    match Option.bind (Json.member "name" b) Json.to_str with
    | Some name -> Printf.sprintf "benchmark %d (%S)" i name
    | None -> Printf.sprintf "benchmark %d" i
  in
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" label m)) fmt in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let ( let* ) = Result.bind in
  let non_negative o name keys =
    List.fold_left
      (fun acc key ->
        let* () = acc in
        match num key o with
        | Some v when v >= 0.0 -> Ok ()
        | Some _ -> fail "%s.%s is negative" name key
        | None -> fail "%s missing numeric %S" name key)
      (Ok ()) keys
  in
  let* () =
    match str "name" b with
    | None -> fail "missing string \"name\""
    | Some _ -> Ok ()
  in
  let* () = non_negative b "benchmark" [ "p50"; "p95" ] in
  let* () =
    match num "runs" b with
    | Some r when r >= 1.0 -> Ok ()
    | Some _ -> fail "\"runs\" below 1"
    | None -> fail "missing numeric \"runs\""
  in
  let* () =
    match Json.member "cache" b with
    | None -> Ok ()
    | Some c -> (
      match num "hit_ratio" c with
      | Some r when r >= 0.0 && r <= 1.0 ->
        non_negative c "cache" [ "hits"; "misses"; "frames" ]
      | Some _ -> fail "cache.hit_ratio outside [0, 1]"
      | None -> fail "cache missing numeric \"hit_ratio\"")
  in
  match Json.member "writeback" b with
  | None -> Ok ()
  | Some wb ->
    non_negative wb "writeback"
      [ "writes_coalesced"; "flushes"; "flushed_blocks" ]

(* The /4 schema adds a required "profile" summary block: which traced
   run produced it and its hottest nodes by self model-seconds. *)
let validate_profile_block p =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "profile: %s" m)) fmt in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let ( let* ) = Result.bind in
  let* () =
    match str "scheme" p with
    | Some _ -> Ok ()
    | None -> fail "missing string \"scheme\""
  in
  let* () =
    match str "technique" p with
    | Some _ -> Ok ()
    | None -> fail "missing string \"technique\""
  in
  let* () =
    match num "days" p with
    | Some d when d >= 1.0 -> Ok ()
    | Some _ -> fail "\"days\" below 1"
    | None -> fail "missing numeric \"days\""
  in
  let* () =
    match num "total_model_s" p with
    | Some v when v >= 0.0 -> Ok ()
    | Some _ -> fail "\"total_model_s\" is negative"
    | None -> fail "missing numeric \"total_model_s\""
  in
  match Option.bind (Json.member "top" p) Json.to_list with
  | None -> fail "missing \"top\" array"
  | Some [] -> fail "empty \"top\" array"
  | Some tops ->
    let check_top i n =
      let fail fmt =
        Printf.ksprintf (fun m -> Error (Printf.sprintf "profile.top[%d]: %s" i m)) fmt
      in
      let* () =
        match str "path" n with
        | Some _ -> Ok ()
        | None -> fail "missing string \"path\""
      in
      let* () =
        match num "calls" n with
        | Some c when c >= 1.0 -> Ok ()
        | Some _ -> fail "\"calls\" below 1"
        | None -> fail "missing numeric \"calls\""
      in
      List.fold_left
        (fun acc key ->
          let* () = acc in
          match num key n with
          | Some v when v >= 0.0 -> Ok ()
          | Some _ -> fail "%S is negative" key
          | None -> fail "missing numeric %S" key)
        (Ok ())
        [ "self_model_s"; "total_model_s"; "seeks" ]
    in
    let rec go i = function
      | [] -> Ok ()
      | n :: rest -> (
        match check_top i n with Ok () -> go (i + 1) rest | Error e -> Error e)
    in
    go 0 tops

(* The /7 schema's required "series" block: a compact per-metric
   summary of the canonical run's time-series (the full ring dump
   belongs to sim --series-out, not the bench snapshot). *)
let series_schema = "waveidx-series/1"

let validate_series_block sb =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "series: %s" m)) fmt in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let ( let* ) = Result.bind in
  let* () =
    match str "schema" sb with
    | Some s when s = series_schema -> Ok ()
    | Some s -> fail "schema %S, expected %S" s series_schema
    | None -> fail "missing string \"schema\""
  in
  let* () =
    match num "ticks" sb with
    | Some t when t >= 1.0 -> Ok ()
    | Some _ -> fail "\"ticks\" below 1"
    | None -> fail "missing numeric \"ticks\""
  in
  match Option.bind (Json.member "tracked" sb) Json.to_list with
  | None -> fail "missing \"tracked\" array"
  | Some [] -> fail "empty \"tracked\" array"
  | Some tracked ->
    let check i e =
      let fail fmt =
        Printf.ksprintf
          (fun m -> Error (Printf.sprintf "series.tracked[%d]: %s" i m))
          fmt
      in
      let* () =
        match str "name" e with
        | Some _ -> Ok ()
        | None -> fail "missing string \"name\""
      in
      let* () =
        match num "points" e with
        | Some p when p >= 1.0 -> Ok ()
        | Some _ -> fail "\"points\" below 1"
        | None -> fail "missing numeric \"points\""
      in
      let* () =
        List.fold_left
          (fun acc key ->
            let* () = acc in
            match num key e with
            | Some v when Float.is_finite v -> Ok ()
            | Some _ -> fail "non-finite %S" key
            | None -> fail "missing numeric %S" key)
          (Ok ())
          [ "last"; "mean"; "p95" ]
      in
      match Json.member "trend" e with
      | None -> fail "missing \"trend\" (number or null)"
      | Some Json.Null -> Ok ()
      | Some (Json.Num v) when Float.is_finite v -> Ok ()
      | Some _ -> fail "\"trend\" must be a finite number or null"
    in
    let rec go i = function
      | [] -> Ok ()
      | e :: rest -> (
        match check i e with Ok () -> go (i + 1) rest | Error e -> Error e)
    in
    go 0 tracked

let validate_bench j =
  let str k o = Option.bind (Json.member k o) Json.to_str in
  match str "schema" j with
  | None -> Error "missing string \"schema\""
  | Some s when s <> bench_schema ->
    Error (Printf.sprintf "schema %S, expected %S" s bench_schema)
  | Some _ -> (
    match str "unit" j with
    | Some "model-seconds" -> (
      match Option.bind (Json.member "benchmarks" j) Json.to_list with
      | None -> Error "missing \"benchmarks\" array"
      | Some [] -> Error "empty \"benchmarks\" array"
      | Some bs -> (
        let rec go i = function
          | [] -> Ok (List.length bs)
          | b :: rest -> (
            match validate_benchmark i b with
            | Ok () -> go (i + 1) rest
            | Error e -> Error e)
        in
        let series_present name =
          List.exists
            (fun b ->
              match Option.bind (Json.member "name" b) Json.to_str with
              | Some s -> s = name
              | None -> false)
            bs
        in
        match go 0 bs with
        | Error e -> Error e
        | Ok _ when List.exists (fun s -> not (series_present s))
                      required_bench_series ->
          let missing =
            List.filter (fun s -> not (series_present s)) required_bench_series
          in
          Error
            (Printf.sprintf "missing required series %s"
               (String.concat ", "
                  (List.map (Printf.sprintf "%S") missing)))
        | Ok n -> (
          match Json.member "profile" j with
          | None -> Error "missing \"profile\" block"
          | Some p -> (
            match validate_profile_block p with
            | Error e -> Error e
            | Ok () -> (
              match Json.member "series" j with
              | None -> Error "missing \"series\" block"
              | Some sb -> (
                match validate_series_block sb with
                | Error e -> Error e
                | Ok () -> Ok n))))))
    | Some u -> Error (Printf.sprintf "unit %S, expected \"model-seconds\"" u)
    | None -> Error "missing string \"unit\"")

let validate_bench_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_bench j

(* --- bench regression gate -------------------------------------------- *)

type bench_series = { series_name : string; series_p50 : float; series_p95 : float }

(* Lenient on purpose: the gate reads the "benchmarks" array of any
   snapshot version so old baselines stay comparable across schema
   bumps. *)
let bench_series j =
  match Option.bind (Json.member "benchmarks" j) Json.to_list with
  | None -> Error "missing \"benchmarks\" array"
  | Some bs ->
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | b :: rest -> (
        let num k = Option.bind (Json.member k b) Json.to_float in
        match Option.bind (Json.member "name" b) Json.to_str with
        | None -> Error (Printf.sprintf "benchmark %d: missing string \"name\"" i)
        | Some name -> (
          match (num "p50", num "p95") with
          | Some p50, Some p95 ->
            go (i + 1) ({ series_name = name; series_p50 = p50; series_p95 = p95 } :: acc) rest
          | None, _ ->
            Error (Printf.sprintf "benchmark %d (%S): missing numeric \"p50\"" i name)
          | _, None ->
            Error (Printf.sprintf "benchmark %d (%S): missing numeric \"p95\"" i name)))
    in
    go 0 [] bs

let bench_series_file path =
  match read_parse path with
  | Error e -> Error e
  | Ok j -> (
    match bench_series j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok xs -> Ok xs)

type bench_delta = {
  delta_name : string;
  delta_field : string;  (* "p50" | "p95" *)
  baseline_value : float;
  current_value : float;
  delta_pct : float;
}

type bench_comparison = {
  compared : int;
  missing : string list;
  added : string list;
  regressions : bench_delta list;
  improvements : bench_delta list;
}

let pct_delta base cur =
  if base = 0.0 then if cur = 0.0 then 0.0 else infinity
  else (cur -. base) /. base *. 100.0

(* Series measured in machine-dependent wall seconds: real syscall
   timing jitters far beyond any useful threshold, so the gate reports
   their drift without ever classifying it as a regression (vanishing
   still fails via [missing]). *)
let wallclock_series name =
  String.length name >= 16 && String.sub name 0 16 = "transition+file/"

(* Unit class of a bench series, for report labeling: everything the
   model disk measures is model-seconds; the transition+file/ twins are
   machine wall-clock; ratio series (speedups, hit fractions) are
   dimensionless.  Today every non-wall series is model-seconds, but
   the ratio class keeps the report honest if one lands. *)
let series_unit name =
  if wallclock_series name then "wall-s"
  else if
    (let has sub =
       let n = String.length name and m = String.length sub in
       let rec at i = i + m <= n && (String.sub name i m = sub || at (i + 1)) in
       at 0
     in
     has "ratio" || has "speedup")
  then "ratio"
  else "model-s"

let compare_bench ~threshold_pct ~baseline ~current =
  let find name xs = List.find_opt (fun s -> String.equal s.series_name name) xs in
  let regressions = ref [] and improvements = ref [] and compared = ref 0 in
  let consider name field base cur =
    if wallclock_series name then ()
    else
    let d =
      {
        delta_name = name;
        delta_field = field;
        baseline_value = base;
        current_value = cur;
        delta_pct = pct_delta base cur;
      }
    in
    (* The epsilon keeps exact-equal model-second reruns from tripping
       the gate on float formatting noise. *)
    if cur > (base *. (1.0 +. (threshold_pct /. 100.0))) +. 1e-9 then
      regressions := d :: !regressions
    else if base > (cur *. (1.0 +. (threshold_pct /. 100.0))) +. 1e-9 then
      improvements := d :: !improvements
  in
  let missing =
    List.filter_map
      (fun b ->
        match find b.series_name current with
        | None -> Some b.series_name
        | Some c ->
          incr compared;
          consider b.series_name "p50" b.series_p50 c.series_p50;
          consider b.series_name "p95" b.series_p95 c.series_p95;
          None)
      baseline
  in
  let added =
    List.filter_map
      (fun c ->
        match find c.series_name baseline with
        | None -> Some c.series_name
        | Some _ -> None)
      current
  in
  {
    compared = !compared;
    missing;
    added;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
  }

let bench_ok c = c.regressions = [] && c.missing = []

let comparison_report c =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "compared %d series: %d regression(s), %d improvement(s), %d missing, %d new"
    c.compared
    (List.length c.regressions)
    (List.length c.improvements)
    (List.length c.missing) (List.length c.added);
  line
    "units: [model-s] deterministic model-seconds (gated), [wall-s] \
     machine wall-clock (informational, never gated), [ratio] \
     dimensionless";
  let tag n = Printf.sprintf "[%s]" (series_unit n) in
  List.iter
    (fun d ->
      line "  REGRESSION %-40s %-9s %s %.6f -> %.6f (%+.1f%%)" d.delta_name
        (tag d.delta_name) d.delta_field
        d.baseline_value d.current_value d.delta_pct)
    c.regressions;
  List.iter
    (fun n ->
      line "  MISSING    %-40s %-9s (present in baseline, absent now)" n (tag n))
    c.missing;
  List.iter
    (fun d ->
      line "  improved   %-40s %-9s %s %.6f -> %.6f (%+.1f%%)" d.delta_name
        (tag d.delta_name) d.delta_field
        d.baseline_value d.current_value d.delta_pct)
    c.improvements;
  List.iter (fun n -> line "  new        %-40s %-9s" n (tag n)) c.added;
  Buffer.contents buf

(* --- profile documents ------------------------------------------------ *)

let profile_schema = "waveidx-profile/1"

let validate_profile j =
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  let rec check_node path n =
    let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" path m)) fmt in
    match str "name" n with
    | None -> fail "missing string \"name\""
    | Some name -> (
      let here = path ^ "/" ^ name in
      let fail fmt =
        Printf.ksprintf (fun m -> Error (Printf.sprintf "%s: %s" here m)) fmt
      in
      let ( let* ) = Result.bind in
      let* () =
        match num "calls" n with
        | Some c when c >= 1.0 -> Ok ()
        | Some _ -> fail "\"calls\" below 1"
        | None -> fail "missing numeric \"calls\""
      in
      let* () =
        List.fold_left
          (fun acc key ->
            let* () = acc in
            match num key n with
            | Some v when v >= 0.0 -> Ok ()
            | Some _ -> fail "%S is negative" key
            | None -> fail "missing numeric %S" key)
          (Ok ())
          [
            "total_model_s"; "self_model_s"; "seeks"; "self_seeks"; "blocks_read";
            "blocks_written"; "bytes_read"; "bytes_written";
          ]
      in
      match Option.bind (Json.member "children" n) Json.to_list with
      | None -> fail "missing \"children\" array"
      | Some kids ->
        List.fold_left
          (fun acc kid ->
            let* count = acc in
            let* k = check_node here kid in
            Ok (count + k))
          (Ok 1) kids)
  in
  match str "schema" j with
  | None -> Error "missing string \"schema\""
  | Some s when s <> profile_schema ->
    Error (Printf.sprintf "schema %S, expected %S" s profile_schema)
  | Some _ -> (
    match str "unit" j with
    | Some "model-seconds" -> (
      match num "total_model_s" j with
      | None -> Error "missing numeric \"total_model_s\""
      | Some v when v < 0.0 -> Error "\"total_model_s\" is negative"
      | Some _ -> (
        match Option.bind (Json.member "roots" j) Json.to_list with
        | None -> Error "missing \"roots\" array"
        | Some roots ->
          List.fold_left
            (fun acc r ->
              match acc with
              | Error _ as e -> e
              | Ok count -> (
                match check_node "" r with
                | Ok k -> Ok (count + k)
                | Error _ as e -> e))
            (Ok 0) roots))
    | Some u -> Error (Printf.sprintf "unit %S, expected \"model-seconds\"" u)
    | None -> Error "missing string \"unit\"")

let validate_profile_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_profile j

let write_folded ~path profile = write_file path (Profile.folded profile)

let write_profile ~path profile =
  write_file path (Json.to_string ~pretty:true (Profile.to_json profile))

(* --- streaming trace flush -------------------------------------------- *)

(* An armed mid-run flush target: on alert firings and exceptional
   exits the tracer's collected events are written here immediately, so
   the evidence trail survives even if the process never reaches its
   normal end-of-run write.  The flush file is ordinary sink JSONL
   behind one "flush" header line carrying the reason. *)
let flush_target : string option ref = ref None

let set_flush_path p = flush_target := p
let flush_path () = !flush_target

let flush_traces ~reason =
  match !flush_target with
  | None -> ()
  | Some path -> (
    try
      let spans = Trace.spans () and instants = Trace.instants () in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (Json.to_string
           (Json.Obj
              [
                ("type", Json.Str "flush");
                ("reason", Json.Str reason);
                ("spans", Json.int (List.length spans));
                ("instants", Json.int (List.length instants));
              ]));
      Buffer.add_char buf '\n';
      Buffer.add_string buf (jsonl ~spans ~instants);
      write_file path (Buffer.contents buf)
    with Sys_error _ -> ())

(* --- flight-recorder dumps -------------------------------------------- *)

let flight_schema = "waveidx-flight/1"

let validate_flight_event i j =
  let fail fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "event %d: %s" i m)) fmt
  in
  let num k = Option.bind (Json.member k j) Json.to_float in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let ( let* ) = Result.bind in
  let require_num keys =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        match num k with
        | Some v when Float.is_finite v -> Ok ()
        | Some _ -> fail "non-finite %S" k
        | None -> fail "missing numeric %S" k)
      (Ok ()) keys
  in
  let require_str keys =
    List.fold_left
      (fun acc k ->
        let* () = acc in
        match str k with
        | Some _ -> Ok ()
        | None -> fail "missing string %S" k)
      (Ok ()) keys
  in
  let* () = require_num [ "seq"; "model_s"; "wall_s" ] in
  match str "type" with
  | Some "span" ->
    let* () = require_str [ "name" ] in
    require_num
      [ "dur_model_s"; "seeks"; "blocks_read"; "blocks_written"; "bytes_read";
        "bytes_written" ]
  | Some "metric" ->
    let* () = require_str [ "name" ] in
    require_num [ "value"; "delta" ]
  | Some "alert" ->
    let* () = require_str [ "rule"; "metric"; "scope" ] in
    require_num [ "value"; "day" ]
  | Some "io" ->
    let* () = require_str [ "syscall"; "outcome" ] in
    require_num [ "bytes" ]
  | Some "epoch" ->
    let* () = require_str [ "event" ] in
    require_num [ "gen"; "refcount" ]
  | Some t -> fail "unknown type %S" t
  | None -> fail "missing string \"type\""

(* The dump is JSONL, so validation takes the raw text: a header line
   (schema tag, reason, counts) followed by one event object per line
   with strictly increasing "seq".  Returns the event count. *)
let validate_flight text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  match lines with
  | [] -> Error "empty dump"
  | header :: events -> (
    match Json.parse header with
    | Error e -> Error (Printf.sprintf "header: bad JSON: %s" e)
    | Ok h -> (
      let num k = Option.bind (Json.member k h) Json.to_float in
      let str k = Option.bind (Json.member k h) Json.to_str in
      match str "schema" with
      | None -> Error "header: missing string \"schema\""
      | Some s when s <> flight_schema ->
        Error (Printf.sprintf "header: schema %S, expected %S" s flight_schema)
      | Some _ -> (
        match str "reason" with
        | None -> Error "header: missing string \"reason\""
        | Some _ -> (
          match (num "events", num "dropped") with
          | Some ev, Some dr when ev >= 0.0 && dr >= 0.0 -> (
            if int_of_float ev <> List.length events then
              Error
                (Printf.sprintf "header claims %d events, dump has %d"
                   (int_of_float ev) (List.length events))
            else
              let rec go i last_seq = function
                | [] -> Ok (List.length events)
                | line :: rest -> (
                  match Json.parse line with
                  | Error e ->
                    Error (Printf.sprintf "event %d: bad JSON: %s" i e)
                  | Ok j -> (
                    match validate_flight_event i j with
                    | Error e -> Error e
                    | Ok () -> (
                      match Option.bind (Json.member "seq" j) Json.to_float with
                      | Some seq when seq > last_seq -> go (i + 1) seq rest
                      | Some _ ->
                        Error
                          (Printf.sprintf "event %d: non-increasing \"seq\"" i)
                      | None -> assert false)))
              in
              go 0 neg_infinity events)
          | _ -> Error "header: missing numeric \"events\"/\"dropped\""))))

let validate_flight_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> validate_flight text

(* --- profile-node gate ------------------------------------------------ *)

type profile_top_node = {
  top_path : string;
  top_calls : int;
  top_self : float;
  top_total : float;
}

(* Extract the bench snapshot's "profile" block top nodes — the flat
   hot list committed in BENCH_wave.json, not a full tree. *)
let bench_profile_top j =
  match Json.member "profile" j with
  | None -> Error "missing \"profile\" block"
  | Some p -> (
    match Option.bind (Json.member "top" p) Json.to_list with
    | None -> Error "profile: missing \"top\" array"
    | Some tops ->
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | n :: rest -> (
          let num k = Option.bind (Json.member k n) Json.to_float in
          match Option.bind (Json.member "path" n) Json.to_str with
          | None ->
            Error (Printf.sprintf "profile.top[%d]: missing string \"path\"" i)
          | Some path -> (
            match (num "calls", num "self_model_s", num "total_model_s") with
            | Some calls, Some self, Some total ->
              go (i + 1)
                ({
                   top_path = path;
                   top_calls = int_of_float calls;
                   top_self = self;
                   top_total = total;
                 }
                :: acc)
                rest
            | _ ->
              Error
                (Printf.sprintf
                   "profile.top[%d] (%S): missing numeric \
                    \"calls\"/\"self_model_s\"/\"total_model_s\""
                   i path)))
      in
      go 0 [] tops)

let bench_profile_top_file path =
  match read_parse path with
  | Error e -> Error e
  | Ok j -> (
    match bench_profile_top j with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok xs -> Ok xs)

type profile_gate = {
  pg_compared : int;
  pg_missing : string list;
  pg_regressions : bench_delta list;
  pg_improvements : bench_delta list;
}

(* Self model-seconds carry float-subtraction noise (self = total -
   children, clamped at zero), so the gate's absolute epsilon is the
   profiler's own conservation tolerance, not the series gate's 1e-9 —
   a baseline node with self 0.0 must not trip on 1e-12 of rounding. *)
let profile_epsilon = 1e-6

let compare_profile_top ~threshold_pct ~baseline ~(current : Profile.t) =
  let regressions = ref [] and improvements = ref [] and compared = ref 0 in
  let consider path field base cur =
    let d =
      {
        delta_name = path;
        delta_field = field;
        baseline_value = base;
        current_value = cur;
        delta_pct = pct_delta base cur;
      }
    in
    if cur > (base *. (1.0 +. (threshold_pct /. 100.0))) +. profile_epsilon then
      regressions := d :: !regressions
    else if base > (cur *. (1.0 +. (threshold_pct /. 100.0))) +. profile_epsilon
    then improvements := d :: !improvements
  in
  let missing =
    List.filter_map
      (fun b ->
        match Profile.find current (String.split_on_char '/' b.top_path) with
        | None -> Some b.top_path
        | Some n ->
          incr compared;
          consider b.top_path "self_model_s" b.top_self
            n.Profile.self_model;
          consider b.top_path "total_model_s" b.top_total
            n.Profile.total_model;
          None)
      baseline
  in
  {
    pg_compared = !compared;
    pg_missing = missing;
    pg_regressions = List.rev !regressions;
    pg_improvements = List.rev !improvements;
  }

let profile_gate_ok g = g.pg_regressions = [] && g.pg_missing = []

let profile_gate_report g =
  let buf = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line
    "profile-node gate: %d node(s) compared, %d regression(s), %d \
     improvement(s), %d missing"
    g.pg_compared
    (List.length g.pg_regressions)
    (List.length g.pg_improvements)
    (List.length g.pg_missing);
  List.iter
    (fun d ->
      line "  REGRESSION %-58s %s %.6f -> %.6f (%+.1f%%)" d.delta_name
        d.delta_field d.baseline_value d.current_value d.delta_pct)
    g.pg_regressions;
  List.iter
    (fun p -> line "  MISSING    %s (baseline hot node absent from this run)" p)
    g.pg_missing;
  List.iter
    (fun d ->
      line "  improved   %-58s %s %.6f -> %.6f (%+.1f%%)" d.delta_name
        d.delta_field d.baseline_value d.current_value d.delta_pct)
    g.pg_improvements;
  Buffer.contents buf

(* --- series dumps ----------------------------------------------------- *)

let validate_series j =
  let str k o = Option.bind (Json.member k o) Json.to_str in
  let num k o = Option.bind (Json.member k o) Json.to_float in
  match str "schema" j with
  | None -> Error "missing string \"schema\""
  | Some s when s <> series_schema ->
    Error (Printf.sprintf "schema %S, expected %S" s series_schema)
  | Some _ -> (
    match num "cap" j with
    | None -> Error "missing numeric \"cap\""
    | Some c when c < 1.0 -> Error "\"cap\" below 1"
    | Some cap -> (
      match num "ticks" j with
      | None -> Error "missing numeric \"ticks\""
      | Some t when t < 0.0 -> Error "negative \"ticks\""
      | Some _ -> (
        match Option.bind (Json.member "series" j) Json.to_list with
        | None -> Error "missing \"series\" array"
        | Some entries ->
          let validate_points label ps =
            let rec go i last_tick count = function
              | [] -> Ok count
              | p :: rest -> (
                let fail fmt =
                  Printf.ksprintf
                    (fun m ->
                      Error (Printf.sprintf "%s point %d: %s" label i m))
                    fmt
                in
                match
                  ( Option.bind (Json.member "tick" p) Json.to_float,
                    Option.bind (Json.member "day" p) Json.to_float,
                    Option.bind (Json.member "value" p) Json.to_float )
                with
                | None, _, _ -> fail "missing numeric \"tick\""
                | _, None, _ -> fail "missing numeric \"day\""
                | _, _, None -> fail "missing numeric \"value\""
                | Some tk, Some _, Some v ->
                  if tk < 0.0 then fail "negative \"tick\""
                  else if tk < last_tick then fail "decreasing \"tick\""
                  else if not (Float.is_finite v) then fail "non-finite \"value\""
                  else go (i + 1) tk (count + 1) rest)
            in
            go 0 neg_infinity 0 ps
          in
          let rec go i total = function
            | [] -> Ok total
            | e :: rest -> (
              match str "name" e with
              | None ->
                Error (Printf.sprintf "series %d: missing string \"name\"" i)
              | Some name -> (
                match Option.bind (Json.member "points" e) Json.to_list with
                | None ->
                  Error
                    (Printf.sprintf "series %d (%S): missing \"points\" array" i
                       name)
                | Some ps when List.length ps > int_of_float cap ->
                  Error
                    (Printf.sprintf "series %d (%S): %d points exceed cap %d" i
                       name (List.length ps) (int_of_float cap))
                | Some ps -> (
                  match
                    validate_points (Printf.sprintf "series %d (%S)" i name) ps
                  with
                  | Error e -> Error e
                  | Ok n -> go (i + 1) (total + n) rest)))
          in
          go 0 0 entries)))

let validate_series_file path =
  match read_parse path with Error e -> Error e | Ok j -> validate_series j

(* --- OpenMetrics text exposition -------------------------------------- *)

(* Prometheus/OpenMetrics metric names are [a-zA-Z_:][a-zA-Z0-9_:]*;
   registry names use dots, so every other character maps to '_'. *)
let om_name name =
  let b = Buffer.create (String.length name) in
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> Buffer.add_char b c
      | '0' .. '9' -> if i = 0 then Buffer.add_char b '_' else Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  if Buffer.length b = 0 then "_" else Buffer.contents b

let om_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_value v = Printf.sprintf "%.17g" v

let openmetrics ?registry ?series () =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  (* Sanitization can collide ("a.b" and "a_b" share a family); the
     first metric keeps the family, later collisions are skipped — a
     duplicate # TYPE would fail the format's own validator. *)
  let families = Hashtbl.create 32 in
  let fresh fam = if Hashtbl.mem families fam then false
    else begin Hashtbl.add families fam (); true end
  in
  let head fam kind orig =
    line "# TYPE %s %s" fam kind;
    line "# HELP %s %s" fam (om_escape (Printf.sprintf "Registry metric %s." orig))
  in
  List.iter
    (fun (name, v) ->
      let fam = om_name name in
      match (v : Metrics.value) with
      | `Counter x ->
        if fresh fam && Float.is_finite x then begin
          head fam "counter" name;
          line "%s_total %s" fam (om_value x)
        end
      | `Gauge x ->
        if fresh fam && Float.is_finite x then begin
          head fam "gauge" name;
          line "%s %s" fam (om_value x)
        end
      | `Histogram summary ->
        if fresh fam then begin
          head fam "summary" name;
          (match summary with
          | None ->
            line "%s_sum 0" fam;
            line "%s_count 0" fam
          | Some s ->
            let q quantile v =
              if Float.is_finite v then
                line "%s{quantile=\"%s\"} %s" fam quantile (om_value v)
            in
            q "0.5" s.Metrics.p50;
            q "0.95" s.Metrics.p95;
            q "0.99" s.Metrics.p99;
            let sum = s.Metrics.mean *. float_of_int s.Metrics.count in
            if Float.is_finite sum then line "%s_sum %s" fam (om_value sum);
            line "%s_count %d" fam s.Metrics.count)
        end)
    (Metrics.snapshot ?registry ());
  (match series with
  | None -> ()
  | Some st ->
    let names = Series.names st in
    if names <> [] then begin
      let quantiles =
        List.filter_map
          (fun name ->
            match Series.window_stats st name ~n:max_int with
            | None -> None
            | Some ws -> Some (name, ws))
          names
      in
      if quantiles <> [] && fresh "waveidx_series_quantile" then begin
        line "# TYPE waveidx_series_quantile gauge";
        line
          "# HELP waveidx_series_quantile Windowed quantiles over recorded \
           metric time-series.";
        List.iter
          (fun (name, (ws : Series.window_stats)) ->
            let q quantile v =
              if Float.is_finite v then
                line "waveidx_series_quantile{series=\"%s\",quantile=\"%s\"} %s"
                  (om_escape name) quantile (om_value v)
            in
            q "0.5" ws.Series.w_p50;
            q "0.95" ws.Series.w_p95;
            q "0.99" ws.Series.w_p99)
          quantiles
      end;
      let trends =
        List.filter_map
          (fun name ->
            match Series.trend st name ~n:max_int with
            | Some slope when Float.is_finite slope -> Some (name, slope)
            | _ -> None)
          names
      in
      if trends <> [] && fresh "waveidx_series_trend" then begin
        line "# TYPE waveidx_series_trend gauge";
        line
          "# HELP waveidx_series_trend Least-squares slope per sample over \
           each recorded series.";
        List.iter
          (fun (name, slope) ->
            line "waveidx_series_trend{series=\"%s\"} %s" (om_escape name)
              (om_value slope))
          trends
      end
    end);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* --- OpenMetrics validation ------------------------------------------- *)

let om_name_ok name =
  String.length name > 0
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let om_label_name_ok name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

(* Parse a sample head [name{k=...,...}] into (name, labels,
   rest-offset); the label set may be absent.  Label values are quoted
   with backslash escapes for backslash, quote, and newline. *)
let om_parse_sample_head line =
  let n = String.length line in
  let rec name_end i =
    if i < n then
      match line.[i] with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> name_end (i + 1)
      | _ -> i
    else i
  in
  let ne = name_end 0 in
  if ne = 0 then Error "missing metric name"
  else
    let name = String.sub line 0 ne in
    if not (om_name_ok name) then Error (Printf.sprintf "bad metric name %S" name)
    else if ne < n && line.[ne] = '{' then begin
      (* label set *)
      let labels = ref [] in
      let i = ref (ne + 1) in
      let err = ref None in
      let fail m = if !err = None then err := Some m in
      let rec parse_pairs () =
        if !i >= n then fail "unterminated label set"
        else if line.[!i] = '}' then incr i
        else begin
          let ls = !i in
          while
            !i < n
            && (match line.[!i] with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
               | _ -> false)
          do
            incr i
          done;
          let lname = String.sub line ls (!i - ls) in
          if not (om_label_name_ok lname) then
            fail (Printf.sprintf "bad label name %S" lname)
          else if !i >= n || line.[!i] <> '=' then fail "expected '=' in label"
          else begin
            incr i;
            if !i >= n || line.[!i] <> '"' then fail "expected quoted label value"
            else begin
              incr i;
              let b = Buffer.create 16 in
              let closed = ref false in
              while (not !closed) && !i < n && !err = None do
                (match line.[!i] with
                | '"' -> closed := true
                | '\\' ->
                  if !i + 1 >= n then fail "dangling escape"
                  else begin
                    incr i;
                    match line.[!i] with
                    | '\\' -> Buffer.add_char b '\\'
                    | '"' -> Buffer.add_char b '"'
                    | 'n' -> Buffer.add_char b '\n'
                    | c -> fail (Printf.sprintf "bad escape '\\%c'" c)
                  end
                | c -> Buffer.add_char b c);
                incr i
              done;
              if not !closed then fail "unterminated label value"
              else begin
                labels := (lname, Buffer.contents b) :: !labels;
                if !i < n && line.[!i] = ',' then begin
                  incr i;
                  parse_pairs ()
                end
                else if !i < n && line.[!i] = '}' then incr i
                else fail "expected ',' or '}' after label"
              end
            end
          end
        end
      in
      parse_pairs ();
      match !err with
      | Some m -> Error m
      | None -> Ok (name, List.rev !labels, !i)
    end
    else Ok (name, [], ne)

let om_parse_value s =
  match String.lowercase_ascii s with
  | "nan" | "+nan" | "-nan" -> Error "non-finite value (NaN)"
  | "inf" | "+inf" | "-inf" -> Error "non-finite value (Inf)"
  | _ -> (
    match float_of_string_opt s with
    | Some v when Float.is_finite v -> Ok v
    | Some _ -> Error "non-finite value"
    | None -> Error (Printf.sprintf "bad sample value %S" s))

(* Family the sample name belongs to under [kind]: counters append
   _total, summaries/histograms their _sum/_count/_bucket suffixes. *)
let om_base_name kind sample =
  let strip suffix =
    let n = String.length sample and m = String.length suffix in
    if n > m && String.sub sample (n - m) m = suffix then
      Some (String.sub sample 0 (n - m))
    else None
  in
  match kind with
  | "counter" -> strip "_total"
  | "summary" -> (
    match strip "_sum" with
    | Some b -> Some b
    | None -> (
      match strip "_count" with Some b -> Some b | None -> Some sample))
  | "histogram" -> (
    match strip "_bucket" with
    | Some b -> Some b
    | None -> (
      match strip "_sum" with
      | Some b -> Some b
      | None -> (
        match strip "_count" with Some b -> Some b | None -> None)))
  | _ -> Some sample

let om_kinds =
  [ "counter"; "gauge"; "summary"; "histogram"; "untyped"; "unknown" ]

let validate_openmetrics text =
  let lines = String.split_on_char '\n' text in
  (* Drop exactly one trailing "" from the final newline; any other
     blank line is a format violation. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let fail i fmt =
    Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" (i + 1) m)) fmt
  in
  let seen = Hashtbl.create 16 in
  let rec go i current samples = function
    | [] -> Error "missing \"# EOF\" terminator"
    | [ "# EOF" ] -> Ok samples
    | "# EOF" :: _ -> fail i "content after \"# EOF\""
    | line :: rest -> (
      if String.trim line = "" then fail i "blank line"
      else if String.length line > 0 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: fam :: kind :: [] ->
          if not (om_name_ok fam) then fail i "bad family name %S" fam
          else if not (List.mem kind om_kinds) then
            fail i "unknown metric type %S" kind
          else if Hashtbl.mem seen fam then fail i "duplicate family %S" fam
          else begin
            Hashtbl.add seen fam kind;
            go (i + 1) (Some (fam, kind)) samples rest
          end
        | "#" :: "HELP" :: fam :: _ :: _ -> (
          match current with
          | Some (f, _) when f = fam -> go (i + 1) current samples rest
          | _ -> fail i "HELP for %S outside its family block" fam)
        | "#" :: "UNIT" :: fam :: _ -> (
          match current with
          | Some (f, _) when f = fam -> go (i + 1) current samples rest
          | _ -> fail i "UNIT for %S outside its family block" fam)
        | _ -> fail i "unknown comment %S (expected TYPE/HELP/UNIT/EOF)" line
      end
      else
        match om_parse_sample_head line with
        | Error m -> fail i "%s" m
        | Ok (sname, labels, off) -> (
          match current with
          | None -> fail i "sample %S before any # TYPE" sname
          | Some (fam, kind) -> (
            match om_base_name kind sname with
            | None ->
              fail i "%s sample %S lacks the required suffix (e.g. _total)"
                kind sname
            | Some base when base <> fam ->
              fail i "sample %S interleaved with family %S" sname fam
            | Some _ -> (
              (* counters must never expose the bare family name *)
              if kind = "counter" && sname = fam then
                fail i "counter sample %S without _total suffix" sname
              else
                let tail =
                  String.trim
                    (String.sub line off (String.length line - off))
                in
                match String.split_on_char ' ' tail with
                | [ v ] | [ v; _ ] -> (
                  match om_parse_value v with
                  | Error m -> fail i "%s" m
                  | Ok _ -> (
                    (* a summary's quantile label must be a fraction *)
                    match
                      (kind = "summary" && sname = fam,
                       List.assoc_opt "quantile" labels)
                    with
                    | true, Some q -> (
                      match float_of_string_opt q with
                      | Some f when f >= 0.0 && f <= 1.0 ->
                        go (i + 1) current (samples + 1) rest
                      | _ -> fail i "quantile %S outside [0, 1]" q)
                    | true, None ->
                      fail i "summary sample %S lacks a quantile label" sname
                    | false, _ -> go (i + 1) current (samples + 1) rest))
                | _ -> fail i "malformed sample line %S" line))))
  in
  go 0 None 0 lines

let validate_openmetrics_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> validate_openmetrics text
