(** Declarative SLO / alert engine over the {!Metrics} registry.

    A rule names a metric, how to reduce it to a number (its [stat]), a
    comparator, a threshold, and a debounce length: the condition must
    hold for [for_days] {e consecutive} evaluations before the alert
    fires.  The simulation runner evaluates its configured rules once
    per day boundary ({!Wave_sim.Runner.config.alerts}), so [for_days]
    is literally days; any other driver may call {!eval} on whatever
    cadence it likes.

    Typical rules for a long simulation: a query-latency p95 ceiling
    ([runner.query_seconds] p95 [<=] budget), a cache hit-ratio floor
    ([cache.hit_ratio] [>=] 0.9), a dirty-frame high watermark
    ([cache.dirty_frames] [<=] frames/2), or a transition-time budget
    derived from the paper's Theorem 1/2 wave-length bounds
    ([runner.day.transition_seconds]).  Note the comparator expresses
    the {e bad} direction: the rule fires when it is satisfied.

    Firing emits a {!Trace.instant} ["alert"] (when tracing is on) and
    opens an {!event}; while the condition keeps holding the event's
    [last_day] advances, and the first evaluation where it no longer
    holds stamps [resolved_day] and re-arms the debounce.  The whole
    history is available as a machine-readable block via
    {!events_json}.

    Rules can be built in code ({!rule}) or parsed from JSON
    ({!rules_of_json}): [{"rules": [{"name": "p95-ceiling", "metric":
    "runner.query_seconds", "stat": "p95", "op": ">", "threshold":
    0.25, "for_days": 2}]}] (a bare top-level array also parses;
    [stat] defaults to ["value"], [for_days] to 1, ["scope"] to
    ["day"] — set ["scope": "transition"] for per-transition
    evaluation). *)

type comparator = Gt | Ge | Lt | Le

type scope = Day | Transition
(** Evaluation cadence a rule subscribes to.  [Day] rules (the
    default) are evaluated by the runner once per day boundary;
    [Transition] rules after {e every} transition step, over the
    [runner.transition.*] gauges — so a one-transition spike is caught
    before day-level aggregation averages it away.  Debounce
    ([for_days]) counts consecutive evaluations {e of that scope}: an
    evaluation of the other scope leaves a rule's streak and open
    episode untouched. *)

type stat = Value | Mean | Min | Max | P50 | P95 | P99 | Count
(** How to reduce the metric to a number.  [Value] reads a counter or
    gauge directly and a histogram's exact mean; the percentile /
    extremum stats apply to histograms only (on a counter or gauge
    they resolve to nothing and the rule cannot fire — a rule
    misconfiguration, reported by {!eval}'s [None] value resolution
    being observable as the rule never firing). *)

type rule = {
  name : string;
  metric : string;  (** {!Metrics} registry name *)
  stat : stat;
  comparator : comparator;
  threshold : float;
  for_days : int;  (** debounce: consecutive satisfied evaluations, >= 1 *)
  scope : scope;
}

val rule :
  ?stat:stat ->
  ?for_days:int ->
  ?scope:scope ->
  name:string ->
  metric:string ->
  comparator ->
  float ->
  rule
(** [rule ~name ~metric cmp threshold] with [stat] defaulting to
    [Value], [for_days] to 1 and [scope] to [Day].  Raises
    [Invalid_argument] when [for_days < 1] or [name]/[metric] is
    empty. *)

type event = {
  e_rule : rule;
  fired_day : int;  (** evaluation day the debounce was crossed *)
  value : float;  (** observed value at fire time *)
  mutable last_day : int;  (** last day the condition still held *)
  mutable resolved_day : int option;
      (** first day the condition no longer held; [None] while active *)
}

type t
(** Engine: rules plus per-rule debounce state and the event history. *)

val create : rule list -> t

val rules : t -> rule list

val eval :
  ?registry:Metrics.registry -> ?scope:scope -> t -> day:int -> (rule * float) list
(** Evaluate rules against the registry (default {!Metrics.default}),
    advancing debounce state, firing and resolving events.  [?scope]
    restricts the evaluation to rules of that scope, leaving the
    others' debounce state untouched; omitted, every rule is evaluated
    (the pre-scope behavior).  Returns the rules active after this
    evaluation with their observed values.  A metric that is missing,
    an empty histogram, or a stat that does not apply to the metric's
    kind counts as not-satisfied (and re-arms the debounce).  A firing
    additionally lands in the flight recorder
    ({!Recorder.record_alert}), triggers {!Recorder.dump_if_configured}
    and {!Sink.flush_traces}. *)

val active : t -> event list
(** Events not yet resolved, oldest first. *)

val events : t -> event list
(** Full history, oldest first, resolved and active alike. *)

val comparator_name : comparator -> string
(** [">"], [">="], ["<"], ["<="]. *)

val stat_name : stat -> string
val scope_name : scope -> string
(** ["day"] / ["transition"]. *)

val event_json : event -> Json.t
val events_json : event list -> Json.t
(** [{"count": n, "alerts": [...]}], each alert carrying rule name,
    metric, stat, op, threshold, for_days, fired/last/resolved day and
    the fire-time value. *)

val to_json : t -> Json.t
(** [{"rules": n, "count": n, "alerts": [...]}] — the engine's whole
    history, the runner's machine-readable alerts block. *)

val rules_of_json : Json.t -> (rule list, string) result
(** Parse the rule syntax above.  Errors name the offending rule (by
    [name] when present, index otherwise) and field. *)

val rules_of_file : string -> (rule list, string) result
(** Read and parse [path], then {!rules_of_json}. *)
