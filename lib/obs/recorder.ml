(* Always-on flight recorder: a bounded ring of the most recent
   observable events (span ends, gauge updates, alert firings, real-I/O
   syscall outcomes).  Recording is a couple of field writes plus one
   array store, cheap enough to leave on unconditionally; the ring
   overwrites its oldest entry once full, so memory stays O(capacity)
   no matter how long the process runs.

   This module sits below Metrics/Trace/Alert in the library: it
   depends only on Json (and Unix for the wall clock), so every other
   observability module — and Wave_disk.Io — can record into it without
   a dependency cycle.  Trace registers its model clock here at module
   init, giving events model timestamps whenever a traced run is
   active. *)

type kind =
  | Span of {
      sp_name : string;
      sp_model_s : float;
      sp_seeks : int;
      sp_blocks_read : int;
      sp_blocks_written : int;
      sp_bytes_read : int;
      sp_bytes_written : int;
    }
  | Metric of { m_name : string; m_value : float; m_delta : float }
  | Alert_fire of {
      a_rule : string;
      a_metric : string;
      a_value : float;
      a_day : int;
      a_scope : string;
    }
  | Io of { io_syscall : string; io_outcome : string; io_bytes : int }
  | Epoch of { e_event : string; e_gen : int; e_refcount : int }

type event = { seq : int; at_model : float; at_wall : float; kind : kind }

let schema = "waveidx-flight/1"
let default_capacity = 512

let ring : event option array ref = ref (Array.make default_capacity None)
let written = ref 0 (* events ever recorded since the last clear *)
let enabled = ref true
let model_clock : (unit -> float) ref = ref (fun () -> 0.0)
let dump_target : string option ref = ref None

let set_model_clock f = model_clock := f
let set_enabled b = enabled := b
let is_enabled () = !enabled
let capacity () = Array.length !ring

let set_capacity c =
  if c < 1 then invalid_arg "Recorder.set_capacity: capacity < 1";
  ring := Array.make c None;
  written := 0

let clear () =
  Array.fill !ring 0 (Array.length !ring) None;
  written := 0

let record kind =
  if !enabled then begin
    let r = !ring in
    let e =
      {
        seq = !written;
        at_model = !model_clock ();
        at_wall = Unix.gettimeofday ();
        kind;
      }
    in
    r.(!written mod Array.length r) <- Some e;
    incr written
  end

let record_span ~name ~model_s ~seeks ~blocks_read ~blocks_written ~bytes_read
    ~bytes_written =
  record
    (Span
       {
         sp_name = name;
         sp_model_s = model_s;
         sp_seeks = seeks;
         sp_blocks_read = blocks_read;
         sp_blocks_written = blocks_written;
         sp_bytes_read = bytes_read;
         sp_bytes_written = bytes_written;
       })

let record_metric ~name ~value ~delta =
  record (Metric { m_name = name; m_value = value; m_delta = delta })

let record_alert ~rule ~metric ~value ~day ~scope =
  record
    (Alert_fire
       { a_rule = rule; a_metric = metric; a_value = value; a_day = day;
         a_scope = scope })

let record_io ~syscall ~outcome ~bytes =
  record (Io { io_syscall = syscall; io_outcome = outcome; io_bytes = bytes })

let record_epoch ~event ~gen ~refcount =
  record (Epoch { e_event = event; e_gen = gen; e_refcount = refcount })

let total () = !written
let count () = min !written (Array.length !ring)
let dropped () = !written - count ()

(* Oldest-first: the ring's live window is the last [count] sequence
   numbers, read in order. *)
let events () =
  let r = !ring in
  let cap = Array.length r in
  let n = count () in
  List.init n (fun i ->
      match r.((!written - n + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let event_json e =
  let envelope ty fields =
    Json.Obj
      (("type", Json.Str ty)
      :: ("seq", Json.int e.seq)
      :: ("model_s", Json.Num e.at_model)
      :: ("wall_s", Json.Num e.at_wall)
      :: fields)
  in
  match e.kind with
  | Span s ->
    envelope "span"
      [
        ("name", Json.Str s.sp_name);
        ("dur_model_s", Json.Num s.sp_model_s);
        ("seeks", Json.int s.sp_seeks);
        ("blocks_read", Json.int s.sp_blocks_read);
        ("blocks_written", Json.int s.sp_blocks_written);
        ("bytes_read", Json.int s.sp_bytes_read);
        ("bytes_written", Json.int s.sp_bytes_written);
      ]
  | Metric m ->
    envelope "metric"
      [
        ("name", Json.Str m.m_name);
        ("value", Json.Num m.m_value);
        ("delta", Json.Num m.m_delta);
      ]
  | Alert_fire a ->
    envelope "alert"
      [
        ("rule", Json.Str a.a_rule);
        ("metric", Json.Str a.a_metric);
        ("value", Json.Num a.a_value);
        ("day", Json.int a.a_day);
        ("scope", Json.Str a.a_scope);
      ]
  | Io io ->
    envelope "io"
      [
        ("syscall", Json.Str io.io_syscall);
        ("outcome", Json.Str io.io_outcome);
        ("bytes", Json.int io.io_bytes);
      ]
  | Epoch ep ->
    envelope "epoch"
      [
        ("event", Json.Str ep.e_event);
        ("gen", Json.int ep.e_gen);
        ("refcount", Json.int ep.e_refcount);
      ]

let to_jsonl ?(reason = "manual") () =
  let buf = Buffer.create 4096 in
  let header =
    Json.Obj
      [
        ("schema", Json.Str schema);
        ("reason", Json.Str reason);
        ("events", Json.int (count ()));
        ("dropped", Json.int (dropped ()));
      ]
  in
  Buffer.add_string buf (Json.to_string header);
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string (event_json e));
      Buffer.add_char buf '\n')
    (events ());
  Buffer.contents buf

let dump_to ?reason path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_jsonl ?reason ()))

let set_dump_path p = dump_target := p
let dump_path () = !dump_target

let dump_if_configured ~reason =
  match !dump_target with
  | None -> ()
  | Some path -> ( try dump_to ~reason path with Sys_error _ -> ())
