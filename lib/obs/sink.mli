(** Trace sinks: serialize collected spans/instants to files.

    Two formats:

    - {b JSONL}: one JSON object per line, one line per span or
      instant, in model-time order.  Grep-friendly, schema-stable.
    - {b Chrome [trace_event]}: a [{"traceEvents": [...]}] document of
      complete ("X") and instant ("i") events, loadable in
      [chrome://tracing] and Perfetto.  Timestamps are microseconds on
      the chosen clock ([`Model] by default — the paper's model-disk
      seconds — or [`Wall]); span disk attribution (seeks, blocks,
      bytes) and the other clock's timings ride in each event's
      ["args"]. *)

type clock = [ `Model | `Wall ]

val span_json : Trace.span -> Json.t
val instant_json : Trace.instant -> Json.t

val jsonl : spans:Trace.span list -> instants:Trace.instant list -> string
(** One object per line, sorted by model start time. *)

val chrome_json :
  ?clock:clock -> spans:Trace.span list -> instants:Trace.instant list -> unit -> Json.t

val write_jsonl :
  path:string -> spans:Trace.span list -> instants:Trace.instant list -> unit

val write_chrome :
  ?clock:clock ->
  path:string ->
  spans:Trace.span list ->
  instants:Trace.instant list ->
  unit ->
  unit

val validate_chrome : Json.t -> (int, string) result
(** Check the Chrome [trace_event] shape: a top-level object with a
    ["traceEvents"] array whose elements all carry a string ["name"], a
    string ["ph"], a finite numeric ["ts"], integer ["pid"]/["tid"],
    and — for "X" events — a non-negative numeric ["dur"].  Returns the
    event count. *)

val validate_chrome_file : string -> (int, string) result
(** Read and parse [path], then {!validate_chrome}. *)

val bench_schema : string
(** The current [waveidx bench --json] schema tag,
    ["waveidx-bench/4"]. *)

val validate_bench : Json.t -> (int, string) result
(** Check a [BENCH_wave.json] snapshot against {!bench_schema}: the
    exact schema tag, ["unit"] = "model-seconds", a non-empty
    ["benchmarks"] array whose records carry a string ["name"],
    non-negative ["p50"]/["p95"], ["runs"] >= 1, an optional ["cache"]
    object (["hit_ratio"] in [0, 1]; non-negative ["hits"],
    ["misses"], ["frames"]) and an optional ["writeback"] object
    (non-negative ["writes_coalesced"], ["flushes"],
    ["flushed_blocks"]), plus a required ["profile"] summary block
    (string ["scheme"]/["technique"], ["days"] >= 1, non-negative
    ["total_model_s"], and a non-empty ["top"] array of hot nodes each
    with a string ["path"], ["calls"] >= 1, non-negative
    ["self_model_s"]/["total_model_s"]/["seeks"]).  Every error names
    the offending series ([benchmark i ("name")]) and field.  Returns
    the benchmark count. *)

val validate_bench_file : string -> (int, string) result
(** Read and parse [path], then {!validate_bench}. *)

(** {1 Bench regression gate}

    [bench --compare BASELINE.json --threshold PCT] re-parses a
    committed snapshot, matches series by name against a fresh run, and
    fails on regressions: {!bench_series} extracts the comparable
    series (leniently — any snapshot version with a ["benchmarks"]
    array works, so old baselines survive schema bumps), and
    {!compare_bench} classifies each p50/p95 pair. *)

type bench_series = {
  series_name : string;
  series_p50 : float;
  series_p95 : float;
}

val bench_series : Json.t -> (bench_series list, string) result
(** Extract name/p50/p95 from a snapshot's ["benchmarks"] array,
    without checking the schema tag.  Errors name the series. *)

val bench_series_file : string -> (bench_series list, string) result
(** Read and parse [path], then {!bench_series}. *)

type bench_delta = {
  delta_name : string;
  delta_field : string;  (** ["p50"] or ["p95"] *)
  baseline_value : float;
  current_value : float;
  delta_pct : float;  (** (current - baseline) / baseline * 100 *)
}

type bench_comparison = {
  compared : int;  (** series present on both sides *)
  missing : string list;  (** in baseline, vanished from current — a failure *)
  added : string list;  (** new series, informational *)
  regressions : bench_delta list;
  improvements : bench_delta list;
}

val compare_bench :
  threshold_pct:float ->
  baseline:bench_series list ->
  current:bench_series list ->
  bench_comparison
(** A p50 or p95 that grew beyond [threshold_pct] percent (with a 1e-9
    absolute epsilon so bit-identical reruns never trip) is a
    regression; shrunk beyond it, an improvement. *)

val bench_ok : bench_comparison -> bool
(** No regressions and no vanished series. *)

val comparison_report : bench_comparison -> string
(** Human-readable per-series delta report, one line per regression /
    missing / improvement / new series. *)

(** {1 Profile documents} *)

val profile_schema : string
(** ["waveidx-profile/1"] — the {!Profile.to_json} schema tag. *)

val validate_profile : Json.t -> (int, string) result
(** Check a profile document: schema tag, ["unit"] = "model-seconds",
    non-negative ["total_model_s"], and a ["roots"] tree whose every
    node carries a string ["name"], ["calls"] >= 1, the non-negative
    cost fields, and a ["children"] array.  Errors carry the node's
    path.  Returns the node count. *)

val validate_profile_file : string -> (int, string) result

val write_folded : path:string -> Profile.t -> unit
(** Write {!Profile.folded} stacks to [path]. *)

val write_profile : path:string -> Profile.t -> unit
(** Write pretty-printed {!Profile.to_json} to [path]. *)
