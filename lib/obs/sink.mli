(** Trace sinks: serialize collected spans/instants to files.

    Two formats:

    - {b JSONL}: one JSON object per line, one line per span or
      instant, in model-time order.  Grep-friendly, schema-stable.
    - {b Chrome [trace_event]}: a [{"traceEvents": [...]}] document of
      complete ("X") and instant ("i") events, loadable in
      [chrome://tracing] and Perfetto.  Timestamps are microseconds on
      the chosen clock ([`Model] by default — the paper's model-disk
      seconds — or [`Wall]); span disk attribution (seeks, blocks,
      bytes) and the other clock's timings ride in each event's
      ["args"]. *)

type clock = [ `Model | `Wall ]

val span_json : Trace.span -> Json.t
val instant_json : Trace.instant -> Json.t

val jsonl : spans:Trace.span list -> instants:Trace.instant list -> string
(** One object per line, sorted by model start time. *)

val chrome_json :
  ?clock:clock -> spans:Trace.span list -> instants:Trace.instant list -> unit -> Json.t

val write_jsonl :
  path:string -> spans:Trace.span list -> instants:Trace.instant list -> unit

val write_chrome :
  ?clock:clock ->
  path:string ->
  spans:Trace.span list ->
  instants:Trace.instant list ->
  unit ->
  unit

val validate_chrome : Json.t -> (int, string) result
(** Check the Chrome [trace_event] shape: a top-level object with a
    ["traceEvents"] array whose elements all carry a string ["name"], a
    string ["ph"], a finite numeric ["ts"], integer ["pid"]/["tid"],
    and — for "X" events — a non-negative numeric ["dur"].  Returns the
    event count. *)

val validate_chrome_file : string -> (int, string) result
(** Read and parse [path], then {!validate_chrome}. *)

val bench_schema : string
(** The current [waveidx bench --json] schema tag,
    ["waveidx-bench/7"].  /7 adds a required ["series"] block of
    per-metric time-series summaries (points, last, mean, p95, trend)
    sampled from the canonical profiled run. *)

val required_bench_series : string list
(** Series every /6 snapshot must carry — the sharded throughput
    scaling curve [throughput+shards/{1,2,4,8}].  {!validate_bench}
    fails with the missing names otherwise. *)

val validate_bench : Json.t -> (int, string) result
(** Check a [BENCH_wave.json] snapshot against {!bench_schema}: the
    exact schema tag, ["unit"] = "model-seconds", a non-empty
    ["benchmarks"] array whose records carry a string ["name"],
    non-negative ["p50"]/["p95"], ["runs"] >= 1, an optional ["cache"]
    object (["hit_ratio"] in [0, 1]; non-negative ["hits"],
    ["misses"], ["frames"]) and an optional ["writeback"] object
    (non-negative ["writes_coalesced"], ["flushes"],
    ["flushed_blocks"]), plus a required ["profile"] summary block
    (string ["scheme"]/["technique"], ["days"] >= 1, non-negative
    ["total_model_s"], and a non-empty ["top"] array of hot nodes each
    with a string ["path"], ["calls"] >= 1, non-negative
    ["self_model_s"]/["total_model_s"]/["seeks"]).  Every error names
    the offending series ([benchmark i ("name")]) and field.  Returns
    the benchmark count. *)

val validate_bench_file : string -> (int, string) result
(** Read and parse [path], then {!validate_bench}. *)

val series_schema : string
(** ["waveidx-series/1"] — the {!Series.to_json} schema tag. *)

(** {1 Bench regression gate}

    [bench --compare BASELINE.json --threshold PCT] re-parses a
    committed snapshot, matches series by name against a fresh run, and
    fails on regressions: {!bench_series} extracts the comparable
    series (leniently — any snapshot version with a ["benchmarks"]
    array works, so old baselines survive schema bumps), and
    {!compare_bench} classifies each p50/p95 pair. *)

type bench_series = {
  series_name : string;
  series_p50 : float;
  series_p95 : float;
}

val bench_series : Json.t -> (bench_series list, string) result
(** Extract name/p50/p95 from a snapshot's ["benchmarks"] array,
    without checking the schema tag.  Errors name the series. *)

val bench_series_file : string -> (bench_series list, string) result
(** Read and parse [path], then {!bench_series}. *)

type bench_delta = {
  delta_name : string;
  delta_field : string;  (** ["p50"] or ["p95"] *)
  baseline_value : float;
  current_value : float;
  delta_pct : float;  (** (current - baseline) / baseline * 100 *)
}

type bench_comparison = {
  compared : int;  (** series present on both sides *)
  missing : string list;  (** in baseline, vanished from current — a failure *)
  added : string list;  (** new series, informational *)
  regressions : bench_delta list;
  improvements : bench_delta list;
}

val wallclock_series : string -> bool
(** Series measured in machine-dependent wall seconds — the
    [transition+file/] prefix.  {!compare_bench} never classifies
    their drift as a regression or improvement (real syscall timing
    jitters far beyond any useful threshold); a vanished wall-clock
    series still fails via [missing]. *)

val compare_bench :
  threshold_pct:float ->
  baseline:bench_series list ->
  current:bench_series list ->
  bench_comparison
(** A p50 or p95 that grew beyond [threshold_pct] percent (with a 1e-9
    absolute epsilon so bit-identical reruns never trip) is a
    regression; shrunk beyond it, an improvement.  {!wallclock_series}
    are exempt from both classifications. *)

val bench_ok : bench_comparison -> bool
(** No regressions and no vanished series. *)

val series_unit : string -> string
(** The unit a bench series is measured in: ["wall-s"] for
    {!wallclock_series}, ["ratio"] for dimensionless series (name
    contains ["ratio"] or ["speedup"]), ["model-s"] otherwise.
    {!comparison_report} tags every row with it so a reader never
    mistakes informational wall-clock drift for a gated model-time
    regression. *)

val comparison_report : bench_comparison -> string
(** Human-readable per-series delta report: a units legend, then one
    line per regression / missing / improvement / new series, each
    tagged with its {!series_unit}. *)

(** {1 Profile documents} *)

val profile_schema : string
(** ["waveidx-profile/1"] — the {!Profile.to_json} schema tag. *)

val validate_profile : Json.t -> (int, string) result
(** Check a profile document: schema tag, ["unit"] = "model-seconds",
    non-negative ["total_model_s"], and a ["roots"] tree whose every
    node carries a string ["name"], ["calls"] >= 1, the non-negative
    cost fields, and a ["children"] array.  Errors carry the node's
    path.  Returns the node count. *)

val validate_profile_file : string -> (int, string) result

val write_folded : path:string -> Profile.t -> unit
(** Write {!Profile.folded} stacks to [path]. *)

val write_profile : path:string -> Profile.t -> unit
(** Write pretty-printed {!Profile.to_json} to [path]. *)

(** {1 Streaming trace flush}

    A mid-run escape hatch: arm a path with {!set_flush_path} and every
    {!flush_traces} call (the alert engine fires one per alert, the CLI
    one on uncaught exceptions) immediately writes the tracer's
    collected spans/instants there as JSONL behind a ["flush"] header
    line carrying the reason — so the evidence trail survives even if
    the process never reaches its normal end-of-run write. *)

val set_flush_path : string option -> unit
(** Arm ([Some path]) or disarm ([None], the initial state) the flush
    target. *)

val flush_path : unit -> string option

val flush_traces : reason:string -> unit
(** Write the current {!Trace.spans}/{!Trace.instants} to the armed
    path; a no-op when disarmed.  Write errors are swallowed — flushing
    is best-effort evidence preservation, never a new failure mode. *)

(** {1 Flight-recorder dumps} *)

val flight_schema : string
(** ["waveidx-flight/1"] — the {!Recorder.to_jsonl} schema tag. *)

val validate_flight : string -> (int, string) result
(** Validate a flight-recorder dump (raw JSONL text, not parsed JSON):
    a header line with the schema tag, a string ["reason"] and
    non-negative ["events"]/["dropped"] counts, followed by exactly
    [events] event lines, each a well-typed object
    (span/metric/alert/io payload fields present) with strictly
    increasing ["seq"].  Returns the event count. *)

val validate_flight_file : string -> (int, string) result
(** Read [path], then {!validate_flight}. *)

(** {1 Profile-node gate}

    The series gate above watches end-to-end latency; this one watches
    {e where the time goes}.  [bench --compare] additionally extracts
    the committed snapshot's ["profile"]["top"] hot-node list and
    re-resolves each path against a freshly profiled run: a node whose
    self model-seconds grew beyond the threshold fails the gate even
    when every series total is flat — the cost migrated between phases
    rather than growing in aggregate. *)

type profile_top_node = {
  top_path : string;  (** '/'-joined span-stack path *)
  top_calls : int;
  top_self : float;  (** self model-seconds *)
  top_total : float;  (** inclusive model-seconds *)
}

val bench_profile_top : Json.t -> (profile_top_node list, string) result
(** Extract the hot-node list from a bench snapshot's ["profile"]
    block.  Errors name the offending node. *)

val bench_profile_top_file : string -> (profile_top_node list, string) result

type profile_gate = {
  pg_compared : int;  (** baseline nodes resolved in the current tree *)
  pg_missing : string list;
      (** baseline hot paths absent from the current tree — a failure *)
  pg_regressions : bench_delta list;
      (** [delta_field] is ["self_model_s"] or ["total_model_s"] *)
  pg_improvements : bench_delta list;
}

val compare_profile_top :
  threshold_pct:float ->
  baseline:profile_top_node list ->
  current:Profile.t ->
  profile_gate
(** Compare each baseline hot node's self and total model-seconds
    against the node at the same path in [current].  The absolute
    epsilon is 1e-6 (not the series gate's 1e-9): self = total −
    children carries float-subtraction noise, and a baseline node with
    self 0.0 must not trip on rounding dust. *)

val profile_gate_ok : profile_gate -> bool
(** No regressions and no missing nodes. *)

val profile_gate_report : profile_gate -> string
(** Human-readable summary line plus one row per regression / missing /
    improved node. *)

(** {1 Series dumps} *)

val validate_series : Json.t -> (int, string) result
(** Check a [sim --series-out] dump against {!series_schema}: the
    exact schema tag, ["cap"] >= 1, ["ticks"] >= 0, and a ["series"]
    array whose entries carry a string ["name"] and a ["points"] array
    of at most [cap] points, each with a non-negative integer ["tick"]
    (non-decreasing within a series), an integer ["day"], and a finite
    ["value"].  Errors name the offending series and point.  Returns
    the total point count. *)

val validate_series_file : string -> (int, string) result
(** Read and parse [path], then {!validate_series}. *)

(** {1 OpenMetrics exposition}

    [sim --metrics-out FILE] renders the metrics registry — plus
    series-derived quantile/trend families when a {!Series} store is
    live — in Prometheus/OpenMetrics text format: each family opens
    with [# TYPE]/[# HELP], counters expose [<family>_total],
    histograms become summaries with [quantile] labels, and the
    document ends with [# EOF].  Registry dots map to underscores
    ([runner.day.query_p95] → [runner_day_query_p95]); a
    post-sanitization family collision keeps the first metric and
    drops later ones (a duplicate [# TYPE] would be invalid).
    Non-finite values are skipped at render time — the exposition
    never contains [NaN]. *)

val openmetrics : ?registry:Metrics.registry -> ?series:Series.t -> unit -> string
(** Render the registry snapshot (default registry unless given) and,
    when [series] is passed, the [waveidx_series_quantile] /
    [waveidx_series_trend] gauge families derived from
    {!Series.window_stats} and {!Series.trend} over each tracked
    series' full history. *)

val validate_openmetrics : string -> (int, string) result
(** Validate OpenMetrics text line-by-line: every sample belongs to a
    preceding [# TYPE] family (counters via their [_total] suffix —
    a bare counter sample fails; summaries via [_sum]/[_count] or a
    [quantile] label in [0, 1]), metric and label names match the
    format's charset, label values are well-escaped, no family is
    declared twice, samples never interleave across families, values
    are finite ([NaN]/[Inf] fail), no blank lines, and the last line
    is [# EOF].  Returns the sample count. *)

val validate_openmetrics_file : string -> (int, string) result
(** Read [path], then {!validate_openmetrics}. *)
