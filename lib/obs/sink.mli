(** Trace sinks: serialize collected spans/instants to files.

    Two formats:

    - {b JSONL}: one JSON object per line, one line per span or
      instant, in model-time order.  Grep-friendly, schema-stable.
    - {b Chrome [trace_event]}: a [{"traceEvents": [...]}] document of
      complete ("X") and instant ("i") events, loadable in
      [chrome://tracing] and Perfetto.  Timestamps are microseconds on
      the chosen clock ([`Model] by default — the paper's model-disk
      seconds — or [`Wall]); span disk attribution (seeks, blocks,
      bytes) and the other clock's timings ride in each event's
      ["args"]. *)

type clock = [ `Model | `Wall ]

val span_json : Trace.span -> Json.t
val instant_json : Trace.instant -> Json.t

val jsonl : spans:Trace.span list -> instants:Trace.instant list -> string
(** One object per line, sorted by model start time. *)

val chrome_json :
  ?clock:clock -> spans:Trace.span list -> instants:Trace.instant list -> unit -> Json.t

val write_jsonl :
  path:string -> spans:Trace.span list -> instants:Trace.instant list -> unit

val write_chrome :
  ?clock:clock ->
  path:string ->
  spans:Trace.span list ->
  instants:Trace.instant list ->
  unit ->
  unit

val validate_chrome : Json.t -> (int, string) result
(** Check the Chrome [trace_event] shape: a top-level object with a
    ["traceEvents"] array whose elements all carry a string ["name"], a
    string ["ph"], a finite numeric ["ts"], integer ["pid"]/["tid"],
    and — for "X" events — a non-negative numeric ["dur"].  Returns the
    event count. *)

val validate_chrome_file : string -> (int, string) result
(** Read and parse [path], then {!validate_chrome}. *)

val bench_schema : string
(** The current [waveidx bench --json] schema tag,
    ["waveidx-bench/3"]. *)

val validate_bench : Json.t -> (int, string) result
(** Check a [BENCH_wave.json] snapshot against {!bench_schema}: the
    exact schema tag, ["unit"] = "model-seconds", and a non-empty
    ["benchmarks"] array whose records carry a string ["name"],
    non-negative ["p50"]/["p95"], ["runs"] >= 1, an optional ["cache"]
    object (["hit_ratio"] in [0, 1]; non-negative ["hits"],
    ["misses"], ["frames"]) and an optional ["writeback"] object
    (non-negative ["writes_coalesced"], ["flushes"],
    ["flushed_blocks"]).  Returns the benchmark count. *)

val validate_bench_file : string -> (int, string) result
(** Read and parse [path], then {!validate_bench}. *)
