type comparator = Gt | Ge | Lt | Le
type stat = Value | Mean | Min | Max | P50 | P95 | P99 | Count

(* Day-scoped rules are evaluated once per day boundary (the original
   semantics); transition-scoped rules after every transition step,
   over the runner.transition.* gauges, so a single-transition spike is
   seen before day-level aggregation averages it away. *)
type scope = Day | Transition

type rule = {
  name : string;
  metric : string;
  stat : stat;
  comparator : comparator;
  threshold : float;
  for_days : int;
  scope : scope;
}

let rule ?(stat = Value) ?(for_days = 1) ?(scope = Day) ~name ~metric comparator
    threshold =
  if for_days < 1 then invalid_arg "Alert.rule: for_days < 1";
  if String.length name = 0 then invalid_arg "Alert.rule: empty name";
  if String.length metric = 0 then invalid_arg "Alert.rule: empty metric";
  { name; metric; stat; comparator; threshold; for_days; scope }

type event = {
  e_rule : rule;
  fired_day : int;
  value : float;
  mutable last_day : int;
  mutable resolved_day : int option;
}

(* Per-rule debounce: [streak] counts consecutive satisfied
   evaluations; [current] is the open event while the rule is firing. *)
type state = { s_rule : rule; mutable streak : int; mutable current : event option }

type t = { states : state list; mutable history : event list (* newest first *) }

let create rules =
  { states = List.map (fun r -> { s_rule = r; streak = 0; current = None }) rules;
    history = [] }

let rules t = List.map (fun s -> s.s_rule) t.states

let comparator_name = function Gt -> ">" | Ge -> ">=" | Lt -> "<" | Le -> "<="
let scope_name = function Day -> "day" | Transition -> "transition"

let stat_name = function
  | Value -> "value"
  | Mean -> "mean"
  | Min -> "min"
  | Max -> "max"
  | P50 -> "p50"
  | P95 -> "p95"
  | P99 -> "p99"
  | Count -> "count"

let compare_v cmp v threshold =
  match cmp with
  | Gt -> v > threshold
  | Ge -> v >= threshold
  | Lt -> v < threshold
  | Le -> v <= threshold

(* Resolve a rule's stat against the registry.  [None] — metric
   missing, histogram empty, or stat inapplicable to the metric's
   kind — counts as not-satisfied. *)
let resolve ?registry r =
  match Metrics.lookup ?registry r.metric with
  | None -> None
  | Some (`Counter v) | Some (`Gauge v) -> (
    match r.stat with Value -> Some v | _ -> None)
  | Some (`Histogram None) -> None
  | Some (`Histogram (Some s)) -> (
    match r.stat with
    | Value | Mean -> Some s.Metrics.mean
    | Min -> Some s.Metrics.min
    | Max -> Some s.Metrics.max
    | P50 -> Some s.Metrics.p50
    | P95 -> Some s.Metrics.p95
    | P99 -> Some s.Metrics.p99
    | Count -> Some (float_of_int s.Metrics.count))

(* [?scope] filters which rules this evaluation touches: [None] (the
   pre-scope behavior) advances every rule; [Some s] advances only
   rules of scope [s], leaving the others' debounce streaks and open
   episodes untouched — a transition-step evaluation must not reset a
   day rule's streak, and vice versa. *)
let eval ?registry ?scope t ~day =
  List.filter_map
    (fun st ->
      let r = st.s_rule in
      if match scope with Some s -> s <> r.scope | None -> false then None
      else
      let satisfied, value =
        match resolve ?registry r with
        | Some v when compare_v r.comparator v r.threshold -> (true, v)
        | Some v -> (false, v)
        | None -> (false, nan)
      in
      if satisfied then begin
        st.streak <- st.streak + 1;
        (match st.current with
        | Some e -> e.last_day <- day
        | None ->
          if st.streak >= r.for_days then begin
            let e =
              { e_rule = r; fired_day = day; value; last_day = day;
                resolved_day = None }
            in
            st.current <- Some e;
            t.history <- e :: t.history;
            if Trace.is_enabled () then
              Trace.instant "alert"
                ~tags:
                  [
                    ("rule", r.name);
                    ("metric", r.metric);
                    ("stat", stat_name r.stat);
                    ("scope", scope_name r.scope);
                    ("value", Printf.sprintf "%g" value);
                    ("day", string_of_int day);
                  ];
            (* A firing is flight-recorder material in its own right,
               and the moment to persist volatile evidence: dump the
               ring if a dump path is armed, and flush the streaming
               trace sink so the events leading here survive a
               subsequent crash. *)
            Recorder.record_alert ~rule:r.name ~metric:r.metric ~value ~day
              ~scope:(scope_name r.scope);
            Recorder.dump_if_configured ~reason:("alert:" ^ r.name);
            Sink.flush_traces ~reason:("alert:" ^ r.name)
          end);
        match st.current with Some _ -> Some (r, value) | None -> None
      end
      else begin
        st.streak <- 0;
        (match st.current with
        | Some e ->
          e.resolved_day <- Some day;
          st.current <- None
        | None -> ());
        None
      end)
    t.states

let events t = List.rev t.history
let active t = List.rev (List.filter (fun e -> e.resolved_day = None) t.history)

let event_json e =
  let r = e.e_rule in
  Json.Obj
    [
      ("rule", Json.Str r.name);
      ("metric", Json.Str r.metric);
      ("stat", Json.Str (stat_name r.stat));
      ("op", Json.Str (comparator_name r.comparator));
      ("threshold", Json.Num r.threshold);
      ("for_days", Json.int r.for_days);
      ("scope", Json.Str (scope_name r.scope));
      ("fired_day", Json.int e.fired_day);
      ("last_day", Json.int e.last_day);
      ( "resolved_day",
        match e.resolved_day with None -> Json.Null | Some d -> Json.int d );
      ("value", Json.Num e.value);
    ]

let events_json evs =
  Json.Obj
    [
      ("count", Json.int (List.length evs));
      ("alerts", Json.Arr (List.map event_json evs));
    ]

let to_json t =
  let evs = events t in
  Json.Obj
    [
      ("rules", Json.int (List.length t.states));
      ("count", Json.int (List.length evs));
      ("alerts", Json.Arr (List.map event_json evs));
    ]

(* --- rule parsing ------------------------------------------------- *)

let ( let* ) = Result.bind

let stat_of_string = function
  | "value" -> Ok Value
  | "mean" -> Ok Mean
  | "min" -> Ok Min
  | "max" -> Ok Max
  | "p50" -> Ok P50
  | "p95" -> Ok P95
  | "p99" -> Ok P99
  | "count" -> Ok Count
  | s -> Error (Printf.sprintf "unknown stat %S" s)

let comparator_of_string = function
  | ">" | "gt" -> Ok Gt
  | ">=" | "ge" -> Ok Ge
  | "<" | "lt" -> Ok Lt
  | "<=" | "le" -> Ok Le
  | s -> Error (Printf.sprintf "unknown op %S (expected >, >=, <, <=)" s)

let scope_of_string = function
  | "day" -> Ok Day
  | "transition" -> Ok Transition
  | s -> Error (Printf.sprintf "unknown scope %S (expected day | transition)" s)

let rule_of_json i j =
  let label fields =
    match List.assoc_opt "name" fields with
    | Some (Json.Str n) -> Printf.sprintf "rule %S" n
    | _ -> Printf.sprintf "rule %d" i
  in
  match j with
  | Json.Obj fields ->
    let where = label fields in
    let str field =
      match List.assoc_opt field fields with
      | Some (Json.Str s) when String.length s > 0 -> Ok s
      | Some _ -> Error (Printf.sprintf "%s: %S must be a non-empty string" where field)
      | None -> Error (Printf.sprintf "%s: missing %S" where field)
    in
    let* name = str "name" in
    let* metric = str "metric" in
    let* op_s = str "op" in
    let* comparator =
      Result.map_error (Printf.sprintf "%s: %s" where) (comparator_of_string op_s)
    in
    let* threshold =
      match List.assoc_opt "threshold" fields with
      | Some (Json.Num v) when Float.is_finite v -> Ok v
      | Some _ -> Error (Printf.sprintf "%s: \"threshold\" must be a finite number" where)
      | None -> Error (Printf.sprintf "%s: missing \"threshold\"" where)
    in
    let* stat =
      match List.assoc_opt "stat" fields with
      | None -> Ok Value
      | Some (Json.Str s) ->
        Result.map_error (Printf.sprintf "%s: %s" where) (stat_of_string s)
      | Some _ -> Error (Printf.sprintf "%s: \"stat\" must be a string" where)
    in
    let* for_days =
      match List.assoc_opt "for_days" fields with
      | None -> Ok 1
      | Some (Json.Num v) when Float.is_integer v && v >= 1.0 ->
        Ok (int_of_float v)
      | Some _ -> Error (Printf.sprintf "%s: \"for_days\" must be an integer >= 1" where)
    in
    let* scope =
      match List.assoc_opt "scope" fields with
      | None -> Ok Day
      | Some (Json.Str s) ->
        Result.map_error (Printf.sprintf "%s: %s" where) (scope_of_string s)
      | Some _ -> Error (Printf.sprintf "%s: \"scope\" must be a string" where)
    in
    Ok { name; metric; stat; comparator; threshold; for_days; scope }
  | _ -> Error (Printf.sprintf "rule %d: expected an object" i)

let rules_of_json j =
  let arr =
    match j with
    | Json.Obj fields -> (
      match List.assoc_opt "rules" fields with
      | Some (Json.Arr items) -> Ok items
      | Some _ -> Error "\"rules\" must be an array"
      | None -> Error "expected {\"rules\": [...]} or a top-level array")
    | Json.Arr items -> Ok items
    | _ -> Error "expected {\"rules\": [...]} or a top-level array"
  in
  let* items = arr in
  if items = [] then Error "no rules given"
  else
    let rec go i acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest ->
        let* r = rule_of_json i item in
        go (i + 1) (r :: acc) rest
    in
    go 0 [] items

let rules_of_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match Json.parse text with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok j -> rules_of_json j)
