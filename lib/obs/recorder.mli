(** Flight recorder: an always-on bounded ring buffer of recent
    observability events — the black box a failing run ships with.

    Five event kinds land here automatically:

    - {b spans}: every {!Trace.end_span} (name, model duration, disk
      attribution);
    - {b metrics}: every gauge {!Metrics.set} (value and delta — the
      low-frequency per-day / per-transition signals, not hot
      counters);
    - {b alerts}: every {!Alert} firing (rule, metric, value, day,
      scope);
    - {b io}: every {!Wave_disk.Io} syscall outcome (ok / retry /
      giveup / fault / stall / torn, with bytes moved);
    - {b epoch}: every [Wave_epoch] lifecycle step (open / swap /
      retire / drain, with the epoch generation and refcount), so a
      crash dump shows which epoch was live at the fault.

    The ring holds the most recent {!capacity} events; older ones are
    overwritten ({!dropped} counts them).  Recording is a few field
    writes, cheap enough to stay on unconditionally; {!set_enabled}
    [false] turns it into a no-op for overhead experiments.

    Timestamps: [at_wall] is {!Unix.gettimeofday}; [at_model] reads the
    clock registered by {!set_model_clock} — {!Trace} registers its
    model clock at module init, so events carry model time whenever a
    traced run is active (0.0 otherwise).

    Dumps are JSONL under the ["waveidx-flight/1"] schema (validated by
    {!Sink.validate_flight}): a header line with the dump reason and
    counts, then one object per event, oldest first.  {!set_dump_path}
    arms automatic dumps — the alert engine and the CLI's
    uncaught-exception handler call {!dump_if_configured} — and the
    crash harness writes [flight.jsonl] into every failing artifact
    directory via {!dump_to}. *)

type kind =
  | Span of {
      sp_name : string;
      sp_model_s : float;
      sp_seeks : int;
      sp_blocks_read : int;
      sp_blocks_written : int;
      sp_bytes_read : int;
      sp_bytes_written : int;
    }
  | Metric of { m_name : string; m_value : float; m_delta : float }
  | Alert_fire of {
      a_rule : string;
      a_metric : string;
      a_value : float;
      a_day : int;
      a_scope : string;
    }
  | Io of { io_syscall : string; io_outcome : string; io_bytes : int }
  | Epoch of { e_event : string; e_gen : int; e_refcount : int }

type event = {
  seq : int;  (** monotonically increasing since the last {!clear} *)
  at_model : float;
  at_wall : float;
  kind : kind;
}

val schema : string
(** ["waveidx-flight/1"]. *)

val set_model_clock : (unit -> float) -> unit
(** Register the model-time source for [at_model].  {!Trace} installs
    its own clock at module init; tests may override. *)

val set_enabled : bool -> unit
val is_enabled : unit -> bool

val capacity : unit -> int
(** Ring size (default 512). *)

val set_capacity : int -> unit
(** Resize the ring, clearing it.  Raises [Invalid_argument] below 1. *)

val clear : unit -> unit
(** Drop all events and reset the sequence counter.  The crash harness
    clears per fault point so each dump is point-specific. *)

val record_span :
  name:string ->
  model_s:float ->
  seeks:int ->
  blocks_read:int ->
  blocks_written:int ->
  bytes_read:int ->
  bytes_written:int ->
  unit

val record_metric : name:string -> value:float -> delta:float -> unit
val record_alert :
  rule:string -> metric:string -> value:float -> day:int -> scope:string -> unit

val record_io : syscall:string -> outcome:string -> bytes:int -> unit

val record_epoch : event:string -> gen:int -> refcount:int -> unit
(** Record one epoch lifecycle event: ["open"], ["swap"], ["retire"] or
    ["drain"], with the epoch's generation tag and refcount after the
    step. *)

val events : unit -> event list
(** The ring's live window, oldest first. *)

val count : unit -> int
(** Events currently held: [min (total ()) (capacity ())]. *)

val total : unit -> int
(** Events ever recorded since the last {!clear}. *)

val dropped : unit -> int
(** Events overwritten by the ring: [total - count]. *)

val to_jsonl : ?reason:string -> unit -> string
(** The dump text: a ["waveidx-flight/1"] header line carrying
    [reason] (default ["manual"]) and the event/dropped counts, then
    one JSON object per event, oldest first. *)

val dump_to : ?reason:string -> string -> unit
(** Write {!to_jsonl} to a file. *)

val set_dump_path : string option -> unit
(** Arm (or disarm) automatic dumps for {!dump_if_configured}. *)

val dump_path : unit -> string option

val dump_if_configured : reason:string -> unit
(** {!dump_to} the armed path, if any; write errors are swallowed (a
    flight dump must never turn a failure into a different failure). *)
