(** Zero-cost-when-disabled tracing: nestable spans with model-disk
    and wall-clock timestamps, plus ambient disk-cost attribution.

    The tracer is a process-global singleton, disabled by default.
    While disabled, {!with_span} runs its body directly (one flag test,
    no allocation) and the disk hooks ({!on_seek}, {!on_read},
    {!on_write}, {!on_model_seconds}) are no-ops, so an uninstrumented
    run pays essentially nothing.

    While enabled, {!with_span} pushes a span on an ambient stack;
    every disk hook fired before the span ends is attributed to {e all}
    currently-open spans (so a parent span's totals are inclusive of
    its children's).  This is the attribution invariant the runner
    cross-check relies on: the seeks/blocks/bytes attributed to a span
    equal the {!Wave_disk.Disk.counters} deltas over the span's extent,
    exactly, because both are driven by the same increments.

    Model time is read through a pluggable clock.  By default it is an
    internal accumulator advanced by {!on_model_seconds}; callers that
    own a disk (e.g. the simulation runner) should register
    [fun () -> Disk.elapsed disk] via {!set_model_clock} so span
    timestamps are bit-identical to the disk's own elapsed readings.
    Wall-clock timestamps always come from [Unix.gettimeofday]. *)

type tags = (string * string) list

type span = {
  id : int;  (** unique within the process, dense from 1 *)
  parent : int;  (** enclosing span's id, or 0 at top level *)
  name : string;
  tags : tags;
  start_model : float;  (** model clock at begin, seconds *)
  start_wall : float;  (** wall clock at begin, epoch seconds *)
  mutable end_model : float;
  mutable end_wall : float;
  mutable seeks : int;
  mutable blocks_read : int;
  mutable blocks_written : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
}

type instant = {
  i_name : string;
  i_tags : tags;
  at_model : float;
  at_wall : float;
}

val model_seconds : span -> float
(** [end_model -. start_model]: the model-disk time attributed to the
    span (inclusive of nested spans). *)

val wall_seconds : span -> float

(* --- lifecycle ----------------------------------------------------- *)

val is_enabled : unit -> bool

val enable : unit -> unit
(** Turn tracing on.  Does not clear previously collected events. *)

val disable : unit -> unit
(** Turn tracing off and unregister the model clock.  Spans still open
    stay on the stack and finish normally if their [with_span] frames
    unwind later (their disk totals stop accumulating). *)

val reset : unit -> unit
(** Drop all finished spans and instants and zero the internal model
    accumulator.  Open spans are unaffected. *)

val set_model_clock : (unit -> float) -> unit
(** Route span model timestamps through [f] (typically
    [fun () -> Disk.elapsed disk]).  Cleared by {!disable}. *)

(* --- recording ------------------------------------------------------ *)

val with_span : ?tags:tags -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span when tracing is enabled,
    or calls [f] directly when disabled.  The span is finished (and
    recorded) even if [f] raises. *)

val instant : ?tags:tags -> string -> unit
(** Record a point event at the current clocks.  No-op when disabled.
    Callers building dynamic tags should guard on {!is_enabled} to keep
    the disabled path allocation-free. *)

(* --- ambient disk hooks (called by Wave_disk) ----------------------- *)

val on_seek : unit -> unit
val on_read : blocks:int -> bytes:int -> unit
val on_write : blocks:int -> bytes:int -> unit

val on_model_seconds : float -> unit
(** Advance the default model clock.  Fired by the disk for every
    elapsed-time charge so traces have a model timeline even when no
    clock is registered. *)

(* --- inspection ----------------------------------------------------- *)

val spans : unit -> span list
(** Finished spans, in order of completion start (oldest first). *)

val instants : unit -> instant list
(** Recorded instants, oldest first. *)

val open_depth : unit -> int
(** Number of spans currently open (0 when quiescent). *)

val find_spans : ?tags:tags -> string -> span list
(** Finished spans matching a name and carrying all the given tags. *)
