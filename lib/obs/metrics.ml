type counter = { mutable count : float }
type gauge = { mutable value : float }

type histogram = {
  mutable xs : float array; (* capacity *)
  mutable len : int; (* observations recorded *)
}

type item = C of counter | G of gauge | H of histogram

type registry = (string, item) Hashtbl.t

let create () : registry = Hashtbl.create 32
let default : registry = create ()

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let intern registry name make match_item =
  match Hashtbl.find_opt registry name with
  | Some item -> (
    match match_item item with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already a %s" name (kind_name item)))
  | None ->
    let item, x = make () in
    Hashtbl.add registry name item;
    x

let counter ?(registry = default) name =
  intern registry name
    (fun () ->
      let c = { count = 0.0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge ?(registry = default) name =
  intern registry name
    (fun () ->
      let g = { value = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let histogram ?(registry = default) name =
  intern registry name
    (fun () ->
      let h = { xs = Array.make 16 0.0; len = 0 } in
      (H h, h))
    (function H h -> Some h | _ -> None)

let inc ?(by = 1.0) c =
  if by < 0.0 then invalid_arg "Metrics.inc: negative increment";
  c.count <- c.count +. by

let counter_value c = c.count

let set g v = g.value <- v
let gauge_value g = g.value

let observe h x =
  if h.len = Array.length h.xs then begin
    let bigger = Array.make (2 * Array.length h.xs) 0.0 in
    Array.blit h.xs 0 bigger 0 h.len;
    h.xs <- bigger
  end;
  h.xs.(h.len) <- x;
  h.len <- h.len + 1

let hist_count h = h.len
let hist_values h = Array.sub h.xs 0 h.len

type hist_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let hist_summary h =
  if h.len = 0 then None
  else begin
    let xs = hist_values h in
    let s = Wave_util.Stats.summarize xs in
    Some
      {
        count = s.Wave_util.Stats.count;
        mean = s.Wave_util.Stats.mean;
        min = s.Wave_util.Stats.min;
        max = s.Wave_util.Stats.max;
        p50 = Wave_util.Stats.percentile xs 50.0;
        p95 = Wave_util.Stats.percentile xs 95.0;
        p99 = Wave_util.Stats.percentile xs 99.0;
      }
  end

let reset registry =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.count <- 0.0
      | G g -> g.value <- 0.0
      | H h -> h.len <- 0)
    registry

let sorted_items registry =
  Hashtbl.fold (fun name item acc -> (name, item) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json registry =
  let items = sorted_items registry in
  let pick f = List.filter_map f items in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function n, C c -> Some (n, Json.Num c.count) | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function n, G g -> Some (n, Json.Num g.value) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | n, H h -> (
              match hist_summary h with
              | None -> Some (n, Json.Obj [ ("count", Json.int 0) ])
              | Some s ->
                Some
                  ( n,
                    Json.Obj
                      [
                        ("count", Json.int s.count);
                        ("mean", Json.Num s.mean);
                        ("min", Json.Num s.min);
                        ("max", Json.Num s.max);
                        ("p50", Json.Num s.p50);
                        ("p95", Json.Num s.p95);
                        ("p99", Json.Num s.p99);
                      ] ))
            | _ -> None)) );
    ]

let dump registry =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, item) ->
      match item with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter   %-32s %g\n" name c.count)
      | G g -> Buffer.add_string buf (Printf.sprintf "gauge     %-32s %g\n" name g.value)
      | H h -> (
        match hist_summary h with
        | None -> Buffer.add_string buf (Printf.sprintf "histogram %-32s (empty)\n" name)
        | Some s ->
          Buffer.add_string buf
            (Printf.sprintf
               "histogram %-32s n=%d mean=%g p50=%g p95=%g p99=%g max=%g\n" name
               s.count s.mean s.p50 s.p95 s.p99 s.max)))
    (sorted_items registry);
  Buffer.contents buf
