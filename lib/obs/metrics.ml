type counter = { mutable count : float }

(* Gauges carry their name so [set] can record the update into the
   flight recorder; counters and histograms stay nameless — they are
   hot-path and would flood the ring. *)
type gauge = { g_name : string; mutable value : float }

(* Bounded histogram: a reservoir of at most [cap] observations (exact
   while [seen <= cap], algorithm R beyond), plus exact running count /
   sum / min / max so only the percentiles pay the sampling error.  The
   PRNG is a private splitmix64 seeded from the histogram's name, so a
   given workload always retains the same sample. *)
type histogram = {
  mutable xs : float array; (* capacity grows up to cap *)
  mutable len : int; (* observations retained *)
  cap : int;
  mutable seen : int; (* observations ever recorded *)
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable rng : int64;
}

type item = C of counter | G of gauge | H of histogram

type registry = (string, item) Hashtbl.t

let create () : registry = Hashtbl.create 32
let default : registry = create ()

let hist_cap = ref 8192
let default_histogram_cap () = !hist_cap

let set_default_histogram_cap cap =
  if cap < 1 then invalid_arg "Metrics.set_default_histogram_cap: cap < 1";
  hist_cap := cap

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let intern registry name make match_item =
  match Hashtbl.find_opt registry name with
  | Some item -> (
    match match_item item with
    | Some x -> x
    | None ->
      invalid_arg
        (Printf.sprintf "Metrics: %S is already a %s" name (kind_name item)))
  | None ->
    let item, x = make () in
    Hashtbl.add registry name item;
    x

let counter ?(registry = default) name =
  intern registry name
    (fun () ->
      let c = { count = 0.0 } in
      (C c, c))
    (function C c -> Some c | _ -> None)

let gauge ?(registry = default) name =
  intern registry name
    (fun () ->
      let g = { g_name = name; value = 0.0 } in
      (G g, g))
    (function G g -> Some g | _ -> None)

let histogram ?(registry = default) ?cap name =
  let cap = Option.value ~default:!hist_cap cap in
  if cap < 1 then invalid_arg "Metrics.histogram: cap < 1";
  intern registry name
    (fun () ->
      let h =
        {
          xs = Array.make (min 16 cap) 0.0;
          len = 0;
          cap;
          seen = 0;
          sum = 0.0;
          vmin = infinity;
          vmax = neg_infinity;
          rng = Int64.of_int (Hashtbl.hash name lor 1);
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let inc ?(by = 1.0) c =
  if by < 0.0 then invalid_arg "Metrics.inc: negative increment";
  c.count <- c.count +. by

let counter_value c = c.count

let set g v =
  Recorder.record_metric ~name:g.g_name ~value:v ~delta:(v -. g.value);
  g.value <- v

let gauge_value g = g.value

let next_u64 h =
  h.rng <- Int64.add h.rng 0x9E3779B97F4A7C15L;
  let z = h.rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, n); the modulo bias at reservoir sizes is far below
   the sampling error itself. *)
let rand_below h n =
  Int64.to_int (Int64.rem (Int64.logand (next_u64 h) Int64.max_int) (Int64.of_int n))

let observe h x =
  h.seen <- h.seen + 1;
  h.sum <- h.sum +. x;
  if x < h.vmin then h.vmin <- x;
  if x > h.vmax then h.vmax <- x;
  if h.len < h.cap then begin
    if h.len = Array.length h.xs then begin
      let bigger = Array.make (min h.cap (2 * Array.length h.xs)) 0.0 in
      Array.blit h.xs 0 bigger 0 h.len;
      h.xs <- bigger
    end;
    h.xs.(h.len) <- x;
    h.len <- h.len + 1
  end
  else begin
    (* Algorithm R: the i-th observation replaces a reservoir slot with
       probability cap/i. *)
    let j = rand_below h h.seen in
    if j < h.cap then h.xs.(j) <- x
  end

let hist_count h = h.seen
let hist_sample_size h = h.len
let hist_values h = Array.sub h.xs 0 h.len

type hist_summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let hist_summary h =
  if h.seen = 0 then None
  else begin
    let xs = hist_values h in
    Some
      {
        count = h.seen;
        mean = h.sum /. float_of_int h.seen;
        min = h.vmin;
        max = h.vmax;
        p50 = Wave_util.Stats.percentile xs 50.0;
        p95 = Wave_util.Stats.percentile xs 95.0;
        p99 = Wave_util.Stats.percentile xs 99.0;
      }
  end

type value =
  [ `Counter of float | `Gauge of float | `Histogram of hist_summary option ]

let lookup ?(registry = default) name : value option =
  match Hashtbl.find_opt registry name with
  | None -> None
  | Some (C c) -> Some (`Counter c.count)
  | Some (G g) -> Some (`Gauge g.value)
  | Some (H h) -> Some (`Histogram (hist_summary h))

let remove ?(registry = default) name =
  let existed = Hashtbl.mem registry name in
  Hashtbl.remove registry name;
  existed

let reset registry =
  Hashtbl.iter
    (fun _ item ->
      match item with
      | C c -> c.count <- 0.0
      | G g -> g.value <- 0.0
      | H h ->
        h.len <- 0;
        h.seen <- 0;
        h.sum <- 0.0;
        h.vmin <- infinity;
        h.vmax <- neg_infinity)
    registry

let reset_all () = reset default

let sorted_items registry =
  Hashtbl.fold (fun name item acc -> (name, item) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot ?(registry = default) () : (string * value) list =
  List.map
    (fun (name, item) ->
      let v : value =
        match item with
        | C c -> `Counter c.count
        | G g -> `Gauge g.value
        | H h -> `Histogram (hist_summary h)
      in
      (name, v))
    (sorted_items registry)

let to_json registry =
  let items = sorted_items registry in
  let pick f = List.filter_map f items in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (pick (function n, C c -> Some (n, Json.Num c.count) | _ -> None)) );
      ( "gauges",
        Json.Obj
          (pick (function n, G g -> Some (n, Json.Num g.value) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (pick (function
            | n, H h -> (
              match hist_summary h with
              | None -> Some (n, Json.Obj [ ("count", Json.int 0) ])
              | Some s ->
                Some
                  ( n,
                    Json.Obj
                      [
                        ("count", Json.int s.count);
                        ("mean", Json.Num s.mean);
                        ("min", Json.Num s.min);
                        ("max", Json.Num s.max);
                        ("p50", Json.Num s.p50);
                        ("p95", Json.Num s.p95);
                        ("p99", Json.Num s.p99);
                      ] ))
            | _ -> None)) );
    ]

let dump registry =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, item) ->
      match item with
      | C c -> Buffer.add_string buf (Printf.sprintf "counter   %-32s %g\n" name c.count)
      | G g -> Buffer.add_string buf (Printf.sprintf "gauge     %-32s %g\n" name g.value)
      | H h -> (
        match hist_summary h with
        | None -> Buffer.add_string buf (Printf.sprintf "histogram %-32s (empty)\n" name)
        | Some s ->
          Buffer.add_string buf
            (Printf.sprintf
               "histogram %-32s n=%d mean=%g p50=%g p95=%g p99=%g max=%g\n" name
               s.count s.mean s.p50 s.p95 s.p99 s.max)))
    (sorted_items registry);
  Buffer.contents buf
