open Wave_core
open Wave_storage
open Wave_disk

type slot = {
  mutable index : Index.t;
  mutable days : Dayset.t;
  disk_id : int;
}

type t = {
  disks : Disk.t array;
  slots : slot array;
  store : Env.day_store;
  w : int;
  mutable day : int;
}

type timing = { serial : float; parallel : float }

let create ?(icfg = Index.default_config) ?(shared_pool = false) ~store ~w ~n
    ~disks () =
  if disks < 1 then invalid_arg "Multi_disk.create: need at least one disk";
  let disk_arr = Array.init disks (fun _ -> Index.make_disk icfg) in
  (* A global buffer manager: one set of frames backs every arm.
     Registering the shared views before any [Index.build] runs means
     [Index.cache_of_config]'s [Cache.attach] finds them instead of
     creating per-arm pools. *)
  (if shared_pool then
     match icfg.Index.cache_blocks with
     | None -> invalid_arg "Multi_disk.create: shared_pool needs cache_blocks"
     | Some frames ->
       ignore
         (Wave_cache.Cache.attach_shared
            (Array.to_list disk_arr)
            ~frames ~readahead:icfg.Index.cache_readahead
            ~write_back:icfg.Index.cache_write_back ()));
  let parts = Split.contiguous ~first_day:1 ~days:w ~parts:n in
  (* LPT placement over per-slot day counts: [Split.contiguous] hands
     the first slots the larger ranges, so round-robin (slot [i] on
     disk [i mod disks]) could pile the big slots onto the low-id
     disks.  Balancing by weight keeps arm block counts within 2x of
     each other under uniform days. *)
  let placement =
    Wave_shard.Partition.place
      ~weights:
        (Array.of_list
           (List.map (fun (lo, hi) -> float_of_int (hi - lo + 1)) parts))
      ~arms:disks
  in
  let slots =
    Array.of_list
      (List.mapi
         (fun i (lo, hi) ->
           let disk_id = placement.(i) in
           let batches = List.init (hi - lo + 1) (fun k -> store (lo + k)) in
           {
             index = Index.build disk_arr.(disk_id) icfg batches;
             days = Dayset.range lo hi;
             disk_id;
           })
         parts)
  in
  { disks = disk_arr; slots; store; w; day = w }

let n_disks t = Array.length t.disks
let n_constituents t = Array.length t.slots
let current_day t = t.day

(* Per-arm slices: [local_stats] counts only the accesses issued
   through that arm's view, so the breakdown stays per-arm even when
   one shared pool backs every disk. *)
let pool_stats t =
  Array.to_list t.disks
  |> List.mapi (fun i d -> (i, Wave_cache.Cache.find d))
  |> List.filter_map (fun (i, p) ->
         Option.map (fun p -> (i, Wave_cache.Cache.local_stats p)) p)

(* Run [f], measuring per-disk elapsed deltas; serial = sum, parallel =
   max (each disk's work happens concurrently with the others'). *)
let timed t f =
  let before = Array.map Disk.elapsed t.disks in
  let result = f () in
  let deltas = Array.mapi (fun i b -> Disk.elapsed t.disks.(i) -. b) before in
  let serial = Array.fold_left ( +. ) 0.0 deltas in
  let parallel = Array.fold_left Float.max 0.0 deltas in
  (result, { serial; parallel })

let probe t ~value =
  timed t (fun () ->
      Array.fold_left (fun acc s -> acc @ Index.probe s.index value) [] t.slots)

let scan t =
  timed t (fun () ->
      Array.fold_left (fun acc s -> acc @ Index.scan s.index) [] t.slots)

let advance t =
  let new_day = t.day + 1 in
  let expired = new_day - t.w in
  let j =
    match
      Array.find_index (fun s -> Dayset.mem expired s.days) t.slots
    with
    | Some j -> j
    | None -> failwith "Multi_disk.advance: expired day not found"
  in
  let (), timing =
    timed t (fun () ->
        let s = t.slots.(j) in
        ignore (Index.delete_days s.index (fun d -> d = expired));
        Index.add_batch s.index (t.store new_day);
        s.days <- Dayset.add new_day (Dayset.remove expired s.days))
  in
  t.day <- new_day;
  timing

let speedup_table ~store ~w ~n ~disks =
  let rows =
    List.map
      (fun d ->
        let m = create ~store ~w ~n ~disks:d () in
        (* a few maintenance days to reach steady state *)
        for _ = 1 to w do
          ignore (advance m)
        done;
        let _, pt = probe m ~value:1 in
        let _, st = scan m in
        let speedup (x : timing) =
          if x.parallel > 0.0 then x.serial /. x.parallel else 1.0
        in
        [
          string_of_int d;
          Printf.sprintf "%.4f" pt.serial;
          Printf.sprintf "%.4f" pt.parallel;
          Printf.sprintf "%.2fx" (speedup pt);
          Printf.sprintf "%.4f" st.serial;
          Printf.sprintf "%.4f" st.parallel;
          Printf.sprintf "%.2fx" (speedup st);
        ])
      disks
  in
  Printf.sprintf
    "# Multi-disk wave index (Section 8): query parallelism, W=%d n=%d\n%s" w n
    (Wave_util.Table_print.render
       ~header:
         [
           "disks"; "probe serial(s)"; "probe parallel(s)"; "probe speedup";
           "scan serial(s)"; "scan parallel(s)"; "scan speedup";
         ]
       ~rows)
