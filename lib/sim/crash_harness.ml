open Wave_core
open Wave_disk
open Wave_storage

(* Deterministic day batches: 8 postings per day over 6 values, same
   shape as the unit-test stores, so every run of a configuration is
   bit-identical and twin comparison is exact. *)
let default_store day =
  Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Entry.value = 1 + ((day + i) mod 6);
           entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
         }))

type point_result = {
  point : Disk.fault_point;
  mode : Disk.fault_mode;
  fired : bool;
  rolled_forward : bool;
  recovered_day : int;
  consistent : bool;
  space_ok : bool;
  recovery_seconds : float;
  wasted_seconds : float;
}

type report = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;
  points : point_result list;
  passed : bool;
}

(* Canonical answers of the wave at its current day: every value's
   window-bounded TimedIndexProbe plus the window TimedSegmentScan,
   each sorted by rid (packed rebuilds may reorder equal keys). *)
type reference = { ref_day : int; probes : (int * int list) list; scan : int list }

let rids entries =
  List.sort compare (List.map (fun (e : Entry.t) -> e.Entry.rid) entries)

let capture ~w frame day =
  let t1 = day - w + 1 and t2 = day in
  {
    ref_day = day;
    probes =
      List.init 6 (fun v ->
          (v + 1, rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:(v + 1))));
    scan = rids (Frame.timed_segment_scan frame ~t1 ~t2);
  }

let matches ~w frame (r : reference) =
  let t1 = r.ref_day - w + 1 and t2 = r.ref_day in
  rids (Frame.timed_segment_scan frame ~t1 ~t2) = r.scan
  && List.for_all
       (fun (v, expect) ->
         rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:v) = expect)
       r.probes

let fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () =
  let env = Env.create ?icfg ~technique ~store ~w ~n () in
  Checkpoint.start scheme env

(* Each instance's disk dies with it; free its buffer-pool registry
   slot (a no-op when running uncached). *)
let release cp = Wave_cache.Cache.detach (Checkpoint.env cp).Env.disk

(* No leaked and no double-freed space: the allocator's live count is
   exactly what the surviving constituents claim, and nothing is left
   marked torn. *)
let space_consistent cp =
  let disk = (Checkpoint.env cp).Env.disk in
  let frame = Checkpoint.frame cp in
  let claimed = ref 0 in
  for j = 1 to Frame.n frame do
    claimed := !claimed + Index.allocated_blocks (Frame.slot_index frame j)
  done;
  Disk.live_blocks disk = !claimed && Disk.torn_count disk = 0

let run_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref ~after_ref
    ~mode point =
  let cp = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to cp (day - 1);
  (* Replay the twin's pre-transition reference capture: with a buffer
     pool attached those probes and scans change the pool's residency,
     and the instance must enter the transition with the exact pool
     state the twin had when the fault schedule was discovered.
     Without a pool this is a no-op for the schedule (points are
     relative to arming). *)
  ignore (capture ~w (Checkpoint.frame cp) (day - 1));
  let disk = (Checkpoint.env cp).Env.disk in
  Disk.arm_fault disk ~mode point;
  let t0 = Disk.elapsed disk in
  let fired =
    match Checkpoint.transition cp with
    | () -> false
    | exception Disk.Disk_error _ -> true
  in
  let wasted_seconds = Disk.elapsed disk -. t0 in
  Disk.clear_fault disk;
  if fired then begin
    let r = Checkpoint.recover cp in
    let reference =
      if r.Checkpoint.recovered_day = day then after_ref else before_ref
    in
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = r.Checkpoint.rolled_forward;
        recovered_day = r.Checkpoint.recovered_day;
        consistent =
          r.Checkpoint.recovered_day = reference.ref_day
          && matches ~w (Checkpoint.frame cp) reference;
        space_ok = space_consistent cp;
        recovery_seconds = r.Checkpoint.recovery_seconds;
        wasted_seconds;
      }
    in
    release cp;
    res
  end
  else begin
    (* The schedule is exact, so this branch means the twin and the
       instance diverged — report it as a failed point. *)
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = false;
        recovered_day = Checkpoint.current_day cp;
        consistent = matches ~w (Checkpoint.frame cp) after_ref;
        space_ok = space_consistent cp;
        recovery_seconds = 0.0;
        wasted_seconds;
      }
    in
    release cp;
    res
  end

let sweep ?(store = default_store) ?icfg ~scheme ~technique ~w ~n ~day () =
  if day <= w then invalid_arg "Crash_harness.sweep: day must exceed w";
  (* Uncrashed twin: discover the transition's fault points and capture
     the reference answers on both sides of it.  With a buffer pool in
     [icfg], the twin and every fault instance charge the disk through
     identical pool states, so the discovered schedule stays exact. *)
  let twin = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to twin (day - 1);
  let twin_disk = (Checkpoint.env twin).Env.disk in
  let before_ref = capture ~w (Checkpoint.frame twin) (day - 1) in
  let before = Disk.counters twin_disk in
  Checkpoint.transition twin;
  let after = Disk.counters twin_disk in
  let after_ref = capture ~w (Checkpoint.frame twin) day in
  let schedule = Disk.fault_schedule ~before ~after in
  let points =
    List.concat_map
      (fun (p : Disk.fault_point) ->
        let modes =
          match p.Disk.target with
          | Disk.On_seek -> [ Disk.Fail_stop ]
          | Disk.On_write -> [ Disk.Fail_stop; Disk.Torn ]
          | Disk.On_flush -> [ Disk.Fail_stop ]
        in
        List.map
          (fun mode ->
            run_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref
              ~after_ref ~mode p)
          modes)
      schedule
  in
  release twin;
  let passed =
    points <> []
    && List.for_all (fun r -> r.fired && r.consistent && r.space_ok) points
  in
  { scheme; technique; w; n; day; points; passed }

let pp_point_result ppf r =
  Format.fprintf ppf "%a %s: %s day=%d recover=%.3fs wasted=%.3fs%s%s"
    Disk.pp_fault_point r.point
    (match r.mode with Disk.Fail_stop -> "fail-stop" | Disk.Torn -> "torn")
    (if r.rolled_forward then "roll-forward" else "roll-back")
    r.recovered_day r.recovery_seconds r.wasted_seconds
    (if r.consistent then "" else " INCONSISTENT")
    (if r.space_ok then "" else " SPACE-LEAK")

let pp_report ppf t =
  Format.fprintf ppf "%s x %s (W=%d n=%d day=%d): %d points %s@."
    (Scheme.name t.scheme)
    (Env.technique_name t.technique)
    t.w t.n t.day (List.length t.points)
    (if t.passed then "PASS" else "FAIL");
  List.iter
    (fun r ->
      if not (r.fired && r.consistent && r.space_ok) then
        Format.fprintf ppf "  %a@." pp_point_result r)
    t.points
