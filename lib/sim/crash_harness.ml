open Wave_core
open Wave_disk
open Wave_storage

(* Deterministic day batches: 8 postings per day over 6 values, same
   shape as the unit-test stores, so every run of a configuration is
   bit-identical and twin comparison is exact. *)
let default_store day =
  Entry.batch_create ~day
    (Array.init 8 (fun i ->
         {
           Entry.value = 1 + ((day + i) mod 6);
           entry = { Entry.rid = (day * 100) + i; day; info = i + 1 };
         }))

type point_result = {
  point : Disk.fault_point;
  mode : Disk.fault_mode;
  fired : bool;
  rolled_forward : bool;
  recovered_day : int;
  consistent : bool;
  space_ok : bool;
  iso_ok : bool;
  recovery_seconds : float;
  wasted_seconds : float;
  torn_tail : bool; (* kill sweep: block file tail truncated behind the kill *)
}

type report = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;
  points : point_result list;
  passed : bool;
}

(* Canonical answers of the wave at its current day: every value's
   window-bounded TimedIndexProbe plus the window TimedSegmentScan,
   each sorted by rid (packed rebuilds may reorder equal keys). *)
type reference = { ref_day : int; probes : (int * int list) list; scan : int list }

let rids entries =
  List.sort compare (List.map (fun (e : Entry.t) -> e.Entry.rid) entries)

let capture ~w frame day =
  let t1 = day - w + 1 and t2 = day in
  {
    ref_day = day;
    probes =
      List.init 6 (fun v ->
          (v + 1, rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:(v + 1))));
    scan = rids (Frame.timed_segment_scan frame ~t1 ~t2);
  }

let matches ~w frame (r : reference) =
  let t1 = r.ref_day - w + 1 and t2 = r.ref_day in
  rids (Frame.timed_segment_scan frame ~t1 ~t2) = r.scan
  && List.for_all
       (fun (v, expect) ->
         rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:v) = expect)
       r.probes

let fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () =
  let env = Env.create ?icfg ~technique ~store ~w ~n () in
  Checkpoint.start scheme env

(* --- concurrent serving during the sweep ----------------------------- *)

(* Probes a concurrent sweep serves mid-transition all use the
   pre-transition window [day-w, day-1] — the window a reader that
   arrived before the swap is entitled to; that is exactly the window
   [capture ~w frame (day-1)] records, so [before_ref.probes] doubles
   as the snapshot-isolation reference. *)
let old_window_probes ~w frame day =
  List.init 6 (fun v ->
      ( v + 1,
        rids
          (Frame.timed_index_probe frame ~t1:(day - w) ~t2:(day - 1)
             ~value:(v + 1)) ))

(* Drive one transition with a deterministic mid-transition arrival
   schedule under epoch isolation: six probes (one per value), 0.05
   model-seconds apart, starting when the transition does.  Shadow
   techniques serve due arrivals against the snapshot epoch at every
   completed disk operation and drain the stragglers against the
   retired epoch after the commit; In_place cannot isolate readers from
   its own mutation, so its arrivals queue until the commit and run
   against the new wave.  Returns [(fired, served)]: whether an armed
   fault fired anywhere in the transition-plus-drain window, and every
   answered probe as [(value, rids, against_snapshot)].  The drain runs
   with the fault still armed, so the discovered schedule — the twin
   runs this same driver — includes points inside the epoch-swap and
   reader-drain window, not just the transition proper. *)
let drive_concurrent cp ~w ~day =
  let env = Checkpoint.env cp in
  let disk = env.Env.disk in
  let in_place = env.Env.technique = Env.In_place in
  Wave_epoch.Epoch.attach disk;
  let slots =
    List.map
      (fun (idx, ds) ->
        (idx, fun ~t1 ~t2 -> Dayset.exists (fun d -> d >= t1 && d <= t2) ds))
      (Frame.snapshot (Checkpoint.frame cp))
  in
  let ep = Wave_epoch.Epoch.open_ disk ~slots in
  let t1 = day - w and t2 = day - 1 in
  let t0 = Disk.elapsed disk in
  let arrivals =
    ref (List.init 6 (fun i -> (t0 +. (0.05 *. float_of_int (i + 1)), i + 1)))
  in
  let served = ref [] in
  let serve_snapshot v =
    Wave_epoch.Epoch.acquire ep;
    Fun.protect
      ~finally:(fun () -> Wave_epoch.Epoch.release ep)
      (fun () ->
        served :=
          (v, rids (Wave_epoch.Epoch.probe ep ~value:v ~t1 ~t2), true)
          :: !served)
  in
  let rec tick () =
    match !arrivals with
    | (a, v) :: rest when a <= Disk.elapsed disk ->
      arrivals := rest;
      serve_snapshot v;
      tick ()
    | _ -> ()
  in
  match
    (if in_place then Checkpoint.transition cp
     else
       Wave_epoch.Epoch.Interleave.run disk ~on_op:tick (fun () ->
           Checkpoint.transition cp));
    (* Post-commit drain: stragglers resolve against the retired
       snapshot (or, In_place, the new wave), then the owner lease
       drops and the epoch drains for real. *)
    List.iter
      (fun (_, v) ->
        if in_place then
          served :=
            ( v,
              rids
                (Frame.timed_index_probe (Checkpoint.frame cp) ~t1 ~t2
                   ~value:v),
              false )
            :: !served
        else serve_snapshot v)
      !arrivals;
    arrivals := [];
    Wave_epoch.Epoch.release ep;
    Wave_epoch.Epoch.detach disk
  with
  | () -> (false, List.rev !served)
  | exception Disk.Disk_error _ ->
    (* A mid-transition fault already ran the checkpoint crash path
       (which tears the epoch down); a fault in the drain above did
       not — make the teardown unconditional (idempotent). *)
    Wave_epoch.Epoch.on_crash disk;
    (true, List.rev !served)

(* Snapshot isolation held iff every probe served against the snapshot
   matches the pre-transition reference and every queued (In_place)
   probe matches the post-transition wave over the same window — and no
   epoch outlived the run. *)
let iso_consistent disk ~before_ref ~after_conc served =
  Wave_epoch.Epoch.live_epochs disk = 0
  && List.for_all
       (fun (v, answer, snap) ->
         match
           if snap then List.assoc_opt v before_ref.probes
           else List.assoc_opt v after_conc
         with
         | Some expect -> answer = expect
         | None -> false)
       served

(* Each instance's disk dies with it; free its buffer-pool registry
   slot (a no-op when running uncached). *)
let release cp = Wave_cache.Cache.detach (Checkpoint.env cp).Env.disk

(* No leaked and no double-freed space: the allocator's live count is
   exactly what the surviving constituents claim, and nothing is left
   marked torn. *)
let space_consistent cp =
  let disk = (Checkpoint.env cp).Env.disk in
  let frame = Checkpoint.frame cp in
  let claimed = ref 0 in
  for j = 1 to Frame.n frame do
    claimed := !claimed + Index.allocated_blocks (Frame.slot_index frame j)
  done;
  Disk.live_blocks disk = !claimed && Disk.torn_count disk = 0

let run_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref ~after_ref
    ~concurrent ~after_conc ~mode point =
  (* Each point gets a fresh flight-recorder window, so a failing
     point's dump holds exactly the events of that point's run. *)
  Wave_obs.Recorder.clear ();
  let cp = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to cp (day - 1);
  (* Replay the twin's pre-transition reference capture: with a buffer
     pool attached those probes and scans change the pool's residency,
     and the instance must enter the transition with the exact pool
     state the twin had when the fault schedule was discovered.
     Without a pool this is a no-op for the schedule (points are
     relative to arming). *)
  ignore (capture ~w (Checkpoint.frame cp) (day - 1));
  let disk = (Checkpoint.env cp).Env.disk in
  Disk.arm_fault disk ~mode point;
  let t0 = Disk.elapsed disk in
  let fired, served =
    if concurrent then drive_concurrent cp ~w ~day
    else
      ( (match Checkpoint.transition cp with
        | () -> false
        | exception Disk.Disk_error _ -> true),
        [] )
  in
  let wasted_seconds = Disk.elapsed disk -. t0 in
  Disk.clear_fault disk;
  let iso = iso_consistent disk ~before_ref ~after_conc served in
  if fired then begin
    (* A fault in the post-commit drain window fires outside
       [Checkpoint.transition]: the transition is durable, but the
       process still dies there — model it before recovering. *)
    if not (Checkpoint.crashed cp) then Checkpoint.kill cp;
    let r = Checkpoint.recover cp in
    let reference =
      if r.Checkpoint.recovered_day = day then after_ref else before_ref
    in
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = r.Checkpoint.rolled_forward;
        recovered_day = r.Checkpoint.recovered_day;
        consistent =
          r.Checkpoint.recovered_day = reference.ref_day
          && matches ~w (Checkpoint.frame cp) reference;
        space_ok = space_consistent cp;
        iso_ok = iso;
        recovery_seconds = r.Checkpoint.recovery_seconds;
        wasted_seconds;
        torn_tail = false;
      }
    in
    release cp;
    res
  end
  else begin
    (* The schedule is exact, so this branch means the twin and the
       instance diverged — report it as a failed point. *)
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = false;
        recovered_day = Checkpoint.current_day cp;
        consistent = matches ~w (Checkpoint.frame cp) after_ref;
        space_ok = space_consistent cp;
        iso_ok = iso;
        recovery_seconds = 0.0;
        wasted_seconds;
        torn_tail = false;
      }
    in
    release cp;
    res
  end

(* Best-effort flight dump for a failing point; never a new failure
   mode of its own. *)
let dump_flight ~reason path =
  try Wave_obs.Recorder.dump_to ~reason path with Sys_error _ -> ()

let ensure_dir dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let point_slug mode truncate_tail (p : Disk.fault_point) =
  Format.asprintf "%a_%s%s" Disk.pp_fault_point p
    (match mode with
    | Disk.Torn -> "torn"
    | Disk.Stall _ -> "stall"
    | Disk.Fail_stop -> "failstop")
    (if truncate_tail then "_tail" else "")

let point_passed r = r.fired && r.consistent && r.space_ok && r.iso_ok

let sweep ?(store = default_store) ?icfg ?artifact_dir ?(concurrent = false)
    ~scheme ~technique ~w ~n ~day () =
  if day <= w then invalid_arg "Crash_harness.sweep: day must exceed w";
  (* Uncrashed twin: discover the transition's fault points and capture
     the reference answers on both sides of it.  With a buffer pool in
     [icfg], the twin and every fault instance charge the disk through
     identical pool states, so the discovered schedule stays exact.  A
     concurrent twin runs the same interleaved driver the instances do,
     so the schedule also covers the served probes and the epoch
     swap/drain window. *)
  let twin = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to twin (day - 1);
  let twin_disk = (Checkpoint.env twin).Env.disk in
  let before_ref = capture ~w (Checkpoint.frame twin) (day - 1) in
  let before = Disk.counters twin_disk in
  if concurrent then ignore (drive_concurrent twin ~w ~day)
  else Checkpoint.transition twin;
  let after = Disk.counters twin_disk in
  let after_ref = capture ~w (Checkpoint.frame twin) day in
  let after_conc =
    if concurrent then old_window_probes ~w (Checkpoint.frame twin) day else []
  in
  let schedule = Disk.fault_schedule ~before ~after in
  let points =
    List.concat_map
      (fun (p : Disk.fault_point) ->
        let modes =
          match p.Disk.target with
          | Disk.On_seek -> [ Disk.Fail_stop ]
          | Disk.On_write -> [ Disk.Fail_stop; Disk.Torn ]
          | Disk.On_flush -> [ Disk.Fail_stop ]
        in
        List.map
          (fun mode ->
            let res =
              run_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref
                ~after_ref ~concurrent ~after_conc ~mode p
            in
            (* The simulated sweep has no per-point directory of its
               own; with [artifact_dir] set, a failing point still
               leaves its flight-recorder dump behind. *)
            (match artifact_dir with
            | Some adir when not (point_passed res) ->
              ensure_dir adir;
              let slug = point_slug mode false p in
              dump_flight ~reason:("sweep failure: " ^ slug)
                (Filename.concat adir (slug ^ ".flight.jsonl"))
            | _ -> ());
            res)
          modes)
      schedule
  in
  release twin;
  let passed = points <> [] && List.for_all point_passed points in
  { scheme; technique; w; n; day; points; passed }

(* --- kill-and-recover sweep on the file backend ---------------------- *)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter
      (fun name -> rm_rf (Filename.concat path name))
      (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())

let file_instance ?icfg ~scheme ~technique ~w ~n ~store dir =
  Store_dir.init dir;
  let icfg = match icfg with Some c -> c | None -> Index.default_config in
  let icfg =
    { icfg with Index.disk_backend = Disk.File (Store_dir.blocks_path dir) }
  in
  let disk = Index.make_disk icfg in
  let env = Env.create ~disk ~icfg ~technique ~store ~w ~n () in
  (Checkpoint.start ~dir scheme env, icfg)

let run_kill_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref
    ~after_ref ~concurrent ~after_conc ~mode ~truncate_tail subdir point =
  rm_rf subdir;
  Wave_obs.Recorder.clear ();
  let cp, icfg = file_instance ?icfg ~scheme ~technique ~w ~n ~store subdir in
  Checkpoint.advance_to cp (day - 1);
  ignore (capture ~w (Checkpoint.frame cp) (day - 1));
  let disk = (Checkpoint.env cp).Env.disk in
  Disk.arm_fault disk ~mode point;
  let t0 = Disk.elapsed disk in
  let fired, served =
    if concurrent then drive_concurrent cp ~w ~day
    else
      ( (match Checkpoint.transition cp with
        | () -> false
        | exception Disk.Disk_error _ -> true),
        [] )
  in
  let wasted_seconds = Disk.elapsed disk -. t0 in
  Disk.clear_fault disk;
  let iso = iso_consistent disk ~before_ref ~after_conc served in
  if not fired then begin
    (* Twin/instance divergence: report without killing so the frame is
       still queryable. *)
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = false;
        recovered_day = Checkpoint.current_day cp;
        consistent = matches ~w (Checkpoint.frame cp) after_ref;
        space_ok = space_consistent cp;
        iso_ok = iso;
        recovery_seconds = 0.0;
        wasted_seconds;
        torn_tail = false;
      }
    in
    release cp;
    Disk.close disk;
    res
  end
  else begin
    (* The kill: the process dies here.  Scheme, buffer pool, epoch
       registry and allocator evaporate; only the checkpoint directory
       survives. *)
    Wave_epoch.Epoch.on_crash disk;
    release cp;
    Disk.close disk;
    if truncate_tail then begin
      (* The platter also lost the tail of the block file — the torn
         last write taken to its worst case. *)
      let blocks = Store_dir.blocks_path subdir in
      let size = (Unix.stat blocks).Unix.st_size in
      let bs = icfg.Index.entry_bytes in
      Unix.truncate blocks (size / bs / 2 * bs)
    end;
    let cp2, r = Checkpoint.reopen ~icfg ~dir:subdir ~store () in
    let reference =
      if r.Checkpoint.recovered_day = day then after_ref else before_ref
    in
    let res =
      {
        point;
        mode;
        fired;
        rolled_forward = r.Checkpoint.rolled_forward;
        recovered_day = r.Checkpoint.recovered_day;
        consistent =
          r.Checkpoint.recovered_day = reference.ref_day
          && matches ~w (Checkpoint.frame cp2) reference;
        space_ok = space_consistent cp2;
        iso_ok = iso;
        recovery_seconds = r.Checkpoint.recovery_seconds;
        wasted_seconds;
        torn_tail = truncate_tail;
      }
    in
    release cp2;
    Disk.close (Checkpoint.env cp2).Env.disk;
    res
  end

let kill_sweep ?(store = default_store) ?icfg ?(concurrent = false) ~scheme
    ~technique ~w ~n ~day ~dir () =
  if day <= w then invalid_arg "Crash_harness.kill_sweep: day must exceed w";
  Store_dir.init dir;
  (* File-backed uncrashed twin: the backing adds no model operations,
     so the discovered schedule is the simulator's, but discovering it
     on the real backend keeps the two paths honest about each other. *)
  let twin_dir = Filename.concat dir "twin" in
  rm_rf twin_dir;
  let twin, _ = file_instance ?icfg ~scheme ~technique ~w ~n ~store twin_dir in
  Checkpoint.advance_to twin (day - 1);
  let twin_disk = (Checkpoint.env twin).Env.disk in
  let before_ref = capture ~w (Checkpoint.frame twin) (day - 1) in
  let before = Disk.counters twin_disk in
  if concurrent then ignore (drive_concurrent twin ~w ~day)
  else Checkpoint.transition twin;
  let after = Disk.counters twin_disk in
  let after_ref = capture ~w (Checkpoint.frame twin) day in
  let after_conc =
    if concurrent then old_window_probes ~w (Checkpoint.frame twin) day else []
  in
  let schedule = Disk.fault_schedule ~before ~after in
  release twin;
  Disk.close twin_disk;
  rm_rf twin_dir;
  let last_write =
    List.fold_left
      (fun acc (p : Disk.fault_point) ->
        if p.Disk.target = Disk.On_write then Some p else acc)
      None schedule
  in
  let points =
    List.concat_map
      (fun (p : Disk.fault_point) ->
        let modes =
          match p.Disk.target with
          | Disk.On_seek -> [ Disk.Fail_stop ]
          | Disk.On_write -> [ Disk.Fail_stop; Disk.Torn ]
          | Disk.On_flush -> [ Disk.Fail_stop ]
        in
        List.concat_map
          (fun mode ->
            (* The last write point additionally runs a torn-tail
               variant: the file is truncated behind the kill. *)
            let variants =
              if mode = Disk.Torn && last_write = Some p then [ false; true ]
              else [ false ]
            in
            List.map
              (fun truncate_tail ->
                let slug = point_slug mode truncate_tail p in
                let subdir = Filename.concat dir slug in
                let res =
                  run_kill_point ?icfg ~scheme ~technique ~w ~n ~store ~day
                    ~before_ref ~after_ref ~concurrent ~after_conc ~mode
                    ~truncate_tail subdir p
                in
                (* Passing points clean up after themselves; a failing
                   point keeps its directory — torn block file, sidecar,
                   manifests, and the flight-recorder dump of the run
                   that died there — as the debugging artifact. *)
                if point_passed res then rm_rf subdir
                else
                  dump_flight ~reason:("kill_sweep failure: " ^ slug)
                    (Filename.concat subdir "flight.jsonl");
                res)
              variants)
          modes)
      schedule
  in
  let passed = points <> [] && List.for_all point_passed points in
  { scheme; technique; w; n; day; points; passed }

(* --- double-fault sweep: crash during recovery ----------------------- *)

type double_point = {
  d_first : Disk.fault_point * Disk.fault_mode;
  d_second : Disk.fault_point * Disk.fault_mode;
  d_fired_both : bool;
  d_rolled_forward : bool;
  d_recovered_day : int;
  d_consistent : bool;
  d_space_ok : bool;
}

type double_report = {
  dr_scheme : Scheme.kind;
  dr_technique : Env.technique;
  dr_w : int;
  dr_n : int;
  dr_day : int;
  dr_points : double_point list;
  dr_passed : bool;
}

(* First, middle and last of a list — the bounded selection that keeps
   the quadratic double sweep affordable while still covering both
   edges and the bulk of each schedule. *)
let ends_and_middle = function
  | [] -> []
  | [ x ] -> [ x ]
  | l ->
    let n = List.length l in
    List.sort_uniq compare [ List.nth l 0; List.nth l (n / 2); List.nth l (n - 1) ]

let run_double_point ?icfg ~scheme ~technique ~w ~n ~store ~day ~before_ref
    ~after_ref (p1, m1) (p2, m2) =
  let cp = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to cp (day - 1);
  ignore (capture ~w (Checkpoint.frame cp) (day - 1));
  let disk = (Checkpoint.env cp).Env.disk in
  Disk.arm_faults disk [ (p1, m1); (p2, m2) ];
  let fired1 =
    match Checkpoint.transition cp with
    | () -> false
    | exception Disk.Disk_error _ -> true
  in
  (* The queue popped to the second plan when the first fired; recovery
     now crashes at its own enumerated point and must be re-entrant. *)
  let fired2 =
    fired1
    &&
    match Checkpoint.recover cp with
    | _ -> false
    | exception Disk.Disk_error _ -> true
  in
  Disk.clear_fault disk;
  let res =
    if not (fired1 && fired2) then
      {
        d_first = (p1, m1);
        d_second = (p2, m2);
        d_fired_both = false;
        d_rolled_forward = false;
        d_recovered_day = -1;
        d_consistent = false;
        d_space_ok = false;
      }
    else begin
      let r = Checkpoint.recover cp in
      let reference =
        if r.Checkpoint.recovered_day = day then after_ref else before_ref
      in
      {
        d_first = (p1, m1);
        d_second = (p2, m2);
        d_fired_both = true;
        d_rolled_forward = r.Checkpoint.rolled_forward;
        d_recovered_day = r.Checkpoint.recovered_day;
        d_consistent =
          r.Checkpoint.recovered_day = reference.ref_day
          && matches ~w (Checkpoint.frame cp) reference;
        d_space_ok = space_consistent cp;
      }
    end
  in
  release cp;
  res

let sweep_double ?(store = default_store) ?icfg ~scheme ~technique ~w ~n ~day
    () =
  if day <= w then invalid_arg "Crash_harness.sweep_double: day must exceed w";
  let twin = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
  Checkpoint.advance_to twin (day - 1);
  let twin_disk = (Checkpoint.env twin).Env.disk in
  let before_ref = capture ~w (Checkpoint.frame twin) (day - 1) in
  let before = Disk.counters twin_disk in
  Checkpoint.transition twin;
  let after = Disk.counters twin_disk in
  let after_ref = capture ~w (Checkpoint.frame twin) day in
  let schedule = Disk.fault_schedule ~before ~after in
  release twin;
  let firsts =
    List.concat_map
      (fun (p : Disk.fault_point) ->
        match p.Disk.target with
        | Disk.On_write -> [ (p, Disk.Fail_stop); (p, Disk.Torn) ]
        | Disk.On_seek | Disk.On_flush -> [ (p, Disk.Fail_stop) ])
      (ends_and_middle schedule)
  in
  let points =
    List.concat_map
      (fun (p1, m1) ->
        (* Recovery twin for this first fault: crash there once, then
           bracket the recovery to enumerate its own fault points.  A
           roll-back with zero charged I/O has an empty schedule — no
           second fault can land inside it, so the pair is skipped. *)
        let cp = fresh_instance ?icfg ~scheme ~technique ~w ~n ~store () in
        Checkpoint.advance_to cp (day - 1);
        ignore (capture ~w (Checkpoint.frame cp) (day - 1));
        let disk = (Checkpoint.env cp).Env.disk in
        Disk.arm_fault disk ~mode:m1 p1;
        let fired =
          match Checkpoint.transition cp with
          | () -> false
          | exception Disk.Disk_error _ -> true
        in
        Disk.clear_fault disk;
        let rec_schedule =
          if not fired then []
          else begin
            let rb = Disk.counters disk in
            ignore (Checkpoint.recover cp);
            Disk.fault_schedule ~before:rb ~after:(Disk.counters disk)
          end
        in
        release cp;
        List.map
          (fun p2 ->
            run_double_point ?icfg ~scheme ~technique ~w ~n ~store ~day
              ~before_ref ~after_ref (p1, m1) (p2, Disk.Fail_stop))
          (ends_and_middle rec_schedule))
      firsts
  in
  (* Vacuously passes when every pair was skipped (a technique whose
     recovery is always a pure roll-back): the single-fault sweep
     already covers those; there is no recovery I/O to interrupt. *)
  let passed =
    List.for_all
      (fun r -> r.d_fired_both && r.d_consistent && r.d_space_ok)
      points
  in
  {
    dr_scheme = scheme;
    dr_technique = technique;
    dr_w = w;
    dr_n = n;
    dr_day = day;
    dr_points = points;
    dr_passed = passed;
  }

let pp_point_result ppf r =
  Format.fprintf ppf "%a %s%s: %s day=%d recover=%.3fs wasted=%.3fs%s%s"
    Disk.pp_fault_point r.point
    (match r.mode with
    | Disk.Fail_stop -> "fail-stop"
    | Disk.Torn -> "torn"
    | Disk.Stall _ -> "stall")
    (if r.torn_tail then "+tail" else "")
    (if r.rolled_forward then "roll-forward" else "roll-back")
    r.recovered_day r.recovery_seconds r.wasted_seconds
    (if r.consistent then "" else " INCONSISTENT")
    ((if r.space_ok then "" else " SPACE-LEAK")
    ^ if r.iso_ok then "" else " ISO-VIOLATION")

let pp_double_point ppf r =
  let mode = function
    | Disk.Fail_stop -> "fail-stop"
    | Disk.Torn -> "torn"
    | Disk.Stall _ -> "stall"
  in
  Format.fprintf ppf "%a %s then %a %s: %s day=%d%s%s%s"
    Disk.pp_fault_point (fst r.d_first)
    (mode (snd r.d_first))
    Disk.pp_fault_point (fst r.d_second)
    (mode (snd r.d_second))
    (if r.d_rolled_forward then "roll-forward" else "roll-back")
    r.d_recovered_day
    (if r.d_fired_both then "" else " DID-NOT-FIRE")
    (if r.d_consistent then "" else " INCONSISTENT")
    (if r.d_space_ok then "" else " SPACE-LEAK")

let pp_double_report ppf t =
  Format.fprintf ppf "%s x %s (W=%d n=%d day=%d): %d double points %s@."
    (Scheme.name t.dr_scheme)
    (Env.technique_name t.dr_technique)
    t.dr_w t.dr_n t.dr_day (List.length t.dr_points)
    (if t.dr_passed then "PASS" else "FAIL");
  List.iter
    (fun r ->
      if not (r.d_fired_both && r.d_consistent && r.d_space_ok) then
        Format.fprintf ppf "  %a@." pp_double_point r)
    t.dr_points

let pp_report ppf t =
  Format.fprintf ppf "%s x %s (W=%d n=%d day=%d): %d points %s@."
    (Scheme.name t.scheme)
    (Env.technique_name t.technique)
    t.w t.n t.day (List.length t.points)
    (if t.passed then "PASS" else "FAIL");
  List.iter
    (fun r -> if not (point_passed r) then Format.fprintf ppf "  %a@." pp_point_result r)
    t.points
