(** End-to-end simulation: drive a maintenance scheme over a stream of
    days against the simulated disk, serving a daily query mix, and
    collect the paper's Section 5 measures per day.

    The simulator complements the analytic model ({!Wave_model.Cost}):
    the model evaluates the paper's parameter formulas; the runner
    measures what the actual implementation does (every seek and block
    this library's index structures perform), so trends can be
    cross-checked against real data structures rather than formulas.

    When tracing is enabled ({!Wave_obs.Trace.enable}), each simulated
    day is wrapped in a ["day"] span containing a
    ["phase.maintenance"] and a ["phase.query"] span (all tagged with
    the day, scheme and technique), and the runner registers the
    simulation disk's [elapsed] as the tracer's model clock, so span
    timestamps are bit-identical to the metrics below.  Invariant: a
    phase span's attributed model seconds equal the corresponding
    [day_metrics] field exactly, and the ["day"] span's attributed
    seeks/blocks/bytes equal the per-day counter deltas exactly. *)

open Wave_core

type day_metrics = {
  day : int;
  precompute_seconds : float;
      (** maintenance work not between data arrival and visibility *)
  transition_seconds : float;  (** data arrival -> queryable *)
  maintenance_seconds : float;  (** whole daily maintenance step *)
  query_seconds : float;
  probe_entries : int;  (** entries returned by the day's probes *)
  scan_entries : int;
  space_bytes : int;  (** constituents + temporaries at end of day *)
  wave_length : int;  (** days indexed (soft windows exceed w) *)
  seeks : int;  (** disk seeks over the whole day (maintenance+query) *)
  blocks_read : int;  (** blocks read over the whole day *)
  blocks_written : int;  (** blocks written over the whole day *)
}

type percentiles = { p50 : float; p95 : float; p99 : float }
(** Per-day latency distribution over the run; all zero for an empty
    run. *)

type concurrent_stats = {
  mid_queries : int;
      (** queries whose arrival fell inside a transition window *)
  snapshot_served : int;
      (** served against the live snapshot while the transition ran *)
  drained_served : int;
      (** served against the retired snapshot after the swap (the
          arrival predates the swap; the epoch drains once they
          finish) *)
  queued_served : int;
      (** In_place only: arrivals held until the swap and served
          against the new wave — in-place mutation cannot isolate
          readers, so mid-transition arrivals wait the transition
          out *)
  concurrent_latency : percentiles;
      (** measured arrival-to-completion latency of mid-transition
          queries under epoch-based concurrent serving *)
  stopworld_latency : percentiles;
      (** counterfactual latency of the {e same} arrival schedule under
          stop-the-world serving: the transition runs alone (its
          measured window minus the probe service it absorbed), then
          the queued probes run serially behind it in arrival order *)
  concurrent_samples : float array;
      (** every mid-transition latency sample, arrival order (feeds the
          bench series) *)
  stopworld_samples : float array;  (** counterfactual, same order *)
}
(** Mid-transition query-latency report of a concurrent run — the
    wave-index answer to "what do probes pay while maintenance runs?",
    reported as concurrent vs. stop-the-world percentiles. *)

type result = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  days : day_metrics list;
  max_space_bytes : int;
      (** peak disk footprint ever held, including mid-transition
          shadows — the paper's space-during-transition measure *)
  avg_space_bytes : float;
  total_maintenance_seconds : float;
  total_query_seconds : float;
  total_work_seconds : float;
  transition_percentiles : percentiles;
      (** distribution of per-day [transition_seconds] *)
  query_percentiles : percentiles;
      (** distribution of per-day [query_seconds] *)
  cache_stats : Wave_cache.Cache.stats option;
      (** end-of-run buffer-pool counters when [icfg.cache_blocks]
          attached a pool; [None] on an uncached run.  While a pool is
          attached the runner also maintains the ["cache.hit_ratio"]
          gauge and the ["runner.query_seconds.cached"] /
          ["runner.query_seconds.uncached_estimate"] histograms in
          {!Wave_obs.Metrics} (the estimate adds back the pool's
          per-day saved model-seconds, net of metadata charges). *)
  concurrent : concurrent_stats option;
      (** mid-transition latency report when {!config.concurrent} was
          on (and a query spec was configured); [None] on a
          stop-the-world run *)
  alerts : Wave_obs.Alert.event list;
      (** alert events (active and resolved, oldest first) from the
          run's {!config.alerts} rules, followed by SLO burn-rate
          episodes from {!config.slos} (their events carry the
          synthesized rule from {!Wave_obs.Slo.rule_of_spec}); [[]]
          when neither was configured *)
}

type config = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  run_days : int;  (** transitions to simulate after the Start phase *)
  store : Env.day_store;
  queries : Wave_workload.Query_gen.spec option;
  concurrent : bool;
      (** serve the day's queries {e during} the transition under
          {!Wave_epoch.Epoch} snapshot isolation instead of after it.
          Each day the runner opens an epoch over the pre-transition
          wave, lays the day's queries out as arrivals on the model
          clock at {!query_rate} per model-second, serves due arrivals
          at every completed disk operation (shadow techniques; an
          In_place transition queues them until the swap), commits the
          epoch when the maintenance flush drains, serves pre-swap
          stragglers against the retired snapshot, and lets the epoch
          drain.  Off (the default), no epoch code runs and the run is
          bit-identical to a build without epochs.  When on,
          [maintenance_seconds]/[transition_seconds] include the disk
          contention of mid-transition serving, and the remaining
          (post-swap) queries run in the usual query phase. *)
  query_rate : float;
      (** concurrent arrival rate, queries per model-second (used only
          when {!concurrent}; non-positive disables) *)
  icfg : Wave_storage.Index.config;
  validate : bool;  (** check window invariants after every day *)
  alerts : Wave_obs.Alert.rule list;
      (** rules evaluated against the always-on metrics: day-scoped
          rules once per day boundary, transition-scoped rules
          ({!Wave_obs.Alert.scope}) right after {e every} transition
          step.  Besides the run-wide histograms, each day the runner
          publishes gauges targetable by day rules:
          ["runner.day.transition_seconds"],
          ["runner.day.query_seconds"], ["runner.day.wave_length"],
          ["runner.day.space_bytes"], and — with a buffer pool —
          ["cache.dirty_frames"]; and after each transition step,
          gauges for transition rules: ["runner.transition.seconds"],
          ["runner.transition.precompute_seconds"],
          ["runner.transition.seeks"],
          ["runner.transition.blocks_read"],
          ["runner.transition.blocks_written"].  The day boundary also
          publishes ["runner.day.query_p95"] — the running p95 of the
          per-day query-seconds histogram — the canonical SLO
          objective. *)
  series : Wave_obs.Series.t option;
      (** when set, {!Wave_obs.Series.sample} is called against the
          default registry at every transition step and every day
          boundary, building bounded per-metric histories ([sim
          --series-out]).  Sampling only reads — the disk clock never
          moves — so [days] is bit-identical with or without a
          store. *)
  slos : Wave_obs.Slo.spec list;
      (** SLO specs evaluated at every day boundary against the series
          store (an internal store is created when [series] is [None]
          so daily history exists); burn-rate episodes are appended to
          {!result.alerts} *)
  on_env : (Env.t -> unit) option;
      (** called once with the run's environment after it is created
          and before the scheme starts — the hook for arming disk
          faults (e.g. a {!Wave_disk.Disk.Stall} plan) or inspecting
          the disk of a run whose environment is otherwise internal *)
}

val default_config :
  scheme:Scheme.kind -> store:Env.day_store -> w:int -> n:int -> config
(** 2w run days, in-place updating, default index config, no queries,
    stop-the-world serving (concurrent off, rate 4.0), validation on,
    no alert rules, no series store, no SLOs. *)

val run : config -> result
