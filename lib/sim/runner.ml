open Wave_core
open Wave_disk
module Cache = Wave_cache.Cache

type day_metrics = {
  day : int;
  precompute_seconds : float;
  transition_seconds : float;
  maintenance_seconds : float;
  query_seconds : float;
  probe_entries : int;
  scan_entries : int;
  space_bytes : int;
  wave_length : int;
  seeks : int;
  blocks_read : int;
  blocks_written : int;
}

type percentiles = { p50 : float; p95 : float; p99 : float }

type concurrent_stats = {
  mid_queries : int;
  snapshot_served : int;
  drained_served : int;
  queued_served : int;
  concurrent_latency : percentiles;
  stopworld_latency : percentiles;
  concurrent_samples : float array;
  stopworld_samples : float array;
}

type result = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  days : day_metrics list;
  max_space_bytes : int;
  avg_space_bytes : float;
  total_maintenance_seconds : float;
  total_query_seconds : float;
  total_work_seconds : float;
  transition_percentiles : percentiles;
  query_percentiles : percentiles;
  cache_stats : Cache.stats option;
  concurrent : concurrent_stats option;
  alerts : Wave_obs.Alert.event list;
}

type config = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  run_days : int;
  store : Env.day_store;
  queries : Wave_workload.Query_gen.spec option;
  concurrent : bool;
  query_rate : float;
  icfg : Wave_storage.Index.config;
  validate : bool;
  alerts : Wave_obs.Alert.rule list;
  series : Wave_obs.Series.t option;
  slos : Wave_obs.Slo.spec list;
  on_env : (Env.t -> unit) option;
}

let default_config ~scheme ~store ~w ~n =
  {
    scheme;
    technique = Env.In_place;
    w;
    n;
    run_days = 2 * w;
    store;
    queries = None;
    concurrent = false;
    query_rate = 4.0;
    icfg = Wave_storage.Index.default_config;
    validate = true;
    alerts = [];
    series = None;
    slos = [];
    on_env = None;
  }

(* Serve a query list against the live wave; returns (probe, scan)
   entry counts.  The serial query phase and the concurrent drain of
   In_place-queued arrivals both funnel through here. *)
let serve_queries frame qs =
  let open Wave_workload.Query_gen in
  let probe_entries = ref 0 and scan_entries = ref 0 in
  List.iter
    (fun q ->
      match q with
      | Probe { value; t1; t2 } ->
        probe_entries :=
          !probe_entries + List.length (Frame.timed_index_probe frame ~t1 ~t2 ~value)
      | Scan { t1; t2 } ->
        scan_entries :=
          !scan_entries + List.length (Frame.timed_segment_scan frame ~t1 ~t2))
    qs;
  (!probe_entries, !scan_entries)

let run_queries env frame spec ~day =
  let disk = env.Env.disk in
  let before = Disk.elapsed disk in
  let probe_entries, scan_entries =
    serve_queries frame
      (Wave_workload.Query_gen.day_queries spec ~day ~w:env.Env.w)
  in
  (Disk.elapsed disk -. before, probe_entries, scan_entries)

(* Per-day bookkeeping for a concurrent (epoch-isolated) day: the
   snapshot epoch, the arrival schedule still pending on the model
   clock, and per-query (arrival, service start, service finish)
   triples for the latency series. *)
type conc_day = {
  ep : Wave_epoch.Epoch.t;
  mutable arrivals : (float * Wave_workload.Query_gen.query) list;
  mutable served : (float * float * float) list;  (* newest first *)
  mutable snap_served : int;
  mutable drained_served : int;
  mutable queued_served : int;
  mutable mid_probe_entries : int;
  mutable mid_scan_entries : int;
}

let percentiles_of xs =
  if Array.length xs = 0 then { p50 = 0.0; p95 = 0.0; p99 = 0.0 }
  else
    {
      p50 = Wave_util.Stats.percentile xs 50.0;
      p95 = Wave_util.Stats.percentile xs 95.0;
      p99 = Wave_util.Stats.percentile xs 99.0;
    }

(* Phase spans: [span name tags f] is [f ()] when tracing is off; when
   on, span timestamps come from the simulation disk's own elapsed
   clock (registered below), so a phase span's model duration is the
   same float subtraction the day_metrics fields are computed from —
   the attribution invariant tested by test_obs. *)
let span name tags f =
  if Wave_obs.Trace.is_enabled () then Wave_obs.Trace.with_span name ~tags:(tags ()) f
  else f ()

let run config =
  let disk = Wave_storage.Index.make_disk config.icfg in
  (* Registered unconditionally: spans only exist while tracing is on,
     but the flight recorder stamps every event with this clock, and it
     runs whether or not tracing does. *)
  Wave_obs.Trace.set_model_clock (fun () -> Disk.elapsed disk);
  let env =
    Env.create ~disk ~icfg:config.icfg ~technique:config.technique
      ~store:config.store ~w:config.w ~n:config.n ()
  in
  (match config.on_env with Some f -> f env | None -> ());
  let run_tags day () =
    [
      ("scheme", Scheme.name config.scheme);
      ("technique", Env.technique_name config.technique);
      ("day", string_of_int day);
    ]
  in
  let s =
    span "phase.start" (run_tags config.w) (fun () -> Scheme.start config.scheme env)
  in
  Disk.reset_peak disk;
  let h_transition = Wave_obs.Metrics.histogram "runner.transition_seconds" in
  let h_query = Wave_obs.Metrics.histogram "runner.query_seconds" in
  (* The buffer pool, when [icfg.cache_blocks] asked for one; it was
     attached to the disk by the first index the Start phase built.
     The initial wave is a durability boundary of its own: flush it
     before the measured days so a write-back run's day-1 transition is
     not billed for the whole Start phase's deferred writes. *)
  let pool = Cache.find disk in
  Option.iter Cache.flush pool;
  let g_hit = Wave_obs.Metrics.gauge "cache.hit_ratio" in
  let h_query_cached = Wave_obs.Metrics.histogram "runner.query_seconds.cached" in
  let h_query_uncached =
    Wave_obs.Metrics.histogram "runner.query_seconds.uncached_estimate"
  in
  (* Per-day gauges the alert engine can target: the latest day's raw
     values, complementing the run-wide histograms above. *)
  let g_transition = Wave_obs.Metrics.gauge "runner.day.transition_seconds" in
  let g_query = Wave_obs.Metrics.gauge "runner.day.query_seconds" in
  let g_wave = Wave_obs.Metrics.gauge "runner.day.wave_length" in
  let g_space = Wave_obs.Metrics.gauge "runner.day.space_bytes" in
  let g_dirty = Wave_obs.Metrics.gauge "cache.dirty_frames" in
  (* Per-transition gauges, set right after each maintenance step so
     transition-scoped alert rules see a single step's raw cost before
     any day-level aggregation. *)
  let g_t_seconds = Wave_obs.Metrics.gauge "runner.transition.seconds" in
  let g_t_precompute =
    Wave_obs.Metrics.gauge "runner.transition.precompute_seconds"
  in
  let g_t_seeks = Wave_obs.Metrics.gauge "runner.transition.seeks" in
  let g_t_blocks_read = Wave_obs.Metrics.gauge "runner.transition.blocks_read" in
  let g_t_blocks_written =
    Wave_obs.Metrics.gauge "runner.transition.blocks_written"
  in
  let engine =
    match config.alerts with
    | [] -> None
    | rules -> Some (Wave_obs.Alert.create rules)
  in
  (* Time-series sampling: record every registry metric into the ring
     store at each transition step and day boundary.  SLOs need daily
     history even when the caller didn't ask for a dump, so a spec list
     without a store conjures an internal one.  All sampling is
     read-only against the simulation — the disk clock never moves —
     so day_metrics stay bit-identical with the flags off. *)
  let series_store =
    match (config.series, config.slos) with
    | (Some _ as s), _ -> s
    | None, [] -> None
    | None, _ :: _ -> Some (Wave_obs.Series.create ())
  in
  let slo_engine =
    match config.slos with
    | [] -> None
    | specs -> Some (Wave_obs.Slo.create specs)
  in
  let g_query_p95 = Wave_obs.Metrics.gauge "runner.day.query_p95" in
  let sample_series ~day =
    Option.iter (fun st -> Wave_obs.Series.sample st ~day) series_store
  in
  (* Concurrent serving: arm the epoch registry on this disk so
     transitions run under snapshot isolation.  Without the flag the
     registry is never attached, every gate answers "not claimed", and
     the run is bit-identical to a build without epochs. *)
  let concurrent_on =
    config.concurrent && Option.is_some config.queries && config.query_rate > 0.0
  in
  if concurrent_on then Wave_epoch.Epoch.attach disk;
  let serve_on_snapshot st q =
    let open Wave_workload.Query_gen in
    match q with
    | Probe { value; t1; t2 } ->
      st.mid_probe_entries <-
        st.mid_probe_entries
        + List.length (Wave_epoch.Epoch.probe st.ep ~value ~t1 ~t2)
    | Scan { t1; t2 } ->
      st.mid_scan_entries <-
        st.mid_scan_entries
        + List.length (Wave_epoch.Epoch.scan st.ep ~t1 ~t2)
  in
  (* The interleave tick: serve every arrival already due on the model
     clock against the snapshot, charging the same disk the transition
     is using — served probes and maintenance contend for the arm. *)
  let rec serve_due st =
    match st.arrivals with
    | (a, q) :: rest when a <= Disk.elapsed disk ->
      st.arrivals <- rest;
      let start = Disk.elapsed disk in
      Wave_epoch.Epoch.acquire st.ep;
      Fun.protect
        ~finally:(fun () -> Wave_epoch.Epoch.release st.ep)
        (fun () -> serve_on_snapshot st q);
      st.served <- (a, start, Disk.elapsed disk) :: st.served;
      st.snap_served <- st.snap_served + 1;
      serve_due st
    | _ -> ()
  in
  let conc_all = ref [] and stw_all = ref [] in
  let mid_total = ref 0
  and snap_total = ref 0
  and drained_total = ref 0
  and queued_total = ref 0 in
  let days = ref [] in
  for _ = 1 to config.run_days do
    let this_day = Scheme.current_day s + 1 in
    let c0 = Disk.counters disk in
    span "day" (run_tags this_day) (fun () ->
        (* Concurrent day: snapshot the pre-transition wave as an epoch
           and lay this day's queries out as arrivals on the model
           clock, [query_rate] per model-second from the start of
           maintenance.  Shadow techniques serve due arrivals against
           the snapshot at every completed disk operation; In_place
           mutates the very structures a snapshot would read, so its
           arrivals queue until the swap. *)
        let conc =
          if not concurrent_on then None
          else begin
            let slots =
              List.map
                (fun (idx, ds) ->
                  ( idx,
                    fun ~t1 ~t2 ->
                      Dayset.exists (fun d -> d >= t1 && d <= t2) ds ))
                (Frame.snapshot (Scheme.frame s))
            in
            let ep = Wave_epoch.Epoch.open_ disk ~slots in
            let t0 = Disk.elapsed disk in
            let arrivals =
              List.mapi
                (fun i q ->
                  (t0 +. (float_of_int (i + 1) /. config.query_rate), q))
                (Wave_workload.Query_gen.day_queries
                   (Option.get config.queries)
                   ~day:this_day ~w:config.w)
            in
            Some
              {
                ep;
                arrivals;
                served = [];
                snap_served = 0;
                drained_served = 0;
                queued_served = 0;
                mid_probe_entries = 0;
                mid_scan_entries = 0;
              }
          end
        in
        let flush_tail = ref 0.0 in
        let before = Disk.elapsed disk in
        span "phase.maintenance" (run_tags this_day) (fun () ->
            let body () =
              Scheme.transition s;
              (* Write-back durability boundary: the runner drives
                 Scheme.transition directly (no Checkpoint), so it owns
                 the flush — transition cost includes the coalesced
                 deferred writes, not an ever-growing dirty pool. *)
              let t_end = Disk.elapsed disk in
              Option.iter Cache.flush pool;
              flush_tail := Disk.elapsed disk -. t_end
            in
            match conc with
            | Some st when config.technique <> Env.In_place ->
              Wave_epoch.Epoch.Interleave.run disk
                ~on_op:(fun () -> serve_due st)
                body
            | _ -> body ());
        let maintenance = Disk.elapsed disk -. before in
        let transition = Scheme.last_transition_seconds s in
        (* Intra-day alerting: publish this transition step's gauges and
           evaluate only the transition-scoped rules, here inside the
           day — a one-step spike must fire before the day boundary. *)
        let cm = Disk.counters disk in
        (* The swap rides the end of maintenance: readers switch to the
           new wave once the flush has drained ([swap_seconds] is that
           flush tail).  Arrivals that landed before the swap but were
           not yet served drain against the retired snapshot (shadow),
           or — In_place — run now against the new wave, having waited
           the whole transition out: exactly the stop-the-world
           penalty.  The owner lease release then drains the retired
           epoch, re-issuing its deferred drops and frees, so the
           transition-scoped alert evaluation below sees the settled
           [epoch.*] gauges. *)
        (match conc with
        | None -> ()
        | Some st ->
          let t_commit = Disk.elapsed disk in
          Wave_epoch.Epoch.commit ~swap_seconds:!flush_tail disk;
          span "phase.drain" (run_tags this_day) (fun () ->
              let in_place = config.technique = Env.In_place in
              let rec drain () =
                match st.arrivals with
                | (a, q) :: rest when a <= t_commit ->
                  st.arrivals <- rest;
                  let start = Disk.elapsed disk in
                  (if in_place then begin
                     let p, sc = serve_queries (Scheme.frame s) [ q ] in
                     st.mid_probe_entries <- st.mid_probe_entries + p;
                     st.mid_scan_entries <- st.mid_scan_entries + sc;
                     st.queued_served <- st.queued_served + 1
                   end
                   else begin
                     Wave_epoch.Epoch.acquire st.ep;
                     Fun.protect
                       ~finally:(fun () -> Wave_epoch.Epoch.release st.ep)
                       (fun () -> serve_on_snapshot st q);
                     st.drained_served <- st.drained_served + 1
                   end);
                  st.served <- (a, start, Disk.elapsed disk) :: st.served;
                  drain ()
                | _ -> ()
              in
              drain ();
              Wave_epoch.Epoch.release st.ep);
          (* Fold the day's mid-transition samples into the run series.
             Concurrent latency is measured; the stop-the-world latency
             for the same arrival schedule is the counterfactual where
             the transition runs alone (its measured window minus the
             probe service it absorbed) and the probes then run
             serially behind it, in arrival order. *)
          let served = List.rev st.served in
          let pre_commit_service =
            List.fold_left
              (fun acc (_, b, f) ->
                if f <= t_commit then acc +. (f -. b) else acc)
              0.0 served
          in
          let stw_end = t_commit -. pre_commit_service in
          let cum = ref 0.0 in
          List.iter
            (fun (a, b, f) ->
              let service = f -. b in
              conc_all := (f -. a) :: !conc_all;
              cum := !cum +. service;
              stw_all := Float.max service (stw_end +. !cum -. a) :: !stw_all)
            served;
          mid_total := !mid_total + List.length served;
          snap_total := !snap_total + st.snap_served;
          drained_total := !drained_total + st.drained_served;
          queued_total := !queued_total + st.queued_served);
        Wave_obs.Metrics.set g_t_seconds transition;
        Wave_obs.Metrics.set g_t_precompute
          (Float.max 0.0 (maintenance -. transition));
        Wave_obs.Metrics.set g_t_seeks (float_of_int (cm.Disk.seeks - c0.Disk.seeks));
        Wave_obs.Metrics.set g_t_blocks_read
          (float_of_int (cm.Disk.blocks_read - c0.Disk.blocks_read));
        Wave_obs.Metrics.set g_t_blocks_written
          (float_of_int (cm.Disk.blocks_written - c0.Disk.blocks_written));
        sample_series ~day:this_day;
        Option.iter
          (fun e ->
            ignore
              (Wave_obs.Alert.eval ~scope:Wave_obs.Alert.Transition e
                 ~day:this_day))
          engine;
        if config.validate then begin
          Scheme.check_window_invariant s;
          Frame.validate (Scheme.frame s)
        end;
        let day = Scheme.current_day s in
        let cs0 = Option.map Cache.stats pool in
        let query_seconds, probe_entries, scan_entries =
          span "phase.query" (run_tags this_day) (fun () ->
              match (config.queries, conc) with
              | None, _ -> (0.0, 0, 0)
              | Some spec, None -> run_queries env (Scheme.frame s) spec ~day
              | Some _, Some st ->
                (* Arrivals past the swap run serially against the new
                   wave, as the stop-the-world phase would; the day's
                   entry counts include the mid-transition serves. *)
                let before = Disk.elapsed disk in
                let p, sc =
                  serve_queries (Scheme.frame s) (List.map snd st.arrivals)
                in
                st.arrivals <- [];
                ( Disk.elapsed disk -. before,
                  p + st.mid_probe_entries,
                  sc + st.mid_scan_entries ))
        in
        let c1 = Disk.counters disk in
        Wave_obs.Metrics.observe h_transition transition;
        Wave_obs.Metrics.observe h_query query_seconds;
        (match (pool, cs0) with
        | Some p, Some cs0 ->
          (* What the day's queries would have cost without the pool:
             add back the model-seconds the pool saved during the query
             phase, net of the directory-metadata charges the uncached
             model never makes. *)
          let cs1 = Cache.stats p in
          let saved = cs1.Cache.saved_seconds -. cs0.Cache.saved_seconds in
          let meta = cs1.Cache.meta_seconds -. cs0.Cache.meta_seconds in
          Wave_obs.Metrics.set g_hit (Cache.hit_ratio cs1);
          Wave_obs.Metrics.observe h_query_cached query_seconds;
          Wave_obs.Metrics.observe h_query_uncached
            (Float.max 0.0 (query_seconds +. saved -. meta))
        | _ -> ());
        days :=
          {
            day;
            precompute_seconds = Float.max 0.0 (maintenance -. transition);
            transition_seconds = transition;
            maintenance_seconds = maintenance;
            query_seconds;
            probe_entries;
            scan_entries;
            space_bytes = Scheme.allocated_bytes s;
            wave_length = Frame.length (Scheme.frame s);
            seeks = c1.Disk.seeks - c0.Disk.seeks;
            blocks_read = c1.Disk.blocks_read - c0.Disk.blocks_read;
            blocks_written = c1.Disk.blocks_written - c0.Disk.blocks_written;
          }
          :: !days);
    (* Day-scoped alert rules are evaluated at the day boundary,
       outside the day span, so a firing's Trace instant sits between
       days; transition-scoped rules were already evaluated above. *)
    (match !days with
    | d :: _ ->
      Wave_obs.Metrics.set g_transition d.transition_seconds;
      Wave_obs.Metrics.set g_query d.query_seconds;
      Wave_obs.Metrics.set g_wave (float_of_int d.wave_length);
      Wave_obs.Metrics.set g_space (float_of_int d.space_bytes);
      (match Wave_obs.Metrics.hist_summary h_query with
      | Some s -> Wave_obs.Metrics.set g_query_p95 s.Wave_obs.Metrics.p95
      | None -> ());
      Option.iter
        (fun p -> Wave_obs.Metrics.set g_dirty (float_of_int (Cache.dirty_frames p)))
        pool;
      sample_series ~day:d.day;
      Option.iter
        (fun e ->
          ignore (Wave_obs.Alert.eval ~scope:Wave_obs.Alert.Day e ~day:d.day))
        engine;
      Option.iter
        (fun eng ->
          match series_store with
          | Some st -> ignore (Wave_obs.Slo.eval eng ~series:st ~day:d.day)
          | None -> ())
        slo_engine
    | [] -> ())
  done;
  if concurrent_on then Wave_epoch.Epoch.detach disk;
  let days = List.rev !days in
  let nd = float_of_int (max 1 (List.length days)) in
  let sum f = List.fold_left (fun acc d -> acc +. f d) 0.0 days in
  let maintenance = sum (fun d -> d.maintenance_seconds) in
  let queries = sum (fun d -> d.query_seconds) in
  let series f = Array.of_list (List.map f days) in
  {
    scheme = config.scheme;
    technique = config.technique;
    w = config.w;
    n = config.n;
    days;
    max_space_bytes =
      Disk.peak_blocks disk * (Disk.params disk).Disk.block_size;
    avg_space_bytes = sum (fun d -> float_of_int d.space_bytes) /. nd;
    total_maintenance_seconds = maintenance;
    total_query_seconds = queries;
    total_work_seconds = maintenance +. queries;
    transition_percentiles = percentiles_of (series (fun d -> d.transition_seconds));
    query_percentiles = percentiles_of (series (fun d -> d.query_seconds));
    cache_stats =
      (* The run's disk is unreachable once we return, so release its
         registry slot; the counters live on in this snapshot. *)
      (let snap = Option.map Cache.stats pool in
       Cache.detach disk;
       snap);
    concurrent =
      (if not concurrent_on then None
       else
         let conc = Array.of_list (List.rev !conc_all) in
         let stw = Array.of_list (List.rev !stw_all) in
         Some
           {
             mid_queries = !mid_total;
             snapshot_served = !snap_total;
             drained_served = !drained_total;
             queued_served = !queued_total;
             concurrent_latency = percentiles_of conc;
             stopworld_latency = percentiles_of stw;
             concurrent_samples = conc;
             stopworld_samples = stw;
           });
    alerts =
      (match engine with None -> [] | Some e -> Wave_obs.Alert.events e)
      @ (match slo_engine with None -> [] | Some e -> Wave_obs.Slo.events e);
  }
