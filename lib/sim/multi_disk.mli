(** Multi-disk wave indexes (the paper's Section 8 future work).

    "If n matches the number of disks, indexing can be parallelized
    easily.  Also building new constituent indices on separate disks
    avoids contention.  Hence wave indices will have several advantages
    over monolithic indices when we use multiple disks."

    This module places each constituent index on its own simulated disk
    (longest-processing-time placement by slot day count, via
    {!Wave_shard.Partition.place}, when there are more constituents
    than disks) and
    measures queries and daily maintenance both serially (one disk arm
    doing everything) and in parallel (all disks working concurrently;
    elapsed time is the busiest disk's). *)

open Wave_core
open Wave_storage

type t

val create :
  ?icfg:Index.config -> ?shared_pool:bool -> store:Env.day_store -> w:int ->
  n:int -> disks:int -> unit -> t
(** Builds the initial wave (days [1..w] split in [n] clusters as DEL's
    Start does), constituents placed on disks by LPT over their day
    counts so arm loads stay balanced even when [W mod n <> 0].
    [shared_pool] (default [false]) backs {e all} arms with one
    {!Wave_cache.Cache.attach_shared} pool of [icfg.cache_blocks]
    frames — a global buffer manager in which a hot arm's working set
    evicts a cold arm's — instead of one pool per disk; it requires
    [icfg.cache_blocks] to be set (raises [Invalid_argument]
    otherwise). *)

val n_disks : t -> int
val n_constituents : t -> int

type timing = {
  serial : float;  (** total model-seconds across all disks *)
  parallel : float;  (** max model-seconds on any one disk *)
}

val probe : t -> value:int -> Entry.t list * timing
(** IndexProbe over all constituents, fanned out per disk. *)

val scan : t -> Entry.t list * timing
(** SegmentScan over all constituents. *)

val advance : t -> timing
(** One DEL-style daily transition: delete the expired day and add the
    new one in its constituent; other disks stay idle, so the parallel
    time equals that disk's work — no contention with queries on other
    disks, the paper's second advantage. *)

val current_day : t -> int

val pool_stats : t -> (int * Wave_cache.Cache.stats) list
(** Per-arm buffer-pool counters, [(disk number, stats)], for arms
    whose disk has a pool attached (i.e. when [icfg.cache_blocks] was
    set).  Counters are the arm's own accesses
    ({!Wave_cache.Cache.local_stats}), so the per-arm breakdown holds
    under [shared_pool] too.  Empty when running uncached. *)

val speedup_table : store:Env.day_store -> w:int -> n:int -> disks:int list -> string
(** Render probe/scan serial-vs-parallel speedups for several disk
    counts — the experiment the paper sketches. *)
