(** Systematic crash sweep over a scheme transition.

    The harness first runs an {e uncrashed twin} of the configuration
    up to the target day, bracketing the transition with counter
    snapshots so {!Wave_disk.Disk.fault_schedule} can enumerate every
    injection point inside it — one per seek, one per write operation.
    It then replays the scenario once per point (and, for write points,
    once per fault mode, including torn writes), crashes there, runs
    {!Wave_core.Checkpoint.recover}, and asserts:

    - the recovered wave answers the window's [TimedIndexProbe]s and
      [TimedSegmentScan] identically to the twin at the recovered day
      (the day before the transition when recovery rolled back, the
      day after when it rolled forward);
    - the allocator leaks nothing and double-frees nothing:
      {!Wave_disk.Disk.live_blocks} equals the blocks claimed by the
      surviving constituents, and no extent stays torn.

    Each point also reports the model-time cost of recovery and the
    work wasted in the doomed transition. *)

open Wave_core
open Wave_disk

val default_store : Env.day_store
(** Deterministic synthetic batches (8 postings/day over 6 values). *)

type point_result = {
  point : Disk.fault_point;
  mode : Disk.fault_mode;
  fired : bool;  (** the armed fault actually fired (schedule is exact) *)
  rolled_forward : bool;
  recovered_day : int;
  consistent : bool;  (** query-identical to the twin at that day *)
  space_ok : bool;  (** no leaked, double-freed or torn extents *)
  recovery_seconds : float;
  wasted_seconds : float;  (** model time burnt in the doomed transition *)
}

type report = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;
  points : point_result list;
  passed : bool;
}

val sweep :
  ?store:Env.day_store ->
  ?icfg:Wave_storage.Index.config ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  w:int ->
  n:int ->
  day:int ->
  unit ->
  report
(** Crash day [day]'s transition (from [day - 1]) at every enumerated
    fault point.  [day] must exceed [w] so at least one full window of
    transitions has happened.  Raises [Invalid_argument] otherwise.
    [icfg] (default {!Wave_storage.Index.default_config}) lets the
    sweep run with a buffer pool attached ([cache_blocks]): the pool is
    write-through, so the write fault points are unchanged, and the
    twin and every fault instance see identical pool states, keeping
    the discovered schedule exact. *)

val pp_point_result : Format.formatter -> point_result -> unit
val pp_report : Format.formatter -> report -> unit
(** One summary line; failing points are detailed below it. *)
