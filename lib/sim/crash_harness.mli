(** Systematic crash sweep over a scheme transition.

    The harness first runs an {e uncrashed twin} of the configuration
    up to the target day, bracketing the transition with counter
    snapshots so {!Wave_disk.Disk.fault_schedule} can enumerate every
    injection point inside it — one per seek, one per write operation.
    It then replays the scenario once per point (and, for write points,
    once per fault mode, including torn writes), crashes there, runs
    {!Wave_core.Checkpoint.recover}, and asserts:

    - the recovered wave answers the window's [TimedIndexProbe]s and
      [TimedSegmentScan] identically to the twin at the recovered day
      (the day before the transition when recovery rolled back, the
      day after when it rolled forward);
    - the allocator leaks nothing and double-frees nothing:
      {!Wave_disk.Disk.live_blocks} equals the blocks claimed by the
      surviving constituents, and no extent stays torn.

    Each point also reports the model-time cost of recovery and the
    work wasted in the doomed transition. *)

open Wave_core
open Wave_disk

val default_store : Env.day_store
(** Deterministic synthetic batches (8 postings/day over 6 values). *)

type point_result = {
  point : Disk.fault_point;
  mode : Disk.fault_mode;
  fired : bool;  (** the armed fault actually fired (schedule is exact) *)
  rolled_forward : bool;
  recovered_day : int;
  consistent : bool;  (** query-identical to the twin at that day *)
  space_ok : bool;  (** no leaked, double-freed or torn extents *)
  iso_ok : bool;
      (** concurrent sweeps only (vacuously true otherwise): every
          probe served mid-transition or during the drain answered from
          exactly one committed state — snapshot serves match the
          pre-transition reference, In_place's queued serves match the
          post-transition wave — and no epoch outlived the point *)
  recovery_seconds : float;
  wasted_seconds : float;  (** model time burnt in the doomed transition *)
  torn_tail : bool;
      (** {!kill_sweep} only: the block file's tail was truncated behind
          the kill before reopening *)
}

type report = {
  scheme : Scheme.kind;
  technique : Env.technique;
  w : int;
  n : int;
  day : int;
  points : point_result list;
  passed : bool;
}

val sweep :
  ?store:Env.day_store ->
  ?icfg:Wave_storage.Index.config ->
  ?artifact_dir:string ->
  ?concurrent:bool ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  w:int ->
  n:int ->
  day:int ->
  unit ->
  report
(** Crash day [day]'s transition (from [day - 1]) at every enumerated
    fault point.  [day] must exceed [w] so at least one full window of
    transitions has happened.  Raises [Invalid_argument] otherwise.
    [icfg] (default {!Wave_storage.Index.default_config}) lets the
    sweep run with a buffer pool attached ([cache_blocks]): the pool is
    write-through, so the write fault points are unchanged, and the
    twin and every fault instance see identical pool states, keeping
    the discovered schedule exact.

    The {!Wave_obs.Recorder} ring is cleared at the start of every
    point, so at any failure the ring holds exactly that point's
    events; with [artifact_dir] set, each failing point writes its
    flight dump to [artifact_dir/<point>_<mode>.flight.jsonl]
    (best-effort — dump errors never fail the sweep).

    [concurrent] (default false) runs every transition — the twin's
    and each instance's — under {!Wave_epoch.Epoch} snapshot isolation
    with a deterministic mid-transition probe schedule: shadow
    techniques serve six probes over the pre-transition window against
    the snapshot while the transition runs and drain stragglers against
    the retired epoch after the commit; In_place queues them until the
    commit.  The fault stays armed through the drain, so the discovered
    schedule gains points inside the epoch-swap and reader-drain window
    — recovery from those must still land on exactly one committed
    epoch ([iso_ok]). *)

val kill_sweep :
  ?store:Env.day_store ->
  ?icfg:Wave_storage.Index.config ->
  ?concurrent:bool ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  w:int ->
  n:int ->
  day:int ->
  dir:string ->
  unit ->
  report
(** The sweep taken to the real backend: every instance runs on a
    file-backed disk in its own checkpoint directory under [dir], the
    crash is a {e kill} — buffer pool detached, block file closed, all
    in-memory state dropped — and recovery is
    {!Wave_core.Checkpoint.reopen} from the surviving files alone.  The
    last write point's torn variant additionally runs with the block
    file's tail truncated behind the kill ([torn_tail]).  Directories
    of passing points are removed; a failing point keeps its directory
    (torn block file, sidecar, manifests) as the debugging artifact,
    plus a [flight.jsonl] {!Wave_obs.Recorder} dump of the killed
    run's last events ({!Wave_obs.Sink.validate_flight} checks its
    shape).  [concurrent] interleaves probes exactly as in {!sweep};
    the kill additionally drops the epoch registry, and recovery must
    reopen onto exactly one committed epoch. *)

(** {1 Double faults}

    A second fault injected {e during recovery} from the first, proving
    recovery is re-entrant: the interrupted recovery is simply run
    again from the same durable state.  For each selected transition
    fault, a recovery twin enumerates the recovery's own fault
    schedule; first/middle/last of both schedules bound the sweep. *)

type double_point = {
  d_first : Disk.fault_point * Disk.fault_mode;
  d_second : Disk.fault_point * Disk.fault_mode;
      (** the recovery-time fault, relative to recovery start *)
  d_fired_both : bool;
  d_rolled_forward : bool;
  d_recovered_day : int;
  d_consistent : bool;
  d_space_ok : bool;
}

type double_report = {
  dr_scheme : Scheme.kind;
  dr_technique : Env.technique;
  dr_w : int;
  dr_n : int;
  dr_day : int;
  dr_points : double_point list;
  dr_passed : bool;
}

val sweep_double :
  ?store:Env.day_store ->
  ?icfg:Wave_storage.Index.config ->
  scheme:Scheme.kind ->
  technique:Env.technique ->
  w:int ->
  n:int ->
  day:int ->
  unit ->
  double_report
(** Crash the transition at a bounded selection of points, then crash
    the resulting recovery at a bounded selection of {e its} points,
    then recover again and assert consistency.  First-fault pairs whose
    recovery charges no I/O (a pure roll-back) are skipped — no second
    fault can land inside them. *)

val pp_point_result : Format.formatter -> point_result -> unit
val pp_report : Format.formatter -> report -> unit
(** One summary line; failing points are detailed below it. *)

val pp_double_point : Format.formatter -> double_point -> unit
val pp_double_report : Format.formatter -> double_report -> unit
