(* Quickstart: maintain a 7-day wave index over a toy record stream.

   Demonstrates the public API end to end: define a day store, pick a
   maintenance scheme and update technique, absorb new days, and query
   the window with timed probes and scans.

     dune exec examples/quickstart.exe                                 *)

open Wave_core
open Wave_storage

(* A day's data: every day three "documents" arrive, each posting a few
   search values (think words).  The store must be deterministic. *)
let store day =
  let postings =
    Array.concat
      (List.init 3 (fun doc ->
           let rid = (day * 100) + doc in
           Array.of_list
             (List.map
                (fun value -> { Entry.value; entry = { Entry.rid; day; info = 0 } })
                [ day mod 5; (day + doc) mod 7; 42 ])))
  in
  Entry.batch_create ~day postings

let () =
  (* A wave index of W = 7 days split over n = 3 constituent indexes,
     maintained by DEL with in-place updates. *)
  let env = Env.create ~store ~technique:Env.In_place ~w:7 ~n:3 () in
  let wave = Scheme.start Scheme.Del env in
  Printf.printf "started: days %s indexed in %d constituents\n"
    (Dayset.to_string (Frame.covered_days (Scheme.frame wave)))
    env.Env.n;

  (* A week later... absorb seven new days, one at a time.  Expired
     days disappear: the window always covers the last 7 days. *)
  for _ = 1 to 7 do
    Scheme.transition wave
  done;
  Printf.printf "after 7 transitions: %s\n"
    (Dayset.to_string (Frame.covered_days (Scheme.frame wave)));

  (* IndexProbe: all postings for value 42 (every doc posts it). *)
  let hits = Frame.index_probe (Scheme.frame wave) ~value:42 in
  Printf.printf "probe value 42: %d postings across the window\n"
    (List.length hits);

  (* TimedIndexProbe: the same, restricted to the last 3 days. *)
  let d = Scheme.current_day wave in
  let recent =
    Frame.timed_index_probe (Scheme.frame wave) ~t1:(d - 2) ~t2:d ~value:42
  in
  Printf.printf "probe value 42, last 3 days: %d postings\n" (List.length recent);

  (* TimedSegmentScan: everything inserted in the last 2 days. *)
  let scanned = Frame.timed_segment_scan (Scheme.frame wave) ~t1:(d - 1) ~t2:d in
  Printf.printf "scan last 2 days: %d postings\n" (List.length scanned);

  (* The simulated disk accounts for every seek and transfer. *)
  let c = Wave_disk.Disk.counters env.Env.disk in
  Printf.printf "disk: %d seeks, %d blocks read, %d written, %.4f model-seconds\n"
    c.Wave_disk.Disk.seeks c.Wave_disk.Disk.blocks_read
    c.Wave_disk.Disk.blocks_written c.Wave_disk.Disk.elapsed;
  Printf.printf "space: %d bytes across constituents\n"
    (Frame.allocated_bytes (Scheme.frame wave))
