(* TPC-D-style warehousing over a 100-day LINEITEM window (the paper's
   third case study).

   A decision-support system keeps a wave index on LINEITEM.SUPPKEY for
   the past 100 days and runs Q1-style pricing summaries (whole-window
   segment scans) plus per-supplier lookups.  Following the paper's
   Figure 8 recommendation for sites that cannot implement packed
   shadowing, the window is maintained by WATA* with n = 10 — minimal
   work, no deletion code — accepting a soft window.  RATA* (also
   n = 10) is shown alongside for consumers that need hard windows.

     dune exec examples/tpcd_warehouse.exe                             *)

open Wave_core
open Wave_workload

let cfg = { Tpcd.default_config with Tpcd.mean_rows = 300; suppliers = 50 }
let store = Tpcd.store cfg

let run_week name scheme_kind technique =
  let env = Env.create ~store ~technique ~w:100 ~n:10 () in
  let wave = Scheme.start scheme_kind env in
  Printf.printf "%s (W=100, n=10, %s)\n" name (Env.technique_name technique);
  for _ = 1 to 7 do
    Scheme.transition wave;
    let day = Scheme.current_day wave in
    let frame = Scheme.frame wave in
    (* Q1-style report: total revenue over the required window. *)
    let window = Frame.timed_segment_scan frame ~t1:(day - 99) ~t2:day in
    (* a per-supplier drill-down *)
    let supplier = 1 + (day mod cfg.Tpcd.suppliers) in
    let theirs = Frame.timed_index_probe frame ~t1:(day - 99) ~t2:day ~value:supplier in
    Printf.printf
      "  day %d: window revenue %d from %d line items; supplier %d: %d items (rev %d)\n"
      day (Tpcd.revenue window) (List.length window) supplier (List.length theirs)
      (Tpcd.revenue theirs)
  done;
  let frame = Scheme.frame wave in
  Printf.printf
    "  wave length %d days (window 100); maintenance last day %.4f model-s\n\n"
    (Frame.length frame) (Scheme.last_total_seconds wave)

let () =
  Printf.printf "TPC-D warehousing case study\n\n";
  run_week "WATA* (paper's pick without packed shadowing)" Scheme.Wata_star
    Env.Simple_shadow;
  run_week "RATA* (hard windows at the same transition cost)" Scheme.Rata_star
    Env.Simple_shadow;
  run_week "DEL n=10 with packed shadowing (paper's first choice)" Scheme.Del
    Env.Packed_shadow
