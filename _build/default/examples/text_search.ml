(* Full-text search over a sliding window, with real strings.

   The other examples work with pre-cooked integer postings; this one
   exercises the whole text pipeline of the paper's IR setting
   (Figure 1): articles are tokenised, words interned into search
   values, postings carry byte offsets, and search-box queries
   ("word1 word2 -word3") are parsed into boolean expressions
   evaluated with timed probes.  Maintenance uses REINDEX++ so fresh
   articles become searchable after a single incremental add.

     dune exec examples/text_search.exe                                *)

open Wave_core
open Wave_text

let vocab = Vocab.create ()
let gen = Corpus.generator ~seed:77 ~vocab_size:2_000 ()

(* 15 articles per day; article 0 of each day quotes yesterday's
   article 1 verbatim in its second half (something to search for). *)
let store =
  let article_cache = Hashtbl.create 64 in
  let day_article day i =
    match Hashtbl.find_opt article_cache (day, i) with
    | Some a -> a
    | None ->
      let a = Corpus.article gen ~words:60 in
      Hashtbl.add article_cache (day, i) a;
      a
  in
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let docs =
        List.init 15 (fun i ->
            let text =
              if i = 0 && day > 1 then
                day_article day 0 ^ " " ^ day_article (day - 1) 1
              else day_article day i
            in
            { Corpus.rid = (day * 1000) + i; text })
      in
      let b = Corpus.index_documents vocab ~day docs in
      Hashtbl.add cache day b;
      b

let () =
  Printf.printf "Full-text wave search: REINDEX++, W=7, n=2\n\n";
  let env = Env.create ~store ~w:7 ~n:2 () in
  let wave = Scheme.start Scheme.Reindex_pp env in
  Scheme.advance_to wave 14;
  Printf.printf "indexed days %s — vocabulary %d words\n\n"
    (Dayset.to_string (Frame.covered_days (Scheme.frame wave)))
    (Vocab.size vocab);

  (* Search for words we know exist: the lexicon's frequent ranks. *)
  let searches =
    [
      Corpus.lexicon_word gen 1;
      Corpus.lexicon_word gen 1 ^ " " ^ Corpus.lexicon_word gen 2;
      Corpus.lexicon_word gen 1 ^ " -" ^ Corpus.lexicon_word gen 2;
      Corpus.lexicon_word gen 120 ^ " " ^ Corpus.lexicon_word gen 121;
      "nosuchword";
    ]
  in
  List.iter
    (fun box ->
      match Corpus.parse_query vocab box with
      | None -> Printf.printf "%-28s -> no indexed word matches\n" box
      | Some q ->
        let hits = Query.eval_window wave q in
        Printf.printf "%-28s -> %3d articles   (query: %s)\n" box
          (Query.Rid_set.cardinal hits)
          (Format.asprintf "%a" Query.pp q))
    searches;

  (* The planted quotation: yesterday's article 1 shares its full word
     set with today's article 0.  Rank past articles by word overlap
     with today's suspect. *)
  let today = Scheme.current_day wave in
  let suspect_words =
    match store today with
    | b ->
      Array.to_list b.Wave_storage.Entry.postings
      |> List.filter_map (fun (p : Wave_storage.Entry.posting) ->
             if p.Wave_storage.Entry.entry.Wave_storage.Entry.rid = (today * 1000) + 0
             then Some (Query.Word p.Wave_storage.Entry.value)
             else None)
  in
  let overlap_counts = Hashtbl.create 32 in
  List.iter
    (fun w ->
      match w with
      | Query.Word v ->
        Query.Rid_set.iter
          (fun rid ->
            if rid <> (today * 1000) + 0 then
              Hashtbl.replace overlap_counts rid
                (1 + Option.value ~default:0 (Hashtbl.find_opt overlap_counts rid)))
          (Query.eval (Scheme.frame wave)
             ~t1:(today - 6) ~t2:(today - 1) (Query.Word v))
      | _ -> ())
    suspect_words;
  let best =
    Hashtbl.fold (fun rid c acc -> (c, rid) :: acc) overlap_counts []
    |> List.sort compare |> List.rev
  in
  (match best with
  | (c, rid) :: _ ->
    Printf.printf
      "\nquotation scan: today's article %d shares %d words with article %d (day %d)\n"
      ((today * 1000) + 0) c rid (rid / 1000)
  | [] -> Printf.printf "\nquotation scan: nothing found\n");
  Printf.printf "disk model time: %.3f s across the run\n"
    (Wave_disk.Disk.elapsed env.Env.disk)
