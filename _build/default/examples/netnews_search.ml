(* Web search engine over a 35-day Netnews window (the paper's second
   case study).

   An AltaVista-style engine keeps the last 35 days of articles
   searchable.  Following the paper's Figure 6 recommendation the
   window is maintained by DEL with a single constituent (n = 1) under
   packed shadowing — minimal total work and the best query response.
   Articles post one entry per distinct word; user queries average two
   words (the paper's measured AltaVista query length) and are executed
   as two TimedIndexProbes plus an intersection.

     dune exec examples/netnews_search.exe                             *)

open Wave_core
open Wave_storage
open Wave_workload

let vocab = 3_000
let words_per_article = 12
let articles_per_day = 40

(* Articles with Zipf-distributed words; volume follows the weekly
   Usenet wave of Figure 2 (fewer articles on weekends). *)
let store =
  let zipf = Wave_util.Zipf.create ~n:vocab ~s:1.0 in
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let weekday = (day - 1) mod 7 in
      let count =
        int_of_float
          (float_of_int articles_per_day *. Netnews.weekly_profile.(weekday))
      in
      let prng = Wave_util.Prng.create ((day * 65_537) + 3) in
      let postings =
        Array.concat
          (List.init (max 1 count) (fun a ->
               let rid = (day * 10_000) + a in
               List.init words_per_article (fun _ ->
                   Wave_util.Zipf.sample zipf prng)
               |> List.sort_uniq compare
               |> List.mapi (fun i value ->
                      { Entry.value; entry = { Entry.rid; day; info = i } })
               |> Array.of_list))
      in
      let b = Entry.batch_create ~day postings in
      Hashtbl.add cache day b;
      b

module RidSet = Set.Make (Int)

let rids entries =
  List.fold_left
    (fun acc (e : Entry.t) -> RidSet.add e.Entry.rid acc)
    RidSet.empty entries

(* Two-word AND query over a day range: two timed probes, intersect. *)
let search frame ~t1 ~t2 w1 w2 =
  let r1 = rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:w1) in
  let r2 = rids (Frame.timed_index_probe frame ~t1 ~t2 ~value:w2) in
  RidSet.inter r1 r2

let () =
  Printf.printf "WSE: DEL, W=35, n=1, packed shadowing (paper's pick)\n\n";
  let env = Env.create ~store ~technique:Env.Packed_shadow ~w:35 ~n:1 () in
  let wave = Scheme.start Scheme.Del env in
  let zipf = Wave_util.Zipf.create ~n:vocab ~s:1.0 in
  let prng = Wave_util.Prng.create 2024 in
  (* A week of operation: absorb each day, then serve a few queries. *)
  for _ = 1 to 7 do
    Scheme.transition wave;
    let day = Scheme.current_day wave in
    let frame = Scheme.frame wave in
    let w1 = Wave_util.Zipf.sample zipf prng in
    let w2 = Wave_util.Zipf.sample zipf prng in
    let whole = search frame ~t1:(day - 34) ~t2:day w1 w2 in
    let recent = search frame ~t1:(day - 6) ~t2:day w1 w2 in
    Printf.printf
      "day %d: query (w%d AND w%d) -> %d articles in 35 days, %d in last week\n"
      day w1 w2 (RidSet.cardinal whole) (RidSet.cardinal recent)
  done;
  let frame = Scheme.frame wave in
  Printf.printf "\nwindow covers %d days, %d postings, %d bytes (packed: %b)\n"
    (Dayset.cardinal (Frame.covered_days frame))
    (Frame.entry_count frame)
    (Frame.allocated_bytes frame)
    (Index.is_packed (Frame.slot_index frame 1));
  Printf.printf "transition time last day: %.4f model-seconds\n"
    (Scheme.last_transition_seconds wave)
