(* SCAM copy detection over a week of Netnews (the paper's Section 6
   first case study).

   SCAM registers documents and searches the last 7 days of Netnews for
   illegal copies.  A document is represented by its set of word values
   (here: Zipf ranks); a candidate copy is an indexed record sharing a
   large fraction of the probe document's values.  Following the
   paper's recommendation we maintain the window with REINDEX and n = 4
   constituents under simple shadowing.

     dune exec examples/scam_copydetect.exe                            *)

open Wave_core
open Wave_storage

let words_per_doc = 24
let docs_per_day = 12
let vocab = 20_000
let zipf_skew = 0.5 (* mild skew so unrelated documents rarely collide *)

(* Each day's batch: documents posting their word values.  One document
   per day is a near-copy of a document from three days earlier (same
   word set, shifted rid), giving the detector something to find. *)
let store =
  let zipf = Wave_util.Zipf.create ~n:vocab ~s:zipf_skew in
  let doc_words day doc =
    if doc = 0 && day > 3 then
      (* plagiarist: reuse day-3-ago's document 1 word-for-word *)
      let prng = Wave_util.Prng.create (((day - 3) * 1000) + 1) in
      List.init words_per_doc (fun _ -> Wave_util.Zipf.sample zipf prng)
    else
      let prng = Wave_util.Prng.create ((day * 1000) + doc) in
      List.init words_per_doc (fun _ -> Wave_util.Zipf.sample zipf prng)
  in
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let postings =
        Array.concat
          (List.init docs_per_day (fun doc ->
               let rid = (day * 1000) + doc in
               doc_words day doc
               |> List.mapi (fun i value ->
                      { Entry.value; entry = { Entry.rid; day; info = i } })
               |> Array.of_list))
      in
      let b = Entry.batch_create ~day postings in
      Hashtbl.add cache day b;
      b

(* Copy detection: probe the wave index for each distinct word of the
   suspect document and count, per registered document, how many
   distinct words it shares — the paper's "100 TimedIndexProbes per
   query".  A document counts at most once per word. *)
let find_copies frame ~t1 ~t2 words ~self_rid =
  let distinct = List.sort_uniq compare words in
  let matches = Hashtbl.create 64 in
  List.iter
    (fun value ->
      let rids =
        Frame.timed_index_probe frame ~t1 ~t2 ~value
        |> List.filter_map (fun (e : Entry.t) ->
               if e.Entry.rid = self_rid then None else Some e.Entry.rid)
        |> List.sort_uniq compare
      in
      List.iter
        (fun rid ->
          Hashtbl.replace matches rid
            (1 + Option.value ~default:0 (Hashtbl.find_opt matches rid)))
        rids)
    distinct;
  let threshold = 4 * List.length distinct / 5 in
  Hashtbl.fold
    (fun rid overlap acc ->
      if overlap >= threshold then (rid, overlap, List.length distinct) :: acc
      else acc)
    matches []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let () =
  let env = Env.create ~store ~technique:Env.Simple_shadow ~w:7 ~n:4 () in
  let wave = Scheme.start Scheme.Reindex env in
  Printf.printf "SCAM: REINDEX, W=7, n=4, simple shadowing (paper's pick)\n\n";
  (* Run two weeks of daily maintenance, checking each day's fresh
     documents against the window, like SCAM's registration service. *)
  for _ = 1 to 14 do
    Scheme.transition wave;
    let day = Scheme.current_day wave in
    let frame = Scheme.frame wave in
    let batch = store day in
    (* group today's postings back into documents *)
    let docs = Hashtbl.create 16 in
    Array.iter
      (fun (p : Entry.posting) ->
        let rid = p.Entry.entry.Entry.rid in
        Hashtbl.replace docs rid (p.Entry.value :: Option.value ~default:[] (Hashtbl.find_opt docs rid)))
      batch.Entry.postings;
    Hashtbl.iter
      (fun rid words ->
        match find_copies frame ~t1:(day - 6) ~t2:(day - 1) words ~self_rid:rid with
        | [] -> ()
        | (copy_rid, overlap, total) :: _ ->
          Printf.printf
            "day %d: document %d matches registered document %d (%d/%d words)\n"
            day rid copy_rid overlap total)
      docs
  done;
  let frame = Scheme.frame wave in
  Printf.printf "\nwindow: %s\n" (Dayset.to_string (Frame.covered_days frame));
  Printf.printf "all constituents packed: %b\n"
    (List.for_all
       (fun j -> Index.is_packed (Frame.slot_index frame j))
       [ 1; 2; 3; 4 ]);
  Printf.printf "disk model time: %.3f seconds\n"
    (Wave_disk.Disk.elapsed env.Env.disk)
