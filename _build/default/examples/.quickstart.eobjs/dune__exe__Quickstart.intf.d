examples/quickstart.mli:
