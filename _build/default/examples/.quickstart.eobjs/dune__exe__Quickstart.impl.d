examples/quickstart.ml: Array Dayset Entry Env Frame List Printf Scheme Wave_core Wave_disk Wave_storage
