examples/netnews_search.mli:
