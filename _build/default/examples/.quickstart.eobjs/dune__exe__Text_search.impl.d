examples/text_search.ml: Array Corpus Dayset Env Format Frame Hashtbl List Option Printf Query Scheme Vocab Wave_core Wave_disk Wave_storage Wave_text
