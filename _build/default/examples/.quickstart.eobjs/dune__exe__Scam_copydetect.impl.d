examples/scam_copydetect.ml: Array Dayset Entry Env Frame Hashtbl Index List Option Printf Scheme Wave_core Wave_disk Wave_storage Wave_util
