examples/tpcd_warehouse.ml: Env Frame List Printf Scheme Tpcd Wave_core Wave_workload
