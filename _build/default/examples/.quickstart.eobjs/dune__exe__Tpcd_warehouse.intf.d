examples/tpcd_warehouse.mli:
