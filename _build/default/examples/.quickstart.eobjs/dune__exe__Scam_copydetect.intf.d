examples/scam_copydetect.mli:
