examples/netnews_search.ml: Array Dayset Entry Env Frame Hashtbl Index Int List Netnews Printf Scheme Set Wave_core Wave_storage Wave_util Wave_workload
