open Wave_core
open Wave_model
open Wave_util

let mb x = x /. (1024.0 *. 1024.0)

let schemes_for n = List.filter (fun k -> Scheme.min_indexes k <= n) Scheme.all

let eval p ~scheme ~technique ~w ~n = Cost.evaluate p ~scheme ~technique ~w ~n

(* --- Tables 8-11 (evaluated instances) ----------------------------- *)

let running_example = (Scenario.scam.Scenario.params, 10, 2)

let table8 () =
  let p, w, n = running_example in
  let rows =
    List.map
      (fun scheme ->
        let s = eval p ~scheme ~technique:Env.Simple_shadow ~w ~n in
        [
          Scheme.name scheme;
          Printf.sprintf "%.0f" (mb s.Cost.space_avg);
          Printf.sprintf "%.0f" (mb s.Cost.space_max);
          Printf.sprintf "%.0f" (mb s.Cost.shadow_avg);
          Printf.sprintf "%.0f" (mb s.Cost.shadow_max);
        ])
      (schemes_for n)
  in
  Printf.sprintf
    "# Table 8: space utilisation, simple shadowing (SCAM parameters, W=%d n=%d; MB)\n%s"
    w n
    (Table_print.render
       ~header:
         [ "Scheme"; "op space avg"; "op space max"; "trans extra avg"; "trans extra max" ]
       ~rows)

let table9 () =
  let p, w, n = running_example in
  let rows =
    List.map
      (fun scheme ->
        let s = eval p ~scheme ~technique:Env.Simple_shadow ~w ~n in
        [
          Scheme.name scheme;
          Printf.sprintf "%.4f" s.Cost.probe_seconds;
          Printf.sprintf "%.2f" s.Cost.scan_seconds;
        ])
      (schemes_for n)
  in
  Printf.sprintf
    "# Table 9: query performance, simple shadowing (W=%d n=%d; seconds)\n%s" w n
    (Table_print.render
       ~header:[ "Scheme"; "TimedIndexProbe"; "TimedSegmentScan" ]
       ~rows)

let maintenance_table ~title technique =
  let p, w, n = running_example in
  let rows =
    List.map
      (fun scheme ->
        let s = eval p ~scheme ~technique ~w ~n in
        [
          Scheme.name scheme;
          Printf.sprintf "%.0f" s.Cost.pre_avg;
          Printf.sprintf "%.0f" s.Cost.trans_avg;
          Printf.sprintf "%.0f" s.Cost.trans_max;
        ])
      (schemes_for n)
  in
  Printf.sprintf "# %s (W=%d n=%d; seconds)\n%s" title w n
    (Table_print.render
       ~header:[ "Scheme"; "pre-computation avg"; "transition avg"; "transition max" ]
       ~rows)

let table10 () =
  maintenance_table ~title:"Table 10: maintenance, simple shadowing"
    Env.Simple_shadow

let table11 () =
  maintenance_table ~title:"Table 11: maintenance, packed shadowing"
    Env.Packed_shadow

let table12 () =
  let row (sc : Scenario.t) =
    let p = sc.Scenario.params in
    [
      sc.Scenario.name;
      string_of_int sc.Scenario.w;
      Printf.sprintf "%.3f" p.Params.seek;
      Printf.sprintf "%.0f" (mb p.Params.trans);
      Printf.sprintf "%.1f" (mb p.Params.s_packed);
      Printf.sprintf "%.1f" (mb p.Params.s_unpacked);
      Printf.sprintf "%.0f" p.Params.c_bucket;
      Printf.sprintf "%.0f" p.Params.probe_num;
      Printf.sprintf "%.0f" p.Params.scan_num;
      Printf.sprintf "%.2f" p.Params.g;
      Printf.sprintf "%.0f" p.Params.build;
      Printf.sprintf "%.0f" p.Params.add;
      Printf.sprintf "%.0f" p.Params.del;
    ]
  in
  Printf.sprintf "# Table 12: case-study parameters\n%s"
    (Table_print.render
       ~header:
         [
           "Scenario"; "W"; "seek(s)"; "Trans(MB/s)"; "S(MB)"; "S'(MB)"; "c(B)";
           "Probe_num"; "Scan_num"; "g"; "Build(s)"; "Add(s)"; "Del(s)";
         ]
       ~rows:(List.map row Scenario.all))

(* --- Figures ------------------------------------------------------- *)

let series_over_n ~title ~p ~w ~technique ~ns ~measure =
  let series =
    List.map
      (fun scheme ->
        ( Scheme.name scheme,
          List.map
            (fun n ->
              let y =
                if Scheme.min_indexes scheme <= n then
                  measure (eval p ~scheme ~technique ~w ~n)
                else Float.nan
              in
              (float_of_int n, y))
            ns ))
      Scheme.all
  in
  Table_print.render_series ~title ~x_label:"n" ~series

let fig3 () =
  let p = Scenario.scam.Scenario.params in
  series_over_n
    ~title:"Figure 3: SCAM average space during operation+transition (MB), W=7"
    ~p ~w:7 ~technique:Env.Simple_shadow
    ~ns:[ 1; 2; 3; 4; 5; 6; 7 ]
    ~measure:(fun s -> mb (s.Cost.space_avg +. s.Cost.shadow_avg))

let fig4 () =
  let p = Scenario.scam.Scenario.params in
  series_over_n ~title:"Figure 4: SCAM transition time (s), W=7" ~p ~w:7
    ~technique:Env.Simple_shadow
    ~ns:[ 1; 2; 3; 4; 5; 6; 7 ]
    ~measure:(fun s -> s.Cost.trans_avg)

let fig5 () =
  let p = Scenario.scam.Scenario.params in
  series_over_n ~title:"Figure 5: SCAM total daily work (s), W=7, simple shadowing"
    ~p ~w:7 ~technique:Env.Simple_shadow
    ~ns:[ 1; 2; 3; 4; 5; 6; 7 ]
    ~measure:(fun s -> s.Cost.work_per_day)

let fig6 () =
  let p = Scenario.wse.Scenario.params in
  series_over_n ~title:"Figure 6: WSE total daily work (s), W=35, packed shadowing"
    ~p ~w:35 ~technique:Env.Packed_shadow
    ~ns:[ 1; 2; 3; 4; 5; 7; 10; 15 ]
    ~measure:(fun s -> s.Cost.work_per_day)

let fig7 () =
  let p = Scenario.tpcd.Scenario.params in
  series_over_n ~title:"Figure 7: TPC-D total daily work (s), W=100, packed shadowing"
    ~p ~w:100 ~technique:Env.Packed_shadow
    ~ns:[ 1; 2; 4; 6; 8; 10; 15; 20 ]
    ~measure:(fun s -> s.Cost.work_per_day)

let fig8 () =
  let p = Scenario.tpcd.Scenario.params in
  series_over_n ~title:"Figure 8: TPC-D total daily work (s), W=100, simple shadowing"
    ~p ~w:100 ~technique:Env.Simple_shadow
    ~ns:[ 1; 2; 4; 6; 8; 10; 15; 20 ]
    ~measure:(fun s -> s.Cost.work_per_day)

let fig9 () =
  let p = Scenario.scam.Scenario.params in
  let ws = [ 4; 7; 14; 21; 28; 35; 42 ] in
  let series =
    List.map
      (fun scheme ->
        ( Scheme.name scheme,
          List.map
            (fun w ->
              let y =
                if Scheme.min_indexes scheme <= 4 && w >= 4 then
                  (eval p ~scheme ~technique:Env.Simple_shadow ~w ~n:4)
                    .Cost.work_per_day
                else Float.nan
              in
              (float_of_int w, y))
            ws ))
      Scheme.all
  in
  Table_print.render_series
    ~title:"Figure 9: SCAM total daily work (s) vs window W, n=4" ~x_label:"W"
    ~series

let fig10 () =
  let base = Scenario.scam.Scenario.params in
  let sfs = [ 0.5; 1.0; 1.5; 2.0; 2.5; 3.0; 3.5; 4.0; 4.5; 5.0 ] in
  let series =
    List.map
      (fun scheme ->
        ( Scheme.name scheme,
          List.map
            (fun sf ->
              let p = Params.scale base sf in
              ( sf,
                (eval p ~scheme ~technique:Env.Simple_shadow ~w:14 ~n:4)
                  .Cost.work_per_day ))
            sfs ))
      Scheme.all
  in
  Table_print.render_series
    ~title:
      "Figure 10: SCAM total daily work (s) vs data scale factor SF, W=14, n=4"
    ~x_label:"SF" ~series

let ext_techniques () =
  let p = Scenario.scam.Scenario.params in
  let w = 7 and n = 4 in
  let rows =
    List.concat_map
      (fun scheme ->
        List.map
          (fun technique ->
            let s = eval p ~scheme ~technique ~w ~n in
            [
              Scheme.name scheme;
              Env.technique_name technique;
              Printf.sprintf "%.0f" s.Cost.pre_avg;
              Printf.sprintf "%.0f" s.Cost.trans_avg;
              Printf.sprintf "%.0f" (mb (s.Cost.space_avg +. s.Cost.shadow_avg));
              Printf.sprintf "%.0f" s.Cost.work_per_day;
              (if Cost.constituents_packed ~scheme ~technique then "packed"
               else "unpacked");
            ])
          [ Env.In_place; Env.Simple_shadow; Env.Packed_shadow ])
      (schemes_for n)
  in
  Printf.sprintf
    "# Ablation: scheme x update technique (SCAM, W=%d, n=%d)\n%s" w n
    (Wave_util.Table_print.render
       ~header:
         [ "scheme"; "technique"; "pre(s)"; "trans(s)"; "space(MB)";
           "work/day(s)"; "layout" ]
       ~rows)
