(** Empirical (simulated) experiments: the figure and theorem artifacts
    that require running actual index structures or trace replays
    rather than evaluating the cost model. *)

val fig2 : unit -> string
(** Daily Usenet-like posting volumes for a September (30 days) at the
    paper's 70k/day scale — Figure 2's series. *)

val fig11 : unit -> string
(** WATA* index-size ratio vs n (W = 7) over a 200-day seasonal volume
    trace — Figure 11, with the paper's reported values alongside. *)

val thm2 : unit -> string
(** Empirical check of Theorem 2: WATA*'s maximum wave length equals
    [W + ceil((W-1)/(n-1)) - 1] across a (W, n) grid. *)

val thm3 : unit -> string
(** Empirical check of Theorem 3: WATA*'s index-size competitive ratio
    stays at or below 2.0 across trace families, and how close each
    family pushes it. *)

val crosscheck : unit -> string
(** Simulated implementation vs analytic model: run every scheme over
    the same workload with real index structures and verify the
    model's headline orderings (REINDEX++'s transition smallest,
    REINDEX space minimal, packed scans cheapest, WATA soft-window
    overhead) hold in the measured system too. *)

val ext_offline : unit -> string
(** Extension: WATA* vs the size-bounded online variant (KMRV97) vs the
    offline optimum, as index-size ratios over the true optimum —
    tightening Theorem 3's evaluation. *)

val ext_multidisk : unit -> string
(** Extension (Section 8 future work): query speedups when constituents
    are spread over multiple disks. *)

val ext_gsweep : unit -> string
(** Ablation: the CONTIGUOUS growth factor g, re-running the tuning the
    paper did to pick g = 2.0 for Zipfian Netnews and g = 1.08 for
    uniform TPC-D keys (Table 12's implementation parameters): space
    slack (S'/S) vs incremental-add work, per workload. *)

val ext_contention : unit -> string
(** Extension: query blocking under concurrency control — in-place
    updating locks the constituent for the whole maintenance interval,
    shadowing only for the swap (Section 2.1's trade-off quantified). *)
