open Wave_core
open Wave_util
open Wave_workload
open Wave_sim

let fig2 () =
  let cfg =
    { Netnews.default_config with Netnews.mean_postings = 70_000; jitter = 0.08 }
  in
  let series = Netnews.volume_series cfg ~days:30 in
  let weekday d = [| "Mon"; "Tue"; "Wed"; "Thu"; "Fri"; "Sat"; "Sun" |].((d - 1) mod 7) in
  let rows =
    List.map
      (fun (d, v) -> [ string_of_int d; weekday d; string_of_int v ])
      series
  in
  Printf.sprintf
    "# Figure 2: Usenet-like postings per day (September, 70k/day mean)\n%s\n\
     paper: ~110,000 midweek peak, ~30,000 Sunday trough\n"
    (Table_print.render ~header:[ "day"; "weekday"; "postings" ] ~rows)

let seasonal_sizes ~days =
  let cfg =
    { Netnews.default_config with Netnews.mean_postings = 70_000; jitter = 0.08 }
  in
  Array.init days (fun i -> Netnews.daily_volume cfg (i + 1))

let fig11 () =
  let sizes = seasonal_sizes ~days:200 in
  let paper = [ (2, "<= 1.6"); (3, "-"); (4, "1.24"); (5, "-"); (6, "-"); (7, "-") ] in
  let rows =
    List.map
      (fun (n, paper_val) ->
        let s = Wata_size.replay ~w:7 ~n ~sizes in
        [
          string_of_int n;
          Printf.sprintf "%.3f" s.Wata_size.ratio;
          paper_val;
          string_of_int s.Wata_size.wata_max_length;
        ])
      paper
  in
  Printf.sprintf
    "# Figure 11: WATA* index-size ratio vs n (W=7, 200-day seasonal trace)\n%s\n\
     paper: ratio tolerable (<= 1.6) and decreasing with n; 1.24 at n=4\n"
    (Table_print.render
       ~header:[ "n"; "size ratio"; "paper"; "max length (days)" ]
       ~rows)

let thm2 () =
  let sizes = Array.make 400 1 in
  let rows = ref [] in
  List.iter
    (fun w ->
      List.iter
        (fun n ->
          if n <= w then begin
            let s = Wata_size.replay ~w ~n ~sizes in
            let bound = Wata.length_bound ~w ~n in
            rows :=
              [
                string_of_int w;
                string_of_int n;
                string_of_int s.Wata_size.wata_max_length;
                string_of_int bound;
                (if s.Wata_size.wata_max_length = bound then "=" else "VIOLATION");
              ]
              :: !rows
          end)
        [ 2; 3; 4; 6; 8 ])
    [ 5; 7; 10; 14; 30 ];
  Printf.sprintf
    "# Theorem 2: WATA* maximum wave length vs the W + ceil((W-1)/(n-1)) - 1 bound\n%s"
    (Table_print.render
       ~header:[ "W"; "n"; "measured max"; "bound"; "status" ]
       ~rows:(List.rev !rows))

let thm3 () =
  let traces =
    [
      ("uniform", Array.make 200 100);
      ("seasonal", seasonal_sizes ~days:200);
      ("spike", Array.init 200 (fun i -> if i mod 37 = 0 then 100_000 else 10));
      ("ramp", Array.init 200 (fun i -> 1 + (i * i)));
      ("alternating", Array.init 200 (fun i -> if i mod 2 = 0 then 1 else 1_000));
    ]
  in
  let geoms = [ (7, 2); (7, 4); (14, 3); (30, 5) ] in
  let rows =
    List.concat_map
      (fun (name, sizes) ->
        List.map
          (fun (w, n) ->
            let s = Wata_size.replay ~w ~n ~sizes in
            [
              name;
              string_of_int w;
              string_of_int n;
              Printf.sprintf "%.3f" s.Wata_size.ratio;
              (if s.Wata_size.ratio <= 2.0 +. 1e-9 then "<= 2.0" else "VIOLATION");
            ])
          geoms)
      traces
  in
  Printf.sprintf
    "# Theorem 3: WATA* index-size competitive ratio across trace families\n%s"
    (Table_print.render ~header:[ "trace"; "W"; "n"; "ratio"; "status" ] ~rows)

let crosscheck () =
  let store =
    Netnews.store { Netnews.default_config with Netnews.mean_postings = 150 }
  in
  (* Charge per-entry CPU in the paper's measured proportions: SCAM's
     Add (3341 s/day) is twice its Build (1686 s/day), because
     incremental CONTIGUOUS indexing costs more per entry than a bulk
     packed build.  Without this, maintenance is disk-only and rebuilds
     look unrealistically cheap. *)
  let icfg =
    {
      Wave_storage.Index.default_config with
      Wave_storage.Index.build_cpu_per_entry = 0.01;
      add_cpu_per_entry = 0.02;
    }
  in
  let run scheme technique =
    Runner.run
      {
        (Runner.default_config ~scheme ~store ~w:8 ~n:2) with
        Runner.technique;
        icfg;
        run_days = 24;
        queries = Some { Query_gen.scam_spec with Query_gen.probes_per_day = 20 };
      }
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "# Cross-check: simulated implementation vs analytic-model claims (W=8, n=2)\n";
  let avg f (r : Runner.result) =
    List.fold_left (fun a d -> a +. f d) 0.0 r.Runner.days
    /. float_of_int (List.length r.Runner.days)
  in
  let claim name ok = Printf.bprintf buf "%-64s %s\n" name (if ok then "OK" else "FAILED") in
  let del_ip = run Scheme.Del Env.In_place in
  let del_ps = run Scheme.Del Env.Packed_shadow in
  let reindex = run Scheme.Reindex Env.In_place in
  let rpp = run Scheme.Reindex_pp Env.In_place in
  let rplus = run Scheme.Reindex_plus Env.In_place in
  let wata = run Scheme.Wata_star Env.In_place in
  claim "REINDEX++ transition below REINDEX+'s (ladder pays off)"
    (avg (fun d -> d.Runner.transition_seconds) rpp
    < avg (fun d -> d.Runner.transition_seconds) rplus);
  claim "REINDEX space below DEL in-place (packed beats CONTIGUOUS slack)"
    (reindex.Runner.avg_space_bytes < del_ip.Runner.avg_space_bytes);
  claim "packed shadowing shrinks DEL's steady-state space"
    (del_ps.Runner.avg_space_bytes < del_ip.Runner.avg_space_bytes);
  claim "WATA holds more days than the window (soft) at some point"
    (List.exists (fun d -> d.Runner.wave_length > 8) wata.Runner.days);
  claim "hard schemes hold exactly W days"
    (List.for_all (fun d -> d.Runner.wave_length = 8) del_ip.Runner.days
    && List.for_all (fun d -> d.Runner.wave_length = 8) reindex.Runner.days);
  claim "WATA daily maintenance below REINDEX's"
    (wata.Runner.total_maintenance_seconds < reindex.Runner.total_maintenance_seconds);
  Buffer.contents buf

let ext_offline () =
  let sizes = seasonal_sizes ~days:150 in
  let rows =
    List.map
      (fun (w, n) ->
        let opt = Wata_offline.optimal ~w ~n ~sizes in
        let star = Wata_size.replay ~w ~n ~sizes in
        let m = Wata_size.window_max ~w ~sizes in
        let bounded = Wata_bounded.replay ~w ~n ~m ~sizes in
        let r x = float_of_int x /. float_of_int opt.Wata_offline.max_size in
        [
          string_of_int w;
          string_of_int n;
          string_of_int opt.Wata_offline.max_size;
          Printf.sprintf "%.3f" (r star.Wata_size.wata_max_size);
          Printf.sprintf "%.3f" (r bounded.Wata_bounded.max_size);
          Printf.sprintf "%.3f" (Wata_bounded.guaranteed_ratio ~n);
        ])
      [ (7, 2); (7, 3); (7, 4); (7, 6); (14, 4) ]
  in
  Printf.sprintf
    "# Extension: index-size ratios vs the OFFLINE OPTIMUM (150-day seasonal trace)\n%s\n\
     WATA* stays within its factor-2 guarantee of the true optimum; the\n\
     size-hinted online variant approaches n/(n-1) [KMRV97].\n"
    (Table_print.render
       ~header:[ "W"; "n"; "OPT size"; "WATA*/OPT"; "bounded/OPT"; "n/(n-1)" ]
       ~rows)

let ext_multidisk () =
  let store =
    Netnews.store { Netnews.default_config with Netnews.mean_postings = 200 }
  in
  Multi_disk.speedup_table ~store ~w:12 ~n:6 ~disks:[ 1; 2; 3; 6 ]

let ext_gsweep () =
  let sweep name store =
    List.map
      (fun g ->
        let icfg =
          { Wave_storage.Index.default_config with Wave_storage.Index.growth_factor = g }
        in
        let env =
          Env.create ~icfg ~technique:Env.In_place ~store ~w:7 ~n:2 ()
        in
        let s = Scheme.start Scheme.Del env in
        let start_clock = Wave_disk.Disk.elapsed env.Env.disk in
        let slack_samples = ref [] in
        for _ = 1 to 21 do
          Scheme.transition s;
          let frame = Scheme.frame s in
          slack_samples :=
            (float_of_int (Frame.allocated_bytes frame)
            /. float_of_int (max 1 (Frame.used_bytes frame)))
            :: !slack_samples
        done;
        let work = Wave_disk.Disk.elapsed env.Env.disk -. start_clock in
        let slack = Stats.mean (Array.of_list !slack_samples) in
        [
          name;
          Printf.sprintf "%.2f" g;
          Printf.sprintf "%.3f" slack;
          Printf.sprintf "%.3f" (work /. 21.0);
        ])
      [ 1.08; 1.25; 1.5; 2.0; 3.0 ]
  in
  let zipf =
    Netnews.store { Netnews.default_config with Netnews.mean_postings = 300 }
  in
  let uniform =
    Tpcd.store { Tpcd.default_config with Tpcd.mean_rows = 300; suppliers = 150 }
  in
  Printf.sprintf
    "# Ablation: CONTIGUOUS growth factor g (DEL in-place, W=7, n=2, 21 days)\n%s\n\
     paper: g trades bucket-copy time against slack space; SCAM's Zipfian\n\
     words picked g = 2.0, TPC-D's uniform SUPPKEYs g = 1.08.\n"
    (Table_print.render
       ~header:[ "workload"; "g"; "slack S'/S"; "maintenance s/day" ]
       ~rows:(sweep "netnews(zipf)" zipf @ sweep "tpcd(uniform)" uniform))

let ext_contention () =
  let store =
    Netnews.store { Netnews.default_config with Netnews.mean_postings = 250 }
  in
  (* day_seconds chosen so the lock occupies ~5%% of the day, the
     paper's SCAM proportion (Add = 3341 s of 86,400). *)
  Contention.compare_table ~day_seconds:100.0 ~scheme:Scheme.Del ~store ~w:7
    ~n:2 ~days:20 ~queries_per_day:200 ()
