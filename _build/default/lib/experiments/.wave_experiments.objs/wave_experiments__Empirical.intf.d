lib/experiments/empirical.mli:
