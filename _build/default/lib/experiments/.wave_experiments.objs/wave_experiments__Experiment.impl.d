lib/experiments/experiment.ml: Analytic Empirical List Printf String Traces
