lib/experiments/traces.mli:
