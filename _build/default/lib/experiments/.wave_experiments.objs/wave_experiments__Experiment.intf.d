lib/experiments/experiment.mli:
