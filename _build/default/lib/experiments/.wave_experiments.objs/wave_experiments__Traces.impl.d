lib/experiments/traces.ml: Dayset Env Frame Hashtbl List Printf Rata Reindex_plus Reindex_pp Scheme String Table_print Update Wata Wave_core Wave_storage Wave_util
