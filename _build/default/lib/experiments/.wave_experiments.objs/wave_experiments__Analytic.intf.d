lib/experiments/analytic.mli:
