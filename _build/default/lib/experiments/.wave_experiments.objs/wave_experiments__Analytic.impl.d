lib/experiments/analytic.ml: Cost Env Float List Params Printf Scenario Scheme Table_print Wave_core Wave_model Wave_util
