open Wave_core
open Wave_util

(* A tiny deterministic store: trace tables only care about time-sets,
   not contents. *)
let store =
  let cache = Hashtbl.create 64 in
  fun day ->
    match Hashtbl.find_opt cache day with
    | Some b -> b
    | None ->
      let b =
        Wave_storage.Entry.batch_create ~day
          [|
            {
              Wave_storage.Entry.value = 1 + (day mod 5);
              entry = { Wave_storage.Entry.rid = day; day; info = 0 };
            };
          |]
      in
      Hashtbl.add cache day b;
      b

let render_trace ~title ~n ~days ~slots_of ~temps_of ~advance =
  let header =
    "Day"
    :: List.init n (fun i -> Printf.sprintf "Index I%d" (i + 1))
    @ (if temps_of = None then [] else [ "Temp" ])
  in
  let rows =
    List.map
      (fun day ->
        advance day;
        let slots = slots_of () in
        string_of_int day
        :: List.map Dayset.to_string slots
        @
        match temps_of with
        | None -> []
        | Some f -> [ String.concat " " (List.map Dayset.to_string (f ())) ])
      days
  in
  Printf.sprintf "# %s\n%s" title (Table_print.render ~header ~rows)

let scheme_trace kind ~title ~w ~n ~days ~temps =
  let env = Env.create ~store ~w ~n () in
  let s = Scheme.start kind env in
  ignore w;
  render_trace ~title ~n ~days
    ~slots_of:(fun () ->
      List.init n (fun i -> Frame.slot_days (Scheme.frame s) (i + 1)))
    ~temps_of:(if temps then Some (fun () -> Scheme.temp_days s) else None)
    ~advance:(fun day -> Scheme.advance_to s day)

let table1 () =
  scheme_trace Scheme.Del ~title:"Table 1: DEL (W=10, n=2)" ~w:10 ~n:2
    ~days:[ 10; 11; 12; 13; 14; 15; 16 ] ~temps:false

let table2 () =
  scheme_trace Scheme.Reindex ~title:"Table 2: REINDEX (W=10, n=2)" ~w:10 ~n:2
    ~days:[ 10; 11; 12; 13; 14; 15; 16 ] ~temps:false

let table3 () =
  scheme_trace Scheme.Wata_star ~title:"Table 3: WATA* (W=10, n=4)" ~w:10 ~n:4
    ~days:[ 10; 11; 12; 13; 14 ] ~temps:false

(* Table 4: a WATA variant whose Start packs days 1-4 into I_1, leaving
   I_4 empty; same Wait/ThrowAway rules.  Scripted directly with the
   frame and update primitives to show its index length reaches 13
   where Table 3's reaches 12. *)
let table4 () =
  let w = 10 and n = 4 in
  let env = Env.create ~store ~w ~n () in
  let frame = Frame.create env in
  let install j lo hi =
    Frame.set_slot frame j
      (Update.build_days env (Dayset.elements (Dayset.range lo hi)))
      (Dayset.range lo hi)
  in
  install 1 1 4;
  install 2 5 7;
  install 3 8 10;
  (* slot 4 left empty *)
  let last = ref 3 in
  let lengths = ref [ (10, Frame.length frame) ] in
  let rows = ref [] in
  let snapshot day =
    rows :=
      (string_of_int day
      :: List.init n (fun i -> Dayset.to_string (Frame.slot_days frame (i + 1))))
      :: !rows
  in
  snapshot 10;
  for day = 11 to 14 do
    let expired = day - w in
    let j = Frame.find_slot_with_day frame expired in
    let others =
      List.fold_left ( + ) 0
        (List.init n (fun i ->
             if i + 1 = j then 0 else Dayset.cardinal (Frame.slot_days frame (i + 1))))
    in
    if others = w - 1 then begin
      Wave_storage.Index.drop (Frame.slot_index frame j);
      Frame.set_slot frame j
        (Update.build_days env [ day ])
        (Dayset.singleton day);
      last := j
    end
    else begin
      (* first new day lands in the empty slot 4, as in the paper *)
      let target = if Dayset.is_empty (Frame.slot_days frame 4) then 4 else !last in
      last := target;
      let idx = Update.add_days env (Frame.slot_index frame target) [ day ] in
      Frame.set_slot frame target idx
        (Dayset.add day (Frame.slot_days frame target))
    end;
    lengths := (day, Frame.length frame) :: !lengths;
    snapshot day
  done;
  let max_len = List.fold_left (fun acc (_, l) -> max acc l) 0 !lengths in
  let header = "Day" :: List.init n (fun i -> Printf.sprintf "Index I%d" (i + 1)) in
  Printf.sprintf
    "# Table 4: greedy-start WATA (W=10, n=4)\n%s\nmax index length = %d \
     (Table 3's WATA* start reaches %d = Theorem 2 bound)\n"
    (Table_print.render ~header ~rows:(List.rev !rows))
    max_len
    (Wata.length_bound ~w ~n)

let table5 () =
  let env = Env.create ~store ~w:10 ~n:2 () in
  let s = Reindex_plus.start env in
  render_trace ~title:"Table 5: REINDEX+ (W=10, n=2)" ~n:2
    ~days:[ 10; 11; 12; 13; 14; 15; 16 ]
    ~slots_of:(fun () ->
      [ Frame.slot_days (Reindex_plus.frame s) 1; Frame.slot_days (Reindex_plus.frame s) 2 ])
    ~temps_of:(Some (fun () -> [ Reindex_plus.temp_days s ]))
    ~advance:(fun day ->
      while Reindex_plus.current_day s < day do
        Reindex_plus.transition s
      done)

let table6 () =
  let env = Env.create ~store ~w:10 ~n:2 () in
  let s = Reindex_pp.start env in
  render_trace ~title:"Table 6: REINDEX++ (W=10, n=2)" ~n:2
    ~days:[ 10; 11; 12; 13; 14; 15; 16 ]
    ~slots_of:(fun () ->
      [ Frame.slot_days (Reindex_pp.frame s) 1; Frame.slot_days (Reindex_pp.frame s) 2 ])
    ~temps_of:(Some (fun () -> Reindex_pp.temps_days s))
    ~advance:(fun day ->
      while Reindex_pp.current_day s < day do
        Reindex_pp.transition s
      done)

let table7 () =
  let env = Env.create ~store ~w:10 ~n:4 () in
  let s = Rata.start env in
  render_trace ~title:"Table 7: RATA* (W=10, n=4)" ~n:4
    ~days:[ 10; 11; 12; 13; 14 ]
    ~slots_of:(fun () ->
      List.init 4 (fun i -> Frame.slot_days (Rata.frame s) (i + 1)))
    ~temps_of:(Some (fun () -> Rata.temps_days s))
    ~advance:(fun day ->
      while Rata.current_day s < day do
        Rata.transition s
      done)
