type t = {
  id : string;
  title : string;
  paper_claim : string;
  run : unit -> string;
}

let all =
  [
    {
      id = "table1";
      title = "DEL transition trace (W=10, n=2)";
      paper_claim = "Table 1's per-day time-sets";
      run = Traces.table1;
    };
    {
      id = "table2";
      title = "REINDEX transition trace (W=10, n=2)";
      paper_claim = "Table 2's per-day time-sets";
      run = Traces.table2;
    };
    {
      id = "table3";
      title = "WATA* transition trace (W=10, n=4)";
      paper_claim = "Table 3's per-day time-sets; max length 12";
      run = Traces.table3;
    };
    {
      id = "table4";
      title = "Greedy-start WATA trace (W=10, n=4)";
      paper_claim = "Table 4's variant reaches length 13 vs WATA*'s 12";
      run = Traces.table4;
    };
    {
      id = "table5";
      title = "REINDEX+ transition trace with Temp (W=10, n=2)";
      paper_claim = "Table 5's per-day time-sets and Temp contents";
      run = Traces.table5;
    };
    {
      id = "table6";
      title = "REINDEX++ transition trace with temporaries (W=10, n=2)";
      paper_claim = "Table 6's per-day time-sets and ladder contents";
      run = Traces.table6;
    };
    {
      id = "table7";
      title = "RATA* transition trace with temporaries (W=10, n=4)";
      paper_claim = "Table 7's hard window via pre-built suffixes";
      run = Traces.table7;
    };
    {
      id = "table8";
      title = "Space utilisation under simple shadowing";
      paper_claim = "REINDEX minimal; temporaries and shadows cost extra";
      run = Analytic.table8;
    };
    {
      id = "table9";
      title = "Query performance";
      paper_claim = "probe ~ Probe_idx*(seek + X*c/Trans); packed scans cheaper";
      run = Analytic.table9;
    };
    {
      id = "table10";
      title = "Maintenance under simple shadowing";
      paper_claim = "DEL pre=X*CP+Del trans=Add; REINDEX trans=X*Build";
      run = Analytic.table10;
    };
    {
      id = "table11";
      title = "Maintenance under packed shadowing";
      paper_claim = "DEL trans=X*SMCP+Build; incremental adds become Builds";
      run = Analytic.table11;
    };
    {
      id = "table12";
      title = "Case-study parameters";
      paper_claim = "SCAM / WSE / TPC-D measured and estimated values";
      run = Analytic.table12;
    };
    {
      id = "fig2";
      title = "Usenet postings per day";
      paper_claim = "weekly wave: ~110k midweek, ~30k Sunday";
      run = Empirical.fig2;
    };
    {
      id = "fig3";
      title = "SCAM average space vs n";
      paper_claim = "REINDEX minimal; all schemes need less space as n grows";
      run = Analytic.fig3;
    };
    {
      id = "fig4";
      title = "SCAM transition time vs n";
      paper_claim =
        "DEL/WATA/RATA/REINDEX++ flat; REINDEX crosses below at n=4; REINDEX+ worst";
      run = Analytic.fig4;
    };
    {
      id = "fig5";
      title = "SCAM total work vs n";
      paper_claim = "REINDEX poor for small n, efficient for large n";
      run = Analytic.fig5;
    };
    {
      id = "fig6";
      title = "WSE total work vs n (packed shadowing)";
      paper_claim = "REINDEX worst; DEL/WATA/RATA best at small n; pick DEL n=1";
      run = Analytic.fig6;
    };
    {
      id = "fig7";
      title = "TPC-D total work vs n (packed shadowing)";
      paper_claim = "DEL(n=1)/WATA(n=2) best, REINDEX worst";
      run = Analytic.fig7;
    };
    {
      id = "fig8";
      title = "TPC-D total work vs n (simple shadowing)";
      paper_claim = "WATA minimal, ~10,000s below DEL and RATA";
      run = Analytic.fig8;
    };
    {
      id = "fig9";
      title = "SCAM work vs window size W (n=4)";
      paper_claim = "reindexing schemes scale O(W/n); DEL/WATA/RATA flat";
      run = Analytic.fig9;
    };
    {
      id = "fig10";
      title = "SCAM work vs data scale factor SF (W=14, n=4)";
      paper_claim = "WATA* best for SF<=3, REINDEX beyond";
      run = Analytic.fig10;
    };
    {
      id = "fig11";
      title = "WATA* index-size ratio vs n (W=7, 200 days)";
      paper_claim = "ratio tolerable (<=1.6), 1.24 at n=4, decreasing in n";
      run = Empirical.fig11;
    };
    {
      id = "thm2";
      title = "Theorem 2: WATA* length optimality";
      paper_claim = "max length = W + ceil((W-1)/(n-1)) - 1";
      run = Empirical.thm2;
    };
    {
      id = "thm3";
      title = "Theorem 3: WATA* 2-competitive index size";
      paper_claim = "size ratio <= 2.0 on any trace";
      run = Empirical.thm3;
    };
    {
      id = "ext-offline";
      title = "Extension: WATA* and bounded-online vs the offline optimum";
      paper_claim = "Theorem 3 against the true adversary; KMRV97's n/(n-1)";
      run = Empirical.ext_offline;
    };
    {
      id = "ext-multidisk";
      title = "Extension: multi-disk query parallelism (Section 8)";
      paper_claim = "queries across constituents parallelize across disks";
      run = Empirical.ext_multidisk;
    };
    {
      id = "ext-techniques";
      title = "Ablation: scheme x update technique grid";
      paper_claim = "Section 5's trade-offs side by side";
      run = Analytic.ext_techniques;
    };
    {
      id = "ext-contention";
      title = "Extension: concurrency-control blocking";
      paper_claim = "in-place needs locks; shadowing queries never block";
      run = Empirical.ext_contention;
    };
    {
      id = "ext-gsweep";
      title = "Ablation: CONTIGUOUS growth factor g";
      paper_claim = "g trades copy work vs slack; 2.0 for Zipf, 1.08 for uniform";
      run = Empirical.ext_gsweep;
    };
    {
      id = "crosscheck";
      title = "Simulation vs analytic model";
      paper_claim = "measured implementation reproduces the model's orderings";
      run = Empirical.crosscheck;
    };
  ]

let find id =
  let lid = String.lowercase_ascii (String.trim id) in
  List.find_opt (fun e -> e.id = lid) all

let run_all () =
  String.concat "\n"
    (List.map
       (fun e ->
         Printf.sprintf "=== %s: %s ===\npaper: %s\n\n%s" e.id e.title
           e.paper_claim (e.run ()))
       all)
