(** Analytic-model experiments: evaluated versions of Tables 8-11 and
    the data series behind Figures 3-10. *)

val table8 : unit -> string
(** Space utilisation per scheme under simple shadowing, evaluated for
    the paper's running example (W = 10, n = 2) with SCAM parameters:
    the concrete instance of Table 8. *)

val table9 : unit -> string
(** Query performance per scheme (Table 9's instance). *)

val table10 : unit -> string
(** Maintenance (pre-computation / transition) under simple shadowing
    (Table 10's instance). *)

val table11 : unit -> string
(** Maintenance under packed shadowing (Table 11's instance). *)

val table12 : unit -> string
(** The case-study parameter values (Table 12). *)

val fig3 : unit -> string
(** SCAM: average space (operation + transition) vs n, W = 7. *)

val fig4 : unit -> string
(** SCAM: transition time vs n, W = 7. *)

val fig5 : unit -> string
(** SCAM: total daily work vs n, W = 7, simple shadowing. *)

val fig6 : unit -> string
(** WSE: total daily work vs n, W = 35, packed shadowing. *)

val fig7 : unit -> string
(** TPC-D: total daily work vs n, W = 100, packed shadowing. *)

val fig8 : unit -> string
(** TPC-D: total daily work vs n, W = 100, simple shadowing. *)

val fig9 : unit -> string
(** SCAM: total daily work vs W (4 days to 6 weeks), n = 4. *)

val fig10 : unit -> string
(** SCAM: total daily work vs data scale factor SF, W = 14, n = 4. *)

val ext_techniques : unit -> string
(** Ablation: every scheme x update technique at the SCAM operating
    point — the paper's Section 5 trade-off grid in one table. *)
