(** Registry of reproduction experiments: one per table and figure of
    the paper, plus the theorem checks and the model-vs-implementation
    cross-check.  Each produces printable output regenerating the
    corresponding artifact. *)

type t = {
  id : string;  (** e.g. "table3", "fig6", "thm2" *)
  title : string;
  paper_claim : string;  (** what the paper's artifact shows *)
  run : unit -> string;
}

val all : t list
(** In paper order: table1-7, table8-12, fig2-11, thm2, thm3,
    crosscheck. *)

val find : string -> t option
(** Case-insensitive lookup by id. *)

val run_all : unit -> string
(** Concatenated output of every experiment. *)
