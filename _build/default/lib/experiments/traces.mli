(** Reproduction of the paper's example transition tables (Tables 1-7):
    run each scheme at the table's (W, n) and render the per-day
    constituent (and temporary) time-sets. *)

val table1 : unit -> string
(** DEL, W = 10, n = 2. *)

val table2 : unit -> string
(** REINDEX, W = 10, n = 2. *)

val table3 : unit -> string
(** WATA*, W = 10, n = 4 (the paper's Table 3 layout). *)

val table4 : unit -> string
(** The alternative greedy-start WATA of Table 4, scripted with the
    wave-index primitives, showing its longer index length (13 vs
    Table 3's 12). *)

val table5 : unit -> string
(** REINDEX+, W = 10, n = 2, with the Temp column. *)

val table6 : unit -> string
(** REINDEX++, W = 10, n = 2, with the temporaries column. *)

val table7 : unit -> string
(** RATA*, W = 10, n = 4, with the temporaries column. *)
