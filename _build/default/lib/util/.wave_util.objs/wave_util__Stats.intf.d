lib/util/stats.mli:
