lib/util/prng.mli:
