lib/util/table_print.mli:
