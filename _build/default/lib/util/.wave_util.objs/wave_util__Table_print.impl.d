lib/util/table_print.ml: Array Buffer Float List Printf String
