(** Plain-text rendering of tables and series, used by the experiment
    drivers to print the same rows the paper's tables and the same
    (x, y) series its figures report. *)

val render : header:string list -> rows:string list list -> string
(** [render ~header ~rows] draws an aligned ASCII table.  Every row must
    have the same arity as the header. *)

val render_series :
  title:string -> x_label:string -> series:(string * (float * float) list) list
  -> string
(** [render_series ~title ~x_label ~series] prints one column of x values
    followed by one column per named series, suitable for regenerating a
    figure's data.  All series must share the same x grid. *)

val float_cell : float -> string
(** Compact float formatting: integers print without a fraction, other
    values with up to four significant decimals. *)
