type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* The SplitMix64 finaliser: two xor-shift-multiply rounds.  The constants
   are Stafford's "Mix13" variant, the same ones used by Java's
   SplittableRandom. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (int64 t) }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  assert (bound > 0);
  if bound <= 1 lsl 30 then begin
    (* Rejection sampling on 30 bits keeps the distribution exactly
       uniform for any bound, not just powers of two. *)
    let mask = bound - 1 in
    if bound land mask = 0 then bits30 t land mask
    else
      let rec loop () =
        let r = bits30 t in
        let v = r mod bound in
        if r - v + (bound - 1) < 0 then loop () else v
      in
      loop ()
  end
  else
    (* Large bounds: use 62 bits and accept the negligible modulo bias. *)
    let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
    r mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits scaled into [0, 1), then into [0, bound). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.compare (int64 t) 0L < 0

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t ~mean ~stddev =
  let rec polar () =
    let u = (2.0 *. float t 1.0) -. 1.0 in
    let v = (2.0 *. float t 1.0) -. 1.0 in
    let s = (u *. u) +. (v *. v) in
    if s >= 1.0 || s = 0.0 then polar ()
    else u *. sqrt (-2.0 *. log s /. s)
  in
  mean +. (stddev *. polar ())

let exponential t ~rate =
  assert (rate > 0.0);
  let u = float t 1.0 in
  -.log (1.0 -. u) /. rate
