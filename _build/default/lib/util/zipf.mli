(** Zipfian distribution sampling.

    The paper notes that words in SCAM's Netnews articles follow a skewed
    Zipfian distribution [Zip49], while TPC-D's [SUPPKEY] values are
    uniform; the CONTIGUOUS growth factor [g] was tuned differently for
    each (2.0 vs 1.08).  This module provides the Zipf law over ranks
    [1..n] with exponent [s]: P(rank = k) proportional to 1 / k^s. *)

type t
(** Immutable sampler for a fixed [(n, s)] pair. *)

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [1..n] with exponent
    [s >= 0].  [s = 0] degenerates to the uniform distribution.
    Preprocessing is O(n) time and memory (cumulative table); intended
    for vocabularies up to a few million ranks. *)

val n : t -> int
(** Number of ranks. *)

val s : t -> float
(** Skew exponent. *)

val sample : t -> Prng.t -> int
(** [sample t prng] draws a rank in [1..n] by binary search on the
    cumulative table: O(log n). *)

val pmf : t -> int -> float
(** [pmf t k] is the probability of rank [k] (1-based). *)

val harmonic : t -> float
(** The generalised harmonic number H(n, s) normalising the law. *)

val expected_distinct : t -> int -> float
(** [expected_distinct t m] estimates how many distinct ranks appear in
    [m] independent draws: sum over k of (1 - (1 - p_k)^m).  Used to
    predict index directory sizes for a day's batch. *)
