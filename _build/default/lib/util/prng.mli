(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that
    every workload, trace and experiment is reproducible from a seed.
    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl increment and finalised by a
    variance-maximising mixer.  It is fast, has a full 2^64 period, and
    supports cheap splitting into statistically independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed.  Equal
    seeds yield identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will replay [t]'s future. *)

val split : t -> t
(** [split t] derives a new generator whose stream is independent of
    [t]'s subsequent output; [t] is advanced once. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random non-negative bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate by the Marsaglia polar method. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate (inverse mean). *)
