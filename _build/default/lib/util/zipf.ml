type t = {
  n : int;
  s : float;
  cdf : float array; (* cdf.(k-1) = P(rank <= k), strictly increasing *)
  harmonic : float;
}

let create ~n ~s =
  assert (n > 0);
  assert (s >= 0.0);
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int k ** s));
    cdf.(k - 1) <- !acc
  done;
  let h = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. h
  done;
  cdf.(n - 1) <- 1.0;
  { n; s; cdf; harmonic = h }

let n t = t.n
let s t = t.s
let harmonic t = t.harmonic

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Smallest index with cdf.(i) > u. *)
  let rec search lo hi =
    if lo >= hi then lo + 1
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
  in
  search 0 (t.n - 1)

let pmf t k =
  assert (k >= 1 && k <= t.n);
  1.0 /. (float_of_int k ** t.s) /. t.harmonic

let expected_distinct t m =
  let m = float_of_int m in
  let acc = ref 0.0 in
  for k = 1 to t.n do
    let p = pmf t k in
    (* (1-p)^m via exp/log to avoid underflow for tiny p and huge m. *)
    let miss = if p >= 1.0 then 0.0 else exp (m *. log (1.0 -. p)) in
    acc := !acc +. (1.0 -. miss)
  done;
  !acc
