let float_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.4g" x

let render ~header ~rows =
  let arity = List.length header in
  List.iter
    (fun r ->
      if List.length r <> arity then
        invalid_arg "Table_print.render: row arity mismatch")
    rows;
  let widths = Array.make arity 0 in
  let note r =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) r
  in
  note header;
  List.iter note rows;
  let buf = Buffer.create 256 in
  let line row =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf c;
        Buffer.add_string buf (String.make (widths.(i) - String.length c) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  line header;
  line (List.map (fun _ -> "") header |> List.mapi (fun i _ -> String.make widths.(i) '-'));
  List.iter line rows;
  Buffer.contents buf

let render_series ~title ~x_label ~series =
  match series with
  | [] -> invalid_arg "Table_print.render_series: no series"
  | (_, first) :: _ ->
    let xs = List.map fst first in
    List.iter
      (fun (name, pts) ->
        if List.map fst pts <> xs then
          invalid_arg
            (Printf.sprintf
               "Table_print.render_series: series %S has a different x grid"
               name))
      series;
    let header = x_label :: List.map fst series in
    let rows =
      List.mapi
        (fun i x ->
          float_cell x
          :: List.map (fun (_, pts) -> float_cell (snd (List.nth pts i))) series)
        xs
    in
    Printf.sprintf "# %s\n%s" title (render ~header ~rows)
