(** Word interning: strings to the integer search values the index
    substrate works with, and back.

    The wave index's buckets are keyed by integer search values; an IR
    deployment needs a stable mapping from words to those values.  The
    vocabulary grows monotonically (ids are never reused), so a value
    written into an index on day 1 still resolves on day 100. *)

type t

val create : unit -> t
val size : t -> int

val intern : t -> string -> int
(** The id for a word, allocating the next id (starting at 1) on first
    sight.  The word is used verbatim — tokenise first. *)

val find : t -> string -> int option
(** Lookup without allocation. *)

val word_of : t -> int -> string
(** Reverse lookup; raises [Not_found] for unknown ids. *)

val intern_all : t -> string list -> int list
