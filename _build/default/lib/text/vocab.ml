type t = {
  by_word : (string, int) Hashtbl.t;
  mutable by_id : string array; (* slot i holds the word for id i+1 *)
  mutable next : int;
}

let create () = { by_word = Hashtbl.create 1024; by_id = Array.make 1024 ""; next = 1 }

let size t = t.next - 1

let intern t w =
  match Hashtbl.find_opt t.by_word w with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- id + 1;
    Hashtbl.add t.by_word w id;
    if id > Array.length t.by_id then begin
      let grown = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 grown 0 (Array.length t.by_id);
      t.by_id <- grown
    end;
    t.by_id.(id - 1) <- w;
    id

let find t w = Hashtbl.find_opt t.by_word w

let word_of t id =
  if id < 1 || id >= t.next then raise Not_found else t.by_id.(id - 1)

let intern_all t ws = List.map (intern t) ws
