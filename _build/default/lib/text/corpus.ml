open Wave_storage

type doc = { rid : int; text : string }

let index_documents vocab ~day docs =
  let postings = ref [] in
  List.iter
    (fun d ->
      (* first offset of each distinct word *)
      let seen = Hashtbl.create 32 in
      List.iter
        (fun (tok : Tokenizer.token) ->
          if not (Hashtbl.mem seen tok.Tokenizer.word) then begin
            Hashtbl.add seen tok.Tokenizer.word ();
            postings :=
              {
                Entry.value = Vocab.intern vocab tok.Tokenizer.word;
                entry = { Entry.rid = d.rid; day; info = tok.Tokenizer.offset };
              }
              :: !postings
          end)
        (Tokenizer.tokens d.text))
    docs;
  Entry.batch_create ~day (Array.of_list (List.rev !postings))

let parse_query vocab text =
  let parts =
    String.split_on_char ' ' text
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  let positive = ref [] and negative = ref [] in
  List.iter
    (fun raw ->
      let negated = String.length raw > 1 && raw.[0] = '-' in
      let body = if negated then String.sub raw 1 (String.length raw - 1) else raw in
      match Tokenizer.tokens ~stopwords:false body with
      | [] -> ()
      | tok :: _ -> (
        match Vocab.find vocab tok.Tokenizer.word with
        | Some id -> if negated then negative := id :: !negative else positive := id :: !positive
        | None -> if not negated then positive := -1 :: !positive))
    parts;
  if List.mem (-1) !positive || !positive = [] then None
  else
    let base = Wave_core.Query.And (List.rev_map (fun v -> Wave_core.Query.Word v) !positive) in
    match !negative with
    | [] -> Some base
    | negs ->
      Some
        (Wave_core.Query.Diff
           (base, Wave_core.Query.Or (List.rev_map (fun v -> Wave_core.Query.Word v) negs)))

(* ------------------------------------------------------------------ *)
(* Synthetic articles                                                 *)
(* ------------------------------------------------------------------ *)

type generator = {
  lexicon : string array; (* rank order: lexicon.(0) is the most frequent *)
  zipf : Wave_util.Zipf.t;
  prng : Wave_util.Prng.t;
}

(* Pronounceable pseudo-words: alternating consonant/vowel syllables,
   deterministic per rank so lexicons agree across processes. *)
let make_word rank =
  let consonants = "bcdfglmnprstvz" and vowels = "aeiou" in
  let buf = Buffer.create 8 in
  let r = ref rank in
  let syllables = 2 + (rank mod 3) in
  for _ = 1 to syllables do
    Buffer.add_char buf consonants.[!r mod String.length consonants];
    r := !r / String.length consonants;
    Buffer.add_char buf vowels.[!r mod String.length vowels];
    r := (!r / String.length vowels) + rank
  done;
  (* suffix the rank to guarantee uniqueness *)
  Buffer.add_string buf (string_of_int rank);
  Buffer.contents buf

let generator ?(seed = 11) ?(vocab_size = 5_000) ?(zipf_s = 1.0) () =
  {
    lexicon = Array.init vocab_size (fun i -> make_word (i + 1));
    zipf = Wave_util.Zipf.create ~n:vocab_size ~s:zipf_s;
    prng = Wave_util.Prng.create seed;
  }

let lexicon_word g k =
  if k < 1 || k > Array.length g.lexicon then invalid_arg "Corpus.lexicon_word";
  g.lexicon.(k - 1)

let article g ~words =
  let buf = Buffer.create (words * 8) in
  let sentence_left = ref (5 + Wave_util.Prng.int g.prng 10) in
  for i = 1 to words do
    let rank = Wave_util.Zipf.sample g.zipf g.prng in
    let w = g.lexicon.(rank - 1) in
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf w;
    decr sentence_left;
    if !sentence_left = 0 && i < words then begin
      Buffer.add_char buf '.';
      sentence_left := 5 + Wave_util.Prng.int g.prng 10
    end
  done;
  Buffer.add_char buf '.';
  Buffer.contents buf
